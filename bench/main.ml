(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation, plus the ablations DESIGN.md calls out and
   Bechamel micro-benchmarks of the pipeline stages.

     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe -- table3        # one experiment
     dune exec bench/main.exe -- --fuel 16000000 table3
     dune exec bench/main.exe -- --jobs 4      # domains for the fan-out
     dune exec bench/main.exe -- --list        # available experiments
     dune exec bench/main.exe -- scaling       # 1/2/4-domain curve

   Each experiment declares which (workload, analysis spec) results it
   needs; the driver unions the needs of every selected experiment and
   then *prefills* the store: each workload is compiled and executed
   exactly once, with all requested machine models and ablation configs
   advanced together over a single pass of its trace
   (Harness.Run.on_prepared).  With --jobs > 1 the prefill fans whole
   workloads out over a domain pool (Stdx.Pool); results are merged
   back by workload index, so the tables are bit-identical for every
   --jobs value.  The trace is dropped as soon as its workload's
   results are in, keeping the live heap small.  Experiments then
   render from the shared store.

   All timing uses the monotonic clock (bechamel's CLOCK_MONOTONIC
   stub), so an NTP step mid-run cannot corrupt the numbers.  A
   machine-readable summary — per-experiment wall time, both the
   analysis work an experiment ran itself and the shared prefill work
   it requested, the prefill phase's parallel speedup, and (for the
   `scaling` experiment) the 1/2/4-domain curve — is written to
   BENCH_results.json.

   Paper-vs-measured commentary lives in EXPERIMENTS.md. *)

(* Monotonic wall clock in seconds. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let machines = Ilp.Machine.all_paper
let machine_names = List.map (fun (m : Ilp.Machine.t) -> m.name) machines

(* ------------------------------------------------------------------ *)
(* Result store: one prepare + one analysis pass per workload, shared
   by every selected experiment. *)

let fuel_override : int option ref = ref None

let jobs_override : int option ref = ref None

let resolved_jobs () =
  match !jobs_override with
  | Some j -> max 1 j
  | None -> Stdx.Pool.recommended_jobs ()

(* --scheduler locked|steal: which pool implementation every pooled
   path in the bench uses (the steal-throughput experiment runs both
   regardless).  Scheduling only — results are bit-identical. *)
let scheduler_override : Stdx.Pool.scheduler ref =
  ref Stdx.Pool.default_scheduler

(* Observability: --metrics / --trace-out FILE enable the context; the
   default stays disabled so the baseline bench numbers are untouched.
   Enabled, every prefill task records compile/execute/analyze spans
   into a buffer keyed by the workload's registry index (scheduling-
   independent merge order), every experiment records a root span, and
   BENCH_results.json carries the per-stage timings and per-experiment
   counter deltas. *)
let obs = ref Obs.Ctx.disabled

let trace_out : string option ref = ref None

let metrics_flag = ref false

(* Stable span-buffer index: the workload's position in the registry,
   not its position in whatever subset this run prefills. *)
let workload_index name =
  let rec go i = function
    | [] -> 1000
    | (w : Workloads.Registry.t) :: rest ->
      if w.name = name then i else go (i + 1) rest
  in
  go 0 Workloads.Registry.all

(* Experiment root spans sit above the workload range. *)
let experiment_index i = 2000 + i

(* (workload, spec key) -> analysis result *)
let store : (string * string, Ilp.Analyze.result) Hashtbl.t =
  Hashtbl.create 256

let stats_store : (string, Ilp.Stats.branch_stats) Hashtbl.t =
  Hashtbl.create 16

(* Per-workload termination record for BENCH_results.json: how the one
   execution ended (halted / out_of_fuel / fault), how far it got, and
   what it returned. *)
type termination = {
  m_status : string;
  m_steps : int;
  m_returned : int option;
  m_completeness : string;
}

let term_store : (string, termination) Hashtbl.t = Hashtbl.create 16

(* workload -> specs the selected experiments asked for *)
let needs_by_workload : (string, Harness.spec list ref) Hashtbl.t =
  Hashtbl.create 16

let prepared_done : (string, unit) Hashtbl.t = Hashtbl.create 16

(* Extra per-workload measurements some experiments take while the
   trace is still alive (registered only when selected).  Hooks run
   inside the prefill tasks, i.e. possibly on worker domains and
   concurrently for different workloads — a hook that writes shared
   state must take its own lock. *)
let prep_hooks : (Harness.prepared -> unit) list ref = ref []

let register_needs (w : Workloads.Registry.t) specs =
  let existing =
    match Hashtbl.find_opt needs_by_workload w.name with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add needs_by_workload w.name l;
      l
  in
  existing := !existing @ specs

let dedup_specs specs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      let key = Harness.spec_key s in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    specs

(* The whole shared computation for one workload: one execution, hooks,
   one fan-out pass over everything the selected experiments asked for.
   Pure with respect to the stores — results come back as values so the
   caller (possibly merging a parallel batch) writes the Hashtbls on
   one domain only. *)
type prefilled = {
  pf_name : string;
  pf_stats : Ilp.Stats.branch_stats;
  pf_term : termination;
  pf_results : (string * Ilp.Analyze.result) list;  (* spec key -> result *)
  pf_task_s : float;  (* this task's own wall time *)
}

let prepare_workload (w : Workloads.Registry.t) =
  let t0 = now_s () in
  let span_buf =
    Obs.Ctx.task_buffer !obs ~index:(workload_index w.name) ~label:w.name
  in
  let specs =
    match Hashtbl.find_opt needs_by_workload w.name with
    | Some l -> dedup_specs !l
    | None -> []
  in
  let p =
    Harness.prepare ?fuel:!fuel_override ~obs:!obs ~span_buf
      ~train_values:(Harness.specs_need_values specs) w
  in
  let stats = Harness.branch_stats p in
  let term =
    { m_status = Vm.Exec.status_string p.status;
      m_steps = p.steps;
      m_returned = p.halted;
      m_completeness = Pipeline_error.completeness_tag p.completeness }
  in
  List.iter (fun hook -> hook p) !prep_hooks;
  let results = Harness.Run.on_prepared ~obs:!obs ~span_buf p specs in
  { pf_name = w.name;
    pf_stats = stats;
    pf_term = term;
    pf_results =
      List.map2 (fun s r -> (Harness.spec_key s, r)) specs results;
    pf_task_s = now_s () -. t0 }
  (* p goes out of scope here: the trace is freed *)

let merge_prefilled pf =
  Hashtbl.replace prepared_done pf.pf_name ();
  Hashtbl.replace stats_store pf.pf_name pf.pf_stats;
  Hashtbl.replace term_store pf.pf_name pf.pf_term;
  List.iter
    (fun (key, r) -> Hashtbl.replace store (pf.pf_name, key) r)
    pf.pf_results

(* Fallback for a workload first touched after the prefill phase (an
   experiment run outside the registry's needs declaration). *)
let ensure (w : Workloads.Registry.t) =
  if not (Hashtbl.mem prepared_done w.name) then
    merge_prefilled (prepare_workload w)

(* The parallel phase: every workload any selected experiment declared
   a need for, fanned out over a domain pool, merged in registry order.
   Because each task is the pipeline for one workload (own VM, own
   analysis states) and the merge is by index, the store contents are
   bit-identical to the sequential path for every jobs value. *)
type prefill_timing = {
  pp_jobs : int;
  pp_wall_s : float;
  pp_task_sum_s : float;  (* sum of per-task times: the sequential cost *)
  pp_instructions : int;
}

let prefill_timing : prefill_timing option ref = ref None

let prefill () =
  let ws =
    List.filter
      (fun (w : Workloads.Registry.t) ->
        Hashtbl.mem needs_by_workload w.name
        && not (Hashtbl.mem prepared_done w.name))
      Workloads.Registry.all
  in
  if ws <> [] then begin
    let jobs = resolved_jobs () in
    let before = Harness.Counters.analyzed () in
    let t0 = now_s () in
    let filled =
      if jobs > 1 && List.length ws > 1 then
        Stdx.Pool.with_pool ~scheduler:!scheduler_override ~jobs
          (fun pool -> Stdx.Pool.map_list pool prepare_workload ws)
      else List.map prepare_workload ws
    in
    let wall = now_s () -. t0 in
    List.iter merge_prefilled filled;
    prefill_timing :=
      Some
        { pp_jobs = jobs;
          pp_wall_s = wall;
          pp_task_sum_s =
            List.fold_left (fun acc pf -> acc +. pf.pf_task_s) 0. filled;
          pp_instructions = Harness.Counters.analyzed () - before }
  end

let get w spec =
  ensure w;
  Hashtbl.find store (w.Workloads.Registry.name, Harness.spec_key spec)

let branch_stats w =
  ensure w;
  Hashtbl.find stats_store w.Workloads.Registry.name

let fnum = Report.Table.fnum

let harmonic_of column rows =
  Stdx.Stats.harmonic_mean (List.map (fun r -> List.nth r column) rows)

(* Common spec sets. *)
let spec7 = List.map (fun m -> Harness.spec m) machines

let spec7_knob ~inline ~unroll =
  List.map (fun m -> Harness.spec ~inline ~unroll m) machines

let sp_segments_spec = Harness.spec ~segments:true Ilp.Machine.sp

let for_all specs = List.map (fun w -> (w, specs)) Workloads.Registry.all

let for_non_numeric specs =
  List.map (fun w -> (w, specs)) Workloads.Registry.non_numeric

(* ------------------------------------------------------------------ *)

let table1 () =
  let rows =
    List.map
      (fun (w : Workloads.Registry.t) ->
        [ w.name; w.lang; w.description ])
      Workloads.Registry.all
  in
  print_string
    (Report.Table.render ~title:"Table 1: Benchmark Programs"
       ~header:[ "Program"; "Language"; "Description" ]
       ~align:[ Left; Left; Left ] rows)

let table2 () =
  let rows =
    List.map
      (fun w ->
        let bs = branch_stats w in
        [ w.Workloads.Registry.name;
          Printf.sprintf "%.2f" bs.rate;
          Printf.sprintf "%.1f" bs.instrs_between ])
      Workloads.Registry.all
  in
  print_string
    (Report.Table.render ~title:"Table 2: Branch Statistics"
       ~header:
         [ "Program"; "Prediction Rate";
           "Dynamic Instructions Between Branches" ]
       ~align:[ Left; Right; Right ] rows)

let parallelism_row ?(inline = true) ?(unroll = true) w =
  List.map
    (fun m ->
      (get w (Harness.spec ~inline ~unroll m)).Ilp.Analyze.parallelism)
    machines

let table3 () =
  let non_numeric =
    List.map
      (fun w -> (w.Workloads.Registry.name, parallelism_row w))
      Workloads.Registry.non_numeric
  in
  let numeric =
    List.map
      (fun w -> (w.Workloads.Registry.name, parallelism_row w))
      Workloads.Registry.numeric
  in
  let hmean =
    List.mapi (fun i _ -> harmonic_of i (List.map snd non_numeric)) machines
  in
  let render_row (name, pars) = name :: List.map fnum pars in
  let rows =
    List.map render_row non_numeric
    @ [ "Harmonic Mean" :: List.map fnum hmean ]
    @ [ [ "-" ] ]
    @ List.map render_row numeric
  in
  print_string
    (Report.Table.render
       ~title:"Table 3: Parallelism for each Machine Model"
       ~header:("Program" :: machine_names)
       ~align:(Left :: List.map (fun _ -> Report.Table.Right) machines)
       rows)

let table4 () =
  let rows =
    List.map
      (fun w ->
        let with_unroll = parallelism_row ~unroll:true w in
        let without = parallelism_row ~unroll:false w in
        let pct =
          List.map2
            (fun a b -> Printf.sprintf "%+.0f" (100. *. (a -. b) /. b))
            with_unroll without
        in
        w.Workloads.Registry.name :: pct)
      Workloads.Registry.all
  in
  print_string
    (Report.Table.render
       ~title:
         "Table 4: Percent Change in Parallelism due to Perfect Loop \
          Unrolling"
       ~header:("Program" :: machine_names)
       ~align:(Left :: List.map (fun _ -> Report.Table.Right) machines)
       rows)

(* Figure 2/3: the worked example.  A reconstruction of the paper's
   flow graph: a loop containing a data-dependent conditional, followed
   by control-independent code.  We print the per-machine schedule of a
   short trace, the analogue of Figure 3. *)
let figure3_source =
  {|
int a[6] = {1, 0, 1, 1, 0, 1};
int out;
int side;

int main(void) {
  int i;
  int x = 0;
  for (i = 0; i < 6; i = i + 1) {
    if (a[i]) x = x + 1;     // node 3: the predicted side
    else side = side + 1;    // node 4: taken on mispredictions
  }
  out = 7;                   // nodes 6,7: control independent of loop
  return x;
}
|}

let figure3 () =
  let p =
    Harness.prepare_source ?fuel:!fuel_override ~name:"figure2"
      figure3_source
  in
  Format.printf
    "Figure 3 (reconstruction): schedules of the Figure-2-style loop@.";
  Format.printf
    "(loop with a data-dependent if, then control-independent code)@.@.";
  let results = Harness.Run.on_prepared p spec7 in
  let rows =
    List.map
      (fun (r : Ilp.Analyze.result) ->
        [ r.machine; string_of_int r.counted;
          string_of_int r.cycles; fnum r.parallelism ])
      results
  in
  print_string
    (Report.Table.render ~header:[ "Machine"; "Instrs"; "Cycles"; "Par" ]
       ~align:[ Left; Right; Right; Right ] rows)

let figure4 () =
  let rows =
    List.map
      (fun w ->
        let get m = (get w (Harness.spec m)).Ilp.Analyze.parallelism in
        ( w.Workloads.Registry.name,
          [ get Ilp.Machine.base; get Ilp.Machine.cd;
            get Ilp.Machine.cd_mf ] ))
      Workloads.Registry.non_numeric
  in
  print_string
    (Report.Chart.grouped_bars
       ~title:"Figure 4: Parallelism with Control Dependence Analysis"
       ~group_names:[ "BASE"; "CD"; "CD-MF" ]
       rows)

let figure5 () =
  let rows =
    List.map
      (fun w ->
        let get m = (get w (Harness.spec m)).Ilp.Analyze.parallelism in
        ( w.Workloads.Registry.name,
          [ get Ilp.Machine.base; get Ilp.Machine.sp;
            get Ilp.Machine.sp_cd; get Ilp.Machine.sp_cd_mf ] ))
      Workloads.Registry.non_numeric
  in
  print_string
    (Report.Chart.grouped_bars
       ~title:"Figure 5: Parallelism with Speculative Execution"
       ~group_names:[ "BASE"; "SP"; "SP-CD"; "SP-CD-MF" ]
       rows)

let sp_segments w = (get w sp_segments_spec).Ilp.Analyze.segments

let figure6 () =
  let curves =
    List.map
      (fun w -> Ilp.Stats.cumulative_distances (sp_segments w))
      Workloads.Registry.non_numeric
  in
  print_string
    (Report.Chart.cdf
       ~title:
         "Figure 6: Cumulative Distribution of Misprediction Distances \
          (one curve per non-numeric program)"
       ~x_label:"misprediction distance"
       curves);
  let all = List.concat_map (fun w ->
      Array.to_list (sp_segments w)) Workloads.Registry.non_numeric
  in
  let under n =
    let total = List.length all in
    let c = List.length
        (List.filter (fun (s : Ilp.Analyze.segment) -> s.length <= n) all)
    in
    100. *. float_of_int c /. float_of_int total
  in
  Format.printf
    "@.%.1f%% of mispredictions occur within a distance of 100 \
     instructions@.(paper: over 80%%); %.1f%% within 1000.@."
    (under 100) (under 1000)

let figure7 () =
  let all =
    Array.concat
      (List.map sp_segments Workloads.Registry.non_numeric)
  in
  let buckets = Ilp.Stats.parallelism_by_distance all in
  let rows =
    List.map
      (fun (b : Ilp.Stats.bucket) ->
        ( Printf.sprintf "%5d-%-5d %7d segs" b.lo b.hi b.count,
          b.mean_parallelism ))
      buckets
  in
  print_string
    (Report.Chart.bars
       ~title:
         "Figure 7: Parallelism vs Misprediction Distance (all non-numeric \
          programs combined; harmonic mean per bucket)"
       rows)

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper (DESIGN.md §7). *)

let window_sizes = [ 32; 128; 512; 2048 ]

let ablation_window_specs =
  List.map
    (fun wsz -> Harness.spec (Ilp.Machine.with_window wsz Ilp.Machine.sp_cd_mf))
    window_sizes
  @ [ Harness.spec Ilp.Machine.sp_cd_mf ]

let ablation_window () =
  let rows =
    List.map
      (fun w ->
        w.Workloads.Registry.name
        :: List.map
             (fun s -> fnum (get w s).Ilp.Analyze.parallelism)
             ablation_window_specs)
      Workloads.Registry.non_numeric
  in
  print_string
    (Report.Table.render
       ~title:"Ablation: SP-CD-MF under a finite scheduling window"
       ~header:
         ("Program"
         :: (List.map (fun w -> Printf.sprintf "w=%d" w) window_sizes
            @ [ "unlimited" ]))
       ~align:(Left :: List.map (fun _ -> Report.Table.Right)
                 (window_sizes @ [ 0 ]))
       rows)

let flow_counts = [ 1; 2; 4; 8 ]

let ablation_flows_specs =
  List.map
    (fun k ->
      Harness.spec (Ilp.Machine.with_flows (Some k) Ilp.Machine.sp_cd))
    flow_counts
  @ [ Harness.spec Ilp.Machine.sp_cd_mf ]

let ablation_flows () =
  let rows =
    List.map
      (fun w ->
        w.Workloads.Registry.name
        :: List.map
             (fun s -> fnum (get w s).Ilp.Analyze.parallelism)
             ablation_flows_specs)
      Workloads.Registry.non_numeric
  in
  print_string
    (Report.Table.render
       ~title:
         "Ablation: k flows of control between SP-CD (k=1) and SP-CD-MF"
       ~header:
         ("Program"
         :: (List.map (fun k -> Printf.sprintf "k=%d" k) flow_counts
            @ [ "unbounded" ]))
       ~align:(Left :: List.map (fun _ -> Report.Table.Right)
                 (flow_counts @ [ 0 ]))
       rows)

let ablation_latency_specs =
  List.map Harness.spec
    [ Ilp.Machine.sp_cd_mf;
      Ilp.Machine.with_latency Ilp.Machine.Realistic Ilp.Machine.sp_cd_mf;
      Ilp.Machine.oracle;
      Ilp.Machine.with_latency Ilp.Machine.Realistic Ilp.Machine.oracle ]

let ablation_latency () =
  let rows =
    List.map
      (fun w ->
        w.Workloads.Registry.name
        :: List.map
             (fun s -> fnum (get w s).Ilp.Analyze.parallelism)
             ablation_latency_specs)
      Workloads.Registry.all
  in
  print_string
    (Report.Table.render
       ~title:"Ablation: unit vs realistic operation latencies"
       ~header:
         [ "Program"; "SP-CD-MF"; "SP-CD-MF/lat"; "ORACLE"; "ORACLE/lat" ]
       ~align:[ Left; Right; Right; Right; Right ]
       rows)

(* Lattice sweep: compose the three post-paper constraint dimensions —
   finite scheduling window, finite fetch rate, value prediction — onto
   SP-CD-MF, one machine per corner of the {window 256, unlimited} x
   {fetch 4, unlimited} x {vp off, on} cube.  Each row label is the
   machine's canonical spec, i.e. exactly what `ilp-limits run -m`
   accepts; the same specs (and the non-numeric harmonic means) land in
   BENCH_results.json.  The vp corners are what pulls [train_values]
   through the prefill: their workloads' one execution also trains the
   last-value profile. *)
let lattice_axes =
  List.concat_map
    (fun window ->
      List.concat_map
        (fun fetch ->
          List.map (fun vp -> (window, fetch, vp)) [ false; true ])
        [ Some 4; None ])
    [ Some 256; None ]

let lattice_machine (window, fetch, vp) =
  Ilp.Machine.sp_cd_mf
  |> (match window with
     | Some n -> Ilp.Machine.with_window n
     | None -> fun m -> m)
  |> Ilp.Machine.with_fetch fetch
  |> Ilp.Machine.with_value_predict vp

let lattice_specs =
  List.map (fun pt -> Harness.spec (lattice_machine pt)) lattice_axes

type lattice_row = {
  lt_spec : string;
  lt_window : int option;
  lt_fetch : int option;
  lt_vp : bool;
  lt_hmean : float;
}

let lattice_rows : lattice_row list ref = ref []

let lattice_sweep () =
  let ws = Workloads.Registry.non_numeric in
  let rows, json =
    List.split
      (List.map2
         (fun ((window, fetch, vp) as pt) s ->
           let m = lattice_machine pt in
           let pars =
             List.map (fun w -> (get w s).Ilp.Analyze.parallelism) ws
           in
           let h = Stdx.Stats.harmonic_mean pars in
           ( m.Ilp.Machine.name :: (List.map fnum pars @ [ fnum h ]),
             { lt_spec = Ilp.Machine.to_spec m; lt_window = window;
               lt_fetch = fetch; lt_vp = vp; lt_hmean = h } ))
         lattice_axes lattice_specs)
  in
  lattice_rows := json;
  print_string
    (Report.Table.render
       ~title:
         "Lattice sweep: SP-CD-MF under composed window / fetch / \
          value-prediction constraints (non-numeric programs)"
       ~header:
         ("Machine"
         :: (List.map (fun w -> w.Workloads.Registry.name) ws @ [ "hmean" ]))
       ~align:
         (Left :: List.map (fun _ -> Report.Table.Right) (ws @ [ List.hd ws ]))
       rows)

(* Predictor accuracy has to be measured while the trace is still
   alive, so this experiment registers a prep hook alongside its spec
   needs.  The analyses themselves still share the one fan-out pass
   (a fresh 2-bit counter table is created inside that pass's state,
   never shared with the measurement run). *)
let predictor_specs =
  [ Harness.spec Ilp.Machine.sp;
    Harness.spec ~predictor:`Btfn Ilp.Machine.sp;
    Harness.spec ~predictor:`Two_bit Ilp.Machine.sp ]

let predictor_rates : (string, float * float * float) Hashtbl.t =
  Hashtbl.create 16

(* Guards [predictor_rates]: the hook runs inside prefill tasks, which
   may execute concurrently on different domains.  The measurement
   itself touches only the task's own prepared trace; only the final
   table write is shared. *)
let predictor_rates_mutex = Mutex.create ()

let measure_predictor_rates (p : Harness.prepared) =
  let is_cond = Ilp.Program_info.is_cond_branch p.info in
  let rate pr = (Predict.Predictor.measure pr ~is_cond p.trace).rate in
  let btfn =
    Predict.Predictor.backward_taken
      ~is_backward:(Ilp.Program_info.branch_backward p.flat)
  in
  let twobit = Predict.Predictor.two_bit ~n_static:p.info.n in
  let rates = ((Harness.branch_stats p).rate, rate btfn, rate twobit) in
  Mutex.lock predictor_rates_mutex;
  Hashtbl.replace predictor_rates p.workload.name rates;
  Mutex.unlock predictor_rates_mutex

let ablation_predictors () =
  let rows =
    List.map
      (fun w ->
        ensure w;
        let profile_rate, btfn_rate, twobit_rate =
          Hashtbl.find predictor_rates w.Workloads.Registry.name
        in
        let pars =
          List.map
            (fun s -> fnum (get w s).Ilp.Analyze.parallelism)
            predictor_specs
        in
        [ w.Workloads.Registry.name;
          Printf.sprintf "%.1f" profile_rate;
          Printf.sprintf "%.1f" btfn_rate;
          Printf.sprintf "%.1f" twobit_rate ]
        @ pars)
      Workloads.Registry.all
  in
  print_string
    (Report.Table.render
       ~title:
         "Ablation: branch predictors (accuracy %, and SP parallelism)"
       ~header:
         [ "Program"; "profile"; "btfn"; "2-bit"; "SP/profile"; "SP/btfn";
           "SP/2-bit" ]
       ~align:[ Left; Right; Right; Right; Right; Right; Right ]
       rows)

let ablation_inline () =
  let rows =
    List.map
      (fun w ->
        let with_i = parallelism_row ~inline:true w in
        let without = parallelism_row ~inline:false w in
        let pct =
          List.map2
            (fun a b -> Printf.sprintf "%+.0f" (100. *. (a -. b) /. b))
            with_i without
        in
        w.Workloads.Registry.name :: pct)
      Workloads.Registry.all
  in
  print_string
    (Report.Table.render
       ~title:
         "Ablation: percent change in parallelism due to perfect inlining"
       ~header:("Program" :: machine_names)
       ~align:(Left :: List.map (fun _ -> Report.Table.Right) machines)
       rows)

(* The guarded ablation recompiles every program with if-conversion, a
   different binary, so the if-converted side cannot share the store's
   execution; the unguarded side can and does. *)
let ablation_guarded () =
  let summarize (r : Ilp.Analyze.result) =
    let mean_dist =
      if Array.length r.segments = 0 then 0.
      else float_of_int r.counted /. float_of_int (Array.length r.segments)
    in
    (r.parallelism, r.mispredicts, mean_dist)
  in
  let rows =
    List.map
      (fun w ->
        let par0, mp0, d0 = summarize (get w sp_segments_spec) in
        let par1, mp1, d1 =
          let p =
            Harness.prepare ?fuel:!fuel_override ~obs:!obs
              ~options:{ Codegen.Compile.if_convert = true } w
          in
          match Harness.Run.on_prepared ~obs:!obs p [ sp_segments_spec ] with
          | [ r ] -> summarize r
          | _ -> assert false
        in
        [ w.Workloads.Registry.name;
          fnum par0; string_of_int mp0; Printf.sprintf "%.1f" d0;
          fnum par1; string_of_int mp1; Printf.sprintf "%.1f" d1 ])
      Workloads.Registry.non_numeric
  in
  print_string
    (Report.Table.render
       ~title:
         "Ablation: guarded instructions (if-conversion to movn), SP \
          machine.  Guarding removes branches, so mispredictions drop \
          and the mean distance between them grows (paper \u{00a7}6)."
       ~header:
         [ "Program"; "SP"; "mispredicts"; "mean dist"; "SP/guarded";
           "mispredicts"; "mean dist" ]
       ~align:[ Left; Right; Right; Right; Right; Right; Right ]
       rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the pipeline stages. *)

let microbench () =
  let open Bechamel in
  let w = Workloads.Registry.find "eqntott" in
  let p = Harness.prepare ?fuel:!fuel_override w in
  let predictor = Harness.profile_predictor p in
  let analyze_test (m : Ilp.Machine.t) =
    Test.make ~name:("analyze-" ^ m.name)
      (Staged.stage (fun () ->
           let cfg = Ilp.Analyze.config m predictor in
           ignore (Ilp.Analyze.run cfg p.info p.trace)))
  in
  let fanout_test =
    Test.make ~name:"analyze-all7-one-pass"
      (Staged.stage (fun () ->
           let cfgs =
             List.map
               (fun m -> Ilp.Analyze.config m predictor)
               Ilp.Machine.all_paper
           in
           ignore (Ilp.Analyze.run_many cfgs p.info p.trace)))
  in
  let compile_test =
    Test.make ~name:"compile-eqntott"
      (Staged.stage (fun () ->
           ignore (Codegen.Compile.compile_flat w.source)))
  in
  let cfg_test =
    Test.make ~name:"static-analysis-eqntott"
      (Staged.stage (fun () -> ignore (Cfg.Analysis.analyze p.flat)))
  in
  let vm_test =
    Test.make ~name:"vm-execute-eqntott"
      (Staged.stage (fun () ->
           ignore (Vm.Exec.run ~fuel:w.fuel p.flat)))
  in
  let tests =
    Test.make_grouped ~name:"pipeline"
      [ compile_test; cfg_test; vm_test;
        analyze_test Ilp.Machine.base; analyze_test Ilp.Machine.sp_cd_mf;
        analyze_test Ilp.Machine.oracle; fanout_test ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 10) ()
    in
    Benchmark.all cfg instances tests
  in
  let results = benchmark () in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock results
  in
  Format.printf "Micro-benchmarks (ns per run, OLS fit):@.";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.printf "  %-28s %12.0f ns@." name est
      | _ -> Format.printf "  %-28s (no estimate)@." name)
    ols

(* ------------------------------------------------------------------ *)
(* Scaling: the whole Table-3 pipeline (all ten workloads, all seven
   machines, streaming) at 1, 2 and 4 domains.  Beyond the timing
   curve, this is the bench-side determinism assertion: every parallel
   run must reproduce the sequential run bit-for-bit — results,
   completeness tags, and the Counters totals — or the process exits
   nonzero.  Kept out of the default experiment set because it
   re-executes every workload per point (deliberately: the point is to
   time the pipeline, not to share the store). *)

type scaling_point = {
  sc_jobs : int;
  sc_wall_s : float;
  sc_identical : bool;  (* results and counter deltas match jobs=1 *)
}

let scaling_points : scaling_point list ref = ref []

let scaling_failed = ref false

let scaling () =
  let ws = Workloads.Registry.all in
  let timed jobs =
    let e0 = Harness.Counters.entries () in
    let s0 = Harness.Counters.state_entries () in
    let x0 = Harness.Counters.executions () in
    let t0 = now_s () in
    let cfg =
      Harness.Run.config ~jobs ~scheduler:!scheduler_override
        ?fuel:!fuel_override ~stream:true spec7
    in
    let rs =
      match Harness.Run.exec cfg ws with
      | Ok items ->
        List.map (fun it -> it.Harness.Run.it_outcome) items
      | Error _ -> assert false (* jobs >= 1 by construction *)
    in
    let wall = now_s () -. t0 in
    ( rs,
      wall,
      ( Harness.Counters.entries () - e0,
        Harness.Counters.state_entries () - s0,
        Harness.Counters.executions () - x0 ) )
  in
  let seq, seq_wall, seq_counts = timed 1 in
  scaling_points := [ { sc_jobs = 1; sc_wall_s = seq_wall;
                        sc_identical = true } ];
  List.iter
    (fun jobs ->
      let par, wall, counts = timed jobs in
      (* Structural equality covers every field: parallelism numbers,
         counted/cycles, segments, completeness tags, typed errors. *)
      let identical = par = seq && counts = seq_counts in
      if not identical then begin
        scaling_failed := true;
        Format.printf
          "SCALING FAILURE: --jobs %d diverged from the sequential run@."
          jobs
      end;
      scaling_points :=
        !scaling_points
        @ [ { sc_jobs = jobs; sc_wall_s = wall; sc_identical = identical } ])
    [ 2; 4 ];
  let rows =
    List.map
      (fun p ->
        [ string_of_int p.sc_jobs;
          Printf.sprintf "%.3f" p.sc_wall_s;
          Printf.sprintf "%.2fx" (seq_wall /. p.sc_wall_s);
          (if p.sc_identical then "yes" else "NO") ])
      !scaling_points
  in
  print_string
    (Report.Table.render
       ~title:
         (Printf.sprintf
            "Scaling: full streaming pipeline, %d workloads x %d machines \
             (%d domains available)"
            (List.length ws) (List.length machines)
            (Stdx.Pool.recommended_jobs ()))
       ~header:[ "jobs"; "wall s"; "speedup vs seq"; "identical" ]
       ~align:[ Right; Right; Right; Left ] rows)

(* ------------------------------------------------------------------ *)
(* Segment-scaling: intra-trace parallelism on ONE workload.  The
   `scaling` experiment above parallelizes across workloads, which a
   single-workload run cannot use; this one shards gcc's trace into
   segments (DESIGN.md §15) and runs the same seven-machine sweep at
   1, 2 and 4 domains.  Like `scaling` it doubles as a determinism
   assertion: every segmented point must reproduce the un-segmented
   sequential run bit-for-bit — results, completeness tags, counter
   deltas — or the process exits nonzero.  Wall times are honest: on a
   machine without idle cores the speedup column will show < 1 (the
   decode/stitch split adds work); the column exists to be read, not
   to flatter. *)

(* stride policy for the segmented points; --segment-steps overrides *)
let segment_override : Harness.segmenting ref = ref `Auto

type segment_point = {
  sg_jobs : int;
  sg_domains : int;  (* domains that actually hosted decode/stitch work *)
  sg_segments : int;  (* pipeline_segments_total delta for this point *)
  sg_wall_s : float;
  sg_identical : bool;  (* results and counter deltas match jobs=1 *)
}

let segment_points : segment_point list ref = ref []

(* wall of the un-segmented sequential reference run — the denominator
   of every honest speedup figure this experiment reports *)
let segment_seq_wall = ref 0.

let segment_failed = ref false

let segment_scaling () =
  let w = Workloads.Registry.find "gcc" in
  let timed ~jobs ~segmenting =
    let e0 = Harness.Counters.entries () in
    let s0 = Harness.Counters.state_entries () in
    let x0 = Harness.Counters.executions () in
    let g0 = Harness.Counters.segments () in
    let t0 = now_s () in
    let cfg =
      Harness.Run.config ~jobs ~scheduler:!scheduler_override
        ?fuel:!fuel_override ~stream:true ~segment_steps:segmenting spec7
    in
    let rs =
      match Harness.Run.exec cfg [ w ] with
      | Ok items -> List.map (fun it -> it.Harness.Run.it_outcome) items
      | Error _ -> assert false (* jobs >= 1 by construction *)
    in
    let wall = now_s () -. t0 in
    ( rs,
      wall,
      ( Harness.Counters.entries () - e0,
        Harness.Counters.state_entries () - s0,
        Harness.Counters.executions () - x0 ),
      Harness.Counters.segments () - g0 )
  in
  (* The reference: the ordinary un-segmented sequential pipeline. *)
  let seq, seq_wall, seq_counts, _ = timed ~jobs:1 ~segmenting:`Off in
  segment_seq_wall := seq_wall;
  let points =
    List.sort_uniq compare [ 1; 2; 4; resolved_jobs () ]
  in
  segment_points := [];
  List.iter
    (fun jobs ->
      let par, wall, counts, segs =
        timed ~jobs ~segmenting:!segment_override
      in
      (* Structural equality covers every result field; the counter
         tuple (entries, state entries, executions) excludes the
         segment counter, which only the segmented runs advance. *)
      let identical = par = seq && counts = seq_counts in
      if not identical then begin
        segment_failed := true;
        Format.printf
          "SEGMENT-SCALING FAILURE: --jobs %d segmented run diverged \
           from the sequential run@."
          jobs
      end;
      (* Honest utilization: one workload offers [max specs segments]
         concurrent tasks (decode per segment, stitch per config), so
         more domains than that stay idle. *)
      let domains =
        min jobs (max (List.length spec7) (max 1 segs))
      in
      segment_points :=
        !segment_points
        @ [ { sg_jobs = jobs; sg_domains = domains; sg_segments = segs;
              sg_wall_s = wall; sg_identical = identical } ])
    points;
  let rows =
    List.map
      (fun q ->
        [ string_of_int q.sg_jobs;
          string_of_int q.sg_domains;
          string_of_int q.sg_segments;
          Printf.sprintf "%.3f" q.sg_wall_s;
          Printf.sprintf "%.2fx" (seq_wall /. q.sg_wall_s);
          (if q.sg_identical then "yes" else "NO") ])
      !segment_points
  in
  print_string
    (Report.Table.render
       ~title:
         (Printf.sprintf
            "Segment scaling: gcc x %d machines, intra-trace sharding \
             (seq baseline %.3f s, %d domains available)"
            (List.length machines) seq_wall
            (Stdx.Pool.recommended_jobs ()))
       ~header:
         [ "jobs"; "domains used"; "segments"; "wall s"; "speedup vs seq";
           "identical" ]
       ~align:[ Right; Right; Right; Right; Right; Left ] rows)

(* ------------------------------------------------------------------ *)
(* Steal-throughput: the scheduler differential.  One gcc trace is
   sharded into ~250 fine-grained decode segments — the task regime
   that motivated the work-stealing pool — and the same prepared trace
   is analyzed through BOTH schedulers.  Each run must be bit-identical
   to the sequential un-segmented reference (divergence fails the bench
   with a nonzero exit); the JSON records tasks/sec plus the stealer's
   steal/park counters read back through Stdx.Pool.stats. *)

type steal_point = {
  st_sched : string;
  st_jobs : int;
  st_tasks : int;  (* pool tasks submitted: decodes + stitches *)
  st_segments : int;
  st_wall_s : float;
  st_steal_attempts : int;
  st_steals : int;
  st_parks : int;
  st_identical : bool;
}

let steal_points : steal_point list ref = ref []
let steal_seq_wall = ref 0.
let steal_failed = ref false

let steal_throughput () =
  let w = Workloads.Registry.find "gcc" in
  (* Fine-grained on purpose: cap the trace so segments stay small, and
     derive the stride to yield ~250 decode tasks whatever the fuel. *)
  let fuel = Option.value !fuel_override ~default:200_000 in
  let p = Harness.prepare ~fuel w in
  let trace_len = Vm.Trace.length p.trace in
  let stride = max 1 (trace_len / 250) in
  let jobs = max 2 (resolved_jobs ()) in
  let t0 = now_s () in
  let seq = Harness.Run.on_prepared p spec7 in
  let seq_wall = now_s () -. t0 in
  steal_seq_wall := seq_wall;
  steal_points := [];
  List.iter
    (fun sched ->
      (* A private registry per scheduler exercises the one-shot named
         registration in Obs.Probe.pool without polluting the global
         metrics the observability run exports. *)
      let reg = Obs.Metrics.create () in
      let pool = Stdx.Pool.create ~scheduler:sched ~jobs () in
      Stdx.Pool.set_probe pool (Some (Obs.Probe.pool reg));
      let g0 = Harness.Counters.segments () in
      let t0 = now_s () in
      let par =
        Harness.Run.on_prepared ~pool ~segmenting:(`Steps stride) ~jobs p
          spec7
      in
      let wall = now_s () -. t0 in
      let st = Stdx.Pool.stats pool in
      Obs.Probe.pool_stats reg st;
      Stdx.Pool.shutdown pool;
      let segs = Harness.Counters.segments () - g0 in
      let identical = par = seq in
      if not identical then begin
        steal_failed := true;
        Format.printf
          "STEAL-THROUGHPUT FAILURE: %s scheduler diverged from the \
           sequential run@."
          (Stdx.Pool.scheduler_name sched)
      end;
      if segs < 200 then begin
        steal_failed := true;
        Format.printf
          "STEAL-THROUGHPUT FAILURE: only %d segments decoded (need \
           200+ fine-grained tasks; trace len %d, stride %d)@."
          segs trace_len stride
      end;
      steal_points :=
        !steal_points
        @ [ { st_sched = Stdx.Pool.scheduler_name sched;
              st_jobs = jobs;
              st_tasks = st.Stdx.Pool.submitted;
              st_segments = segs;
              st_wall_s = wall;
              st_steal_attempts = st.Stdx.Pool.steal_attempts;
              st_steals = st.Stdx.Pool.steals;
              st_parks = st.Stdx.Pool.parks;
              st_identical = identical } ])
    [ Stdx.Pool.Locked; Stdx.Pool.Steal ];
  let rows =
    List.map
      (fun q ->
        [ q.st_sched;
          string_of_int q.st_jobs;
          string_of_int q.st_tasks;
          string_of_int q.st_segments;
          Printf.sprintf "%.3f" q.st_wall_s;
          Printf.sprintf "%.0f"
            (float_of_int q.st_tasks /. Float.max 1e-9 q.st_wall_s);
          string_of_int q.st_steals;
          string_of_int q.st_parks;
          (if q.st_identical then "yes" else "NO") ])
      !steal_points
  in
  print_string
    (Report.Table.render
       ~title:
         (Printf.sprintf
            "Steal throughput: gcc x %d machines, %d-instruction \
             segments, %d domains (seq baseline %.3f s)"
            (List.length spec7) stride jobs seq_wall)
       ~header:
         [ "scheduler"; "jobs"; "tasks"; "segments"; "wall s"; "tasks/s";
           "steals"; "parks"; "identical" ]
       ~align:
         [ Left; Right; Right; Right; Right; Right; Right; Right; Left ]
       rows)

(* ------------------------------------------------------------------ *)
(* Static vs dynamic: the static estimator (`Cfg.Estimate` compiled by
   `Ilp.Static_bound`, no execution) must dominate the measured
   parallelism for every workload x paper machine.  This is the
   bench-side soundness assertion for the whole static layer: any cell
   where measured > bound fails the run with a nonzero exit. *)

type static_row = {
  sb_workload : string;
  sb_spec : string;
  sb_bound : float;  (* infinity = statically unbounded *)
  sb_measured : float;
  sb_sound : bool;
}

let static_rows : static_row list ref = ref []
let static_failed = ref false

let static_vs_dynamic () =
  let rows =
    List.map
      (fun (w : Workloads.Registry.t) ->
        let est =
          match Harness.estimate ~machines w with
          | Ok e -> e
          | Error e -> failwith (Pipeline_error.to_string e)
        in
        let cells =
          List.map2
            (fun spec (b : Ilp.Static_bound.t) ->
              let r = get w spec in
              let measured = r.Ilp.Analyze.parallelism in
              let sound = measured <= b.bound +. 1e-9 in
              static_rows :=
                { sb_workload = w.Workloads.Registry.name;
                  sb_spec = b.spec;
                  sb_bound = b.bound;
                  sb_measured = measured;
                  sb_sound = sound }
                :: !static_rows;
              if not sound then begin
                static_failed := true;
                Printf.sprintf "%s > %s !" (fnum measured)
                  (Ilp.Static_bound.value_to_string b.bound)
              end
              else
                Printf.sprintf "%s / %s" (fnum measured)
                  (Ilp.Static_bound.value_to_string b.bound))
            spec7 est.Harness.e_bounds
        in
        w.Workloads.Registry.name :: cells)
      Workloads.Registry.all
  in
  static_rows := List.rev !static_rows;
  print_string
    (Report.Table.render
       ~title:
         "Static vs dynamic: measured parallelism / static bound (sound \
          iff measured <= bound; `unbounded` = no static limit)"
       ~header:("Program" :: machine_names)
       ~align:(Left :: List.map (fun _ -> Report.Table.Right) machines)
       rows);
  if !static_failed then
    Format.printf
      "STATIC BOUND VIOLATION: a measured parallelism exceeded its static \
       bound (see ! cells above)@."

(* ------------------------------------------------------------------ *)
(* Serve soak: an in-process `ilp-limits serve` daemon under sustained
   mixed load — healthy analyses (several workloads, cache hits and
   misses), injected faults, millisecond deadlines, quota violations,
   unknown names — fired from concurrent client threads through the
   retrying client, with a small queue so backpressure actually sheds.
   The robustness assertions (any violation exits the bench nonzero):
   every request draws exactly one well-typed response, no client ever
   sees an I/O failure or malformed reply, the sampled queue depth
   never exceeds the configured bound, and the server drains cleanly
   at the end.  p50/p99 latency of the healthy requests, the shed
   rate, and the cache split land in BENCH_results.json. *)

type serve_soak = {
  sv_requests : int;
  sv_ok : int;
  sv_typed_errors : int;
  sv_shed : int;  (* server-side count of requests shed at the queue *)
  sv_retries : int;  (* extra client attempts beyond the first *)
  sv_p50_ms : float;
  sv_p99_ms : float;
  sv_max_queue_depth : int;  (* sampled; must stay <= the limit *)
  sv_queue_limit : int;
  sv_cache_hits : int;
  sv_cache_misses : int;
  sv_jobs : int;
  sv_wall_s : float;
}

let serve_soak_result : serve_soak option ref = ref None

let serve_failed = ref false

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let soak_stat json name =
  match Option.bind (Serve.Jsonx.member name json) Serve.Jsonx.to_int with
  | Some v -> v
  | None -> 0

let serve_soak () =
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ilp-soak-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let jobs = max 2 (resolved_jobs ()) in
  (* 12 client threads against a queue of 4: more outstanding work than
     the queue and pool can hold, so the shed path genuinely fires and
     the retrying client has to absorb it. *)
  let queue_limit = 4 in
  let cfg =
    Serve.Server.config ~jobs ~queue_limit ~cache_capacity:16
      ~max_fuel:10_000_000 ~retry_after_ms:5
      ~registry:(Obs.Metrics.create ()) ~socket_path ()
  in
  match Serve.Server.start cfg with
  | Error e ->
    serve_failed := true;
    Format.printf "serve-soak: server failed to start: %s@." e
  | Ok server ->
    let t0 = now_s () in
    let addr = Serve.Client.Unix_sock socket_path in
    let n_threads = 12 and per_thread = 45 in
    let total = n_threads * per_thread in
    let ok = Atomic.make 0
    and typed = Atomic.make 0
    and malformed = Atomic.make 0
    and io_failed = Atomic.make 0
    and retries = Atomic.make 0 in
    let lat_mutex = Mutex.create () in
    let latencies = ref [] in
    let healthy =
      [| "eqntott"; "awk"; "ccom"; "latex"; "irsim"; "espresso" |]
    in
    (* Request r's shape is a pure function of r, so the soak replays
       exactly; r mod 10 picks the mix (6 healthy : 1 injected :
       1 deadline : 1 over-quota : 1 unknown). *)
    let payload_of r =
      let open Serve.Protocol in
      match r mod 10 with
      | 6 ->
        analyze ~workload:"awk" ~machines:[ "sp-cd-mf" ] ~fuel:200_000
          ~inject:("bit-flip", r) ()
      | 7 ->
        analyze ~workload:"gcc" ~machines:[ "sp-cd-mf" ] ~fuel:400_000
          ~deadline_ms:1 ()
      | 8 -> analyze ~workload:"eqntott" ~fuel:10_000_001 ()
      | 9 -> analyze ~workload:"no-such-program" ()
      | k ->
        analyze
          ~workload:healthy.((r / 10 + k) mod Array.length healthy)
          ~machines:[ "sp-cd-mf" ] ~fuel:200_000 ()
    in
    let worker tid () =
      for i = 0 to per_thread - 1 do
        let r = (tid * per_thread) + i in
        let a = payload_of r in
        let make_payload ~id = Serve.Protocol.analyze_request ~id a in
        let q0 = now_s () in
        match
          Serve.Client.call_retry ~attempts:8 ~base_ms:5 ~seed:r addr
            ~make_payload
        with
        | Error _ -> Atomic.incr io_failed
        | Ok { o_response; o_attempts } ->
          ignore (Atomic.fetch_and_add retries (o_attempts - 1));
          if o_response.Serve.Protocol.r_ok then begin
            Atomic.incr ok;
            if r mod 10 < 6 then begin
              let ms = (now_s () -. q0) *. 1000. in
              Mutex.lock lat_mutex;
              latencies := ms :: !latencies;
              Mutex.unlock lat_mutex
            end
          end
          else if o_response.Serve.Protocol.r_error_cause <> None then
            Atomic.incr typed
          else Atomic.incr malformed
      done
    in
    (* A sampler thread scrapes stats while the load runs: the highest
       queue depth it ever sees is the bounded-backpressure witness. *)
    let soak_done = Atomic.make false in
    let max_depth = Atomic.make 0 in
    let rec raise_to a v =
      let cur = Atomic.get a in
      if v > cur && not (Atomic.compare_and_set a cur v) then raise_to a v
    in
    let sampler () =
      while not (Atomic.get soak_done) do
        (match Serve.Client.connect addr with
        | Error _ -> ()
        | Ok conn ->
          (match Serve.Client.call conn (Serve.Protocol.stats_request ~id:1)
           with
          | Ok json -> raise_to max_depth (soak_stat json "queue_depth")
          | Error _ -> ());
          Serve.Client.close conn);
        Unix.sleepf 0.004
      done
    in
    let sampler_t = Thread.create sampler () in
    let workers = List.init n_threads (fun tid -> Thread.create (worker tid) ()) in
    List.iter Thread.join workers;
    Atomic.set soak_done true;
    Thread.join sampler_t;
    (* Final scrape before the server goes away. *)
    let shed, cache_hits, cache_misses, requests =
      match Serve.Client.connect addr with
      | Error _ -> (0, 0, 0, 0)
      | Ok conn ->
        let r =
          match
            Serve.Client.call conn (Serve.Protocol.stats_request ~id:1)
          with
          | Ok json ->
            ( soak_stat json "shed",
              soak_stat json "cache_hits",
              soak_stat json "cache_misses",
              soak_stat json "requests" )
          | Error _ -> (0, 0, 0, 0)
        in
        Serve.Client.close conn;
        r
    in
    Serve.Server.stop server;
    let wall = now_s () -. t0 in
    let lats = Array.of_list !latencies in
    Array.sort compare lats;
    let soak =
      { sv_requests = total;
        sv_ok = Atomic.get ok;
        sv_typed_errors = Atomic.get typed;
        sv_shed = shed;
        sv_retries = Atomic.get retries;
        sv_p50_ms = percentile lats 0.50;
        sv_p99_ms = percentile lats 0.99;
        sv_max_queue_depth = Atomic.get max_depth;
        sv_queue_limit = queue_limit;
        sv_cache_hits = cache_hits;
        sv_cache_misses = cache_misses;
        sv_jobs = jobs;
        sv_wall_s = wall }
    in
    serve_soak_result := Some soak;
    let violations = ref [] in
    if Atomic.get io_failed > 0 then
      violations :=
        Printf.sprintf "%d client I/O failures" (Atomic.get io_failed)
        :: !violations;
    if Atomic.get malformed > 0 then
      violations :=
        Printf.sprintf "%d untyped error responses" (Atomic.get malformed)
        :: !violations;
    if soak.sv_ok + soak.sv_typed_errors <> total then
      violations :=
        Printf.sprintf "%d of %d requests unanswered"
          (total - soak.sv_ok - soak.sv_typed_errors)
          total
        :: !violations;
    if soak.sv_max_queue_depth > queue_limit then
      violations :=
        Printf.sprintf "queue depth %d exceeded limit %d"
          soak.sv_max_queue_depth queue_limit
        :: !violations;
    if !violations <> [] then begin
      serve_failed := true;
      List.iter
        (fun v -> Format.printf "SERVE SOAK VIOLATION: %s@." v)
        !violations
    end;
    print_string
      (Report.Table.render
         ~title:
           (Printf.sprintf
              "Serve soak: %d mixed requests, %d client threads, jobs=%d, \
               queue limit %d (server saw %d requests incl. stats scrapes)"
              total n_threads jobs queue_limit requests)
         ~header:[ "measure"; "value" ]
         ~align:[ Left; Right ]
         [ [ "ok responses"; string_of_int soak.sv_ok ];
           [ "typed errors"; string_of_int soak.sv_typed_errors ];
           [ "shed at the queue"; string_of_int soak.sv_shed ];
           [ "client retries"; string_of_int soak.sv_retries ];
           [ "healthy p50"; Printf.sprintf "%.1f ms" soak.sv_p50_ms ];
           [ "healthy p99"; Printf.sprintf "%.1f ms" soak.sv_p99_ms ];
           [ "max queue depth seen";
             string_of_int soak.sv_max_queue_depth ];
           [ "cache hits / misses";
             Printf.sprintf "%d / %d" cache_hits cache_misses ];
           [ "wall"; Printf.sprintf "%.2f s" wall ] ])

(* ------------------------------------------------------------------ *)
(* Experiment registry: each entry declares the (workload, spec)
   results it reads, so the driver can compute the union before any
   workload is prepared. *)

type experiment = {
  name : string;
  needs : unit -> (Workloads.Registry.t * Harness.spec list) list;
  hook : (Harness.prepared -> unit) option;
  run : unit -> unit;
}

let exp ?hook ?(needs = fun () -> []) name run = { name; needs; hook; run }

let spec7_all_knobs ~unroll = spec7_knob ~inline:true ~unroll

let experiments =
  [ exp "table1" table1;
    exp "table2" ~needs:(fun () -> for_all []) table2;
    exp "table3" ~needs:(fun () -> for_all spec7) table3;
    exp "table4"
      ~needs:(fun () ->
        for_all (spec7_all_knobs ~unroll:true @ spec7_all_knobs ~unroll:false))
      table4;
    exp "figure3" figure3;
    exp "figure4"
      ~needs:(fun () ->
        for_non_numeric
          (List.map Harness.spec
             [ Ilp.Machine.base; Ilp.Machine.cd; Ilp.Machine.cd_mf ]))
      figure4;
    exp "figure5"
      ~needs:(fun () ->
        for_non_numeric
          (List.map Harness.spec
             [ Ilp.Machine.base; Ilp.Machine.sp; Ilp.Machine.sp_cd;
               Ilp.Machine.sp_cd_mf ]))
      figure5;
    exp "figure6" ~needs:(fun () -> for_non_numeric [ sp_segments_spec ])
      figure6;
    exp "figure7" ~needs:(fun () -> for_non_numeric [ sp_segments_spec ])
      figure7;
    exp "ablation-window"
      ~needs:(fun () -> for_non_numeric ablation_window_specs)
      ablation_window;
    exp "ablation-flows"
      ~needs:(fun () -> for_non_numeric ablation_flows_specs)
      ablation_flows;
    exp "ablation-latency"
      ~needs:(fun () -> for_all ablation_latency_specs)
      ablation_latency;
    exp "lattice-sweep"
      ~needs:(fun () -> for_non_numeric lattice_specs)
      lattice_sweep;
    exp "ablation-predictors" ~hook:measure_predictor_rates
      ~needs:(fun () -> for_all predictor_specs)
      ablation_predictors;
    exp "ablation-inline"
      ~needs:(fun () ->
        for_all (spec7_knob ~inline:true ~unroll:true
                @ spec7_knob ~inline:false ~unroll:true))
      ablation_inline;
    exp "ablation-guarded"
      ~needs:(fun () -> for_non_numeric [ sp_segments_spec ])
      ablation_guarded;
    exp "static-vs-dynamic" ~needs:(fun () -> for_all spec7)
      static_vs_dynamic;
    exp "serve-soak" serve_soak;
    exp "microbench" microbench;
    exp "scaling" scaling;
    exp "segment-scaling" segment_scaling;
    exp "steal-throughput" steal_throughput ]

(* The scaling experiments re-execute workloads per point, so they only
   run when asked for by name. *)
let default_experiments =
  List.filter
    (fun e ->
      e.name <> "scaling" && e.name <> "segment-scaling"
      && e.name <> "steal-throughput")
    experiments

(* ------------------------------------------------------------------ *)
(* Driver: union the needs, run each experiment timed, dump JSON. *)

type timing = {
  t_name : string;
  wall_s : float;
  instructions : int;
  (** trace entries × machine states this experiment ran itself, beyond
      the shared prefill (own prepares: figure3, ablation-guarded,
      microbench, scaling) *)
  requested : int;
  (** this experiment's share of the prefill: entries × deduped specs
      it declared needs for — nonzero for every table/figure that
      renders from the store, which is what makes the per-experiment
      rows meaningful instead of charging all shared work to whichever
      experiment ran first *)
  t_span_ns : int64 option;
  (** monotonic-clock duration of the experiment's root span (only when
      observability is on) *)
  t_metric_deltas : (string * int) list;
  (** per-counter increase across this experiment's run (only when
      observability is on; zero deltas dropped) *)
}

(* Schema guard: every key BENCH_results.json can contain must appear
   in the schema table of DESIGN.md §10.  Any attempt to emit an
   undocumented key exits nonzero, so schema drift is caught at bench
   time rather than by a downstream consumer.  Open-ended maps (metric
   names) are emitted as {name, value} arrays precisely so no dynamic
   string ever becomes a key. *)
let schema_version = 2

let documented_keys =
  [ "schema_version"; "fuel_override"; "jobs"; "domains_recommended";
    "observability";
    "seed_baseline"; "table3_wall_s";
    "hot_loop_baseline"; "run_sweep_2m_wall_s"; "run_sweep_2m_tuned_wall_s";
    "analysis_phase"; "domains_used"; "wall_s"; "task_wall_sum_s";
    "overlap_parallelism"; "instructions_analyzed";
    "scaling"; "speedup_vs_seq"; "identical_to_seq";
    "segment_scaling"; "segments_total"; "segment_steps";
    "scheduler"; "steal_throughput"; "tasks_total"; "tasks_per_s";
    "steal_attempts"; "steals"; "parks";
    "totals"; "vm_executions"; "trace_passes"; "trace_entries_scanned";
    "workloads"; "name"; "status"; "steps"; "returned"; "completeness";
    "stages"; "compile_ns"; "execute_ns"; "analyze_ns";
    "experiments"; "instructions_requested"; "instructions_per_s";
    "span_ns"; "metrics"; "value";
    "lattice"; "spec"; "window"; "fetch"; "value_predict";
    "parallelism_hmean";
    "static_bounds"; "bound"; "measured"; "sound";
    "serve_soak"; "requests"; "ok"; "typed_errors"; "shed"; "shed_rate";
    "retries"; "p50_ms"; "p99_ms"; "max_queue_depth"; "queue_limit";
    "cache_hits"; "cache_misses" ]

let key k =
  if not (List.mem k documented_keys) then begin
    Printf.eprintf
      "BENCH_results.json schema violation: key %S is not documented in \
       DESIGN.md\n"
      k;
    exit 1
  end;
  "\"" ^ k ^ "\""

(* Per-workload stage durations, read back from the context's merged
   span stream (the spans {!prepare_workload} recorded). *)
let stage_durations name =
  let spans = Obs.Ctx.spans !obs in
  let dur stage =
    Array.fold_left
      (fun acc (s : Obs.Span.span) ->
        match acc with
        | Some _ -> acc
        | None ->
          if s.sp_workload = name && s.sp_stage = stage then
            Some (Obs.Span.dur_ns s)
          else None)
      None spans
  in
  match (dur "compile", dur "execute", dur "analyze") with
  | Some c, Some e, Some a -> Some (c, e, a)
  | _ -> None

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path timings =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  %s: %d,\n" (key "schema_version") schema_version;
  p "  %s: %s,\n" (key "fuel_override")
    (match !fuel_override with Some f -> string_of_int f | None -> "null");
  p "  %s: %d,\n" (key "jobs") (resolved_jobs ());
  p "  %s: %d,\n" (key "domains_recommended") (Stdx.Pool.recommended_jobs ());
  p "  %s: \"%s\",\n" (key "scheduler")
    (Stdx.Pool.scheduler_name !scheduler_override);
  p "  %s: %b,\n" (key "observability") (Obs.Ctx.enabled !obs);
  (* Pre-streaming-pipeline reference point, measured on the seed tree
     (trace re-scanned per machine, workloads re-executed per table):
     `table3` alone took ~58 s wall on the same hardware. *)
  p "  %s: { %s: 58.0 },\n" (key "seed_baseline") (key "table3_wall_s");
  (* Hot-loop tuning reference point (same hardware, same commit range):
     `ilp-limits run --fuel 2000000` (10 workloads x 7 machines,
     includes both VM executions) measured before/after the Analyze
     step rewrite — median of repeated runs 3.80 s -> 3.47 s, best
     3.77 s -> 3.23 s. *)
  p "  %s: { %s: 3.80, %s: 3.47 },\n" (key "hot_loop_baseline")
    (key "run_sweep_2m_wall_s")
    (key "run_sweep_2m_tuned_wall_s");
  (match !prefill_timing with
  | Some pf ->
    (* task_wall_sum_s / wall_s measures how much task time overlapped,
       not true speedup: on a timeshared core each task's wall time
       stretches, so the ratio approaches [jobs] even without extra
       cores.  The genuine sequential-vs-parallel comparison is the
       `scaling` experiment's curve below. *)
    p "  %s: { %s: %d, %s: %d, %s: %.3f, %s: %.3f, %s: %.2f, %s: %d },\n"
      (key "analysis_phase") (key "jobs") pf.pp_jobs (key "domains_used")
      pf.pp_jobs (key "wall_s") pf.pp_wall_s (key "task_wall_sum_s")
      pf.pp_task_sum_s
      (key "overlap_parallelism")
      (if pf.pp_wall_s > 0. then pf.pp_task_sum_s /. pf.pp_wall_s else 1.)
      (key "instructions_analyzed")
      pf.pp_instructions
  | None -> ());
  (match !scaling_points with
  | [] -> ()
  | ps ->
    let seq_wall =
      match List.find_opt (fun q -> q.sc_jobs = 1) ps with
      | Some q -> q.sc_wall_s
      | None -> 0.
    in
    p "  %s: [\n" (key "scaling");
    List.iteri
      (fun i q ->
        p "    { %s: %d, %s: %d, %s: %.3f, %s: %.2f, %s: %b }%s\n"
          (key "jobs") q.sc_jobs (key "domains_used") q.sc_jobs
          (key "wall_s") q.sc_wall_s
          (key "speedup_vs_seq")
          (if q.sc_wall_s > 0. then seq_wall /. q.sc_wall_s else 1.)
          (key "identical_to_seq") q.sc_identical
          (if i = List.length ps - 1 then "" else ","))
      ps;
    p "  ],\n");
  (match !segment_points with
  | [] -> ()
  | ps ->
    (* denominator: the un-segmented sequential reference run *)
    let seq_wall = !segment_seq_wall in
    p "  %s: [\n" (key "segment_scaling");
    List.iteri
      (fun i q ->
        p
          "    { %s: %d, %s: %d, %s: %d, %s: %s, %s: %.3f, %s: %.2f, \
           %s: %b }%s\n"
          (key "jobs") q.sg_jobs (key "domains_used") q.sg_domains
          (key "segments_total") q.sg_segments
          (key "segment_steps")
          (match !segment_override with
          | `Auto -> "\"auto\""
          | `Steps n -> string_of_int n
          | `Off -> "\"off\"")
          (key "wall_s") q.sg_wall_s
          (key "speedup_vs_seq")
          (if q.sg_wall_s > 0. then seq_wall /. q.sg_wall_s else 1.)
          (key "identical_to_seq") q.sg_identical
          (if i = List.length ps - 1 then "" else ","))
      ps;
    p "  ],\n");
  (match !steal_points with
  | [] -> ()
  | ps ->
    p "  %s: [\n" (key "steal_throughput");
    List.iteri
      (fun i q ->
        p
          "    { %s: \"%s\", %s: %d, %s: %d, %s: %d, %s: %.3f, %s: %.0f, \
           %s: %d, %s: %d, %s: %d, %s: %b }%s\n"
          (key "scheduler") q.st_sched (key "jobs") q.st_jobs
          (key "tasks_total") q.st_tasks
          (key "segments_total") q.st_segments
          (key "wall_s") q.st_wall_s
          (key "tasks_per_s")
          (float_of_int q.st_tasks /. Float.max 1e-9 q.st_wall_s)
          (key "steal_attempts") q.st_steal_attempts
          (key "steals") q.st_steals (key "parks") q.st_parks
          (key "identical_to_seq") q.st_identical
          (if i = List.length ps - 1 then "" else ","))
      ps;
    p "  ],\n");
  (match !lattice_rows with
  | [] -> ()
  | rows ->
    let opt = function Some n -> string_of_int n | None -> "null" in
    p "  %s: [\n" (key "lattice");
    List.iteri
      (fun i r ->
        p "    { %s: \"%s\", %s: %s, %s: %s, %s: %b, %s: %.4f }%s\n"
          (key "spec") (json_escape r.lt_spec)
          (key "window") (opt r.lt_window)
          (key "fetch") (opt r.lt_fetch)
          (key "value_predict") r.lt_vp
          (key "parallelism_hmean") r.lt_hmean
          (if i = List.length rows - 1 then "" else ","))
      rows;
    p "  ],\n");
  (match !static_rows with
  | [] -> ()
  | rows ->
    p "  %s: [\n" (key "static_bounds");
    List.iteri
      (fun i r ->
        p "    { %s: \"%s\", %s: \"%s\", %s: %s, %s: %.4f, %s: %b }%s\n"
          (key "name") (json_escape r.sb_workload)
          (key "spec") (json_escape r.sb_spec)
          (key "bound")
          (if r.sb_bound = infinity then "null"
           else Printf.sprintf "%.4f" r.sb_bound)
          (key "measured") r.sb_measured (key "sound") r.sb_sound
          (if i = List.length rows - 1 then "" else ","))
      rows;
    p "  ],\n");
  (match !serve_soak_result with
  | None -> ()
  | Some s ->
    p "  %s: {\n" (key "serve_soak");
    p "    %s: %d, %s: %d, %s: %d, %s: %d,\n" (key "requests")
      s.sv_requests (key "ok") s.sv_ok (key "typed_errors")
      s.sv_typed_errors (key "shed") s.sv_shed;
    (* shed / every analyze submission (first tries + retries): the
       fraction of attempts the full queue turned away *)
    p "    %s: %.4f, %s: %d,\n" (key "shed_rate")
      (if s.sv_requests + s.sv_retries > 0 then
         float_of_int s.sv_shed
         /. float_of_int (s.sv_requests + s.sv_retries)
       else 0.)
      (key "retries") s.sv_retries;
    p "    %s: %.3f, %s: %.3f,\n" (key "p50_ms") s.sv_p50_ms (key "p99_ms")
      s.sv_p99_ms;
    p "    %s: %d, %s: %d,\n" (key "max_queue_depth") s.sv_max_queue_depth
      (key "queue_limit") s.sv_queue_limit;
    p "    %s: %d, %s: %d,\n" (key "cache_hits") s.sv_cache_hits
      (key "cache_misses") s.sv_cache_misses;
    p "    %s: %d, %s: %.3f\n" (key "jobs") s.sv_jobs (key "wall_s")
      s.sv_wall_s;
    p "  },\n");
  p "  %s: {\n" (key "totals");
  p "    %s: %d,\n" (key "vm_executions") (Harness.Counters.executions ());
  p "    %s: %d,\n" (key "trace_passes") (Harness.Counters.passes ());
  p "    %s: %d,\n" (key "trace_entries_scanned") (Harness.Counters.entries ());
  p "    %s: %d\n" (key "instructions_analyzed") (Harness.Counters.analyzed ());
  p "  },\n";
  let terms =
    List.sort compare
      (Hashtbl.fold (fun name t acc -> (name, t) :: acc) term_store [])
  in
  p "  %s: [\n" (key "workloads");
  List.iteri
    (fun i (name, t) ->
      let stages =
        match stage_durations name with
        | Some (c, e, a) ->
          Printf.sprintf ", %s: { %s: %Ld, %s: %Ld, %s: %Ld }" (key "stages")
            (key "compile_ns") c (key "execute_ns") e (key "analyze_ns") a
        | None -> ""
      in
      p "    { %s: \"%s\", %s: \"%s\", %s: %d, %s: %s, %s: \"%s\"%s }%s\n"
        (key "name") (json_escape name) (key "status")
        (json_escape t.m_status) (key "steps") t.m_steps (key "returned")
        (match t.m_returned with Some v -> string_of_int v | None -> "null")
        (key "completeness")
        (json_escape t.m_completeness)
        stages
        (if i = List.length terms - 1 then "" else ","))
    terms;
  p "  ],\n";
  p "  %s: [\n" (key "experiments");
  List.iteri
    (fun i t ->
      let ips =
        if t.wall_s > 0. then float_of_int t.instructions /. t.wall_s else 0.
      in
      let span =
        match t.t_span_ns with
        | Some ns -> Printf.sprintf ", %s: %Ld" (key "span_ns") ns
        | None -> ""
      in
      let metrics =
        if not (Obs.Ctx.enabled !obs) then ""
        else
          Printf.sprintf ", %s: [ %s ]" (key "metrics")
            (String.concat ", "
               (List.map
                  (fun (n, v) ->
                    Printf.sprintf "{ %s: \"%s\", %s: %d }" (key "name")
                      (json_escape n) (key "value") v)
                  t.t_metric_deltas))
      in
      p "    { %s: \"%s\", %s: %.3f, %s: %d, %s: %d, %s: %.0f%s%s }%s\n"
        (key "name") (json_escape t.t_name) (key "wall_s") t.wall_s
        (key "instructions_analyzed") t.instructions
        (key "instructions_requested") t.requested
        (key "instructions_per_s") ips span metrics
        (if i = List.length timings - 1 then "" else ","))
    timings;
  p "  ]\n";
  p "}\n";
  close_out oc

let run_experiments selected =
  (* Union the needs of everything selected up front, then prefill:
     every workload runs its one execution and one fan-out pass on
     behalf of all selected experiments, in parallel when --jobs allows. *)
  let selected = List.map (fun e -> (e, e.needs ())) selected in
  List.iter
    (fun (e, needs) ->
      List.iter (fun (w, specs) -> register_needs w specs) needs;
      match e.hook with
      | Some h -> prep_hooks := !prep_hooks @ [ h ]
      | None -> ())
    selected;
  prefill ();
  let counter_values snap =
    List.filter_map
      (fun (s : Obs.Metrics.snap) ->
        match s.value with
        | Obs.Metrics.Counter v -> Some (s.name, v)
        | Obs.Metrics.Gauge _ | Obs.Metrics.Histogram _ -> None)
      snap
  in
  let counter_deltas before after =
    let b = Hashtbl.create 64 in
    List.iter (fun (n, v) -> Hashtbl.replace b n v) before;
    List.filter_map
      (fun (n, v) ->
        let d = v - Option.value ~default:0 (Hashtbl.find_opt b n) in
        if d <> 0 then Some (n, d) else None)
      after
  in
  let timings =
    List.mapi
      (fun i (e, needs) ->
        let before = Harness.Counters.analyzed () in
        let snap0 =
          if Obs.Ctx.enabled !obs then
            counter_values (Obs.Ctx.snapshot !obs)
          else []
        in
        let ebuf =
          Obs.Ctx.task_buffer !obs ~index:(experiment_index i) ~label:e.name
        in
        let t0 = now_s () in
        Obs.Span.with_span ebuf ~workload:e.name "experiment" e.run;
        let wall = now_s () -. t0 in
        let span_ns =
          match Obs.Span.spans ebuf with
          | [||] -> None
          | spans -> Some (Obs.Span.dur_ns spans.(0))
        in
        let metric_deltas =
          if Obs.Ctx.enabled !obs then
            counter_deltas snap0 (counter_values (Obs.Ctx.snapshot !obs))
          else []
        in
        (* The experiment's share of the prefill: entries its workloads
           scanned, times the machine states it asked to advance. *)
        let requested =
          List.fold_left
            (fun acc ((w : Workloads.Registry.t), specs) ->
              match Hashtbl.find_opt term_store w.name with
              | Some t -> acc + (t.m_steps * List.length (dedup_specs specs))
              | None -> acc)
            0 needs
        in
        { t_name = e.name; wall_s = wall;
          instructions = Harness.Counters.analyzed () - before;
          requested; t_span_ns = span_ns; t_metric_deltas = metric_deltas })
      selected
  in
  write_json "BENCH_results.json" timings;
  if Obs.Ctx.enabled !obs then begin
    let spans = Obs.Ctx.spans !obs in
    let snap = Obs.Ctx.snapshot !obs in
    (match !trace_out with
    | Some path ->
      let buf = Buffer.create 4096 in
      Obs.Export.jsonl buf ~spans ~metrics:snap;
      let oc = open_out path in
      Buffer.output_buffer oc buf;
      close_out oc
    | None -> ());
    if !metrics_flag then begin
      let buf = Buffer.create 4096 in
      Obs.Export.tree buf ~metrics:snap spans;
      print_string (Buffer.contents buf)
    end
  end;
  Format.printf
    "@.[BENCH_results.json: %d experiments, %d VM executions, %d analyzer \
     passes, %d Minstr analyzed, jobs=%d]@."
    (List.length timings)
    (Harness.Counters.executions ())
    (Harness.Counters.passes ())
    (Harness.Counters.analyzed () / 1_000_000)
    (resolved_jobs ());
  if !scaling_failed || !segment_failed || !steal_failed || !static_failed
     || !serve_failed
  then exit 1

let usage () =
  prerr_endline
    "usage: main.exe [--fuel N] [--jobs N] [--segment-steps N|auto] \
     [--scheduler locked|steal] [--metrics] [--trace-out FILE] [--list] \
     [experiment ...]\n\
     With no experiment names, runs everything except `scaling`, \
     `segment-scaling` and `steal-throughput`.";
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse names = function
    | [] -> List.rev names
    | "--list" :: _ ->
      List.iter (fun e -> print_endline e.name) experiments;
      exit 0
    | "--fuel" :: n :: rest ->
      (match int_of_string_opt n with
      | Some f when f > 0 -> fuel_override := Some f
      | _ -> usage ());
      parse names rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j -> (
        (* same typed validation (and message, and exit code) as the
           CLI's run and fuzz commands *)
        match Cli.Parallel.validate_jobs j with
        | Ok j -> jobs_override := Some j
        | Error e ->
          prerr_endline ("bench: " ^ Pipeline_error.to_string e);
          exit (Pipeline_error.exit_code e))
      | None -> usage ());
      parse names rest
    | "--segment-steps" :: s :: rest ->
      (* same parser (and typed error, and exit code) as run/serve *)
      (match Cli.Parallel.segmenting_of_flag (Some s) with
      | Ok seg -> segment_override := seg
      | Error e ->
        prerr_endline ("bench: " ^ Pipeline_error.to_string e);
        exit (Pipeline_error.exit_code e));
      parse names rest
    | "--scheduler" :: s :: rest ->
      (match Cli.Parallel.scheduler_of_flag (Some s) with
      | Ok sched -> scheduler_override := sched
      | Error e ->
        prerr_endline ("bench: " ^ Pipeline_error.to_string e);
        exit (Pipeline_error.exit_code e));
      parse names rest
    | "--metrics" :: rest ->
      metrics_flag := true;
      parse names rest
    | "--trace-out" :: f :: rest ->
      trace_out := Some f;
      parse names rest
    | ("--fuel" | "--jobs" | "--trace-out" | "--segment-steps"
      | "--scheduler") :: [] ->
      usage ()
    | name :: rest -> parse (name :: names) rest
  in
  let names = parse [] args in
  if !metrics_flag || !trace_out <> None then obs := Obs.Ctx.create ();
  let with_banner e =
    { e with
      run =
        (fun () ->
          Format.printf "@.### %s ###@.@." e.name;
          e.run ()) }
  in
  let selected =
    match names with
    | [] -> List.map with_banner default_experiments
    | names ->
      List.map
        (fun name ->
          match List.find_opt (fun e -> e.name = name) experiments with
          | Some e -> e
          | None ->
            prerr_endline ("unknown experiment: " ^ name);
            exit 1)
        names
  in
  run_experiments selected

(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation, plus the ablations DESIGN.md calls out and
   Bechamel micro-benchmarks of the pipeline stages.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- table3    # one experiment
     dune exec bench/main.exe -- --list    # available experiments

   Paper-vs-measured commentary lives in EXPERIMENTS.md. *)

let machines = Ilp.Machine.all_paper
let machine_names = List.map (fun (m : Ilp.Machine.t) -> m.name) machines

(* Workloads are prepared once and shared by all experiments. *)
let prepared : (string, Harness.prepared) Hashtbl.t = Hashtbl.create 16

let prep (w : Workloads.Registry.t) =
  match Hashtbl.find_opt prepared w.name with
  | Some p -> p
  | None ->
    let p = Harness.prepare w in
    Hashtbl.add prepared w.name p;
    p

let fnum = Report.Table.fnum

let harmonic_of column rows =
  Stdx.Stats.harmonic_mean (List.map (fun r -> List.nth r column) rows)

(* ------------------------------------------------------------------ *)

let table1 () =
  let rows =
    List.map
      (fun (w : Workloads.Registry.t) ->
        [ w.name; w.lang; w.description ])
      Workloads.Registry.all
  in
  print_string
    (Report.Table.render ~title:"Table 1: Benchmark Programs"
       ~header:[ "Program"; "Language"; "Description" ]
       ~align:[ Left; Left; Left ] rows)

let table2 () =
  let rows =
    List.map
      (fun w ->
        let p = prep w in
        let bs = Harness.branch_stats p in
        [ w.Workloads.Registry.name;
          Printf.sprintf "%.2f" bs.rate;
          Printf.sprintf "%.1f" bs.instrs_between ])
      Workloads.Registry.all
  in
  print_string
    (Report.Table.render ~title:"Table 2: Branch Statistics"
       ~header:
         [ "Program"; "Prediction Rate";
           "Dynamic Instructions Between Branches" ]
       ~align:[ Left; Right; Right ] rows)

let parallelism_row ?(inline = true) ?(unroll = true) w =
  let p = prep w in
  List.map
    (fun m ->
      (Harness.analyze ~inline ~unroll p m).Ilp.Analyze.parallelism)
    machines

let table3 () =
  let non_numeric =
    List.map
      (fun w -> (w.Workloads.Registry.name, parallelism_row w))
      Workloads.Registry.non_numeric
  in
  let numeric =
    List.map
      (fun w -> (w.Workloads.Registry.name, parallelism_row w))
      Workloads.Registry.numeric
  in
  let hmean =
    List.mapi (fun i _ -> harmonic_of i (List.map snd non_numeric)) machines
  in
  let render_row (name, pars) = name :: List.map fnum pars in
  let rows =
    List.map render_row non_numeric
    @ [ "Harmonic Mean" :: List.map fnum hmean ]
    @ [ [ "-" ] ]
    @ List.map render_row numeric
  in
  print_string
    (Report.Table.render
       ~title:"Table 3: Parallelism for each Machine Model"
       ~header:("Program" :: machine_names)
       ~align:(Left :: List.map (fun _ -> Report.Table.Right) machines)
       rows)

let table4 () =
  let rows =
    List.map
      (fun w ->
        let with_unroll = parallelism_row ~unroll:true w in
        let without = parallelism_row ~unroll:false w in
        let pct =
          List.map2
            (fun a b -> Printf.sprintf "%+.0f" (100. *. (a -. b) /. b))
            with_unroll without
        in
        w.Workloads.Registry.name :: pct)
      Workloads.Registry.all
  in
  print_string
    (Report.Table.render
       ~title:
         "Table 4: Percent Change in Parallelism due to Perfect Loop \
          Unrolling"
       ~header:("Program" :: machine_names)
       ~align:(Left :: List.map (fun _ -> Report.Table.Right) machines)
       rows)

(* Figure 2/3: the worked example.  A reconstruction of the paper's
   flow graph: a loop containing a data-dependent conditional, followed
   by control-independent code.  We print the per-machine schedule of a
   short trace, the analogue of Figure 3. *)
let figure3 () =
  let source =
    {|
int a[6] = {1, 0, 1, 1, 0, 1};
int out;
int side;

int main(void) {
  int i;
  int x = 0;
  for (i = 0; i < 6; i = i + 1) {
    if (a[i]) x = x + 1;     // node 3: the predicted side
    else side = side + 1;    // node 4: taken on mispredictions
  }
  out = 7;                   // nodes 6,7: control independent of loop
  return x;
}
|}
  in
  let p = Harness.prepare_source ~name:"figure2" source in
  Format.printf
    "Figure 3 (reconstruction): schedules of the Figure-2-style loop@.";
  Format.printf
    "(loop with a data-dependent if, then control-independent code)@.@.";
  let rows =
    List.map
      (fun m ->
        let r = Harness.analyze p m in
        [ r.Ilp.Analyze.machine; string_of_int r.counted;
          string_of_int r.cycles; fnum r.parallelism ])
      machines
  in
  print_string
    (Report.Table.render ~header:[ "Machine"; "Instrs"; "Cycles"; "Par" ]
       ~align:[ Left; Right; Right; Right ] rows)

let figure4 () =
  let rows =
    List.map
      (fun w ->
        let p = prep w in
        let base = (Harness.analyze p Ilp.Machine.base).parallelism in
        let cd = (Harness.analyze p Ilp.Machine.cd).parallelism in
        let cd_mf = (Harness.analyze p Ilp.Machine.cd_mf).parallelism in
        (w.Workloads.Registry.name, [ base; cd; cd_mf ]))
      Workloads.Registry.non_numeric
  in
  print_string
    (Report.Chart.grouped_bars
       ~title:"Figure 4: Parallelism with Control Dependence Analysis"
       ~group_names:[ "BASE"; "CD"; "CD-MF" ]
       rows)

let figure5 () =
  let rows =
    List.map
      (fun w ->
        let p = prep w in
        let get m = (Harness.analyze p m).Ilp.Analyze.parallelism in
        ( w.Workloads.Registry.name,
          [ get Ilp.Machine.base; get Ilp.Machine.sp;
            get Ilp.Machine.sp_cd; get Ilp.Machine.sp_cd_mf ] ))
      Workloads.Registry.non_numeric
  in
  print_string
    (Report.Chart.grouped_bars
       ~title:"Figure 5: Parallelism with Speculative Execution"
       ~group_names:[ "BASE"; "SP"; "SP-CD"; "SP-CD-MF" ]
       rows)

let sp_segments w =
  let p = prep w in
  (Harness.analyze ~segments:true p Ilp.Machine.sp).Ilp.Analyze.segments

let figure6 () =
  let curves =
    List.map
      (fun w -> Ilp.Stats.cumulative_distances (sp_segments w))
      Workloads.Registry.non_numeric
  in
  print_string
    (Report.Chart.cdf
       ~title:
         "Figure 6: Cumulative Distribution of Misprediction Distances \
          (one curve per non-numeric program)"
       ~x_label:"misprediction distance"
       curves);
  let all = List.concat_map (fun w ->
      Array.to_list (sp_segments w)) Workloads.Registry.non_numeric
  in
  let under n =
    let total = List.length all in
    let c = List.length
        (List.filter (fun (s : Ilp.Analyze.segment) -> s.length <= n) all)
    in
    100. *. float_of_int c /. float_of_int total
  in
  Format.printf
    "@.%.1f%% of mispredictions occur within a distance of 100 \
     instructions@.(paper: over 80%%); %.1f%% within 1000.@."
    (under 100) (under 1000)

let figure7 () =
  let all =
    Array.concat
      (List.map sp_segments Workloads.Registry.non_numeric)
  in
  let buckets = Ilp.Stats.parallelism_by_distance all in
  let rows =
    List.map
      (fun (b : Ilp.Stats.bucket) ->
        ( Printf.sprintf "%5d-%-5d %7d segs" b.lo b.hi b.count,
          b.mean_parallelism ))
      buckets
  in
  print_string
    (Report.Chart.bars
       ~title:
         "Figure 7: Parallelism vs Misprediction Distance (all non-numeric \
          programs combined; harmonic mean per bucket)"
       rows)

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper (DESIGN.md §7). *)

let ablation_window () =
  let windows = [ 32; 128; 512; 2048 ] in
  let rows =
    List.map
      (fun w ->
        let p = prep w in
        let get m = (Harness.analyze p m).Ilp.Analyze.parallelism in
        w.Workloads.Registry.name
        :: (List.map
              (fun wsz ->
                fnum (get (Ilp.Machine.with_window wsz Ilp.Machine.sp_cd_mf)))
              windows
           @ [ fnum (get Ilp.Machine.sp_cd_mf) ]))
      Workloads.Registry.non_numeric
  in
  print_string
    (Report.Table.render
       ~title:"Ablation: SP-CD-MF under a finite scheduling window"
       ~header:
         ("Program"
         :: (List.map (fun w -> Printf.sprintf "w=%d" w) windows
            @ [ "unlimited" ]))
       ~align:(Left :: List.map (fun _ -> Report.Table.Right)
                 (windows @ [ 0 ]))
       rows)

let ablation_flows () =
  let flows = [ 1; 2; 4; 8 ] in
  let rows =
    List.map
      (fun w ->
        let p = prep w in
        let get m = (Harness.analyze p m).Ilp.Analyze.parallelism in
        w.Workloads.Registry.name
        :: (List.map
              (fun k ->
                fnum (get (Ilp.Machine.with_flows (Some k) Ilp.Machine.sp_cd)))
              flows
           @ [ fnum (get Ilp.Machine.sp_cd_mf) ]))
      Workloads.Registry.non_numeric
  in
  print_string
    (Report.Table.render
       ~title:
         "Ablation: k flows of control between SP-CD (k=1) and SP-CD-MF"
       ~header:
         ("Program"
         :: (List.map (fun k -> Printf.sprintf "k=%d" k) flows
            @ [ "unbounded" ]))
       ~align:(Left :: List.map (fun _ -> Report.Table.Right)
                 (flows @ [ 0 ]))
       rows)

let ablation_latency () =
  let rows =
    List.map
      (fun w ->
        let p = prep w in
        let get m = (Harness.analyze p m).Ilp.Analyze.parallelism in
        [ w.Workloads.Registry.name;
          fnum (get Ilp.Machine.sp_cd_mf);
          fnum
            (get
               (Ilp.Machine.with_latencies Ilp.Machine.realistic_latencies
                  Ilp.Machine.sp_cd_mf));
          fnum (get Ilp.Machine.oracle);
          fnum
            (get
               (Ilp.Machine.with_latencies Ilp.Machine.realistic_latencies
                  Ilp.Machine.oracle)) ])
      Workloads.Registry.all
  in
  print_string
    (Report.Table.render
       ~title:"Ablation: unit vs realistic operation latencies"
       ~header:
         [ "Program"; "SP-CD-MF"; "SP-CD-MF/lat"; "ORACLE"; "ORACLE/lat" ]
       ~align:[ Left; Right; Right; Right; Right ]
       rows)

let ablation_predictors () =
  let rows =
    List.map
      (fun w ->
        let p = prep w in
        let is_cond = Ilp.Program_info.is_cond_branch p.info in
        let rate pr = (Predict.Predictor.measure pr ~is_cond p.trace).rate in
        let sp_with pr =
          (Harness.analyze ~predictor:pr p Ilp.Machine.sp).Ilp.Analyze
            .parallelism
        in
        let profile = Harness.profile_predictor p in
        let btfn =
          Predict.Predictor.backward_taken
            ~is_backward:(Ilp.Program_info.branch_backward p.flat)
        in
        let twobit () = Predict.Predictor.two_bit ~n_static:p.info.n in
        [ w.Workloads.Registry.name;
          Printf.sprintf "%.1f" (rate profile);
          Printf.sprintf "%.1f" (rate btfn);
          Printf.sprintf "%.1f" (rate (twobit ()));
          fnum (sp_with profile);
          fnum (sp_with btfn);
          fnum (sp_with (twobit ())) ])
      Workloads.Registry.all
  in
  print_string
    (Report.Table.render
       ~title:
         "Ablation: branch predictors (accuracy %, and SP parallelism)"
       ~header:
         [ "Program"; "profile"; "btfn"; "2-bit"; "SP/profile"; "SP/btfn";
           "SP/2-bit" ]
       ~align:[ Left; Right; Right; Right; Right; Right; Right ]
       rows)

let ablation_inline () =
  let rows =
    List.map
      (fun w ->
        let with_i = parallelism_row ~inline:true w in
        let without = parallelism_row ~inline:false w in
        let pct =
          List.map2
            (fun a b -> Printf.sprintf "%+.0f" (100. *. (a -. b) /. b))
            with_i without
        in
        w.Workloads.Registry.name :: pct)
      Workloads.Registry.all
  in
  print_string
    (Report.Table.render
       ~title:
         "Ablation: percent change in parallelism due to perfect inlining"
       ~header:("Program" :: machine_names)
       ~align:(Left :: List.map (fun _ -> Report.Table.Right) machines)
       rows)

let ablation_guarded () =
  let rows =
    List.map
      (fun w ->
        let both options =
          let p = Harness.prepare ~options w in
          let r = Harness.analyze ~segments:true p Ilp.Machine.sp in
          let mean_dist =
            if Array.length r.segments = 0 then 0.
            else
              float_of_int r.counted /. float_of_int (Array.length r.segments)
          in
          (r.Ilp.Analyze.parallelism, r.mispredicts, mean_dist)
        in
        let par0, mp0, d0 = both Codegen.Compile.default_options in
        let par1, mp1, d1 = both { Codegen.Compile.if_convert = true } in
        [ w.Workloads.Registry.name;
          fnum par0; string_of_int mp0; Printf.sprintf "%.1f" d0;
          fnum par1; string_of_int mp1; Printf.sprintf "%.1f" d1 ])
      Workloads.Registry.non_numeric
  in
  print_string
    (Report.Table.render
       ~title:
         "Ablation: guarded instructions (if-conversion to movn), SP \
          machine.  Guarding removes branches, so mispredictions drop \
          and the mean distance between them grows (paper \u{00a7}6)."
       ~header:
         [ "Program"; "SP"; "mispredicts"; "mean dist"; "SP/guarded";
           "mispredicts"; "mean dist" ]
       ~align:[ Left; Right; Right; Right; Right; Right; Right ]
       rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the pipeline stages. *)

let microbench () =
  let open Bechamel in
  let w = Workloads.Registry.find "eqntott" in
  let p = prep w in
  let predictor = Harness.profile_predictor p in
  let analyze_test (m : Ilp.Machine.t) =
    Test.make ~name:("analyze-" ^ m.name)
      (Staged.stage (fun () ->
           let cfg = Ilp.Analyze.config m predictor in
           ignore (Ilp.Analyze.run cfg p.info p.trace)))
  in
  let compile_test =
    Test.make ~name:"compile-eqntott"
      (Staged.stage (fun () ->
           ignore (Codegen.Compile.compile_flat w.source)))
  in
  let cfg_test =
    Test.make ~name:"static-analysis-eqntott"
      (Staged.stage (fun () -> ignore (Cfg.Analysis.analyze p.flat)))
  in
  let vm_test =
    Test.make ~name:"vm-execute-eqntott"
      (Staged.stage (fun () ->
           ignore (Vm.Exec.run ~fuel:w.fuel p.flat)))
  in
  let tests =
    Test.make_grouped ~name:"pipeline"
      [ compile_test; cfg_test; vm_test;
        analyze_test Ilp.Machine.base; analyze_test Ilp.Machine.sp_cd_mf;
        analyze_test Ilp.Machine.oracle ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 10) ()
    in
    Benchmark.all cfg instances tests
  in
  let results = benchmark () in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock results
  in
  Format.printf "Micro-benchmarks (ns per run, OLS fit):@.";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.printf "  %-28s %12.0f ns@." name est
      | _ -> Format.printf "  %-28s (no estimate)@." name)
    ols

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("table1", table1); ("table2", table2); ("table3", table3);
    ("table4", table4); ("figure3", figure3); ("figure4", figure4);
    ("figure5", figure5); ("figure6", figure6); ("figure7", figure7);
    ("ablation-window", ablation_window);
    ("ablation-flows", ablation_flows);
    ("ablation-latency", ablation_latency);
    ("ablation-predictors", ablation_predictors);
    ("ablation-inline", ablation_inline);
    ("ablation-guarded", ablation_guarded);
    ("microbench", microbench) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--list" ] ->
    List.iter (fun (name, _) -> print_endline name) experiments
  | [] ->
    List.iter
      (fun (name, f) ->
        Format.printf "@.### %s ###@.@." name;
        f ())
      experiments
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          prerr_endline ("unknown experiment: " ^ name);
          exit 1)
      names

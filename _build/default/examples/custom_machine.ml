(* Custom machine models: the paper's idealized machines have an
   unlimited scheduling window, unit latencies, and one or unbounded
   flows of control.  This example sweeps the extension knobs on a real
   workload and shows how each idealization matters.

     dune exec examples/custom_machine.exe *)

let () =
  let w = Workloads.Registry.find "espresso" in
  let p = Harness.prepare w in
  let run m = (Harness.analyze p m).Ilp.Analyze.parallelism in

  (* 1. Finite scheduling windows on the SP machine: how much of the
     "unlimited window" idealization does a real reorder buffer lose? *)
  let windows = [ 16; 64; 256; 1024; 4096 ] in
  let rows =
    List.map
      (fun wsz ->
        let m = Ilp.Machine.with_window wsz Ilp.Machine.sp in
        (Printf.sprintf "window %d" wsz, run m))
      windows
    @ [ ("unlimited", run Ilp.Machine.sp) ]
  in
  print_string
    (Report.Chart.bars ~title:"SP parallelism vs scheduling window (espresso)"
       rows);
  print_newline ();

  (* 2. Between one flow of control and unboundedly many: a k-processor
     machine executing k serializing branches per cycle.  The paper's
     CD is k=1 and CD-MF is k=inf; small k answers its closing question
     about small-scale multiprocessors. *)
  let flows = [ 1; 2; 4; 8; 16 ] in
  let rows =
    List.map
      (fun k ->
        let m = Ilp.Machine.with_flows (Some k) Ilp.Machine.cd in
        (Printf.sprintf "%2d flows" k, run m))
      flows
    @ [ ("unbounded", run Ilp.Machine.cd_mf) ]
  in
  print_string
    (Report.Chart.bars
       ~title:"CD parallelism vs flows of control (espresso)" rows);
  print_newline ();

  (* 3. Non-unit latencies: the paper notes unit latency measures "all"
     the parallelism; realistic latencies consume some of it to fill
     pipeline bubbles. *)
  let rows =
    List.map
      (fun (m : Ilp.Machine.t) ->
        let lat = Ilp.Machine.with_latencies
            Ilp.Machine.realistic_latencies m
        in
        (m.name, [ run m; run lat ]))
      [ Ilp.Machine.base; Ilp.Machine.sp; Ilp.Machine.sp_cd_mf;
        Ilp.Machine.oracle ]
  in
  print_string
    (Report.Chart.grouped_bars
       ~title:"Unit vs realistic latencies (espresso)"
       ~group_names:[ "unit"; "realistic" ]
       rows)

(* A tour of the substrate: every stage the reproduction builds on the
   way from Mini-C source to a parallelism number — tokens, AST, target
   assembly, basic blocks, control dependence, loop analysis, dynamic
   trace, and the analyzers.

     dune exec examples/compiler_pipeline.exe *)

let source =
  {|
int a[8] = {5, 3, 8, 1, 9, 2, 7, 4};

int main(void) {
  int i;
  int j;
  int n = 8;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n - 1 - i; j = j + 1) {
      if (a[j] > a[j + 1]) {
        int t = a[j];
        a[j] = a[j + 1];
        a[j + 1] = t;
      }
    }
  }
  return a[0] * 1000 + a[7];
}
|}

let () =
  Format.printf "=== 1. tokens (first ten) ===@.";
  let tokens = Minic.Lexer.tokenize source in
  List.iteri
    (fun i (t : Minic.Lexer.t) ->
      if i < 10 then Format.printf "  line %d: %a@." t.line
        Minic.Lexer.pp_token t.tok)
    tokens;

  Format.printf "@.=== 2. parse and type check ===@.";
  let ast = Minic.Parser.parse source in
  ignore (Minic.Sema.check ast);
  Format.printf "  %d globals, %d functions; main has %d statements@."
    (List.length ast.globals) (List.length ast.funcs)
    (List.length (List.hd ast.funcs).body);

  Format.printf "@.=== 3. generated assembly ===@.";
  let flat = Asm.Program.resolve (Codegen.Compile.program ast) in
  Format.printf "%a@." Asm.Program.pp_flat flat;

  Format.printf "=== 4. static analysis ===@.";
  let cfg = Cfg.Analysis.analyze flat in
  Format.printf "  %d basic blocks, %d natural loops@."
    (Array.length cfg.graph.blocks)
    (List.length cfg.loops.loops);
  List.iter
    (fun (l : Cfg.Loops.loop) ->
      Format.printf "  loop at block %d: induction registers [%s]@."
        l.header
        (String.concat ", "
           (List.map
              (fun r -> Format.asprintf "%a" Risc.Reg.pp_uid r)
              l.induction)))
    cfg.loops.loops;
  let overhead = Array.to_list cfg.loops.overhead in
  Format.printf "  %d instructions marked as loop overhead@."
    (List.length (List.filter Fun.id overhead));

  Format.printf "@.=== 5. execution and trace ===@.";
  let outcome = Vm.Exec.run flat in
  (match outcome.status with
  | Vm.Exec.Halted v -> Format.printf "  bubble sort result: %d@." v
  | _ -> Format.printf "  did not halt!@.");
  Format.printf "  %d dynamic instructions@." outcome.steps;

  Format.printf "@.=== 6. the seven machines ===@.";
  let info = Ilp.Program_info.of_flat flat cfg in
  let predictor =
    Predict.Predictor.profile ~n_static:info.n
      ~is_cond:(Ilp.Program_info.is_cond_branch info)
      outcome.trace
  in
  List.iter
    (fun machine ->
      let config = Ilp.Analyze.config machine predictor in
      let r = Ilp.Analyze.run config info outcome.trace in
      Format.printf "  %-9s %6d instructions in %6d cycles: %sx@." r.machine
        r.counted r.cycles
        (Report.Table.fnum r.parallelism))
    Ilp.Machine.all_paper

examples/compiler_pipeline.ml: Array Asm Cfg Codegen Format Fun Ilp List Minic Predict Report Risc String Vm

examples/quickstart.ml: Format Harness Ilp List Report

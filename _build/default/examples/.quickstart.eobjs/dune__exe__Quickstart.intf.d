examples/quickstart.mli:

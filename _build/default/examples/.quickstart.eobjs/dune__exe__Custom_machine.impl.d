examples/custom_machine.ml: Harness Ilp List Printf Report Workloads

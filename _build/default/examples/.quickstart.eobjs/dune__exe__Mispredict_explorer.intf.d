examples/mispredict_explorer.mli:

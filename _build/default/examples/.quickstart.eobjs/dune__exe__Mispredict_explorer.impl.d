examples/mispredict_explorer.ml: Array Format Harness Ilp List Printf Report Sys Workloads

type prepared = {
  workload : Workloads.Registry.t;
  flat : Asm.Program.flat;
  info : Ilp.Program_info.t;
  trace : Vm.Trace.t;
  steps : int;
  halted : int option;
}

let prepare ?options ?fuel w =
  let flat, outcome = Workloads.Registry.run ?options ?fuel w in
  let info = Ilp.Program_info.analyze_flat flat in
  let halted =
    match outcome.status with
    | Vm.Exec.Halted v -> Some v
    | Out_of_fuel -> None
    | Fault _ -> None
  in
  { workload = w; flat; info; trace = outcome.trace;
    steps = outcome.steps; halted }

let prepare_source ?(fuel = 10_000_000) ~name source =
  let w =
    { Workloads.Registry.name; description = "ad hoc source"; lang = "C";
      numeric = false; source; fuel; expected_result = None }
  in
  prepare w

let profile_predictor p =
  Predict.Predictor.profile ~n_static:p.info.n
    ~is_cond:(Ilp.Program_info.is_cond_branch p.info)
    p.trace

let analyze ?(inline = true) ?(unroll = true) ?(segments = false) ?predictor
    p machine =
  let predictor =
    match predictor with Some pr -> pr | None -> profile_predictor p
  in
  let cfg =
    Ilp.Analyze.config ~inline ~unroll ~collect_segments:segments
      ~mem_words:Vm.Exec.default_mem_words machine predictor
  in
  Ilp.Analyze.run cfg p.info p.trace

let analyze_all ?inline ?unroll p machines =
  List.map (analyze ?inline ?unroll p) machines

let branch_stats p = Ilp.Stats.branch_stats p.info (profile_predictor p) p.trace

(** Convenience layer tying the pipeline together: compile a workload,
    trace it once, and analyze the trace under any machine model.  The
    trace and static analysis are shared across machine models, as in
    the paper's simulator. *)

type prepared = {
  workload : Workloads.Registry.t;
  flat : Asm.Program.flat;
  info : Ilp.Program_info.t;
  trace : Vm.Trace.t;
  steps : int;
  halted : int option;  (** the program's return value, when it halted *)
}

val prepare :
  ?options:Codegen.Compile.options ->
  ?fuel:int ->
  Workloads.Registry.t ->
  prepared
(** Compile (optionally with if-conversion), statically analyze, and
    execute one workload. *)

val prepare_source : ?fuel:int -> name:string -> string -> prepared
(** Same for an arbitrary Mini-C source string. *)

val profile_predictor : prepared -> Predict.Predictor.t
(** The paper's predictor: profile statistics from this same trace. *)

val analyze :
  ?inline:bool ->
  ?unroll:bool ->
  ?segments:bool ->
  ?predictor:Predict.Predictor.t ->
  prepared ->
  Ilp.Machine.t ->
  Ilp.Analyze.result
(** Run one machine model over the prepared trace.  Defaults follow the
    paper: perfect inlining and unrolling on, profile prediction. *)

val analyze_all :
  ?inline:bool ->
  ?unroll:bool ->
  prepared ->
  Ilp.Machine.t list ->
  Ilp.Analyze.result list

val branch_stats : prepared -> Ilp.Stats.branch_stats
(** Table 2 statistics for the prepared trace. *)

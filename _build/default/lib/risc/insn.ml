type alu =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt
  | Sle
  | Seq
  | Sne

type falu = Fadd | Fsub | Fmul | Fdiv
type fcmp = Flt | Fle | Feq
type cond = Eq | Ne | Lt | Le | Gt | Ge

type 'lab t =
  | Alu of alu * Reg.t * Reg.t * Reg.t
  | Alui of alu * Reg.t * Reg.t * int
  | Li of Reg.t * int
  | Fli of Reg.f * float
  | Lw of Reg.t * Reg.t * int
  | Sw of Reg.t * Reg.t * int
  | Flw of Reg.f * Reg.t * int
  | Fsw of Reg.f * Reg.t * int
  | Falu of falu * Reg.f * Reg.f * Reg.f
  | Fcmp of fcmp * Reg.t * Reg.f * Reg.f
  | Movn of Reg.t * Reg.t * Reg.t
  | Fmov of Reg.f * Reg.f
  | I2f of Reg.f * Reg.t
  | F2i of Reg.t * Reg.f
  | B of cond * Reg.t * Reg.t * 'lab
  | Bi of cond * Reg.t * int * 'lab
  | J of 'lab
  | Jal of 'lab
  | Jr of Reg.t
  | Jtab of Reg.t * 'lab array
  | Halt

type kind =
  | Plain
  | Cond_branch
  | Jump
  | Computed_jump
  | Call
  | Ret
  | Stop

let kind = function
  | B _ | Bi _ -> Cond_branch
  | J _ -> Jump
  | Jal _ -> Call
  | Jr _ -> Ret
  | Jtab _ -> Computed_jump
  | Halt -> Stop
  | Alu _ | Alui _ | Li _ | Fli _ | Lw _ | Sw _ | Flw _ | Fsw _ | Falu _
  | Fcmp _ | Movn _ | Fmov _ | I2f _ | F2i _ ->
    Plain

(* Unified ids: integer register r has id r; float register f has 32+f.
   r0 never appears in dependence lists. *)
let ints rs = List.filter (fun r -> r <> Reg.zero) rs
let f uid = Reg.uid_of_float uid

let uses = function
  | Alu (_, _, rs, rt) -> ints [ rs; rt ]
  | Alui (_, _, rs, _) -> ints [ rs ]
  | Li _ | Fli _ -> []
  | Lw (_, base, _) -> ints [ base ]
  | Sw (rsrc, base, _) -> ints [ rsrc; base ]
  | Flw (_, base, _) -> ints [ base ]
  | Fsw (fsrc, base, _) -> f fsrc :: ints [ base ]
  | Falu (_, _, fs, ft) -> [ f fs; f ft ]
  | Fcmp (_, _, fs, ft) -> [ f fs; f ft ]
  | Movn (rd, rs, rguard) -> ints [ rd; rs; rguard ]
  | Fmov (_, fs) -> [ f fs ]
  | I2f (_, rs) -> ints [ rs ]
  | F2i (_, fs) -> [ f fs ]
  | B (_, rs, rt, _) -> ints [ rs; rt ]
  | Bi (_, rs, _, _) -> ints [ rs ]
  | J _ | Jal _ | Halt -> []
  | Jr rs -> ints [ rs ]
  | Jtab (rs, _) -> ints [ rs ]

let defs = function
  | Alu (_, rd, _, _) | Alui (_, rd, _, _) | Li (rd, _) | Lw (rd, _, _)
  | Fcmp (_, rd, _, _)
  | Movn (rd, _, _)
  | F2i (rd, _) ->
    ints [ rd ]
  | Fli (fd, _) | Flw (fd, _, _) | Falu (_, fd, _, _) | Fmov (fd, _)
  | I2f (fd, _) ->
    [ f fd ]
  | Sw _ | Fsw _ | B _ | Bi _ | J _ | Jr _ | Jtab _ | Halt -> []
  | Jal _ -> [ Reg.ra ]

let writes_sp i = List.mem Reg.sp (defs i)

let is_load = function Lw _ | Flw _ -> true | _ -> false
let is_store = function Sw _ | Fsw _ -> true | _ -> false

let map_label fn = function
  | Alu (op, a, b, c) -> Alu (op, a, b, c)
  | Alui (op, a, b, i) -> Alui (op, a, b, i)
  | Li (a, i) -> Li (a, i)
  | Fli (a, x) -> Fli (a, x)
  | Lw (a, b, o) -> Lw (a, b, o)
  | Sw (a, b, o) -> Sw (a, b, o)
  | Flw (a, b, o) -> Flw (a, b, o)
  | Fsw (a, b, o) -> Fsw (a, b, o)
  | Falu (op, a, b, c) -> Falu (op, a, b, c)
  | Fcmp (op, a, b, c) -> Fcmp (op, a, b, c)
  | Movn (a, b, c) -> Movn (a, b, c)
  | Fmov (a, b) -> Fmov (a, b)
  | I2f (a, b) -> I2f (a, b)
  | F2i (a, b) -> F2i (a, b)
  | B (c, a, b, l) -> B (c, a, b, fn l)
  | Bi (c, a, i, l) -> Bi (c, a, i, fn l)
  | J l -> J (fn l)
  | Jal l -> Jal (fn l)
  | Jr r -> Jr r
  | Jtab (r, ls) -> Jtab (r, Array.map fn ls)
  | Halt -> Halt

let eval_alu op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> a / b
  | Rem -> a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Sll -> a lsl (b land 31)
  | Srl -> a lsr (b land 31)
  | Sra -> a asr (b land 31)
  | Slt -> if a < b then 1 else 0
  | Sle -> if a <= b then 1 else 0
  | Seq -> if a = b then 1 else 0
  | Sne -> if a <> b then 1 else 0

let eval_falu op a b =
  match op with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b

let eval_fcmp op a b =
  let r =
    match op with Flt -> a < b | Fle -> a <= b | Feq -> a = b
  in
  if r then 1 else 0

let eval_cond c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | Slt -> "slt"
  | Sle -> "sle"
  | Seq -> "seq"
  | Sne -> "sne"

let falu_name = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let fcmp_name = function Flt -> "flt" | Fle -> "fle" | Feq -> "feq"

let cond_name = function
  | Eq -> "beq"
  | Ne -> "bne"
  | Lt -> "blt"
  | Le -> "ble"
  | Gt -> "bgt"
  | Ge -> "bge"

let pp ~pp_lab ppf insn =
  let r = Reg.pp and fr = Reg.pp_f in
  match insn with
  | Alu (op, rd, rs, rt) ->
    Format.fprintf ppf "%s %a, %a, %a" (alu_name op) r rd r rs r rt
  | Alui (op, rd, rs, imm) ->
    Format.fprintf ppf "%si %a, %a, %d" (alu_name op) r rd r rs imm
  | Li (rd, imm) -> Format.fprintf ppf "li %a, %d" r rd imm
  | Fli (fd, x) -> Format.fprintf ppf "fli %a, %g" fr fd x
  | Lw (rd, base, off) ->
    Format.fprintf ppf "lw %a, %d(%a)" r rd off r base
  | Sw (rsrc, base, off) ->
    Format.fprintf ppf "sw %a, %d(%a)" r rsrc off r base
  | Flw (fd, base, off) ->
    Format.fprintf ppf "flw %a, %d(%a)" fr fd off r base
  | Fsw (fsrc, base, off) ->
    Format.fprintf ppf "fsw %a, %d(%a)" fr fsrc off r base
  | Falu (op, fd, fs, ft) ->
    Format.fprintf ppf "%s %a, %a, %a" (falu_name op) fr fd fr fs fr ft
  | Fcmp (op, rd, fs, ft) ->
    Format.fprintf ppf "%s %a, %a, %a" (fcmp_name op) r rd fr fs fr ft
  | Movn (rd, rs, rg) ->
    Format.fprintf ppf "movn %a, %a, %a" r rd r rs r rg
  | Fmov (fd, fs) -> Format.fprintf ppf "fmov %a, %a" fr fd fr fs
  | I2f (fd, rs) -> Format.fprintf ppf "i2f %a, %a" fr fd r rs
  | F2i (rd, fs) -> Format.fprintf ppf "f2i %a, %a" r rd fr fs
  | B (c, rs, rt, lab) ->
    Format.fprintf ppf "%s %a, %a, %a" (cond_name c) r rs r rt pp_lab lab
  | Bi (c, rs, imm, lab) ->
    Format.fprintf ppf "%si %a, %d, %a" (cond_name c) r rs imm pp_lab lab
  | J lab -> Format.fprintf ppf "j %a" pp_lab lab
  | Jal lab -> Format.fprintf ppf "jal %a" pp_lab lab
  | Jr rs -> Format.fprintf ppf "jr %a" r rs
  | Jtab (rs, labs) ->
    Format.fprintf ppf "jtab %a, [%a]" r rs
      (Format.pp_print_array
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         pp_lab)
      labs
  | Halt -> Format.fprintf ppf "halt"

let pp_string ppf insn = pp ~pp_lab:Format.pp_print_string ppf insn
let pp_resolved ppf insn = pp ~pp_lab:Format.pp_print_int ppf insn

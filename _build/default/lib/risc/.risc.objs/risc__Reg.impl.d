lib/risc/reg.ml: Format

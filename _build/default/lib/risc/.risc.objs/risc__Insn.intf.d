lib/risc/insn.mli: Format Reg

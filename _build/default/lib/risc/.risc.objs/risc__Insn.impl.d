lib/risc/insn.ml: Array Format List Reg

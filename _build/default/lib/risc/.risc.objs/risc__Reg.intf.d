lib/risc/reg.mli: Format

(** Instructions of the MIPS-like target ISA.

    The instruction type is polymorphic in the label representation:
    the assembler works on [string t] and resolves labels into absolute
    code indices, producing [int t] for the VM and the analyzers.

    Memory is word addressed: loads and stores move one cell between a
    register and [mem.(base + offset)].  Integer and floating point
    accesses share one address space (an address denotes the same
    variable regardless of access width), which is what dependence
    analysis cares about. *)

type alu =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt
  | Sle
  | Seq
  | Sne

type falu = Fadd | Fsub | Fmul | Fdiv

type fcmp = Flt | Fle | Feq

type cond = Eq | Ne | Lt | Le | Gt | Ge

type 'lab t =
  | Alu of alu * Reg.t * Reg.t * Reg.t  (** [rd <- rs op rt] *)
  | Alui of alu * Reg.t * Reg.t * int  (** [rd <- rs op imm] *)
  | Li of Reg.t * int  (** [rd <- imm] *)
  | Fli of Reg.f * float  (** [fd <- imm] *)
  | Lw of Reg.t * Reg.t * int  (** [rd <- mem[rs + off]] *)
  | Sw of Reg.t * Reg.t * int  (** [mem[rs + off] <- rsrc]; [Sw (rsrc, rs, off)] *)
  | Flw of Reg.f * Reg.t * int  (** [fd <- mem[rs + off]] *)
  | Fsw of Reg.f * Reg.t * int  (** [mem[rs + off] <- fsrc] *)
  | Falu of falu * Reg.f * Reg.f * Reg.f  (** [fd <- fs op ft] *)
  | Fcmp of fcmp * Reg.t * Reg.f * Reg.f  (** [rd <- fs cmp ft], 0 or 1 *)
  | Movn of Reg.t * Reg.t * Reg.t
    (** guarded move: [rd <- rs] when [rguard <> 0], else [rd] keeps its
        value.  The dataflow merge reads the old [rd], so dependence
        analysis sees a data dependence where a branch would have been a
        control dependence — the paper's "guarded instruction". *)
  | Fmov of Reg.f * Reg.f  (** [fd <- fs] *)
  | I2f of Reg.f * Reg.t  (** [fd <- float rs] *)
  | F2i of Reg.t * Reg.f  (** [rd <- trunc fs] *)
  | B of cond * Reg.t * Reg.t * 'lab  (** branch to label when [rs cond rt] *)
  | Bi of cond * Reg.t * int * 'lab  (** branch to label when [rs cond imm] *)
  | J of 'lab  (** unconditional direct jump *)
  | Jal of 'lab  (** call: [ra <- return pc]; jump *)
  | Jr of Reg.t  (** indirect jump through a register (returns) *)
  | Jtab of Reg.t * 'lab array  (** computed jump: [pc <- table.(rs)] *)
  | Halt

(** Instruction classification used by the trace analyzers. *)
type kind =
  | Plain  (** ordinary computation *)
  | Cond_branch  (** a conditional branch *)
  | Jump  (** unconditional direct jump; never serializes control *)
  | Computed_jump  (** jump-table dispatch; never predicted *)
  | Call
  | Ret
  | Stop

val kind : 'lab t -> kind

val uses : 'lab t -> int list
(** Unified register ids read by the instruction.  [r0] is omitted (it is
    a constant, not a dependence). *)

val defs : 'lab t -> int list
(** Unified register ids written by the instruction.  Writes to [r0] are
    omitted. *)

val writes_sp : 'lab t -> bool
(** True when the instruction writes the stack pointer; these are the
    frame-adjustment instructions removed by simulated perfect inlining. *)

val is_load : 'lab t -> bool

val is_store : 'lab t -> bool

val map_label : ('a -> 'b) -> 'a t -> 'b t

val eval_alu : alu -> int -> int -> int
(** Integer ALU semantics shared by the VM and constant folding.
    @raise Division_by_zero on [Div]/[Rem] by zero. *)

val eval_falu : falu -> float -> float -> float

val eval_fcmp : fcmp -> float -> float -> int

val eval_cond : cond -> int -> int -> bool

val pp : pp_lab:(Format.formatter -> 'lab -> unit) -> Format.formatter
  -> 'lab t -> unit

val pp_string : Format.formatter -> string t -> unit

val pp_resolved : Format.formatter -> int t -> unit

type t = {
  pcs : int Stdx.Vec.t;
  auxs : int Stdx.Vec.t;
}

let create () =
  { pcs = Stdx.Vec.create ~capacity:4096 ~dummy:0 ();
    auxs = Stdx.Vec.create ~capacity:4096 ~dummy:0 () }

let push t ~pc ~aux =
  Stdx.Vec.push t.pcs pc;
  Stdx.Vec.push t.auxs aux

let length t = Stdx.Vec.length t.pcs
let pc t i = Stdx.Vec.get t.pcs i
let aux t i = Stdx.Vec.get t.auxs i
let addr = aux
let taken t i = Stdx.Vec.get t.auxs i = 1

let iter f t =
  for i = 0 to length t - 1 do
    f ~pc:(Stdx.Vec.get t.pcs i) ~aux:(Stdx.Vec.get t.auxs i)
  done

lib/vm/trace.mli:

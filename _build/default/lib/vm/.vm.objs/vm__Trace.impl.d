lib/vm/trace.ml: Stdx

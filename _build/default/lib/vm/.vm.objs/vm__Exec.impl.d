lib/vm/exec.ml: Array Asm List Printf Risc Trace

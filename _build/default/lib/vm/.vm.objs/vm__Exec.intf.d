lib/vm/exec.mli: Asm Trace

(** Dynamic instruction traces.

    One entry per executed instruction.  [pc] is the static code index.
    [aux] carries per-entry dynamic information whose meaning depends on
    the static instruction's kind:
    - loads/stores: the effective word address (always [>= 0]);
    - conditional branches: 1 when taken, 0 when fall-through;
    - everything else: [-1].

    This is the information the paper obtained from [pixie]: instruction
    identity, memory addresses for perfect disambiguation, and branch
    outcomes for the prediction study. *)

type t

val create : unit -> t

val push : t -> pc:int -> aux:int -> unit

val length : t -> int

val pc : t -> int -> int

val aux : t -> int -> int

val addr : t -> int -> int
(** Same as [aux]; named accessor for memory entries. *)

val taken : t -> int -> bool
(** Branch outcome of entry [i]; meaningful only for conditional
    branches. *)

val iter : (pc:int -> aux:int -> unit) -> t -> unit

let bar_of ~width ~scale v =
  let n = int_of_float (Float.round (scale v *. float_of_int width)) in
  String.make (max n 0) '#'

let with_title ?title body =
  match title with
  | Some t -> t ^ "\n" ^ String.make (String.length t) '=' ^ "\n" ^ body
  | None -> body

let bars ?title ?(width = 50) ?(log_scale = false) series =
  let vmax =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-9 series
  in
  let scale v =
    if log_scale then
      let v = Float.max v 1. in
      Float.log v /. Float.max (Float.log vmax) 1e-9
    else v /. vmax
  in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 series
  in
  let line (label, v) =
    Printf.sprintf "%-*s |%s %s" label_w label
      (bar_of ~width ~scale v) (Table.fnum v)
  in
  with_title ?title (String.concat "\n" (List.map line series) ^ "\n")

let grouped_bars ?title ?(width = 44) ~group_names rows =
  let vmax =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left Float.max acc vs)
      1e-9 rows
  in
  (* Wide dynamic ranges are the norm here (Figure 5 spans 2..400), so
     scale by log. *)
  let scale v =
    let v = Float.max v 1. in
    Float.log v /. Float.max (Float.log (Float.max vmax 2.)) 1e-9
  in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let group_w =
    List.fold_left (fun acc g -> max acc (String.length g)) 0 group_names
  in
  let buf = Buffer.create 1024 in
  let row (label, vs) =
    List.iteri
      (fun i v ->
        let g = List.nth group_names i in
        Buffer.add_string buf
          (Printf.sprintf "%-*s %-*s |%s %s\n"
             label_w
             (if i = 0 then label else "")
             group_w g
             (bar_of ~width ~scale v)
             (Table.fnum v)))
      vs;
    Buffer.add_char buf '\n'
  in
  List.iter row rows;
  with_title ?title (Buffer.contents buf)

let cdf ?title ?(width = 64) ?(height = 16) ?(x_label = "x") curves =
  (* Log-scaled x axis covering all curves; y in [0, 1]. *)
  let all_x =
    List.concat_map (fun c -> List.map (fun (x, _) -> x) c) curves
  in
  let xmax = List.fold_left max 1 all_x in
  let lxmax = Float.log (float_of_int (max xmax 2)) in
  let col_of x =
    let lx = Float.log (float_of_int (max x 1)) in
    min (width - 1)
      (int_of_float (lx /. lxmax *. float_of_int (width - 1)))
  in
  let grid = Array.make_matrix height width ' ' in
  let marks = [| '*'; 'o'; '+'; 'x'; '~'; '^'; '%'; '@'; '='; '&' |] in
  let plot idx curve =
    let mark = marks.(idx mod Array.length marks) in
    (* Step-interpolate each curve across the columns. *)
    let frac_at col =
      (* largest fraction whose x maps to a column <= col *)
      List.fold_left
        (fun acc (x, f) -> if col_of x <= col then Float.max acc f else acc)
        0. curve
    in
    for col = 0 to width - 1 do
      let f = frac_at col in
      if f > 0. then begin
        let row =
          height - 1 - int_of_float (f *. float_of_int (height - 1))
        in
        let row = max 0 (min (height - 1) row) in
        if grid.(row).(col) = ' ' then grid.(row).(col) <- mark
      end
    done
  in
  List.iteri plot curves;
  let buf = Buffer.create 2048 in
  Array.iteri
    (fun i row ->
      let y = 1. -. (float_of_int i /. float_of_int (height - 1)) in
      Buffer.add_string buf (Printf.sprintf "%4.2f |" y);
      Buffer.add_string buf (String.init width (fun j -> row.(j)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf ("     +" ^ String.make width '-' ^ "\n");
  (* Log-scale tick labels at powers of ten. *)
  let ticks = Buffer.create width in
  Buffer.add_string ticks "      ";
  let tick_positions =
    List.filter (fun p -> p <= xmax)
      [ 1; 10; 100; 1000; 10_000; 100_000 ]
  in
  let last_col = ref (-10) in
  List.iter
    (fun p ->
      let col = col_of p in
      if col > !last_col + 5 then begin
        let cur = Buffer.length ticks - 6 in
        if col >= cur then begin
          Buffer.add_string ticks (String.make (col - cur) ' ');
          Buffer.add_string ticks (string_of_int p);
          last_col := col
        end
      end)
    tick_positions;
  Buffer.add_string buf (Buffer.contents ticks);
  Buffer.add_string buf ("  (" ^ x_label ^ ", log scale)\n");
  with_title ?title (Buffer.contents buf)

(** ASCII charts: horizontal bars (Figures 4, 5, 7) and cumulative
    distribution curves (Figure 6). *)

val bars :
  ?title:string ->
  ?width:int ->
  ?log_scale:bool ->
  (string * float) list ->
  string
(** [bars series] renders one labelled horizontal bar per entry, scaled
    to the maximum (or to its log when [log_scale], for the wide dynamic
    ranges of Figure 5). *)

val grouped_bars :
  ?title:string ->
  ?width:int ->
  group_names:string list ->
  (string * float list) list ->
  string
(** [grouped_bars ~group_names rows] renders one bar per (row, group)
    pair, the layout of the paper's per-benchmark comparison figures. *)

val cdf :
  ?title:string ->
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  (int * float) list list ->
  string
(** [cdf curves] plots cumulative distributions (fraction in 0..1
    against a log-scaled x axis), one character per curve. *)

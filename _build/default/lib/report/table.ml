type align = Left | Right

let fnum x =
  if Float.abs x >= 100. then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.2f" x

let render ?title ~header ~align rows =
  let ncols = List.length header in
  let width col =
    let cell_w row =
      match row with
      | [ "-" ] -> 0
      | _ -> (
        match List.nth_opt row col with
        | Some s -> String.length s
        | None -> 0)
    in
    List.fold_left
      (fun acc row -> max acc (cell_w row))
      (String.length (List.nth header col))
      rows
  in
  let widths = List.init ncols width in
  let buf = Buffer.create 1024 in
  let pad align w s =
    let n = w - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let rstrip s =
    let rec last i = if i > 0 && s.[i - 1] = ' ' then last (i - 1) else i in
    String.sub s 0 (last (String.length s))
  in
  let emit_row cells aligns =
    let padded =
      List.map2 (fun (w, a) c -> pad a w c) (List.combine widths aligns)
        cells
    in
    Buffer.add_string buf (rstrip (String.concat "  " padded));
    Buffer.add_char buf '\n'
  in
  let total_width =
    List.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  (match title with
  | Some t ->
    Buffer.add_string buf t;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make (max total_width (String.length t)) '=');
    Buffer.add_char buf '\n'
  | None -> ());
  let aligns =
    if List.length align = ncols then align
    else List.init ncols (fun _ -> Right)
  in
  emit_row header aligns;
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  let row r =
    match r with
    | [ "-" ] ->
      Buffer.add_string buf (String.make total_width '-');
      Buffer.add_char buf '\n'
    | _ ->
      let cells =
        List.init ncols (fun i ->
            match List.nth_opt r i with Some c -> c | None -> "")
      in
      emit_row cells aligns
  in
  List.iter row rows;
  Buffer.contents buf

(** Aligned ASCII tables for the reproduction harness output. *)

type align = Left | Right

val render :
  ?title:string ->
  header:string list ->
  align:align list ->
  string list list ->
  string
(** [render ~header ~align rows] lays the table out with column rule
    separators.  A row of [["-"]] becomes a horizontal rule. *)

val fnum : float -> string
(** Formats parallelism numbers the way the paper's Table 3 does: two
    decimals below 100, whole numbers above. *)

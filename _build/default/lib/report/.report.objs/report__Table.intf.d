lib/report/table.mli:

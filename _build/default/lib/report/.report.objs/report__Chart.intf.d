lib/report/chart.mli:

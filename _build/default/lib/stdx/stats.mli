(** Small statistics helpers used by the evaluation harness. *)

val mean : float list -> float
(** Arithmetic mean.  @raise Invalid_argument on the empty list. *)

val harmonic_mean : float list -> float
(** Harmonic mean, the aggregate the paper reports for parallelism.
    @raise Invalid_argument on an empty list or a non-positive element. *)

val geometric_mean : float list -> float
(** @raise Invalid_argument on an empty list or a non-positive element. *)

val percentile : float -> float array -> float
(** [percentile p xs] with [0. <= p <= 1.] on an unsorted non-empty array,
    using linear interpolation between order statistics. *)

val cumulative : (int * int) list -> (int * float) list
(** [cumulative hist] turns a histogram [(value, count)] into a cumulative
    distribution [(value, fraction <= value)], sorted by value. *)

let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let harmonic_mean = function
  | [] -> invalid_arg "Stats.harmonic_mean: empty"
  | xs ->
    let add acc x =
      if x <= 0. then invalid_arg "Stats.harmonic_mean: non-positive"
      else acc +. (1. /. x)
    in
    let s = List.fold_left add 0. xs in
    float_of_int (List.length xs) /. s

let geometric_mean = function
  | [] -> invalid_arg "Stats.geometric_mean: empty"
  | xs ->
    let add acc x =
      if x <= 0. then invalid_arg "Stats.geometric_mean: non-positive"
      else acc +. log x
    in
    let s = List.fold_left add 0. xs in
    exp (s /. float_of_int (List.length xs))

let percentile p xs =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 1. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  let frac = pos -. floor pos in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let cumulative hist =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) hist in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 sorted in
  if total = 0 then []
  else begin
    let running = ref 0 in
    let entry (v, c) =
      running := !running + c;
      (v, float_of_int !running /. float_of_int total)
    in
    List.map entry sorted
  end

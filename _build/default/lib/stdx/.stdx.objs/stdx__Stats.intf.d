lib/stdx/stats.mli:

lib/stdx/vec.mli:

lib/stdx/stats.ml: Array List

lib/stdx/vec.ml: Array

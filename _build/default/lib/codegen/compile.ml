module A = Minic.Ast
module I = Risc.Insn
module R = Risc.Reg

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Code-generation options.  [if_convert] enables guarded-instruction
   if-conversion (paper §6): simple conditional assignments compile to
   branch-free conditional moves, trading a control dependence for a
   data dependence and lengthening the distance between mispredicted
   branches. *)
type options = { if_convert : bool }

let default_options = { if_convert = false }

(* Where a Mini-C variable lives. *)
type storage =
  | Sreg of int  (* integer callee-saved register *)
  | Fsreg of int  (* float callee-saved register *)
  | Slot of int  (* frame slot (int, float, or array-parameter address) *)
  | Arr_slot of int  (* local array: contents at sp + slot *)
  | Global_scalar of int  (* absolute address *)
  | Global_arr of int  (* absolute base address *)

type var = {
  v_storage : storage;
  v_ty : A.typ;
}

(* Per-compilation-unit state. *)
type unit_state = {
  mutable label_counter : int;
  mutable next_addr : int;  (* next free global word address *)
  globals : (string, var) Hashtbl.t;
  mutable data : (int * Asm.Program.cell array) list;
  fsigs : (string, Minic.Sema.func_sig) Hashtbl.t;
}

(* Per-function state. *)
type fstate = {
  us : unit_state;
  opts : options;
  fname : string;
  ret : A.typ;
  mutable items_rev : Asm.Program.item list;
  mutable scopes : (string * var) list list;
  mutable next_slot : int;
  mutable used_sregs : int;
  mutable used_fsregs : int;
  mutable idepth : int;  (* live int expression temps *)
  mutable fdepth : int;  (* live float expression temps *)
  ispill : (int, int) Hashtbl.t;  (* temp depth -> frame slot *)
  fspill : (int, int) Hashtbl.t;
  csave_i : (int, int) Hashtbl.t;  (* temp index -> call-save slot *)
  csave_f : (int, int) Hashtbl.t;
  mutable leaf : bool;
  mutable break_labels : string list;
  mutable continue_labels : string list;
  epilogue : string;
}

let ins st i = st.items_rev <- Asm.Program.Ins i :: st.items_rev
let place st l = st.items_rev <- Asm.Program.Label l :: st.items_rev

let fresh st hint =
  st.us.label_counter <- st.us.label_counter + 1;
  Printf.sprintf "%s$%s$%d" st.fname hint st.us.label_counter

let alloc_slot st n =
  let slot = st.next_slot in
  st.next_slot <- st.next_slot + n;
  slot

let spill_slot st tbl depth =
  match Hashtbl.find_opt tbl depth with
  | Some slot -> slot
  | None ->
    let slot = alloc_slot st 1 in
    Hashtbl.add tbl depth slot;
    slot

(* ------------------------------------------------------------------ *)
(* Expression temporaries: depth [d] lives in a register for d < 8 and
   in a frame spill slot beyond that. *)

let iread st d scratch =
  if d < R.n_tmp_regs then R.tmp d
  else begin
    ins st (I.Lw (scratch, R.sp, spill_slot st st.ispill d));
    scratch
  end

let iwrite st d make =
  if d < R.n_tmp_regs then ins st (make (R.tmp d))
  else begin
    ins st (make R.scratch0);
    ins st (I.Sw (R.scratch0, R.sp, spill_slot st st.ispill d))
  end

let fread st d scratch =
  if d < R.n_ftmp_regs then R.ftmp d
  else begin
    ins st (I.Flw (scratch, R.sp, spill_slot st st.fspill d));
    scratch
  end

let fwrite st d make =
  if d < R.n_ftmp_regs then ins st (make (R.ftmp d))
  else begin
    ins st (make R.fscratch);
    ins st (I.Fsw (R.fscratch, R.sp, spill_slot st st.fspill d))
  end

let pop_ty st (ty : A.typ) =
  match ty with
  | A.Tfloat -> st.fdepth <- st.fdepth - 1
  | A.Tint | A.Tarr _ -> st.idepth <- st.idepth - 1
  | A.Tvoid -> ()

(* Convert the value on top of the stacks from [from] to [target]. *)
let convert st ~from ~target =
  match ((from : A.typ), (target : A.typ)) with
  | A.Tint, A.Tfloat ->
    let src = iread st (st.idepth - 1) R.scratch0 in
    st.idepth <- st.idepth - 1;
    fwrite st st.fdepth (fun fd -> I.I2f (fd, src));
    st.fdepth <- st.fdepth + 1
  | A.Tfloat, A.Tint ->
    let src = fread st (st.fdepth - 1) R.fscratch in
    st.fdepth <- st.fdepth - 1;
    iwrite st st.idepth (fun rd -> I.F2i (rd, src));
    st.idepth <- st.idepth + 1
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Variable lookup. *)

let lookup st name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some v -> Some v
      | None -> in_scopes rest)
  in
  match in_scopes st.scopes with
  | Some v -> v
  | None -> (
    match Hashtbl.find_opt st.us.globals name with
    | Some v -> v
    | None -> error "codegen: unbound variable %S (sema should reject)" name)

let declare st name v =
  match st.scopes with
  | scope :: rest -> st.scopes <- ((name, v) :: scope) :: rest
  | [] -> error "codegen: no open scope"

let alloc_local st (ty : A.typ) =
  match ty with
  | A.Tint | A.Tarr _ ->
    (* Array parameters hold a base address, an integer. *)
    if st.used_sregs < R.n_sav_regs then begin
      let r = R.sav st.used_sregs in
      st.used_sregs <- st.used_sregs + 1;
      Sreg r
    end
    else Slot (alloc_slot st 1)
  | A.Tfloat ->
    if st.used_fsregs < R.n_fsav_regs then begin
      let r = R.fsav st.used_fsregs in
      st.used_fsregs <- st.used_fsregs + 1;
      Fsreg r
    end
    else Slot (alloc_slot st 1)
  | A.Tvoid -> error "codegen: void local"

(* ------------------------------------------------------------------ *)
(* Simple operands: values available without evaluation, used to fold
   register/immediate operands directly into ALU and branch forms. *)

type simple =
  | Simm of int
  | Sreg_val of int  (* an integer register holding the value *)

let simple_int st (e : A.expr) =
  match e.desc with
  | A.Int_lit n -> Some (Simm n)
  | A.Var name -> (
    match lookup st name with
    | { v_storage = Sreg r; v_ty = A.Tint } -> Some (Sreg_val r)
    | _ -> None)
  | _ -> None

let alu_of_binop : A.binop -> I.alu option = function
  | A.Add -> Some I.Add
  | A.Sub -> Some I.Sub
  | A.Mul -> Some I.Mul
  | A.Div -> Some I.Div
  | A.Rem -> Some I.Rem
  | A.Band -> Some I.And
  | A.Bor -> Some I.Or
  | A.Bxor -> Some I.Xor
  | A.Shl -> Some I.Sll
  | A.Shr -> Some I.Sra
  | A.Eq | A.Ne | A.Lt | A.Le | A.Gt | A.Ge | A.Land | A.Lor -> None

(* Comparison operators as set-on-compare ALU ops; Gt/Ge swap operands. *)
let cmp_alu : A.binop -> (I.alu * bool) option = function
  | A.Eq -> Some (I.Seq, false)
  | A.Ne -> Some (I.Sne, false)
  | A.Lt -> Some (I.Slt, false)
  | A.Le -> Some (I.Sle, false)
  | A.Gt -> Some (I.Slt, true)
  | A.Ge -> Some (I.Sle, true)
  | _ -> None

let cond_of_cmp : A.binop -> I.cond option = function
  | A.Eq -> Some I.Eq
  | A.Ne -> Some I.Ne
  | A.Lt -> Some I.Lt
  | A.Le -> Some I.Le
  | A.Gt -> Some I.Gt
  | A.Ge -> Some I.Ge
  | _ -> None

let negate_cond : I.cond -> I.cond = function
  | I.Eq -> I.Ne
  | I.Ne -> I.Eq
  | I.Lt -> I.Ge
  | I.Ge -> I.Lt
  | I.Le -> I.Gt
  | I.Gt -> I.Le

let mirror_cond : I.cond -> I.cond = function
  | I.Eq -> I.Eq
  | I.Ne -> I.Ne
  | I.Lt -> I.Gt
  | I.Gt -> I.Lt
  | I.Le -> I.Ge
  | I.Ge -> I.Le

(* ------------------------------------------------------------------ *)
(* Expression compilation.  [compile_expr] pushes exactly one value of
   the expression's annotated type (nothing for void calls). *)

let rec compile_expr st (e : A.expr) =
  match e.desc with
  | A.Int_lit n ->
    iwrite st st.idepth (fun rd -> I.Li (rd, n));
    st.idepth <- st.idepth + 1
  | A.Float_lit x ->
    fwrite st st.fdepth (fun fd -> I.Fli (fd, x));
    st.fdepth <- st.fdepth + 1
  | A.Var name -> compile_var_read st name
  | A.Index (name, idx) -> compile_index_read st name idx
  | A.Call (fname, args) -> compile_call st fname args
  | A.Unop (op, sub) -> compile_unop st op sub e.ty
  | A.Binop ((A.Land | A.Lor), _, _) -> compile_bool_value st e
  | A.Binop (op, lhs, rhs) -> (
    match cmp_alu op with
    | Some _ when e.ty = A.Tint && lhs.ty = A.Tint && rhs.ty = A.Tint ->
      compile_int_cmp_value st op lhs rhs
    | Some _ -> compile_float_cmp_value st op lhs rhs
    | None ->
      if e.ty = A.Tfloat then compile_float_binop st op lhs rhs
      else compile_int_binop st op lhs rhs)
  | A.Assign (lv, rhs) -> compile_assign st lv rhs ~want:true

and compile_var_read st name =
  let v = lookup st name in
  match (v.v_storage, v.v_ty) with
  | Sreg r, _ ->
    iwrite st st.idepth (fun rd -> I.Alui (I.Add, rd, r, 0));
    st.idepth <- st.idepth + 1
  | Fsreg f, _ ->
    fwrite st st.fdepth (fun fd -> I.Fmov (fd, f));
    st.fdepth <- st.fdepth + 1
  | Slot s, A.Tfloat ->
    fwrite st st.fdepth (fun fd -> I.Flw (fd, R.sp, s));
    st.fdepth <- st.fdepth + 1
  | Slot s, _ ->
    iwrite st st.idepth (fun rd -> I.Lw (rd, R.sp, s));
    st.idepth <- st.idepth + 1
  | Arr_slot s, _ ->
    (* A local array used as a value: push its address. *)
    iwrite st st.idepth (fun rd -> I.Alui (I.Add, rd, R.sp, s));
    st.idepth <- st.idepth + 1
  | Global_scalar a, A.Tfloat ->
    fwrite st st.fdepth (fun fd -> I.Flw (fd, R.zero, a));
    st.fdepth <- st.fdepth + 1
  | Global_scalar a, _ ->
    iwrite st st.idepth (fun rd -> I.Lw (rd, R.zero, a));
    st.idepth <- st.idepth + 1
  | Global_arr a, _ ->
    iwrite st st.idepth (fun rd -> I.Li (rd, a));
    st.idepth <- st.idepth + 1

(* Leave (base register, constant offset) for element [idx] of array
   [name] on the side, consuming the pushed index if one was needed.
   The returned base register may be a scratch; use it immediately. *)
and compile_element_addr st name idx =
  let v = lookup st name in
  let elem_ty =
    match v.v_ty with
    | A.Tarr t -> t
    | _ -> error "codegen: %S is not an array" name
  in
  match (v.v_storage, simple_int st idx) with
  | Global_arr a, Some (Simm n) -> (elem_ty, R.zero, a + n)
  | Global_arr a, Some (Sreg_val r) -> (elem_ty, r, a)
  | Global_arr a, None ->
    compile_expr st idx;
    let ireg = iread st (st.idepth - 1) R.scratch0 in
    st.idepth <- st.idepth - 1;
    (elem_ty, ireg, a)
  | Arr_slot s, Some (Simm n) -> (elem_ty, R.sp, s + n)
  | Arr_slot s, Some (Sreg_val r) ->
    ins st (I.Alu (I.Add, R.scratch1, R.sp, r));
    (elem_ty, R.scratch1, s)
  | Arr_slot s, None ->
    compile_expr st idx;
    let ireg = iread st (st.idepth - 1) R.scratch0 in
    st.idepth <- st.idepth - 1;
    ins st (I.Alu (I.Add, R.scratch1, R.sp, ireg));
    (elem_ty, R.scratch1, s)
  | (Sreg _ | Slot _), _ ->
    (* Array parameter: base address held in an int storage. *)
    let base =
      match v.v_storage with
      | Sreg r -> r
      | Slot s ->
        ins st (I.Lw (R.scratch1, R.sp, s));
        R.scratch1
      | _ -> assert false
    in
    (match simple_int st idx with
    | Some (Simm n) -> (elem_ty, base, n)
    | Some (Sreg_val r) ->
      ins st (I.Alu (I.Add, R.scratch1, base, r));
      (elem_ty, R.scratch1, 0)
    | None ->
      compile_expr st idx;
      let ireg = iread st (st.idepth - 1) R.scratch0 in
      st.idepth <- st.idepth - 1;
      ins st (I.Alu (I.Add, R.scratch1, base, ireg));
      (elem_ty, R.scratch1, 0))
  | (Fsreg _ | Global_scalar _), _ -> error "codegen: %S is not an array" name

and compile_index_read st name idx =
  let elem_ty, base, off = compile_element_addr st name idx in
  match elem_ty with
  | A.Tfloat ->
    fwrite st st.fdepth (fun fd -> I.Flw (fd, base, off));
    st.fdepth <- st.fdepth + 1
  | _ ->
    iwrite st st.idepth (fun rd -> I.Lw (rd, base, off));
    st.idepth <- st.idepth + 1

and compile_int_binop st op lhs rhs =
  let alu =
    match alu_of_binop op with
    | Some alu -> alu
    | None -> error "codegen: not an int ALU op"
  in
  (* Shr on int is arithmetic shift, C-style on signed ints. *)
  match (simple_int st lhs, simple_int st rhs) with
  | Some (Sreg_val lr), Some (Simm n) ->
    iwrite st st.idepth (fun rd -> I.Alui (alu, rd, lr, n));
    st.idepth <- st.idepth + 1
  | Some (Sreg_val lr), Some (Sreg_val rr) ->
    iwrite st st.idepth (fun rd -> I.Alu (alu, rd, lr, rr));
    st.idepth <- st.idepth + 1
  | Some (Simm l), Some (Simm r) ->
    let v =
      try I.eval_alu alu l r
      with Division_by_zero -> error "codegen: constant division by zero"
    in
    iwrite st st.idepth (fun rd -> I.Li (rd, v));
    st.idepth <- st.idepth + 1
  | Some (Simm l), Some (Sreg_val rr) ->
    iwrite st st.idepth (fun rd -> I.Li (rd, l));
    st.idepth <- st.idepth + 1;
    let lreg = iread st (st.idepth - 1) R.scratch0 in
    iwrite st (st.idepth - 1) (fun rd -> I.Alu (alu, rd, lreg, rr))
  | _, Some (Simm n) ->
    compile_int_operand st lhs;
    let lreg = iread st (st.idepth - 1) R.scratch0 in
    iwrite st (st.idepth - 1) (fun rd -> I.Alui (alu, rd, lreg, n))
  | _, Some (Sreg_val rr) ->
    compile_int_operand st lhs;
    let lreg = iread st (st.idepth - 1) R.scratch0 in
    iwrite st (st.idepth - 1) (fun rd -> I.Alu (alu, rd, lreg, rr))
  | Some (Sreg_val lr), None ->
    compile_int_operand st rhs;
    let rreg = iread st (st.idepth - 1) R.scratch0 in
    iwrite st (st.idepth - 1) (fun rd -> I.Alu (alu, rd, lr, rreg))
  | Some (Simm l), None ->
    iwrite st st.idepth (fun rd -> I.Li (rd, l));
    st.idepth <- st.idepth + 1;
    compile_int_operand st rhs;
    let rreg = iread st (st.idepth - 1) R.scratch1 in
    let lreg = iread st (st.idepth - 2) R.scratch0 in
    st.idepth <- st.idepth - 2;
    iwrite st st.idepth (fun rd -> I.Alu (alu, rd, lreg, rreg));
    st.idepth <- st.idepth + 1
  | None, None ->
    compile_int_operand st lhs;
    compile_int_operand st rhs;
    let rreg = iread st (st.idepth - 1) R.scratch1 in
    let lreg = iread st (st.idepth - 2) R.scratch0 in
    st.idepth <- st.idepth - 2;
    iwrite st st.idepth (fun rd -> I.Alu (alu, rd, lreg, rreg));
    st.idepth <- st.idepth + 1

(* Compile a subexpression that must end up on the int stack (it may be
   annotated float only in mixed arithmetic, which doesn't reach here). *)
and compile_int_operand st (e : A.expr) = compile_expr st e

and compile_float_operand st (e : A.expr) =
  compile_expr st e;
  if e.ty = A.Tint then convert st ~from:A.Tint ~target:A.Tfloat

and compile_float_binop st op lhs rhs =
  let falu =
    match op with
    | A.Add -> I.Fadd
    | A.Sub -> I.Fsub
    | A.Mul -> I.Fmul
    | A.Div -> I.Fdiv
    | _ -> error "codegen: not a float ALU op"
  in
  compile_float_operand st lhs;
  compile_float_operand st rhs;
  let rreg = fread st (st.fdepth - 1) R.fscratch1 in
  let lreg = fread st (st.fdepth - 2) R.fscratch in
  st.fdepth <- st.fdepth - 2;
  fwrite st st.fdepth (fun fd -> I.Falu (falu, fd, lreg, rreg));
  st.fdepth <- st.fdepth + 1

and compile_int_cmp_value st op lhs rhs =
  let alu, swap =
    match cmp_alu op with Some x -> x | None -> assert false
  in
  let lhs, rhs = if swap then (rhs, lhs) else (lhs, rhs) in
  match (simple_int st lhs, simple_int st rhs) with
  | Some (Sreg_val lr), Some (Simm n) ->
    iwrite st st.idepth (fun rd -> I.Alui (alu, rd, lr, n));
    st.idepth <- st.idepth + 1
  | Some (Sreg_val lr), Some (Sreg_val rr) ->
    iwrite st st.idepth (fun rd -> I.Alu (alu, rd, lr, rr));
    st.idepth <- st.idepth + 1
  | _, Some (Simm n) ->
    compile_int_operand st lhs;
    let lreg = iread st (st.idepth - 1) R.scratch0 in
    iwrite st (st.idepth - 1) (fun rd -> I.Alui (alu, rd, lreg, n))
  | _ ->
    compile_int_operand st lhs;
    compile_int_operand st rhs;
    let rreg = iread st (st.idepth - 1) R.scratch1 in
    let lreg = iread st (st.idepth - 2) R.scratch0 in
    st.idepth <- st.idepth - 2;
    iwrite st st.idepth (fun rd -> I.Alu (alu, rd, lreg, rreg));
    st.idepth <- st.idepth + 1

and compile_float_cmp_value st op lhs rhs =
  let fcmp, swap, invert =
    match op with
    | A.Lt -> (I.Flt, false, false)
    | A.Le -> (I.Fle, false, false)
    | A.Gt -> (I.Flt, true, false)
    | A.Ge -> (I.Fle, true, false)
    | A.Eq -> (I.Feq, false, false)
    | A.Ne -> (I.Feq, false, true)
    | _ -> error "codegen: not a comparison"
  in
  let lhs, rhs = if swap then (rhs, lhs) else (lhs, rhs) in
  compile_float_operand st lhs;
  compile_float_operand st rhs;
  let rreg = fread st (st.fdepth - 1) R.fscratch1 in
  let lreg = fread st (st.fdepth - 2) R.fscratch in
  st.fdepth <- st.fdepth - 2;
  iwrite st st.idepth (fun rd -> I.Fcmp (fcmp, rd, lreg, rreg));
  st.idepth <- st.idepth + 1;
  if invert then begin
    let reg = iread st (st.idepth - 1) R.scratch0 in
    iwrite st (st.idepth - 1) (fun rd -> I.Alui (I.Xor, rd, reg, 1))
  end

and compile_unop st op sub ty =
  match (op, (ty : A.typ)) with
  | A.Neg, A.Tfloat ->
    compile_float_operand st sub;
    ins st (I.Fli (R.fscratch1, 0.));
    let reg = fread st (st.fdepth - 1) R.fscratch in
    iwrite_float_neg st reg
  | A.Neg, _ ->
    compile_int_operand st sub;
    let reg = iread st (st.idepth - 1) R.scratch0 in
    iwrite st (st.idepth - 1) (fun rd -> I.Alu (I.Sub, rd, R.zero, reg))
  | A.Lnot, _ ->
    if sub.ty = A.Tfloat then begin
      compile_float_operand st sub;
      ins st (I.Fli (R.fscratch1, 0.));
      let reg = fread st (st.fdepth - 1) R.fscratch in
      st.fdepth <- st.fdepth - 1;
      iwrite st st.idepth (fun rd -> I.Fcmp (I.Feq, rd, reg, R.fscratch1));
      st.idepth <- st.idepth + 1
    end
    else begin
      compile_int_operand st sub;
      let reg = iread st (st.idepth - 1) R.scratch0 in
      iwrite st (st.idepth - 1) (fun rd -> I.Alui (I.Seq, rd, reg, 0))
    end
  | A.Bnot, _ ->
    compile_int_operand st sub;
    let reg = iread st (st.idepth - 1) R.scratch0 in
    iwrite st (st.idepth - 1) (fun rd -> I.Alui (I.Xor, rd, reg, -1))

and iwrite_float_neg st reg =
  (* 0.0 is in fscratch1; negate [reg] into the same float depth. *)
  fwrite st (st.fdepth - 1) (fun fd -> I.Falu (I.Fsub, fd, R.fscratch1, reg))

(* Booleans via control flow: && and || in value position. *)
and compile_bool_value st (e : A.expr) =
  let false_l = fresh st "bfalse" in
  let end_l = fresh st "bend" in
  compile_cond st e ~when_true:false ~target:false_l;
  iwrite st st.idepth (fun rd -> I.Li (rd, 1));
  ins st (I.J end_l);
  place st false_l;
  iwrite st st.idepth (fun rd -> I.Li (rd, 0));
  place st end_l;
  st.idepth <- st.idepth + 1

(* Branch to [target] when the condition's truth equals [when_true]. *)
and compile_cond st (e : A.expr) ~when_true ~target =
  match e.desc with
  | A.Int_lit n ->
    if n <> 0 = when_true then ins st (I.J target)
  | A.Unop (A.Lnot, sub) ->
    compile_cond st sub ~when_true:(not when_true) ~target
  | A.Binop (A.Land, a, b) ->
    if when_true then begin
      let skip = fresh st "and" in
      compile_cond st a ~when_true:false ~target:skip;
      compile_cond st b ~when_true:true ~target;
      place st skip
    end
    else begin
      compile_cond st a ~when_true:false ~target;
      compile_cond st b ~when_true:false ~target
    end
  | A.Binop (A.Lor, a, b) ->
    if when_true then begin
      compile_cond st a ~when_true:true ~target;
      compile_cond st b ~when_true:true ~target
    end
    else begin
      let skip = fresh st "or" in
      compile_cond st a ~when_true:true ~target:skip;
      compile_cond st b ~when_true:false ~target;
      place st skip
    end
  | A.Binop (op, lhs, rhs) when cond_of_cmp op <> None ->
    if lhs.ty = A.Tfloat || rhs.ty = A.Tfloat then begin
      compile_float_cmp_value st op lhs rhs;
      let reg = iread st (st.idepth - 1) R.scratch0 in
      st.idepth <- st.idepth - 1;
      let c = if when_true then I.Ne else I.Eq in
      ins st (I.Bi (c, reg, 0, target))
    end
    else begin
      let c = Option.get (cond_of_cmp op) in
      let c = if when_true then c else negate_cond c in
      compile_int_cond_branch st c lhs rhs target
    end
  | _ ->
    compile_expr st e;
    if e.ty = A.Tfloat then begin
      ins st (I.Fli (R.fscratch1, 0.));
      let reg = fread st (st.fdepth - 1) R.fscratch in
      st.fdepth <- st.fdepth - 1;
      iwrite st st.idepth (fun rd -> I.Fcmp (I.Feq, rd, reg, R.fscratch1));
      st.idepth <- st.idepth + 1;
      let reg = iread st (st.idepth - 1) R.scratch0 in
      st.idepth <- st.idepth - 1;
      (* Feq yields 1 when the value is zero (false). *)
      let c = if when_true then I.Eq else I.Ne in
      ins st (I.Bi (c, reg, 0, target))
    end
    else begin
      let reg = iread st (st.idepth - 1) R.scratch0 in
      st.idepth <- st.idepth - 1;
      let c = if when_true then I.Ne else I.Eq in
      ins st (I.Bi (c, reg, 0, target))
    end

and compile_int_cond_branch st c lhs rhs target =
  match (simple_int st lhs, simple_int st rhs) with
  | Some (Simm l), Some (Simm r) ->
    if I.eval_cond c l r then ins st (I.J target)
  | Some (Sreg_val lr), Some (Simm n) -> ins st (I.Bi (c, lr, n, target))
  | Some (Simm l), Some (Sreg_val rr) ->
    ins st (I.Bi (mirror_cond c, rr, l, target))
  | Some (Sreg_val lr), Some (Sreg_val rr) -> ins st (I.B (c, lr, rr, target))
  | _, Some (Simm n) ->
    compile_int_operand st lhs;
    let reg = iread st (st.idepth - 1) R.scratch0 in
    st.idepth <- st.idepth - 1;
    ins st (I.Bi (c, reg, n, target))
  | _, Some (Sreg_val rr) ->
    compile_int_operand st lhs;
    let reg = iread st (st.idepth - 1) R.scratch0 in
    st.idepth <- st.idepth - 1;
    ins st (I.B (c, reg, rr, target))
  | Some (Sreg_val lr), None ->
    compile_int_operand st rhs;
    let reg = iread st (st.idepth - 1) R.scratch0 in
    st.idepth <- st.idepth - 1;
    ins st (I.B (c, lr, reg, target))
  | Some (Simm l), None ->
    compile_int_operand st rhs;
    let reg = iread st (st.idepth - 1) R.scratch0 in
    st.idepth <- st.idepth - 1;
    ins st (I.Bi (mirror_cond c, reg, l, target))
  | None, None ->
    compile_int_operand st lhs;
    compile_int_operand st rhs;
    let rreg = iread st (st.idepth - 1) R.scratch1 in
    let lreg = iread st (st.idepth - 2) R.scratch0 in
    st.idepth <- st.idepth - 2;
    ins st (I.B (c, lreg, rreg, target))

(* ------------------------------------------------------------------ *)
(* Calls. *)

and compile_call st fname args =
  st.leaf <- false;
  let fsig =
    match Hashtbl.find_opt st.us.fsigs fname with
    | Some s -> s
    | None -> error "codegen: unknown function %S" fname
  in
  let d0_int = st.idepth and d0_float = st.fdepth in
  (* Evaluate arguments left to right onto the expression stacks,
     remembering where each landed. *)
  let locate arg pty =
    match (pty : A.typ) with
    | A.Tfloat ->
      compile_float_operand st arg;
      `F (st.fdepth - 1)
    | A.Tint ->
      compile_expr st arg;
      if arg.A.ty = A.Tfloat then convert st ~from:A.Tfloat ~target:A.Tint;
      `I (st.idepth - 1)
    | A.Tarr _ ->
      compile_expr st arg;
      `I (st.idepth - 1)
    | A.Tvoid -> error "codegen: void argument"
  in
  let places = List.map2 locate args fsig.sparams in
  (* Move argument values into the argument registers. *)
  let next_int = ref 0 and next_float = ref 0 in
  let move place =
    match place with
    | `I d ->
      if !next_int >= R.n_arg_regs then
        error "codegen: %S takes too many integer arguments" fname;
      let dst = R.arg !next_int in
      incr next_int;
      let src = iread st d dst in
      if src <> dst then ins st (I.Alui (I.Add, dst, src, 0))
    | `F d ->
      if !next_float >= 4 then
        error "codegen: %S takes too many float arguments" fname;
      let dst = R.farg !next_float in
      incr next_float;
      let src = fread st d dst in
      if src <> dst then ins st (I.Fmov (dst, src))
  in
  List.iter move places;
  (* Arguments are consumed. *)
  st.idepth <- d0_int;
  st.fdepth <- d0_float;
  (* Save the live caller-saved temps below the arguments. *)
  let save_i = min d0_int R.n_tmp_regs and save_f = min d0_float R.n_ftmp_regs in
  for d = 0 to save_i - 1 do
    let slot = spill_slot st st.csave_i d in
    ins st (I.Sw (R.tmp d, R.sp, slot))
  done;
  for d = 0 to save_f - 1 do
    let slot = spill_slot st st.csave_f d in
    ins st (I.Fsw (R.ftmp d, R.sp, slot))
  done;
  ins st (I.Jal fname);
  for d = 0 to save_i - 1 do
    ins st (I.Lw (R.tmp d, R.sp, Hashtbl.find st.csave_i d))
  done;
  for d = 0 to save_f - 1 do
    ins st (I.Flw (R.ftmp d, R.sp, Hashtbl.find st.csave_f d))
  done;
  (* Push the result. *)
  match fsig.sret with
  | A.Tint ->
    iwrite st st.idepth (fun rd -> I.Alui (I.Add, rd, R.rv, 0));
    st.idepth <- st.idepth + 1
  | A.Tfloat ->
    fwrite st st.fdepth (fun fd -> I.Fmov (fd, R.frv));
    st.fdepth <- st.fdepth + 1
  | A.Tvoid -> ()
  | A.Tarr _ -> error "codegen: array return"

(* ------------------------------------------------------------------ *)
(* Assignment. *)

and compile_assign st lv rhs ~want =
  (* The induction idiom: [v = v + c] with v in a register becomes a
     single in-place ALU-immediate, the pattern the unrolling analysis
     recognizes. *)
  let in_place =
    match lv with
    | A.Lvar name -> (
      match lookup st name with
      | { v_storage = Sreg r; v_ty = A.Tint } -> (
        match rhs.A.desc with
        | A.Binop (A.Add, { desc = A.Var n'; _ }, { desc = A.Int_lit c; _ })
          when n' = name ->
          Some (r, c)
        | A.Binop (A.Add, { desc = A.Int_lit c; _ }, { desc = A.Var n'; _ })
          when n' = name ->
          Some (r, c)
        | A.Binop (A.Sub, { desc = A.Var n'; _ }, { desc = A.Int_lit c; _ })
          when n' = name ->
          Some (r, -c)
        | _ -> None)
      | _ -> None)
    | A.Lindex _ -> None
  in
  match in_place with
  | Some (r, c) ->
    ins st (I.Alui (I.Add, r, r, c));
    if want then begin
      iwrite st st.idepth (fun rd -> I.Alui (I.Add, rd, r, 0));
      st.idepth <- st.idepth + 1
    end
  | None -> (
    match lv with
    | A.Lvar name ->
      let v = lookup st name in
      let lty =
        match v.v_ty with
        | A.Tarr _ -> error "codegen: assigning to array %S" name
        | ty -> ty
      in
      compile_expr st rhs;
      convert st ~from:rhs.A.ty ~target:lty;
      (match (v.v_storage, lty) with
      | Sreg r, _ ->
        let src = iread st (st.idepth - 1) r in
        if src <> r then ins st (I.Alui (I.Add, r, src, 0))
      | Fsreg f, _ ->
        let src = fread st (st.fdepth - 1) f in
        if src <> f then ins st (I.Fmov (f, src))
      | Slot s, A.Tfloat ->
        let src = fread st (st.fdepth - 1) R.fscratch in
        ins st (I.Fsw (src, R.sp, s))
      | Slot s, _ ->
        let src = iread st (st.idepth - 1) R.scratch0 in
        ins st (I.Sw (src, R.sp, s))
      | Global_scalar a, A.Tfloat ->
        let src = fread st (st.fdepth - 1) R.fscratch in
        ins st (I.Fsw (src, R.zero, a))
      | Global_scalar a, _ ->
        let src = iread st (st.idepth - 1) R.scratch0 in
        ins st (I.Sw (src, R.zero, a))
      | (Arr_slot _ | Global_arr _), _ ->
        error "codegen: assigning to array %S" name);
      if not want then pop_ty st lty
    | A.Lindex (name, idx) ->
      let v = lookup st name in
      let elem_ty =
        match v.v_ty with
        | A.Tarr t -> t
        | _ -> error "codegen: %S is not an array" name
      in
      compile_expr st rhs;
      convert st ~from:rhs.A.ty ~target:elem_ty;
      let _, base, off = compile_element_addr st name idx in
      (match elem_ty with
      | A.Tfloat ->
        let src = fread st (st.fdepth - 1) R.fscratch in
        ins st (I.Fsw (src, base, off))
      | _ ->
        let src = iread st (st.idepth - 1) R.scratch0 in
        ins st (I.Sw (src, base, off)));
      if not want then pop_ty st elem_ty)

(* ------------------------------------------------------------------ *)
(* If-conversion (guarded instructions).

   [if (c) v = e;] with [v] an integer register variable and [c], [e]
   branch-free and side-effect-free compiles to

     <c into tc> ; <e into te> ; movn v, te, tc

   and the two-armed form [if (c) v = e1; else v = e2;] to an
   unconditional move of [e2] followed by the same guarded move.  The
   guard must not be able to fault, so division and array indexing are
   excluded. *)

let rec guardable st (e : A.expr) =
  e.ty = A.Tint
  &&
  match e.desc with
  | A.Int_lit _ -> true
  | A.Var name -> (
    match (lookup st name).v_ty with A.Tint -> true | _ -> false)
  | A.Unop ((A.Neg | A.Bnot | A.Lnot), sub) ->
    sub.ty = A.Tint && guardable st sub
  | A.Binop ((A.Div | A.Rem | A.Land | A.Lor), _, _) -> false
  | A.Binop (_, a, b) -> guardable st a && guardable st b
  | A.Index _ | A.Call _ | A.Assign _ | A.Float_lit _ -> false

(* Match [v = e] (possibly wrapped in a block) where v lives in an
   integer callee-saved register. *)
let guarded_assign st (s : A.stmt) =
  let unwrap = function A.Block [ single ] -> single | s -> s in
  match unwrap s with
  | A.Expr { desc = A.Assign (A.Lvar v, rhs); _ } -> (
    match lookup st v with
    | { v_storage = Sreg r; v_ty = A.Tint } when guardable st rhs ->
      Some (r, rhs)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Statements. *)

let rec compile_stmt st (s : A.stmt) =
  match s with
  | A.Decl (ty, name, size, init) -> (
    match size with
    | Some n ->
      let slot = alloc_slot st n in
      declare st name { v_storage = Arr_slot slot; v_ty = A.Tarr ty }
    | None ->
      let storage = alloc_local st ty in
      declare st name { v_storage = storage; v_ty = ty };
      (match init with
      | Some e ->
        ignore
          (compile_assign st (A.Lvar name) e ~want:false)
      | None -> ()))
  | A.Expr e -> compile_expr_stmt st e
  | A.If (c, then_s, else_s)
    when st.opts.if_convert && guardable st c
         && guarded_assign st then_s <> None
         && (match else_s with
            | None -> true
            | Some e -> (
              match (guarded_assign st then_s, guarded_assign st e) with
              | Some (r1, _), Some (r2, _) -> r1 = r2
              | _ -> false)) -> (
    match guarded_assign st then_s with
    | None -> assert false
    | Some (reg, rhs) ->
      (* Evaluate guard and both arms before touching [reg]: the arms
         may read the variable being assigned. *)
      compile_expr st c;
      compile_expr st rhs;
      (match else_s with
      | Some e -> (
        match guarded_assign st e with
        | Some (_, rhs2) ->
          compile_expr st rhs2;
          (* v = e2 unconditionally; the guarded move overrides it. *)
          let src = iread st (st.idepth - 1) R.scratch0 in
          st.idepth <- st.idepth - 1;
          ins st (I.Alui (I.Add, reg, src, 0))
        | None -> assert false)
      | None -> ());
      let rs = iread st (st.idepth - 1) R.scratch0 in
      let guard = iread st (st.idepth - 2) R.scratch1 in
      st.idepth <- st.idepth - 2;
      ins st (I.Movn (reg, rs, guard)))
  | A.If (c, then_s, else_s) -> (
    match else_s with
    | None ->
      let end_l = fresh st "endif" in
      compile_cond st c ~when_true:false ~target:end_l;
      in_scope st (fun () -> compile_stmt st then_s);
      place st end_l
    | Some else_s ->
      let else_l = fresh st "else" in
      let end_l = fresh st "endif" in
      compile_cond st c ~when_true:false ~target:else_l;
      in_scope st (fun () -> compile_stmt st then_s);
      ins st (I.J end_l);
      place st else_l;
      in_scope st (fun () -> compile_stmt st else_s);
      place st end_l)
  | A.While (c, body) ->
    let test_l = fresh st "wtest" in
    let body_l = fresh st "wbody" in
    let end_l = fresh st "wend" in
    ins st (I.J test_l);
    place st body_l;
    st.break_labels <- end_l :: st.break_labels;
    st.continue_labels <- test_l :: st.continue_labels;
    in_scope st (fun () -> compile_stmt st body);
    st.break_labels <- List.tl st.break_labels;
    st.continue_labels <- List.tl st.continue_labels;
    place st test_l;
    compile_cond st c ~when_true:true ~target:body_l;
    place st end_l
  | A.For (init, c, step, body) ->
    Option.iter (fun e -> compile_expr_stmt st e) init;
    let test_l = fresh st "ftest" in
    let body_l = fresh st "fbody" in
    let cont_l = fresh st "fcont" in
    let end_l = fresh st "fend" in
    ins st (I.J test_l);
    place st body_l;
    st.break_labels <- end_l :: st.break_labels;
    st.continue_labels <- cont_l :: st.continue_labels;
    in_scope st (fun () -> compile_stmt st body);
    st.break_labels <- List.tl st.break_labels;
    st.continue_labels <- List.tl st.continue_labels;
    place st cont_l;
    Option.iter (fun e -> compile_expr_stmt st e) step;
    place st test_l;
    (match c with
    | Some c -> compile_cond st c ~when_true:true ~target:body_l
    | None -> ins st (I.J body_l));
    place st end_l
  | A.Switch (scrut, cases, default) -> compile_switch st scrut cases default
  | A.Break _ -> (
    match st.break_labels with
    | l :: _ -> ins st (I.J l)
    | [] -> error "codegen: break outside loop")
  | A.Continue _ -> (
    match st.continue_labels with
    | l :: _ -> ins st (I.J l)
    | [] -> error "codegen: continue outside loop")
  | A.Return (value, _) ->
    (match (value, st.ret) with
    | Some e, A.Tfloat ->
      compile_float_operand st e;
      let src = fread st (st.fdepth - 1) R.frv in
      st.fdepth <- st.fdepth - 1;
      if src <> R.frv then ins st (I.Fmov (R.frv, src))
    | Some e, _ ->
      compile_expr st e;
      if e.ty = A.Tfloat then convert st ~from:A.Tfloat ~target:A.Tint;
      let src = iread st (st.idepth - 1) R.rv in
      st.idepth <- st.idepth - 1;
      if src <> R.rv then ins st (I.Alui (I.Add, R.rv, src, 0))
    | None, _ -> ());
    ins st (I.J st.epilogue)
  | A.Block body -> in_scope st (fun () -> List.iter (compile_stmt st) body)

and compile_expr_stmt st (e : A.expr) =
  match e.desc with
  | A.Assign (lv, rhs) -> compile_assign st lv rhs ~want:false
  | _ ->
    compile_expr st e;
    pop_ty st e.ty

and in_scope st f =
  st.scopes <- [] :: st.scopes;
  f ();
  st.scopes <- List.tl st.scopes

and compile_switch st scrut cases default =
  let end_l = fresh st "swend" in
  let default_l =
    match default with Some _ -> fresh st "swdef" | None -> end_l
  in
  compile_expr st scrut;
  let reg = iread st (st.idepth - 1) R.scratch0 in
  st.idepth <- st.idepth - 1;
  let case_labels =
    List.map (fun (values, _) -> (values, fresh st "case")) cases
  in
  let all_values = List.concat_map fst cases in
  (match all_values with
  | [] -> ins st (I.J default_l)
  | v0 :: _ ->
    let vmin = List.fold_left min v0 all_values in
    let vmax = List.fold_left max v0 all_values in
    let span = vmax - vmin + 1 in
    let dense = span <= max 16 (3 * List.length all_values) in
    if dense then begin
      (* Bounds-checked jump table: a computed jump, as the paper's
         "computed jumps we do not attempt to predict". *)
      let idx =
        if vmin = 0 then reg
        else begin
          ins st (I.Alui (I.Sub, R.scratch1, reg, vmin));
          R.scratch1
        end
      in
      ins st (I.Bi (I.Lt, idx, 0, default_l));
      ins st (I.Bi (I.Ge, idx, span, default_l));
      let table = Array.make span default_l in
      List.iter2
        (fun (values, _) (_, label) ->
          List.iter (fun v -> table.(v - vmin) <- label) values)
        cases case_labels;
      ins st (I.Jtab (idx, table))
    end
    else begin
      List.iter
        (fun (values, label) ->
          List.iter (fun v -> ins st (I.Bi (I.Eq, reg, v, label))) values)
        (List.map (fun ((vs, _), (_, l)) -> (vs, l))
           (List.combine cases case_labels));
      ins st (I.J default_l)
    end);
  st.break_labels <- end_l :: st.break_labels;
  List.iter2
    (fun (_, body) (_, label) ->
      place st label;
      in_scope st (fun () -> List.iter (compile_stmt st) body))
    cases case_labels;
  (match default with
  | Some body ->
    place st default_l;
    in_scope st (fun () -> List.iter (compile_stmt st) body)
  | None -> ());
  st.break_labels <- List.tl st.break_labels;
  place st end_l

(* ------------------------------------------------------------------ *)
(* Functions and globals. *)

let compile_func us opts (f : A.func) =
  let st =
    { us;
      opts;
      fname = f.fname;
      ret = f.ret;
      items_rev = [];
      scopes = [ [] ];
      next_slot = 0;
      used_sregs = 0;
      used_fsregs = 0;
      idepth = 0;
      fdepth = 0;
      ispill = Hashtbl.create 8;
      fspill = Hashtbl.create 8;
      csave_i = Hashtbl.create 8;
      csave_f = Hashtbl.create 8;
      leaf = true;
      break_labels = [];
      continue_labels = [];
      epilogue = Printf.sprintf "%s$epilogue" f.fname }
  in
  (* Parameters: copy argument registers into local storage. *)
  let next_int = ref 0 and next_float = ref 0 in
  let param (p : A.param) =
    let storage = alloc_local st p.ptyp in
    declare st p.pname { v_storage = storage; v_ty = p.ptyp };
    match p.ptyp with
    | A.Tfloat ->
      if !next_float >= 4 then
        error "codegen: %S has too many float parameters" f.fname;
      let src = R.farg !next_float in
      incr next_float;
      (match storage with
      | Fsreg r -> ins st (I.Fmov (r, src))
      | Slot s -> ins st (I.Fsw (src, R.sp, s))
      | _ -> assert false)
    | A.Tint | A.Tarr _ ->
      if !next_int >= R.n_arg_regs then
        error "codegen: %S has too many parameters" f.fname;
      let src = R.arg !next_int in
      incr next_int;
      (match storage with
      | Sreg r -> ins st (I.Alui (I.Add, r, src, 0))
      | Slot s -> ins st (I.Sw (src, R.sp, s))
      | _ -> assert false)
    | A.Tvoid -> assert false
  in
  List.iter param f.params;
  List.iter (compile_stmt st) f.body;
  (* Fall-through return: ints return 0. *)
  if f.ret = A.Tint then ins st (I.Li (R.rv, 0));
  place st st.epilogue;
  let body_rev = st.items_rev in
  (* Now that register and slot usage is known, build the prologue. *)
  let ra_slot = if st.leaf then None else Some (alloc_slot st 1) in
  let sreg_slots =
    List.init st.used_sregs (fun i -> (R.sav i, alloc_slot st 1))
  in
  let fsreg_slots =
    List.init st.used_fsregs (fun i -> (R.fsav i, alloc_slot st 1))
  in
  let frame = st.next_slot in
  let prologue =
    (if frame > 0 then [ Asm.Program.Ins (I.Alui (I.Add, R.sp, R.sp, -frame)) ]
     else [])
    @ (match ra_slot with
      | Some s -> [ Asm.Program.Ins (I.Sw (R.ra, R.sp, s)) ]
      | None -> [])
    @ List.map
        (fun (r, s) -> Asm.Program.Ins (I.Sw (r, R.sp, s)))
        sreg_slots
    @ List.map
        (fun (r, s) -> Asm.Program.Ins (I.Fsw (r, R.sp, s)))
        fsreg_slots
  in
  let epilogue_items =
    List.map (fun (r, s) -> Asm.Program.Ins (I.Lw (r, R.sp, s))) sreg_slots
    @ List.map
        (fun (r, s) -> Asm.Program.Ins (I.Flw (r, R.sp, s)))
        fsreg_slots
    @ (match ra_slot with
      | Some s -> [ Asm.Program.Ins (I.Lw (R.ra, R.sp, s)) ]
      | None -> [])
    @ (if frame > 0 then
         [ Asm.Program.Ins (I.Alui (I.Add, R.sp, R.sp, frame)) ]
       else [])
    @ [ Asm.Program.Ins (I.Jr R.ra) ]
  in
  { Asm.Program.name = f.fname;
    body = prologue @ List.rev_append body_rev epilogue_items }

let const_float (e : A.expr) =
  let rec value (e : A.expr) =
    match e.desc with
    | A.Int_lit n -> float_of_int n
    | A.Float_lit x -> x
    | A.Unop (A.Neg, sub) -> -.value sub
    | _ -> error "codegen: global initializer must be constant"
  in
  value e

let const_int (e : A.expr) =
  let rec value (e : A.expr) =
    match e.desc with
    | A.Int_lit n -> n
    | A.Float_lit x -> int_of_float x
    | A.Unop (A.Neg, sub) -> -value sub
    | _ -> error "codegen: global initializer must be constant"
  in
  value e

let layout_global us (g : A.global) =
  let words = match g.gsize with Some n -> n | None -> 1 in
  let addr = us.next_addr in
  us.next_addr <- us.next_addr + words;
  let cell e =
    if g.gtyp = A.Tfloat then Asm.Program.Float_cell (const_float e)
    else Asm.Program.Int_cell (const_int e)
  in
  (match g.ginit with
  | Some (A.Gscalar e) -> us.data <- (addr, [| cell e |]) :: us.data
  | Some (A.Glist es) ->
    us.data <- (addr, Array.of_list (List.map cell es)) :: us.data
  | Some (A.Gstring s) ->
    let cells =
      Array.init
        (String.length s + 1)
        (fun i ->
          if i < String.length s then
            Asm.Program.Int_cell (Char.code s.[i])
          else Asm.Program.Int_cell 0)
    in
    us.data <- (addr, cells) :: us.data
  | None -> ());
  let v =
    match g.gsize with
    | Some _ -> { v_storage = Global_arr addr; v_ty = A.Tarr g.gtyp }
    | None -> { v_storage = Global_scalar addr; v_ty = g.gtyp }
  in
  Hashtbl.add us.globals g.gname v

let program ?(options = default_options) (prog : A.program) =
  let us =
    { label_counter = 0;
      next_addr = 16;
      globals = Hashtbl.create 64;
      data = [];
      fsigs = Hashtbl.create 64 }
  in
  let fsig (f : A.func) =
    Hashtbl.add us.fsigs f.fname
      { Minic.Sema.sret = f.ret;
        sparams = List.map (fun (p : A.param) -> p.ptyp) f.params }
  in
  List.iter fsig prog.funcs;
  List.iter (layout_global us) prog.globals;
  let start =
    { Asm.Program.name = "__start";
      body = [ Asm.Program.Ins (I.Jal "main"); Asm.Program.Ins I.Halt ] }
  in
  let procs = start :: List.map (compile_func us options) prog.funcs in
  { Asm.Program.procs; data = List.rev us.data; entry = "__start" }

let compile ?options source =
  let ast = Minic.Parser.parse source in
  ignore (Minic.Sema.check ast);
  program ?options ast

let compile_flat ?options source =
  Asm.Program.resolve (compile ?options source)

(** Code generation from type-checked Mini-C to the target ISA.

    The generated code follows the conventions of a classical one-pass
    RISC compiler, which is what the paper's trace analysis assumes:

    - a stack frame per activation, allocated and released by
      stack-pointer adjustment instructions at entry and exit (the
      instructions simulated perfect inlining removes);
    - scalar locals and parameters register-allocated to callee-saved
      registers while they last ([s0]..[s7], [fs0]..[fs7]), then frame
      slots;
    - expressions evaluated on a register stack ([t0]..[t7],
      [ft0]..[ft7]) with frame spills past depth 8, with immediate
      operands folded into ALU-immediate and compare-immediate forms so
      that loop tests appear as the fused [Bi] idiom the unrolling
      analysis recognizes;
    - arguments in [a0]..[a3] / [fa0]..[fa3] (at most four integer-or-
      array and four float arguments per function);
    - dense [switch] statements lowered to bounds-checked jump tables
      (computed jumps), sparse ones to compare chains;
    - loops laid out with a bottom test (a backward conditional branch),
      as MIPS compilers of the era did.

    Address space: globals from word address 16 up; each string or list
    initializer becomes data-segment cells.  The stack grows down from
    the top of memory. *)

exception Error of string
(** Raised on generation-time limits (e.g. too many arguments). *)

(** [if_convert] enables guarded-instruction if-conversion (paper §6):
    simple conditional scalar assignments become branch-free [movn]
    conditional moves, removing branches from the instruction stream. *)
type options = { if_convert : bool }

val default_options : options
(** [{ if_convert = false }], the paper's baseline compiler. *)

val program : ?options:options -> Minic.Ast.program -> Asm.Program.t
(** Compiles a type-checked program ({!Minic.Sema.check} must have run:
    expression types must be annotated). *)

val compile : ?options:options -> string -> Asm.Program.t
(** Front end pipeline: parse, check, generate.
    @raise Minic.Parser.Error, Minic.Lexer.Error, Minic.Sema.Error,
    Error. *)

val compile_flat : ?options:options -> string -> Asm.Program.flat
(** [compile] followed by {!Asm.Program.resolve}. *)

lib/codegen/compile.mli: Asm Minic

lib/codegen/compile.ml: Array Asm Char Format Hashtbl List Minic Option Printf Risc String

type t = {
  entry : string;
  mutable counter : int;
  mutable procs_rev : Program.proc list;
  mutable current : (string * Program.item list) option;  (* items reversed *)
  mutable data_rev : (int * Program.cell array) list;
}

let create ~entry =
  { entry; counter = 0; procs_rev = []; current = None; data_rev = [] }

let fresh_label b hint =
  b.counter <- b.counter + 1;
  Printf.sprintf "%s$%d" hint b.counter

let begin_proc b name =
  match b.current with
  | Some _ -> invalid_arg "Builder.begin_proc: procedure already open"
  | None -> b.current <- Some (name, [])

let with_current b f =
  match b.current with
  | None -> invalid_arg "Builder: no open procedure"
  | Some (name, items) -> b.current <- Some (name, f items)

let end_proc b =
  match b.current with
  | None -> invalid_arg "Builder.end_proc: no open procedure"
  | Some (name, items_rev) ->
    b.procs_rev <- { Program.name; body = List.rev items_rev } :: b.procs_rev;
    b.current <- None

let ins b i = with_current b (fun items -> Program.Ins i :: items)
let place_label b l = with_current b (fun items -> Program.Label l :: items)
let add_data b ~base cells = b.data_rev <- (base, cells) :: b.data_rev

let finish b =
  match b.current with
  | Some _ -> invalid_arg "Builder.finish: procedure still open"
  | None ->
    { Program.procs = List.rev b.procs_rev;
      data = List.rev b.data_rev;
      entry = b.entry }

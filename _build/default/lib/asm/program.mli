(** Assembly programs.

    A program is a list of procedures made of labels and instructions,
    plus an initialized data segment.  [resolve] flattens the procedures
    into one code array with labels replaced by absolute indices; the flat
    form is what the VM executes and the analyzers consume.

    Label scope is global, so the code generator emits unique names.  The
    entry procedure is executed first and must end in [Halt]. *)

type item =
  | Label of string
  | Ins of string Risc.Insn.t

type proc = {
  name : string;
  body : item list;
}

type cell =
  | Int_cell of int
  | Float_cell of float

type t = {
  procs : proc list;
  data : (int * cell array) list;  (** (base address, initial cells) *)
  entry : string;  (** name of the entry procedure *)
}

type flat = {
  code : int Risc.Insn.t array;
  proc_of : int array;  (** procedure index of each instruction *)
  proc_names : string array;
  proc_bounds : (int * int) array;  (** per procedure: [start, stop) *)
  entry_pc : int;
  flat_data : (int * cell array) list;
  label_pc : (string * int) list;  (** resolved label table, for tests *)
}

exception Link_error of string

val resolve : t -> flat
(** Flattens and links a program.
    @raise Link_error on duplicate or undefined labels, or a missing
    entry procedure. *)

val proc_of_pc : flat -> int -> string
(** Name of the procedure containing a code index. *)

val pp_flat : Format.formatter -> flat -> unit
(** Disassembly listing with procedure headers and resolved targets. *)

val pp : Format.formatter -> t -> unit
(** Symbolic assembly listing. *)

lib/asm/builder.mli: Program Risc

lib/asm/builder.ml: List Printf Program

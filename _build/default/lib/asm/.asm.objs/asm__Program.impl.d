lib/asm/program.ml: Array Format Hashtbl List Risc

lib/asm/program.mli: Format Risc

type item =
  | Label of string
  | Ins of string Risc.Insn.t

type proc = {
  name : string;
  body : item list;
}

type cell =
  | Int_cell of int
  | Float_cell of float

type t = {
  procs : proc list;
  data : (int * cell array) list;
  entry : string;
}

type flat = {
  code : int Risc.Insn.t array;
  proc_of : int array;
  proc_names : string array;
  proc_bounds : (int * int) array;
  entry_pc : int;
  flat_data : (int * cell array) list;
  label_pc : (string * int) list;
}

exception Link_error of string

let link_err fmt = Format.kasprintf (fun s -> raise (Link_error s)) fmt

let resolve prog =
  let labels : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let define name pc =
    if Hashtbl.mem labels name then link_err "duplicate label %S" name;
    Hashtbl.add labels name pc
  in
  (* First pass: assign addresses.  A procedure's name is itself a label
     pointing at its first instruction. *)
  let pc = ref 0 in
  let measure proc =
    define proc.name !pc;
    let item = function
      | Label l -> define l !pc
      | Ins _ -> incr pc
    in
    List.iter item proc.body
  in
  List.iter measure prog.procs;
  let n = !pc in
  if n = 0 then link_err "empty program";
  let code = Array.make n Risc.Insn.Halt in
  let proc_of = Array.make n 0 in
  let n_procs = List.length prog.procs in
  let proc_names = Array.make n_procs "" in
  let proc_bounds = Array.make n_procs (0, 0) in
  let lookup l =
    match Hashtbl.find_opt labels l with
    | Some target -> target
    | None -> link_err "undefined label %S" l
  in
  let pc = ref 0 in
  let fill idx proc =
    proc_names.(idx) <- proc.name;
    let start = !pc in
    let item = function
      | Label _ -> ()
      | Ins i ->
        code.(!pc) <- Risc.Insn.map_label lookup i;
        proc_of.(!pc) <- idx;
        incr pc
    in
    List.iter item proc.body;
    proc_bounds.(idx) <- (start, !pc)
  in
  List.iteri fill prog.procs;
  let entry_pc =
    match Hashtbl.find_opt labels prog.entry with
    | Some pc -> pc
    | None -> link_err "entry procedure %S not defined" prog.entry
  in
  let label_pc = Hashtbl.fold (fun l pc acc -> (l, pc) :: acc) labels [] in
  { code; proc_of; proc_names; proc_bounds; entry_pc;
    flat_data = prog.data; label_pc }

let proc_of_pc flat pc = flat.proc_names.(flat.proc_of.(pc))

let pp_flat ppf flat =
  let current = ref (-1) in
  let insn pc i =
    if flat.proc_of.(pc) <> !current then begin
      current := flat.proc_of.(pc);
      Format.fprintf ppf "%s:@." flat.proc_names.(!current)
    end;
    Format.fprintf ppf "  %4d  %a@." pc Risc.Insn.pp_resolved i
  in
  Array.iteri insn flat.code

let pp ppf prog =
  let item = function
    | Label l -> Format.fprintf ppf "%s:@." l
    | Ins i -> Format.fprintf ppf "  %a@." Risc.Insn.pp_string i
  in
  let proc p =
    Format.fprintf ppf "%s:@." p.name;
    List.iter item p.body
  in
  List.iter proc prog.procs

(** Imperative helper for emitting assembly procedures.

    The code generator creates one builder per compilation unit, emits
    instructions and labels procedure by procedure, and finally calls
    [finish].  Fresh labels are unique across the whole unit. *)

type t

val create : entry:string -> t

val fresh_label : t -> string -> string
(** [fresh_label b hint] is a new unique label containing [hint]. *)

val begin_proc : t -> string -> unit
(** Starts a procedure.  @raise Invalid_argument when one is open. *)

val end_proc : t -> unit
(** Finishes the open procedure.  @raise Invalid_argument otherwise. *)

val ins : t -> string Risc.Insn.t -> unit
(** Appends an instruction to the open procedure. *)

val place_label : t -> string -> unit
(** Places a label at the current position of the open procedure. *)

val add_data : t -> base:int -> Program.cell array -> unit
(** Registers an initialized data block. *)

val finish : t -> Program.t
(** @raise Invalid_argument when a procedure is still open. *)

(** Branch predictors.

    The paper uses static prediction from profile information gathered on
    the same input (§4.4.2), an upper bound for static prediction.  The
    analyzer consults the predictor on every dynamic conditional branch
    through [predict], which returns the predicted direction and may
    update internal state (allowing dynamic predictors as an extension).

    Computed jumps are never predicted; the analyzer treats them as
    always mispredicted, as in the paper. *)

type t = {
  name : string;
  predict : pc:int -> taken:bool -> bool;
  (** [predict ~pc ~taken] is the predicted direction for this dynamic
      instance; [taken] is the actual outcome, provided so that dynamic
      predictors can train themselves after predicting. *)
}

val perfect : t
(** Always right — the ORACLE machine's predictor. *)

val always_taken : t

val backward_taken : is_backward:(int -> bool) -> t
(** Static BTFN heuristic: backward branches predicted taken, forward
    branches predicted not taken. *)

val profile : n_static:int -> is_cond:(int -> bool) -> Vm.Trace.t -> t
(** Majority direction per static branch, measured on the given trace —
    the paper's predictor.  Branches never seen in the profiling trace
    are predicted not taken. *)

val two_bit : n_static:int -> t
(** Classic saturating 2-bit counter per static branch, initialized to
    weakly not-taken.  Stateful: create a fresh one per simulation. *)

type stats = {
  branches : int;
  correct : int;
  rate : float;  (** percent correct *)
}

val measure : t -> is_cond:(int -> bool) -> Vm.Trace.t -> stats
(** Runs the predictor over all conditional branches of a trace. *)

lib/predict/predictor.ml: Array Vm

lib/predict/predictor.mli: Vm

type t = {
  name : string;
  predict : pc:int -> taken:bool -> bool;
}

let perfect = { name = "perfect"; predict = (fun ~pc:_ ~taken -> taken) }

let always_taken =
  { name = "always-taken"; predict = (fun ~pc:_ ~taken:_ -> true) }

let backward_taken ~is_backward =
  { name = "btfn"; predict = (fun ~pc ~taken:_ -> is_backward pc) }

let profile ~n_static ~is_cond trace =
  let taken_count = Array.make n_static 0 in
  let total_count = Array.make n_static 0 in
  let entry ~pc ~aux =
    if is_cond pc then begin
      total_count.(pc) <- total_count.(pc) + 1;
      if aux = 1 then taken_count.(pc) <- taken_count.(pc) + 1
    end
  in
  Vm.Trace.iter entry trace;
  let predicted_taken =
    Array.init n_static (fun pc -> 2 * taken_count.(pc) > total_count.(pc))
  in
  { name = "profile";
    predict = (fun ~pc ~taken:_ -> predicted_taken.(pc)) }

let two_bit ~n_static =
  (* 0,1 predict not taken; 2,3 predict taken.  Initialized to 1. *)
  let counters = Array.make n_static 1 in
  let predict ~pc ~taken =
    let prediction = counters.(pc) >= 2 in
    if taken then counters.(pc) <- min 3 (counters.(pc) + 1)
    else counters.(pc) <- max 0 (counters.(pc) - 1);
    prediction
  in
  { name = "2-bit"; predict }

type stats = {
  branches : int;
  correct : int;
  rate : float;
}

let measure p ~is_cond trace =
  let branches = ref 0 and correct = ref 0 in
  let entry ~pc ~aux =
    if is_cond pc then begin
      incr branches;
      let taken = aux = 1 in
      if p.predict ~pc ~taken = taken then incr correct
    end
  in
  Vm.Trace.iter entry trace;
  let rate =
    if !branches = 0 then 100.
    else 100. *. float_of_int !correct /. float_of_int !branches
  in
  { branches = !branches; correct = !correct; rate }

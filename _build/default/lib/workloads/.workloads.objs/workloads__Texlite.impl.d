lib/workloads/texlite.ml:

lib/workloads/mat300.ml:

lib/workloads/awklite.ml:

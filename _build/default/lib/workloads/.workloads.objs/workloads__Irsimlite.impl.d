lib/workloads/irsimlite.ml:

lib/workloads/eqnlite.ml:

lib/workloads/spicelite.ml:

lib/workloads/tomlite.ml:

lib/workloads/esprlite.ml:

lib/workloads/gcclite.ml:

lib/workloads/ccomlite.ml:

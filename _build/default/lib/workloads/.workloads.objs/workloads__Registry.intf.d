lib/workloads/registry.mli: Asm Codegen Vm

lib/workloads/registry.ml: Awklite Ccomlite Codegen Eqnlite Esprlite Gcclite Irsimlite List Mat300 Printf Spicelite Texlite Tomlite Vm

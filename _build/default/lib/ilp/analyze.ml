type config = {
  machine : Machine.t;
  inline : bool;
  unroll : bool;
  predictor : Predict.Predictor.t;
  collect_segments : bool;
  mem_words : int;
}

let config ?(inline = true) ?(unroll = true) ?(collect_segments = false)
    ?(mem_words = 1024) machine predictor =
  { machine; inline; unroll; predictor; collect_segments; mem_words }

type segment = {
  length : int;
  cycles : int;
}

type result = {
  machine : string;
  counted : int;
  seq_cycles : int;
  cycles : int;
  parallelism : float;
  dyn_branches : int;
  mispredicts : int;
  segments : segment array;
}

(* Last-write table for memory, auto-growing so synthetic tests can use
   tiny address spaces while VM traces use the full memory. *)
module Mem_table = struct
  type t = { mutable times : int array }

  let create words = { times = Array.make (max words 16) 0 }

  let rec grow t addr =
    let n = Array.length t.times in
    if addr >= n then begin
      let bigger = Array.make (2 * n) 0 in
      Array.blit t.times 0 bigger 0 n;
      t.times <- bigger;
      grow t addr
    end

  let get t addr =
    if addr >= Array.length t.times then 0 else t.times.(addr)

  let set t addr time =
    if addr >= Array.length t.times then grow t addr;
    t.times.(addr) <- time
end

(* One procedure activation of the interprocedural control-dependence
   stack (paper §4.4.1). *)
type frame = {
  f_entry : int;  (* sequence number of the activation's first block *)
  f_ctx_seq : int;  (* call site's resolved control dependence *)
  f_ctx_time : int;
  f_ctx_mchain : int;
}

let run (cfg : config) (info : Program_info.t) trace =
  let m = cfg.machine in
  let n_trace = Vm.Trace.length trace in
  let reg_time = Array.make Risc.Reg.n_unified 0 in
  let mem = Mem_table.create cfg.mem_words in
  (* Per static block: data of the most recently *executed* branch
     instance terminating it.  [cand_seq] is that instance's block
     sequence number; 0 = no instance yet. *)
  let cand_seq = Array.make (max info.n_blocks 1) 0 in
  let b_time = Array.make (max info.n_blocks 1) 0 in
  let b_mchain = Array.make (max info.n_blocks 1) 0 in
  let b_proc = Array.make (max info.n_blocks 1) 0 in
  let seq_counter = ref 0 in
  let cur_block_seq = ref 0 in
  (* Current activation; saved frames below it. *)
  let stack = ref [] in
  let cur_entry = ref 1 in
  let ctx_seq = ref 0 and ctx_time = ref 0 and ctx_mchain = ref 0 in
  let last_branch_time = ref 0 in
  let last_mispred_time = ref 0 in
  let flow_time =
    match m.flows with Some k -> Array.make (max k 1) 0 | None -> [||]
  in
  let window =
    match m.window with Some w -> Array.make (max w 1) 0 | None -> [||]
  in
  let win_pos = ref 0 in
  let counted = ref 0 and seq_cycles = ref 0 and max_time = ref 0 in
  let dyn_branches = ref 0 and mispredicts = ref 0 in
  let seg_len = ref 0 and seg_base = ref 0 and seg_max = ref 0 in
  let segments = Stdx.Vec.create ~dummy:{ length = 0; cycles = 0 } () in
  (* Control-dependence resolution: the call-site context or the most
     recent valid RDF branch instance, whichever is newer; dropped
     entirely when an instance from a newer activation (recursion) is
     seen.  Results through refs to keep the hot loop allocation-free. *)
  let r_seq = ref 0 and r_time = ref 0 and r_mchain = ref 0 in
  let resolve blk =
    r_seq := !ctx_seq;
    r_time := !ctx_time;
    r_mchain := !ctx_mchain;
    let recursion = ref false in
    let rdf = info.rdf.(blk) in
    for k = 0 to Array.length rdf - 1 do
      let c = rdf.(k) in
      if cand_seq.(c) > 0 then begin
        if b_proc.(c) > !cur_entry then recursion := true
        else if b_proc.(c) = !cur_entry && cand_seq.(c) > !r_seq then begin
          r_seq := cand_seq.(c);
          r_time := b_time.(c);
          r_mchain := b_mchain.(c)
        end
      end
    done;
    if !recursion then begin
      r_seq := 0;
      r_time := 0;
      r_mchain := 0
    end
  in
  for i = 0 to n_trace - 1 do
    let pc = Vm.Trace.pc trace i in
    let blk = info.block_of.(pc) in
    if pc = info.block_start.(blk) then begin
      incr seq_counter;
      cur_block_seq := !seq_counter
    end;
    let kind = info.kind.(pc) in
    (* Interprocedural stack maintenance happens whether or not the call
       and return instructions themselves are timed. *)
    (match kind with
    | Call ->
      if m.control_dep then resolve blk
      else begin
        r_seq := 0;
        r_time := 0;
        r_mchain := 0
      end;
      stack :=
        { f_entry = !cur_entry; f_ctx_seq = !ctx_seq;
          f_ctx_time = !ctx_time; f_ctx_mchain = !ctx_mchain }
        :: !stack;
      cur_entry := !seq_counter + 1;
      ctx_seq := !r_seq;
      ctx_time := !r_time;
      ctx_mchain := !r_mchain
    | Ret -> (
      match !stack with
      | f :: rest ->
        stack := rest;
        cur_entry := f.f_entry;
        ctx_seq := f.f_ctx_seq;
        ctx_time := f.f_ctx_time;
        ctx_mchain := f.f_ctx_mchain
      | [] ->
        cur_entry := 1;
        ctx_seq := 0;
        ctx_time := 0;
        ctx_mchain := 0)
    | Plain | Cond_branch | Jump | Computed_jump | Stop -> ());
    let removed =
      (match kind with
      | Stop -> true
      | Call | Ret -> cfg.inline
      | Plain | Cond_branch | Jump | Computed_jump -> false)
      || (cfg.inline && info.sp_adjust.(pc))
      || (cfg.unroll && info.loop_overhead.(pc))
    in
    if removed then begin
      (* A removed loop branch passes its own control dependence through
         to its dependents (unrolling an inner loop leaves its body
         dependent on the enclosing branch). *)
      if kind = Risc.Insn.Cond_branch && m.control_dep then begin
        resolve blk;
        cand_seq.(blk) <- !cur_block_seq;
        b_proc.(blk) <- !cur_entry;
        b_time.(blk) <- !r_time;
        b_mchain.(blk) <- !r_mchain
      end
    end
    else begin
      let is_cbr = kind = Risc.Insn.Cond_branch in
      let is_cjump =
        kind = Risc.Insn.Computed_jump
        || ((not cfg.inline) && kind = Risc.Insn.Ret)
      in
      if m.control_dep then resolve blk;
      let ctrl =
        if m.oracle then 0
        else if m.speculate && m.control_dep then !r_mchain
        else if m.speculate then !last_mispred_time
        else if m.control_dep then !r_time
        else !last_branch_time
      in
      (* True data dependences. *)
      let data = ref 0 in
      let uses = info.uses.(pc) in
      for k = 0 to Array.length uses - 1 do
        let time = reg_time.(uses.(k)) in
        if time > !data then data := time
      done;
      (match info.mem.(pc) with
      | Mem_load ->
        let time = Mem_table.get mem (Vm.Trace.addr trace i) in
        if time > !data then data := time
      | No_mem | Mem_store -> ());
      let t = ref (1 + max ctrl !data) in
      (* Branch prediction. *)
      let mispred = ref false in
      if is_cbr then begin
        incr dyn_branches;
        let taken = Vm.Trace.taken trace i in
        let predicted = cfg.predictor.predict ~pc ~taken in
        mispred := predicted <> taken
      end
      else if is_cjump then mispred := true;
      (* Serializing branches compete for the machine's flows of
         control: one such branch per flow per cycle. *)
      let serializing =
        (is_cbr || is_cjump)
        && (not m.oracle)
        && ((not m.speculate) || !mispred)
      in
      let flow_idx = ref (-1) in
      if serializing && Array.length flow_time > 0 then begin
        let best = ref 0 in
        for k = 1 to Array.length flow_time - 1 do
          if flow_time.(k) < flow_time.(!best) then best := k
        done;
        flow_idx := !best;
        if flow_time.(!best) + 1 > !t then t := flow_time.(!best) + 1
      end;
      (* Finite scheduling window: an instruction cannot issue before
         the one [w] earlier has issued. *)
      if Array.length window > 0 then begin
        if window.(!win_pos) > !t then t := window.(!win_pos);
        window.(!win_pos) <- !t;
        win_pos := (!win_pos + 1) mod Array.length window
      end;
      let lat =
        match m.latencies with None -> 1 | Some f -> f info.lat.(pc)
      in
      let completion = !t + lat - 1 in
      (* Record results. *)
      let defs = info.defs.(pc) in
      for k = 0 to Array.length defs - 1 do
        reg_time.(defs.(k)) <- completion
      done;
      (match info.mem.(pc) with
      | Mem_store -> Mem_table.set mem (Vm.Trace.addr trace i) completion
      | No_mem | Mem_load -> ());
      incr counted;
      seq_cycles := !seq_cycles + lat;
      if completion > !max_time then max_time := completion;
      if cfg.collect_segments then begin
        incr seg_len;
        if completion > !seg_max then seg_max := completion
      end;
      if is_cbr || is_cjump then begin
        cand_seq.(blk) <- !cur_block_seq;
        b_proc.(blk) <- !cur_entry;
        b_time.(blk) <- completion;
        b_mchain.(blk) <- (if !mispred then completion else !r_mchain);
        last_branch_time := completion;
        if serializing && !flow_idx >= 0 then
          flow_time.(!flow_idx) <- completion;
        if !mispred then begin
          incr mispredicts;
          last_mispred_time := completion;
          if cfg.collect_segments then begin
            Stdx.Vec.push segments
              { length = !seg_len;
                cycles = max 1 (!seg_max - !seg_base) };
            seg_len := 0;
            seg_base := completion;
            seg_max := completion
          end
        end
      end
    end
  done;
  if cfg.collect_segments && !seg_len > 0 then
    Stdx.Vec.push segments
      { length = !seg_len; cycles = max 1 (!seg_max - !seg_base) };
  let parallelism =
    if !max_time = 0 then 1.
    else float_of_int !seq_cycles /. float_of_int !max_time
  in
  { machine = m.name;
    counted = !counted;
    seq_cycles = !seq_cycles;
    cycles = !max_time;
    parallelism;
    dyn_branches = !dyn_branches;
    mispredicts = !mispredicts;
    segments = Stdx.Vec.to_array segments }

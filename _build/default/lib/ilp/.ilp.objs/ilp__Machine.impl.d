lib/ilp/machine.ml: Printf Program_info

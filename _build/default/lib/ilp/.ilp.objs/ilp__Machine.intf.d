lib/ilp/machine.mli: Program_info

lib/ilp/program_info.ml: Array Asm Cfg Risc

lib/ilp/analyze.mli: Machine Predict Program_info Vm

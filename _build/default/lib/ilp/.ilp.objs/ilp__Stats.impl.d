lib/ilp/stats.ml: Analyze Array Hashtbl List Predict Program_info Stdx Vm

lib/ilp/program_info.mli: Asm Cfg Risc

lib/ilp/analyze.ml: Array Machine Predict Program_info Risc Stdx Vm

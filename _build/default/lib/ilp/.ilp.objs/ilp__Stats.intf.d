lib/ilp/stats.mli: Analyze Predict Program_info Vm

(** Abstract machine models (paper §3).

    A machine is described by how it relaxes control-flow constraints:

    - [oracle]: perfect branch prediction — no control constraints at
      all (the ORACLE machine);
    - [control_dep]: perfect control-dependence information — an
      instruction waits only for branches it is control dependent on;
    - [speculate]: speculative execution along the predicted path — only
      {e mispredicted} branches constrain execution;
    - [flows]: how many flows of control the machine can follow at once.
      [Some 1] is a von Neumann uniprocessor: the serializing branches
      (all branches without speculation, mispredicted branches with it)
      execute one per cycle, in order.  [None] is the MF limit
      (unbounded flows); intermediate [Some k] models a k-processor
      machine and is an extension beyond the paper.

    [window] and [latencies] are ablation knobs, [None] for the paper's
    idealized setting (unlimited scheduling window, unit latencies). *)

type t = {
  name : string;
  oracle : bool;
  control_dep : bool;
  speculate : bool;
  flows : int option;
  window : int option;
  latencies : (Program_info.lat_class -> int) option;
}

val base : t
val cd : t
val cd_mf : t
val sp : t
val sp_cd : t
val sp_cd_mf : t
val oracle : t

val all_paper : t list
(** The seven machines, in the paper's Table 3 column order. *)

val with_window : int -> t -> t

val with_flows : int option -> t -> t

val with_latencies : (Program_info.lat_class -> int) -> t -> t

val realistic_latencies : Program_info.lat_class -> int
(** A representative early-90s latency set: int 1, load/store 2, mul 4,
    div 16, FP add 3, FP mul 5, FP div 19. *)

(** Statistics the paper reports alongside the parallelism limits. *)

(** Table 2: conditional-branch prediction rate and dynamic density. *)
type branch_stats = {
  dyn_branches : int;  (** dynamic conditional branches in the trace *)
  trace_len : int;  (** dynamic instructions in the trace *)
  rate : float;  (** percent predicted correctly *)
  instrs_between : float;  (** dynamic instructions per conditional branch *)
}

val branch_stats :
  Program_info.t -> Predict.Predictor.t -> Vm.Trace.t -> branch_stats

val distance_histogram : Analyze.segment array -> (int * int) list
(** Misprediction-distance histogram [(distance, occurrences)], sorted. *)

val cumulative_distances : Analyze.segment array -> (int * float) list
(** Figure 6: cumulative distribution of misprediction distances. *)

(** One Figure 7 bucket: segments whose length falls in [lo..hi]. *)
type bucket = {
  lo : int;
  hi : int;
  count : int;
  mean_parallelism : float;  (** harmonic mean of length/cycles *)
}

val parallelism_by_distance : Analyze.segment array -> bucket list
(** Figure 7: harmonic-mean segment parallelism per power-of-two
    misprediction-distance bucket. *)

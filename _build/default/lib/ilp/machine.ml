type t = {
  name : string;
  oracle : bool;
  control_dep : bool;
  speculate : bool;
  flows : int option;
  window : int option;
  latencies : (Program_info.lat_class -> int) option;
}

let make name ~oracle ~control_dep ~speculate ~flows =
  { name; oracle; control_dep; speculate; flows; window = None;
    latencies = None }

let base =
  make "BASE" ~oracle:false ~control_dep:false ~speculate:false
    ~flows:(Some 1)

let cd =
  make "CD" ~oracle:false ~control_dep:true ~speculate:false ~flows:(Some 1)

let cd_mf =
  make "CD-MF" ~oracle:false ~control_dep:true ~speculate:false ~flows:None

let sp =
  make "SP" ~oracle:false ~control_dep:false ~speculate:true ~flows:(Some 1)

let sp_cd =
  make "SP-CD" ~oracle:false ~control_dep:true ~speculate:true
    ~flows:(Some 1)

let sp_cd_mf =
  make "SP-CD-MF" ~oracle:false ~control_dep:true ~speculate:true
    ~flows:None

let oracle =
  make "ORACLE" ~oracle:true ~control_dep:false ~speculate:false ~flows:None

let all_paper = [ base; cd; cd_mf; sp; sp_cd; sp_cd_mf; oracle ]

let with_window w m =
  { m with window = Some w; name = Printf.sprintf "%s/w%d" m.name w }

let with_flows flows m =
  let suffix =
    match flows with None -> "/mf" | Some k -> Printf.sprintf "/%df" k
  in
  { m with flows; name = m.name ^ suffix }

let with_latencies latencies m =
  { m with latencies = Some latencies; name = m.name ^ "/lat" }

let realistic_latencies = function
  | Program_info.Lat_int -> 1
  | Lat_mul -> 4
  | Lat_div -> 16
  | Lat_mem -> 2
  | Lat_fadd -> 3
  | Lat_fmul -> 5
  | Lat_fdiv -> 19

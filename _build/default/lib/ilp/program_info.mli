(** Static program information consumed by the limit analyzer.

    This is deliberately a plain record of arrays so that unit tests can
    construct small synthetic programs directly; [of_flat] derives it
    from a resolved program and its CFG analysis. *)

(** Latency class, used only by the non-unit-latency ablation. *)
type lat_class =
  | Lat_int  (** simple integer ALU, branches, moves *)
  | Lat_mul
  | Lat_div
  | Lat_mem  (** loads and stores *)
  | Lat_fadd  (** FP add/sub/compare/convert *)
  | Lat_fmul
  | Lat_fdiv

type mem_kind = No_mem | Mem_load | Mem_store

type t = {
  n : int;  (** number of static instructions *)
  kind : Risc.Insn.kind array;
  uses : int array array;  (** unified register ids read *)
  defs : int array array;  (** unified register ids written *)
  mem : mem_kind array;
  sp_adjust : bool array;
  (** writes the stack pointer: removed by perfect inlining *)
  loop_overhead : bool array;
  (** loop index/induction overhead: removed by perfect unrolling *)
  lat : lat_class array;
  block_of : int array;  (** instruction -> global block id *)
  block_start : int array;  (** per block: first instruction *)
  n_blocks : int;
  rdf : int array array;
  (** per block: blocks whose terminating branches it is immediately
      control dependent on *)
}

val of_flat : Asm.Program.flat -> Cfg.Analysis.t -> t

val analyze_flat : Asm.Program.flat -> t
(** [of_flat] composed with {!Cfg.Analysis.analyze}. *)

val is_cond_branch : t -> int -> bool

val branch_backward : Asm.Program.flat -> int -> bool
(** Is the conditional branch at this pc backward (target <= pc)?  Used
    by the BTFN predictor. *)

type branch_stats = {
  dyn_branches : int;
  trace_len : int;
  rate : float;
  instrs_between : float;
}

let branch_stats info (predictor : Predict.Predictor.t) trace =
  let dyn = ref 0 and correct = ref 0 in
  let entry ~pc ~aux =
    if Program_info.is_cond_branch info pc then begin
      incr dyn;
      let taken = aux = 1 in
      if predictor.predict ~pc ~taken = taken then incr correct
    end
  in
  Vm.Trace.iter entry trace;
  let len = Vm.Trace.length trace in
  { dyn_branches = !dyn;
    trace_len = len;
    rate =
      (if !dyn = 0 then 100.
       else 100. *. float_of_int !correct /. float_of_int !dyn);
    instrs_between =
      (if !dyn = 0 then float_of_int len
       else float_of_int len /. float_of_int !dyn) }

let distance_histogram segments =
  let hist = Hashtbl.create 256 in
  let seg (s : Analyze.segment) =
    let count =
      match Hashtbl.find_opt hist s.length with Some c -> c | None -> 0
    in
    Hashtbl.replace hist s.length (count + 1)
  in
  Array.iter seg segments;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) hist []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let cumulative_distances segments =
  Stdx.Stats.cumulative (distance_histogram segments)

type bucket = {
  lo : int;
  hi : int;
  count : int;
  mean_parallelism : float;
}

let bucket_index len =
  (* 1 -> 0; 2 -> 1; 3-4 -> 2; 5-8 -> 3; ... *)
  let rec go idx hi = if len <= hi then idx else go (idx + 1) (hi * 2) in
  go 0 1

let bucket_bounds idx =
  if idx = 0 then (1, 1) else ((1 lsl (idx - 1)) + 1, 1 lsl idx)

let parallelism_by_distance segments =
  let table : (int, float list) Hashtbl.t = Hashtbl.create 32 in
  let seg (s : Analyze.segment) =
    let idx = bucket_index s.length in
    let par = float_of_int s.length /. float_of_int s.cycles in
    let existing =
      match Hashtbl.find_opt table idx with Some l -> l | None -> []
    in
    Hashtbl.replace table idx (par :: existing)
  in
  Array.iter seg segments;
  Hashtbl.fold
    (fun idx pars acc ->
      let lo, hi = bucket_bounds idx in
      { lo; hi; count = List.length pars;
        mean_parallelism = Stdx.Stats.harmonic_mean pars }
      :: acc)
    table []
  |> List.sort (fun a b -> compare a.lo b.lo)

(** Hand-written lexer for Mini-C. *)

type token =
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Kw of string  (** keywords: int float void if else while for ... *)
  | Punct of string  (** operators and punctuation, longest match *)
  | Eof

type t = {
  tok : token;
  line : int;
}

exception Error of string * int  (** message, line *)

val tokenize : string -> t list
(** @raise Error on malformed input. *)

val pp_token : Format.formatter -> token -> unit

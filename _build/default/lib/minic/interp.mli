(** Reference interpreter for Mini-C.

    Evaluates the type-checked AST directly, with the same arithmetic
    semantics as the target ISA (shared via {!Risc.Insn.eval_alu}).
    Used as the oracle in differential tests of the code generator and
    VM: for any program, [run ast] must equal executing the compiled
    code. *)

exception Runtime_error of string
(** Division by zero, out-of-bounds access, or fuel exhaustion. *)

val run : ?fuel:int -> Ast.program -> int
(** Interprets [main].  [fuel] (default 10 million) bounds the number of
    statements and expression nodes evaluated.
    @raise Runtime_error on a dynamic error. *)

exception Runtime_error of string

let err fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type value =
  | Vint of int
  | Vfloat of float

(* Array storage matches the typed memory of the VM: int and float
   arrays are distinct. *)
type slot =
  | Scalar of value ref
  | Int_arr of int array
  | Float_arr of float array

type state = {
  globals : (string, slot) Hashtbl.t;
  funcs : (string, Ast.func) Hashtbl.t;
  mutable fuel : int;
}

exception Return_exc of value option
exception Break_exc
exception Continue_exc

let tick st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then err "out of fuel"

let to_int = function
  | Vint n -> n
  | Vfloat x -> int_of_float x

let to_float = function
  | Vint n -> float_of_int n
  | Vfloat x -> x

let truthy v = to_int (match v with Vint _ -> v | Vfloat x -> Vint (if x <> 0. then 1 else 0)) <> 0

(* Scoped local environment: a stack of association lists. *)
type env = {
  mutable scopes : (string * slot) list list;
}

let push_scope env = env.scopes <- [] :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let declare env name slot =
  match env.scopes with
  | scope :: rest -> env.scopes <- ((name, slot) :: scope) :: rest
  | [] -> err "no scope"

let lookup st env name =
  let rec find = function
    | [] -> (
      match Hashtbl.find_opt st.globals name with
      | Some s -> s
      | None -> err "unbound variable %s" name)
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some s -> s
      | None -> find rest)
  in
  find env.scopes

let alu_of_binop : Ast.binop -> Risc.Insn.alu option = function
  | Ast.Add -> Some Risc.Insn.Add
  | Ast.Sub -> Some Risc.Insn.Sub
  | Ast.Mul -> Some Risc.Insn.Mul
  | Ast.Div -> Some Risc.Insn.Div
  | Ast.Rem -> Some Risc.Insn.Rem
  | Ast.Band -> Some Risc.Insn.And
  | Ast.Bor -> Some Risc.Insn.Or
  | Ast.Bxor -> Some Risc.Insn.Xor
  | Ast.Shl -> Some Risc.Insn.Sll
  | Ast.Shr -> Some Risc.Insn.Sra
  | Ast.Eq -> Some Risc.Insn.Seq
  | Ast.Ne -> Some Risc.Insn.Sne
  | Ast.Lt -> Some Risc.Insn.Slt
  | Ast.Le -> Some Risc.Insn.Sle
  | Ast.Gt | Ast.Ge | Ast.Land | Ast.Lor -> None

let float_cmp op a b =
  let r =
    match (op : Ast.binop) with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
    | _ -> err "not a comparison"
  in
  Vint (if r then 1 else 0)

let rec eval st env (e : Ast.expr) : value =
  tick st;
  match e.desc with
  | Int_lit n -> Vint n
  | Float_lit x -> Vfloat x
  | Var name -> (
    match lookup st env name with
    | Scalar r -> !r
    | Int_arr _ | Float_arr _ -> err "array %s used as a value" name)
  | Index (name, idx) -> (
    let i = to_int (eval st env idx) in
    match lookup st env name with
    | Int_arr a ->
      if i < 0 || i >= Array.length a then err "index out of bounds";
      Vint a.(i)
    | Float_arr a ->
      if i < 0 || i >= Array.length a then err "index out of bounds";
      Vfloat a.(i)
    | Scalar _ -> err "%s is not an array" name)
  | Call (fname, args) -> call st env fname args
  | Unop (op, sub) -> (
    let v = eval st env sub in
    match (op, v) with
    | Ast.Neg, Vint n -> Vint (-n)
    | Ast.Neg, Vfloat x -> Vfloat (-.x)
    | Ast.Lnot, v -> Vint (if truthy v then 0 else 1)
    | Ast.Bnot, Vint n -> Vint (lnot n)
    | Ast.Bnot, Vfloat _ -> err "~ on float")
  | Binop (Ast.Land, a, b) ->
    if truthy (eval st env a) then
      if truthy (eval st env b) then Vint 1 else Vint 0
    else Vint 0
  | Binop (Ast.Lor, a, b) ->
    if truthy (eval st env a) then Vint 1
    else if truthy (eval st env b) then Vint 1
    else Vint 0
  | Binop (op, a, b) -> (
    let va = eval st env a in
    let vb = eval st env b in
    match (va, vb) with
    | Vint x, Vint y -> (
      let op, x, y =
        (* Gt/Ge mirror to Lt/Le as the code generator does. *)
        match op with
        | Ast.Gt -> (Ast.Lt, y, x)
        | Ast.Ge -> (Ast.Le, y, x)
        | _ -> (op, x, y)
      in
      match alu_of_binop op with
      | Some alu -> (
        match Risc.Insn.eval_alu alu x y with
        | v -> Vint v
        | exception Division_by_zero -> err "division by zero")
      | None -> err "bad int binop")
    | _ ->
      let x = to_float va and y = to_float vb in
      (match op with
      | Ast.Add -> Vfloat (x +. y)
      | Ast.Sub -> Vfloat (x -. y)
      | Ast.Mul -> Vfloat (x *. y)
      | Ast.Div -> Vfloat (x /. y)
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
        float_cmp op x y
      | _ -> err "bad float binop"))
  | Assign (lv, rhs) ->
    let v = eval st env rhs in
    assign st env lv v

and assign st env lv v =
  match lv with
  | Ast.Lvar name -> (
    match lookup st env name with
    | Scalar r ->
      let stored =
        match !r with
        | Vint _ -> Vint (to_int v)
        | Vfloat _ -> Vfloat (to_float v)
      in
      r := stored;
      stored
    | Int_arr _ | Float_arr _ -> err "cannot assign to array %s" name)
  | Ast.Lindex (name, idx) -> (
    let i = to_int (eval st env idx) in
    match lookup st env name with
    | Int_arr a ->
      if i < 0 || i >= Array.length a then err "index out of bounds";
      a.(i) <- to_int v;
      Vint a.(i)
    | Float_arr a ->
      if i < 0 || i >= Array.length a then err "index out of bounds";
      a.(i) <- to_float v;
      Vfloat a.(i)
    | Scalar _ -> err "%s is not an array" name)

and call st env fname args =
  let f =
    match Hashtbl.find_opt st.funcs fname with
    | Some f -> f
    | None -> err "unknown function %s" fname
  in
  let bind (p : Ast.param) arg =
    match p.ptyp with
    | Ast.Tarr _ -> (
      (* Pass arrays by reference. *)
      match arg with
      | { Ast.desc = Ast.Var name; _ } -> (
        match lookup st env name with
        | (Int_arr _ | Float_arr _) as slot -> (p.pname, slot)
        | Scalar _ -> err "argument %s is not an array" name)
      | _ -> err "array argument must be a variable")
    | Ast.Tint -> (p.pname, Scalar (ref (Vint (to_int (eval st env arg)))))
    | Ast.Tfloat ->
      (p.pname, Scalar (ref (Vfloat (to_float (eval st env arg)))))
    | Ast.Tvoid -> err "void parameter"
  in
  let bindings = List.map2 bind f.params args in
  let fenv = { scopes = [ bindings ] } in
  match List.iter (exec st fenv) f.body with
  | () -> (
    match f.ret with
    | Ast.Tint -> Vint 0  (* fall-through default, as compiled code *)
    | _ -> Vint 0)
  | exception Return_exc v -> (
    match (v, f.ret) with
    | Some v, Ast.Tint -> Vint (to_int v)
    | Some v, Ast.Tfloat -> Vfloat (to_float v)
    | _, _ -> Vint 0)

and exec st env (s : Ast.stmt) =
  tick st;
  match s with
  | Decl (ty, name, size, init) -> (
    match (size, ty) with
    | Some n, Ast.Tint -> declare env name (Int_arr (Array.make n 0))
    | Some n, Ast.Tfloat -> declare env name (Float_arr (Array.make n 0.))
    | Some _, _ -> err "bad array type"
    | None, _ ->
      let default =
        match ty with Ast.Tfloat -> Vfloat 0. | _ -> Vint 0
      in
      let r = ref default in
      declare env name (Scalar r);
      (match init with
      | Some e ->
        let v = eval st env e in
        r := (match ty with
             | Ast.Tfloat -> Vfloat (to_float v)
             | _ -> Vint (to_int v))
      | None -> ()))
  | Expr e -> ignore (eval st env e)
  | If (c, then_s, else_s) ->
    if truthy (eval st env c) then in_scope env (fun () -> exec st env then_s)
    else Option.iter (fun s -> in_scope env (fun () -> exec st env s)) else_s
  | While (c, body) -> (
    try
      while truthy (eval st env c) do
        try in_scope env (fun () -> exec st env body)
        with Continue_exc -> ()
      done
    with Break_exc -> ())
  | For (init, c, step, body) -> (
    Option.iter (fun e -> ignore (eval st env e)) init;
    let cond () =
      match c with Some c -> truthy (eval st env c) | None -> true
    in
    try
      while cond () do
        (try in_scope env (fun () -> exec st env body)
         with Continue_exc -> ());
        Option.iter (fun e -> ignore (eval st env e)) step
      done
    with Break_exc -> ())
  | Switch (scrut, cases, default) -> (
    let v = to_int (eval st env scrut) in
    (* Find the matching case (or default) and fall through. *)
    let bodies = List.map snd cases in
    let rec find idx = function
      | [] -> None
      | (labels, _) :: rest ->
        if List.mem v labels then Some idx else find (idx + 1) rest
    in
    let run_from idx =
      let rec go i = function
        | [] -> Option.iter (List.iter (exec st env)) default
        | body :: rest ->
          if i >= idx then List.iter (exec st env) body;
          go (i + 1) rest
      in
      go 0 bodies
    in
    try
      in_scope env (fun () ->
          match find 0 cases with
          | Some idx -> run_from idx
          | None -> Option.iter (List.iter (exec st env)) default)
    with Break_exc -> ())
  | Break _ -> raise Break_exc
  | Continue _ -> raise Continue_exc
  | Return (e, _) ->
    let v = Option.map (eval st env) e in
    raise (Return_exc v)
  | Block body -> in_scope env (fun () -> List.iter (exec st env) body)

and in_scope env f =
  push_scope env;
  (try f ()
   with e ->
     pop_scope env;
     raise e);
  pop_scope env

let init_global st (g : Ast.global) =
  let const_int (e : Ast.expr) =
    let rec v (e : Ast.expr) =
      match e.desc with
      | Int_lit n -> n
      | Float_lit x -> int_of_float x
      | Unop (Ast.Neg, s) -> -v s
      | _ -> err "non-constant global initializer"
    in
    v e
  in
  let const_float (e : Ast.expr) =
    let rec v (e : Ast.expr) =
      match e.desc with
      | Int_lit n -> float_of_int n
      | Float_lit x -> x
      | Unop (Ast.Neg, s) -> -.v s
      | _ -> err "non-constant global initializer"
    in
    v e
  in
  let slot =
    match (g.gsize, g.gtyp) with
    | None, Ast.Tfloat ->
      let x =
        match g.ginit with
        | Some (Gscalar e) -> const_float e
        | _ -> 0.
      in
      Scalar (ref (Vfloat x))
    | None, _ ->
      let n =
        match g.ginit with Some (Gscalar e) -> const_int e | _ -> 0
      in
      Scalar (ref (Vint n))
    | Some n, Ast.Tfloat ->
      let a = Array.make n 0. in
      (match g.ginit with
      | Some (Glist es) -> List.iteri (fun i e -> a.(i) <- const_float e) es
      | _ -> ());
      Float_arr a
    | Some n, _ ->
      let a = Array.make n 0 in
      (match g.ginit with
      | Some (Glist es) -> List.iteri (fun i e -> a.(i) <- const_int e) es
      | Some (Gstring s) ->
        String.iteri (fun i c -> a.(i) <- Char.code c) s
      | _ -> ());
      Int_arr a
  in
  Hashtbl.add st.globals g.gname slot

let run ?(fuel = 10_000_000) (prog : Ast.program) =
  let st =
    { globals = Hashtbl.create 64; funcs = Hashtbl.create 64; fuel }
  in
  List.iter (init_global st) prog.globals;
  List.iter (fun (f : Ast.func) -> Hashtbl.add st.funcs f.fname f) prog.funcs;
  let env = { scopes = [ [] ] } in
  to_int (call st env "main" [])

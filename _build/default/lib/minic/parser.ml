exception Error of string * int

type state = {
  mutable toks : Lexer.t list;
}

let err st fmt =
  let line = match st.toks with [] -> 0 | t :: _ -> t.Lexer.line in
  Format.kasprintf (fun s -> raise (Error (s, line))) fmt

let peek st =
  match st.toks with [] -> Lexer.Eof | t :: _ -> t.Lexer.tok

let peek2 st =
  match st.toks with _ :: t :: _ -> t.Lexer.tok | _ -> Lexer.Eof

let line st = match st.toks with [] -> 0 | t :: _ -> t.Lexer.line

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect_punct st p =
  match peek st with
  | Lexer.Punct q when q = p -> advance st
  | tok -> err st "expected %S, found %a" p Lexer.pp_token tok

let expect_kw st k =
  match peek st with
  | Lexer.Kw q when q = k -> advance st
  | tok -> err st "expected %S, found %a" k Lexer.pp_token tok

let expect_ident st =
  match peek st with
  | Lexer.Ident name ->
    advance st;
    name
  | tok -> err st "expected identifier, found %a" Lexer.pp_token tok

let expect_int st =
  match peek st with
  | Lexer.Int i ->
    advance st;
    i
  | Lexer.Punct "-" -> (
    advance st;
    match peek st with
    | Lexer.Int i ->
      advance st;
      -i
    | tok -> err st "expected integer, found %a" Lexer.pp_token tok)
  | tok -> err st "expected integer, found %a" Lexer.pp_token tok

let is_type_kw = function
  | Lexer.Kw ("int" | "float" | "void") -> true
  | _ -> false

let base_type st =
  match peek st with
  | Lexer.Kw "int" ->
    advance st;
    Ast.Tint
  | Lexer.Kw "float" ->
    advance st;
    Ast.Tfloat
  | Lexer.Kw "void" ->
    advance st;
    Ast.Tvoid
  | tok -> err st "expected a type, found %a" Lexer.pp_token tok

(* Binary operator precedence, loosest first (C levels). *)
let bin_levels : (string * Ast.binop) list list =
  [ [ ("||", Ast.Lor) ];
    [ ("&&", Ast.Land) ];
    [ ("|", Ast.Bor) ];
    [ ("^", Ast.Bxor) ];
    [ ("&", Ast.Band) ];
    [ ("==", Ast.Eq); ("!=", Ast.Ne) ];
    [ ("<=", Ast.Le); (">=", Ast.Ge); ("<", Ast.Lt); (">", Ast.Gt) ];
    [ ("<<", Ast.Shl); (">>", Ast.Shr) ];
    [ ("+", Ast.Add); ("-", Ast.Sub) ];
    [ ("*", Ast.Mul); ("/", Ast.Div); ("%", Ast.Rem) ] ]

let rec expr st = assignment st

and assignment st =
  (* lvalue '=' expr, detected by lookahead; otherwise a binary expr. *)
  match (peek st, peek2 st) with
  | Lexer.Ident name, Lexer.Punct "=" ->
    let ln = line st in
    advance st;
    advance st;
    let rhs = assignment st in
    Ast.mk ~line:ln (Ast.Assign (Ast.Lvar name, rhs))
  | Lexer.Ident name, Lexer.Punct "[" ->
    (* Could be an indexed assignment or an indexing expression; parse
       the index, then decide. *)
    let ln = line st in
    advance st;
    advance st;
    let idx = expr st in
    expect_punct st "]";
    if peek st = Lexer.Punct "=" then begin
      advance st;
      let rhs = assignment st in
      Ast.mk ~line:ln (Ast.Assign (Ast.Lindex (name, idx), rhs))
    end
    else begin
      let base = Ast.mk ~line:ln (Ast.Index (name, idx)) in
      binary_from st 0 (postfix_continue st base)
    end
  | _ -> binary st 0

and binary st level = binary_from st level (unary st)

and binary_from st level lhs =
  if level >= List.length bin_levels then lhs
  else begin
    let lhs = binary_from st (level + 1) lhs in
    let ops = List.nth bin_levels level in
    let rec loop lhs =
      match peek st with
      | Lexer.Punct p when List.mem_assoc p ops ->
        let ln = line st in
        advance st;
        let rhs = binary st (level + 1) in
        loop (Ast.mk ~line:ln (Ast.Binop (List.assoc p ops, lhs, rhs)))
      | _ -> lhs
    in
    loop lhs
  end

and unary st =
  let ln = line st in
  match peek st with
  | Lexer.Punct "-" ->
    advance st;
    Ast.mk ~line:ln (Ast.Unop (Ast.Neg, unary st))
  | Lexer.Punct "!" ->
    advance st;
    Ast.mk ~line:ln (Ast.Unop (Ast.Lnot, unary st))
  | Lexer.Punct "~" ->
    advance st;
    Ast.mk ~line:ln (Ast.Unop (Ast.Bnot, unary st))
  | _ -> primary st

and primary st =
  let ln = line st in
  match peek st with
  | Lexer.Int i ->
    advance st;
    Ast.mk ~line:ln (Ast.Int_lit i)
  | Lexer.Float x ->
    advance st;
    Ast.mk ~line:ln (Ast.Float_lit x)
  | Lexer.Punct "(" ->
    advance st;
    let e = expr st in
    expect_punct st ")";
    postfix_continue st e
  | Lexer.Ident name -> (
    advance st;
    match peek st with
    | Lexer.Punct "(" ->
      advance st;
      let args = call_args st in
      postfix_continue st (Ast.mk ~line:ln (Ast.Call (name, args)))
    | Lexer.Punct "[" ->
      advance st;
      let idx = expr st in
      expect_punct st "]";
      postfix_continue st (Ast.mk ~line:ln (Ast.Index (name, idx)))
    | _ -> Ast.mk ~line:ln (Ast.Var name))
  | tok -> err st "expected an expression, found %a" Lexer.pp_token tok

and postfix_continue _st e = e
(* Arrays don't nest and calls don't chain in Mini-C, so there is no
   postfix continuation today; kept as an extension point. *)

and call_args st =
  if peek st = Lexer.Punct ")" then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let e = expr st in
      match peek st with
      | Lexer.Punct "," ->
        advance st;
        loop (e :: acc)
      | Lexer.Punct ")" ->
        advance st;
        List.rev (e :: acc)
      | tok -> err st "expected ',' or ')', found %a" Lexer.pp_token tok
    in
    loop []
  end

let rec stmt st : Ast.stmt =
  match peek st with
  | Lexer.Kw ("int" | "float") -> local_decl st
  | Lexer.Punct "{" ->
    advance st;
    let body = stmt_list_until st "}" in
    Ast.Block body
  | Lexer.Punct ";" ->
    advance st;
    Ast.Block []
  | Lexer.Kw "if" ->
    advance st;
    expect_punct st "(";
    let c = expr st in
    expect_punct st ")";
    let then_s = stmt st in
    if peek st = Lexer.Kw "else" then begin
      advance st;
      Ast.If (c, then_s, Some (stmt st))
    end
    else Ast.If (c, then_s, None)
  | Lexer.Kw "while" ->
    advance st;
    expect_punct st "(";
    let c = expr st in
    expect_punct st ")";
    Ast.While (c, stmt st)
  | Lexer.Kw "for" ->
    advance st;
    expect_punct st "(";
    let init = if peek st = Lexer.Punct ";" then None else Some (expr st) in
    expect_punct st ";";
    let cond = if peek st = Lexer.Punct ";" then None else Some (expr st) in
    expect_punct st ";";
    let step = if peek st = Lexer.Punct ")" then None else Some (expr st) in
    expect_punct st ")";
    Ast.For (init, cond, step, stmt st)
  | Lexer.Kw "switch" -> switch st
  | Lexer.Kw "break" ->
    let ln = line st in
    advance st;
    expect_punct st ";";
    Ast.Break ln
  | Lexer.Kw "continue" ->
    let ln = line st in
    advance st;
    expect_punct st ";";
    Ast.Continue ln
  | Lexer.Kw "return" ->
    let ln = line st in
    advance st;
    if peek st = Lexer.Punct ";" then begin
      advance st;
      Ast.Return (None, ln)
    end
    else begin
      let e = expr st in
      expect_punct st ";";
      Ast.Return (Some e, ln)
    end
  | _ ->
    let e = expr st in
    expect_punct st ";";
    Ast.Expr e

and local_decl st =
  let ty = base_type st in
  let name = expect_ident st in
  if peek st = Lexer.Punct "[" then begin
    advance st;
    let size = expect_int st in
    expect_punct st "]";
    expect_punct st ";";
    Ast.Decl (ty, name, Some size, None)
  end
  else if peek st = Lexer.Punct "=" then begin
    advance st;
    let e = expr st in
    expect_punct st ";";
    Ast.Decl (ty, name, None, Some e)
  end
  else begin
    expect_punct st ";";
    Ast.Decl (ty, name, None, None)
  end

and switch st =
  expect_kw st "switch";
  expect_punct st "(";
  let scrutinee = expr st in
  expect_punct st ")";
  expect_punct st "{";
  let cases = ref [] in
  let default = ref None in
  let rec case_labels acc =
    match peek st with
    | Lexer.Kw "case" ->
      advance st;
      let v = expect_int st in
      expect_punct st ":";
      case_labels (v :: acc)
    | _ -> List.rev acc
  in
  let rec body acc =
    match peek st with
    | Lexer.Kw "case" | Lexer.Kw "default" | Lexer.Punct "}" -> List.rev acc
    | _ -> body (stmt st :: acc)
  in
  let rec loop () =
    match peek st with
    | Lexer.Punct "}" -> advance st
    | Lexer.Kw "case" ->
      let labels = case_labels [] in
      let stmts = body [] in
      cases := (labels, stmts) :: !cases;
      loop ()
    | Lexer.Kw "default" ->
      advance st;
      expect_punct st ":";
      let stmts = body [] in
      if !default <> None then err st "duplicate default case";
      default := Some stmts;
      loop ()
    | tok -> err st "expected 'case', 'default' or '}', found %a"
               Lexer.pp_token tok
  in
  loop ();
  Ast.Switch (scrutinee, List.rev !cases, !default)

and stmt_list_until st closer =
  let rec loop acc =
    match peek st with
    | Lexer.Punct p when p = closer ->
      advance st;
      List.rev acc
    | Lexer.Eof -> err st "unexpected end of input, expected %S" closer
    | _ -> loop (stmt st :: acc)
  in
  loop []

let params st =
  expect_punct st "(";
  match peek st with
  | Lexer.Punct ")" ->
    advance st;
    []
  | Lexer.Kw "void" when peek2 st = Lexer.Punct ")" ->
    advance st;
    advance st;
    []
  | _ ->
    let rec loop acc =
      let ty = base_type st in
      let name = expect_ident st in
      let ty =
        if peek st = Lexer.Punct "[" then begin
          advance st;
          expect_punct st "]";
          Ast.Tarr ty
        end
        else ty
      in
      let p = { Ast.ptyp = ty; pname = name } in
      match peek st with
      | Lexer.Punct "," ->
        advance st;
        loop (p :: acc)
      | Lexer.Punct ")" ->
        advance st;
        List.rev (p :: acc)
      | tok -> err st "expected ',' or ')', found %a" Lexer.pp_token tok
    in
    loop []

let global_init st =
  match peek st with
  | Lexer.String s ->
    advance st;
    (* C-style adjacent string literal concatenation. *)
    let buf = Buffer.create (String.length s) in
    Buffer.add_string buf s;
    let rec more () =
      match peek st with
      | Lexer.String s2 ->
        advance st;
        Buffer.add_string buf s2;
        more ()
      | _ -> ()
    in
    more ();
    Ast.Gstring (Buffer.contents buf)
  | Lexer.Punct "{" ->
    advance st;
    let rec loop acc =
      let e = expr st in
      match peek st with
      | Lexer.Punct "," ->
        advance st;
        loop (e :: acc)
      | Lexer.Punct "}" ->
        advance st;
        List.rev (e :: acc)
      | tok -> err st "expected ',' or '}', found %a" Lexer.pp_token tok
    in
    Ast.Glist (loop [])
  | _ -> Ast.Gscalar (expr st)

let topdecl st (globals, funcs) =
  let ln = line st in
  let ty = base_type st in
  let name = expect_ident st in
  match peek st with
  | Lexer.Punct "(" ->
    let ps = params st in
    expect_punct st "{";
    let body = stmt_list_until st "}" in
    ( globals,
      { Ast.ret = ty; fname = name; params = ps; body; fline = ln } :: funcs )
  | Lexer.Punct "[" ->
    advance st;
    let size =
      if peek st = Lexer.Punct "]" then None else Some (expect_int st)
    in
    expect_punct st "]";
    let init =
      if peek st = Lexer.Punct "=" then begin
        advance st;
        Some (global_init st)
      end
      else None
    in
    expect_punct st ";";
    let size =
      match (size, init) with
      | Some n, _ -> Some n
      | None, Some (Ast.Glist es) -> Some (List.length es)
      | None, Some (Ast.Gstring s) -> Some (String.length s + 1)
      | None, _ -> err st "array %S needs a size or an initializer" name
    in
    ( { Ast.gtyp = ty; gname = name; gsize = size; ginit = init; gline = ln }
      :: globals,
      funcs )
  | _ ->
    let init =
      if peek st = Lexer.Punct "=" then begin
        advance st;
        Some (Ast.Gscalar (expr st))
      end
      else None
    in
    expect_punct st ";";
    ( { Ast.gtyp = ty; gname = name; gsize = None; ginit = init; gline = ln }
      :: globals,
      funcs )

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let rec loop acc =
    match peek st with
    | Lexer.Eof -> acc
    | tok when is_type_kw tok -> loop (topdecl st acc)
    | tok -> err st "expected a declaration, found %a" Lexer.pp_token tok
  in
  let globals, funcs = loop ([], []) in
  { Ast.globals = List.rev globals; funcs = List.rev funcs }

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = expr st in
  match peek st with
  | Lexer.Eof -> e
  | tok -> err st "trailing input after expression: %a" Lexer.pp_token tok

(** Semantic analysis: name resolution, type checking, and type
    annotation.

    Mini-C follows C's implicit numeric conversions: mixed int/float
    arithmetic is performed in float, assignments and argument passing
    convert between [int] and [float] (truncating on float-to-int), and
    every condition is an [int].  Array parameters are by-reference and
    must receive an array of the same element type.

    On success every expression node's [ty] field is filled in, which the
    code generator relies on. *)

exception Error of string * int  (** message, line *)

type func_sig = {
  sret : Ast.typ;
  sparams : Ast.typ list;
}

type env = {
  globals_tbl : (string, Ast.typ) Hashtbl.t;
  (** scalar globals have their scalar type; array globals [Tarr elem] *)
  funcs_tbl : (string, func_sig) Hashtbl.t;
}

val check : Ast.program -> env
(** Type-checks a program in place (filling [ty] fields) and returns the
    global environment.
    @raise Error on any semantic violation, including a missing
    [int main(void)]. *)

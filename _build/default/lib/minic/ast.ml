(* Abstract syntax of Mini-C, the small C-like language the benchmark
   programs are written in.

   The language has [int] and [float] scalars, one-dimensional arrays,
   functions with scalar and array parameters, the usual statement forms
   (if/while/for/switch/break/continue/return), short-circuit booleans,
   and C operator precedence.  Arrays do not nest, there are no pointers
   (array parameters are passed by reference), and [string] literals are
   only allowed as global [int] array initializers (character codes plus
   a 0 terminator). *)

type typ =
  | Tint
  | Tfloat
  | Tvoid
  | Tarr of typ  (* element type; arrays are always one-dimensional *)

type unop = Neg | Lnot | Bnot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land
  | Lor

type expr = {
  desc : expr_desc;
  mutable ty : typ;  (* filled in by semantic analysis; Tvoid initially *)
  line : int;
}

and expr_desc =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr
  | Call of string * expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of lvalue * expr

and lvalue =
  | Lvar of string
  | Lindex of string * expr

type stmt =
  | Decl of typ * string * int option * expr option
    (* type, name, array size, scalar initializer *)
  | Expr of expr
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | For of expr option * expr option * expr option * stmt
  | Switch of expr * (int list * stmt list) list * stmt list option
    (* scrutinee, cases (labels, body), default body *)
  | Break of int  (* line *)
  | Continue of int  (* line *)
  | Return of expr option * int
  | Block of stmt list

type ginit =
  | Gscalar of expr
  | Glist of expr list
  | Gstring of string

type global = {
  gtyp : typ;
  gname : string;
  gsize : int option;  (* None for scalars; Some n for arrays *)
  ginit : ginit option;
  gline : int;
}

type param = {
  ptyp : typ;  (* Tarr elem for array parameters *)
  pname : string;
}

type func = {
  ret : typ;
  fname : string;
  params : param list;
  body : stmt list;
  fline : int;
}

type program = {
  globals : global list;
  funcs : func list;
}

let rec pp_typ ppf = function
  | Tint -> Format.fprintf ppf "int"
  | Tfloat -> Format.fprintf ppf "float"
  | Tvoid -> Format.fprintf ppf "void"
  | Tarr t -> Format.fprintf ppf "%a[]" pp_typ t

let mk ?(line = 0) desc = { desc; ty = Tvoid; line }

lib/minic/interp.ml: Array Ast Char Format Hashtbl List Option Risc String

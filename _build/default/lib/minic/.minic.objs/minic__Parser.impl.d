lib/minic/parser.ml: Ast Buffer Format Lexer List String

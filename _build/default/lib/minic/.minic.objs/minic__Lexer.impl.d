lib/minic/lexer.ml: Buffer Char Format List Printf String

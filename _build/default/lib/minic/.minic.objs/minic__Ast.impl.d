lib/minic/ast.ml: Format

lib/minic/sema.ml: Ast Format Hashtbl List Option String

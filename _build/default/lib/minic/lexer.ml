type token =
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Kw of string
  | Punct of string
  | Eof

type t = {
  tok : token;
  line : int;
}

exception Error of string * int

let keywords =
  [ "int"; "float"; "void"; "if"; "else"; "while"; "for"; "switch";
    "case"; "default"; "break"; "continue"; "return" ]

(* Multi-character operators first, so the longest match wins. *)
let puncts =
  [ "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "+"; "-"; "*"; "/";
    "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "="; "("; ")"; "{"; "}";
    "["; "]"; ";"; ","; ":" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_digit c || is_alpha c

let escape_char line = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> raise (Error (Printf.sprintf "bad escape '\\%c'" c, line))

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let pos = ref 0 in
  let out = ref [] in
  let emit tok = out := { tok; line = !line } :: !out in
  let peek off = if !pos + off < n then src.[!pos + off] else '\000' in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && peek 1 = '*' then begin
      pos := !pos + 2;
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '\n' then incr line;
        if src.[!pos] = '*' && peek 1 = '/' then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done;
      if not !closed then raise (Error ("unterminated comment", !line))
    end
    else if is_digit c || (c = '.' && is_digit (peek 1)) then begin
      let start = !pos in
      while is_digit (peek 0) do
        incr pos
      done;
      let is_float = ref false in
      if peek 0 = '.' then begin
        is_float := true;
        incr pos;
        while is_digit (peek 0) do
          incr pos
        done
      end;
      if peek 0 = 'e' || peek 0 = 'E' then begin
        is_float := true;
        incr pos;
        if peek 0 = '+' || peek 0 = '-' then incr pos;
        while is_digit (peek 0) do
          incr pos
        done
      end;
      let text = String.sub src start (!pos - start) in
      if !is_float then emit (Float (float_of_string text))
      else emit (Int (int_of_string text))
    end
    else if is_alpha c then begin
      let start = !pos in
      while is_alnum (peek 0) do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      if List.mem text keywords then emit (Kw text) else emit (Ident text)
    end
    else if c = '\'' then begin
      incr pos;
      let ch =
        if peek 0 = '\\' then begin
          incr pos;
          let e = escape_char !line (peek 0) in
          incr pos;
          e
        end
        else begin
          let ch = peek 0 in
          incr pos;
          ch
        end
      in
      if peek 0 <> '\'' then raise (Error ("unterminated char literal", !line));
      incr pos;
      emit (Int (Char.code ch))
    end
    else if c = '"' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !pos < n do
        let d = src.[!pos] in
        if d = '"' then begin
          closed := true;
          incr pos
        end
        else if d = '\\' then begin
          incr pos;
          Buffer.add_char buf (escape_char !line (peek 0));
          incr pos
        end
        else begin
          if d = '\n' then incr line;
          Buffer.add_char buf d;
          incr pos
        end
      done;
      if not !closed then raise (Error ("unterminated string", !line));
      emit (String (Buffer.contents buf))
    end
    else begin
      let matched =
        List.find_opt
          (fun p ->
            let len = String.length p in
            !pos + len <= n && String.sub src !pos len = p)
          puncts
      in
      match matched with
      | Some p ->
        pos := !pos + String.length p;
        emit (Punct p)
      | None -> raise (Error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  emit Eof;
  List.rev !out

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Int i -> Format.fprintf ppf "integer %d" i
  | Float x -> Format.fprintf ppf "float %g" x
  | String s -> Format.fprintf ppf "string %S" s
  | Kw s -> Format.fprintf ppf "keyword %S" s
  | Punct s -> Format.fprintf ppf "%S" s
  | Eof -> Format.fprintf ppf "end of input"

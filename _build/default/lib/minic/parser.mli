(** Recursive-descent parser for Mini-C with C operator precedence. *)

exception Error of string * int  (** message, line *)

val parse : string -> Ast.program
(** @raise Error on a syntax error.
    @raise Lexer.Error on a lexical error. *)

val parse_expr : string -> Ast.expr
(** Parses a single expression; used by unit tests. *)

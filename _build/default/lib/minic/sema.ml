exception Error of string * int

let err line fmt = Format.kasprintf (fun s -> raise (Error (s, line))) fmt

type func_sig = {
  sret : Ast.typ;
  sparams : Ast.typ list;
}

type env = {
  globals_tbl : (string, Ast.typ) Hashtbl.t;
  funcs_tbl : (string, func_sig) Hashtbl.t;
}

type scope = {
  env : env;
  mutable locals : (string * Ast.typ) list;  (* innermost first *)
  fsig : func_sig;
  fname : string;
  mutable loop_depth : int;
  mutable switch_depth : int;
}

let lookup_var sc line name =
  match List.assoc_opt name sc.locals with
  | Some ty -> ty
  | None -> (
    match Hashtbl.find_opt sc.env.globals_tbl name with
    | Some ty -> ty
    | None -> err line "undefined variable %S" name)

let numeric line ty what =
  match (ty : Ast.typ) with
  | Tint | Tfloat -> ()
  | Tvoid | Tarr _ -> err line "%s must be numeric, got %a" what Ast.pp_typ ty

(* The type a binary operation computes in, given operand types. *)
let join line a b =
  match ((a : Ast.typ), (b : Ast.typ)) with
  | Tint, Tint -> Ast.Tint
  | (Tint | Tfloat), (Tint | Tfloat) -> Ast.Tfloat
  | _ -> err line "numeric operands required (%a, %a)" Ast.pp_typ a Ast.pp_typ b

let int_only_op = function
  | Ast.Rem | Band | Bor | Bxor | Shl | Shr -> true
  | Add | Sub | Mul | Div | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor -> false

let rec expr sc (e : Ast.expr) =
  let ty =
    match e.desc with
    | Int_lit _ -> Ast.Tint
    | Float_lit _ -> Ast.Tfloat
    | Var name ->
      (* Arrays type as [Tarr]; every scalar context rejects them via the
         [numeric] checks, so bare array names only survive as call
         arguments (pass-by-reference). *)
      lookup_var sc e.line name
    | Index (name, idx) -> (
      let ity = expr sc idx in
      if ity <> Ast.Tint then err idx.line "array index must be int";
      match lookup_var sc e.line name with
      | Tarr elem -> elem
      | ty -> err e.line "%S is not an array (type %a)" name Ast.pp_typ ty)
    | Call (fname, args) -> (
      match Hashtbl.find_opt sc.env.funcs_tbl fname with
      | None -> err e.line "undefined function %S" fname
      | Some fs ->
        if List.length args <> List.length fs.sparams then
          err e.line "function %S expects %d arguments, got %d" fname
            (List.length fs.sparams) (List.length args);
        let check_arg arg pty =
          let aty = expr sc arg in
          match ((pty : Ast.typ), (aty : Ast.typ)) with
          | Tarr pe, Tarr ae when pe = ae -> ()
          | Tarr _, _ ->
            err arg.line "argument of %S must be an array of type %a" fname
              Ast.pp_typ pty
          | (Tint | Tfloat), (Tint | Tfloat) -> ()
          | _ ->
            err arg.line "argument type mismatch in call to %S (%a vs %a)"
              fname Ast.pp_typ pty Ast.pp_typ aty
        in
        List.iter2 check_arg args fs.sparams;
        fs.sret)
    | Unop (op, sub) -> (
      let sty = expr sc sub in
      numeric e.line sty "operand";
      match op with
      | Neg -> sty
      | Lnot -> Ast.Tint
      | Bnot ->
        if sty <> Ast.Tint then err e.line "operand of ~ must be int";
        Ast.Tint)
    | Binop (op, lhs, rhs) -> (
      let lt = expr sc lhs and rt = expr sc rhs in
      numeric lhs.line lt "operand";
      numeric rhs.line rt "operand";
      let j = join e.line lt rt in
      if int_only_op op && j <> Ast.Tint then
        err e.line "operator requires int operands";
      match op with
      | Add | Sub | Mul | Div | Rem | Band | Bor | Bxor | Shl | Shr -> j
      | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor -> Ast.Tint)
    | Assign (lv, rhs) ->
      let lty = lvalue sc e.line lv in
      let rty = expr sc rhs in
      numeric e.line rty "assigned value";
      numeric e.line lty "assignment target";
      lty
  in
  e.ty <- ty;
  ty

and lvalue sc line = function
  | Ast.Lvar name -> (
    match lookup_var sc line name with
    | Tarr _ -> err line "cannot assign to array %S" name
    | ty -> ty)
  | Ast.Lindex (name, idx) -> (
    let ity = expr sc idx in
    if ity <> Ast.Tint then err idx.line "array index must be int";
    match lookup_var sc line name with
    | Tarr elem -> elem
    | ty -> err line "%S is not an array (type %a)" name Ast.pp_typ ty)

let rec stmt sc (s : Ast.stmt) =
  match s with
  | Decl (ty, name, size, init) ->
    if ty = Ast.Tvoid then err 0 "void variable %S" name;
    (match size with
    | Some n when n <= 0 -> err 0 "array %S must have positive size" name
    | _ -> ());
    (match init with
    | Some e ->
      let ety = expr sc e in
      numeric e.line ety "initializer"
    | None -> ());
    let vty = match size with Some _ -> Ast.Tarr ty | None -> ty in
    sc.locals <- (name, vty) :: sc.locals
  | Expr e -> ignore (expr sc e)
  | If (c, then_s, else_s) ->
    cond sc c;
    in_scope sc (fun () -> stmt sc then_s);
    Option.iter (fun s -> in_scope sc (fun () -> stmt sc s)) else_s
  | While (c, body) ->
    cond sc c;
    sc.loop_depth <- sc.loop_depth + 1;
    in_scope sc (fun () -> stmt sc body);
    sc.loop_depth <- sc.loop_depth - 1
  | For (init, c, step, body) ->
    Option.iter (fun e -> ignore (expr sc e)) init;
    Option.iter (cond sc) c;
    Option.iter (fun e -> ignore (expr sc e)) step;
    sc.loop_depth <- sc.loop_depth + 1;
    in_scope sc (fun () -> stmt sc body);
    sc.loop_depth <- sc.loop_depth - 1
  | Switch (scrut, cases, default) ->
    let sty = expr sc scrut in
    if sty <> Ast.Tint then err scrut.line "switch scrutinee must be int";
    let seen = Hashtbl.create 8 in
    let case (labels, body) =
      let label v =
        if Hashtbl.mem seen v then err scrut.line "duplicate case %d" v;
        Hashtbl.add seen v ()
      in
      List.iter label labels;
      sc.switch_depth <- sc.switch_depth + 1;
      in_scope sc (fun () -> List.iter (stmt sc) body);
      sc.switch_depth <- sc.switch_depth - 1
    in
    List.iter case cases;
    Option.iter
      (fun body ->
        sc.switch_depth <- sc.switch_depth + 1;
        in_scope sc (fun () -> List.iter (stmt sc) body);
        sc.switch_depth <- sc.switch_depth - 1)
      default
  | Break line ->
    if sc.loop_depth = 0 && sc.switch_depth = 0 then
      err line "break outside loop or switch"
  | Continue line ->
    if sc.loop_depth = 0 then err line "continue outside loop"
  | Return (value, line) -> (
    match (value, sc.fsig.sret) with
    | None, Tvoid -> ()
    | None, _ -> err line "function %S must return a value" sc.fname
    | Some _, Tvoid -> err line "void function %S returns a value" sc.fname
    | Some e, _ ->
      let ety = expr sc e in
      numeric e.line ety "return value")
  | Block body -> in_scope sc (fun () -> List.iter (stmt sc) body)

and cond sc c =
  let ty = expr sc c in
  if ty <> Ast.Tint then err c.line "condition must be int"

and in_scope sc f =
  let saved = sc.locals in
  f ();
  sc.locals <- saved

let const_expr (e : Ast.expr) =
  (* Global initializers must be literal constants (possibly negated). *)
  let rec ok (e : Ast.expr) =
    match e.desc with
    | Int_lit _ | Float_lit _ -> true
    | Unop (Ast.Neg, sub) -> ok sub
    | _ -> false
  in
  if not (ok e) then err e.line "global initializer must be a constant"

let check (prog : Ast.program) =
  let env =
    { globals_tbl = Hashtbl.create 64; funcs_tbl = Hashtbl.create 64 }
  in
  let global (g : Ast.global) =
    if Hashtbl.mem env.globals_tbl g.gname then
      err g.gline "duplicate global %S" g.gname;
    if g.gtyp = Ast.Tvoid then err g.gline "void global %S" g.gname;
    let ty =
      match g.gsize with Some _ -> Ast.Tarr g.gtyp | None -> g.gtyp
    in
    (match (g.ginit, g.gsize) with
    | Some (Gscalar e), None -> const_expr e
    | Some (Gscalar _), Some _ ->
      err g.gline "array %S needs a list or string initializer" g.gname
    | Some (Glist es), Some n ->
      if List.length es > n then
        err g.gline "too many initializers for %S" g.gname;
      List.iter const_expr es
    | Some (Glist _), None ->
      err g.gline "scalar %S cannot take a list initializer" g.gname
    | Some (Gstring s), Some n ->
      if g.gtyp <> Ast.Tint then
        err g.gline "string initializer requires an int array";
      if String.length s + 1 > n then
        err g.gline "string too long for array %S" g.gname
    | Some (Gstring _), None ->
      err g.gline "scalar %S cannot take a string initializer" g.gname
    | None, _ -> ());
    Hashtbl.add env.globals_tbl g.gname ty
  in
  List.iter global prog.globals;
  let signature (f : Ast.func) =
    if Hashtbl.mem env.funcs_tbl f.fname then
      err f.fline "duplicate function %S" f.fname;
    let ptype (p : Ast.param) =
      match p.ptyp with
      | Tvoid -> err f.fline "void parameter in %S" f.fname
      | Tarr Tvoid | Tarr (Tarr _) ->
        err f.fline "bad array parameter in %S" f.fname
      | ty -> ty
    in
    Hashtbl.add env.funcs_tbl f.fname
      { sret = f.ret; sparams = List.map ptype f.params }
  in
  List.iter signature prog.funcs;
  let func (f : Ast.func) =
    let fsig = Hashtbl.find env.funcs_tbl f.fname in
    let sc =
      { env;
        locals = List.map (fun (p : Ast.param) -> (p.pname, p.ptyp)) f.params;
        fsig; fname = f.fname; loop_depth = 0; switch_depth = 0 }
    in
    List.iter (stmt sc) f.body
  in
  List.iter func prog.funcs;
  (match Hashtbl.find_opt env.funcs_tbl "main" with
  | Some { sret = Tint; sparams = [] } -> ()
  | Some _ -> err 0 "main must be 'int main(void)'"
  | None -> err 0 "missing function main");
  env

lib/cfg/graph.ml: Array Asm Format Hashtbl List Risc String

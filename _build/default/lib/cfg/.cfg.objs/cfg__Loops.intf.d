lib/cfg/loops.mli: Graph

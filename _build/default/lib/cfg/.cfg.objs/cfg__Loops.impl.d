lib/cfg/loops.ml: Array Dom Graph Hashtbl Int List Risc Set

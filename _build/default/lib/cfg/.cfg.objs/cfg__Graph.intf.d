lib/cfg/graph.mli: Asm Format Risc

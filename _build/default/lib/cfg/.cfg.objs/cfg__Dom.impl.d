lib/cfg/dom.ml: Array List

lib/cfg/analysis.mli: Asm Graph Loops

lib/cfg/analysis.ml: Array Dom Graph Hashtbl List Loops

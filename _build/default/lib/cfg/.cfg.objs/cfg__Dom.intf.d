lib/cfg/dom.mli:

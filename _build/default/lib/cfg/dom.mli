(** Dominator computation on explicit graphs.

    Implements the iterative algorithm of Cooper, Harvey and Kennedy
    ("A Simple, Fast Dominance Algorithm").  The same routine computes
    postdominators when run on the reversed graph. *)

type t = {
  idom : int array;
  (** immediate dominator of each node; [idom.(entry) = entry]; [-1] for
      nodes unreachable from the entry *)
  rpo : int array;
  (** reverse-postorder number of each node, [-1] when unreachable *)
}

val compute :
  n:int -> entry:int -> succs:(int -> int list) -> preds:(int -> int list)
  -> t

val dominates : t -> int -> int -> bool
(** [dominates d a b] — does [a] dominate [b]?  Reflexive.  [false] when
    either node is unreachable. *)

val frontier :
  t -> n:int -> preds:(int -> int list) -> int list array
(** Dominance frontier of every node (Cooper-Harvey-Kennedy).  When run
    with postdominators and the reversed graph this yields the reverse
    dominance frontier, i.e. the control-dependence sources. *)

type block = {
  id : int;
  start : int;
  stop : int;
  proc : int;
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  flat : Asm.Program.flat;
  blocks : block array;
  block_of : int array;
  proc_blocks : int array array;
}

let ends_block (insn : int Risc.Insn.t) =
  match Risc.Insn.kind insn with
  | Cond_branch | Jump | Computed_jump | Call | Ret | Stop -> true
  | Plain -> false

(* Branch targets within a procedure make their target a leader. *)
let targets (insn : int Risc.Insn.t) =
  match insn with
  | B (_, _, _, t) | Bi (_, _, _, t) -> [ t ]
  | J t -> [ t ]
  | Jtab (_, table) -> Array.to_list table
  | Jal _ (* interprocedural; not a leader inside this procedure *)
  | Alu _ | Alui _ | Li _ | Fli _ | Lw _ | Sw _ | Flw _ | Fsw _ | Falu _
  | Fcmp _ | Movn _ | Fmov _ | I2f _ | F2i _ | Jr _ | Halt ->
    []

let build (flat : Asm.Program.flat) =
  let n = Array.length flat.code in
  let leader = Array.make (n + 1) false in
  let mark_leaders (start, stop) =
    leader.(start) <- true;
    for pc = start to stop - 1 do
      let insn = flat.code.(pc) in
      List.iter (fun t -> leader.(t) <- true) (targets insn);
      if ends_block insn && pc + 1 < stop then leader.(pc + 1) <- true
    done
  in
  Array.iter mark_leaders flat.proc_bounds;
  (* Cut blocks. *)
  let blocks_rev = ref [] in
  let n_blocks = ref 0 in
  let block_of = Array.make n (-1) in
  let cut_proc proc (start, stop) =
    let block_start = ref start in
    for pc = start to stop - 1 do
      let last = pc = stop - 1 || leader.(pc + 1) in
      block_of.(pc) <- !n_blocks;
      if last then begin
        blocks_rev :=
          { id = !n_blocks; start = !block_start; stop = pc + 1; proc;
            succs = []; preds = [] }
          :: !blocks_rev;
        incr n_blocks;
        block_start := pc + 1
      end
    done
  in
  Array.iteri cut_proc flat.proc_bounds;
  let blocks = Array.of_list (List.rev !blocks_rev) in
  (* Edges. *)
  let add_edge a b =
    if not (List.mem b blocks.(a).succs) then begin
      blocks.(a).succs <- b :: blocks.(a).succs;
      blocks.(b).preds <- a :: blocks.(b).preds
    end
  in
  let connect b =
    let last = b.stop - 1 in
    let fallthrough () =
      if b.stop < n && blocks.(block_of.(b.stop)).proc = b.proc then
        add_edge b.id block_of.(b.stop)
    in
    match (flat.code.(last) : int Risc.Insn.t) with
    | B (_, _, _, t) | Bi (_, _, _, t) ->
      add_edge b.id block_of.(t);
      fallthrough ()
    | J t -> add_edge b.id block_of.(t)
    | Jtab (_, table) ->
      let seen = Hashtbl.create 8 in
      let tgt t =
        let blk = block_of.(t) in
        if not (Hashtbl.mem seen blk) then begin
          Hashtbl.add seen blk ();
          add_edge b.id blk
        end
      in
      Array.iter tgt table
    | Jal _ -> fallthrough ()
    | Jr _ | Halt -> ()
    | Alu _ | Alui _ | Li _ | Fli _ | Lw _ | Sw _ | Flw _ | Fsw _ | Falu _
    | Fcmp _ | Movn _ | Fmov _ | I2f _ | F2i _ ->
      fallthrough ()
  in
  Array.iter connect blocks;
  let proc_blocks =
    Array.map
      (fun (start, stop) ->
        let ids = ref [] in
        Array.iter
          (fun b -> if b.start >= start && b.stop <= stop then ids := b.id :: !ids)
          blocks;
        Array.of_list (List.rev !ids))
      flat.proc_bounds
  in
  { flat; blocks; block_of; proc_blocks }

let term_pc g b = g.blocks.(b).stop - 1

let terminator g b =
  let blk = g.blocks.(b) in
  if blk.stop > blk.start then Some g.flat.code.(blk.stop - 1) else None

let is_branch_block g b =
  match terminator g b with
  | Some insn -> (
    match Risc.Insn.kind insn with
    | Cond_branch | Computed_jump -> true
    | Plain | Jump | Call | Ret | Stop -> false)
  | None -> false

let pp ppf g =
  let block b =
    Format.fprintf ppf "block %d (proc %s) [%d,%d) succs=[%s]@." b.id
      g.flat.proc_names.(b.proc) b.start b.stop
      (String.concat "," (List.map string_of_int b.succs))
  in
  Array.iter block g.blocks

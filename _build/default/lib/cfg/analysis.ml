type t = {
  graph : Graph.t;
  loops : Loops.t;
  rdf : int array array;
}

(* Reverse dominance frontier of one procedure.  The reverse CFG gets a
   virtual exit node (local index [n_local]) as entry; its successors in
   the reverse graph are the procedure's exit blocks. *)
let proc_rdf (g : Graph.t) rdf proc_blocks =
  let n_local = Array.length proc_blocks in
  if n_local > 0 then begin
    let local_of = Hashtbl.create 16 in
    Array.iteri (fun l gid -> Hashtbl.add local_of gid l) proc_blocks;
    let local gid = Hashtbl.find local_of gid in
    let in_proc gid = Hashtbl.mem local_of gid in
    let cfg_succs l =
      List.filter_map
        (fun s -> if in_proc s then Some (local s) else None)
        g.blocks.(proc_blocks.(l)).succs
    in
    let cfg_preds l =
      List.filter_map
        (fun p -> if in_proc p then Some (local p) else None)
        g.blocks.(proc_blocks.(l)).preds
    in
    let exit = n_local in
    let is_exit l = cfg_succs l = [] in
    let exits =
      List.filter is_exit (List.init n_local (fun l -> l))
    in
    (* Reverse graph: edges flipped, virtual exit as entry. *)
    let rev_succs node = if node = exit then exits else cfg_preds node in
    let rev_preds node =
      if node = exit then []
      else begin
        let ss = cfg_succs node in
        if is_exit node then exit :: ss else ss
      end
    in
    let pdom =
      Dom.compute ~n:(n_local + 1) ~entry:exit ~succs:rev_succs
        ~preds:rev_preds
    in
    let df = Dom.frontier pdom ~n:(n_local + 1) ~preds:rev_preds in
    let set l deps =
      let gids =
        List.filter_map
          (fun d -> if d = exit then None else Some proc_blocks.(d))
          deps
      in
      rdf.(proc_blocks.(l)) <- Array.of_list gids
    in
    List.iteri (fun l _ -> set l df.(l)) (Array.to_list proc_blocks)
  end

let analyze flat =
  let graph = Graph.build flat in
  let loops = Loops.analyze graph in
  let rdf = Array.make (Array.length graph.blocks) [||] in
  Array.iter (proc_rdf graph rdf) graph.proc_blocks;
  { graph; loops; rdf }

let rdf_of_pc t pc = t.rdf.(t.graph.block_of.(pc))

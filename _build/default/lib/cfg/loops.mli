(** Natural loops and loop-overhead discovery for simulated perfect
    unrolling.

    Following the paper (§4.2), for each natural loop we find registers
    that are incremented by a constant exactly once per iteration (loop
    index and induction variables), then mark

    - the increment instructions themselves,
    - comparisons of an induction register against loop-invariant values,
    - conditional branches consuming such comparisons (directly, or
      through a compare instruction that is the register's unique
      definition in the loop).

    The trace analyzer deletes marked instructions from the timed trace,
    which removes both the iteration-carried data dependence and the loop
    branch's control dependence — the effect of perfect unrolling. *)

type loop = {
  header : int;  (** global block id *)
  body : int list;  (** global block ids, including the header *)
  latches : int list;  (** back-edge sources *)
  induction : int list;  (** unified register ids of induction variables *)
}

type t = {
  loops : loop list;
  overhead : bool array;  (** per instruction: part of loop overhead *)
}

val analyze : Graph.t -> t

type loop = {
  header : int;
  body : int list;
  latches : int list;
  induction : int list;
}

type t = {
  loops : loop list;
  overhead : bool array;
}

module Int_set = Set.Make (Int)

(* Natural loop of back edge [latch -> header]: header, latch, and every
   node that reaches the latch without passing through the header. *)
let natural_loop (g : Graph.t) ~header ~latch =
  let body = ref (Int_set.singleton header) in
  let stack = ref [ latch ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | node :: rest ->
      stack := rest;
      if not (Int_set.mem node !body) then begin
        body := Int_set.add node !body;
        List.iter (fun p -> stack := p :: !stack) g.blocks.(node).preds
      end
  done;
  !body

let analyze (g : Graph.t) =
  let n_insns = Array.length g.flat.code in
  let overhead = Array.make n_insns false in
  let all_loops = ref [] in
  let analyze_proc proc_blocks =
    let n_local = Array.length proc_blocks in
    if n_local > 0 then begin
      let local_of = Hashtbl.create 16 in
      Array.iteri (fun l gid -> Hashtbl.add local_of gid l) proc_blocks;
      let local gid = Hashtbl.find local_of gid in
      let in_proc gid = Hashtbl.mem local_of gid in
      let succs l =
        List.filter_map
          (fun s -> if in_proc s then Some (local s) else None)
          g.blocks.(proc_blocks.(l)).succs
      in
      let preds l =
        List.filter_map
          (fun p -> if in_proc p then Some (local p) else None)
          g.blocks.(proc_blocks.(l)).preds
      in
      let dom = Dom.compute ~n:n_local ~entry:0 ~succs ~preds in
      (* Back edges: latch -> header with header dominating latch. *)
      let headers = Hashtbl.create 8 in
      for l = 0 to n_local - 1 do
        let edge s =
          if Dom.dominates dom s l then begin
            let latches =
              match Hashtbl.find_opt headers s with
              | Some ls -> ls
              | None -> []
            in
            Hashtbl.replace headers s (l :: latches)
          end
        in
        List.iter edge (succs l)
      done;
      let handle_loop header latches =
        let body =
          List.fold_left
            (fun acc latch ->
              Int_set.union acc
                (natural_loop g ~header:proc_blocks.(header)
                   ~latch:proc_blocks.(latch)))
            Int_set.empty latches
        in
        (* Static writes per unified register within the loop body. *)
        let writes = Array.make Risc.Reg.n_unified 0 in
        let iter_insns f =
          Int_set.iter
            (fun gid ->
              let b = g.blocks.(gid) in
              for pc = b.start to b.stop - 1 do
                f pc g.flat.code.(pc)
              done)
            body
        in
        iter_insns (fun _ insn ->
            List.iter (fun r -> writes.(r) <- writes.(r) + 1)
              (Risc.Insn.defs insn));
        let invariant r = r = Risc.Reg.zero || writes.(r) = 0 in
        (* Induction candidates: [r <- r +/- const], unique write of r in
           the loop, in a block executing every iteration (dominating all
           latches). *)
        let dominates_latches gid =
          List.for_all
            (fun latch -> Dom.dominates dom (local gid) latch)
            latches
        in
        let induction = ref [] in
        let update_pcs = ref [] in
        iter_insns (fun pc insn ->
            match (insn : int Risc.Insn.t) with
            | Alui ((Add | Sub), rd, rs, _)
              when rd = rs && rd <> Risc.Reg.zero && writes.(rd) = 1
                   && dominates_latches g.block_of.(pc) ->
              induction := rd :: !induction;
              update_pcs := pc :: !update_pcs
            | _ -> ());
        let induction = !induction in
        let is_ind r = List.mem r induction in
        let ind_vs_inv rs rt =
          (is_ind rs && invariant rt) || (is_ind rt && invariant rs)
        in
        (* Comparisons of induction registers with invariants, and the
           unique in-loop definition sites feeding zero-compare branches. *)
        let cmp_def = Hashtbl.create 8 in
        iter_insns (fun pc insn ->
            match (insn : int Risc.Insn.t) with
            | Alu ((Slt | Sle | Seq | Sne), rd, rs, rt)
              when ind_vs_inv rs rt && writes.(rd) = 1 ->
              overhead.(pc) <- true;
              Hashtbl.replace cmp_def rd pc
            | Alui ((Slt | Sle | Seq | Sne), rd, rs, _)
              when is_ind rs && writes.(rd) = 1 ->
              overhead.(pc) <- true;
              Hashtbl.replace cmp_def rd pc
            | _ -> ());
        iter_insns (fun pc insn ->
            match (insn : int Risc.Insn.t) with
            | B (_, rs, rt, _) when ind_vs_inv rs rt -> overhead.(pc) <- true
            | B (_, rs, rt, _)
              when rt = Risc.Reg.zero && Hashtbl.mem cmp_def rs ->
              overhead.(pc) <- true
            | B (_, rs, rt, _)
              when rs = Risc.Reg.zero && Hashtbl.mem cmp_def rt ->
              overhead.(pc) <- true
            | Bi (_, rs, _, _) when is_ind rs -> overhead.(pc) <- true
            | Bi (_, rs, _, _) when Hashtbl.mem cmp_def rs ->
              overhead.(pc) <- true
            | _ -> ());
        List.iter (fun pc -> overhead.(pc) <- true) !update_pcs;
        all_loops :=
          { header = proc_blocks.(header);
            body = Int_set.elements body;
            latches = List.map (fun l -> proc_blocks.(l)) latches;
            induction }
          :: !all_loops
      in
      Hashtbl.iter handle_loop headers
    end
  in
  Array.iter analyze_proc g.proc_blocks;
  { loops = !all_loops; overhead }

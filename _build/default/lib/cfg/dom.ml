type t = {
  idom : int array;
  rpo : int array;
}

(* Iterative DFS postorder from [entry]; reversed it gives the RPO
   sequence the dataflow iteration visits. *)
let postorder ~n ~entry ~succs =
  let visited = Array.make n false in
  let order = ref [] in
  let rec go node =
    if not visited.(node) then begin
      visited.(node) <- true;
      List.iter go (succs node);
      order := node :: !order
    end
  in
  go entry;
  (* !order is already reverse postorder. *)
  Array.of_list !order

let compute ~n ~entry ~succs ~preds =
  let rpo_seq = postorder ~n ~entry ~succs in
  let rpo = Array.make n (-1) in
  Array.iteri (fun i node -> rpo.(node) <- i) rpo_seq;
  let idom = Array.make n (-1) in
  idom.(entry) <- entry;
  let rec intersect a b =
    if a = b then a
    else if rpo.(a) > rpo.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let visit node =
      if node <> entry then begin
        let fold acc p =
          if rpo.(p) < 0 || idom.(p) < 0 then acc
          else match acc with
            | None -> Some p
            | Some a -> Some (intersect a p)
        in
        match List.fold_left fold None (preds node) with
        | None -> ()
        | Some d ->
          if idom.(node) <> d then begin
            idom.(node) <- d;
            changed := true
          end
      end
    in
    Array.iter visit rpo_seq
  done;
  { idom; rpo }

let dominates d a b =
  if d.rpo.(a) < 0 || d.rpo.(b) < 0 then false
  else begin
    let rec up node =
      if node = a then true
      else if node = d.idom.(node) then false
      else up d.idom.(node)
    in
    up b
  end

let frontier d ~n ~preds =
  let df = Array.make n [] in
  let add node x =
    if not (List.mem x df.(node)) then df.(node) <- x :: df.(node)
  in
  (* For a join node b, walk each predecessor's dominator chain up to
     idom(b).  The walk terminates: idom(b) dominates every predecessor
     of b, so it lies on each chain. *)
  for b = 0 to n - 1 do
    if d.rpo.(b) >= 0 && d.idom.(b) >= 0 then begin
      let ps = List.filter (fun p -> d.rpo.(p) >= 0) (preds b) in
      if List.length ps >= 2 then begin
        let walk p =
          let runner = ref p in
          while !runner <> d.idom.(b) do
            add !runner b;
            runner := d.idom.(!runner)
          done
        in
        List.iter walk ps
      end
    end
  done;
  df

(** Basic blocks and per-procedure control-flow graphs over resolved
    assembly.

    Blocks are numbered globally across all procedures; a block never
    spans a procedure boundary.  Following pixie's convention, a block
    ends at any control transfer ({i including} calls: a call block's
    fall-through successor is the return point).  A [Jal] edge goes to
    the fall-through block, not into the callee — the CFG is
    intraprocedural; interprocedural control dependence is handled
    dynamically by the trace analyzer.

    Each procedure additionally gets a {e virtual exit} node collecting
    its return ([Jr]) and [Halt] blocks, used as the entry of the
    postdominator computation. *)

type block = {
  id : int;  (** global block id *)
  start : int;  (** first instruction index *)
  stop : int;  (** one past the last instruction *)
  proc : int;  (** procedure index *)
  mutable succs : int list;  (** global ids of CFG successors *)
  mutable preds : int list;
}

type t = {
  flat : Asm.Program.flat;
  blocks : block array;
  block_of : int array;  (** instruction index -> global block id *)
  proc_blocks : int array array;  (** per procedure: its block ids, entry first *)
}

val build : Asm.Program.flat -> t

val terminator : t -> int -> int Risc.Insn.t option
(** [terminator g b] is the last instruction of block [b], when the block
    is non-empty. *)

val term_pc : t -> int -> int
(** Instruction index of the last instruction of block [b]. *)

val is_branch_block : t -> int -> bool
(** Does block [b] end in a conditional branch or computed jump? *)

val pp : Format.formatter -> t -> unit

(* Front-end tests: lexer, parser, semantic analysis. *)

module L = Minic.Lexer
module A = Minic.Ast

let toks src = List.map (fun (t : L.t) -> t.tok) (L.tokenize src)

let test_lexer_basics () =
  Alcotest.(check int) "token count" 6
    (List.length (toks "int x = 42 ;"));
  (match toks "foo12_bar" with
  | [ L.Ident "foo12_bar"; L.Eof ] -> ()
  | _ -> Alcotest.fail "identifier");
  (match toks "3.5 1e3 42" with
  | [ L.Float 3.5; L.Float 1000.; L.Int 42; L.Eof ] -> ()
  | _ -> Alcotest.fail "numbers");
  match toks "'a' '\\n'" with
  | [ L.Int 97; L.Int 10; L.Eof ] -> ()
  | _ -> Alcotest.fail "char literals"

let test_lexer_operators () =
  match toks "<< <= < == = && &" with
  | [ L.Punct "<<"; L.Punct "<="; L.Punct "<"; L.Punct "=="; L.Punct "=";
      L.Punct "&&"; L.Punct "&"; L.Eof ] ->
    ()
  | _ -> Alcotest.fail "longest-match operators"

let test_lexer_comments () =
  (match toks "1 // comment\n 2" with
  | [ L.Int 1; L.Int 2; L.Eof ] -> ()
  | _ -> Alcotest.fail "line comment");
  (match toks "1 /* multi\nline */ 2" with
  | [ L.Int 1; L.Int 2; L.Eof ] -> ()
  | _ -> Alcotest.fail "block comment");
  match L.tokenize "/* unterminated" with
  | exception L.Error _ -> ()
  | _ -> Alcotest.fail "unterminated comment must fail"

let test_lexer_strings () =
  (match toks {|"ab\tc"|} with
  | [ L.String "ab\tc"; L.Eof ] -> ()
  | _ -> Alcotest.fail "string escape");
  match L.tokenize "\"open" with
  | exception L.Error _ -> ()
  | _ -> Alcotest.fail "unterminated string must fail"

let test_lexer_line_numbers () =
  let all = L.tokenize "1\n2\n\n3" in
  let lines = List.map (fun (t : L.t) -> t.line) all in
  Alcotest.(check (list int)) "line numbers" [ 1; 2; 4; 4 ] lines

let test_lexer_bad_char () =
  match L.tokenize "int $x;" with
  | exception L.Error (_, 1) -> ()
  | _ -> Alcotest.fail "bad character must fail"

(* --- parser --- *)

let rec expr_str (e : A.expr) =
  match e.desc with
  | A.Int_lit n -> string_of_int n
  | A.Float_lit x -> Printf.sprintf "%g" x
  | A.Var v -> v
  | A.Index (v, i) -> Printf.sprintf "%s[%s]" v (expr_str i)
  | A.Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat "," (List.map expr_str args))
  | A.Unop (op, s) ->
    let o = match op with A.Neg -> "-" | A.Lnot -> "!" | A.Bnot -> "~" in
    Printf.sprintf "(%s%s)" o (expr_str s)
  | A.Binop (op, a, b) ->
    let o =
      match op with
      | A.Add -> "+" | A.Sub -> "-" | A.Mul -> "*" | A.Div -> "/"
      | A.Rem -> "%" | A.Band -> "&" | A.Bor -> "|" | A.Bxor -> "^"
      | A.Shl -> "<<" | A.Shr -> ">>" | A.Eq -> "==" | A.Ne -> "!="
      | A.Lt -> "<" | A.Le -> "<=" | A.Gt -> ">" | A.Ge -> ">="
      | A.Land -> "&&" | A.Lor -> "||"
    in
    Printf.sprintf "(%s%s%s)" (expr_str a) o (expr_str b)
  | A.Assign (A.Lvar v, rhs) -> Printf.sprintf "(%s=%s)" v (expr_str rhs)
  | A.Assign (A.Lindex (v, i), rhs) ->
    Printf.sprintf "(%s[%s]=%s)" v (expr_str i) (expr_str rhs)

let check_parse expected src =
  Alcotest.(check string) src expected (expr_str (Minic.Parser.parse_expr src))

let test_precedence () =
  check_parse "(1+(2*3))" "1 + 2 * 3";
  check_parse "((1+2)*3)" "(1 + 2) * 3";
  check_parse "((1-2)-3)" "1 - 2 - 3";
  check_parse "(1|(2^(3&(4==(5<(6<<(7+(8*9))))))))"
    "1 | 2 ^ 3 & 4 == 5 < 6 << 7 + 8 * 9";
  check_parse "((a&&b)||c)" "a && b || c";
  check_parse "((-a)*b)" "-a * b";
  check_parse "(a=(b=c))" "a = b = c";
  check_parse "(a[(i+1)]=(x*2))" "a[i + 1] = x * 2";
  check_parse "(f(x,(y+1))+g())" "f(x, y + 1) + g()";
  check_parse "(a[i]+b[j])" "a[i] + b[j]";
  check_parse "(!(a==b))" "!(a == b)";
  check_parse "((~x)&15)" "~x & 15"

let test_parse_program () =
  let src =
    {|
int g = 3;
int arr[4] = {1, 2, 3, 4};
int msg[] = "hi";
float pi = 3.14;

int add(int a, int b) { return a + b; }
void nothing(void) { return; }

int main(void) {
  int i;
  for (i = 0; i < 4; i = i + 1) { g = g + arr[i]; }
  while (g > 10) { g = g - 1; break; }
  if (g) { g = add(g, 1); } else ;
  switch (g) {
    case 1: g = 10; break;
    case 2:
    case 3: g = 20; break;
    default: g = 30;
  }
  return g;
}
|}
  in
  let ast = Minic.Parser.parse src in
  Alcotest.(check int) "globals" 4 (List.length ast.globals);
  Alcotest.(check int) "functions" 3 (List.length ast.funcs);
  let msg = List.find (fun (g : A.global) -> g.gname = "msg") ast.globals in
  Alcotest.(check (option int)) "string array size" (Some 3) msg.gsize

let test_parse_errors () =
  let bad src =
    match Minic.Parser.parse src with
    | exception Minic.Parser.Error _ -> ()
    | exception Minic.Lexer.Error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ src)
  in
  bad "int main(void) { return 1 }";
  bad "int main(void) { if (1 { return 1; } }";
  bad "int main(void) { int a[]; return 0; }";
  bad "int 3x;";
  bad "int main(void) { switch (1) { boom } }"

let test_string_concat () =
  let ast = Minic.Parser.parse {|int s[] = "ab" "cd"; int main(void) { return s[3]; }|} in
  let s = List.hd ast.globals in
  Alcotest.(check (option int)) "concatenated size" (Some 5) s.A.gsize

(* --- sema --- *)

let check_ok src = ignore (Minic.Sema.check (Minic.Parser.parse src))

let check_bad name src =
  match Minic.Sema.check (Minic.Parser.parse src) with
  | exception Minic.Sema.Error _ -> ()
  | _ -> Alcotest.fail ("sema should reject: " ^ name)

let test_sema_accepts () =
  check_ok "int main(void) { return 0; }";
  check_ok
    {|float f(float x) { return x * 2.0; }
      int main(void) { int a = f(3); return a; }|};
  check_ok
    {|int sum(int a[], int n) { int i; int s = 0;
        for (i = 0; i < n; i = i + 1) s = s + a[i];
        return s; }
      int g[5];
      int main(void) { return sum(g, 5); }|};
  check_ok
    {|int main(void) { float x = 1; int y = 2.5; return y + x; }|}

let test_sema_rejects () =
  check_bad "missing main" "int f(void) { return 0; }";
  check_bad "bad main signature" "void main(void) { return; }";
  check_bad "undefined variable" "int main(void) { return x; }";
  check_bad "undefined function" "int main(void) { return f(); }";
  check_bad "arity" "int f(int a) { return a; } int main(void) { return f(); }";
  check_bad "array as scalar"
    "int a[3]; int main(void) { return a + 1; }";
  check_bad "scalar indexed" "int x; int main(void) { return x[0]; }";
  check_bad "assign to array" "int a[3]; int main(void) { a = 1; return 0; }";
  check_bad "break outside loop" "int main(void) { break; return 0; }";
  check_bad "continue outside loop"
    "int main(void) { continue; return 0; }";
  check_bad "continue in switch only"
    "int main(void) { switch (1) { case 1: continue; } return 0; }";
  check_bad "void value" "void f(void) { } int main(void) { return f(); }";
  check_bad "duplicate global" "int x; int x; int main(void) { return 0; }";
  check_bad "duplicate function"
    "int f(void) { return 1; } int f(void) { return 2; } int main(void) { return 0; }";
  check_bad "duplicate case"
    "int main(void) { switch (1) { case 1: case 1: return 0; } return 0; }";
  check_bad "float bit op" "int main(void) { return 1.5 & 2; }";
  check_bad "float condition" "int main(void) { if (1.5) return 1; return 0; }";
  check_bad "non-constant global init"
    "int x = 1; int y = x + 1; int main(void) { return y; }";
  check_bad "string into float array"
    {|float s[] = "oops"; int main(void) { return 0; }|};
  check_bad "too many list items"
    "int a[2] = {1, 2, 3}; int main(void) { return 0; }";
  check_bad "void return with value"
    "void f(void) { return 3; } int main(void) { return 0; }";
  check_bad "missing return value"
    "int f(void) { return; } int main(void) { return 0; }";
  check_bad "negative array size"
    "int main(void) { int a[-1]; return 0; }"

let test_sema_types_annotated () =
  let ast =
    Minic.Parser.parse
      "float g; int main(void) { int x = 1; g = x + 2.5; return x; }"
  in
  ignore (Minic.Sema.check ast);
  let main = List.find (fun (f : A.func) -> f.fname = "main") ast.funcs in
  match main.body with
  | [ _; A.Expr assign; _ ] ->
    Alcotest.(check bool) "assignment is float" true (assign.ty = A.Tfloat)
  | _ -> Alcotest.fail "unexpected body shape"

let suite =
  [ Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer operators" `Quick test_lexer_operators;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer strings" `Quick test_lexer_strings;
    Alcotest.test_case "lexer lines" `Quick test_lexer_line_numbers;
    Alcotest.test_case "lexer bad char" `Quick test_lexer_bad_char;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "parse program" `Quick test_parse_program;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "string concatenation" `Quick test_string_concat;
    Alcotest.test_case "sema accepts" `Quick test_sema_accepts;
    Alcotest.test_case "sema rejects" `Quick test_sema_rejects;
    Alcotest.test_case "sema annotates types" `Quick test_sema_types_annotated ]

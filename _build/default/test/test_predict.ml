(* Branch predictor tests. *)

let mk_trace entries =
  let t = Vm.Trace.create () in
  List.iter (fun (pc, aux) -> Vm.Trace.push t ~pc ~aux) entries;
  t

(* A trace with one static branch at pc 0: taken 3 times, not taken
   once, plus unrelated instructions. *)
let branch_trace () =
  mk_trace [ (0, 1); (1, -1); (0, 1); (0, 0); (0, 1) ]

let is_cond pc = pc = 0

let test_profile_majority () =
  let p =
    Predict.Predictor.profile ~n_static:2 ~is_cond (branch_trace ())
  in
  Alcotest.(check bool) "predicts taken" true (p.predict ~pc:0 ~taken:false);
  let stats = Predict.Predictor.measure p ~is_cond (branch_trace ()) in
  Alcotest.(check int) "branches" 4 stats.branches;
  Alcotest.(check int) "correct" 3 stats.correct;
  Alcotest.(check (float 1e-6)) "rate" 75. stats.rate

let test_profile_tie_breaks_not_taken () =
  let t = mk_trace [ (0, 1); (0, 0) ] in
  let p = Predict.Predictor.profile ~n_static:1 ~is_cond t in
  Alcotest.(check bool) "tie -> not taken" false
    (p.predict ~pc:0 ~taken:true)

let test_profile_unseen_branch () =
  let p =
    Predict.Predictor.profile ~n_static:4 ~is_cond:(fun _ -> true)
      (mk_trace [])
  in
  Alcotest.(check bool) "unseen -> not taken" false
    (p.predict ~pc:3 ~taken:true)

let test_perfect () =
  let p = Predict.Predictor.perfect in
  Alcotest.(check bool) "matches outcome" true (p.predict ~pc:9 ~taken:true);
  Alcotest.(check bool) "matches outcome 2" false
    (p.predict ~pc:9 ~taken:false)

let test_always_taken () =
  let stats =
    Predict.Predictor.measure Predict.Predictor.always_taken ~is_cond
      (branch_trace ())
  in
  Alcotest.(check int) "correct" 3 stats.correct

let test_btfn () =
  let p =
    Predict.Predictor.backward_taken ~is_backward:(fun pc -> pc = 0)
  in
  Alcotest.(check bool) "backward taken" true (p.predict ~pc:0 ~taken:false);
  Alcotest.(check bool) "forward not taken" false
    (p.predict ~pc:1 ~taken:true)

let test_two_bit_hysteresis () =
  let p = Predict.Predictor.two_bit ~n_static:1 in
  (* Starts weakly not-taken. *)
  Alcotest.(check bool) "initial" false (p.predict ~pc:0 ~taken:true);
  (* Now weakly taken after one taken outcome. *)
  Alcotest.(check bool) "trained" true (p.predict ~pc:0 ~taken:true);
  (* Saturated taken; a single not-taken must not flip it. *)
  Alcotest.(check bool) "strong" true (p.predict ~pc:0 ~taken:false);
  Alcotest.(check bool) "hysteresis" true (p.predict ~pc:0 ~taken:false);
  (* Two consecutive not-taken outcomes flip the prediction. *)
  Alcotest.(check bool) "flipped" false (p.predict ~pc:0 ~taken:false)

let test_profile_beats_static_on_workload () =
  let w = Workloads.Registry.find "espresso" in
  let p = Harness.prepare ~fuel:80_000 w in
  let is_cond = Ilp.Program_info.is_cond_branch p.info in
  let profile_rate =
    (Predict.Predictor.measure (Harness.profile_predictor p) ~is_cond
       p.trace)
      .rate
  in
  let taken_rate =
    (Predict.Predictor.measure Predict.Predictor.always_taken ~is_cond
       p.trace)
      .rate
  in
  Alcotest.(check bool) "profile >= always-taken" true
    (profile_rate >= taken_rate);
  Alcotest.(check bool) "profile is accurate" true (profile_rate > 70.)

let suite =
  [ Alcotest.test_case "profile majority" `Quick test_profile_majority;
    Alcotest.test_case "profile tie" `Quick test_profile_tie_breaks_not_taken;
    Alcotest.test_case "profile unseen" `Quick test_profile_unseen_branch;
    Alcotest.test_case "perfect" `Quick test_perfect;
    Alcotest.test_case "always taken" `Quick test_always_taken;
    Alcotest.test_case "btfn" `Quick test_btfn;
    Alcotest.test_case "two-bit hysteresis" `Quick test_two_bit_hysteresis;
    Alcotest.test_case "profile on workload" `Quick
      test_profile_beats_static_on_workload ]

test/test_analyze.ml: Alcotest Array Ilp List Predict Risc Vm

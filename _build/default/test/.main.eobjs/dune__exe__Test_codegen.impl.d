test/test_codegen.ml: Alcotest Array Codegen Gen_minic List Minic QCheck QCheck_alcotest Risc Vm

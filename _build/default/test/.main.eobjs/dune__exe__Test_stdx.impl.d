test/test_stdx.ml: Alcotest Array Gen List QCheck QCheck_alcotest Stdx

test/main.mli:

test/main.ml: Alcotest Test_analyze Test_asm Test_cfg Test_codegen Test_minic Test_predict Test_props Test_report Test_risc Test_stdx Test_vm Test_workloads

test/test_report.ml: Alcotest Harness Ilp Report String

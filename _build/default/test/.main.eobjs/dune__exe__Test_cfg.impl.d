test/test_cfg.ml: Alcotest Array Asm Cfg Codegen List Risc Workloads

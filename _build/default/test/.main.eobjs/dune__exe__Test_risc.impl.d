test/test_risc.ml: Alcotest Format Risc String

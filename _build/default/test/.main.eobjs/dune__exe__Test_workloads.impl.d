test/test_workloads.ml: Alcotest Array Cfg Fun Harness Ilp List Stdx Vm Workloads

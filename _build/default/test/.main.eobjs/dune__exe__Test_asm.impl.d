test/test_asm.ml: Alcotest Array Asm Format List Risc String

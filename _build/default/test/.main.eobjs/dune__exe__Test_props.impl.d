test/test_props.ml: Alcotest Array Gen_minic Harness Ilp Lazy List Predict QCheck QCheck_alcotest Risc Vm Workloads

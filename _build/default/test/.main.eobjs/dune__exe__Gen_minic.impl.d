test/gen_minic.ml: Printf QCheck String

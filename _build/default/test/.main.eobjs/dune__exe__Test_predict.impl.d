test/test_predict.ml: Alcotest Harness Ilp List Predict Vm Workloads

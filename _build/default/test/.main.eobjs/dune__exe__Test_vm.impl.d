test/test_vm.ml: Alcotest Asm List Risc Vm Workloads

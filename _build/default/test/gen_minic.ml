(* QCheck generator for random Mini-C programs.

   Produces int-only programs built from four scalar variables, one
   global array accessed through a masked index, bounded [for] loops,
   and nested conditionals — guaranteed to terminate, so they can be
   run through the interpreter, the VM, and all seven analyzers. *)

let gen_program =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c"; "d" ] in
  let rec expr depth =
    if depth = 0 then
      oneof [ map string_of_int (int_range (-20) 20); var ]
    else
      frequency
        [ (2, map string_of_int (int_range (-20) 20));
          (3, var);
          (3,
           map3
             (fun op l r -> Printf.sprintf "(%s %s %s)" l op r)
             (oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ])
             (expr (depth - 1)) (expr (depth - 1)));
          (1,
           map3
             (fun op l r -> Printf.sprintf "(%s %s %s)" l op r)
             (oneofl [ "<"; "<="; "=="; "!=" ])
             (expr (depth - 1)) (expr (depth - 1)));
          (1,
           map
             (fun e -> Printf.sprintf "(g[(%s) & 7])" e)
             (expr (depth - 1))) ]
  in
  let assign =
    map2 (fun v e -> Printf.sprintf "%s = %s;" v e) var (expr 2)
  in
  let arr_assign =
    map2
      (fun i e -> Printf.sprintf "g[(%s) & 7] = %s;" i e)
      (expr 1) (expr 2)
  in
  let rec stmt depth =
    if depth = 0 then oneof [ assign; arr_assign ]
    else
      frequency
        [ (4, assign);
          (2, arr_assign);
          (2,
           map2
             (fun c body -> Printf.sprintf "if (%s) { %s }" c body)
             (expr 2) (block (depth - 1)));
          (1,
           map2
             (fun c (body, e) ->
               Printf.sprintf "if (%s) { %s } else { %s }" c body e)
             (expr 2)
             (pair (block (depth - 1)) (block (depth - 1))));
          (1,
           map
             (fun body ->
               Printf.sprintf "for (t = 0; t < 5; t = t + 1) { %s }" body)
             (block (depth - 1))) ]
  and block depth =
    map (String.concat " ") (list_size (int_range 1 4) (stmt depth))
  in
  map
    (fun body ->
      Printf.sprintf
        {|int g[8];
          int main(void) {
            int a = 1; int b = 2; int c = 3; int d = 4; int t = 0;
            %s
            return (a & 65535) + (b & 65535) + (c & 65535)
                 + (d & 65535) + g[0] + (g[7] & 255);
          }|}
        body)
    (block 2)

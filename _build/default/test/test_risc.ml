(* Tests of the ISA: classification, dependence accessors, evaluation. *)

module I = Risc.Insn
module R = Risc.Reg

let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (slist int compare))

let test_kinds () =
  let k insn = I.kind insn in
  Alcotest.(check bool) "alu plain" true (k (I.Alu (I.Add, 1, 2, 3)) = I.Plain);
  Alcotest.(check bool) "b is cond" true (k (I.B (I.Eq, 1, 2, 0)) = I.Cond_branch);
  Alcotest.(check bool) "bi is cond" true
    (k (I.Bi (I.Lt, 1, 5, 0)) = I.Cond_branch);
  Alcotest.(check bool) "j is jump" true (k (I.J 0) = I.Jump);
  Alcotest.(check bool) "jal is call" true (k (I.Jal 0) = I.Call);
  Alcotest.(check bool) "jr is ret" true (k (I.Jr R.ra) = I.Ret);
  Alcotest.(check bool) "jtab is computed" true
    (k (I.Jtab (1, [| 0 |])) = I.Computed_jump);
  Alcotest.(check bool) "halt is stop" true (k I.Halt = I.Stop)

let test_uses_defs () =
  check_ints "alu uses" [ 2; 3 ] (I.uses (I.Alu (I.Add, 1, 2, 3)));
  check_ints "alu defs" [ 1 ] (I.defs (I.Alu (I.Add, 1, 2, 3)));
  check_ints "r0 use omitted" [ 2 ] (I.uses (I.Alu (I.Add, 1, 2, 0)));
  check_ints "r0 def omitted" [] (I.defs (I.Li (0, 5)));
  check_ints "store uses" [ 4; 5 ] (I.uses (I.Sw (4, 5, 0)));
  check_ints "store no defs" [] (I.defs (I.Sw (4, 5, 0)));
  check_ints "load uses" [ 5 ] (I.uses (I.Lw (4, 5, 0)));
  check_ints "float uses unified" [ 33; 34 ]
    (I.uses (I.Falu (I.Fadd, 0, 1, 2)));
  check_ints "float defs unified" [ 32 ]
    (I.defs (I.Falu (I.Fadd, 0, 1, 2)));
  check_ints "fcmp defs int reg" [ 7 ] (I.defs (I.Fcmp (I.Flt, 7, 1, 2)));
  check_ints "i2f crosses files" [ 3 ] (I.uses (I.I2f (1, 3)));
  check_ints "i2f defs float" [ 33 ] (I.defs (I.I2f (1, 3)));
  check_ints "jal defs ra" [ R.ra ] (I.defs (I.Jal 0));
  check_ints "fsw uses float and base" [ 33; 4 ] (I.uses (I.Fsw (1, 4, 2)));
  (* The guarded move merges with the old destination value. *)
  check_ints "movn reads rd, rs, guard" [ 5; 6; 7 ]
    (I.uses (I.Movn (5, 6, 7)));
  check_ints "movn defs rd" [ 5 ] (I.defs (I.Movn (5, 6, 7)))

let test_writes_sp () =
  Alcotest.(check bool) "sp adjust" true
    (I.writes_sp (I.Alui (I.Add, R.sp, R.sp, -4)));
  Alcotest.(check bool) "not sp" false
    (I.writes_sp (I.Alui (I.Add, 8, R.sp, 4)))

let test_eval_alu () =
  check_int "add" 7 (I.eval_alu I.Add 3 4);
  check_int "sub" (-1) (I.eval_alu I.Sub 3 4);
  check_int "mul" 12 (I.eval_alu I.Mul 3 4);
  check_int "div trunc" (-2) (I.eval_alu I.Div (-7) 3);
  check_int "rem sign" (-1) (I.eval_alu I.Rem (-7) 3);
  check_int "and" 0b100 (I.eval_alu I.And 0b110 0b101);
  check_int "or" 0b111 (I.eval_alu I.Or 0b110 0b101);
  check_int "xor" 0b011 (I.eval_alu I.Xor 0b110 0b101);
  check_int "sll" 16 (I.eval_alu I.Sll 1 4);
  check_int "sra negative" (-2) (I.eval_alu I.Sra (-8) 2);
  check_int "slt" 1 (I.eval_alu I.Slt (-1) 0);
  check_int "sle eq" 1 (I.eval_alu I.Sle 5 5);
  check_int "seq" 0 (I.eval_alu I.Seq 5 6);
  check_int "sne" 1 (I.eval_alu I.Sne 5 6);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (I.eval_alu I.Div 1 0))

let test_eval_cond () =
  Alcotest.(check bool) "eq" true (I.eval_cond I.Eq 3 3);
  Alcotest.(check bool) "ne" false (I.eval_cond I.Ne 3 3);
  Alcotest.(check bool) "lt" true (I.eval_cond I.Lt (-1) 0);
  Alcotest.(check bool) "le" true (I.eval_cond I.Le 0 0);
  Alcotest.(check bool) "gt" false (I.eval_cond I.Gt 0 0);
  Alcotest.(check bool) "ge" true (I.eval_cond I.Ge 1 0)

let test_eval_fcmp () =
  check_int "flt" 1 (I.eval_fcmp I.Flt 1. 2.);
  check_int "fle" 1 (I.eval_fcmp I.Fle 2. 2.);
  check_int "feq" 0 (I.eval_fcmp I.Feq 1. 2.)

let test_map_label () =
  let b = I.B (I.Eq, 1, 2, "target") in
  (match I.map_label String.length b with
  | I.B (I.Eq, 1, 2, 6) -> ()
  | _ -> Alcotest.fail "map_label B");
  let jt = I.Jtab (3, [| "a"; "bb" |]) in
  match I.map_label String.length jt with
  | I.Jtab (3, [| 1; 2 |]) -> ()
  | _ -> Alcotest.fail "map_label Jtab"

let test_pp () =
  let s insn = Format.asprintf "%a" I.pp_resolved insn in
  Alcotest.(check string) "add" "add r1, r2, r3" (s (I.Alu (I.Add, 1, 2, 3)));
  Alcotest.(check string) "lw" "lw r4, 8(r29)" (s (I.Lw (4, 29, 8)));
  Alcotest.(check string) "blt" "blt r1, r2, 7" (s (I.B (I.Lt, 1, 2, 7)));
  Alcotest.(check string) "blti" "blti r1, 5, 7" (s (I.Bi (I.Lt, 1, 5, 7)));
  Alcotest.(check string) "fmov" "fmov f1, f2" (s (I.Fmov (1, 2)))

let test_reg_conventions () =
  check_int "zero" 0 R.zero;
  check_int "sp" 29 R.sp;
  check_int "ra" 31 R.ra;
  check_int "arg0" 4 (R.arg 0);
  check_int "tmp7" 15 (R.tmp 7);
  check_int "sav0" 16 (R.sav 0);
  check_int "float uid" 44 (R.uid_of_float 12);
  Alcotest.check_raises "arg range" (Invalid_argument "Reg.arg") (fun () ->
      ignore (R.arg 4))

let suite =
  [ Alcotest.test_case "kinds" `Quick test_kinds;
    Alcotest.test_case "uses/defs" `Quick test_uses_defs;
    Alcotest.test_case "writes_sp" `Quick test_writes_sp;
    Alcotest.test_case "eval_alu" `Quick test_eval_alu;
    Alcotest.test_case "eval_cond" `Quick test_eval_cond;
    Alcotest.test_case "eval_fcmp" `Quick test_eval_fcmp;
    Alcotest.test_case "map_label" `Quick test_map_label;
    Alcotest.test_case "pretty-printing" `Quick test_pp;
    Alcotest.test_case "register conventions" `Quick test_reg_conventions ]

(* Tests of assembly program representation, linking, and the builder. *)

module I = Risc.Insn
module P = Asm.Program

let simple_program () =
  { P.procs =
      [ { P.name = "__start";
          body = [ P.Ins (I.Jal "main"); P.Ins I.Halt ] };
        { P.name = "main";
          body =
            [ P.Ins (I.Li (2, 5));
              P.Label "loop";
              P.Ins (I.Alui (I.Add, 2, 2, -1));
              P.Ins (I.Bi (I.Gt, 2, 0, "loop"));
              P.Ins (I.Jr 31) ] } ];
    data = [ (16, [| P.Int_cell 7 |]) ];
    entry = "__start" }

let test_resolve () =
  let flat = P.resolve (simple_program ()) in
  Alcotest.(check int) "code size" 6 (Array.length flat.code);
  Alcotest.(check int) "entry pc" 0 flat.entry_pc;
  (match flat.code.(0) with
  | I.Jal 2 -> ()
  | _ -> Alcotest.fail "jal resolves to main at 2");
  (match flat.code.(4) with
  | I.Bi (I.Gt, 2, 0, 3) -> ()
  | _ -> Alcotest.fail "backward branch resolves to loop at 3");
  Alcotest.(check string) "proc of 0" "__start" (P.proc_of_pc flat 0);
  Alcotest.(check string) "proc of 4" "main" (P.proc_of_pc flat 4);
  Alcotest.(check (list (pair string int))) "bounds"
    [ ("__start", 0); ("main", 2) ]
    (Array.to_list
       (Array.map2
          (fun n (s, _) -> (n, s))
          flat.proc_names flat.proc_bounds))

let test_duplicate_label () =
  let prog =
    { P.procs =
        [ { P.name = "main";
            body = [ P.Label "x"; P.Ins I.Halt; P.Label "x" ] } ];
      data = [];
      entry = "main" }
  in
  match P.resolve prog with
  | exception P.Link_error msg ->
    Alcotest.(check bool) "mentions label" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected Link_error"

let test_undefined_label () =
  let prog =
    { P.procs = [ { P.name = "main"; body = [ P.Ins (I.J "nowhere") ] } ];
      data = [];
      entry = "main" }
  in
  match P.resolve prog with
  | exception P.Link_error _ -> ()
  | _ -> Alcotest.fail "expected Link_error"

let test_missing_entry () =
  let prog =
    { P.procs = [ { P.name = "main"; body = [ P.Ins I.Halt ] } ];
      data = [];
      entry = "start" }
  in
  match P.resolve prog with
  | exception P.Link_error _ -> ()
  | _ -> Alcotest.fail "expected Link_error"

let test_empty_program () =
  let prog = { P.procs = []; data = []; entry = "main" } in
  match P.resolve prog with
  | exception P.Link_error _ -> ()
  | _ -> Alcotest.fail "expected Link_error"

let test_builder () =
  let b = Asm.Builder.create ~entry:"main" in
  Asm.Builder.begin_proc b "main";
  let l1 = Asm.Builder.fresh_label b "x" in
  let l2 = Asm.Builder.fresh_label b "x" in
  Alcotest.(check bool) "fresh labels distinct" true (l1 <> l2);
  Asm.Builder.ins b (I.Li (2, 1));
  Asm.Builder.place_label b l1;
  Asm.Builder.ins b (I.J l1);
  Asm.Builder.end_proc b;
  Asm.Builder.add_data b ~base:20 [| P.Int_cell 1 |];
  let prog = Asm.Builder.finish b in
  Alcotest.(check int) "one proc" 1 (List.length prog.procs);
  Alcotest.(check int) "data blocks" 1 (List.length prog.data);
  let flat = P.resolve prog in
  match flat.code.(1) with
  | I.J 1 -> ()
  | _ -> Alcotest.fail "label placed after first instruction"

let test_builder_misuse () =
  let b = Asm.Builder.create ~entry:"main" in
  Alcotest.check_raises "ins without proc"
    (Invalid_argument "Builder: no open procedure") (fun () ->
      Asm.Builder.ins b I.Halt);
  Asm.Builder.begin_proc b "main";
  Alcotest.check_raises "nested begin"
    (Invalid_argument "Builder.begin_proc: procedure already open")
    (fun () -> Asm.Builder.begin_proc b "other");
  Alcotest.check_raises "finish with open proc"
    (Invalid_argument "Builder.finish: procedure still open") (fun () ->
      ignore (Asm.Builder.finish b))

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_disassembly_listing () =
  let flat = P.resolve (simple_program ()) in
  let text = Format.asprintf "%a" P.pp_flat flat in
  Alcotest.(check bool) "mentions main" true (contains text "main:");
  Alcotest.(check bool) "mentions halt" true (contains text "halt")

let suite =
  [ Alcotest.test_case "resolve" `Quick test_resolve;
    Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
    Alcotest.test_case "undefined label" `Quick test_undefined_label;
    Alcotest.test_case "missing entry" `Quick test_missing_entry;
    Alcotest.test_case "empty program" `Quick test_empty_program;
    Alcotest.test_case "builder" `Quick test_builder;
    Alcotest.test_case "builder misuse" `Quick test_builder_misuse;
    Alcotest.test_case "disassembly" `Quick test_disassembly_listing ]

type t = {
  pcs : int Stdx.Vec.t;
  auxs : int Stdx.Vec.t;
}

type sink = {
  on_entry : pc:int -> aux:int -> unit;
  on_close : unit -> unit;
}

let sink ?(on_close = fun () -> ()) on_entry = { on_entry; on_close }

let null_sink = { on_entry = (fun ~pc:_ ~aux:_ -> ()); on_close = ignore }

let tee a b =
  { on_entry =
      (fun ~pc ~aux ->
        a.on_entry ~pc ~aux;
        b.on_entry ~pc ~aux);
    on_close =
      (fun () ->
        a.on_close ();
        b.on_close ()) }

let create () =
  { pcs = Stdx.Vec.create ~capacity:4096 ~dummy:0 ();
    auxs = Stdx.Vec.create ~capacity:4096 ~dummy:0 () }

let push t ~pc ~aux =
  Stdx.Vec.push t.pcs pc;
  Stdx.Vec.push t.auxs aux

let buffer_sink t = { on_entry = push t; on_close = ignore }

let length t = Stdx.Vec.length t.pcs
let pc t i = Stdx.Vec.get t.pcs i
let aux t i = Stdx.Vec.get t.auxs i
let addr = aux
let taken t i = Stdx.Vec.get t.auxs i = 1

let iter f t =
  (* one length check, then raw reads: this loop feeds every analyzer
     pass over a materialized trace *)
  for i = 0 to length t - 1 do
    f ~pc:(Stdx.Vec.unsafe_get t.pcs i) ~aux:(Stdx.Vec.unsafe_get t.auxs i)
  done

let feed t s =
  iter s.on_entry t;
  s.on_close ()

type t = {
  pcs : int Stdx.Vec.t;
  auxs : int Stdx.Vec.t;
}

type sink = {
  on_entry : pc:int -> aux:int -> unit;
  on_close : unit -> unit;
}

let sink ?(on_close = fun () -> ()) on_entry = { on_entry; on_close }

let null_sink = { on_entry = (fun ~pc:_ ~aux:_ -> ()); on_close = ignore }

let tee a b =
  { on_entry =
      (fun ~pc ~aux ->
        a.on_entry ~pc ~aux;
        b.on_entry ~pc ~aux);
    on_close =
      (fun () ->
        a.on_close ();
        b.on_close ()) }

let create () =
  { pcs = Stdx.Vec.create ~capacity:4096 ~dummy:0 ();
    auxs = Stdx.Vec.create ~capacity:4096 ~dummy:0 () }

let push t ~pc ~aux =
  Stdx.Vec.push t.pcs pc;
  Stdx.Vec.push t.auxs aux

let buffer_sink t = { on_entry = push t; on_close = ignore }

let length t = Stdx.Vec.length t.pcs
let pc t i = Stdx.Vec.get t.pcs i
let aux t i = Stdx.Vec.get t.auxs i
let addr = aux
let taken t i = Stdx.Vec.get t.auxs i = 1

let iter f t =
  (* one length check, then raw reads: this loop feeds every analyzer
     pass over a materialized trace *)
  for i = 0 to length t - 1 do
    f ~pc:(Stdx.Vec.unsafe_get t.pcs i) ~aux:(Stdx.Vec.unsafe_get t.auxs i)
  done

let feed t s =
  iter s.on_entry t;
  s.on_close ()

(* Segments: fixed-stride slices of a trace, each owning plain int
   arrays so a filled segment can be handed to another domain without
   sharing the growing Vec backing store (whose [push] may reallocate
   under the producer's feet). *)

type seg = {
  seg_index : int;
  seg_base : int;
  seg_len : int;
  seg_pcs : int array;
  seg_auxs : int array;
}

let segmenting_sink ~steps ~emit =
  if steps < 1 then invalid_arg "Trace.segmenting_sink: steps must be >= 1";
  let index = ref 0 in
  let base = ref 0 in
  let len = ref 0 in
  let pcs = ref (Array.make steps 0) in
  let auxs = ref (Array.make steps 0) in
  let flush () =
    if !len > 0 then begin
      emit
        { seg_index = !index;
          seg_base = !base;
          seg_len = !len;
          seg_pcs = !pcs;
          seg_auxs = !auxs };
      incr index;
      base := !base + !len;
      len := 0;
      pcs := Array.make steps 0;
      auxs := Array.make steps 0
    end
  in
  { on_entry =
      (fun ~pc ~aux ->
        let i = !len in
        !pcs.(i) <- pc;
        !auxs.(i) <- aux;
        len := i + 1;
        if i + 1 = steps then flush ());
    on_close = flush }

let segments ~steps t =
  if steps < 1 then invalid_arg "Trace.segments: steps must be >= 1";
  let n = length t in
  let count = (n + steps - 1) / steps in
  Array.init count (fun k ->
      let base = k * steps in
      let len = min steps (n - base) in
      let pcs = Array.make len 0 in
      let auxs = Array.make len 0 in
      for i = 0 to len - 1 do
        Array.unsafe_set pcs i (Stdx.Vec.unsafe_get t.pcs (base + i));
        Array.unsafe_set auxs i (Stdx.Vec.unsafe_get t.auxs (base + i))
      done;
      { seg_index = k; seg_base = base; seg_len = len;
        seg_pcs = pcs; seg_auxs = auxs })

(** Dynamic instruction traces.

    One entry per executed instruction.  [pc] is the static code index.
    [aux] carries per-entry dynamic information whose meaning depends on
    the static instruction's kind:
    - loads/stores: the effective word address (always [>= 0]);
    - conditional branches: 1 when taken, 0 when fall-through;
    - everything else: [-1].

    This is the information the paper obtained from [pixie]: instruction
    identity, memory addresses for perfect disambiguation, and branch
    outcomes for the prediction study.

    Consumers come in two forms.  A materialized {!t} buffers the whole
    trace for random access (dumping, debugging, repeated scans).  A
    {!sink} receives entries as the VM retires them, so analyses that
    need only one forward pass never hold the trace in memory — the
    decoupled fetch/analysis split that makes paper-scale (100M-entry)
    traces feasible. *)

type t

(** A streaming trace consumer.  [on_entry] is called once per retired
    instruction, in trace order; [on_close] once at the end of
    execution (normal halt, fuel exhaustion, or fault). *)
type sink = {
  on_entry : pc:int -> aux:int -> unit;
  on_close : unit -> unit;
}

val sink : ?on_close:(unit -> unit) -> (pc:int -> aux:int -> unit) -> sink
(** [sink f] is a sink applying [f] per entry; [on_close] defaults to a
    no-op. *)

val null_sink : sink
(** Discards every entry. *)

val tee : sink -> sink -> sink
(** [tee a b] forwards every entry (and close) to [a] then [b]. *)

val create : unit -> t

val push : t -> pc:int -> aux:int -> unit

val buffer_sink : t -> sink
(** The materialized trace as the trivial buffering sink: every entry
    is [push]ed. *)

val length : t -> int

val pc : t -> int -> int

val aux : t -> int -> int

val addr : t -> int -> int
(** Same as [aux]; named accessor for memory entries. *)

val taken : t -> int -> bool
(** Branch outcome of entry [i]; meaningful only for conditional
    branches. *)

val iter : (pc:int -> aux:int -> unit) -> t -> unit

val feed : t -> sink -> unit
(** Replay a materialized trace into a sink, entry by entry, then close
    it.  [feed t (buffer_sink t')] copies the trace. *)

(** A fixed-stride slice of a trace.  Entries [seg_base ..
    seg_base + seg_len - 1] of the stream live at indices [0 ..
    seg_len - 1] of [seg_pcs]/[seg_auxs].  The arrays are owned by the
    segment (never aliased with a growing trace buffer), so a filled
    segment is safe to hand to another domain; [seg_len] may be
    shorter than the arrays for the final partial segment. *)
type seg = {
  seg_index : int;
  seg_base : int;
  seg_len : int;
  seg_pcs : int array;
  seg_auxs : int array;
}

val segmenting_sink : steps:int -> emit:(seg -> unit) -> sink
(** A sink that buffers entries into segments of [steps] entries and
    calls [emit] with each segment as it fills — plus a final partial
    segment (if non-empty) on close.  [emit] runs on the producing
    domain; retirement is never blocked beyond the [emit] call itself,
    so an [emit] that merely enqueues the segment keeps the VM
    streaming.  Segments arrive in index order with contiguous
    [seg_base] ranges covering the stream exactly.  Raises
    [Invalid_argument] if [steps < 1]. *)

val segments : steps:int -> t -> seg array
(** Slice a materialized trace into segments of [steps] entries (the
    last one possibly shorter), copying entries out of the shared
    buffer.  Raises [Invalid_argument] if [steps < 1]. *)

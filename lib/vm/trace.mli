(** Dynamic instruction traces.

    One entry per executed instruction.  [pc] is the static code index.
    [aux] carries per-entry dynamic information whose meaning depends on
    the static instruction's kind:
    - loads/stores: the effective word address (always [>= 0]);
    - conditional branches: 1 when taken, 0 when fall-through;
    - everything else: [-1].

    This is the information the paper obtained from [pixie]: instruction
    identity, memory addresses for perfect disambiguation, and branch
    outcomes for the prediction study.

    Consumers come in two forms.  A materialized {!t} buffers the whole
    trace for random access (dumping, debugging, repeated scans).  A
    {!sink} receives entries as the VM retires them, so analyses that
    need only one forward pass never hold the trace in memory — the
    decoupled fetch/analysis split that makes paper-scale (100M-entry)
    traces feasible. *)

type t

(** A streaming trace consumer.  [on_entry] is called once per retired
    instruction, in trace order; [on_close] once at the end of
    execution (normal halt, fuel exhaustion, or fault). *)
type sink = {
  on_entry : pc:int -> aux:int -> unit;
  on_close : unit -> unit;
}

val sink : ?on_close:(unit -> unit) -> (pc:int -> aux:int -> unit) -> sink
(** [sink f] is a sink applying [f] per entry; [on_close] defaults to a
    no-op. *)

val null_sink : sink
(** Discards every entry. *)

val tee : sink -> sink -> sink
(** [tee a b] forwards every entry (and close) to [a] then [b]. *)

val create : unit -> t

val push : t -> pc:int -> aux:int -> unit

val buffer_sink : t -> sink
(** The materialized trace as the trivial buffering sink: every entry
    is [push]ed. *)

val length : t -> int

val pc : t -> int -> int

val aux : t -> int -> int

val addr : t -> int -> int
(** Same as [aux]; named accessor for memory entries. *)

val taken : t -> int -> bool
(** Branch outcome of entry [i]; meaningful only for conditional
    branches. *)

val iter : (pc:int -> aux:int -> unit) -> t -> unit

val feed : t -> sink -> unit
(** Replay a materialized trace into a sink, entry by entry, then close
    it.  [feed t (buffer_sink t')] copies the trace. *)

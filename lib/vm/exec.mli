(** Interpreter for resolved assembly programs.

    Executes a {!Asm.Program.flat} program and records a {!Trace.t}.
    Memory is word addressed; integer and floating-point cells live in
    parallel arrays sharing one address space (the typed Mini-C code
    generator never accesses one address with both widths).  The stack
    pointer starts near the top of memory and grows down; the data
    segment occupies low addresses.

    Execution is deterministic.  It stops at [Halt], when [fuel]
    instructions have retired (the paper similarly truncates traces at
    100M instructions), or on a fault.

    {b Faults are data, not exceptions.}  Every outcome — including a
    fault — carries the trace prefix and the retired-step count, so a
    failed execution still yields an analyzable partial result; the
    {!Pipeline_error.fault_info} payload says which instruction tripped
    and why.  [run] never raises on program behaviour. *)

type status =
  | Halted of int  (** value of the return-value register at [Halt] *)
  | Out_of_fuel
  | Fault of Pipeline_error.fault_info

type outcome = {
  status : status;
  trace : Trace.t;
  steps : int;
}

val status_string : status -> string
(** One-word tag: ["halted"], ["out_of_fuel"] or ["fault"]. *)

val pp_status : Format.formatter -> status -> unit

val completeness_of : outcome -> Pipeline_error.completeness
(** [Complete] for a halted run; [Truncated] carrying the fuel or fault
    descriptor otherwise.  This is the tag analysis results inherit. *)

val default_mem_words : int

val max_mem_words : int
(** Resource guard: the largest memory the VM will agree to allocate
    (two word arrays of this size).  See {!validate_mem_words}. *)

val validate_mem_words : ?workload:string -> int -> (int, Pipeline_error.t) result
(** Checks a requested memory size against [1 <= n <= max_mem_words],
    returning [Budget_exceeded] (or [Invalid_request]) instead of
    letting an oversized request OOM the process. *)

val run :
  ?mem_words:int ->
  ?fuel:int ->
  ?record:bool ->
  ?sink:Trace.sink ->
  ?observe:
    (pc:int -> step:int -> regs:int array -> fregs:float array ->
     mem:int array -> unit) ->
  ?probe:Obs.Probe.vm ->
  Asm.Program.flat ->
  outcome
(** [run flat] executes the program from its entry point.  [fuel]
    defaults to 10 million retired instructions; [record] (default
    [true]) controls whether a materialized trace is captured.  When
    [sink] is given it receives every retired instruction as it
    executes (and a close on termination), independently of [record];
    [~record:false ~sink] streams the trace without ever holding it in
    memory, so the footprint is O(program + VM memory) regardless of
    trace length.  [observe] is called after [sink]'s [on_entry] for
    each retired instruction with the 0-based retirement index [step]
    and the live register files and integer memory (not copies —
    callers must not retain them); value-level trace checkers
    ({!Cfg.Verify.Dynamic.observe}) hang off this hook, and the fault
    injector uses it to corrupt state mid-execution.

    [probe] (default {!Obs.Probe.vm_disabled}) publishes execution
    metrics — retired steps, execution/fault counts, and a sampled
    stack-depth histogram — to its registry.  Disabled, it costs the
    retirement path one hoisted bool test.

    [mem_words] is trusted here (callers go through
    {!validate_mem_words}); [Invalid_argument] is possible only for a
    nonsensical negative size. *)

(** Interpreter for resolved assembly programs.

    Executes a {!Asm.Program.flat} program and records a {!Trace.t}.
    Memory is word addressed; integer and floating-point cells live in
    parallel arrays sharing one address space (the typed Mini-C code
    generator never accesses one address with both widths).  The stack
    pointer starts near the top of memory and grows down; the data
    segment occupies low addresses.

    Execution is deterministic.  It stops at [Halt], when [fuel]
    instructions have retired (the paper similarly truncates traces at
    100M instructions), or on a fault. *)

type status =
  | Halted of int  (** value of the return-value register at [Halt] *)
  | Out_of_fuel
  | Fault of string

type outcome = {
  status : status;
  trace : Trace.t;
  steps : int;
}

val default_mem_words : int

val run :
  ?mem_words:int ->
  ?fuel:int ->
  ?record:bool ->
  ?sink:Trace.sink ->
  ?observe:(pc:int -> regs:int array -> fregs:float array -> unit) ->
  Asm.Program.flat ->
  outcome
(** [run flat] executes the program from its entry point.  [fuel]
    defaults to 10 million retired instructions; [record] (default
    [true]) controls whether a materialized trace is captured.  When
    [sink] is given it receives every retired instruction as it
    executes (and a close on termination), independently of [record];
    [~record:false ~sink] streams the trace without ever holding it in
    memory, so the footprint is O(program + VM memory) regardless of
    trace length.  [observe] is called after [sink]'s [on_entry] for
    each retired instruction with the live register files (not copies —
    callers must not mutate or retain them); value-level trace checkers
    ({!Cfg.Verify.Dynamic.observe}) hang off this hook. *)

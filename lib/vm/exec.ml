type status =
  | Halted of int
  | Out_of_fuel
  | Fault of Pipeline_error.fault_info

type outcome = {
  status : status;
  trace : Trace.t;
  steps : int;
}

let status_string = function
  | Halted _ -> "halted"
  | Out_of_fuel -> "out_of_fuel"
  | Fault _ -> "fault"

let pp_status ppf = function
  | Halted v -> Format.fprintf ppf "halted (returned %d)" v
  | Out_of_fuel -> Format.fprintf ppf "out of fuel"
  | Fault f -> Format.fprintf ppf "fault: %a" Pipeline_error.pp_fault f

let completeness_of o =
  match o.status with
  | Halted _ -> Pipeline_error.Complete
  | Out_of_fuel ->
    Pipeline_error.Truncated
      (Pipeline_error.fault ~step:o.steps ~detail:"instruction budget"
         Pipeline_error.Out_of_fuel)
  | Fault f -> Pipeline_error.Truncated f

let default_mem_words = 1 lsl 21
let max_mem_words = 1 lsl 24

let validate_mem_words ?workload n =
  if n < 1 then
    Error
      (Pipeline_error.v ?workload Execute
         (Invalid_request (Printf.sprintf "mem-words must be positive (got %d)" n)))
  else if n > max_mem_words then
    Error
      (Pipeline_error.v ?workload Execute
         (Budget_exceeded
            { what = "VM memory words"; limit = max_mem_words; requested = n }))
  else Ok n

let run ?(mem_words = default_mem_words) ?(fuel = 10_000_000)
    ?(record = true) ?sink ?observe ?(probe = Obs.Probe.vm_disabled)
    (flat : Asm.Program.flat) =
  let open Risc.Insn in
  let code = flat.code in
  let n_code = Array.length code in
  let regs = Array.make 32 0 in
  let fregs = Array.make 32 0. in
  let mem_i = Array.make mem_words 0 in
  let mem_f = Array.make mem_words 0. in
  let init_data (base, cells) =
    let cell i = function
      | Asm.Program.Int_cell v -> mem_i.(base + i) <- v
      | Asm.Program.Float_cell v -> mem_f.(base + i) <- v
    in
    Array.iteri cell cells
  in
  List.iter init_data flat.flat_data;
  regs.(Risc.Reg.sp) <- mem_words - 8;
  let trace = Trace.create () in
  (* Every retired instruction flows through one emit point: the
     materialized trace is just the buffering consumer. *)
  let emit =
    let buffered = if record then Some (Trace.buffer_sink trace) else None in
    match (buffered, sink) with
    | None, None -> Trace.null_sink
    | Some s, None -> s
    | None, Some s -> s
    | Some b, Some s -> Trace.tee b s
  in
  let pc = ref flat.entry_pc in
  (* Probe state, hoisted: a disabled probe costs the retirement path
     one immutable-bool test.  The stack-depth histogram is sampled (one
     observation per [mask+1] retirements), never per-step. *)
  let probe_on = probe.Obs.Probe.v_enabled in
  let probe_mask = probe.Obs.Probe.v_sample_mask in
  let steps = ref 0 in
  let fault = ref None in
  let halted = ref false in
  let die kind detail = fault := Some (kind, detail) in
  let addr_ok a = a >= 0 && a < mem_words in
  let wr rd v = if rd <> 0 then regs.(rd) <- v in
  (* The interpreter records a trace entry for every retired instruction,
     including the faulting one's predecessors only (a faulting
     instruction does not retire). *)
  while (not !halted) && !fault = None && !steps < fuel do
    let cur = !pc in
    if cur < 0 || cur >= n_code then
      die Pipeline_error.Pc_out_of_range "pc out of code range"
    else begin
      let insn = code.(cur) in
      let next = ref (cur + 1) in
      let aux = ref (-1) in
      (match insn with
      | Alu (op, rd, rs, rt) -> (
        match eval_alu op regs.(rs) regs.(rt) with
        | v -> wr rd v
        | exception Division_by_zero ->
          die Pipeline_error.Div_by_zero "integer division by zero")
      | Alui (op, rd, rs, imm) -> (
        match eval_alu op regs.(rs) imm with
        | v -> wr rd v
        | exception Division_by_zero ->
          die Pipeline_error.Div_by_zero "integer division by zero")
      | Li (rd, imm) -> wr rd imm
      | Fli (fd, x) -> fregs.(fd) <- x
      | Lw (rd, base, off) ->
        let a = regs.(base) + off in
        if addr_ok a then begin
          aux := a;
          wr rd mem_i.(a)
        end
        else die Pipeline_error.Mem_out_of_range "load address out of range"
      | Sw (rsrc, base, off) ->
        let a = regs.(base) + off in
        if addr_ok a then begin
          aux := a;
          mem_i.(a) <- regs.(rsrc)
        end
        else die Pipeline_error.Mem_out_of_range "store address out of range"
      | Flw (fd, base, off) ->
        let a = regs.(base) + off in
        if addr_ok a then begin
          aux := a;
          fregs.(fd) <- mem_f.(a)
        end
        else die Pipeline_error.Mem_out_of_range "load address out of range"
      | Fsw (fsrc, base, off) ->
        let a = regs.(base) + off in
        if addr_ok a then begin
          aux := a;
          mem_f.(a) <- fregs.(fsrc)
        end
        else die Pipeline_error.Mem_out_of_range "store address out of range"
      | Falu (op, fd, fs, ft) -> fregs.(fd) <- eval_falu op fregs.(fs) fregs.(ft)
      | Fcmp (op, rd, fs, ft) -> wr rd (eval_fcmp op fregs.(fs) fregs.(ft))
      | Movn (rd, rs, rg) -> if regs.(rg) <> 0 then wr rd regs.(rs)
      | Fmov (fd, fs) -> fregs.(fd) <- fregs.(fs)
      | I2f (fd, rs) -> fregs.(fd) <- float_of_int regs.(rs)
      | F2i (rd, fs) -> wr rd (int_of_float fregs.(fs))
      | B (c, rs, rt, target) ->
        let taken = eval_cond c regs.(rs) regs.(rt) in
        aux := (if taken then 1 else 0);
        if taken then next := target
      | Bi (c, rs, imm, target) ->
        let taken = eval_cond c regs.(rs) imm in
        aux := (if taken then 1 else 0);
        if taken then next := target
      | J target -> next := target
      | Jal target ->
        wr Risc.Reg.ra (cur + 1);
        next := target
      | Jr rs -> next := regs.(rs)
      | Jtab (rs, table) ->
        let i = regs.(rs) in
        if i >= 0 && i < Array.length table then next := table.(i)
        else
          die Pipeline_error.Jtab_out_of_range "jump table index out of range"
      | Halt -> halted := true);
      if !fault = None then begin
        emit.Trace.on_entry ~pc:cur ~aux:!aux;
        (match observe with
        | Some f -> f ~pc:cur ~step:!steps ~regs ~fregs ~mem:mem_i
        | None -> ());
        if probe_on && !steps land probe_mask = 0 then
          Obs.Metrics.observe probe.Obs.Probe.v_stack_words
            (mem_words - regs.(Risc.Reg.sp));
        incr steps;
        pc := !next
      end
    end
  done;
  emit.Trace.on_close ();
  let status =
    match !fault with
    | Some (kind, detail) ->
      Fault (Pipeline_error.fault ~pc:!pc ~detail ~step:!steps kind)
    | None -> if !halted then Halted regs.(Risc.Reg.rv) else Out_of_fuel
  in
  if probe_on then begin
    Obs.Metrics.incr probe.Obs.Probe.v_executions;
    Obs.Metrics.add probe.Obs.Probe.v_steps !steps;
    match status with
    | Fault _ -> Obs.Metrics.incr probe.Obs.Probe.v_faults
    | Halted _ | Out_of_fuel -> ()
  end;
  { status; trace; steps = !steps }

(** The [ilp-limits serve] daemon: analysis as a service.

    One process serves framed JSON requests ({!Protocol}) over a
    Unix-domain socket (and optionally TCP).  The moving parts:

    - {e connection threads} (systhreads) parse and validate frames,
      enforce per-request quotas, run admission control, and enqueue
      admitted work;
    - a {e bounded queue} ({!Rqueue}) between the connections and the
      compute is the backpressure point: a full queue sheds with the
      typed [Overloaded] error and a retry hint, so memory stays
      bounded under any request rate;
    - a {e dispatcher thread} drains the queue in batches onto a
      {!Stdx.Pool} of domains — requests execute truly in parallel,
      each through {!Harness.Request.exec} with its own VM state, so
      one request's fault or deadline never touches a neighbour;
    - a {e compiled-program cache} ({!Cache}) keyed by the source
      digest skips the front end on repeats; cached and fresh replies
      are byte-identical (compilation is pure);
    - {e admission control}: before any execution, the static
      estimator ({!Harness.estimate_flat}) prices the request; with
      [`Reject c] an unbounded breaker-free run or an M×trip proxy
      above [c] is refused up front ([Rejected_by_estimate], exit
      class 8), with [`Budget c] it is down-budgeted (fuel and step
      budget clamped to [c]) instead.

    Failure discipline: {e every} request yields exactly one framed
    response — a result or a typed {!Pipeline_error} — and no request
    can crash, wedge, or leak a domain; expiry, faults, quota
    violations and shed load are all data.  Drain ({!drain}, wired to
    SIGTERM/SIGINT by the CLI) stops accepting, answers new requests
    with [Overloaded], finishes queued and in-flight work, then shuts
    the pool down.  The CLI's [--supervise] loop restarts the process
    on any abnormal exit (crash-only operation). *)

type admission =
  | Admit_off
  | Admit_reject of float  (** refuse above the ceiling *)
  | Admit_budget of float
      (** clamp fuel and step budget to the ceiling instead *)

type config = {
  socket_path : string;
  tcp : (string * int) option;  (** bind address, port *)
  jobs : int;  (** domain-pool width for request execution *)
  scheduler : Stdx.Pool.scheduler;
      (** pool implementation backing the request pool (scheduling
          only — replies are bit-identical across schedulers) *)
  queue_limit : int;  (** backpressure bound *)
  cache_capacity : int;  (** compiled-program LRU entries *)
  admission : admission;
  max_fuel : int;  (** per-request fuel quota ceiling *)
  max_step_budget : int;  (** per-request analysis-step ceiling *)
  default_deadline_ms : int option;
      (** deadline applied when a request names none *)
  idle_timeout_ms : int option;
      (** self-drain after this long with no connections and no work *)
  retry_after_ms : int;  (** hint carried by [Overloaded] responses *)
  registry : Obs.Metrics.t;  (** serve_* metrics land here *)
  segment_steps : Harness.segmenting;
      (** intra-trace segmentation for request analysis (DESIGN.md
          §15).  Anything but [`Off] lets a single large request fan
          its trace across idle pool domains — results stay
          bit-identical, so cached and fresh replies still agree. *)
}

val config :
  ?tcp:string * int ->
  ?jobs:int ->
  ?scheduler:Stdx.Pool.scheduler ->
  ?queue_limit:int ->
  ?cache_capacity:int ->
  ?admission:admission ->
  ?max_fuel:int ->
  ?max_step_budget:int ->
  ?default_deadline_ms:int ->
  ?idle_timeout_ms:int ->
  ?retry_after_ms:int ->
  ?registry:Obs.Metrics.t ->
  ?segment_steps:Harness.segmenting ->
  socket_path:string ->
  unit ->
  config
(** Defaults: no TCP, [jobs] = {!Stdx.Pool.recommended_jobs},
    [scheduler] = {!Stdx.Pool.default_scheduler},
    [queue_limit] = 64, [cache_capacity] = 32, admission off,
    [max_fuel] = 100_000_000, [max_step_budget] = 100_000_000, no
    default deadline, no idle timeout, [retry_after_ms] = 50,
    [registry] = {!Obs.Metrics.global}, segmentation off. *)

type t

val start : config -> (t, string) result
(** Bind the socket(s) and spawn the acceptor, dispatcher and pool.
    [Error] describes a bind/listen failure (path in use, port
    taken). *)

val drain : t -> unit
(** Initiate graceful shutdown (async, signal-safe in intent: sets
    flags and wakes the acceptor).  Idempotent. *)

val wait : t -> unit
(** Block until the server has fully stopped — drain initiated (by
    {!drain} or the idle timeout), queue and in-flight work finished,
    connections closed, pool shut down. *)

val stop : t -> unit
(** {!drain} then {!wait}. *)

val draining : t -> bool

type kind =
  | Truncated_header
  | Truncated_body
  | Oversized
  | Empty
  | Non_utf8
  | Garbage
  | Bad_json
  | Wrong_shape
  | Duplicate_id

let all_kinds =
  [ Truncated_header; Truncated_body; Oversized; Empty; Non_utf8;
    Garbage; Bad_json; Wrong_shape; Duplicate_id ]

let kind_name = function
  | Truncated_header -> "truncated_header"
  | Truncated_body -> "truncated_body"
  | Oversized -> "oversized"
  | Empty -> "empty"
  | Non_utf8 -> "non_utf8"
  | Garbage -> "garbage"
  | Bad_json -> "bad_json"
  | Wrong_shape -> "wrong_shape"
  | Duplicate_id -> "duplicate_id"

type report = {
  cases : int;
  structured : int;
  ok_replies : int;
  closed : int;
  hung : int;
  unexpected_ok : int;
  alive : bool;
}

let passed r = r.hung = 0 && r.unexpected_ok = 0 && r.alive

(* What one exchange produced. *)
type reply =
  | R_ok
  | R_error
  | R_closed
  | R_hang

let send_raw fd s =
  let b = Bytes.of_string s in
  let rec go off len =
    if len = 0 then true
    else
      match Unix.write fd b off len with
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error _ -> false
  in
  go 0 (Bytes.length b)

let frame payload =
  let len = String.length payload in
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  Bytes.to_string b

let read_reply ~timeout_ms fd =
  match Unix.select [ fd ] [] [] (float_of_int timeout_ms /. 1000.) with
  | [], _, _ -> R_hang
  | _ -> (
    match Protocol.read_frame fd with
    | Error _ -> R_closed
    | Ok body -> (
      match Jsonx.parse body with
      | Error _ -> R_error (* never happens: server output is JSON *)
      | Ok json ->
        let r = Protocol.decode_response json in
        if r.r_ok then R_ok else R_error))

(* derive a deterministic byte string from the case seed *)
let bytes_of_seed ~seed n =
  String.init n (fun i ->
      Char.chr (Fault.Injector.Rng.derive ~seed ~index:i land 0xFF))

let payload_of_kind ~seed = function
  | Truncated_header -> `Raw_close "\x00\x00"
  | Truncated_body ->
    (* declares 64 bytes, delivers 10 *)
    `Raw_close ("\x00\x00\x00\x40" ^ bytes_of_seed ~seed 10)
  | Oversized ->
    let over =
      Protocol.max_frame + 1
      + (Fault.Injector.Rng.derive ~seed ~index:0 land 0xFFFF)
    in
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int over);
    `Raw (Bytes.to_string b)
  | Empty -> `Frame ""
  | Non_utf8 -> `Frame "{\"id\":1,\"op\":\"\xC0\xAF\xFF\"}"
  | Garbage -> `Frame (bytes_of_seed ~seed 32)
  | Bad_json -> `Frame "{\"id\":7,\"op\":\"pi"
  | Wrong_shape -> (
    match Fault.Injector.Rng.derive ~seed ~index:1 land 3 with
    | 0 -> `Frame "{\"op\":\"ping\"}" (* no id *)
    | 1 -> `Frame "{\"id\":3,\"op\":\"frobnicate\"}"
    | 2 -> `Frame "{\"id\":3,\"op\":\"analyze\"}" (* no workload/source *)
    | _ -> `Frame "[1,2,3]")
  | Duplicate_id -> `Dup

(* Raw socket, not {!Client}: torn writes and oversized headers need
   byte-level control the client never offers. *)
let run_case ~timeout_ms ~seed addr kind =
  let domain, sa =
    match addr with
    | Client.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Client.Tcp (host, port) ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  in
  let s = Unix.socket domain Unix.SOCK_STREAM 0 in
  let finally () = try Unix.close s with Unix.Unix_error _ -> () in
  match Unix.connect s sa with
  | () ->
    let outcomes =
      match payload_of_kind ~seed kind with
      | `Raw_close raw ->
        ignore (send_raw s raw);
        (try Unix.shutdown s Unix.SHUTDOWN_SEND
         with Unix.Unix_error _ -> ());
        [ read_reply ~timeout_ms s ]
      | `Raw raw ->
        ignore (send_raw s raw);
        [ read_reply ~timeout_ms s ]
      | `Frame payload ->
        ignore (send_raw s (frame payload));
        [ read_reply ~timeout_ms s ]
      | `Dup ->
        let ping = "{\"id\":11,\"op\":\"ping\"}" in
        ignore (send_raw s (frame ping));
        ignore (send_raw s (frame ping));
        let a = read_reply ~timeout_ms s in
        let b = read_reply ~timeout_ms s in
        [ a; b ]
    in
    finally ();
    outcomes
  | exception Unix.Unix_error _ ->
    finally ();
    [ R_closed ]

let run ?(timeout_ms = 2000) ?(cases = 64) ~seed addr =
  let kinds = Array.of_list all_kinds in
  let structured = ref 0
  and ok_replies = ref 0
  and closed = ref 0
  and hung = ref 0
  and unexpected_ok = ref 0 in
  for i = 0 to cases - 1 do
    let kind = kinds.(i mod Array.length kinds) in
    let case_seed = Fault.Injector.Rng.derive ~seed ~index:i in
    let outcomes = run_case ~timeout_ms ~seed:case_seed addr kind in
    List.iteri
      (fun j outcome ->
        match outcome with
        | R_error -> incr structured
        | R_closed -> incr closed
        | R_hang -> incr hung
        | R_ok ->
          incr ok_replies;
          (* the only garbage that may legitimately be answered ok is
             the first half of a duplicate-id pair *)
          if not (kind = Duplicate_id && j = 0) then incr unexpected_ok)
      outcomes
  done;
  let alive =
    match Client.connect addr with
    | Error _ -> false
    | Ok conn ->
      let id = Client.fresh_id conn in
      let r = Client.call conn (Protocol.ping_request ~id) in
      Client.close conn;
      (match r with
      | Ok json -> (Protocol.decode_response json).r_ok
      | Error _ -> false)
  in
  { cases; structured = !structured; ok_replies = !ok_replies;
    closed = !closed; hung = !hung; unexpected_ok = !unexpected_ok;
    alive }

type addr =
  | Unix_sock of string
  | Tcp of string * int

type t = {
  fd : Unix.file_descr;
  mutable next_id : int;
}

let connect addr =
  let domain, sockaddr =
    match addr with
    | Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
      ( Unix.PF_INET,
        Unix.ADDR_INET (Unix.inet_addr_of_string host, port) )
  in
  match
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (try Unix.connect fd sockaddr
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | fd -> Ok { fd; next_id = 0 }
  | exception Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let fresh_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let call t payload =
  match Protocol.write_frame t.fd payload with
  | Error e -> Error ("write: " ^ e)
  | Ok () -> (
    match Protocol.read_frame t.fd with
    | Error Protocol.Closed | Error Protocol.Truncated ->
      Error "connection closed by server"
    | Error (Protocol.Too_large n) ->
      Error (Printf.sprintf "oversized response (%d bytes)" n)
    | Error (Protocol.Io e) -> Error ("read: " ^ e)
    | Ok body -> (
      match Jsonx.parse body with
      | Ok json -> Ok json
      | Error e -> Error ("unparseable response: " ^ e)))

type outcome = {
  o_response : Protocol.response;
  o_attempts : int;
}

let sleep_ms ms = if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.)

let call_retry ?(attempts = 5) ?(base_ms = 10) ~seed addr ~make_payload =
  let attempts = max 1 attempts in
  let backoff_ms ~attempt ~hint =
    (* seeded jitter: the same (seed, attempt) always waits the same *)
    let jitter =
      if base_ms <= 0 then 0
      else
        let r = Fault.Injector.Rng.derive ~seed ~index:attempt in
        (r land max_int) mod base_ms
    in
    Option.value hint ~default:0 + (base_ms * (1 lsl min attempt 10)) + jitter
  in
  let rec go attempt ~hint ~last_io_error =
    if attempt >= attempts then
      match last_io_error with
      | Some e -> Error e
      | None -> Error "retries exhausted"
    else begin
      if attempt > 0 then sleep_ms (backoff_ms ~attempt ~hint);
      match connect addr with
      | Error e -> go (attempt + 1) ~hint:None ~last_io_error:(Some e)
      | Ok conn -> (
        let id = fresh_id conn in
        let r = call conn (make_payload ~id) in
        close conn;
        match r with
        | Error e -> go (attempt + 1) ~hint:None ~last_io_error:(Some e)
        | Ok json ->
          let resp = Protocol.decode_response json in
          if
            (not resp.r_ok)
            && resp.r_error_cause = Some "overloaded"
            && attempt + 1 < attempts
          then
            go (attempt + 1) ~hint:resp.r_retry_after_ms
              ~last_io_error:None
          else Ok { o_response = resp; o_attempts = attempt + 1 })
    end
  in
  go 0 ~hint:None ~last_io_error:None

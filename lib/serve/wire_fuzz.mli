(** Wire-level fuzzing of a live server: the serve analogue of the
    pipeline fuzz invariant, one layer down.

    Each seeded case opens a fresh connection and fires one mutated
    frame — torn length prefix, body shorter than declared, oversized
    declaration, non-UTF-8 payload, random bytes, truncated JSON,
    wrong shapes, duplicate ids — then classifies what came back.
    Acceptable outcomes are a {e typed error response} or (for frames
    torn mid-transmission, where no response can be framed) a clean
    close.  A hang (no reply within the timeout) or an [ok:true]
    answer to garbage is a violation; so is the server being dead
    afterwards (the report's final liveness ping).

    Like {!Harness.Fuzz}, case [i]'s behaviour is a pure function of
    [(seed, i)] via the splitmix64 stream, so every run reproduces. *)

type kind =
  | Truncated_header  (** fewer than 4 prefix bytes, then close *)
  | Truncated_body  (** declares N bytes, sends fewer, then closes *)
  | Oversized  (** declares a length beyond {!Protocol.max_frame} *)
  | Empty  (** zero-length payload *)
  | Non_utf8  (** framed payload with invalid UTF-8 bytes *)
  | Garbage  (** framed random bytes *)
  | Bad_json  (** framed, UTF-8, but truncated JSON *)
  | Wrong_shape  (** valid JSON of the wrong shape (no id / bad op) *)
  | Duplicate_id  (** two valid pings sharing one id *)

val all_kinds : kind list

val kind_name : kind -> string

type report = {
  cases : int;
  structured : int;  (** typed error responses *)
  ok_replies : int;  (** [ok:true] replies (duplicate-id first halves) *)
  closed : int;  (** connection closed without a reply (torn frames) *)
  hung : int;  (** no reply within the timeout — must be 0 *)
  unexpected_ok : int;
      (** [ok:true] where a refusal was required — must be 0 *)
  alive : bool;  (** post-run liveness ping succeeded — must be true *)
}

val passed : report -> bool
(** [hung = 0 && unexpected_ok = 0 && alive]. *)

val run :
  ?timeout_ms:int ->
  ?cases:int ->
  seed:int ->
  Client.addr ->
  report
(** Fire [cases] (default 64) mutated frames, cycling through
    {!all_kinds}, each on its own connection; [timeout_ms] (default
    2000) bounds every reply wait. *)

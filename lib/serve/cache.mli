(** Small thread-safe LRU cache, keyed by string.

    The serve daemon keys compiled programs by the [Digest] of their
    Mini-C source, so a repeat request skips the whole front end and
    its wall-clock deadline pays for execution only.  Determinism
    contract (asserted by the tests): compilation is a pure function
    of the source, so a cache hit feeds {!Harness.Request.exec}
    exactly the program a fresh compile would — cached and fresh
    replies are byte-identical.

    Eviction is least-recently-{e used} (a [find] refreshes).  With
    small capacities the O(capacity) eviction scan is irrelevant next
    to a single compile. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] clamped to at least 1. *)

val find : 'a t -> string -> 'a option
(** Refreshes recency; counts a hit or a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or refresh) a binding, evicting the least recently used
    entry when over capacity. *)

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
}

val stats : 'a t -> stats

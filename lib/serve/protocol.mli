(** The wire protocol of [ilp-limits serve].

    Framing: every message is a 4-byte big-endian length prefix
    followed by that many bytes of UTF-8 JSON.  Frames above
    {!max_frame} are refused — and because the stream position after
    an oversized declaration is unknowable, the connection closes
    (desync).  Every other malformed payload (bad JSON, non-UTF-8,
    wrong shape) is answered with a typed error on the {e same}
    connection: the frame boundary is intact, so the session
    survives.

    Requests are objects with an integer ["id"] (echoed verbatim in
    the response; duplicate ids on one connection are refused) and an
    ["op"]:

    {v
    {"id":N, "op":"ping"}
    {"id":N, "op":"stats"}
    {"id":N, "op":"metrics"}
    {"id":N, "op":"analyze",
     "workload":"puzzle" | "source":"int main() { ... }",
     "machines":["sp-cd-mf","oracle"],      // optional, [] = paper 7
     "fuel":1000000, "step_budget":500000,  // optional quotas
     "mem_words":65536, "deadline_ms":2000, // optional quotas
     "inject":{"kind":"opcode","seed":7}}   // optional seeded fault
    v}

    Responses are [{"id":N, "ok":true, ...}] or [{"id":N, "ok":false,
    "error":{...}}] with the error object rendered by
    {!Pipeline_error.to_json} — [cause] and [code] are the stable
    discriminators, cause-specific fields ([retry_after_ms], ...) are
    structured, and clients never parse message text. *)

val max_frame : int
(** Largest accepted payload (1 MiB). *)

(** {2 Framing} *)

type frame_error =
  | Closed  (** clean EOF at a frame boundary *)
  | Truncated  (** EOF mid-frame *)
  | Too_large of int  (** declared length beyond {!max_frame} *)
  | Io of string

val read_frame : Unix.file_descr -> (string, frame_error) result
(** Blocking read of one frame.  Total: every outcome, including a
    torn header or oversized declaration, is a value. *)

val write_frame : Unix.file_descr -> string -> (unit, string) result
(** Write one frame (length prefix + payload).  [Error] on payloads
    above {!max_frame} or I/O failure. *)

(** {2 Requests} *)

type analyze = {
  a_workload : string option;  (** registry name *)
  a_source : string option;  (** ad-hoc Mini-C (wins over [a_workload]) *)
  a_machines : string list;  (** machine specs; [] = the paper seven *)
  a_fuel : int option;
  a_step_budget : int option;
  a_mem_words : int option;
  a_deadline_ms : int option;
  a_inject : (string * int) option;  (** fault kind name, seed *)
}

type request =
  | Ping of int
  | Stats of int
  | Metrics of int
  | Analyze of int * analyze

val decode_request : Jsonx.t -> (request, string) result
(** Shape-check a parsed payload.  The message names the offending
    field; the caller wraps it as a typed [Invalid_request]. *)

val request_id : Jsonx.t -> int option
(** Best-effort id extraction from any payload, so even a
    shape-rejected request gets its id echoed. *)

(** {2 Request rendering (client side)} *)

val ping_request : id:int -> string
val stats_request : id:int -> string
val metrics_request : id:int -> string

val analyze_request : id:int -> analyze -> string

val analyze :
  ?source:string ->
  ?machines:string list ->
  ?fuel:int ->
  ?step_budget:int ->
  ?mem_words:int ->
  ?deadline_ms:int ->
  ?inject:string * int ->
  ?workload:string ->
  unit ->
  analyze
(** Convenience constructor; defaults: no overrides, paper machines. *)

(** {2 Response rendering (server side)} *)

val ok_ping : id:int -> string

val ok_analyze : id:int -> cached:bool -> Harness.Request.reply -> string
(** [{"id":N,"ok":true,"cached":B,"steps":S,"status":...,
    "results":[{machine,counted,cycles,parallelism,...},...]}].
    Results render in spec order; [parallelism] with a fixed format so
    a cached reply is byte-identical to a fresh one. *)

val ok_stats :
  id:int ->
  queue_depth:int ->
  queue_limit:int ->
  in_flight:int ->
  connections:int ->
  requests:int ->
  shed:int ->
  cache_hits:int ->
  cache_misses:int ->
  draining:bool ->
  string

val ok_metrics : id:int -> body:string -> string
(** The Prometheus exposition text as one JSON string field. *)

val error_response : id:int option -> Pipeline_error.t -> string
(** [{"id":N|null,"ok":false,"error":{...}}]. *)

(** {2 Response decoding (client side)} *)

type response = {
  r_id : int option;
  r_ok : bool;
  r_body : Jsonx.t;  (** the whole response object *)
  r_error_cause : string option;  (** ["error"]["cause"] when not ok *)
  r_retry_after_ms : int option;  (** [Overloaded]'s structured hint *)
}

val decode_response : Jsonx.t -> response

let max_frame = 1 lsl 20

(* ------------------------------------------------------------------ *)
(* Framing *)

type frame_error =
  | Closed
  | Truncated
  | Too_large of int
  | Io of string

let rec read_into fd buf off len =
  if len = 0 then Ok ()
  else
    match Unix.read fd buf off len with
    | 0 -> Error (if off = 0 then Closed else Truncated)
    | n -> read_into fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      read_into fd buf off len
    | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))

let read_frame fd =
  let hdr = Bytes.create 4 in
  match read_into fd hdr 0 4 with
  | Error _ as e -> e
  | Ok () ->
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame then Error (Too_large len)
    else
      let body = Bytes.create len in
      (* a clean close after the header is still a torn frame *)
      (match read_into fd body 0 len with
      | Ok () -> Ok (Bytes.unsafe_to_string body)
      | Error Closed -> Error Truncated
      | Error _ as e -> e)

let rec write_all fd buf off len =
  if len = 0 then Ok ()
  else
    match Unix.write fd buf off len with
    | n -> write_all fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      write_all fd buf off len
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then
    Error (Printf.sprintf "frame of %d bytes exceeds max %d" len max_frame)
  else begin
    let msg = Bytes.create (4 + len) in
    Bytes.set_int32_be msg 0 (Int32.of_int len);
    Bytes.blit_string payload 0 msg 4 len;
    write_all fd msg 0 (4 + len)
  end

(* ------------------------------------------------------------------ *)
(* Requests *)

type analyze = {
  a_workload : string option;
  a_source : string option;
  a_machines : string list;
  a_fuel : int option;
  a_step_budget : int option;
  a_mem_words : int option;
  a_deadline_ms : int option;
  a_inject : (string * int) option;
}

type request =
  | Ping of int
  | Stats of int
  | Metrics of int
  | Analyze of int * analyze

let request_id json = Option.bind (Jsonx.member "id" json) Jsonx.to_int

let ( let* ) = Result.bind

let opt_field name conv json =
  match Jsonx.member name json with
  | None | Some Jsonx.Null -> Ok None
  | Some v -> (
    match conv v with
    | Some x -> Ok (Some x)
    | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let decode_analyze json =
  let* workload = opt_field "workload" Jsonx.to_str json in
  let* source = opt_field "source" Jsonx.to_str json in
  let* machines =
    match Jsonx.member "machines" json with
    | None | Some Jsonx.Null -> Ok []
    | Some (Jsonx.List items) ->
      let rec strings acc = function
        | [] -> Ok (List.rev acc)
        | Jsonx.Str s :: rest -> strings (s :: acc) rest
        | _ -> Error "field \"machines\" must be a list of strings"
      in
      strings [] items
    | Some _ -> Error "field \"machines\" must be a list of strings"
  in
  let* fuel = opt_field "fuel" Jsonx.to_int json in
  let* step_budget = opt_field "step_budget" Jsonx.to_int json in
  let* mem_words = opt_field "mem_words" Jsonx.to_int json in
  let* deadline_ms = opt_field "deadline_ms" Jsonx.to_int json in
  let* inject =
    match Jsonx.member "inject" json with
    | None | Some Jsonx.Null -> Ok None
    | Some obj -> (
      match
        ( Option.bind (Jsonx.member "kind" obj) Jsonx.to_str,
          Option.bind (Jsonx.member "seed" obj) Jsonx.to_int )
      with
      | Some kind, Some seed -> Ok (Some (kind, seed))
      | _ -> Error "field \"inject\" needs {\"kind\":string,\"seed\":int}")
  in
  if workload = None && source = None then
    Error "analyze needs a \"workload\" name or a \"source\" string"
  else
    Ok
      { a_workload = workload; a_source = source; a_machines = machines;
        a_fuel = fuel; a_step_budget = step_budget;
        a_mem_words = mem_words; a_deadline_ms = deadline_ms;
        a_inject = inject }

let decode_request json =
  match json with
  | Jsonx.Obj _ -> (
    let* id =
      match request_id json with
      | Some id -> Ok id
      | None -> Error "request needs an integer \"id\""
    in
    match Option.bind (Jsonx.member "op" json) Jsonx.to_str with
    | Some "ping" -> Ok (Ping id)
    | Some "stats" -> Ok (Stats id)
    | Some "metrics" -> Ok (Metrics id)
    | Some "analyze" ->
      let* a = decode_analyze json in
      Ok (Analyze (id, a))
    | Some op -> Error (Printf.sprintf "unknown op %S" op)
    | None -> Error "request needs a string \"op\"")
  | _ -> Error "request must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Request rendering *)

let simple_request op ~id =
  Jsonx.to_string (Jsonx.Obj [ ("id", Jsonx.Int id); ("op", Jsonx.Str op) ])

let ping_request = simple_request "ping"
let stats_request = simple_request "stats"
let metrics_request = simple_request "metrics"

let analyze ?source ?(machines = []) ?fuel ?step_budget ?mem_words
    ?deadline_ms ?inject ?workload () =
  { a_workload = workload; a_source = source; a_machines = machines;
    a_fuel = fuel; a_step_budget = step_budget; a_mem_words = mem_words;
    a_deadline_ms = deadline_ms; a_inject = inject }

let analyze_request ~id a =
  let opt name conv v fields =
    match v with None -> fields | Some x -> (name, conv x) :: fields
  in
  let fields =
    []
    |> opt "inject"
         (fun (kind, seed) ->
           Jsonx.Obj [ ("kind", Jsonx.Str kind); ("seed", Jsonx.Int seed) ])
         a.a_inject
    |> opt "deadline_ms" (fun i -> Jsonx.Int i) a.a_deadline_ms
    |> opt "mem_words" (fun i -> Jsonx.Int i) a.a_mem_words
    |> opt "step_budget" (fun i -> Jsonx.Int i) a.a_step_budget
    |> opt "fuel" (fun i -> Jsonx.Int i) a.a_fuel
  in
  let fields =
    match a.a_machines with
    | [] -> fields
    | ms ->
      ("machines", Jsonx.List (List.map (fun m -> Jsonx.Str m) ms))
      :: fields
  in
  let fields = opt "source" (fun s -> Jsonx.Str s) a.a_source fields in
  let fields = opt "workload" (fun s -> Jsonx.Str s) a.a_workload fields in
  Jsonx.to_string
    (Jsonx.Obj
       (("id", Jsonx.Int id) :: ("op", Jsonx.Str "analyze") :: fields))

(* ------------------------------------------------------------------ *)
(* Response rendering *)

let ok_ping ~id =
  Jsonx.to_string
    (Jsonx.Obj
       [ ("id", Jsonx.Int id); ("ok", Jsonx.Bool true);
         ("pong", Jsonx.Bool true) ])

let status_json = function
  | Vm.Exec.Halted v ->
    Jsonx.Obj [ ("kind", Jsonx.Str "halted"); ("value", Jsonx.Int v) ]
  | Vm.Exec.Out_of_fuel -> Jsonx.Obj [ ("kind", Jsonx.Str "out_of_fuel") ]
  | Vm.Exec.Fault f ->
    Jsonx.Obj
      [ ("kind", Jsonx.Str "fault");
        ("fault", Jsonx.Str (Pipeline_error.fault_kind_name f.f_kind));
        ("pc", Jsonx.Int f.f_pc); ("step", Jsonx.Int f.f_step) ]

let result_json (r : Ilp.Analyze.result) =
  Jsonx.Obj
    [ ("machine", Jsonx.Str r.machine); ("counted", Jsonx.Int r.counted);
      ("seq_cycles", Jsonx.Int r.seq_cycles);
      ("cycles", Jsonx.Int r.cycles);
      (* fixed format: cached and fresh replies must be byte-identical *)
      ("parallelism",
       Jsonx.Str (Printf.sprintf "%.4f" r.parallelism));
      ("dyn_branches", Jsonx.Int r.dyn_branches);
      ("mispredicts", Jsonx.Int r.mispredicts);
      ("completeness",
       Jsonx.Str (Pipeline_error.completeness_tag r.completeness)) ]

let ok_analyze ~id ~cached (reply : Harness.Request.reply) =
  Jsonx.to_string
    (Jsonx.Obj
       [ ("id", Jsonx.Int id); ("ok", Jsonx.Bool true);
         ("cached", Jsonx.Bool cached);
         ("steps", Jsonx.Int reply.r_steps);
         ("status", status_json reply.r_status);
         ("results", Jsonx.List (List.map result_json reply.r_results)) ])

let ok_stats ~id ~queue_depth ~queue_limit ~in_flight ~connections
    ~requests ~shed ~cache_hits ~cache_misses ~draining =
  Jsonx.to_string
    (Jsonx.Obj
       [ ("id", Jsonx.Int id); ("ok", Jsonx.Bool true);
         ("queue_depth", Jsonx.Int queue_depth);
         ("queue_limit", Jsonx.Int queue_limit);
         ("in_flight", Jsonx.Int in_flight);
         ("connections", Jsonx.Int connections);
         ("requests", Jsonx.Int requests); ("shed", Jsonx.Int shed);
         ("cache_hits", Jsonx.Int cache_hits);
         ("cache_misses", Jsonx.Int cache_misses);
         ("draining", Jsonx.Bool draining) ])

let ok_metrics ~id ~body =
  Jsonx.to_string
    (Jsonx.Obj
       [ ("id", Jsonx.Int id); ("ok", Jsonx.Bool true);
         ("metrics", Jsonx.Str body) ])

let error_response ~id err =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"id\":";
  (match id with
  | Some id -> Buffer.add_string buf (string_of_int id)
  | None -> Buffer.add_string buf "null");
  Buffer.add_string buf ",\"ok\":false,\"error\":";
  Pipeline_error.to_json buf err;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Response decoding *)

type response = {
  r_id : int option;
  r_ok : bool;
  r_body : Jsonx.t;
  r_error_cause : string option;
  r_retry_after_ms : int option;
}

let decode_response json =
  let error = Jsonx.member "error" json in
  { r_id = request_id json;
    r_ok =
      (match Option.bind (Jsonx.member "ok" json) Jsonx.to_bool with
      | Some b -> b
      | None -> false);
    r_body = json;
    r_error_cause =
      Option.bind error (fun e ->
          Option.bind (Jsonx.member "cause" e) Jsonx.to_str);
    r_retry_after_ms =
      Option.bind error (fun e ->
          Option.bind (Jsonx.member "retry_after_ms" e) Jsonx.to_int) }

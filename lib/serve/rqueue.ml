type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  q : 'a Queue.t;
  limit : int;
  mutable closed : bool;
}

let create ~limit =
  { mutex = Mutex.create ();
    nonempty = Condition.create ();
    q = Queue.create ();
    limit = max 1 limit;
    closed = false }

let limit t = t.limit

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.q in
  Mutex.unlock t.mutex;
  n

let push t x =
  Mutex.lock t.mutex;
  let r =
    if t.closed then `Closed
    else
      let depth = Queue.length t.q in
      if depth >= t.limit then `Overloaded depth
      else begin
        Queue.add x t.q;
        Condition.signal t.nonempty;
        `Ok (depth + 1)
      end
  in
  Mutex.unlock t.mutex;
  r

let pop t =
  Mutex.lock t.mutex;
  let rec go () =
    match Queue.take_opt t.q with
    | Some x -> Some x
    | None ->
      if t.closed then None
      else begin
        Condition.wait t.nonempty t.mutex;
        go ()
      end
  in
  let r = go () in
  Mutex.unlock t.mutex;
  r

let pop_opt t =
  Mutex.lock t.mutex;
  let r = Queue.take_opt t.q in
  Mutex.unlock t.mutex;
  r

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

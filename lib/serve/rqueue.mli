(** Bounded request queue — the daemon's backpressure point.

    Connection threads push admitted work; the dispatcher pops it onto
    the domain pool.  [push] never blocks: a full queue sheds the item
    ([`Overloaded] with the observed depth), which the server turns
    into the typed [Overloaded] error plus a retry hint — bounded
    memory under any request rate, by construction.  [pop] blocks
    until an item arrives or the queue is closed and drained. *)

type 'a t

val create : limit:int -> 'a t
(** [limit] is clamped to at least 1. *)

val limit : 'a t -> int

val length : 'a t -> int

val push : 'a t -> 'a -> [ `Ok of int | `Overloaded of int | `Closed ]
(** [`Ok depth] with the depth {e after} the push; [`Overloaded depth]
    when full (item dropped); [`Closed] after {!close} (item
    dropped — the server is draining). *)

val pop : 'a t -> 'a option
(** Blocking take.  [None] once the queue is closed {e and} empty:
    items pushed before [close] are still delivered (drain
    semantics). *)

val pop_opt : 'a t -> 'a option
(** Non-blocking take; [None] when presently empty. *)

val close : 'a t -> unit
(** Refuse further pushes and wake every blocked popper.  Idempotent. *)

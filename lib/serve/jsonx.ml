type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* UTF-8 validity: standard table-free scan rejecting overlongs,
   surrogates and > U+10FFFF. *)

let utf8_valid s =
  let n = String.length s in
  let byte i = Char.code (String.unsafe_get s i) in
  let cont i = i < n && byte i land 0xC0 = 0x80 in
  let rec go i =
    if i >= n then true
    else
      let b = byte i in
      if b < 0x80 then go (i + 1)
      else if b < 0xC2 then false (* continuation or overlong lead *)
      else if b < 0xE0 then cont (i + 1) && go (i + 2)
      else if b < 0xF0 then
        cont (i + 1) && cont (i + 2)
        && (b <> 0xE0 || byte (i + 1) >= 0xA0) (* overlong *)
        && (b <> 0xED || byte (i + 1) < 0xA0) (* surrogate *)
        && go (i + 3)
      else if b < 0xF5 then
        cont (i + 1) && cont (i + 2) && cont (i + 3)
        && (b <> 0xF0 || byte (i + 1) >= 0x90) (* overlong *)
        && (b <> 0xF4 || byte (i + 1) < 0x90) (* > U+10FFFF *)
        && go (i + 4)
      else false
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the string, one mutable position.
   Errors unwind through a private exception and come back as
   [Error]. *)

exception Err of int * string

let fail pos msg = raise (Err (pos, msg))

type state = { s : string; len : int; mutable pos : int }

let peek st = if st.pos < st.len then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st.pos (Printf.sprintf "expected '%c'" c)

let utf8_encode buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st.pos "invalid \\u escape"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= st.len then fail st.pos "unterminated string";
    let c = st.s.[st.pos] in
    advance st;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
      if st.pos >= st.len then fail st.pos "unterminated escape";
      let e = st.s.[st.pos] in
      advance st;
      match e with
      | '"' | '\\' | '/' ->
        Buffer.add_char buf e;
        go ()
      | 'b' -> Buffer.add_char buf '\b'; go ()
      | 'f' -> Buffer.add_char buf '\012'; go ()
      | 'n' -> Buffer.add_char buf '\n'; go ()
      | 'r' -> Buffer.add_char buf '\r'; go ()
      | 't' -> Buffer.add_char buf '\t'; go ()
      | 'u' ->
        if st.pos + 4 > st.len then fail st.pos "truncated \\u escape";
        let cp =
          (hex_digit st st.s.[st.pos] lsl 12)
          lor (hex_digit st st.s.[st.pos + 1] lsl 8)
          lor (hex_digit st st.s.[st.pos + 2] lsl 4)
          lor hex_digit st st.s.[st.pos + 3]
        in
        st.pos <- st.pos + 4;
        if cp >= 0xD800 && cp <= 0xDFFF then
          fail st.pos "surrogate \\u escape";
        utf8_encode buf cp;
        go ()
      | _ -> fail st.pos "invalid escape")
    | c when Char.code c < 0x20 -> fail st.pos "control byte in string"
    | c ->
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let consume_digits () =
    let had = ref false in
    let rec go () =
      match peek st with
      | Some ('0' .. '9') ->
        had := true;
        advance st;
        go ()
      | _ -> ()
    in
    go ();
    if not !had then fail st.pos "expected digit"
  in
  if peek st = Some '-' then advance st;
  consume_digits ();
  (match peek st with
  | Some '.' ->
    is_float := true;
    advance st;
    consume_digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    consume_digits ()
  | _ -> ());
  let text = String.sub st.s start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail start "invalid number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* integer overflow: fall back to float *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail start "invalid number")

let literal st word v =
  let n = String.length word in
  if st.pos + n <= st.len && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st.pos ("expected " ^ word)

let max_depth = 64

let rec parse_value st ~depth =
  if depth > max_depth then fail st.pos "nesting too deep";
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' -> parse_obj st ~depth
  | Some '[' -> parse_list st ~depth
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected '%c'" c)

and parse_obj st ~depth =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else
    let rec fields acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st ~depth:(depth + 1) in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        fields ((key, v) :: acc)
      | Some '}' ->
        advance st;
        Obj (List.rev ((key, v) :: acc))
      | _ -> fail st.pos "expected ',' or '}'"
    in
    fields []

and parse_list st ~depth =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else
    let rec items acc =
      let v = parse_value st ~depth:(depth + 1) in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        items (v :: acc)
      | Some ']' ->
        advance st;
        List (List.rev (v :: acc))
      | _ -> fail st.pos "expected ',' or ']'"
    in
    items []

let parse s =
  if not (utf8_valid s) then Error "payload is not valid UTF-8"
  else
    let st = { s; len = String.length s; pos = 0 } in
    match parse_value st ~depth:0 with
    | v ->
      skip_ws st;
      if st.pos < st.len then
        Error (Printf.sprintf "trailing bytes at offset %d" st.pos)
      else Ok v
    | exception Err (pos, msg) ->
      Error (Printf.sprintf "%s at offset %d" msg pos)

(* ------------------------------------------------------------------ *)
(* Printer *)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then
      (* shortest round-trip representation keeps goldens stable *)
      let s = Printf.sprintf "%.12g" f in
      Buffer.add_string buf s
    else Buffer.add_string buf "null"
  | Str s -> Pipeline_error.json_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Pipeline_error.json_string buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

(** Client side of the serve protocol: connect, frame, retry.

    {!call} is one request/response exchange on an open connection.
    {!call_retry} adds the resilience policy the soak and CI paths
    use: seeded-jitter exponential backoff on [Overloaded] responses
    (honouring the server's [retry_after_ms] hint) and on connection
    failures.  The jitter stream is {!Fault.Injector.Rng.derive} of
    [(seed, attempt)], so a retrying client is exactly reproducible —
    the same discipline the fault injector applies everywhere else. *)

type addr =
  | Unix_sock of string  (** socket path *)
  | Tcp of string * int  (** host, port *)

type t

val connect : addr -> (t, string) result

val close : t -> unit

val fresh_id : t -> int
(** Next request id on this connection (monotonic from 1). *)

val call : t -> string -> (Jsonx.t, string) result
(** Send one framed JSON payload and read the framed response.
    [Error] on I/O failure or an unparseable reply — a {e typed} error
    response is an [Ok] carrying the decoded object. *)

type outcome = {
  o_response : Protocol.response;
  o_attempts : int;  (** exchanges performed, >= 1 *)
}

val call_retry :
  ?attempts:int ->
  ?base_ms:int ->
  seed:int ->
  addr ->
  make_payload:(id:int -> string) ->
  (outcome, string) result
(** Open a fresh connection per attempt and exchange once.  Retries —
    up to [attempts] (default 5) — when the connection fails or the
    response is the typed [Overloaded] shed.  Backoff before attempt
    [k] is [retry_after_ms + base_ms * 2^k + jitter] where [jitter]
    is [Rng.derive ~seed ~index:k mod base_ms] ([base_ms] default
    10).  Returns the last response (shed included) once attempts are
    exhausted; [Error] only when every attempt failed at the I/O
    level. *)

type admission =
  | Admit_off
  | Admit_reject of float
  | Admit_budget of float

type config = {
  socket_path : string;
  tcp : (string * int) option;
  jobs : int;
  scheduler : Stdx.Pool.scheduler;
  queue_limit : int;
  cache_capacity : int;
  admission : admission;
  max_fuel : int;
  max_step_budget : int;
  default_deadline_ms : int option;
  idle_timeout_ms : int option;
  retry_after_ms : int;
  registry : Obs.Metrics.t;
  segment_steps : Harness.segmenting;
}

let config ?tcp ?jobs ?(scheduler = Stdx.Pool.default_scheduler)
    ?(queue_limit = 64) ?(cache_capacity = 32)
    ?(admission = Admit_off) ?(max_fuel = 100_000_000)
    ?(max_step_budget = 100_000_000) ?default_deadline_ms ?idle_timeout_ms
    ?(retry_after_ms = 50) ?(registry = Obs.Metrics.global)
    ?(segment_steps = `Off) ~socket_path () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Stdx.Pool.recommended_jobs ()
  in
  { socket_path; tcp; jobs; scheduler; queue_limit; cache_capacity;
    admission; max_fuel; max_step_budget; default_deadline_ms;
    idle_timeout_ms; retry_after_ms; registry; segment_steps }

(* One client connection.  [c_pending] counts replies still owed by
   pool jobs; the reader thread waits for it to reach zero before
   closing the fd, so a job never writes into a recycled descriptor. *)
type conn = {
  c_fd : Unix.file_descr;
  c_wmutex : Mutex.t;  (** serializes whole response frames *)
  c_pmutex : Mutex.t;
  c_done : Condition.t;
  mutable c_pending : int;
  c_ids : (int, unit) Hashtbl.t;  (** request ids seen (duplicate guard) *)
}

type job = unit -> unit

type t = {
  cfg : config;
  listen_unix : Unix.file_descr;
  listen_tcp : Unix.file_descr option;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  queue : job Rqueue.t;
  pool : Stdx.Pool.t;
  cache : Asm.Program.flat Cache.t;
  obs : Obs.Ctx.t;
  flag_draining : bool Atomic.t;
  in_flight : int Atomic.t;
  conns_mutex : Mutex.t;
  mutable conns : (conn * Thread.t) list;
  mutable acceptor_thread : Thread.t option;
  mutable dispatcher_thread : Thread.t option;
  mutable last_activity : float;
  stopped_mutex : Mutex.t;
  stopped_cond : Condition.t;
  mutable stopped : bool;
  m_requests : Obs.Metrics.counter;
  m_ok : Obs.Metrics.counter;
  m_errors : Obs.Metrics.counter;
  m_shed : Obs.Metrics.counter;
  m_rejected : Obs.Metrics.counter;
  m_deadline : Obs.Metrics.counter;
  m_queue_depth : Obs.Metrics.gauge;
  m_in_flight : Obs.Metrics.gauge;
  m_connections : Obs.Metrics.gauge;
  m_latency : Obs.Metrics.histogram;
}

let draining t = Atomic.get t.flag_draining

let now_ms () = Unix.gettimeofday () *. 1000.

(* ------------------------------------------------------------------ *)
(* Responses *)

let respond t conn payload =
  Mutex.lock conn.c_wmutex;
  let r = Protocol.write_frame conn.c_fd payload in
  Mutex.unlock conn.c_wmutex;
  (* a vanished peer is not a server problem; the reader thread will
     see the close and clean up *)
  ignore t;
  match r with Ok () -> () | Error _ -> ()

let count_error t (err : Pipeline_error.t) =
  Obs.Metrics.incr t.m_errors;
  match err.cause with
  | Deadline_exceeded _ -> Obs.Metrics.incr t.m_deadline
  | Rejected_by_estimate _ -> Obs.Metrics.incr t.m_rejected
  | _ -> ()

let respond_err t conn id err =
  count_error t err;
  respond t conn (Protocol.error_response ~id err)

let overloaded_error t ~workload ~depth =
  Pipeline_error.v ?workload Execute
    (Overloaded
       { depth; limit = t.cfg.queue_limit;
         retry_after_ms = t.cfg.retry_after_ms })

let shed t conn ~id ~workload ~depth =
  Obs.Metrics.incr t.m_shed;
  respond_err t conn (Some id) (overloaded_error t ~workload ~depth)

(* ------------------------------------------------------------------ *)
(* Request preparation (runs in the connection thread): resolve names,
   enforce quotas, hit the compile cache, run admission control.  The
   result is everything the pool job needs — or a typed error. *)

type admitted = {
  ad_workload : Workloads.Registry.t;
  ad_flat : Asm.Program.flat;
  ad_cached : bool;
  ad_specs : Harness.spec list;
  ad_fuel : int option;
  ad_step_budget : int option;
  ad_mem_words : int option;
  ad_deadline_ms : int option;
  ad_inject : (Fault.Injector.kind * int) option;
}

let ( let* ) = Result.bind

let quota ~workload ~what ~limit v =
  match v with
  | Some requested when requested > limit ->
    Error
      (Pipeline_error.v ~workload Execute
         (Budget_exceeded { what; limit; requested }))
  | v -> Ok v

let adhoc_workload ~max_fuel source =
  let digest = Digest.to_hex (Digest.string source) in
  { Workloads.Registry.name = "adhoc:" ^ String.sub digest 0 12;
    description = "ad hoc source over the wire"; lang = "C";
    numeric = false; source; fuel = min 10_000_000 max_fuel;
    expected_result = None }

(* The admission work proxy: M (the max breaker-free run) times the
   largest statically bounded loop trip count.  Unbounded M prices as
   [infinity]. *)
let work_proxy (est : Harness.estimated) =
  let max_trip =
    List.fold_left
      (fun acc (lf : Cfg.Estimate.loop_facts) ->
        match lf.lf_trip with Some tr -> max acc tr | None -> acc)
      1 est.e_est.Cfg.Estimate.loops
  in
  match est.e_est.Cfg.Estimate.max_run with
  | Cfg.Estimate.Unbounded -> infinity
  | Cfg.Estimate.Finite m -> float_of_int m *. float_of_int max_trip

let admit t ~machines ~(w : Workloads.Registry.t) ~flat ~fuel
    ~step_budget =
  match t.cfg.admission with
  | Admit_off -> Ok (fuel, step_budget)
  | Admit_reject ceiling | Admit_budget ceiling -> (
    let* est =
      Harness.estimate_flat ~machines ~workload:w.name flat
    in
    let estimate = work_proxy est in
    if estimate <= ceiling then Ok (fuel, step_budget)
    else
      match t.cfg.admission with
      | Admit_reject _ ->
        Error
          (Pipeline_error.v ~workload:w.name Analyze
             (Rejected_by_estimate { spec = w.name; estimate; ceiling }))
      | _ ->
        (* down-budget: the request runs, but its fuel and analysis
           steps are clamped to the ceiling *)
        let cap = int_of_float ceiling in
        let clamp = function
          | Some v -> Some (min v cap)
          | None -> Some cap
        in
        Ok (clamp fuel, clamp step_budget))

let prepare t (a : Protocol.analyze) =
  let* machines = Ilp.Machine.of_specs a.a_machines in
  let* w =
    match a.a_source with
    | Some src -> Ok (adhoc_workload ~max_fuel:t.cfg.max_fuel src)
    | None -> (
      match a.a_workload with
      | Some name -> Workloads.Registry.find_result name
      | None ->
        Error
          (Pipeline_error.v Lookup
             (Invalid_request "analyze needs a workload or a source")))
  in
  let workload = w.Workloads.Registry.name in
  let* fuel =
    quota ~workload ~what:"fuel" ~limit:t.cfg.max_fuel a.a_fuel
  in
  let* step_budget =
    quota ~workload ~what:"step budget" ~limit:t.cfg.max_step_budget
      a.a_step_budget
  in
  let* deadline_ms =
    match a.a_deadline_ms with
    | Some ms when ms <= 0 ->
      Error
        (Pipeline_error.v ~workload Lookup
           (Invalid_request "deadline_ms must be positive"))
    | Some _ as d -> Ok d
    | None -> Ok t.cfg.default_deadline_ms
  in
  let* inject =
    match a.a_inject with
    | None -> Ok None
    | Some (kname, seed) -> (
      match Fault.Injector.kind_of_string kname with
      | Some k -> Ok (Some (k, seed))
      | None ->
        Error
          (Pipeline_error.v ~workload Lookup
             (Unknown_fault
                { name = kname;
                  hint =
                    Pipeline_error.suggest kname Fault.Injector.kind_names })))
  in
  let key = Digest.to_hex (Digest.string w.Workloads.Registry.source) in
  let* flat, cached =
    match Cache.find t.cache key with
    | Some flat -> Ok (flat, true)
    | None ->
      let* flat = Workloads.Registry.compile_result w in
      Cache.add t.cache key flat;
      Ok (flat, false)
  in
  let* fuel, step_budget =
    admit t ~machines ~w ~flat ~fuel ~step_budget
  in
  Ok
    { ad_workload = w; ad_flat = flat; ad_cached = cached;
      ad_specs = List.map (fun m -> Harness.spec m) machines;
      ad_fuel = fuel; ad_step_budget = step_budget;
      ad_mem_words = a.a_mem_words; ad_deadline_ms = deadline_ms;
      ad_inject = inject }

(* ------------------------------------------------------------------ *)
(* Execution (runs on a pool domain) *)

let conn_job_done conn =
  Mutex.lock conn.c_pmutex;
  conn.c_pending <- conn.c_pending - 1;
  if conn.c_pending = 0 then Condition.broadcast conn.c_done;
  Mutex.unlock conn.c_pmutex

let handle_analyze t conn ~id ~started (a : Protocol.analyze) =
  match prepare t a with
  | Error err -> respond_err t conn (Some id) err
  | Ok ad ->
    let job () =
      let payload =
        (* total by construction (Request.exec is guarded), but the
           dispatcher must survive even a bug here: crash-only means
           the barrier is belt and braces *)
        try
          match
            (* The request already occupies a pool slot; handing it the
               pool lets segmented analysis fan its decode/stitch tasks
               out to idle domains (nested submissions are safe — pool
               awaiters help drain the queue). *)
            Harness.Request.exec ~obs:t.obs ~flat:ad.ad_flat
              ?fuel:ad.ad_fuel ?step_budget:ad.ad_step_budget
              ?mem_words:ad.ad_mem_words ?deadline_ms:ad.ad_deadline_ms
              ?inject:ad.ad_inject ~pool:t.pool
              ~segment_steps:t.cfg.segment_steps ~specs:ad.ad_specs
              ad.ad_workload
          with
          | Ok reply ->
            Obs.Metrics.incr t.m_ok;
            Protocol.ok_analyze ~id ~cached:ad.ad_cached reply
          | Error err ->
            count_error t err;
            Protocol.error_response ~id:(Some id) err
        with e ->
          let err =
            Pipeline_error.v
              ~workload:ad.ad_workload.Workloads.Registry.name Execute
              (Internal (Printexc.to_string e))
          in
          count_error t err;
          Protocol.error_response ~id:(Some id) err
      in
      Obs.Metrics.observe t.m_latency
        (int_of_float (now_ms () -. started));
      respond t conn payload;
      Atomic.decr t.in_flight;
      Obs.Metrics.set t.m_in_flight (Atomic.get t.in_flight);
      conn_job_done conn
    in
    let workload = Some ad.ad_workload.Workloads.Registry.name in
    if draining t then
      shed t conn ~id ~workload ~depth:(Rqueue.length t.queue)
    else begin
      (* claim the reply before the push: the job may finish on another
         domain before this thread runs again *)
      Mutex.lock conn.c_pmutex;
      conn.c_pending <- conn.c_pending + 1;
      Mutex.unlock conn.c_pmutex;
      Atomic.incr t.in_flight;
      match Rqueue.push t.queue job with
      | `Ok depth ->
        Obs.Metrics.set t.m_queue_depth depth;
        Obs.Metrics.set t.m_in_flight (Atomic.get t.in_flight)
      | (`Overloaded _ | `Closed) as r ->
        Atomic.decr t.in_flight;
        conn_job_done conn;
        let depth =
          match r with
          | `Overloaded d -> d
          | `Closed -> Rqueue.length t.queue
        in
        shed t conn ~id ~workload ~depth
    end

(* ------------------------------------------------------------------ *)
(* Per-frame processing (connection thread) *)

let handle_stats t conn ~id =
  let cs = Cache.stats t.cache in
  Mutex.lock t.conns_mutex;
  let connections = List.length t.conns in
  Mutex.unlock t.conns_mutex;
  Obs.Metrics.incr t.m_ok;
  respond t conn
    (Protocol.ok_stats ~id ~queue_depth:(Rqueue.length t.queue)
       ~queue_limit:t.cfg.queue_limit ~in_flight:(Atomic.get t.in_flight)
       ~connections
       ~requests:(Obs.Metrics.counter_value t.m_requests)
       ~shed:(Obs.Metrics.counter_value t.m_shed) ~cache_hits:cs.hits
       ~cache_misses:cs.misses ~draining:(draining t))

let handle_metrics t conn ~id =
  (* refresh the live gauges right before the scrape; pool gauges go
     through the one named registration in Obs.Probe *)
  Obs.Metrics.set t.m_queue_depth (Rqueue.length t.queue);
  Obs.Metrics.set t.m_in_flight (Atomic.get t.in_flight);
  Obs.Probe.pool_stats t.cfg.registry (Stdx.Pool.stats t.pool);
  let buf = Buffer.create 4096 in
  Obs.Export.prometheus buf (Obs.Metrics.snapshot t.cfg.registry);
  Obs.Metrics.incr t.m_ok;
  respond t conn (Protocol.ok_metrics ~id ~body:(Buffer.contents buf))

let invalid stage msg = Pipeline_error.v stage (Invalid_request msg)

(* Returns [false] when the connection must close (frame desync). *)
let process t conn payload =
  Obs.Metrics.incr t.m_requests;
  let started = now_ms () in
  match Jsonx.parse payload with
  | Error msg ->
    respond_err t conn None
      (invalid Lookup ("malformed payload: " ^ msg));
    true
  | Ok json -> (
    let rid = Protocol.request_id json in
    match Protocol.decode_request json with
    | Error msg ->
      respond_err t conn rid (invalid Lookup msg);
      true
    | Ok req ->
      let id =
        match req with
        | Ping id | Stats id | Metrics id | Analyze (id, _) -> id
      in
      if Hashtbl.mem conn.c_ids id then begin
        respond_err t conn (Some id)
          (invalid Lookup (Printf.sprintf "duplicate request id %d" id));
        true
      end
      else begin
        Hashtbl.add conn.c_ids id ();
        (match req with
        | Ping id ->
          Obs.Metrics.incr t.m_ok;
          respond t conn (Protocol.ok_ping ~id)
        | Stats id -> handle_stats t conn ~id
        | Metrics id -> handle_metrics t conn ~id
        | Analyze (id, a) -> handle_analyze t conn ~id ~started a);
        true
      end)

let deregister t conn =
  Mutex.lock t.conns_mutex;
  t.conns <- List.filter (fun (c, _) -> c != conn) t.conns;
  Obs.Metrics.set t.m_connections (List.length t.conns);
  Mutex.unlock t.conns_mutex

let conn_loop t conn =
  let rec loop () =
    match Protocol.read_frame conn.c_fd with
    | Error (Closed | Truncated | Io _) -> ()
    | Error (Too_large n) ->
      Obs.Metrics.incr t.m_requests;
      respond_err t conn None
        (invalid Lookup
           (Printf.sprintf "frame of %d bytes exceeds max %d" n
              Protocol.max_frame))
      (* the stream position is unknowable past an oversized header:
         close rather than misparse every later frame *)
    | Ok payload ->
      t.last_activity <- Unix.gettimeofday ();
      if process t conn payload then loop ()
  in
  loop ();
  (* every owed reply lands before the fd is recycled *)
  Mutex.lock conn.c_pmutex;
  while conn.c_pending > 0 do
    Condition.wait conn.c_done conn.c_pmutex
  done;
  Mutex.unlock conn.c_pmutex;
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
  deregister t conn

let spawn_conn t fd =
  let conn =
    { c_fd = fd; c_wmutex = Mutex.create (); c_pmutex = Mutex.create ();
      c_done = Condition.create (); c_pending = 0;
      c_ids = Hashtbl.create 16 }
  in
  Mutex.lock t.conns_mutex;
  let th = Thread.create (fun () -> conn_loop t conn) () in
  t.conns <- (conn, th) :: t.conns;
  Obs.Metrics.set t.m_connections (List.length t.conns);
  Mutex.unlock t.conns_mutex

(* ------------------------------------------------------------------ *)
(* Dispatcher: drain the bounded queue in batches onto the domain
   pool.  [map_list] is a barrier per batch, which is fine: batches
   are at most [jobs] wide, so a full pool is busy end to end and a
   straggler holds back at most one batch boundary (requests carry
   their own deadlines). *)

let rec dispatch t =
  match Rqueue.pop t.queue with
  | None -> ()
  | Some first ->
    let rec take acc n =
      if n = 0 then List.rev acc
      else
        match Rqueue.pop_opt t.queue with
        | Some j -> take (j :: acc) (n - 1)
        | None -> List.rev acc
    in
    let batch = take [ first ] (t.cfg.jobs - 1) in
    Obs.Metrics.set t.m_queue_depth (Rqueue.length t.queue);
    ignore (Stdx.Pool.map_list t.pool (fun j -> j ()) batch);
    dispatch t

(* ------------------------------------------------------------------ *)
(* Acceptor + lifecycle *)

let idle_expired t =
  match t.cfg.idle_timeout_ms with
  | None -> false
  | Some ms ->
    Mutex.lock t.conns_mutex;
    let no_conns = t.conns = [] in
    Mutex.unlock t.conns_mutex;
    no_conns
    && Rqueue.length t.queue = 0
    && Atomic.get t.in_flight = 0
    && (Unix.gettimeofday () -. t.last_activity) *. 1000.
       > float_of_int ms

let drain_wake_pipe t =
  let buf = Bytes.create 64 in
  match Unix.read t.wake_r buf 0 64 with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let teardown t =
  (try Unix.close t.listen_unix with Unix.Unix_error _ -> ());
  Option.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listen_tcp;
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  (* queued work still drains; new pushes come back [`Closed] and are
     answered [Overloaded] *)
  Rqueue.close t.queue;
  Option.iter Thread.join t.dispatcher_thread;
  (* all jobs are done; break the readers and collect the threads *)
  Mutex.lock t.conns_mutex;
  let conns = t.conns in
  Mutex.unlock t.conns_mutex;
  List.iter
    (fun (c, _) ->
      try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (_, th) -> Thread.join th) conns;
  Stdx.Pool.shutdown t.pool;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  Mutex.lock t.stopped_mutex;
  t.stopped <- true;
  Condition.broadcast t.stopped_cond;
  Mutex.unlock t.stopped_mutex

let acceptor t =
  let listeners =
    t.listen_unix :: Option.to_list t.listen_tcp
  in
  let rec loop () =
    if draining t then ()
    else begin
      (match Unix.select (t.wake_r :: listeners) [] [] 0.25 with
      | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd == t.wake_r then drain_wake_pipe t
            else
              match Unix.accept fd with
              | cfd, _ ->
                t.last_activity <- Unix.gettimeofday ();
                spawn_conn t cfd
              | exception Unix.Unix_error _ -> ())
          ready
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      if idle_expired t then Atomic.set t.flag_draining true;
      loop ()
    end
  in
  loop ();
  teardown t

let drain t =
  if not (Atomic.exchange t.flag_draining true) then
    try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
    with Unix.Unix_error _ -> ()

let wait t =
  Mutex.lock t.stopped_mutex;
  while not t.stopped do
    Condition.wait t.stopped_cond t.stopped_mutex
  done;
  Mutex.unlock t.stopped_mutex;
  Option.iter Thread.join t.acceptor_thread

let stop t =
  drain t;
  wait t

let start cfg =
  (* a dead peer mid-write must be an [EPIPE] result, not process
     death *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match
    let u = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
       Unix.bind u (Unix.ADDR_UNIX cfg.socket_path);
       Unix.listen u 64
     with e ->
       (try Unix.close u with Unix.Unix_error _ -> ());
       raise e);
    let tcp =
      Option.map
        (fun (host, port) ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          try
            Unix.setsockopt fd Unix.SO_REUSEADDR true;
            Unix.bind fd
              (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
            Unix.listen fd 64;
            fd
          with e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            (try Unix.close u with Unix.Unix_error _ -> ());
            raise e)
        cfg.tcp
    in
    let wake_r, wake_w = Unix.pipe () in
    let r = cfg.registry in
    let c name help = Obs.Metrics.counter r ~help name in
    let g name help = Obs.Metrics.gauge r ~help name in
    let t =
      { cfg;
        listen_unix = u;
        listen_tcp = tcp;
        wake_r;
        wake_w;
        queue = Rqueue.create ~limit:cfg.queue_limit;
        pool = Stdx.Pool.create ~scheduler:cfg.scheduler ~jobs:cfg.jobs ();
        cache = Cache.create ~capacity:cfg.cache_capacity;
        obs = Obs.Ctx.create ~registry:r ();
        flag_draining = Atomic.make false;
        in_flight = Atomic.make 0;
        conns_mutex = Mutex.create ();
        conns = [];
        acceptor_thread = None;
        dispatcher_thread = None;
        last_activity = Unix.gettimeofday ();
        stopped_mutex = Mutex.create ();
        stopped_cond = Condition.create ();
        stopped = false;
        m_requests = c "serve_requests_total" "framed requests received";
        m_ok = c "serve_responses_ok_total" "successful responses";
        m_errors = c "serve_responses_error_total" "typed error responses";
        m_shed = c "serve_shed_total" "requests shed by backpressure";
        m_rejected =
          c "serve_admission_rejected_total"
            "requests refused by the static estimate";
        m_deadline =
          c "serve_deadline_exceeded_total"
            "requests that outran their wall-clock deadline";
        m_queue_depth = g "serve_queue_depth" "request queue depth (live)";
        m_in_flight = g "serve_in_flight" "requests executing (live)";
        m_connections = g "serve_connections" "open connections (live)";
        m_latency =
          Obs.Metrics.histogram r
            ~buckets:[| 1; 5; 10; 25; 50; 100; 250; 500; 1000; 5000 |]
            ~help:"request latency (ms)" "serve_request_ms" }
    in
    Stdx.Pool.set_probe t.pool (Some (Obs.Probe.pool r));
    t.dispatcher_thread <- Some (Thread.create dispatch t);
    t.acceptor_thread <- Some (Thread.create acceptor t);
    t
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, fn, arg) ->
    Error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))

type 'a entry = {
  value : 'a;
  mutable stamp : int;
}

type 'a t = {
  mutex : Mutex.t;
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
}

let create ~capacity =
  let capacity = max 1 capacity in
  { mutex = Mutex.create ();
    capacity;
    tbl = Hashtbl.create (2 * capacity);
    tick = 0;
    hits = 0;
    misses = 0 }

let find t key =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
      t.tick <- t.tick + 1;
      e.stamp <- t.tick;
      t.hits <- t.hits + 1;
      Some e.value
    | None ->
      t.misses <- t.misses + 1;
      None
  in
  Mutex.unlock t.mutex;
  r

let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, s) when s <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.tbl;
  match !victim with
  | Some (k, _) -> Hashtbl.remove t.tbl k
  | None -> ()

let add t key value =
  Mutex.lock t.mutex;
  t.tick <- t.tick + 1;
  (match Hashtbl.find_opt t.tbl key with
  | Some e -> e.stamp <- t.tick
  | None ->
    if Hashtbl.length t.tbl >= t.capacity then evict_oldest t;
    Hashtbl.replace t.tbl key { value; stamp = t.tick });
  Mutex.unlock t.mutex

let stats t =
  Mutex.lock t.mutex;
  let s =
    { size = Hashtbl.length t.tbl;
      capacity = t.capacity;
      hits = t.hits;
      misses = t.misses }
  in
  Mutex.unlock t.mutex;
  s

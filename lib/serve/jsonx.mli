(** Minimal JSON for the wire protocol.

    The container carries no JSON library, and the protocol needs very
    little: parse a request object, render a response.  So this is a
    deliberately small recursive-descent parser plus a printer, total
    over arbitrary bytes — a malformed or non-UTF-8 payload yields
    [Error msg], never an exception — which is exactly the contract the
    wire fuzzer ({!Wire_fuzz}) hammers on.

    Numbers: integers parse as [Int]; anything with a fraction or
    exponent as [Float].  Strings must be valid UTF-8 after unescaping
    ([\uXXXX] escapes cover the BMP only — surrogate pairs are
    rejected, which the protocol never needs).  The printer emits
    non-finite floats as [null] (JSON has no spelling for them; typed
    fields that can be unbounded render themselves explicitly). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Total: any input yields a value or a one-line error message with a
    byte offset.  Trailing non-whitespace after the value is an
    error. *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

val utf8_valid : string -> bool
(** Whole-string UTF-8 validity (the framing layer rejects non-UTF-8
    payloads before parsing). *)

(** {2 Accessors} — all total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] for absent fields and non-objects. *)

val to_int : t -> int option

val to_float : t -> float option
(** Accepts [Int] too. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

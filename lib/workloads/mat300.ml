(* matrix300 analogue: dense double-precision matrix multiplication.

   Repeated N x N matrix products (plain and transposed access
   patterns, as matrix300 exercised different strides), entirely
   data-independent control flow — the paper's example of a program
   whose parallelism explodes once induction-variable dependences are
   unrolled away. *)

let name = "matrix300"
let description = "dense FP matrix multiply (several access patterns)"
let lang = "FORTRAN"
let numeric = true
let fuel = 16_000_000

(* Filled in from a reference run; guards VM determinism in tests. *)
let expected_result : int option = Some 6_191

let source =
  {|
// mat300: dense matrix multiply, plain and transposed variants.

int N;

float a[1296];   // 36 x 36
float b[1296];
float c[1296];
float bt[1296];

void init(void) {
  int i;
  int j;
  int n = N;
  for (i = 0; i < n; i = i + 1) {
    int row = i * n;
    for (j = 0; j < n; j = j + 1) {
      a[row + j] = (i * 3 + j * 7) % 13 - 6.0;
      b[row + j] = (i * 5 + j * 11) % 17 - 8.0;
    }
  }
}

void transpose_b(void) {
  int i;
  int j;
  int n = N;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      bt[j * n + i] = b[i * n + j];
    }
  }
}

// c = a * b, row-major inner product.
void matmul_ij(void) {
  int i;
  int j;
  int k;
  int n = N;
  for (i = 0; i < n; i = i + 1) {
    int row = i * n;
    for (j = 0; j < n; j = j + 1) {
      float sum = 0.0;
      for (k = 0; k < n; k = k + 1) {
        sum = sum + a[row + k] * b[k * n + j];
      }
      c[row + j] = sum;
    }
  }
}

// c = a * b using the transposed copy (unit-stride inner loop).
void matmul_trans(void) {
  int i;
  int j;
  int k;
  int n = N;
  for (i = 0; i < n; i = i + 1) {
    int row = i * n;
    for (j = 0; j < n; j = j + 1) {
      float sum = 0.0;
      int trow = j * n;
      for (k = 0; k < n; k = k + 1) {
        sum = sum + a[row + k] * bt[trow + k];
      }
      c[row + j] = sum;
    }
  }
}

// saxpy-style update: b = b + 0.5 * c.
void saxpy_update(void) {
  int i;
  int nn = N * N;
  for (i = 0; i < nn; i = i + 1) {
    b[i] = b[i] + 0.5 * c[i];
  }
}

int main(void) {
  int i;
  float trace = 0.0;
  float norm = 0.0;
  N = 36;
  init();
  matmul_ij();
  saxpy_update();
  transpose_b();
  matmul_trans();
  {
  int n = N;
  int nn = N * N;
  for (i = 0; i < n; i = i + 1) {
    trace = trace + c[i * n + i];
  }
  for (i = 0; i < nn; i = i + 4) {
    float v = c[i];
    if (v < 0.0) v = -v;
    norm = norm + v;
  }
  }
  return trace * 10.0 + norm / 100.0;
}
|}

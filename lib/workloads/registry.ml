type t = {
  name : string;
  description : string;
  lang : string;
  numeric : bool;
  source : string;
  fuel : int;
  expected_result : int option;
}

let of_module ~name ~description ~lang ~numeric ~source ~fuel
    ~expected_result =
  { name; description; lang; numeric; source; fuel; expected_result }

let all =
  [ of_module ~name:Awklite.name ~description:Awklite.description
      ~lang:Awklite.lang ~numeric:Awklite.numeric ~source:Awklite.source
      ~fuel:Awklite.fuel ~expected_result:Awklite.expected_result;
    of_module ~name:Ccomlite.name ~description:Ccomlite.description
      ~lang:Ccomlite.lang ~numeric:Ccomlite.numeric ~source:Ccomlite.source
      ~fuel:Ccomlite.fuel ~expected_result:Ccomlite.expected_result;
    of_module ~name:Eqnlite.name ~description:Eqnlite.description
      ~lang:Eqnlite.lang ~numeric:Eqnlite.numeric ~source:Eqnlite.source
      ~fuel:Eqnlite.fuel ~expected_result:Eqnlite.expected_result;
    of_module ~name:Esprlite.name ~description:Esprlite.description
      ~lang:Esprlite.lang ~numeric:Esprlite.numeric ~source:Esprlite.source
      ~fuel:Esprlite.fuel ~expected_result:Esprlite.expected_result;
    of_module ~name:Gcclite.name ~description:Gcclite.description
      ~lang:Gcclite.lang ~numeric:Gcclite.numeric ~source:Gcclite.source
      ~fuel:Gcclite.fuel ~expected_result:Gcclite.expected_result;
    of_module ~name:Irsimlite.name ~description:Irsimlite.description
      ~lang:Irsimlite.lang ~numeric:Irsimlite.numeric
      ~source:Irsimlite.source ~fuel:Irsimlite.fuel
      ~expected_result:Irsimlite.expected_result;
    of_module ~name:Texlite.name ~description:Texlite.description
      ~lang:Texlite.lang ~numeric:Texlite.numeric ~source:Texlite.source
      ~fuel:Texlite.fuel ~expected_result:Texlite.expected_result;
    of_module ~name:Mat300.name ~description:Mat300.description
      ~lang:Mat300.lang ~numeric:Mat300.numeric ~source:Mat300.source
      ~fuel:Mat300.fuel ~expected_result:Mat300.expected_result;
    of_module ~name:Spicelite.name ~description:Spicelite.description
      ~lang:Spicelite.lang ~numeric:Spicelite.numeric
      ~source:Spicelite.source ~fuel:Spicelite.fuel
      ~expected_result:Spicelite.expected_result;
    of_module ~name:Tomlite.name ~description:Tomlite.description
      ~lang:Tomlite.lang ~numeric:Tomlite.numeric ~source:Tomlite.source
      ~fuel:Tomlite.fuel ~expected_result:Tomlite.expected_result ]

let non_numeric = List.filter (fun w -> not w.numeric) all
let numeric = List.filter (fun w -> w.numeric) all

let find name = List.find (fun w -> w.name = name) all

let names = List.map (fun w -> w.name) all

let find_result name =
  match List.find_opt (fun w -> w.name = name) all with
  | Some w -> Ok w
  | None ->
    Error
      (Pipeline_error.v Lookup
         (Unknown_workload { name; hint = Pipeline_error.suggest name names }))

let compile ?options w = Codegen.Compile.compile_flat ?options w.source

(* Every exception the Mini-C front end or the linker can raise, folded
   into one typed Compile_error so a bad source degrades to a structured
   result instead of aborting a sweep. *)
let compile_result ?options w =
  let err msg =
    Error (Pipeline_error.v ~workload:w.name Compile (Compile_error msg))
  in
  match compile ?options w with
  | flat -> Ok flat
  | exception Minic.Lexer.Error (msg, line) ->
    err (Printf.sprintf "line %d: lexical error: %s" line msg)
  | exception Minic.Parser.Error (msg, line) ->
    err (Printf.sprintf "line %d: syntax error: %s" line msg)
  | exception Minic.Sema.Error (msg, line) ->
    err (Printf.sprintf "line %d: %s" line msg)
  | exception Codegen.Compile.Error msg -> err msg
  | exception Asm.Program.Link_error msg -> err ("link error: " ^ msg)

let run ?options ?fuel ?record ?sink w =
  let fuel = match fuel with Some f -> f | None -> w.fuel in
  let flat = compile ?options w in
  let outcome = Vm.Exec.run ~fuel ?record ?sink flat in
  (flat, outcome)

(* ccom analogue: a compiler front end.

   Tokenizes and parses (recursive descent) a stream of expression
   statements, emits stack code, runs a peephole constant folder over
   the emitted code, and finally interprets it with a switch-dispatched
   stack machine (a computed jump, like a real front end's automaton
   dispatch).  Deeply recursive and branchy, like ccom. *)

let name = "ccom"
let description = "compiler front end (parse, fold, interpret stack code)"
let lang = "C"
let numeric = false
let fuel = 16_000_000
(* Filled in from a reference run; guards VM determinism in tests. *)
let expected_result : int option = Some 193_575_718

let source =
  {|
// ccomlite: expression compiler and stack interpreter.

int program[] =
  "1+2*(3-4/2); (10*x-y)*(z+4); x*x+y*y-z*z;"
  "((1+2)*(3+4)-(5+6))*w; -x+-y--z; 2*3*4*5*6-7*8*9;"
  "x%(y+1)+z%(w+1); (x<<2)+(y>>1); (x&y)|(z^w);"
  "1000/(x+1)/(y+1); ((((x)))); 5; -5; x-1-2-3-4-5;"
  "(x+y)*(x-y); w*w*w; 1+(2+(3+(4+(5+(6+(7+(8+9)))))));"
  ;

// Variable values for x, y, z, w.
int vars[4];

// Token stream.
int tk_kind[512];   // 0=num 1=var 2..9 operators, 10 lparen 11 rparen 12 semi
int tk_val[512];
int ntok;

// Emitted stack code: opcode + operand pairs.
int em_op[1024];    // 0=PUSH 1=LOAD 2=ADD 3=SUB 4=MUL 5=DIV 6=REM 7=SHL 8=SHR 9=AND 10=OR 11=XOR 12=NEG
int em_arg[1024];
int nem;

int pos;            // parser cursor into the token stream

int stack[256];

void tokenize(void) {
  int i = 0;
  int c;
  ntok = 0;
  while (program[i] != 0) {
    c = program[i];
    if (c >= '0' && c <= '9') {
      int v = 0;
      while (program[i] >= '0' && program[i] <= '9') {
        v = v * 10 + (program[i] - '0');
        i = i + 1;
      }
      tk_kind[ntok] = 0;
      tk_val[ntok] = v;
      ntok = ntok + 1;
      continue;
    }
    if (c == 'x' || c == 'y' || c == 'z' || c == 'w') {
      tk_kind[ntok] = 1;
      if (c == 'x') tk_val[ntok] = 0;
      if (c == 'y') tk_val[ntok] = 1;
      if (c == 'z') tk_val[ntok] = 2;
      if (c == 'w') tk_val[ntok] = 3;
      ntok = ntok + 1;
      i = i + 1;
      continue;
    }
    if (c == '+') { tk_kind[ntok] = 2; ntok = ntok + 1; }
    if (c == '-') { tk_kind[ntok] = 3; ntok = ntok + 1; }
    if (c == '*') { tk_kind[ntok] = 4; ntok = ntok + 1; }
    if (c == '/') { tk_kind[ntok] = 5; ntok = ntok + 1; }
    if (c == '%') { tk_kind[ntok] = 6; ntok = ntok + 1; }
    if (c == '<') { tk_kind[ntok] = 7; ntok = ntok + 1; i = i + 1; }
    if (c == '>') { tk_kind[ntok] = 8; ntok = ntok + 1; i = i + 1; }
    if (c == '&') { tk_kind[ntok] = 9; ntok = ntok + 1; }
    if (c == '|') { tk_kind[ntok] = 10; ntok = ntok + 1; }
    if (c == '^') { tk_kind[ntok] = 11; ntok = ntok + 1; }
    if (c == '(') { tk_kind[ntok] = 12; ntok = ntok + 1; }
    if (c == ')') { tk_kind[ntok] = 13; ntok = ntok + 1; }
    if (c == ';') { tk_kind[ntok] = 14; ntok = ntok + 1; }
    i = i + 1;
  }
  tk_kind[ntok] = 15;  // EOF
}

void emit(int op, int arg) {
  em_op[nem] = op;
  em_arg[nem] = arg;
  nem = nem + 1;
}

// Recursive-descent parser emitting postfix code.  Mini-C resolves
// function names after parsing the whole unit, so the mutual recursion
// between parse_factor and parse_expr needs no forward declaration.
void parse_factor(void) {
  int k = tk_kind[pos];
  if (k == 3) {            // unary minus
    pos = pos + 1;
    parse_factor();
    emit(12, 0);
    return;
  }
  if (k == 0) {
    emit(0, tk_val[pos]);
    pos = pos + 1;
    return;
  }
  if (k == 1) {
    emit(1, tk_val[pos]);
    pos = pos + 1;
    return;
  }
  if (k == 12) {
    pos = pos + 1;
    parse_expr();
    if (tk_kind[pos] == 13) pos = pos + 1;
    return;
  }
  // Error recovery: skip the token.
  pos = pos + 1;
}

void parse_term(void) {
  parse_factor();
  while (tk_kind[pos] == 4 || tk_kind[pos] == 5 || tk_kind[pos] == 6) {
    int op = tk_kind[pos];
    pos = pos + 1;
    parse_factor();
    if (op == 4) emit(4, 0);
    if (op == 5) emit(5, 0);
    if (op == 6) emit(6, 0);
  }
}

void parse_shift(void) {
  parse_term();
  while (tk_kind[pos] == 2 || tk_kind[pos] == 3) {
    int op = tk_kind[pos];
    pos = pos + 1;
    parse_term();
    if (op == 2) emit(2, 0);
    if (op == 3) emit(3, 0);
  }
}

void parse_expr(void) {
  parse_shift();
  while (tk_kind[pos] >= 7 && tk_kind[pos] <= 11) {
    int op = tk_kind[pos];
    pos = pos + 1;
    parse_shift();
    emit(op, 0);
  }
}

// Peephole constant folding over the emitted code: PUSH a; PUSH b; OP
// becomes PUSH (a OP b).  Runs until a fixed point.
int fold_pass(void) {
  int changed = 0;
  int i = 0;
  int j = 0;
  int n = nem;
  while (i < n) {
    int folded = 0;
    if (i + 2 < n && em_op[i] == 0 && em_op[i + 1] == 0) {
      int op = em_op[i + 2];
      int a = em_arg[i];
      int b = em_arg[i + 1];
      int v = 0;
      int ok = 1;
      if (op == 2) v = a + b;
      else if (op == 3) v = a - b;
      else if (op == 4) v = a * b;
      else if (op == 5) { if (b != 0) v = a / b; else ok = 0; }
      else if (op == 6) { if (b != 0) v = a % b; else ok = 0; }
      else ok = 0;
      if (ok) {
        em_op[j] = 0;
        em_arg[j] = v;
        j = j + 1;
        i = i + 3;
        folded = 1;
        changed = 1;
      }
    }
    if (!folded) {
      em_op[j] = em_op[i];
      em_arg[j] = em_arg[i];
      j = j + 1;
      i = i + 1;
    }
  }
  nem = j;
  return changed;
}

// Stack-machine interpreter with switch dispatch (a computed jump).
int interpret(int from, int to) {
  int sp = 0;
  int i;
  int a;
  int b;
  for (i = from; i < to; i = i + 1) {
    switch (em_op[i]) {
      case 0:
        stack[sp] = em_arg[i];
        sp = sp + 1;
        break;
      case 1:
        stack[sp] = vars[em_arg[i]];
        sp = sp + 1;
        break;
      case 2:
        b = stack[sp - 1]; a = stack[sp - 2];
        stack[sp - 2] = a + b; sp = sp - 1;
        break;
      case 3:
        b = stack[sp - 1]; a = stack[sp - 2];
        stack[sp - 2] = a - b; sp = sp - 1;
        break;
      case 4:
        b = stack[sp - 1]; a = stack[sp - 2];
        stack[sp - 2] = a * b; sp = sp - 1;
        break;
      case 5:
        b = stack[sp - 1]; a = stack[sp - 2];
        if (b == 0) b = 1;
        stack[sp - 2] = a / b; sp = sp - 1;
        break;
      case 6:
        b = stack[sp - 1]; a = stack[sp - 2];
        if (b == 0) b = 1;
        stack[sp - 2] = a % b; sp = sp - 1;
        break;
      case 7:
        b = stack[sp - 1]; a = stack[sp - 2];
        stack[sp - 2] = a << (b & 15); sp = sp - 1;
        break;
      case 8:
        b = stack[sp - 1]; a = stack[sp - 2];
        stack[sp - 2] = a >> (b & 15); sp = sp - 1;
        break;
      case 9:
        b = stack[sp - 1]; a = stack[sp - 2];
        stack[sp - 2] = a & b; sp = sp - 1;
        break;
      case 10:
        b = stack[sp - 1]; a = stack[sp - 2];
        stack[sp - 2] = a | b; sp = sp - 1;
        break;
      case 11:
        b = stack[sp - 1]; a = stack[sp - 2];
        stack[sp - 2] = a ^ b; sp = sp - 1;
        break;
      case 12:
        stack[sp - 1] = -stack[sp - 1];
        break;
    }
  }
  if (sp > 0) return stack[sp - 1];
  return 0;
}

int main(void) {
  int rep;
  int checksum = 0;
  tokenize();
  for (rep = 0; rep < 40; rep = rep + 1) {
    vars[0] = rep + 1;
    vars[1] = rep * 2 + 3;
    vars[2] = (rep * rep) % 17;
    vars[3] = 29 - (rep % 13);
    nem = 0;
    pos = 0;
    while (tk_kind[pos] != 15) {
      int start = nem;
      parse_expr();
      if (tk_kind[pos] == 14) pos = pos + 1;
      checksum = checksum * 7 + interpret(start, nem);
      checksum = checksum & 268435455;
    }
    while (fold_pass()) { }
    checksum = checksum + nem;
  }
  return checksum;
}
|}

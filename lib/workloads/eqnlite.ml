(* eqntott analogue: truth-table generation dominated by quicksort.

   Builds the truth table of a synthetic multi-output boolean function
   over 11 inputs, then sorts the 2048 wide rows with a recursive
   quicksort under a lexicographic comparator and counts distinct
   output patterns — eqntott spends most of its time in exactly this
   kind of sort. *)

let name = "eqntott"
let description = "truth table generation (quicksort over wide rows)"
let lang = "C"
let numeric = false
let fuel = 16_000_000

(* Filled in from a reference run; guards VM determinism in tests. *)
let expected_result : int option = Some 6_309

let source =
  {|
// eqnlite: truth table build + recursive quicksort.

int NVARS;
int NROWS;

// Row keys: two words per row (outputs, then input pattern).
int key0[2048];
int key1[2048];

// Permutation being sorted.
int perm[2048];

// Evaluate a fixed synthetic PLA: three output bits from the input
// minterm, chosen to be branchy and irregular.
int eval_outputs(int m) {
  int o0 = 0;
  int o1 = 0;
  int o2 = 0;
  int a = m & 1;
  int b = (m >> 1) & 1;
  int c = (m >> 2) & 1;
  int d = (m >> 3) & 1;
  int e = (m >> 4) & 1;
  if (a && !b) o0 = 1;
  if (c ^ d) o0 = o0 ^ 1;
  if ((m & 96) == 96) o0 = 1;
  if (b && c && !e) o1 = 1;
  if ((m % 7) == 3) o1 = o1 ^ 1;
  if ((m >> 5) > (m & 31)) o2 = 1;
  if ((m & 585) == 520) o2 = o2 ^ 1;
  return o0 + o1 * 2 + o2 * 4;
}

int compare(int i, int j) {
  // Lexicographic comparison of two-word keys; returns -1/0/1.
  if (key0[i] < key0[j]) return -1;
  if (key0[i] > key0[j]) return 1;
  if (key1[i] < key1[j]) return -1;
  if (key1[i] > key1[j]) return 1;
  return 0;
}

void swap(int i, int j) {
  int t = perm[i];
  perm[i] = perm[j];
  perm[j] = t;
}

// Recursive quicksort on the permutation, median-of-three pivot.
void quicksort(int lo, int hi) {
  int i;
  int j;
  int pivot;
  int mid;
  if (hi - lo < 8) {
    // Insertion sort for small ranges, like a production qsort.
    for (i = lo + 1; i <= hi; i = i + 1) {
      j = i;
      while (j > lo && compare(perm[j - 1], perm[j]) > 0) {
        swap(j - 1, j);
        j = j - 1;
      }
    }
    return;
  }
  mid = lo + (hi - lo) / 2;
  if (compare(perm[lo], perm[mid]) > 0) swap(lo, mid);
  if (compare(perm[lo], perm[hi]) > 0) swap(lo, hi);
  if (compare(perm[mid], perm[hi]) > 0) swap(mid, hi);
  swap(mid, hi - 1);
  pivot = perm[hi - 1];
  i = lo;
  j = hi - 1;
  while (1) {
    i = i + 1;
    while (compare(perm[i], pivot) < 0) i = i + 1;
    j = j - 1;
    while (compare(perm[j], pivot) > 0) j = j - 1;
    if (i >= j) break;
    swap(i, j);
  }
  swap(i, hi - 1);
  quicksort(lo, i - 1);
  quicksort(i + 1, hi);
}

int main(void) {
  int m;
  int i;
  int rep;
  int distinct;
  int checksum = 0;
  NVARS = 11;
  NROWS = 2048;
  for (rep = 0; rep < 1; rep = rep + 1) {
    // Build the table; vary the second pass by xoring the minterm.
    int nrows = NROWS;
    for (m = 0; m < nrows; m = m + 1) {
      int probe = m ^ (rep * 733);
      key0[m] = eval_outputs(probe & 2047);
      key1[m] = probe & 2047;
      perm[m] = m;
    }
    quicksort(0, NROWS - 1);
    // Count distinct output groups and verify sortedness on the fly.
    distinct = 1;
    for (i = 1; i < nrows; i = i + 1) {
      if (compare(perm[i - 1], perm[i]) > 0) return -1;  // sort bug
      if (key0[perm[i]] != key0[perm[i - 1]]) distinct = distinct + 1;
    }
    checksum = checksum * 131 + distinct;
    for (i = 0; i < nrows; i = i + 256) {
      checksum = checksum + key1[perm[i]];
    }
    checksum = checksum & 268435455;
  }
  return checksum;
}
|}

(** The benchmark suite (paper Table 1), as compilable Mini-C programs.

    Each workload is an analogue of one benchmark from the paper chosen
    to match its control-flow character (see DESIGN.md §5). *)

type t = {
  name : string;  (** the paper's benchmark name *)
  description : string;
  lang : string;  (** the original's language, "C" or "FORTRAN" *)
  numeric : bool;  (** the paper's numeric (FORTRAN) group *)
  source : string;  (** Mini-C source *)
  fuel : int;  (** instruction budget for the VM run *)
  expected_result : int option;
  (** reference return value, when recorded; guards determinism *)
}

val all : t list
(** All ten workloads, in the paper's Table 1 order. *)

val non_numeric : t list

val numeric : t list

val find : string -> t
(** @raise Not_found for an unknown name (prefer {!find_result}). *)

val names : string list

val find_result : string -> (t, Pipeline_error.t) result
(** Typed lookup: an unknown name yields [Unknown_workload] carrying a
    "did you mean" hint against the registry, never a raw exception. *)

val compile : ?options:Codegen.Compile.options -> t -> Asm.Program.flat
(** Compile the workload's Mini-C source.
    @raise Minic.Lexer.Error, Minic.Parser.Error, Minic.Sema.Error,
    Codegen.Compile.Error, Asm.Program.Link_error (registry sources are
    known-good; prefer {!compile_result} on the pipeline path). *)

val compile_result :
  ?options:Codegen.Compile.options -> t ->
  (Asm.Program.flat, Pipeline_error.t) result
(** {!compile} with every front-end and linker exception folded into a
    typed [Compile_error]. *)

val run :
  ?options:Codegen.Compile.options ->
  ?fuel:int ->
  ?record:bool ->
  ?sink:Vm.Trace.sink ->
  t ->
  Asm.Program.flat * Vm.Exec.outcome
(** Compile and execute, returning the flat program and the VM outcome
    (trace included unless [record = false]).  [sink] additionally
    streams each retired instruction to a consumer as it executes.
    Faults do not raise: the outcome's [status] carries the typed fault
    descriptor and the trace holds the prefix up to it. *)

(* latex analogue: paragraph formatting.

   Splits an embedded text into words, then typesets paragraphs:
   greedy line filling with a character-class width table, discretionary
   hyphenation of long words at vowel boundaries, and a second
   dynamic-programming pass that minimizes total badness, TeX-style.
   Table lookups and data-dependent scanning throughout. *)

let name = "latex"
let description = "paragraph line breaking with hyphenation and badness"
let lang = "C"
let numeric = false
let fuel = 16_000_000

(* Filled in from a reference run; guards VM determinism in tests. *)
let expected_result : int option = Some 96_004_350

let source =
  {|
// texlite: line breaking with hyphenation and badness minimization.

int text[] =
  "the assumption that instruction level parallelism is plentiful "
  "rests on machines that can resolve control flow early enough to "
  "matter when branches arrive every handful of instructions the "
  "window between mispredictions is short and the schedule collapses "
  "into serial bursts speculative execution recovers some slack by "
  "running ahead along the predicted path while control dependence "
  "analysis frees statements that never depended on the branch at "
  "all only a machine following many flows of control however can "
  "execute disjoint regions concurrently and approach the oracle "
  "bound measured for these traces under perfect renaming and "
  "disambiguation the remaining distance to that bound is a property "
  "of the algorithms themselves not of the fetch or decode hardware ";

int wstart[600];
int wlen[600];
int nwords;

int char_width[128];

// Hyphenation points per word (at most 4), as offsets into the word.
int hyph[600];

int line_words[80];
int line_count;

void build_width_table(void) {
  int c;
  for (c = 0; c < 128; c = c + 1) char_width[c] = 10;
  char_width['i'] = 4; char_width['l'] = 4; char_width['j'] = 5;
  char_width['t'] = 6; char_width['f'] = 6; char_width['r'] = 7;
  char_width['m'] = 15; char_width['w'] = 14;
  char_width[' '] = 5;
}

void split_words(void) {
  int i = 0;
  int start = -1;
  nwords = 0;
  while (text[i] != 0) {
    if (text[i] != ' ') {
      if (start < 0) start = i;
    } else {
      if (start >= 0) {
        wstart[nwords] = start;
        wlen[nwords] = i - start;
        nwords = nwords + 1;
        start = -1;
      }
    }
    i = i + 1;
  }
  if (start >= 0) {
    wstart[nwords] = start;
    wlen[nwords] = i - start;
    nwords = nwords + 1;
  }
}

int is_vowel(int c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

// A crude hyphenation rule: after the first vowel-consonant pair that
// leaves at least two characters on each side.
void find_hyphens(void) {
  int w;
  int n = nwords;
  for (w = 0; w < n; w = w + 1) {
    int k;
    int hi = wlen[w] - 2;
    hyph[w] = 0;
    if (wlen[w] < 6) continue;
    for (k = 2; k < hi; k = k + 1) {
      int a = text[wstart[w] + k - 1];
      int b = text[wstart[w] + k];
      if (is_vowel(a) && !is_vowel(b)) {
        hyph[w] = k;
        break;
      }
    }
  }
}

int word_width(int w) {
  int k;
  int width = 0;
  int len = wlen[w];
  for (k = 0; k < len; k = k + 1) {
    width = width + char_width[text[wstart[w] + k] & 127];
  }
  return width;
}

int badness(int used, int target) {
  int slack = target - used;
  if (slack < 0) slack = -slack * 3;  // overfull boxes hurt more
  return slack * slack / 4;
}

// Greedy (first-fit) paragraph fill; returns total badness.
int greedy_fill(int target) {
  int w = 0;
  int total = 0;
  int n = nwords;
  line_count = 0;
  while (w < n) {
    int used = 0;
    int first = 1;
    while (w < n) {
      int ww = word_width(w);
      int need = ww;
      if (!first) need = need + char_width[' '];
      if (used + need > target && !first) {
        // Try to hyphenate the overflowing word.
        if (hyph[w] > 0) {
          int k;
          int part = 0;
          for (k = 0; k < hyph[w]; k = k + 1) {
            part = part + char_width[text[wstart[w] + k] & 127];
          }
          if (used + char_width[' '] + part + 10 <= target) {
            used = used + char_width[' '] + part + 10;  // 10 = hyphen
          }
        }
        break;
      }
      used = used + need;
      first = 0;
      w = w + 1;
    }
    total = total + badness(used, target);
    line_words[line_count & 63] = w;
    line_count = line_count + 1;
  }
  return total;
}

// Dynamic programming over break points (TeX's optimal fit),
// quadratic in the number of words with an early width cutoff.
int best_fit(int target) {
  int cost[600];
  int j;
  int w;
  int n = nwords;
  cost[0] = 0;
  for (w = 1; w <= n; w = w + 1) cost[w] = 1000000000;
  for (w = 0; w < n; w = w + 1) {
    int used = 0;
    if (cost[w] >= 1000000000) continue;
    for (j = w; j < n; j = j + 1) {
      int ww = word_width(j);
      if (j > w) used = used + char_width[' '];
      used = used + ww;
      if (used > target + 60 && j > w) break;
      {
        int c = cost[w] + badness(used, target);
        if (c < cost[j + 1]) cost[j + 1] = c;
      }
    }
  }
  return cost[n];
}

int main(void) {
  int rep;
  int checksum = 0;
  build_width_table();
  split_words();
  find_hyphens();
  for (rep = 0; rep < 7; rep = rep + 1) {
    int target = 400 + rep * 35;
    int g = greedy_fill(target);
    int b = best_fit(target);
    checksum = (checksum * 31 + g + b + line_count) & 268435455;
  }
  return checksum;
}
|}

(* tomcatv analogue: vectorizable mesh generation.

   Jacobi-style relaxation of two coupled grids with five-point
   stencils, residual reduction and a boundary condition pass per
   iteration — regular, data-independent loop nests like tomcatv's. *)

let name = "tomcatv"
let description = "mesh relaxation with coupled 2-D stencils"
let lang = "FORTRAN"
let numeric = true
let fuel = 16_000_000

(* Filled in from a reference run; guards VM determinism in tests. *)
let expected_result : int option = Some 12_890

let source =
  {|
// tomlite: coupled 2-D grid relaxation.

int N;         // grid side

float x[2304];    // 48 x 48
float y[2304];
float rx[2304];
float ry[2304];

int idx(int i, int j) {
  return i * N + j;
}

void init_grids(void) {
  int i;
  int j;
  int n = N;
  for (i = 0; i < n; i = i + 1) {
    int row = i * n;
    for (j = 0; j < n; j = j + 1) {
      x[row + j] = i + 0.25 * j;
      y[row + j] = j - 0.125 * i;
    }
  }
}

// Compute residuals with a five-point stencil on both grids.
void residuals(void) {
  int i;
  int j;
  int n = N;
  int m = N - 1;
  for (i = 1; i < m; i = i + 1) {
    int row = i * n;
    for (j = 1; j < m; j = j + 1) {
      int p = row + j;
      float xc = x[p];
      float yc = y[p];
      rx[p] = 0.25 * (x[p - n] + x[p + n] + x[p - 1] + x[p + 1]) - xc
              + 0.05 * yc;
      ry[p] = 0.25 * (y[p - n] + y[p + n] + y[p - 1] + y[p + 1]) - yc
              - 0.05 * xc;
    }
  }
}

// Add the scaled residuals back (Jacobi update).
void update(void) {
  int i;
  int j;
  int n = N;
  int m = N - 1;
  for (i = 1; i < m; i = i + 1) {
    int row = i * n;
    for (j = 1; j < m; j = j + 1) {
      int p = row + j;
      x[p] = x[p] + 0.9 * rx[p];
      y[p] = y[p] + 0.9 * ry[p];
    }
  }
}

// Pin the boundary: mesh edges stay put, tomcatv style.
void boundary(void) {
  int k;
  int n = N;
  for (k = 0; k < n; k = k + 1) {
    x[idx(0, k)] = 0.25 * k;
    x[idx(N - 1, k)] = N - 1 + 0.25 * k;
    y[idx(k, 0)] = -0.125 * k;
    y[idx(k, N - 1)] = N - 1 - 0.125 * k;
  }
}

float max_residual(void) {
  int i;
  int j;
  float m = 0.0;
  int n = N;
  int hi = N - 1;
  for (i = 1; i < hi; i = i + 1) {
    int row = i * n;
    for (j = 1; j < hi; j = j + 1) {
      float a = rx[row + j];
      float b = ry[row + j];
      if (a < 0.0) a = -a;
      if (b < 0.0) b = -b;
      if (a > m) m = a;
      if (b > m) m = b;
    }
  }
  return m;
}

int main(void) {
  int iter;
  int i;
  int checksum = 0;
  float res = 0.0;
  N = 48;
  init_grids();
  for (iter = 0; iter < 6; iter = iter + 1) {
    residuals();
    update();
    boundary();
  }
  residuals();
  res = max_residual();
  for (i = 0; i < 2304; i = i + 97) {
    float v = x[i] - y[i];
    int vi;
    if (v < 0.0) v = -v;
    vi = v * 16.0;
    checksum = (checksum + vi) & 268435455;
  }
  return checksum + res * 1000.0;
}
|}

(* espresso analogue: set-oriented logic minimization over bit
   matrices.

   Represents a cover of cubes in the positional-cube notation (two
   bits per input variable), then runs the classic containment /
   single-cube-containment / consensus sweeps until a fixed point,
   all bitwise word operations with data-dependent early exits. *)

let name = "espresso"
let description = "logic minimization (cube containment and consensus)"
let lang = "C"
let numeric = false
let fuel = 16_000_000

(* Filled in from a reference run; guards VM determinism in tests. *)
let expected_result : int option = Some 225_171_436

let source =
  {|
// esprlite: cube-cover minimization in positional cube notation.
// Each cube has W words; each input variable occupies 2 bits
// (01 = positive literal, 10 = negative, 11 = don't care).

int MAXCUBES;
int W;

int cube[4096];      // MAXCUBES x W words
int alive[512];
int ncubes;

int salt;

// Position-hashed pseudo-random data, a stand-in for reading an input
// file: a pure function of the position, so generating the data does
// not introduce a serial dependence the real program would not have.
int hash_rand(int k) {
  int h = (k + salt) * 2654435761;
  h = h ^ (h >> 13);
  h = (h * 1103515245 + 12345) & 1048575;
  return h ^ (h >> 7);
}

int widx(int c, int w) {
  return c * W + w;
}

// Generate a random cover of cubes over 28 variables (2 words of 56
// bits per cube in our encoding: 28 vars x 2 bits).
void gen_cover(int n) {
  int c;
  int v;
  ncubes = n;
  for (c = 0; c < n; c = c + 1) {
    int w0 = 0;
    int w1 = 0;
    for (v = 0; v < 14; v = v + 1) {
      int r = hash_rand(c * 64 + v) % 10;
      int bits = 3;               // don't care
      if (r < 4) bits = 1;        // positive
      else if (r < 7) bits = 2;   // negative
      w0 = w0 | (bits << (2 * v));
    }
    for (v = 0; v < 14; v = v + 1) {
      int r = hash_rand(c * 64 + 32 + v) % 10;
      int bits = 3;
      if (r < 4) bits = 1;
      else if (r < 7) bits = 2;
      w1 = w1 | (bits << (2 * v));
    }
    cube[widx(c, 0)] = w0;
    cube[widx(c, 1)] = w1;
    alive[c] = 1;
  }
}

// Does cube a contain cube b?  a covers b iff b's literal set is a
// subset in every variable: (a | b) == a.
int contains(int a, int b) {
  int w;
  int nw = W;
  for (w = 0; w < nw; w = w + 1) {
    int aw = cube[widx(a, w)];
    int bw = cube[widx(b, w)];
    if ((aw | bw) != aw) return 0;
  }
  return 1;
}

// Is the cube empty (some variable with 00 = no allowed value)?
int is_empty_words(int w0, int w1) {
  int v;
  for (v = 0; v < 14; v = v + 1) {
    if (((w0 >> (2 * v)) & 3) == 0) return 1;
  }
  for (v = 0; v < 14; v = v + 1) {
    if (((w1 >> (2 * v)) & 3) == 0) return 1;
  }
  return 0;
}

// Distance between two cubes: number of variables whose intersection
// is empty.  Consensus exists only at distance exactly 1.
int distance(int a, int b) {
  int w;
  int d = 0;
  int nw = W;
  for (w = 0; w < nw; w = w + 1) {
    int x = cube[widx(a, w)] & cube[widx(b, w)];
    int v;
    for (v = 0; v < 14; v = v + 1) {
      if (((x >> (2 * v)) & 3) == 0) d = d + 1;
      if (d > 1) return d;
    }
  }
  return d;
}

// Single containment sweep: kill cubes covered by another live cube.
int contain_sweep(void) {
  int i;
  int j;
  int killed = 0;
  int n = ncubes;
  for (i = 0; i < n; i = i + 1) {
    if (!alive[i]) continue;
    for (j = 0; j < n; j = j + 1) {
      if (i == j || !alive[j]) continue;
      if (contains(i, j)) {
        // Prefer keeping the earlier cube on ties.
        if (contains(j, i) && j < i) continue;
        alive[j] = 0;
        killed = killed + 1;
      }
    }
  }
  return killed;
}

// One consensus pass: for distance-1 pairs, add the consensus cube if
// it is not already contained in a live cube and there is room.
int consensus_pass(void) {
  int i;
  int j;
  int added = 0;
  int n0 = ncubes;
  for (i = 0; i < n0; i = i + 1) {
    if (!alive[i]) continue;
    for (j = i + 1; j < n0; j = j + 1) {
      if (!alive[j]) continue;
      if (ncubes >= MAXCUBES) return added;
      if (distance(i, j) == 1) {
        int w;
        int k;
        int dup = 0;
        // Consensus: union in the conflicting variable, intersection
        // elsewhere; with 2-bit fields, (a&b) | conflict-repair.
        for (w = 0; w < W; w = w + 1) {
          int aw = cube[widx(i, w)];
          int bw = cube[widx(j, w)];
          int inter = aw & bw;
          int v;
          int repaired = inter;
          for (v = 0; v < 14; v = v + 1) {
            if (((inter >> (2 * v)) & 3) == 0) {
              repaired = repaired | (3 << (2 * v));
            }
          }
          cube[widx(ncubes, w)] = repaired;
        }
        if (is_empty_words(cube[widx(ncubes, 0)], cube[widx(ncubes, 1)])) {
          continue;
        }
        int nc = ncubes;
        for (k = 0; k < nc; k = k + 1) {
          if (alive[k] && contains(k, ncubes)) {
            dup = 1;
            break;
          }
        }
        if (!dup) {
          alive[ncubes] = 1;
          ncubes = ncubes + 1;
          added = added + 1;
        }
      }
    }
  }
  return added;
}

int live_count(void) {
  int i;
  int n = 0;
  int nc = ncubes;
  for (i = 0; i < nc; i = i + 1) {
    if (alive[i]) n = n + 1;
  }
  return n;
}

int main(void) {
  int round;
  int checksum = 0;
  int i;
  MAXCUBES = 320;
  W = 2;
  salt = 7;
  gen_cover(56);
  for (round = 0; round < 4; round = round + 1) {
    int killed = contain_sweep();
    int added = consensus_pass();
    checksum = checksum * 37 + killed * 100 + added;
    checksum = checksum & 268435455;
    if (added == 0 && killed == 0) break;
  }
  checksum = checksum * 1000 + live_count();
  {
  int nc = ncubes;
  for (i = 0; i < nc; i = i + 1) {
    if (alive[i]) {
      checksum = checksum + (cube[widx(i, 0)] ^ cube[widx(i, 1)]);
      checksum = checksum & 268435455;
    }
  }
  }
  return checksum;
}
|}

(* gcc (cc1) analogue: a sequence of small data-dependent optimizer
   passes over a linear IR.

   Generates a synthetic three-address IR with an LCG, then iterates
   constant propagation, copy propagation, algebraic peephole
   simplification and dead-code elimination to a fixed point — many
   short, branchy passes over irregular data, the cc1 profile. *)

let name = "gcc"
let description = "optimizer passes over a linear three-address IR"
let lang = "C"
let numeric = false
let fuel = 16_000_000

(* Filled in from a reference run; guards VM determinism in tests. *)
let expected_result : int option = Some 118_571_052

let source =
  {|
// gcclite: const-prop / copy-prop / peephole / DCE over linear IR.
//
// Instruction forms (op):
//   0 LI    d <- imm(a)
//   1 MOV   d <- r(a)
//   2 ADD   d <- r(a) + r(b)
//   3 SUB   d <- r(a) - r(b)
//   4 MUL   d <- r(a) * r(b)
//   5 AND   d <- r(a) & r(b)
//   6 XOR   d <- r(a) ^ r(b)
//   7 USE   sink(r(a))          -- keeps a live
//   8 NOP

int NINSN;
int NREG;

int ir_op[800];
int ir_a[800];
int ir_b[800];
int ir_d[800];

int const_known[64];
int const_val[64];
int copy_of[64];
int live[64];
int needed[800];

int salt;

// Position-hashed pseudo-random data, a stand-in for reading an input
// file: a pure function of the position, so generating the data does
// not introduce a serial dependence the real program would not have.
int hash_rand(int k) {
  int h = (k + salt) * 2654435761;
  h = h ^ (h >> 13);
  h = (h * 1103515245 + 12345) & 1048575;
  return h ^ (h >> 7);
}

void gen_ir(void) {
  int i;
  int n = NINSN;
  for (i = 0; i < n; i = i + 1) {
    int r = hash_rand(i * 8) % 100;
    ir_d[i] = hash_rand(i * 8 + 1) % NREG;
    ir_a[i] = hash_rand(i * 8 + 2) % NREG;
    ir_b[i] = hash_rand(i * 8 + 3) % NREG;
    if (r < 22) {
      ir_op[i] = 0;                       // LI
      ir_a[i] = hash_rand(i * 8 + 4) % 64;
    }
    else if (r < 38) ir_op[i] = 1;        // MOV
    else if (r < 58) ir_op[i] = 2;        // ADD
    else if (r < 70) ir_op[i] = 3;        // SUB
    else if (r < 80) ir_op[i] = 4;        // MUL
    else if (r < 86) ir_op[i] = 5;        // AND
    else if (r < 92) ir_op[i] = 6;        // XOR
    else ir_op[i] = 7;                    // USE
  }
  // Make sure something is observable at the end.
  ir_op[NINSN - 1] = 7;
  ir_a[NINSN - 1] = 0;
  ir_op[NINSN - 2] = 7;
  ir_a[NINSN - 2] = 1;
}

// Constant propagation: forward walk tracking known constants.
int constprop(void) {
  int i;
  int r;
  int changed = 0;
  int n = NINSN;
  int nr = NREG;
  for (r = 0; r < nr; r = r + 1) const_known[r] = 0;
  for (i = 0; i < n; i = i + 1) {
    int op = ir_op[i];
    switch (op) {
      case 0:
        const_known[ir_d[i]] = 1;
        const_val[ir_d[i]] = ir_a[i];
        break;
      case 1:
        if (const_known[ir_a[i]]) {
          ir_op[i] = 0;
          ir_a[i] = const_val[ir_a[i]];
          changed = 1;
          const_known[ir_d[i]] = 1;
          const_val[ir_d[i]] = ir_a[i];
        } else {
          const_known[ir_d[i]] = 0;
        }
        break;
      case 2:
      case 3:
      case 4:
      case 5:
      case 6:
        if (const_known[ir_a[i]] && const_known[ir_b[i]]) {
          int a = const_val[ir_a[i]];
          int b = const_val[ir_b[i]];
          int v = 0;
          if (op == 2) v = a + b;
          if (op == 3) v = a - b;
          if (op == 4) v = a * b;
          if (op == 5) v = a & b;
          if (op == 6) v = a ^ b;
          ir_op[i] = 0;
          ir_a[i] = v;
          changed = 1;
          const_known[ir_d[i]] = 1;
          const_val[ir_d[i]] = ir_a[i];
        } else {
          const_known[ir_d[i]] = 0;
        }
        break;
      case 7:
        break;
      case 8:
        break;
    }
  }
  return changed;
}

// Copy propagation: replace uses of registers that are pure copies.
int copyprop(void) {
  int i;
  int r;
  int changed = 0;
  int n = NINSN;
  int nr = NREG;
  for (r = 0; r < nr; r = r + 1) copy_of[r] = r;
  for (i = 0; i < n; i = i + 1) {
    int op = ir_op[i];
    if (op >= 1 && op <= 7) {
      if (copy_of[ir_a[i]] != ir_a[i]) {
        ir_a[i] = copy_of[ir_a[i]];
        changed = 1;
      }
    }
    if (op >= 2 && op <= 6) {
      if (copy_of[ir_b[i]] != ir_b[i]) {
        ir_b[i] = copy_of[ir_b[i]];
        changed = 1;
      }
    }
    if (op != 7 && op != 8) {
      // Writing d invalidates copies of and through d.
      for (r = 0; r < nr; r = r + 1) {
        if (copy_of[r] == ir_d[i]) copy_of[r] = r;
      }
      if (op == 1 && ir_a[i] != ir_d[i]) copy_of[ir_d[i]] = ir_a[i];
      else copy_of[ir_d[i]] = ir_d[i];
    }
  }
  return changed;
}

// Algebraic peephole: x+0, x-0, x*1, x*0, x&x, x^x ...
int peephole(void) {
  int i;
  int changed = 0;
  int n = NINSN;
  for (i = 0; i < n; i = i + 1) {
    int op = ir_op[i];
    if (op == 2 || op == 3) {
      // r + 0 / r - 0 when b holds a known zero LI immediately before.
      if (i > 0 && ir_op[i - 1] == 0 && ir_a[i - 1] == 0
          && ir_d[i - 1] == ir_b[i]) {
        ir_op[i] = 1;
        changed = 1;
      }
    }
    if (op == 4) {
      if (i > 0 && ir_op[i - 1] == 0 && ir_a[i - 1] == 1
          && ir_d[i - 1] == ir_b[i]) {
        ir_op[i] = 1;
        changed = 1;
      }
      if (i > 0 && ir_op[i - 1] == 0 && ir_a[i - 1] == 0
          && ir_d[i - 1] == ir_b[i]) {
        ir_op[i] = 0;
        ir_a[i] = 0;
        changed = 1;
      }
    }
    if (op == 6 && ir_a[i] == ir_b[i]) {
      ir_op[i] = 0;
      ir_a[i] = 0;
      changed = 1;
    }
    if (op == 5 && ir_a[i] == ir_b[i]) {
      ir_op[i] = 1;
      changed = 1;
    }
  }
  return changed;
}

// Dead code elimination: backward liveness; dead defs become NOPs.
int dce(void) {
  int i;
  int r;
  int changed = 0;
  int nr = NREG;
  for (r = 0; r < nr; r = r + 1) live[r] = 0;
  for (i = NINSN - 1; i >= 0; i = i - 1) {
    int op = ir_op[i];
    if (op == 7) {
      live[ir_a[i]] = 1;
      needed[i] = 1;
      continue;
    }
    if (op == 8) {
      needed[i] = 0;
      continue;
    }
    if (!live[ir_d[i]]) {
      ir_op[i] = 8;
      needed[i] = 0;
      changed = 1;
      continue;
    }
    needed[i] = 1;
    live[ir_d[i]] = 0;
    if (op >= 1 && op <= 6) live[ir_a[i]] = 1;
    if (op >= 2 && op <= 6) live[ir_b[i]] = 1;
  }
  return changed;
}

// Execute the (optimized) IR to produce an observable checksum.
int run_ir(void) {
  int regs[64];
  int i;
  int sink = 0;
  int n = NINSN;
  int nr = NREG;
  for (i = 0; i < nr; i = i + 1) regs[i] = 0;
  for (i = 0; i < n; i = i + 1) {
    switch (ir_op[i]) {
      case 0: regs[ir_d[i]] = ir_a[i]; break;
      case 1: regs[ir_d[i]] = regs[ir_a[i]]; break;
      case 2: regs[ir_d[i]] = regs[ir_a[i]] + regs[ir_b[i]]; break;
      case 3: regs[ir_d[i]] = regs[ir_a[i]] - regs[ir_b[i]]; break;
      case 4: regs[ir_d[i]] = regs[ir_a[i]] * regs[ir_b[i]]; break;
      case 5: regs[ir_d[i]] = regs[ir_a[i]] & regs[ir_b[i]]; break;
      case 6: regs[ir_d[i]] = regs[ir_a[i]] ^ regs[ir_b[i]]; break;
      case 7: sink = (sink * 31 + regs[ir_a[i]]) & 268435455; break;
      case 8: break;
    }
  }
  return sink;
}

int main(void) {
  int unit;
  int checksum = 0;
  NINSN = 700;
  NREG = 24;
  salt = 2023;
  for (unit = 0; unit < 4; unit = unit + 1) {
    int before;
    int after;
    int rounds = 0;
    salt = 2023 + unit * 65536;
    gen_ir();
    before = run_ir();
    while (rounds < 12) {
      int c = 0;
      if (constprop()) c = 1;
      if (copyprop()) c = 1;
      if (peephole()) c = 1;
      if (dce()) c = 1;
      rounds = rounds + 1;
      if (!c) break;
    }
    after = run_ir();
    if (before != after) return -1;  // optimizer must preserve semantics
    checksum = (checksum * 131 + after + rounds) & 268435455;
  }
  return checksum;
}
|}

(* spice2g6 analogue: sparse-matrix circuit solution with nonlinear
   device evaluation.

   Newton-style outer loop: evaluate piecewise device models (branchy,
   voltage-region dependent, like diode/transistor model code), stamp a
   sparse CSR conductance matrix, then run Gauss-Seidel until the
   residual converges.  The control flow is highly data dependent —
   the paper's point is that spice behaves like the non-numeric codes
   despite being FORTRAN floating point. *)

let name = "spice2g6"
let description = "sparse circuit solve with piecewise device models"
let lang = "FORTRAN"
let numeric = true
let fuel = 16_000_000

(* Filled in from a reference run; guards VM determinism in tests. *)
let expected_result : int option = Some 1_181_271_119

let source =
  {|
// spicelite: CSR Gauss-Seidel with nonlinear device stamps.

int NN;        // nodes
int NDEV;      // nonlinear two-terminal devices

// CSR structure of the (fixed) linear part.
int row_start[161];
int col_idx[1600];
float mat_val[1600];
float diag[160];
float rhs[160];
float volt[160];

// Devices: node pair + state.
int dev_a[220];
int dev_b[220];
float dev_g[220];     // current linearized conductance
int dev_region[220];  // last operating region (for region-change count)

int region_changes;
int salt;

// Position-hashed pseudo-random data, a stand-in for reading an input
// file: a pure function of the position, so generating the data does
// not introduce a serial dependence the real program would not have.
int hash_rand(int k) {
  int h = (k + salt) * 2654435761;
  h = h ^ (h >> 13);
  h = (h * 1103515245 + 12345) & 1048575;
  return h ^ (h >> 7);
}

// Build a diagonally dominant sparse matrix: ring + random chords.
void build_matrix(void) {
  int i;
  int k;
  int nnz = 0;
  for (i = 0; i < NN; i = i + 1) {
    int deg = 2 + (hash_rand(i * 8) % 3);
    row_start[i] = nnz;
    diag[i] = 4.0 + (hash_rand(i * 8 + 1) % 100) / 25.0;
    // Ring neighbours.
    col_idx[nnz] = (i + 1) % NN;
    mat_val[nnz] = -1.0;
    nnz = nnz + 1;
    col_idx[nnz] = (i + NN - 1) % NN;
    mat_val[nnz] = -1.0;
    nnz = nnz + 1;
    for (k = 2; k < deg; k = k + 1) {
      int j = hash_rand(i * 8 + 2 + k) % NN;
      if (j != i) {
        col_idx[nnz] = j;
        mat_val[nnz] = -0.5;
        nnz = nnz + 1;
        diag[i] = diag[i] + 0.5;
      }
    }
    rhs[i] = ((hash_rand(i * 8 + 7) % 200) - 100) / 10.0;
  }
  row_start[NN] = nnz;
}

void build_devices(void) {
  int d;
  for (d = 0; d < NDEV; d = d + 1) {
    dev_a[d] = hash_rand(100000 + d * 4) % NN;
    dev_b[d] = hash_rand(100000 + d * 4 + 1) % NN;
    if (dev_b[d] == dev_a[d]) dev_b[d] = (dev_a[d] + 1) % NN;
    dev_g[d] = 0.1;
    dev_region[d] = 0;
  }
}

// Piecewise device model: conductance depends on the voltage region,
// like a diode's off / linear / saturated regions.
void eval_devices(void) {
  int d;
  int nd = NDEV;
  for (d = 0; d < nd; d = d + 1) {
    float v = volt[dev_a[d]] - volt[dev_b[d]];
    int region;
    float g;
    if (v < -1.5) {
      region = 0;          // reverse: tiny leakage
      g = 0.01;
    } else if (v < 0.5) {
      region = 1;          // off-ish: weak
      g = 0.05 + 0.02 * (v + 1.5);
    } else if (v < 2.0) {
      region = 2;          // linear region
      g = 0.2 + 0.3 * (v - 0.5);
    } else {
      region = 3;          // saturated: strong clamp
      g = 0.65 + 0.05 * (v - 2.0);
      if (g > 0.9) g = 0.9;
    }
    if (region != dev_region[d]) {
      region_changes = region_changes + 1;
      dev_region[d] = region;
    }
    dev_g[d] = g;
  }
}

// One Gauss-Seidel sweep including device conductances on the fly;
// returns (scaled) max residual as an int for the convergence test.
int gs_sweep(void) {
  int i;
  int d;
  int nn = NN;
  int nd = NDEV;
  float maxres = 0.0;
  for (i = 0; i < nn; i = i + 1) {
    float acc = rhs[i];
    float dg = diag[i];
    int k;
    for (k = row_start[i]; k < row_start[i + 1]; k = k + 1) {
      acc = acc - mat_val[k] * volt[col_idx[k]];
    }
    // Device stamps touching node i (linear scan, as spice does over
    // its element lists).
    for (d = 0; d < nd; d = d + 1) {
      if (dev_a[d] == i) {
        acc = acc + dev_g[d] * volt[dev_b[d]];
        dg = dg + dev_g[d];
      } else if (dev_b[d] == i) {
        acc = acc + dev_g[d] * volt[dev_a[d]];
        dg = dg + dev_g[d];
      }
    }
    {
      float nv = acc / dg;
      float r = nv - volt[i];
      if (r < 0.0) r = -r;
      if (r > maxres) maxres = r;
      volt[i] = nv;
    }
  }
  return maxres * 100000.0;
}

int main(void) {
  int newton;
  int iter;
  int i;
  int checksum = 0;
  int total_sweeps = 0;
  NN = 96;
  NDEV = 48;
  salt = 31415;
  build_matrix();
  build_devices();
  for (i = 0; i < NN; i = i + 1) volt[i] = 0.0;
  for (newton = 0; newton < 6; newton = newton + 1) {
    eval_devices();
    iter = 0;
    while (iter < 40) {
      int res = gs_sweep();
      total_sweeps = total_sweeps + 1;
      iter = iter + 1;
      if (res < 20) break;   // converged to 2e-4
    }
    checksum = (checksum * 17 + iter) & 268435455;
  }
  for (i = 0; i < NN; i = i + 8) {
    checksum = (checksum + volt_scaled(i)) & 268435455;
  }
  return checksum * 100 + region_changes + total_sweeps;
}

int volt_scaled(int i) {
  float v = volt[i];
  if (v < 0.0) v = -v;
  return v * 1000.0;
}
|}

(* awk analogue: table-driven pattern scanning.

   Scans an embedded multi-line corpus with a set of glob patterns
   ([*], [?], literal characters), splits lines into fields, and
   accumulates match counts and field statistics — the kind of
   character-at-a-time data-dependent control flow that dominates awk. *)

let name = "awk"
let description = "pattern scanning (glob matcher over a text corpus)"
let lang = "C"
let numeric = false
let fuel = 16_000_000

(* Filled in from a reference run; guards VM determinism in tests. *)
let expected_result : int option = Some 205_956_073

let source =
  {|
// awklite: glob pattern scanning over an embedded corpus.

int text[4096];
int ntext;

int pat0[] = "th*";
int pat1[] = "*ing";
int pat2[] = "?u*k";
int pat3[] = "*o?er*";
int pat4[] = "l*y";
int pat5[] = "*a*a*";

int match_counts[6];
int field_total;
int word_len_hist[16];

// Build a larger working text by repeating a seed corpus with
// deterministic mutations, so that scanning is not trivially periodic.
int lines[] =
  "while the compiler was running the simulator kept polling\n"
  "every branch in the trace was resolved before the window moved\n"
  "parallel machines follow many flows of control at once\n"
  "a superscalar processor speculates along the predicted path\n"
  "misprediction distances stay short for integer programs\n"
  "the oracle machine knows each branch outcome in advance\n"
  "dataflow execution enforces only true dependences\n"
  "loop unrolling removes induction variable updates\n"
  "control dependence analysis finds global parallelism\n"
  "quick brown foxes jump over lazy dogs in every corpus\n";

int salt;

// Position-hashed pseudo-random data, a stand-in for reading an input
// file: a pure function of the position, so generating the data does
// not introduce a serial dependence the real program would not have.
int hash_rand(int k) {
  int h = (k + salt) * 2654435761;
  h = h ^ (h >> 13);
  h = (h * 1103515245 + 12345) & 1048575;
  return h ^ (h >> 7);
}

void build_text(int reps) {
  int r;
  int i;
  int c;
  ntext = 0;
  for (r = 0; r < reps; r = r + 1) {
    i = 0;
    while (lines[i] != 0) {
      c = lines[i];
      // Occasionally rotate a letter to vary the text between copies.
      if (c >= 'a' && c <= 'z') {
        if ((hash_rand(r * 4096 + i) & 31) == 0) {
          c = 'a' + ((c - 'a' + r) % 26);
        }
      }
      if (ntext < 4095) {
        text[ntext] = c;
        ntext = ntext + 1;
      }
      i = i + 1;
    }
  }
  text[ntext] = 0;
}

// Recursive glob match: does pattern p (from pi) match string s
// (from si up to the line terminator)?
int glob(int p[], int pi, int si) {
  int pc = p[pi];
  int sc = text[si];
  if (sc == '\n') sc = 0;
  if (pc == 0) {
    if (sc == 0) return 1;
    return 0;
  }
  if (pc == '*') {
    if (glob(p, pi + 1, si)) return 1;
    if (sc != 0) return glob(p, pi, si + 1);
    return 0;
  }
  if (sc == 0) return 0;
  if (pc == '?') return glob(p, pi + 1, si + 1);
  if (pc == sc) return glob(p, pi + 1, si + 1);
  return 0;
}

// Try every pattern against the line starting at position [start];
// glob anchored at the start of the line, plus floating occurrences
// for patterns beginning with a literal.
void scan_line(int start) {
  if (glob(pat0, 0, start)) match_counts[0] = match_counts[0] + 1;
  if (glob(pat1, 0, start)) match_counts[1] = match_counts[1] + 1;
  if (glob(pat2, 0, start)) match_counts[2] = match_counts[2] + 1;
  if (glob(pat3, 0, start)) match_counts[3] = match_counts[3] + 1;
  if (glob(pat4, 0, start)) match_counts[4] = match_counts[4] + 1;
  if (glob(pat5, 0, start)) match_counts[5] = match_counts[5] + 1;
}

// Field splitting: count space-separated fields and histogram word
// lengths, awk's bread and butter.
int split_fields(int start) {
  int i = start;
  int fields = 0;
  int wlen = 0;
  while (text[i] != 0 && text[i] != '\n') {
    if (text[i] == ' ') {
      if (wlen > 0) {
        fields = fields + 1;
        if (wlen < 16) word_len_hist[wlen] = word_len_hist[wlen] + 1;
      }
      wlen = 0;
    } else {
      wlen = wlen + 1;
    }
    i = i + 1;
  }
  if (wlen > 0) {
    fields = fields + 1;
    if (wlen < 16) word_len_hist[wlen] = word_len_hist[wlen] + 1;
  }
  return fields;
}

int main(void) {
  int i;
  int start;
  int checksum = 0;
  salt = 42;
  build_text(14);
  start = 0;
  i = 0;
  {
  int n = ntext;
  while (i <= n) {
    if (text[i] == '\n' || text[i] == 0) {
      scan_line(start);
      field_total = field_total + split_fields(start);
      start = i + 1;
    }
    i = i + 1;
  }
  }
  for (i = 0; i < 6; i = i + 1) {
    checksum = checksum * 31 + match_counts[i];
  }
  for (i = 0; i < 16; i = i + 1) {
    checksum = checksum + i * word_len_hist[i];
  }
  return checksum + field_total;
}
|}

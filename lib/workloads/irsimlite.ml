(* irsim analogue: an event-driven switch-level simulator.

   Simulates a randomly generated combinational/sequential netlist of
   two-input gates with per-gate delays using a timing wheel of event
   queues (linked lists through arrays).  Event-driven propagation with
   fanout lists is the classic irsim inner loop: highly data-dependent
   branching and index chasing. *)

let name = "irsim"
let description = "event-driven gate-level simulator on a timing wheel"
let lang = "C"
let numeric = false
let fuel = 16_000_000

(* Filled in from a reference run; guards VM determinism in tests. *)
let expected_result : int option = Some 25_551_242_479

let source =
  {|
// irsimlite: event-driven logic simulation.

int NNETS;
int NGATES;
int NINPUTS;
int WHEEL;     // timing wheel size (power of two)

int net_val[400];

int gate_type[700];   // 0=AND 1=OR 2=NAND 3=NOR 4=XOR 5=NOT
int gate_in1[700];
int gate_in2[700];
int gate_out[700];
int gate_delay[700];

// Fanout in CSR form: gates driven by each net.
int fan_start[401];
int fan_gate[1400];

// Timing wheel: per-slot singly linked list of pending events.
// An event sets net [ev_net] to [ev_val] at its slot's time.
int wheel_head[256];
int ev_net[4096];
int ev_val[4096];
int ev_next[4096];
int ev_free;          // free-list head

int events_processed;
int toggles;

int salt;

// Position-hashed pseudo-random data, a stand-in for reading an input
// file: a pure function of the position, so generating the data does
// not introduce a serial dependence the real program would not have.
int hash_rand(int k) {
  int h = (k + salt) * 2654435761;
  h = h ^ (h >> 13);
  h = (h * 1103515245 + 12345) & 1048575;
  return h ^ (h >> 7);
}

void build_netlist(void) {
  int g;
  int n;
  int count[400];
  // Nets 0..NINPUTS-1 are primary inputs; each gate drives one net.
  for (g = 0; g < NGATES; g = g + 1) {
    gate_type[g] = hash_rand(g * 8) % 6;
    // Inputs come from strictly earlier nets to keep it acyclic apart
    // from a few feedback nets added below.
    int limit = NINPUTS + g;
    if (limit > NNETS - 1) limit = NNETS - 1;
    gate_in1[g] = hash_rand(g * 8 + 1) % limit;
    gate_in2[g] = hash_rand(g * 8 + 2) % limit;
    gate_out[g] = NINPUTS + (g % (NNETS - NINPUTS));
    gate_delay[g] = 1 + (hash_rand(g * 8 + 3) % 5);
  }
  // A little feedback for sequential flavour.
  for (g = 0; g < 8; g = g + 1) {
    gate_in2[g * 9 + 3] = NINPUTS + ((g * 31) % (NNETS - NINPUTS));
  }
  // Build the CSR fanout: count then prefix-sum then fill.
  for (n = 0; n <= NNETS; n = n + 1) fan_start[n] = 0;
  for (n = 0; n < NNETS; n = n + 1) count[n] = 0;
  for (g = 0; g < NGATES; g = g + 1) {
    count[gate_in1[g]] = count[gate_in1[g]] + 1;
    count[gate_in2[g]] = count[gate_in2[g]] + 1;
  }
  fan_start[0] = 0;
  for (n = 0; n < NNETS; n = n + 1) {
    fan_start[n + 1] = fan_start[n] + count[n];
    count[n] = 0;
  }
  for (g = 0; g < NGATES; g = g + 1) {
    int a = gate_in1[g];
    int b = gate_in2[g];
    fan_gate[fan_start[a] + count[a]] = g;
    count[a] = count[a] + 1;
    fan_gate[fan_start[b] + count[b]] = g;
    count[b] = count[b] + 1;
  }
}

int eval_gate(int g) {
  int a = net_val[gate_in1[g]];
  int b = net_val[gate_in2[g]];
  int t = gate_type[g];
  if (t == 0) return a & b;
  if (t == 1) return a | b;
  if (t == 2) return 1 - (a & b);
  if (t == 3) return 1 - (a | b);
  if (t == 4) return a ^ b;
  return 1 - a;
}

void init_events(void) {
  int i;
  for (i = 0; i < WHEEL; i = i + 1) wheel_head[i] = -1;
  for (i = 0; i < 4095; i = i + 1) ev_next[i] = i + 1;
  ev_next[4095] = -1;
  ev_free = 0;
}

void schedule(int t, int net, int val) {
  int slot = t & (WHEEL - 1);
  int e = ev_free;
  if (e < 0) return;  // event pool exhausted: drop (bounded sim)
  ev_free = ev_next[e];
  ev_net[e] = net;
  ev_val[e] = val;
  ev_next[e] = wheel_head[slot];
  wheel_head[slot] = e;
}

// Process all events at time t; schedule consequences.
void step(int t) {
  int slot = t & (WHEEL - 1);
  int e = wheel_head[slot];
  wheel_head[slot] = -1;
  while (e >= 0) {
    int nxt = ev_next[e];
    int net = ev_net[e];
    int val = ev_val[e];
    ev_next[e] = ev_free;
    ev_free = e;
    events_processed = events_processed + 1;
    if (net_val[net] != val) {
      int k;
      net_val[net] = val;
      toggles = toggles + 1;
      for (k = fan_start[net]; k < fan_start[net + 1]; k = k + 1) {
        int g = fan_gate[k];
        int out = eval_gate(g);
        if (out != net_val[gate_out[g]]) {
          schedule(t + gate_delay[g], gate_out[g], out);
        }
      }
    }
    e = nxt;
  }
}

int main(void) {
  int t;
  int i;
  int checksum = 0;
  NNETS = 400;
  NGATES = 700;
  NINPUTS = 24;
  WHEEL = 256;
  salt = 99;
  build_netlist();
  init_events();
  for (i = 0; i < NNETS; i = i + 1) net_val[i] = 0;
  // Drive the inputs with deterministic stimulus; run the wheel.
  for (t = 0; t < 900; t = t + 1) {
    if ((t & 15) == 0) {
      for (i = 0; i < NINPUTS; i = i + 1) {
        if (((t >> 4) + i) & 1) schedule(t, i, 1 - net_val[i]);
      }
    }
    step(t);
    if (events_processed > 6000) break;
  }
  for (i = 0; i < NNETS; i = i + 1) {
    checksum = (checksum * 2 + net_val[i]) & 268435455;
  }
  return checksum * 100 + (toggles % 100) + events_processed;
}
|}

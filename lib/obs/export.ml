let ms ns = Int64.to_float ns /. 1e6

let span_label (s : Span.span) =
  let b = Buffer.create 32 in
  Buffer.add_string b s.sp_stage;
  if s.sp_workload <> "" then Buffer.add_string b (" w=" ^ s.sp_workload);
  if s.sp_machine <> "" then Buffer.add_string b (" m=" ^ s.sp_machine);
  Buffer.contents b

let tree buf ?(metrics = []) spans =
  if Array.length spans > 0 then begin
    Buffer.add_string buf "spans:\n";
    Array.iter
      (fun (s : Span.span) ->
        Buffer.add_string buf
          (Printf.sprintf "%s%-*s %9.3f ms\n"
             (String.make (2 * (s.sp_depth + 1)) ' ')
             (max 1 (38 - (2 * s.sp_depth)))
             (span_label s)
             (ms (Span.dur_ns s))))
      spans
  end;
  if metrics <> [] then begin
    Buffer.add_string buf "metrics:\n";
    List.iter
      (fun (m : Metrics.snap) ->
        match m.value with
        | Metrics.Counter v | Metrics.Gauge v ->
          Buffer.add_string buf (Printf.sprintf "  %-56s %d\n" m.name v)
        | Metrics.Histogram { counts; sum; _ } ->
          let total = Array.fold_left ( + ) 0 counts in
          Buffer.add_string buf
            (Printf.sprintf "  %-56s count=%d sum=%d\n" m.name total sum))
      metrics
  end

(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let int_array a =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list a)) ^ "]"

let jsonl buf ~spans ~metrics =
  Array.iter
    (fun (s : Span.span) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\":\"span\",\"stage\":\"%s\",\"workload\":\"%s\",\
            \"machine\":\"%s\",\"depth\":%d,\"start_ns\":%Ld,\
            \"dur_ns\":%Ld}\n"
           (json_escape s.sp_stage)
           (json_escape s.sp_workload)
           (json_escape s.sp_machine)
           s.sp_depth s.sp_start_ns (Span.dur_ns s)))
    spans;
  List.iter
    (fun (m : Metrics.snap) ->
      match m.value with
      | Metrics.Counter v ->
        Buffer.add_string buf
          (Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}\n"
             (json_escape m.name) v)
      | Metrics.Gauge v ->
        Buffer.add_string buf
          (Printf.sprintf "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%d}\n"
             (json_escape m.name) v)
      | Metrics.Histogram { bounds; counts; sum } ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"type\":\"histogram\",\"name\":\"%s\",\"bounds\":%s,\
              \"counts\":%s,\"sum\":%d}\n"
             (json_escape m.name) (int_array bounds) (int_array counts) sum))
    metrics

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition.  Metric names carry their labels inline
   (["name{machine=\"SP\"}"]); the family — what TYPE/HELP lines
   describe, once per family — is the part before the brace.  Histogram
   buckets are cumulative with an [le] label spliced into any existing
   label set, per the exposition format. *)

let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, None)
  | Some i ->
    ( String.sub name 0 i,
      Some (String.sub name (i + 1) (String.length name - i - 2)) )

let with_label name extra =
  let base, labels = split_labels name in
  match labels with
  | None -> Printf.sprintf "%s{%s}" base extra
  | Some l -> Printf.sprintf "%s{%s,%s}" base l extra

let with_suffix name suffix =
  let base, labels = split_labels name in
  match labels with
  | None -> base ^ suffix
  | Some l -> Printf.sprintf "%s%s{%s}" base suffix l

let prometheus buf metrics =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (m : Metrics.snap) ->
      let family, _ = split_labels m.name in
      let kind =
        match m.value with
        | Metrics.Counter _ -> "counter"
        | Metrics.Gauge _ -> "gauge"
        | Metrics.Histogram _ -> "histogram"
      in
      if not (Hashtbl.mem seen family) then begin
        Hashtbl.add seen family ();
        if m.help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" family m.help);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" family kind)
      end;
      match m.value with
      | Metrics.Counter v | Metrics.Gauge v ->
        Buffer.add_string buf (Printf.sprintf "%s %d\n" m.name v)
      | Metrics.Histogram { bounds; counts; sum } ->
        let cum = ref 0 in
        Array.iteri
          (fun i bound ->
            cum := !cum + counts.(i);
            Buffer.add_string buf
              (Printf.sprintf "%s %d\n"
                 (with_label (with_suffix m.name "_bucket")
                    (Printf.sprintf "le=\"%d\"" bound))
                 !cum))
          bounds;
        cum := !cum + counts.(Array.length bounds);
        Buffer.add_string buf
          (Printf.sprintf "%s %d\n"
             (with_label (with_suffix m.name "_bucket") "le=\"+Inf\"")
             !cum);
        Buffer.add_string buf
          (Printf.sprintf "%s %d\n" (with_suffix m.name "_sum") sum);
        Buffer.add_string buf
          (Printf.sprintf "%s %d\n" (with_suffix m.name "_count") !cum))
    metrics

(** Wall-clock deadlines over the monotonic span clock.

    A deadline is an absolute point on the monotonic clock derived from
    a millisecond budget.  Enforcement is cooperative: long-running
    stages either poll {!check} at natural boundaries or install
    {!observe} as (part of) the VM observe hook, which samples the
    clock every [every] retired instructions.  Expiry raises
    {!Expired}; the harness layer catches it and degrades the request
    to a typed [Pipeline_error.Deadline_exceeded] — never a crash, and
    partial work is simply discarded.

    The same machinery backs both the serve daemon's per-request
    deadlines and the one-shot CLI's [--deadline-ms]. *)

type t

exception Expired of { budget_ms : int; elapsed_ms : int }

val start : budget_ms:int -> t
(** Start the clock now.  Negative budgets clamp to 0 (already
    expired). *)

val budget_ms : t -> int

val elapsed_ms : t -> int

val remaining_ms : t -> int
(** Negative once expired. *)

val expired : t -> bool

val check : t -> unit
(** @raise Expired once the budget is spent. *)

val observe :
  ?every:int ->
  t ->
  pc:int -> step:int -> regs:int array -> fregs:float array ->
  mem:int array -> unit
(** A {!Vm.Exec.run}-shaped observe hook that polls the clock every
    [every] retired instructions ([every] defaults to 4096 and is
    rounded up to a power of two, so the per-instruction cost is one
    [land]).  @raise Expired from inside the execution when the budget
    is spent. *)

(** Monotonic-clock spans: nested, stage/workload/machine-labeled
    timing records.

    A {!buffer} is single-writer: each pipeline task (one workload's
    compile → execute → analyze) records into its own buffer on
    whatever domain it runs, so the hot path takes no lock.  The
    driver merges buffers {e by task index} afterwards ({!merge} /
    {!Ctx.spans}), which is the span-side half of the determinism
    argument: whatever order the pool scheduled the tasks, the merged
    sequence is the sequential run's sequence.  Timestamps naturally
    differ run to run — the scheduling-independent part is the
    {!skeleton}: (stage, workload, machine, depth) in merged order,
    and tests pin exactly that.

    Timestamps come from bechamel's [CLOCK_MONOTONIC] stub, the same
    clock the bench uses, so an NTP step cannot corrupt a span. *)

type span = {
  sp_stage : string;  (** e.g. ["compile"], ["execute"], ["analyze"] *)
  sp_workload : string;  (** [""] when not tied to a workload *)
  sp_machine : string;  (** [""] when not tied to a machine model *)
  sp_depth : int;  (** nesting depth within its buffer, 0 = root *)
  sp_start_ns : int64;
  mutable sp_stop_ns : int64;  (** set when the span closes *)
}

val span :
  ?workload:string ->
  ?machine:string ->
  ?depth:int ->
  start_ns:int64 ->
  stop_ns:int64 ->
  string ->
  span
(** Build a span directly (exporter golden tests with fixed
    timestamps). *)

val dur_ns : span -> int64

val now_ns : unit -> int64
(** The raw monotonic clock spans are stamped with — for callers that
    need a duration without opening a span (e.g. the segment
    stitch-wait histogram). *)

type buffer

val buffer : ?label:string -> unit -> buffer
(** A fresh, active, empty buffer. *)

val disabled : buffer
(** The inert buffer: {!with_span} on it runs the thunk with zero
    recording cost.  This is what a disabled {!Ctx.t} hands out. *)

val active : buffer -> bool
val label : buffer -> string

val with_span :
  buffer -> ?workload:string -> ?machine:string -> string -> (unit -> 'a) -> 'a
(** [with_span b stage f] records a span around [f ()], nested under
    any span currently open in [b].  The span closes even when [f]
    raises.  Buffers are single-writer: never share one buffer between
    concurrent tasks. *)

val spans : buffer -> span array
(** Recorded spans in open order (parents before children). *)

val merge : buffer list -> span array
(** Concatenate in list order.  Callers sort the buffers by task index
    first (see {!Ctx.spans}), making the result independent of
    scheduling. *)

val skeleton : span array -> (string * string * string * int) array
(** The time-free structure: [(stage, workload, machine, depth)] per
    span, in order.  Equal for a jobs=N and a sequential run of the
    same pipeline. *)

type span = {
  sp_stage : string;
  sp_workload : string;
  sp_machine : string;
  sp_depth : int;
  sp_start_ns : int64;
  mutable sp_stop_ns : int64;
}

let span ?(workload = "") ?(machine = "") ?(depth = 0) ~start_ns ~stop_ns
    stage =
  { sp_stage = stage; sp_workload = workload; sp_machine = machine;
    sp_depth = depth; sp_start_ns = start_ns; sp_stop_ns = stop_ns }

let dur_ns s = Int64.sub s.sp_stop_ns s.sp_start_ns

let dummy = span ~start_ns:0L ~stop_ns:0L ""

type buffer = {
  b_active : bool;
  b_label : string;
  mutable b_depth : int;
  b_spans : span Stdx.Vec.t;
}

let buffer ?(label = "") () =
  { b_active = true; b_label = label; b_depth = 0;
    b_spans = Stdx.Vec.create ~dummy () }

let disabled =
  { b_active = false; b_label = ""; b_depth = 0;
    b_spans = Stdx.Vec.create ~dummy () }

let active b = b.b_active
let label b = b.b_label

let now () = Monotonic_clock.now ()
let now_ns = now

let with_span b ?(workload = "") ?(machine = "") stage f =
  if not b.b_active then f ()
  else begin
    let s =
      { sp_stage = stage; sp_workload = workload; sp_machine = machine;
        sp_depth = b.b_depth; sp_start_ns = now (); sp_stop_ns = 0L }
    in
    Stdx.Vec.push b.b_spans s;
    b.b_depth <- b.b_depth + 1;
    Fun.protect
      ~finally:(fun () ->
        b.b_depth <- b.b_depth - 1;
        s.sp_stop_ns <- now ())
      f
  end

let spans b = Stdx.Vec.to_array b.b_spans

let merge buffers = Array.concat (List.map spans buffers)

let skeleton ss =
  Array.map
    (fun s -> (s.sp_stage, s.sp_workload, s.sp_machine, s.sp_depth))
    ss

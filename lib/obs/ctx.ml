type t = {
  c_enabled : bool;
  c_metrics : Metrics.t;
  c_mu : Mutex.t;
  mutable c_buffers : (int * int * Span.buffer) list;
  (* (task index, registration order) — newest first *)
  mutable c_next : int;
}

let disabled =
  { c_enabled = false; c_metrics = Metrics.create (); c_mu = Mutex.create ();
    c_buffers = []; c_next = 0 }

let create ?(registry = Metrics.global) () =
  { c_enabled = true; c_metrics = registry; c_mu = Mutex.create ();
    c_buffers = []; c_next = 0 }

let enabled t = t.c_enabled
let metrics t = t.c_metrics

let task_buffer t ~index ~label =
  if not t.c_enabled then Span.disabled
  else begin
    let b = Span.buffer ~label () in
    Mutex.lock t.c_mu;
    t.c_buffers <- (index, t.c_next, b) :: t.c_buffers;
    t.c_next <- t.c_next + 1;
    Mutex.unlock t.c_mu;
    b
  end

let spans t =
  Mutex.lock t.c_mu;
  let bs = t.c_buffers in
  Mutex.unlock t.c_mu;
  (* Registration order is scheduling-dependent (tasks register on
     their worker domains); the index sort erases that. *)
  let sorted =
    List.sort
      (fun (i1, n1, _) (i2, n2, _) ->
        if i1 <> i2 then compare i1 i2 else compare n1 n2)
      bs
  in
  Span.merge (List.map (fun (_, _, b) -> b) sorted)

let snapshot t = Metrics.snapshot t.c_metrics

let vm_probe t =
  if t.c_enabled then Probe.vm t.c_metrics else Probe.vm_disabled

let analyzer_probe t ~machine =
  if t.c_enabled then Probe.analyzer t.c_metrics ~machine
  else Probe.analyzer_disabled

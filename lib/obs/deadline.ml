(* A wall-clock budget on the monotonic clock (the span clock), so
   suspends/clock steps never fire or starve a deadline spuriously. *)

type t = {
  d_budget_ms : int;
  d_start_ns : int64;
  d_stop_ns : int64;
}

exception Expired of { budget_ms : int; elapsed_ms : int }

let start ~budget_ms =
  let budget_ms = max 0 budget_ms in
  let now = Monotonic_clock.now () in
  { d_budget_ms = budget_ms;
    d_start_ns = now;
    d_stop_ns = Int64.add now (Int64.mul (Int64.of_int budget_ms) 1_000_000L) }

let budget_ms t = t.d_budget_ms

let elapsed_ms t =
  Int64.to_int
    (Int64.div (Int64.sub (Monotonic_clock.now ()) t.d_start_ns) 1_000_000L)

let remaining_ms t =
  Int64.to_int
    (Int64.div (Int64.sub t.d_stop_ns (Monotonic_clock.now ())) 1_000_000L)

let expired t = Monotonic_clock.now () >= t.d_stop_ns

let check t =
  if expired t then
    raise (Expired { budget_ms = t.d_budget_ms; elapsed_ms = elapsed_ms t })

(* Sampled enforcement for the VM retirement path: one [land] per
   retired instruction, a clock read every [every] (rounded up to a
   power of two).  The hook raises [Expired], which the harness
   converts into the typed [Deadline_exceeded] error — the VM itself
   stays oblivious. *)
let observe ?(every = 4096) t =
  let rec pow2 p = if p >= every then p else pow2 (p * 2) in
  let mask = pow2 1 - 1 in
  fun ~pc:_ ~step ~regs:_ ~fregs:_ ~mem:_ ->
    if step land mask = 0 then check t

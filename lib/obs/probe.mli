(** Sampled profiling hooks for the two hot loops: the VM interpreter
    ({!Vm.Exec.run}) and the trace analyzer ({!Ilp.Analyze}).

    A probe is a flat record of pre-registered instruments plus an
    [enabled] flag the hot loop hoists into a local.  Disabled probes
    ({!analyzer_disabled}, {!vm_disabled}) are the default everywhere:
    the per-entry cost is one immutable-bool test on paths that were
    already branchy, so an observability-off run is measurably
    indistinguishable from the pre-observability pipeline (the bench
    acceptance gate holds it under 2%).  Enabled probes still keep the
    per-entry work to plain int fields; publication to the registry
    happens once, when the state finishes.

    Expensive measurements (depth histograms) are {e sampled}: one
    observation every [sample_every] entries, so cost scales down, not
    with trace length. *)

(** Instruments for one {!Ilp.Analyze} state, labeled by machine model. *)
type analyzer = {
  a_enabled : bool;
  a_sample_every : int;  (** histogram sampling period (entries) *)
  a_entries : Metrics.counter;  (** trace entries consumed *)
  a_counted : Metrics.counter;  (** entries counted (timed) *)
  a_flushed : Metrics.counter;
      (** entries flushed after a step-budget cut *)
  a_pred_hits : Metrics.counter;  (** conditional branches predicted right *)
  a_pred_misses : Metrics.counter;  (** conditional branches mispredicted *)
  a_mispredict_flushes : Metrics.counter;
      (** speculation flush events (mispredicts incl. computed jumps) *)
  a_frame_hw : Metrics.gauge;  (** frame-stack depth high-water *)
  a_frame_depth : Metrics.histogram;  (** sampled frame-stack depth *)
}

val analyzer_disabled : analyzer

val analyzer : ?sample_every:int -> Metrics.t -> machine:string -> analyzer
(** Register (idempotently) the per-machine analyzer instruments in the
    given registry.  [sample_every] defaults to 4096. *)

(** Instruments for the VM interpreter. *)
type vm = {
  v_enabled : bool;
  v_sample_mask : int;
      (** sample when [steps land mask = 0]; period rounded to a power
          of two so the hot loop pays one [land] *)
  v_executions : Metrics.counter;
  v_steps : Metrics.counter;  (** retired instructions *)
  v_faults : Metrics.counter;  (** executions that ended in a fault *)
  v_stack_words : Metrics.histogram;  (** sampled VM stack depth, words *)
}

val vm_disabled : vm

val vm : ?sample_every:int -> Metrics.t -> vm
(** Register the VM instruments.  [sample_every] (default 4096) is
    rounded up to a power of two. *)

val pool : Metrics.t -> Stdx.Pool.probe
(** Register the domain-pool instruments (idempotently, by name) and
    return the probe callback {!Stdx.Pool.set_probe} expects:

    - [pool_tasks_submitted_total] / [pool_tasks_completed_total]
    - [pool_queue_depth_highwater] (aggregate queued tasks across all
      deques) and [pool_deque_depth_highwater] (deepest single deque —
      equal to the aggregate under the locked scheduler, strictly more
      informative under stealing where the aggregate can be spread
      thin while one deque is deep)
    - [pool_tasks_in_flight_highwater]
    - [pool_steal_attempts_total] / [pool_steals_total] /
      [pool_parks_total] / [pool_wakes_total]

    High-water gauges are max-updates and counters only increment, so
    the instruments stay commutative and a quiescent pool's totals are
    deterministic.  The callback may run under a pool lock or on a
    bare worker domain: it must stay non-blocking and never re-enter
    the pool — atomic metric updates qualify. *)

val pool_stats : Metrics.t -> Stdx.Pool.stats -> unit
(** Publish a {!Stdx.Pool.stats} snapshot into the same named
    instruments {!pool} registers (registering them first if needed):
    gauges are max-merged, counters topped up to the pool's lifetime
    totals.  This is the scrape path — serve's /metrics calls it so
    pool gauges need no hand-wiring per caller. *)

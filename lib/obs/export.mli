(** Exporters over {!Span} and {!Metrics} snapshots.

    Three formats, all appended to a caller-supplied [Buffer.t] so the
    same data can go to stdout, a file, or a test golden:

    - {!tree}: human summary — the span forest indented by depth with
      durations, then the metric values;
    - {!jsonl}: one JSON object per line ([{"type":"span",...}] /
      [{"type":"counter",...}] / ...), the [--trace-out] file format;
    - {!prometheus}: Prometheus text exposition (TYPE/HELP comments,
      cumulative histogram buckets with [le] labels).

    All three are pure functions of their inputs: golden tests build
    fixed spans/snapshots and pin the exact output. *)

val tree : Buffer.t -> ?metrics:Metrics.snap list -> Span.span array -> unit

val jsonl :
  Buffer.t -> spans:Span.span array -> metrics:Metrics.snap list -> unit

val prometheus : Buffer.t -> Metrics.snap list -> unit

type analyzer = {
  a_enabled : bool;
  a_sample_every : int;
  a_entries : Metrics.counter;
  a_counted : Metrics.counter;
  a_flushed : Metrics.counter;
  a_pred_hits : Metrics.counter;
  a_pred_misses : Metrics.counter;
  a_mispredict_flushes : Metrics.counter;
  a_frame_hw : Metrics.gauge;
  a_frame_depth : Metrics.histogram;
}

(* Disabled probes carry real (never-updated) instruments from a
   private registry nothing ever exports, so the hot-loop fields need
   no option wrapping. *)
let null_registry = Metrics.create ()

let frame_depth_buckets = [| 1; 2; 4; 8; 16; 32; 64 |]

let make_analyzer ?(sample_every = 4096) registry ~machine =
  let n fmt = Printf.sprintf fmt machine in
  { a_enabled = registry != null_registry;
    a_sample_every = max 1 sample_every;
    a_entries =
      Metrics.counter registry ~help:"trace entries consumed"
        (n "ilp_analyze_entries_total{machine=%S}");
    a_counted =
      Metrics.counter registry ~help:"entries counted (timed)"
        (n "ilp_analyze_counted_total{machine=%S}");
    a_flushed =
      Metrics.counter registry
        ~help:"entries flushed after the step budget"
        (n "ilp_analyze_flushed_entries_total{machine=%S}");
    a_pred_hits =
      Metrics.counter registry ~help:"conditional branches predicted"
        (n "ilp_analyze_predictor_hits_total{machine=%S}");
    a_pred_misses =
      Metrics.counter registry ~help:"conditional branches mispredicted"
        (n "ilp_analyze_predictor_misses_total{machine=%S}");
    a_mispredict_flushes =
      Metrics.counter registry ~help:"speculation flush events"
        (n "ilp_analyze_mispredict_flushes_total{machine=%S}");
    a_frame_hw =
      Metrics.gauge registry ~help:"frame-stack depth high-water"
        (n "ilp_analyze_frame_depth_highwater{machine=%S}");
    a_frame_depth =
      Metrics.histogram registry ~buckets:frame_depth_buckets
        ~help:"sampled frame-stack depth"
        (n "ilp_analyze_frame_depth{machine=%S}") }

let analyzer_disabled = make_analyzer null_registry ~machine:""

let analyzer ?sample_every registry ~machine =
  make_analyzer ?sample_every registry ~machine

type vm = {
  v_enabled : bool;
  v_sample_mask : int;
  v_executions : Metrics.counter;
  v_steps : Metrics.counter;
  v_faults : Metrics.counter;
  v_stack_words : Metrics.histogram;
}

let stack_buckets = [| 256; 1024; 4096; 16384; 65536; 262144 |]

let rec pow2_at_least n p = if p >= n then p else pow2_at_least n (p * 2)

let make_vm ?(sample_every = 4096) registry =
  { v_enabled = registry != null_registry;
    v_sample_mask = pow2_at_least (max 1 sample_every) 1 - 1;
    v_executions =
      Metrics.counter registry ~help:"VM executions" "vm_executions_total";
    v_steps =
      Metrics.counter registry ~help:"retired instructions" "vm_steps_total";
    v_faults =
      Metrics.counter registry ~help:"executions ending in a fault"
        "vm_faults_total";
    v_stack_words =
      Metrics.histogram registry ~buckets:stack_buckets
        ~help:"sampled VM stack depth (words)" "vm_stack_words" }

let vm_disabled = make_vm null_registry

let vm ?sample_every registry = make_vm ?sample_every registry

(* The domain-pool probe (ROADMAP item 2): a callback Stdx.Pool invokes
   on every queue transition.  High-water gauges stay commutative (max),
   so jobs=N snapshots remain deterministic; live levels for scrapes
   come from [Stdx.Pool.stats] or the serve layer's own gauges. *)
let pool registry =
  let submitted =
    Metrics.counter registry ~help:"tasks submitted to the domain pool"
      "pool_tasks_submitted_total"
  in
  let completed =
    Metrics.counter registry ~help:"tasks completed by the domain pool"
      "pool_tasks_completed_total"
  in
  let depth_hw =
    Metrics.gauge registry ~help:"pool queue depth high-water"
      "pool_queue_depth_highwater"
  in
  let in_flight_hw =
    Metrics.gauge registry ~help:"pool tasks-in-flight high-water"
      "pool_tasks_in_flight_highwater"
  in
  fun event ~depth ~in_flight ->
    Metrics.set_max depth_hw depth;
    Metrics.set_max in_flight_hw in_flight;
    match event with
    | `Submit -> Metrics.incr submitted
    | `Start -> ()
    | `Finish -> Metrics.incr completed

type analyzer = {
  a_enabled : bool;
  a_sample_every : int;
  a_entries : Metrics.counter;
  a_counted : Metrics.counter;
  a_flushed : Metrics.counter;
  a_pred_hits : Metrics.counter;
  a_pred_misses : Metrics.counter;
  a_mispredict_flushes : Metrics.counter;
  a_frame_hw : Metrics.gauge;
  a_frame_depth : Metrics.histogram;
}

(* Disabled probes carry real (never-updated) instruments from a
   private registry nothing ever exports, so the hot-loop fields need
   no option wrapping. *)
let null_registry = Metrics.create ()

let frame_depth_buckets = [| 1; 2; 4; 8; 16; 32; 64 |]

let make_analyzer ?(sample_every = 4096) registry ~machine =
  let n fmt = Printf.sprintf fmt machine in
  { a_enabled = registry != null_registry;
    a_sample_every = max 1 sample_every;
    a_entries =
      Metrics.counter registry ~help:"trace entries consumed"
        (n "ilp_analyze_entries_total{machine=%S}");
    a_counted =
      Metrics.counter registry ~help:"entries counted (timed)"
        (n "ilp_analyze_counted_total{machine=%S}");
    a_flushed =
      Metrics.counter registry
        ~help:"entries flushed after the step budget"
        (n "ilp_analyze_flushed_entries_total{machine=%S}");
    a_pred_hits =
      Metrics.counter registry ~help:"conditional branches predicted"
        (n "ilp_analyze_predictor_hits_total{machine=%S}");
    a_pred_misses =
      Metrics.counter registry ~help:"conditional branches mispredicted"
        (n "ilp_analyze_predictor_misses_total{machine=%S}");
    a_mispredict_flushes =
      Metrics.counter registry ~help:"speculation flush events"
        (n "ilp_analyze_mispredict_flushes_total{machine=%S}");
    a_frame_hw =
      Metrics.gauge registry ~help:"frame-stack depth high-water"
        (n "ilp_analyze_frame_depth_highwater{machine=%S}");
    a_frame_depth =
      Metrics.histogram registry ~buckets:frame_depth_buckets
        ~help:"sampled frame-stack depth"
        (n "ilp_analyze_frame_depth{machine=%S}") }

let analyzer_disabled = make_analyzer null_registry ~machine:""

let analyzer ?sample_every registry ~machine =
  make_analyzer ?sample_every registry ~machine

type vm = {
  v_enabled : bool;
  v_sample_mask : int;
  v_executions : Metrics.counter;
  v_steps : Metrics.counter;
  v_faults : Metrics.counter;
  v_stack_words : Metrics.histogram;
}

let stack_buckets = [| 256; 1024; 4096; 16384; 65536; 262144 |]

let rec pow2_at_least n p = if p >= n then p else pow2_at_least n (p * 2)

let make_vm ?(sample_every = 4096) registry =
  { v_enabled = registry != null_registry;
    v_sample_mask = pow2_at_least (max 1 sample_every) 1 - 1;
    v_executions =
      Metrics.counter registry ~help:"VM executions" "vm_executions_total";
    v_steps =
      Metrics.counter registry ~help:"retired instructions" "vm_steps_total";
    v_faults =
      Metrics.counter registry ~help:"executions ending in a fault"
        "vm_faults_total";
    v_stack_words =
      Metrics.histogram registry ~buckets:stack_buckets
        ~help:"sampled VM stack depth (words)" "vm_stack_words" }

let vm_disabled = make_vm null_registry

let vm ?sample_every registry = make_vm ?sample_every registry

(* The domain-pool instruments (ROADMAP item 2): the single place the
   pool's observable surface is named.  Both the transition probe
   ([pool]) and the snapshot publisher ([pool_stats]) register the same
   instruments, idempotently by name, so serve / bench / tests never
   hand-wire pool gauges again. *)
type pool_instruments = {
  p_submitted : Metrics.counter;
  p_completed : Metrics.counter;
  p_depth_hw : Metrics.gauge;  (* aggregate queued, all deques *)
  p_deque_hw : Metrics.gauge;  (* deepest single deque *)
  p_in_flight_hw : Metrics.gauge;
  p_steal_attempts : Metrics.counter;
  p_steals : Metrics.counter;
  p_parks : Metrics.counter;
  p_wakes : Metrics.counter;
}

let pool_instruments registry =
  { p_submitted =
      Metrics.counter registry ~help:"tasks submitted to the domain pool"
        "pool_tasks_submitted_total";
    p_completed =
      Metrics.counter registry ~help:"tasks completed by the domain pool"
        "pool_tasks_completed_total";
    p_depth_hw =
      Metrics.gauge registry
        ~help:"pool queue depth high-water (aggregate across deques)"
        "pool_queue_depth_highwater";
    p_deque_hw =
      Metrics.gauge registry
        ~help:"deepest single deque high-water (= queue depth when locked)"
        "pool_deque_depth_highwater";
    p_in_flight_hw =
      Metrics.gauge registry ~help:"pool tasks-in-flight high-water"
        "pool_tasks_in_flight_highwater";
    p_steal_attempts =
      Metrics.counter registry ~help:"steal sweeps' victim probes"
        "pool_steal_attempts_total";
    p_steals =
      Metrics.counter registry ~help:"tasks taken from another deque"
        "pool_steals_total";
    p_parks =
      Metrics.counter registry ~help:"workers parked with nothing runnable"
        "pool_parks_total";
    p_wakes =
      Metrics.counter registry ~help:"parked workers woken"
        "pool_wakes_total" }

(* High-water gauges stay commutative (max) and counters only ever
   increment, so jobs=N snapshots stay deterministic for a quiescent
   pool even though the probe now fires without any global lock. *)
let pool registry =
  let i = pool_instruments registry in
  fun event ~depth ~deque ~in_flight ->
    Metrics.set_max i.p_depth_hw depth;
    Metrics.set_max i.p_deque_hw deque;
    Metrics.set_max i.p_in_flight_hw in_flight;
    match event with
    | `Submit -> Metrics.incr i.p_submitted
    | `Start -> ()
    | `Finish -> Metrics.incr i.p_completed
    | `Steal ->
        Metrics.incr i.p_steal_attempts;
        Metrics.incr i.p_steals
    | `Steal_miss -> Metrics.incr i.p_steal_attempts
    | `Park -> Metrics.incr i.p_parks
    | `Wake -> Metrics.incr i.p_wakes

let pool_stats registry (st : Stdx.Pool.stats) =
  let i = pool_instruments registry in
  Metrics.set_max i.p_depth_hw st.depth;
  Metrics.set_max i.p_deque_hw st.deque_depth;
  Metrics.set_max i.p_in_flight_hw st.in_flight;
  (* Lifetime totals from the pool are authoritative: the snapshot may
     be the only publication (no probe installed), so reconcile the
     counters up to the pool's own numbers. *)
  let top_up c target =
    let have = Metrics.counter_value c in
    if target > have then Metrics.add c (target - have)
  in
  top_up i.p_submitted st.submitted;
  top_up i.p_completed st.completed;
  top_up i.p_steal_attempts st.steal_attempts;
  top_up i.p_steals st.steals;
  top_up i.p_parks st.parks;
  top_up i.p_wakes st.wakes

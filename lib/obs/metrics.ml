type counter = {
  c_name : string;
  c_help : string;
  c_v : int Atomic.t;
}

type gauge = {
  g_name : string;
  g_help : string;
  g_v : int Atomic.t;
}

type histogram = {
  h_name : string;
  h_help : string;
  h_bounds : int array;
  h_counts : int Atomic.t array;  (* length = bounds + 1 (overflow) *)
  h_sum : int Atomic.t;
}

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_histogram of histogram

type t = {
  mu : Mutex.t;
  items : (string, instrument) Hashtbl.t;
}

let create () = { mu = Mutex.create (); items = Hashtbl.create 32 }

let global = create ()

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Idempotent registration: the first caller creates the instrument,
   later callers get the same cell back.  A name re-registered as a
   different kind (or a histogram with different bounds) is a
   programming error — aliasing would silently merge two meanings. *)
let register t name make check =
  locked t (fun () ->
      match Hashtbl.find_opt t.items name with
      | Some existing -> check existing
      | None ->
        let i = make () in
        Hashtbl.add t.items name i;
        i)

let kind_clash name =
  invalid_arg
    (Printf.sprintf
       "Obs.Metrics: %S already registered as a different instrument kind"
       name)

let counter t ?(help = "") name =
  match
    register t name
      (fun () -> I_counter { c_name = name; c_help = help; c_v = Atomic.make 0 })
      (function I_counter _ as i -> i | _ -> kind_clash name)
  with
  | I_counter c -> c
  | _ -> assert false

let incr c = Atomic.incr c.c_v
let add c n = ignore (Atomic.fetch_and_add c.c_v n)
let counter_value c = Atomic.get c.c_v
let reset_counter c = Atomic.set c.c_v 0

let gauge t ?(help = "") name =
  match
    register t name
      (fun () -> I_gauge { g_name = name; g_help = help; g_v = Atomic.make 0 })
      (function I_gauge _ as i -> i | _ -> kind_clash name)
  with
  | I_gauge g -> g
  | _ -> assert false

(* Max is commutative and idempotent: however many domains race here,
   the final value is the max of every observation — same as
   sequential. *)
let rec set_max g v =
  let cur = Atomic.get g.g_v in
  if v > cur && not (Atomic.compare_and_set g.g_v cur v) then set_max g v

(* Last-write-wins: for live values (queue depth, tasks in flight) a
   scrape should see the current level, not the high-water mark.
   Deterministic pipelines must keep using [set_max]. *)
let set g v = Atomic.set g.g_v v

let gauge_value g = Atomic.get g.g_v

let histogram t ?(help = "") ~buckets name =
  let ok =
    Array.length buckets > 0
    &&
    let sorted = ref true in
    for i = 1 to Array.length buckets - 1 do
      if buckets.(i) <= buckets.(i - 1) then sorted := false
    done;
    !sorted
  in
  if not ok then
    invalid_arg
      (Printf.sprintf
         "Obs.Metrics: histogram %S needs strictly increasing bounds" name);
  match
    register t name
      (fun () ->
        I_histogram
          { h_name = name; h_help = help; h_bounds = Array.copy buckets;
            h_counts = Array.init (Array.length buckets + 1)
                         (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0 })
      (function
        | I_histogram h as i ->
          if h.h_bounds <> buckets then
            invalid_arg
              (Printf.sprintf
                 "Obs.Metrics: histogram %S re-registered with different \
                  bounds"
                 name);
          i
        | _ -> kind_clash name)
  with
  | I_histogram h -> h
  | _ -> assert false

let observe h v =
  let bounds = h.h_bounds in
  let n = Array.length bounds in
  let rec idx i = if i >= n || v <= bounds.(i) then i else idx (i + 1) in
  ignore (Atomic.fetch_and_add h.h_counts.(idx 0) 1);
  ignore (Atomic.fetch_and_add h.h_sum v)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of { bounds : int array; counts : int array; sum : int }

type snap = {
  name : string;
  help : string;
  value : value;
}

let snap_of = function
  | I_counter c ->
    { name = c.c_name; help = c.c_help; value = Counter (Atomic.get c.c_v) }
  | I_gauge g ->
    { name = g.g_name; help = g.g_help; value = Gauge (Atomic.get g.g_v) }
  | I_histogram h ->
    { name = h.h_name; help = h.h_help;
      value =
        Histogram
          { bounds = Array.copy h.h_bounds;
            counts = Array.map Atomic.get h.h_counts;
            sum = Atomic.get h.h_sum } }

let snapshot t =
  let all =
    locked t (fun () ->
        Hashtbl.fold (fun _ i acc -> snap_of i :: acc) t.items [])
  in
  List.sort (fun a b -> String.compare a.name b.name) all

let reset t =
  locked t (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | I_counter c -> Atomic.set c.c_v 0
          | I_gauge g -> Atomic.set g.g_v 0
          | I_histogram h ->
            Array.iter (fun c -> Atomic.set c 0) h.h_counts;
            Atomic.set h.h_sum 0)
        t.items)

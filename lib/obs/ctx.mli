(** The observability context a driver threads through the pipeline:
    one metrics registry plus indexed span buffers, one per task.

    {!disabled} is the zero-cost default: probes come back disabled,
    task buffers come back inert, and the hot loops pay one hoisted
    bool test.  An enabled context ({!create}) hands each pipeline
    task its own single-writer span buffer keyed by the task's
    {e index} (its position in the input list, not its scheduling
    order); {!spans} merges buffers in index order, so the merged
    span stream — like every metric total — is identical for jobs=N
    and sequential runs. *)

type t

val disabled : t

val create : ?registry:Metrics.t -> unit -> t
(** An enabled context.  [registry] defaults to {!Metrics.global}, so
    probe metrics and the pipeline counters land in one snapshot. *)

val enabled : t -> bool

val metrics : t -> Metrics.t

val task_buffer : t -> index:int -> label:string -> Span.buffer
(** The span buffer for task [index] (creating it if needed; a fresh
    call with the same index returns a new buffer appended after the
    first, keeping re-runs of an index distinguishable).  On a
    disabled context: {!Span.disabled}. *)

val spans : t -> Span.span array
(** Every recorded span, buffers merged by ascending task index
    (ties: registration order).  Deterministic given deterministic
    tasks. *)

val snapshot : t -> Metrics.snap list

val vm_probe : t -> Probe.vm
(** A VM probe over this context's registry; {!Probe.vm_disabled} when
    the context is disabled. *)

val analyzer_probe : t -> machine:string -> Probe.analyzer
(** Per-machine analyzer probe; disabled when the context is. *)

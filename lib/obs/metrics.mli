(** Domain-safe metrics registry: named counters, gauges and
    fixed-bucket histograms.

    Every instrument is an {!Atomic}-backed cell (or array of cells),
    so pipelines running concurrently on pool domains update them
    without locks — and because every update is commutative
    (counter adds, max-tracking gauge CAS, per-bucket histogram adds),
    the totals a parallel run reports are {e exactly} the sequential
    run's totals, for any [--jobs] value and any scheduling.  That is
    the registry-side half of the determinism argument DESIGN.md §10
    makes for the whole observability layer.

    Registration is idempotent by name: asking twice for the same
    counter returns the same cell (guarded by the registry mutex —
    registration is rare, updates are lock-free).  Re-registering a
    name as a different instrument kind, or a histogram with different
    bucket bounds, raises [Invalid_argument]: silent aliasing would
    corrupt both users' numbers.

    Names follow the Prometheus convention ([snake_case], labels in
    braces: ["ilp_analyze_entries_total{machine=\"SP-CD-MF\"}"]); the
    exporters in {!Export} rely on that shape. *)

type t
(** A registry: a named collection of instruments. *)

val create : unit -> t

val global : t
(** The process-wide default registry.  {!Harness.Counters} and
    {!Ctx.create} (without an explicit [registry]) both use it, so one
    snapshot covers the pipeline counters and every probe metric. *)

(** {1 Counters} — monotonically increasing sums. *)

type counter

val counter : t -> ?help:string -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val reset_counter : counter -> unit
(** Zero one counter (test isolation); other instruments in the
    registry are untouched. *)

(** {1 Gauges} — high-water marks. *)

type gauge

val gauge : t -> ?help:string -> string -> gauge

val set_max : gauge -> int -> unit
(** Raise the gauge to [v] if [v] is larger (atomic compare-and-swap
    loop; max is commutative, preserving parallel determinism). *)

val set : gauge -> int -> unit
(** Overwrite the gauge with the current level (last write wins).  For
    {e live} server gauges — queue depth, tasks in flight — where a
    scrape wants the present value.  Not commutative: pipelines that
    promise jobs=N determinism must use {!set_max} instead. *)

val gauge_value : gauge -> int

(** {1 Histograms} — fixed upper-bound buckets. *)

type histogram

val histogram : t -> ?help:string -> buckets:int array -> string -> histogram
(** [buckets] are inclusive upper bounds, strictly increasing; an
    implicit overflow bucket catches everything above the last bound. *)

val observe : histogram -> int -> unit
(** Count [v] in the first bucket whose bound is [>= v] (or the
    overflow bucket) and add it to the running sum. *)

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of { bounds : int array; counts : int array; sum : int }
      (** [counts] has [length bounds + 1] entries, the last being the
          overflow bucket; not cumulative (exporters cumulate). *)

type snap = {
  name : string;
  help : string;
  value : value;
}

val snapshot : t -> snap list
(** All instruments, sorted by name — a deterministic order whatever
    the registration interleaving was. *)

val reset : t -> unit
(** Zero every instrument in the registry (instruments stay
    registered). *)

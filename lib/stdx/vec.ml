type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length v = v.len

let is_empty v = v.len = 0

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (2 * cap) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let unsafe_get v i = Array.unsafe_get v.data i

let set v i x =
  check v i;
  v.data.(i) <- x

let last v =
  if v.len = 0 then invalid_arg "Vec.last: empty";
  v.data.(v.len - 1)

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let clear v = v.len <- 0

(* The iterators walk [data] directly — no bounds check per element, no
   [to_array] blit — since [0..len-1] is in range by construction. *)

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let to_array v = Array.sub v.data 0 v.len

let of_array ~dummy a =
  { data = (if Array.length a = 0 then [| dummy |] else Array.copy a);
    len = Array.length a;
    dummy }

(** Growable vectors.

    A tiny dynamic-array implementation used throughout the project for
    trace buffers and work lists.  Elements are stored in a plain [array];
    pushing beyond the capacity doubles the storage. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty vector.  [dummy] fills unused capacity
    and is never observable through the API. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element.  @raise Invalid_argument when [i] is
    out of bounds. *)

val unsafe_get : 'a t -> int -> 'a
(** [get] without the bounds check, for hot loops whose index is already
    known to be in [0, length v).  Out-of-range access is undefined. *)

val set : 'a t -> int -> 'a -> unit

val last : 'a t -> 'a
(** @raise Invalid_argument on an empty vector. *)

val pop : 'a t -> 'a
(** Removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Iteration reads the backing array in place: no copy, no per-element
    bounds check. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array

val of_array : dummy:'a -> 'a array -> 'a t

type task = unit -> unit

type probe =
  [ `Submit | `Start | `Finish ] -> depth:int -> in_flight:int -> unit

type stats = {
  depth : int;
  in_flight : int;
  submitted : int;
  completed : int;
}

type t = {
  mutex : Mutex.t;
  (* signaled when a task is queued or [stop] is set *)
  work : Condition.t;
  queue : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
  (* queue-depth / tasks-in-flight instrumentation: all counters are
     guarded by [mutex] (every transition already holds it), and the
     optional probe fires inside the same critical section so its
     depth/in-flight arguments are exact, never torn. *)
  mutable in_flight : int;
  mutable submitted : int;
  mutable completed : int;
  mutable probe : probe option;
}

let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

let notify t event =
  match t.probe with
  | None -> ()
  | Some f ->
    f event ~depth:(Queue.length t.queue) ~in_flight:t.in_flight

(* Tasks are pre-wrapped by [map_array] and never raise; a worker loops
   until shutdown. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if t.stop then None
    else
      match Queue.take_opt t.queue with
      | Some task ->
        t.in_flight <- t.in_flight + 1;
        notify t `Start;
        Some task
      | None ->
        Condition.wait t.work t.mutex;
        next ()
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some task ->
    Mutex.unlock t.mutex;
    task ();
    Mutex.lock t.mutex;
    t.in_flight <- t.in_flight - 1;
    t.completed <- t.completed + 1;
    notify t `Finish;
    Mutex.unlock t.mutex;
    worker_loop t

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> recommended_jobs ()
  in
  let t =
    { mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
      jobs;
      in_flight = 0;
      submitted = 0;
      completed = 0;
      probe = None }
  in
  t.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let set_probe t probe =
  Mutex.lock t.mutex;
  t.probe <- probe;
  Mutex.unlock t.mutex

let stats t =
  Mutex.lock t.mutex;
  let s =
    { depth = Queue.length t.queue;
      in_flight = t.in_flight;
      submitted = t.submitted;
      completed = t.completed }
  in
  Mutex.unlock t.mutex;
  s

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let map_array t f arr =
  let n = Array.length arr in
  if t.stop then invalid_arg "Pool.map_array: pool is shut down";
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 then begin
    (* Inline path: no queue, but the work still counts.  The probe
       sees each task start and finish so in-flight reaches 1, and
       submitted/completed totals match the pooled path. *)
    Array.map
      (fun x ->
        Mutex.lock t.mutex;
        t.submitted <- t.submitted + 1;
        notify t `Submit;
        t.in_flight <- t.in_flight + 1;
        notify t `Start;
        Mutex.unlock t.mutex;
        let r =
          match f x with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock t.mutex;
        t.in_flight <- t.in_flight - 1;
        t.completed <- t.completed + 1;
        notify t `Finish;
        Mutex.unlock t.mutex;
        match r with
        | Ok v -> v
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
      arr
  end
  else begin
    let results = Array.make n None in
    (* guarded by t.mutex *)
    let remaining = ref n in
    let finished = Condition.create () in
    let run_one i () =
      let r =
        match f (Array.unsafe_get arr i) with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.mutex;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.broadcast finished;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (run_one i) t.queue;
      t.submitted <- t.submitted + 1;
      notify t `Submit
    done;
    Condition.broadcast t.work;
    (* The submitter helps: run queued tasks (possibly of a nested
       batch) until the queue drains, then wait for the stragglers
       other domains are still running. *)
    let rec help () =
      match Queue.take_opt t.queue with
      | Some task ->
        t.in_flight <- t.in_flight + 1;
        notify t `Start;
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        t.in_flight <- t.in_flight - 1;
        t.completed <- t.completed + 1;
        notify t `Finish;
        if !remaining > 0 then help ()
      | None -> ()
    in
    help ();
    while !remaining > 0 do
      Condition.wait finished t.mutex
    done;
    Mutex.unlock t.mutex;
    (* All slots are filled; surface the lowest-indexed failure only
       now, with the pool quiescent. *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let map_list t f l = Array.to_list (map_array t f (Array.of_list l))

(* Futures: single-shot boxes with their own mutex/condition so a
   waiter never contends with the pool's queue lock while sleeping. *)

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a future_state;
}

and 'a future_state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

let async t f =
  if t.stop then invalid_arg "Pool.async: pool is shut down";
  let fut =
    { f_mutex = Mutex.create ();
      f_cond = Condition.create ();
      f_state = Pending }
  in
  let run () =
    let r =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fut.f_mutex;
    fut.f_state <- r;
    Condition.broadcast fut.f_cond;
    Mutex.unlock fut.f_mutex
  in
  if t.jobs = 1 then begin
    (* Inline path, mirroring [map_array]: the task runs at submit
       time so [await] never blocks, and the probe counters match the
       pooled path.  Exceptions stay boxed until [await]. *)
    Mutex.lock t.mutex;
    t.submitted <- t.submitted + 1;
    notify t `Submit;
    t.in_flight <- t.in_flight + 1;
    notify t `Start;
    Mutex.unlock t.mutex;
    run ();
    Mutex.lock t.mutex;
    t.in_flight <- t.in_flight - 1;
    t.completed <- t.completed + 1;
    notify t `Finish;
    Mutex.unlock t.mutex
  end
  else begin
    Mutex.lock t.mutex;
    Queue.add run t.queue;
    t.submitted <- t.submitted + 1;
    notify t `Submit;
    Condition.signal t.work;
    Mutex.unlock t.mutex
  end;
  fut

let poll fut =
  Mutex.lock fut.f_mutex;
  let s = fut.f_state in
  Mutex.unlock fut.f_mutex;
  match s with Pending -> false | Done _ | Failed _ -> true

let await t fut =
  let state () =
    Mutex.lock fut.f_mutex;
    let s = fut.f_state in
    Mutex.unlock fut.f_mutex;
    s
  in
  let finish = function
    | Done v -> v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending -> assert false
  in
  match state () with
  | (Done _ | Failed _) as s -> finish s
  | Pending ->
    (* Help: drain queued tasks (ours or anyone's) while the future is
       pending, exactly like [map_array]'s submitting domain, so a
       task awaiting another task on a narrow pool cannot deadlock. *)
    let rec help () =
      Mutex.lock t.mutex;
      match Queue.take_opt t.queue with
      | Some task ->
        t.in_flight <- t.in_flight + 1;
        notify t `Start;
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        t.in_flight <- t.in_flight - 1;
        t.completed <- t.completed + 1;
        notify t `Finish;
        Mutex.unlock t.mutex;
        (match state () with
        | (Done _ | Failed _) as s -> finish s
        | Pending -> help ())
      | None ->
        Mutex.unlock t.mutex;
        (* Queue empty: the future's task is running on another
           domain.  Sleep on the future's own condition. *)
        Mutex.lock fut.f_mutex;
        let rec wait () =
          match fut.f_state with
          | Pending ->
            Condition.wait fut.f_cond fut.f_mutex;
            wait ()
          | (Done _ | Failed _) as s -> s
        in
        let s = wait () in
        Mutex.unlock fut.f_mutex;
        finish s
    in
    help ()

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

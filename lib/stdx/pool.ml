type task = unit -> unit

type t = {
  mutex : Mutex.t;
  (* signaled when a task is queued or [stop] is set *)
  work : Condition.t;
  queue : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

(* Tasks are pre-wrapped by [map_array] and never raise; a worker loops
   until shutdown. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if t.stop then None
    else
      match Queue.take_opt t.queue with
      | Some task -> Some task
      | None ->
        Condition.wait t.work t.mutex;
        next ()
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some task ->
    Mutex.unlock t.mutex;
    task ();
    worker_loop t

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> recommended_jobs ()
  in
  let t =
    { mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
      jobs }
  in
  t.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let map_array t f arr =
  let n = Array.length arr in
  if t.stop then invalid_arg "Pool.map_array: pool is shut down";
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    (* guarded by t.mutex *)
    let remaining = ref n in
    let finished = Condition.create () in
    let run_one i () =
      let r =
        match f (Array.unsafe_get arr i) with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.mutex;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.broadcast finished;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (run_one i) t.queue
    done;
    Condition.broadcast t.work;
    (* The submitter helps: run queued tasks (possibly of a nested
       batch) until the queue drains, then wait for the stragglers
       other domains are still running. *)
    let rec help () =
      match Queue.take_opt t.queue with
      | Some task ->
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        if !remaining > 0 then help ()
      | None -> ()
    in
    help ();
    while !remaining > 0 do
      Condition.wait finished t.mutex
    done;
    Mutex.unlock t.mutex;
    (* All slots are filled; surface the lowest-indexed failure only
       now, with the pool quiescent. *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let map_list t f l = Array.to_list (map_array t f (Array.of_list l))

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

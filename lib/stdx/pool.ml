type probe_event =
  [ `Submit | `Start | `Finish | `Steal | `Steal_miss | `Park | `Wake ]

type probe = probe_event -> depth:int -> deque:int -> in_flight:int -> unit

type stats = {
  depth : int;
  deque_depth : int;
  in_flight : int;
  submitted : int;
  completed : int;
  steal_attempts : int;
  steals : int;
  parks : int;
  wakes : int;
}

let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

module type S = sig
  type t

  val create : ?jobs:int -> unit -> t
  val jobs : t -> int
  val set_probe : t -> probe option -> unit
  val stats : t -> stats
  val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
  val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

  type 'a future

  val async : t -> (unit -> 'a) -> 'a future
  val await : t -> 'a future -> 'a
  val poll : 'a future -> bool
  val shutdown : t -> unit
  val with_pool : ?jobs:int -> (t -> 'a) -> 'a
end

type task = unit -> unit

(* Shared single-shot result box: both schedulers resolve futures the
   same way, under the future's own mutex/condition so an [await]er
   that ran out of work to help with can sleep without touching any
   scheduler lock. *)
module Future = struct
  type 'a state =
    | Pending
    | Done of 'a
    | Failed of exn * Printexc.raw_backtrace

  type 'a t = {
    mutex : Mutex.t;
    cond : Condition.t;
    mutable state : 'a state;
  }

  let make () =
    { mutex = Mutex.create (); cond = Condition.create (); state = Pending }

  let resolve fut state =
    Mutex.lock fut.mutex;
    fut.state <- state;
    Condition.broadcast fut.cond;
    Mutex.unlock fut.mutex

  let peek fut =
    Mutex.lock fut.mutex;
    let s = fut.state in
    Mutex.unlock fut.mutex;
    s

  let poll fut =
    match peek fut with Pending -> false | Done _ | Failed _ -> true

  (* Block until resolved; used only once helping found nothing
     runnable, i.e. the task is in flight on another domain. *)
  let wait fut =
    Mutex.lock fut.mutex;
    let rec loop () =
      match fut.state with
      | Pending ->
          Condition.wait fut.cond fut.mutex;
          loop ()
      | s -> s
    in
    let s = loop () in
    Mutex.unlock fut.mutex;
    s

  let unbox = function
    | Done v -> v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending -> assert false
end

(* The original scheduler: one mutex/condition pair guarding a central
   FIFO.  Kept as the reference implementation the stealer is
   differential-tested against. *)
module Locked : S = struct
  type t = {
    mutex : Mutex.t;
    (* signaled when a task is queued or [stop] is set *)
    work : Condition.t;
    queue : task Queue.t;
    mutable stop : bool;
    mutable workers : unit Domain.t list;
    jobs : int;
    (* queue-depth / tasks-in-flight instrumentation: all counters are
       guarded by [mutex] (every transition already holds it), and the
       optional probe fires inside the same critical section so its
       depth/in-flight arguments are exact, never torn. *)
    mutable in_flight : int;
    mutable submitted : int;
    mutable completed : int;
    mutable probe : probe option;
  }

  let notify t event =
    match t.probe with
    | None -> ()
    | Some f ->
        let depth = Queue.length t.queue in
        f event ~depth ~deque:depth ~in_flight:t.in_flight

  (* Tasks are pre-wrapped by [map_array] and never raise; a worker
     loops until shutdown. *)
  let worker_loop t =
    let rec next () =
      Mutex.lock t.mutex;
      let rec take () =
        if t.stop then None
        else
          match Queue.take_opt t.queue with
          | Some task -> Some task
          | None ->
              Condition.wait t.work t.mutex;
              take ()
      in
      let task = take () in
      (match task with
      | Some _ ->
          t.in_flight <- t.in_flight + 1;
          notify t `Start
      | None -> ());
      Mutex.unlock t.mutex;
      match task with
      | None -> ()
      | Some task ->
          task ();
          Mutex.lock t.mutex;
          t.in_flight <- t.in_flight - 1;
          t.completed <- t.completed + 1;
          notify t `Finish;
          Mutex.unlock t.mutex;
          next ()
    in
    next ()

  let create ?(jobs = recommended_jobs ()) () =
    let jobs = max 1 jobs in
    let t =
      {
        mutex = Mutex.create ();
        work = Condition.create ();
        queue = Queue.create ();
        stop = false;
        workers = [];
        jobs;
        in_flight = 0;
        submitted = 0;
        completed = 0;
        probe = None;
      }
    in
    if jobs > 1 then
      t.workers <-
        List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
    t

  let jobs t = t.jobs

  let set_probe t p =
    Mutex.lock t.mutex;
    t.probe <- p;
    Mutex.unlock t.mutex

  let stats t =
    Mutex.lock t.mutex;
    let s =
      {
        depth = Queue.length t.queue;
        deque_depth = Queue.length t.queue;
        in_flight = t.in_flight;
        submitted = t.submitted;
        completed = t.completed;
        steal_attempts = 0;
        steals = 0;
        parks = 0;
        wakes = 0;
      }
    in
    Mutex.unlock t.mutex;
    s

  let check_alive t op =
    if t.stop then invalid_arg (Printf.sprintf "Pool.%s: pool is shut down" op)

  (* Run one task inline on the calling domain, with full accounting,
     re-raising with the original backtrace. *)
  let run_inline t f x =
    Mutex.lock t.mutex;
    t.submitted <- t.submitted + 1;
    notify t `Submit;
    t.in_flight <- t.in_flight + 1;
    notify t `Start;
    Mutex.unlock t.mutex;
    let finish () =
      Mutex.lock t.mutex;
      t.in_flight <- t.in_flight - 1;
      t.completed <- t.completed + 1;
      notify t `Finish;
      Mutex.unlock t.mutex
    in
    match f x with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt

  let map_array t f arr =
    check_alive t "map_array";
    let n = Array.length arr in
    if n = 0 then [||]
    else if t.jobs = 1 || n = 1 then Array.map (fun x -> run_inline t f x) arr
    else begin
      let results = Array.make n None in
      let remaining = ref n in
      let finished = Condition.create () in
      let run_one i () =
        let r =
          match f arr.(i) with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock t.mutex;
        results.(i) <- Some r;
        decr remaining;
        if !remaining = 0 then Condition.broadcast finished;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.add (run_one i) t.queue;
        t.submitted <- t.submitted + 1;
        notify t `Submit
      done;
      Condition.broadcast t.work;
      (* The submitting domain helps drain the queue rather than
         blocking — this is what makes nested [map_array] calls from
         inside tasks safe on a narrow pool. *)
      let rec help () =
        if !remaining > 0 then
          match Queue.take_opt t.queue with
          | Some task ->
              t.in_flight <- t.in_flight + 1;
              notify t `Start;
              Mutex.unlock t.mutex;
              task ();
              Mutex.lock t.mutex;
              t.in_flight <- t.in_flight - 1;
              t.completed <- t.completed + 1;
              notify t `Finish;
              help ()
          | None ->
              (* Queue drained but stragglers are in flight on other
                 domains: wait for the batch to complete. *)
              while !remaining > 0 do
                Condition.wait finished t.mutex
              done
      in
      help ();
      Mutex.unlock t.mutex;
      let out =
        Array.map
          (function
            | Some (Ok v) -> `Ok v
            | Some (Error (e, bt)) -> `Err (e, bt)
            | None -> assert false)
          results
      in
      (* Re-raise the lowest-indexed failure, if any — deterministic no
         matter which domain hit it first. *)
      Array.iter
        (function
          | `Err (e, bt) -> Printexc.raise_with_backtrace e bt | `Ok _ -> ())
        out;
      Array.map (function `Ok v -> v | `Err _ -> assert false) out
    end

  let map_list t f l = Array.to_list (map_array t f (Array.of_list l))

  type 'a future = 'a Future.t

  let async t f =
    check_alive t "async";
    let fut = Future.make () in
    if t.jobs = 1 then begin
      let state =
        match run_inline t f () with
        | v -> Future.Done v
        | exception e -> Future.Failed (e, Printexc.get_raw_backtrace ())
      in
      Future.resolve fut state;
      fut
    end
    else begin
      let run () =
        let state =
          match f () with
          | v -> Future.Done v
          | exception e -> Future.Failed (e, Printexc.get_raw_backtrace ())
        in
        Future.resolve fut state
      in
      Mutex.lock t.mutex;
      Queue.add run t.queue;
      t.submitted <- t.submitted + 1;
      notify t `Submit;
      Condition.signal t.work;
      Mutex.unlock t.mutex;
      fut
    end

  let poll = Future.poll

  let await t fut =
    match Future.peek fut with
    | (Future.Done _ | Future.Failed _) as s -> Future.unbox s
    | Future.Pending ->
        (* Help: drain queued tasks (any tasks — helping is what keeps
           futures awaiting futures deadlock-free) until the future
           resolves or the queue runs dry. *)
        let rec help () =
          match Future.peek fut with
          | (Future.Done _ | Future.Failed _) as s -> Future.unbox s
          | Future.Pending -> (
              Mutex.lock t.mutex;
              let task = Queue.take_opt t.queue in
              (match task with
              | Some _ ->
                  t.in_flight <- t.in_flight + 1;
                  notify t `Start
              | None -> ());
              Mutex.unlock t.mutex;
              match task with
              | Some task ->
                  task ();
                  Mutex.lock t.mutex;
                  t.in_flight <- t.in_flight - 1;
                  t.completed <- t.completed + 1;
                  notify t `Finish;
                  Mutex.unlock t.mutex;
                  help ()
              | None ->
                  (* Nothing runnable: the task is in flight on another
                     domain.  Sleep on the future's own condition. *)
                  Future.unbox (Future.wait fut))
        in
        help ()

  let shutdown t =
    Mutex.lock t.mutex;
    let ws = t.workers in
    t.workers <- [];
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join ws

  let with_pool ?jobs f =
    let t = create ?jobs () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end

(* The work-stealing scheduler.

   Topology: [jobs] Chase–Lev deques.  Deque 0 belongs to submitting
   threads (the "submitter owns a deque too" re-expression of helping);
   deques 1..jobs-1 each belong to exactly one worker domain.  Owners
   push and pop LIFO at the bottom; thieves steal FIFO at the top with
   a single compare-and-set on [top].

   One asymmetry: worker deques have a true single owner (the worker
   domain), so owner operations there are lock-free.  Deque 0 does
   not — the serve daemon submits from several systhreads of the main
   domain, and tests submit from whatever context they like — so owner
   operations on deque 0 alone are serialized by [sub_mutex].  Thieves
   never take that lock; stealing from deque 0 stays lock-free.

   Parking: a worker that found nothing to pop or steal sleeps on
   [park_cond], guarded by an epoch counter.  Every push bumps [epoch]
   (atomically) and wakes sleepers if any; a worker about to park
   re-reads the epoch under [park_mutex] after a final exhaustive steal
   sweep, and refuses to sleep if the epoch moved.  Because the atomics
   are sequentially consistent this cannot lose a wakeup: a push either
   lands before the worker's final sweep (the sweep finds it — sweeps
   only skip a victim on a confirmed-empty read, retrying lost CAS
   races) or after the worker's epoch read (the recheck sees the bump
   and the worker does not sleep).  See DESIGN.md §16. *)
module Steal : S = struct
  (* A growable circular Chase–Lev deque (Chase & Lev, SPAA 2005), in
     the style of domainslib's ws_deque.  OCaml's GC stands in for the
     reclamation side of the original algorithm, and sequentially
     consistent atomics for its fences. *)
  module Deque = struct
    let no_task : task = fun () -> ()

    type t = {
      top : int Atomic.t;  (* next index thieves take from *)
      bottom : int Atomic.t;  (* next index the owner pushes at *)
      buf : task array Atomic.t;  (* circular; length always a power of 2 *)
    }

    type steal_result = Empty | Lost | Stolen of task

    let create () =
      {
        top = Atomic.make 0;
        bottom = Atomic.make 0;
        buf = Atomic.make (Array.make 16 no_task);
      }

    let size d = max 0 (Atomic.get d.bottom - Atomic.get d.top)

    (* Owner only.  The old buffer is copied, never mutated, so a
       concurrent thief holding it still reads valid tasks. *)
    let grow d b t a =
      let n = Array.length a in
      let a' = Array.make (2 * n) no_task in
      for i = t to b - 1 do
        a'.(i land ((2 * n) - 1)) <- a.(i land (n - 1))
      done;
      Atomic.set d.buf a';
      a'

    (* Owner only. *)
    let push d task =
      let b = Atomic.get d.bottom in
      let t = Atomic.get d.top in
      let a = Atomic.get d.buf in
      let a = if b - t >= Array.length a then grow d b t a else a in
      a.(b land (Array.length a - 1)) <- task;
      Atomic.set d.bottom (b + 1)

    (* Owner only. *)
    let pop d =
      let b = Atomic.get d.bottom - 1 in
      Atomic.set d.bottom b;
      let t = Atomic.get d.top in
      if b < t then begin
        (* Already empty. *)
        Atomic.set d.bottom t;
        None
      end
      else begin
        let a = Atomic.get d.buf in
        let i = b land (Array.length a - 1) in
        let task = a.(i) in
        if b > t then begin
          (* More than one element: no thief can be reading slot [i]
             (they contend below [bottom - 1]), so clearing it is safe
             and keeps the closure from outliving its batch. *)
          a.(i) <- no_task;
          Some task
        end
        else begin
          (* Last element: race the thieves for it via [top]. *)
          let won = Atomic.compare_and_set d.top t (t + 1) in
          Atomic.set d.bottom (t + 1);
          if won then Some task else None
        end
      end

    (* Any thief.  [Lost] means a concurrent pop/steal won the race for
       index [t]; the deque may still be non-empty, so callers retry
       the same victim until [Empty] or [Stolen] — that confirmed-empty
       discipline is what the parking argument relies on. *)
    let steal d =
      let t = Atomic.get d.top in
      let b = Atomic.get d.bottom in
      if b - t <= 0 then Empty
      else begin
        let a = Atomic.get d.buf in
        let task = a.(t land (Array.length a - 1)) in
        (* If the owner overwrote slot [t] (buffer wrap) then some thief
           already advanced [top] past [t], so this CAS fails and the
           possibly-stale read is discarded. *)
        if Atomic.compare_and_set d.top t (t + 1) then Stolen task else Lost
      end
  end

  type t = {
    uid : int;  (* key for the domain-local deque registry *)
    jobs : int;
    deques : Deque.t array;  (* .(0) = submitters, .(k >= 1) = worker k *)
    sub_mutex : Mutex.t;  (* serializes owner ops on deques.(0) only *)
    park_mutex : Mutex.t;
    park_cond : Condition.t;
    epoch : int Atomic.t;  (* bumped by every push *)
    parked : int Atomic.t;  (* workers currently asleep *)
    stop : bool Atomic.t;
    mutable workers : unit Domain.t list;
    in_flight : int Atomic.t;
    submitted : int Atomic.t;
    completed : int Atomic.t;
    steal_attempts : int Atomic.t;
    steals : int Atomic.t;
    parks : int Atomic.t;
    wakes : int Atomic.t;
    probe : probe option Atomic.t;
  }

  let next_uid = Atomic.make 0

  (* Which deque does the calling domain own, per pool?  Workers
     register themselves at spawn; every other domain (the submitter,
     serve's systhreads, test runners) maps to deque 0. *)
  let dls_key : (int * int) list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let my_index t =
    match List.assoc_opt t.uid !(Domain.DLS.get dls_key) with
    | Some k -> k
    | None -> 0

  let register_index t k =
    let regs = Domain.DLS.get dls_key in
    regs := (t.uid, k) :: !regs

  let depths t =
    let total = ref 0 and deepest = ref 0 in
    Array.iter
      (fun d ->
        let s = Deque.size d in
        total := !total + s;
        if s > !deepest then deepest := s)
      t.deques;
    (!total, !deepest)

  let notify t event =
    match Atomic.get t.probe with
    | None -> ()
    | Some f ->
        let depth, deque = depths t in
        f event ~depth ~deque ~in_flight:(Atomic.get t.in_flight)

  (* Owner operations, routed through [sub_mutex] for deque 0 (shared
     between the main domain's systhreads) and lock-free for the true
     single-owner worker deques. *)
  let own_push t k task =
    if k = 0 then begin
      Mutex.lock t.sub_mutex;
      Deque.push t.deques.(0) task;
      Mutex.unlock t.sub_mutex
    end
    else Deque.push t.deques.(k) task

  let own_pop t k =
    if k = 0 then begin
      Mutex.lock t.sub_mutex;
      let r = Deque.pop t.deques.(0) in
      Mutex.unlock t.sub_mutex;
      r
    end
    else Deque.pop t.deques.(k)

  (* Scheduling-only xorshift: victim order must not be a convoy (every
     thief hammering deque 0 first), and seeding it from the thief's
     identity keeps a run's steal pattern reproducible for a given
     interleaving.  Results never depend on it — only placement does. *)
  let rng_seed k = (0x9E3779B9 * (k + 1)) lxor 0x2545F491

  let rng_next st =
    let x = !st in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    st := x;
    x land max_int

  (* One exhaustive steal sweep: every deque except [self], starting
     from a random victim, retrying a victim on a lost race so that
     [None] means every other deque was observed empty. *)
  let try_steal t ~self ~rng =
    let n = Array.length t.deques in
    let rec probe_victim v =
      Atomic.incr t.steal_attempts;
      match Deque.steal t.deques.(v) with
      | Deque.Stolen task ->
          Atomic.incr t.steals;
          notify t `Steal;
          Some task
      | Deque.Lost -> probe_victim v
      | Deque.Empty ->
          notify t `Steal_miss;
          None
    in
    if n <= 1 then None
    else begin
      let start = rng_next rng mod n in
      let rec scan i =
        if i = n then None
        else
          let v = (start + i) mod n in
          if v = self then scan (i + 1)
          else
            match probe_victim v with
            | Some task -> Some task
            | None -> scan (i + 1)
      in
      scan 0
    end

  (* Execute one task.  The task closure itself performs the finish
     accounting (completed/in_flight/`Finish) *before* signaling its
     batch or future, so a caller woken by the completion observes
     fully-updated totals. *)
  let exec_task t task =
    Atomic.incr t.in_flight;
    notify t `Start;
    task ()

  let finish_accounting t =
    Atomic.decr t.in_flight;
    Atomic.incr t.completed;
    notify t `Finish

  let enqueue t task =
    let k = my_index t in
    own_push t k task;
    Atomic.incr t.submitted;
    notify t `Submit;
    Atomic.incr t.epoch;
    if Atomic.get t.parked > 0 then begin
      Mutex.lock t.park_mutex;
      Condition.broadcast t.park_cond;
      Mutex.unlock t.park_mutex
    end

  let worker_loop t k =
    register_index t k;
    let rng = ref (rng_seed k) in
    let rec loop () =
      if Atomic.get t.stop then ()
      else
        match Deque.pop t.deques.(k) with
        | Some task ->
            exec_task t task;
            loop ()
        | None -> (
            match try_steal t ~self:k ~rng with
            | Some task ->
                exec_task t task;
                loop ()
            | None ->
                park ();
                loop ())
    and park () =
      let e = Atomic.get t.epoch in
      (* Final sweep after reading the epoch: a task pushed before the
         read is found here (the sweep only passes a deque on a
         confirmed-empty read), and one pushed after it bumps the
         epoch, so the recheck below refuses to sleep.  Our own deque
         needs no sweep — only its owner pushes there, and we are its
         owner. *)
      match try_steal t ~self:k ~rng with
      | Some task -> exec_task t task
      | None ->
          if not (Atomic.get t.stop) then begin
            Mutex.lock t.park_mutex;
            Atomic.incr t.parked;
            if Atomic.get t.epoch = e && not (Atomic.get t.stop) then begin
              Atomic.incr t.parks;
              notify t `Park;
              Condition.wait t.park_cond t.park_mutex;
              Atomic.incr t.wakes;
              notify t `Wake
            end;
            Atomic.decr t.parked;
            Mutex.unlock t.park_mutex
          end
    in
    loop ()

  let create ?(jobs = recommended_jobs ()) () =
    let jobs = max 1 jobs in
    let t =
      {
        uid = Atomic.fetch_and_add next_uid 1;
        jobs;
        deques = Array.init jobs (fun _ -> Deque.create ());
        sub_mutex = Mutex.create ();
        park_mutex = Mutex.create ();
        park_cond = Condition.create ();
        epoch = Atomic.make 0;
        parked = Atomic.make 0;
        stop = Atomic.make false;
        workers = [];
        in_flight = Atomic.make 0;
        submitted = Atomic.make 0;
        completed = Atomic.make 0;
        steal_attempts = Atomic.make 0;
        steals = Atomic.make 0;
        parks = Atomic.make 0;
        wakes = Atomic.make 0;
        probe = Atomic.make None;
      }
    in
    if jobs > 1 then
      t.workers <-
        List.init (jobs - 1) (fun i ->
            Domain.spawn (fun () -> worker_loop t (i + 1)));
    t

  let jobs t = t.jobs
  let set_probe t p = Atomic.set t.probe p

  let stats t =
    let depth, deque_depth = depths t in
    {
      depth;
      deque_depth;
      in_flight = Atomic.get t.in_flight;
      submitted = Atomic.get t.submitted;
      completed = Atomic.get t.completed;
      steal_attempts = Atomic.get t.steal_attempts;
      steals = Atomic.get t.steals;
      parks = Atomic.get t.parks;
      wakes = Atomic.get t.wakes;
    }

  let check_alive t op =
    if Atomic.get t.stop then
      invalid_arg (Printf.sprintf "Pool.%s: pool is shut down" op)

  let run_inline t f x =
    Atomic.incr t.submitted;
    notify t `Submit;
    Atomic.incr t.in_flight;
    notify t `Start;
    match f x with
    | v ->
        finish_accounting t;
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish_accounting t;
        Printexc.raise_with_backtrace e bt

  (* Help until [quiescent ()] turns true: pop own work LIFO, then
     steal, and only when nothing is runnable anywhere hand control to
     [sleep] (which blocks on the batch's or future's condition and
     returns once signaled).  Helping from an owned deque is what keeps
     nested maps and future-awaiting-future chains deadlock-free: the
     dependency's task is either in some deque (the exhaustive sweep
     finds it) or already running on another domain (sleeping is then
     productive, and bounded by that task's completion). *)
  let rec help t ~self ~rng ~quiescent ~sleep =
    if not (quiescent ()) then
      match own_pop t self with
      | Some task ->
          exec_task t task;
          help t ~self ~rng ~quiescent ~sleep
      | None -> (
          match try_steal t ~self ~rng with
          | Some task ->
              exec_task t task;
              help t ~self ~rng ~quiescent ~sleep
          | None ->
              sleep ();
              help t ~self ~rng ~quiescent ~sleep)

  let map_array t f arr =
    check_alive t "map_array";
    let n = Array.length arr in
    if n = 0 then [||]
    else if t.jobs = 1 || n = 1 then Array.map (fun x -> run_inline t f x) arr
    else begin
      let results = Array.make n None in
      let remaining = Atomic.make n in
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      let run_one i () =
        let r =
          match f arr.(i) with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r;
        finish_accounting t;
        (* The atomic decrement publishes the slot write above: a
           reader that saw [remaining = 0] sees every result. *)
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock done_mutex;
          Condition.broadcast done_cond;
          Mutex.unlock done_mutex
        end
      in
      for i = 0 to n - 1 do
        enqueue t (run_one i)
      done;
      let self = my_index t in
      let rng = ref (rng_seed (self + 0x51)) in
      help t ~self ~rng
        ~quiescent:(fun () -> Atomic.get remaining = 0)
        ~sleep:(fun () ->
          Mutex.lock done_mutex;
          while Atomic.get remaining > 0 do
            Condition.wait done_cond done_mutex
          done;
          Mutex.unlock done_mutex);
      let out =
        Array.map
          (function
            | Some (Ok v) -> `Ok v
            | Some (Error (e, bt)) -> `Err (e, bt)
            | None -> assert false)
          results
      in
      (* Re-raise the lowest-indexed failure, if any — deterministic no
         matter which domain hit it first. *)
      Array.iter
        (function
          | `Err (e, bt) -> Printexc.raise_with_backtrace e bt | `Ok _ -> ())
        out;
      Array.map (function `Ok v -> v | `Err _ -> assert false) out
    end

  let map_list t f l = Array.to_list (map_array t f (Array.of_list l))

  type 'a future = 'a Future.t

  let async t f =
    check_alive t "async";
    let fut = Future.make () in
    if t.jobs = 1 then begin
      let state =
        match run_inline t f () with
        | v -> Future.Done v
        | exception e -> Future.Failed (e, Printexc.get_raw_backtrace ())
      in
      Future.resolve fut state;
      fut
    end
    else begin
      let run () =
        let state =
          match f () with
          | v -> Future.Done v
          | exception e -> Future.Failed (e, Printexc.get_raw_backtrace ())
        in
        finish_accounting t;
        Future.resolve fut state
      in
      enqueue t run;
      fut
    end

  let poll = Future.poll

  let await t fut =
    match Future.peek fut with
    | (Future.Done _ | Future.Failed _) as s -> Future.unbox s
    | Future.Pending ->
        let self = my_index t in
        let rng = ref (rng_seed (self + 0xA7)) in
        help t ~self ~rng
          ~quiescent:(fun () -> Future.poll fut)
          ~sleep:(fun () -> ignore (Future.wait fut));
        Future.unbox (Future.peek fut)

  let shutdown t =
    Atomic.set t.stop true;
    Mutex.lock t.park_mutex;
    Condition.broadcast t.park_cond;
    Mutex.unlock t.park_mutex;
    let ws = t.workers in
    t.workers <- [];
    List.iter Domain.join ws

  let with_pool ?jobs f =
    let t = create ?jobs () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end

type scheduler = Locked | Steal

let default_scheduler = Steal
let schedulers = [ ("locked", Locked); ("steal", Steal) ]
let scheduler_name = function Locked -> "locked" | Steal -> "steal"

let scheduler_of_string s =
  List.assoc_opt (String.lowercase_ascii (String.trim s)) schedulers

(* The facade: a first-class scheduler value picks the implementation
   at [create] time; everything downstream stays signature-only. *)
type impl = I_locked of Locked.t | I_steal of Steal.t
type t = { sched : scheduler; impl : impl }

let create ?(scheduler = default_scheduler) ?jobs () =
  match scheduler with
  | Locked -> { sched = Locked; impl = I_locked (Locked.create ?jobs ()) }
  | Steal -> { sched = Steal; impl = I_steal (Steal.create ?jobs ()) }

let scheduler t = t.sched

let jobs t =
  match t.impl with I_locked p -> Locked.jobs p | I_steal p -> Steal.jobs p

let set_probe t probe =
  match t.impl with
  | I_locked p -> Locked.set_probe p probe
  | I_steal p -> Steal.set_probe p probe

let stats t =
  match t.impl with I_locked p -> Locked.stats p | I_steal p -> Steal.stats p

let map_array t f arr =
  match t.impl with
  | I_locked p -> Locked.map_array p f arr
  | I_steal p -> Steal.map_array p f arr

let map_list t f l =
  match t.impl with
  | I_locked p -> Locked.map_list p f l
  | I_steal p -> Steal.map_list p f l

(* Futures cross the facade as closures so ['a future] stays a single
   type no matter which implementation minted it. *)
type 'a future = { f_poll : unit -> bool; f_await : unit -> 'a }

let async t f =
  match t.impl with
  | I_locked p ->
      let fut = Locked.async p f in
      {
        f_poll = (fun () -> Locked.poll fut);
        f_await = (fun () -> Locked.await p fut);
      }
  | I_steal p ->
      let fut = Steal.async p f in
      {
        f_poll = (fun () -> Steal.poll fut);
        f_await = (fun () -> Steal.await p fut);
      }

let poll fut = fut.f_poll ()
let await _t fut = fut.f_await ()

let shutdown t =
  match t.impl with
  | I_locked p -> Locked.shutdown p
  | I_steal p -> Steal.shutdown p

let with_pool ?scheduler ?jobs f =
  let t = create ?scheduler ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(** A small fixed-size domain pool for embarrassingly parallel batches.

    The pipeline's unit of parallelism is coarse — one workload's whole
    compile → execute → stream-analyze run — so the pool is deliberately
    simple: a task queue guarded by a [Mutex.t]/[Condition.t] pair,
    [jobs - 1] worker domains, and a submitting domain that {e helps}
    (drains the queue itself) instead of blocking while its batch runs.
    Helping keeps every core busy and makes nested [map_array] calls
    from inside a task deadlock-free.

    Determinism: [map_array] returns results in input-index order, no
    matter which domain ran which task or in what order they finished.
    Parallel callers therefore produce bit-identical output to
    sequential ones whenever the tasks themselves are independent.

    Exceptions: a task that raises never kills a worker and never
    wedges the pool.  The exception (with its backtrace) is captured in
    the task's result slot; after the {e whole} batch has completed,
    [map_array] re-raises the lowest-indexed one in the submitting
    domain.  Callers that need the typed-error discipline wrap each
    task in {!Pipeline_error.guard}, which turns the re-raise into a
    structured [Internal] error. *)

type t

type probe =
  [ `Submit | `Start | `Finish ] -> depth:int -> in_flight:int -> unit
(** Queue-transition callback: fired when a task is enqueued, dequeued
    for execution, and completed, with the exact queue depth and
    tasks-in-flight count at that instant (measured inside the pool's
    critical section).  This is the backpressure signal the serve
    daemon and {!Obs.Probe.pool} consume.  The callback runs with the
    pool mutex held: it must be non-blocking and must not re-enter the
    pool. *)

type stats = {
  depth : int;  (** tasks queued, not yet started *)
  in_flight : int;  (** tasks currently executing on some domain *)
  submitted : int;  (** tasks ever enqueued (monotonic) *)
  completed : int;  (** tasks ever finished (monotonic) *)
}

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1.  The default
    for every [--jobs auto] surface. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs]
    defaults to {!recommended_jobs}; values below 1 are clamped to 1).
    With [jobs = 1] no domain is ever spawned and every [map_array]
    runs inline — the sequential path, bit-for-bit. *)

val jobs : t -> int
(** Total parallelism: worker domains plus the submitting domain. *)

val set_probe : t -> probe option -> unit
(** Install (or clear) the queue-transition probe.  The inline
    [jobs = 1] path fires it too — submitted/completed totals are
    identical whatever the pool width. *)

val stats : t -> stats
(** A consistent snapshot of the pool's queue depth, in-flight count
    and lifetime totals (taken under the pool mutex). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f arr] applies [f] to every element, tasks running on
    any of the pool's domains, and returns the results in input order.
    Blocks until the whole batch is done (the caller's domain works on
    the batch too).  If any task raised, re-raises the lowest-indexed
    exception with its original backtrace — after every other task has
    finished, so the pool is quiescent and reusable. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_array} over a list. *)

type 'a future
(** A single-shot result box for one task submitted with {!async}. *)

val async : t -> (unit -> 'a) -> 'a future
(** [async t f] enqueues [f] on the pool and returns immediately with
    a future for its result.  On a [jobs = 1] pool the task runs
    inline at submit time (the sequential path, bit-for-bit), so
    {!await} never blocks.  A task that raises never kills a worker:
    the exception is boxed in the future and re-raised by {!await}.
    Raises [Invalid_argument] after {!shutdown}. *)

val await : t -> 'a future -> 'a
(** [await t fut] returns the future's value, re-raising (with its
    original backtrace) if the task failed.  While the future is
    pending the caller {e helps}: it drains queued tasks — its own or
    any other submitter's — exactly like [map_array]'s submitting
    domain, so tasks awaiting other tasks on a narrow pool cannot
    deadlock.  Only when the queue is empty (the awaited task is
    running on another domain) does it sleep on the future's own
    condition variable. *)

val poll : 'a future -> bool
(** [poll fut] is [true] once the future is resolved (value or
    exception).  Never blocks, never helps. *)

val shutdown : t -> unit
(** Stop the workers and join their domains.  Idempotent.  Submitting
    to a pool after [shutdown] raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] over a fresh pool and always shuts it down,
    even when [f] raises. *)

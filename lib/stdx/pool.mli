(** A small fixed-size domain pool for embarrassingly parallel batches,
    sealed behind the {!S} signature with two interchangeable
    schedulers.

    {2 The sealed interface}

    Every pool — whatever the scheduler — obeys the same contract:

    {e Determinism:} [map_array] returns results in input-index order,
    no matter which domain ran which task or in what order they
    finished.  Parallel callers therefore produce bit-identical output
    to sequential ones whenever the tasks themselves are independent.
    Scheduling randomness (the stealer's victim selection) is seeded
    and affects only {e where} a task runs, never what it computes or
    where its result lands.

    {e Exceptions:} a task that raises never kills a worker and never
    wedges the pool.  The exception (with its backtrace) is captured in
    the task's result slot; after the {e whole} batch has completed,
    [map_array] re-raises the lowest-indexed one in the submitting
    domain.  Callers that need the typed-error discipline wrap each
    task in {!Pipeline_error.guard}, which turns the re-raise into a
    structured [Internal] error.

    {e Inline [jobs = 1]:} no domain is ever spawned and every task
    runs at submit time on the calling domain — the sequential path,
    bit-for-bit, with the probe counters still firing.

    {e Helping:} a submitter blocked on its batch (or an [await]er
    blocked on a future) runs queued tasks itself instead of sleeping,
    so nested [map]s and tasks awaiting other tasks on a narrow pool
    cannot deadlock.

    {2 The two schedulers}

    {!Locked} is the original central queue: one [Mutex.t]/
    [Condition.t] pair guarding a single [Queue.t].  Simple, and right
    for coarse tasks (one workload's whole pipeline), but every
    push/pop contends on the one lock — the structural bottleneck once
    intra-trace segmentation turned batches into hundreds of small
    decode tasks.

    {!Steal} is a work-stealing scheduler: every worker owns a
    lock-free Chase–Lev deque (owner pushes and pops LIFO at the
    bottom, thieves steal FIFO at the top with a single
    compare-and-set), the submitting thread owns a deque too (so
    helping is just "work the scheduler like everyone else"), idle
    workers pick steal victims in seeded pseudo-random order, and
    workers with nothing to steal park on a condition variable with an
    epoch guard that makes lost wakeups impossible.  See DESIGN.md
    §16 for the algorithm and the termination / determinism
    arguments. *)

type probe_event =
  [ `Submit  (** a task was enqueued (or started inline, [jobs = 1]) *)
  | `Start  (** a task was picked up for execution *)
  | `Finish  (** a task completed *)
  | `Steal  (** a thief took a task from another worker's deque *)
  | `Steal_miss  (** a steal attempt found the victim empty (or lost) *)
  | `Park  (** a worker went to sleep with nothing runnable *)
  | `Wake  (** a parked worker was woken *) ]

type probe = probe_event -> depth:int -> deque:int -> in_flight:int -> unit
(** Scheduler-transition callback.  [depth] is the aggregate number of
    queued (not yet started) tasks across every queue/deque; [deque]
    is the depth of the deepest single deque at that instant (equal to
    [depth] under {!Locked}, which has one queue) — reporting both is
    what keeps the queue-depth gauge honest under stealing, where the
    aggregate can be spread thin while one deque is deep.  The
    callback must be non-blocking and must not re-enter the pool
    ({!Obs.Probe.pool}'s atomic instrument updates qualify); under
    {!Steal} it runs outside any lock, so the depth arguments are
    racy-read estimates — exact under {!Locked}. *)

type stats = {
  depth : int;  (** tasks queued, not yet started (aggregate) *)
  deque_depth : int;  (** deepest single deque (= [depth] for Locked) *)
  in_flight : int;  (** tasks currently executing on some domain *)
  submitted : int;  (** tasks ever enqueued (monotonic) *)
  completed : int;  (** tasks ever finished (monotonic) *)
  steal_attempts : int;  (** victim probes by thieves (monotonic; 0 for Locked) *)
  steals : int;  (** successful steals (monotonic; 0 for Locked) *)
  parks : int;  (** worker park events (monotonic; 0 for Locked) *)
  wakes : int;  (** worker wake events (monotonic; 0 for Locked) *)
}

(** The sealed pool interface.  Every caller outside [lib/stdx]
    compiles against this signature (or the facade below, which
    re-exports it over a first-class {!scheduler} value) — never
    against a concrete implementation's internals. *)
module type S = sig
  type t

  val create : ?jobs:int -> unit -> t
  (** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs]
      defaults to {!recommended_jobs}; values below 1 are clamped
      to 1).  With [jobs = 1] no domain is ever spawned and every
      task runs inline — the sequential path, bit-for-bit. *)

  val jobs : t -> int
  (** Total parallelism: worker domains plus the submitting domain. *)

  val set_probe : t -> probe option -> unit
  (** Install (or clear) the scheduler-transition probe.  The inline
      [jobs = 1] path fires it too — submitted/completed totals are
      identical whatever the pool width. *)

  val stats : t -> stats
  (** A snapshot of the pool's depth, in-flight count and lifetime
      totals (exact under {!Locked}; the depth fields are racy-read
      estimates under {!Steal}, the monotonic counters always exact
      once the pool is quiescent). *)

  val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
  (** [map_array t f arr] applies [f] to every element, tasks running
      on any of the pool's domains, and returns the results in input
      order.  Blocks until the whole batch is done (the caller's
      domain works on the batch too).  If any task raised, re-raises
      the lowest-indexed exception with its original backtrace — after
      every other task has finished, so the pool is quiescent and
      reusable. *)

  val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
  (** {!map_array} over a list. *)

  type 'a future
  (** A single-shot result box for one task submitted with {!async}. *)

  val async : t -> (unit -> 'a) -> 'a future
  (** [async t f] enqueues [f] on the pool and returns immediately
      with a future for its result.  On a [jobs = 1] pool the task
      runs inline at submit time, so {!await} never blocks.  A task
      that raises never kills a worker: the exception is boxed in the
      future and re-raised by {!await}.  Raises [Invalid_argument]
      after {!shutdown}. *)

  val await : t -> 'a future -> 'a
  (** [await t fut] returns the future's value, re-raising (with its
      original backtrace) if the task failed.  While the future is
      pending the caller {e helps}: it runs queued tasks — its own or
      stolen — exactly like [map_array]'s submitting domain, so tasks
      awaiting other tasks on a narrow pool cannot deadlock.  Only
      when nothing is runnable anywhere (the awaited task is running
      on another domain) does it sleep on the future's own condition
      variable. *)

  val poll : 'a future -> bool
  (** [poll fut] is [true] once the future is resolved (value or
      exception).  Never blocks, never helps. *)

  val shutdown : t -> unit
  (** Stop the workers and join their domains.  Idempotent.
      Submitting to a pool after [shutdown] raises
      [Invalid_argument]. *)

  val with_pool : ?jobs:int -> (t -> 'a) -> 'a
  (** [with_pool f] runs [f] over a fresh pool and always shuts it
      down, even when [f] raises. *)
end

module Locked : S
(** The central locked queue (the original scheduler). *)

module Steal : S
(** The work-stealing scheduler (per-worker Chase–Lev deques). *)

(** {2 Scheduler selection} *)

type scheduler = Locked | Steal

val default_scheduler : scheduler
(** {!Steal} — the fine-grained segmented-decode workload that
    motivated it is now the common case. *)

val schedulers : (string * scheduler) list
(** [("locked", Locked); ("steal", Steal)] — the [--scheduler]
    vocabulary, in one place. *)

val scheduler_name : scheduler -> string

val scheduler_of_string : string -> scheduler option
(** Case-insensitive lookup in {!schedulers}. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1.  The default
    for every [--jobs auto] surface. *)

(** {2 The facade}

    A pool whose scheduler was chosen at [create] time by a
    first-class {!scheduler} value.  Same contract as {!S}; this is
    what the harness, serve daemon, bench and CLI all use. *)

type t

val create : ?scheduler:scheduler -> ?jobs:int -> unit -> t
(** See {!S.create}.  [scheduler] defaults to {!default_scheduler}. *)

val scheduler : t -> scheduler
(** Which implementation this pool runs on. *)

val jobs : t -> int
val set_probe : t -> probe option -> unit
val stats : t -> stats
val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

type 'a future

val async : t -> (unit -> 'a) -> 'a future
val await : t -> 'a future -> 'a
val poll : 'a future -> bool
val shutdown : t -> unit

val with_pool : ?scheduler:scheduler -> ?jobs:int -> (t -> 'a) -> 'a

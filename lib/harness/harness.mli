(** Convenience layer tying the pipeline together: compile a workload,
    execute it once, and analyze the trace under any set of machine
    models in a single pass.

    Two modes share all the analysis code:

    - {!prepare} executes the workload once, materializing the trace
      (and training the paper's profile predictor {e during} execution,
      through a trace sink, so no extra trace scan is ever needed);
      {!analyze_specs} then fans any number of machine/ablation
      configurations out over one scan of that trace.
    - {!run_streaming} never materializes the trace: one execution
      trains the predictor, a second streams straight into the fan-out
      analyzer.  Memory stays O(program), so instruction budgets can
      grow to paper scale (100M+).

    Robustness: a faulting or fuel-capped execution is a first-class
    outcome, not an error — its trace prefix is analyzed and every
    result carries {!Ilp.Analyze.result.completeness}.  The [_result]
    entry points ({!prepare_result}, {!run_streaming_result}) return
    typed {!Pipeline_error.t} values instead of raising; {!inject} and
    {!Fuzz} drive deterministically perturbed pipelines behind the same
    barrier.

    {!Counters} tracks VM executions and trace passes so callers (and
    tests) can verify the one-execution/one-pass property. *)

(** Global instrumentation: how much work the pipeline has done. *)
module Counters : sig
  val executions : unit -> int
  (** VM executions since the last [reset]. *)

  val passes : unit -> int
  (** Trace consumptions by the analyzer (a [run_many] fan-out over N
      machines counts once; a streaming analysis execution counts
      once). *)

  val entries : unit -> int
  (** Trace entries scanned, summed over passes. *)

  val state_entries : unit -> int
  (** Trace entries multiplied by the number of machine states advanced
      — the analyzer's total throughput denominator. *)

  val profiled_entries : unit -> int
  (** Trace entries consumed by sink-trained profile passes during VM
      executions. *)

  val analyzed : unit -> int
  (** Total instruction-analysis events:
      [profiled_entries () + state_entries ()]. *)

  val reset : unit -> unit
end

type prepared = {
  workload : Workloads.Registry.t;
  flat : Asm.Program.flat;
  info : Ilp.Program_info.t;
  trace : Vm.Trace.t;
  steps : int;
  status : Vm.Exec.status;  (** how the execution ended *)
  completeness : Pipeline_error.completeness;
  (** [Complete] for a clean halt; [Truncated] with the fault
      descriptor otherwise *)
  halted : int option;  (** the program's return value, when it halted *)
  profile : Predict.Predictor.Profile.builder;
  (** per-branch direction counts, accumulated during execution *)
}

val prepare :
  ?options:Codegen.Compile.options ->
  ?mem_words:int ->
  ?fuel:int ->
  Workloads.Registry.t ->
  prepared
(** Compile (optionally with if-conversion), statically analyze, and
    execute one workload, profiling its branches on the way.  A fault
    or fuel exhaustion does {e not} raise: the trace prefix is kept and
    [status]/[completeness] record what happened.  Compile errors still
    raise (use {!prepare_result} for the typed-error path). *)

val prepare_result :
  ?options:Codegen.Compile.options ->
  ?mem_words:int ->
  ?fuel:int ->
  Workloads.Registry.t ->
  (prepared, Pipeline_error.t) result
(** Like {!prepare} but total: compile errors arrive as
    [Error { cause = Compile_error _; _ }], [mem_words] beyond
    {!Vm.Exec.max_mem_words} as [Budget_exceeded], and any unexpected
    exception is caught by the {!Pipeline_error.guard} barrier. *)

val prepare_source : ?fuel:int -> name:string -> string -> prepared
(** Same for an arbitrary Mini-C source string. *)

val profile_predictor : prepared -> Predict.Predictor.t
(** The paper's predictor: profile statistics from this same trace
    (already gathered during execution; no trace scan). *)

(** Which predictor a spec's analysis uses.  [`Profile] is the paper's
    (shared across specs — it is stateless); [`Two_bit] gets a fresh
    counter table per spec, as required for a stateful predictor. *)
type predictor_kind =
  [ `Profile | `Perfect | `Btfn | `Two_bit
  | `Custom of Predict.Predictor.t ]

(** One analysis request: a machine model plus the transformation and
    measurement knobs. *)
type spec = {
  s_machine : Ilp.Machine.t;
  s_inline : bool;
  s_unroll : bool;
  s_segments : bool;
  s_predictor : predictor_kind;
  s_step_budget : int option;
  (** resource guard forwarded to {!Ilp.Analyze.config} *)
}

val spec :
  ?inline:bool ->
  ?unroll:bool ->
  ?segments:bool ->
  ?predictor:predictor_kind ->
  ?step_budget:int ->
  Ilp.Machine.t ->
  spec
(** Defaults follow the paper: inlining and unrolling on, no segment
    collection, profile prediction, no step budget. *)

val spec_key : spec -> string
(** A stable identifier for caching: machine name + knobs. *)

val analyze_specs : prepared -> spec list -> Ilp.Analyze.result list
(** Fan all specs out over a {e single} pass of the prepared trace;
    results are in spec order, each tagged with the prepared
    execution's completeness. *)

val analyze :
  ?inline:bool ->
  ?unroll:bool ->
  ?segments:bool ->
  ?predictor:Predict.Predictor.t ->
  prepared ->
  Ilp.Machine.t ->
  Ilp.Analyze.result
(** Run one machine model over the prepared trace.  Defaults follow the
    paper: perfect inlining and unrolling on, profile prediction. *)

val analyze_all :
  ?inline:bool ->
  ?unroll:bool ->
  prepared ->
  Ilp.Machine.t list ->
  Ilp.Analyze.result list
(** All machines in one trace pass (via {!analyze_specs}). *)

val run_streaming :
  ?options:Codegen.Compile.options ->
  ?mem_words:int ->
  ?fuel:int ->
  Workloads.Registry.t ->
  spec list ->
  Ilp.Analyze.result list
(** Fully streaming pipeline: compile once, execute once to train the
    profile predictor, execute again feeding every spec's analysis
    state through a trace sink.  No trace is ever materialized, so
    memory is independent of the instruction budget.  Numerically
    identical to [prepare] + [analyze_specs], including the
    completeness tag. *)

val run_streaming_result :
  ?options:Codegen.Compile.options ->
  ?mem_words:int ->
  ?fuel:int ->
  Workloads.Registry.t ->
  spec list ->
  (Ilp.Analyze.result list, Pipeline_error.t) result
(** {!run_streaming} behind the typed-error barrier. *)

val run_streaming_all :
  ?options:Codegen.Compile.options ->
  ?mem_words:int ->
  ?fuel:int ->
  ?jobs:int ->
  Workloads.Registry.t list ->
  spec list ->
  (Ilp.Analyze.result list, Pipeline_error.t) result list
(** Fan whole workloads out over a domain pool: each workload's
    pipeline (compile, execute, stream-analyze every spec) is one task
    with its own VM state and analysis sinks, run on its own domain.
    Results are merged by workload index, so the output — including
    every {!Counters} total — is bit-identical to mapping
    {!run_streaming_result} over [ws] sequentially, for any [jobs] and
    any scheduling.  [jobs] defaults to
    {!Stdx.Pool.recommended_jobs}[ ()]; [jobs = 1] never spawns a
    domain.  An exception escaping a task surfaces as that workload's
    [Internal] error, upholding the pipeline invariant across domains. *)

(** Outcome of running the static verifier (and optionally the dynamic
    trace cross-validation) over one workload. *)
type check_result = {
  c_workload : string;
  c_report : Cfg.Verify.report;  (** static diagnostics *)
  c_status : Vm.Exec.status option;
  (** how the dynamic execution ended ([None] if static only) *)
  c_dyn_entries : int;  (** trace entries checked dynamically (0 if static only) *)
  c_dyn_total : int;  (** dynamic violations found *)
  c_dyn_violations : Cfg.Verify.Dynamic.violation list;
  (** the kept window of violations, in trace order *)
}

val check :
  ?options:Codegen.Compile.options ->
  ?fuel:int ->
  ?dynamic:bool ->
  Workloads.Registry.t ->
  check_result
(** Compile a workload and run {!Cfg.Verify.check} over it.  With
    [~dynamic:true] the program is also executed (up to [fuel]
    instructions, default the workload's own budget) with
    {!Cfg.Verify.Dynamic} attached as trace sink and observe hook,
    cross-checking every retired instruction against the static facts. *)

val branch_stats : prepared -> Ilp.Stats.branch_stats
(** Table 2 statistics, derived from the execution-time profile counts
    (no trace scan). *)

(** One deterministically injected fault, run through the full
    pipeline. *)
type injected = {
  i_workload : string;
  i_kind : Fault.Injector.kind;
  i_seed : int;
  i_description : string;
  (** exact perturbation, from {!Fault.Injector.plan} *)
  i_status : Vm.Exec.status;
  i_steps : int;  (** instructions the damaged execution retired *)
  i_result : Ilp.Analyze.result;
  (** analysis of the (possibly truncated) trace, completeness-tagged *)
}

val inject :
  ?fuel:int ->
  seed:int ->
  kind:Fault.Injector.kind ->
  Workloads.Registry.t ->
  (injected, Pipeline_error.t) result
(** Compile [w], apply the seeded perturbation, execute, and analyze
    the surviving trace under one representative configuration
    (machine [sp_cd_mf], btfn prediction — chosen because it needs no
    second training execution, keeping injection to a single
    deterministic run).  Total: compile errors and anything a corrupted
    program provokes come back as [Error]; same seed, same report. *)

(** Bulk fault injection asserting the pipeline invariant: {e every}
    input yields either a result or a structured error.  An exception
    reaching the driver frame is an invariant violation — counted and
    reported with full reproduction data, never re-raised. *)
module Fuzz : sig
  type escaped = {
    e_seed : int;
    e_kind : Fault.Injector.kind;
    e_workload : string;
    e_exn : string;
  }

  type report = {
    cases : int;
    complete : int;  (** injected run still halted cleanly *)
    truncated : int;  (** analysis of a truncated trace succeeded *)
    structured_errors : int;  (** typed, non-[Internal] errors *)
    internal_errors : int;
    (** exceptions the {!Pipeline_error.guard} barrier converted *)
    escaped : escaped list;  (** invariant violations; must be [] *)
  }

  val run :
    ?fuel:int ->
    ?workloads:Workloads.Registry.t list ->
    ?jobs:int ->
    seed:int ->
    cases:int ->
    unit ->
    report
  (** Run [cases] seeded injections: case [i] uses the splitmix64
      stream output {!Fault.Injector.Rng.derive}[ ~seed ~index:i],
      cycles through all fault kinds, and rotates over [workloads]
      (default: the whole registry).  With [jobs > 1] the cases run on
      a domain pool; because each case's seed depends only on its
      index, the report is identical for every [jobs] value and
      scheduling order. *)
end

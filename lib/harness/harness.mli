(** Convenience layer tying the pipeline together: compile a workload,
    execute it once, and analyze the trace under any set of machine
    models in a single pass.

    Two modes share all the analysis code:

    - {!prepare} executes the workload once, materializing the trace
      (and training the paper's profile predictor {e during} execution,
      through a trace sink, so no extra trace scan is ever needed);
      {!analyze_specs} then fans any number of machine/ablation
      configurations out over one scan of that trace.
    - {!run_streaming} never materializes the trace: one execution
      trains the predictor, a second streams straight into the fan-out
      analyzer.  Memory stays O(program), so instruction budgets can
      grow to paper scale (100M+).

    {!Counters} tracks VM executions and trace passes so callers (and
    tests) can verify the one-execution/one-pass property. *)

(** Global instrumentation: how much work the pipeline has done. *)
module Counters : sig
  val executions : unit -> int
  (** VM executions since the last [reset]. *)

  val passes : unit -> int
  (** Trace consumptions by the analyzer (a [run_many] fan-out over N
      machines counts once; a streaming analysis execution counts
      once). *)

  val entries : unit -> int
  (** Trace entries scanned, summed over passes. *)

  val state_entries : unit -> int
  (** Trace entries multiplied by the number of machine states advanced
      — the analyzer's total throughput denominator. *)

  val profiled_entries : unit -> int
  (** Trace entries consumed by sink-trained profile passes during VM
      executions. *)

  val analyzed : unit -> int
  (** Total instruction-analysis events:
      [profiled_entries () + state_entries ()]. *)

  val reset : unit -> unit
end

type prepared = {
  workload : Workloads.Registry.t;
  flat : Asm.Program.flat;
  info : Ilp.Program_info.t;
  trace : Vm.Trace.t;
  steps : int;
  halted : int option;  (** the program's return value, when it halted *)
  profile : Predict.Predictor.Profile.builder;
  (** per-branch direction counts, accumulated during execution *)
}

val prepare :
  ?options:Codegen.Compile.options ->
  ?fuel:int ->
  Workloads.Registry.t ->
  prepared
(** Compile (optionally with if-conversion), statically analyze, and
    execute one workload, profiling its branches on the way. *)

val prepare_source : ?fuel:int -> name:string -> string -> prepared
(** Same for an arbitrary Mini-C source string. *)

val profile_predictor : prepared -> Predict.Predictor.t
(** The paper's predictor: profile statistics from this same trace
    (already gathered during execution; no trace scan). *)

(** Which predictor a spec's analysis uses.  [`Profile] is the paper's
    (shared across specs — it is stateless); [`Two_bit] gets a fresh
    counter table per spec, as required for a stateful predictor. *)
type predictor_kind =
  [ `Profile | `Perfect | `Btfn | `Two_bit
  | `Custom of Predict.Predictor.t ]

(** One analysis request: a machine model plus the transformation and
    measurement knobs. *)
type spec = {
  s_machine : Ilp.Machine.t;
  s_inline : bool;
  s_unroll : bool;
  s_segments : bool;
  s_predictor : predictor_kind;
}

val spec :
  ?inline:bool ->
  ?unroll:bool ->
  ?segments:bool ->
  ?predictor:predictor_kind ->
  Ilp.Machine.t ->
  spec
(** Defaults follow the paper: inlining and unrolling on, no segment
    collection, profile prediction. *)

val spec_key : spec -> string
(** A stable identifier for caching: machine name + knobs. *)

val analyze_specs : prepared -> spec list -> Ilp.Analyze.result list
(** Fan all specs out over a {e single} pass of the prepared trace;
    results are in spec order. *)

val analyze :
  ?inline:bool ->
  ?unroll:bool ->
  ?segments:bool ->
  ?predictor:Predict.Predictor.t ->
  prepared ->
  Ilp.Machine.t ->
  Ilp.Analyze.result
(** Run one machine model over the prepared trace.  Defaults follow the
    paper: perfect inlining and unrolling on, profile prediction. *)

val analyze_all :
  ?inline:bool ->
  ?unroll:bool ->
  prepared ->
  Ilp.Machine.t list ->
  Ilp.Analyze.result list
(** All machines in one trace pass (via {!analyze_specs}). *)

val run_streaming :
  ?options:Codegen.Compile.options ->
  ?fuel:int ->
  Workloads.Registry.t ->
  spec list ->
  Ilp.Analyze.result list
(** Fully streaming pipeline: compile once, execute once to train the
    profile predictor, execute again feeding every spec's analysis
    state through a trace sink.  No trace is ever materialized, so
    memory is independent of the instruction budget.  Numerically
    identical to [prepare] + [analyze_specs]. *)

(** Outcome of running the static verifier (and optionally the dynamic
    trace cross-validation) over one workload. *)
type check_result = {
  c_workload : string;
  c_report : Cfg.Verify.report;  (** static diagnostics *)
  c_dyn_entries : int;  (** trace entries checked dynamically (0 if static only) *)
  c_dyn_total : int;  (** dynamic violations found *)
  c_dyn_violations : Cfg.Verify.Dynamic.violation list;
  (** the kept window of violations, in trace order *)
}

val check :
  ?options:Codegen.Compile.options ->
  ?fuel:int ->
  ?dynamic:bool ->
  Workloads.Registry.t ->
  check_result
(** Compile a workload and run {!Cfg.Verify.check} over it.  With
    [~dynamic:true] the program is also executed (up to [fuel]
    instructions, default the workload's own budget) with
    {!Cfg.Verify.Dynamic} attached as trace sink and observe hook,
    cross-checking every retired instruction against the static facts. *)

val branch_stats : prepared -> Ilp.Stats.branch_stats
(** Table 2 statistics, derived from the execution-time profile counts
    (no trace scan). *)

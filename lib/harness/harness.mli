(** Convenience layer tying the pipeline together: compile a workload,
    execute it once, and analyze the trace under any set of machine
    models in a single pass.

    {!Run} is the one entry point: build a {!Run.config} — the spec
    list plus the jobs count, instruction budgets and observability
    context — and {!Run.exec} it over any list of workloads.  Two
    execution modes share all the analysis code:

    - materialized (default): execute once, recording the trace and
      training the paper's profile predictor {e during} execution
      through a trace sink; then fan every spec out over one scan of
      that trace.
    - streaming ([stream = true]): never materialize the trace — one
      execution trains the predictor, a second streams straight into
      the fan-out analyzer.  Memory stays O(program), so instruction
      budgets can grow to paper scale (100M+).

    Robustness: a faulting or fuel-capped execution is a first-class
    outcome, not an error — its trace prefix is analyzed and every
    result carries {!Ilp.Analyze.result.completeness}.  Per-workload
    failures come back as typed {!Pipeline_error.t} values inside the
    result list; {!inject} and {!Fuzz} drive deterministically
    perturbed pipelines behind the same barrier.

    Observability: pass an enabled {!Obs.Ctx.t} and every stage of
    every workload is wrapped in a span (one compile / execute /
    analyze span per workload, at depth 0), the VM and analyzer hot loops
    publish sampled probe metrics, and {!Counters} totals land in the
    same registry.  All of it is deterministic under parallelism: span
    buffers merge by task index and every metric update commutes, so a
    [jobs = N] run reports exactly the sequential numbers.

    {!Counters} tracks VM executions and trace passes so callers (and
    tests) can verify the one-execution/one-pass property. *)

(** Global instrumentation: how much work the pipeline has done.
    Backed by counters in {!Obs.Metrics.global}, so a registry
    snapshot ({!Obs.Metrics.snapshot}) includes these under their
    [pipeline_*_total] names. *)
module Counters : sig
  val executions : unit -> int
  (** VM executions since the last [reset]. *)

  val passes : unit -> int
  (** Trace consumptions by the analyzer (a [run_many] fan-out over N
      machines counts once; a streaming analysis execution counts
      once). *)

  val entries : unit -> int
  (** Trace entries scanned, summed over passes. *)

  val state_entries : unit -> int
  (** Trace entries multiplied by the number of machine states advanced
      — the analyzer's total throughput denominator. *)

  val profiled_entries : unit -> int
  (** Trace entries consumed by sink-trained profile passes during VM
      executions. *)

  val analyzed : unit -> int
  (** Total instruction-analysis events:
      [profiled_entries () + state_entries ()]. *)

  val segments : unit -> int
  (** Trace segments decoded by segmented (intra-trace parallel)
      analysis — [pipeline_segments_total].  Zero when every analysis
      ran un-segmented.  Obs-independent, so the bench can report
      honest segment counts without enabling a context. *)

  val reset : unit -> unit
end

val validate_jobs : int -> (int, Pipeline_error.t) result
(** Every [--jobs] surface funnels through this: [j < 1] is a typed
    [Invalid_request] ("jobs must be at least 1 (got N)", exit code 2),
    identical across run, fuzz and bench. *)

type prepared = {
  workload : Workloads.Registry.t;
  flat : Asm.Program.flat;
  info : Ilp.Program_info.t;
  trace : Vm.Trace.t;
  steps : int;
  status : Vm.Exec.status;  (** how the execution ended *)
  completeness : Pipeline_error.completeness;
  (** [Complete] for a clean halt; [Truncated] with the fault
      descriptor otherwise *)
  halted : int option;  (** the program's return value, when it halted *)
  profile : Predict.Predictor.Profile.builder;
  (** per-branch direction counts, accumulated during execution *)
  values : Predict.Predictor.Value.builder option;
  (** last-value predictability counts, accumulated through the VM
      observe hook; [None] unless prepared with [train_values] *)
}

val prepare :
  ?options:Codegen.Compile.options ->
  ?mem_words:int ->
  ?fuel:int ->
  ?obs:Obs.Ctx.t ->
  ?span_buf:Obs.Span.buffer ->
  ?train_values:bool ->
  Workloads.Registry.t ->
  prepared
(** Compile (optionally with if-conversion), statically analyze, and
    execute one workload, profiling its branches on the way.  A fault
    or fuel exhaustion does {e not} raise: the trace prefix is kept and
    [status]/[completeness] record what happened.  Compile errors still
    raise (use {!prepare_result} for the typed-error path).  [obs]
    supplies the VM probe; [span_buf] receives ["compile"] and
    ["execute"] spans.

    [train_values] (default [false]) additionally trains the last-value
    predictability profile ({!Predict.Predictor.Value}) during the same
    execution — opt-in because the observe hook runs per retired
    instruction; machines with the [vp] constraint analyze against this
    profile (without it, value prediction degrades to a no-op). *)

val prepare_result :
  ?options:Codegen.Compile.options ->
  ?mem_words:int ->
  ?fuel:int ->
  ?obs:Obs.Ctx.t ->
  ?span_buf:Obs.Span.buffer ->
  ?train_values:bool ->
  ?deadline:Obs.Deadline.t ->
  Workloads.Registry.t ->
  (prepared, Pipeline_error.t) result
(** Like {!prepare} but total: compile errors arrive as
    [Error { cause = Compile_error _; _ }], [mem_words] beyond
    {!Vm.Exec.max_mem_words} as [Budget_exceeded], and any unexpected
    exception is caught by the {!Pipeline_error.guard} barrier.

    [deadline] arms the wall-clock guard: {!Obs.Deadline.observe} rides
    the VM observe hook, and expiry — mid-execution or at a stage
    boundary — degrades to a typed [Deadline_exceeded] error (exit
    code 6), never an exception.  Note the deadline covers the
    {e execution} only; analysis of a materialized trace runs
    unclocked.  Deadline-bounded analysis goes through the streaming
    path ({!Run.config}[.deadline_ms], {!Request.exec}), where analysis
    happens inside the observed execution. *)

val prepare_source :
  ?fuel:int -> ?train_values:bool -> name:string -> string -> prepared
(** Same for an arbitrary Mini-C source string. *)

val profile_predictor : prepared -> Predict.Predictor.t
(** The paper's predictor: profile statistics from this same trace
    (already gathered during execution; no trace scan). *)

(** Which predictor a spec's analysis uses.  [`Profile] is the paper's
    (shared across specs — it is stateless); [`Two_bit] gets a fresh
    counter table per spec, as required for a stateful predictor. *)
type predictor_kind =
  [ `Profile | `Perfect | `Btfn | `Two_bit
  | `Custom of Predict.Predictor.t ]

(** One analysis request: a machine model plus the transformation and
    measurement knobs. *)
type spec = {
  s_machine : Ilp.Machine.t;
  s_inline : bool;
  s_unroll : bool;
  s_segments : bool;
  s_predictor : predictor_kind;
  s_step_budget : int option;
  (** resource guard forwarded to {!Ilp.Analyze.config}; [None]
      inherits {!Run.config}[.step_budget] *)
}

val spec :
  ?inline:bool ->
  ?unroll:bool ->
  ?segments:bool ->
  ?predictor:predictor_kind ->
  ?step_budget:int ->
  Ilp.Machine.t ->
  spec
(** Defaults follow the paper: inlining and unrolling on, no segment
    collection, profile prediction, no step budget. *)

val spec_key : spec -> string
(** A stable identifier for caching: machine name + knobs.  Composed
    machines are named by their canonical spec string, so distinct
    lattice points never collide. *)

val specs_need_values : spec list -> bool
(** Whether any spec's machine carries the value-prediction constraint
    — i.e. whether preparation should run with [train_values].
    {!Run.exec} derives this itself; it is exposed for drivers that
    call {!prepare} directly (the bench store). *)

(** Intra-trace segmentation policy (DESIGN.md §15).  [`Off]: each
    workload's trace is analyzed sequentially (parallelism across
    workloads only).  [`Steps n]: shard every trace into [n]-entry
    segments, decode them concurrently, stitch deterministically.
    [`Auto]: derive the stride from trace length and jobs via
    {!Ilp.Segmented.auto_steps} ([`Off] when [jobs <= 1], where
    segmentation only adds overhead).  Results are bit-identical
    across all three for every machine spec. *)
type segmenting = [ `Off | `Auto | `Steps of int ]

(** The unified run API.  One config, one [exec], uniform per-workload
    outcomes — this subsumes the former [analyze] / [analyze_all] /
    [analyze_specs] / [run_streaming] / [run_streaming_result] /
    [run_streaming_all] family. *)
module Run : sig
  type config = {
    specs : spec list;  (** analysis fan-out, shared by every workload *)
    jobs : int;  (** domain-pool width; [1] never spawns a domain *)
    scheduler : Stdx.Pool.scheduler;
    (** which pool implementation backs [jobs > 1] runs (locked queue
        or work-stealing deques).  Scheduling only: results are
        bit-identical across schedulers, and [jobs = 1] never consults
        it. *)
    fuel : int option;
    (** instruction budget override ([None]: each workload's own) *)
    step_budget : int option;
    (** default analysis step budget for specs that set none *)
    mem_words : int option;  (** VM memory override, validated *)
    options : Codegen.Compile.options option;  (** compile options *)
    stream : bool;
    (** [false]: materialize each trace (one execution + one scan);
        [true]: stream (two executions, O(program) memory) *)
    deadline_ms : int option;
    (** per-workload wall-clock budget.  Setting it forces the
        streaming path (so the clock covers analysis too); each
        workload's deadline is armed when its own pipeline starts, and
        expiry yields that workload's typed [Deadline_exceeded] error
        (exit code 6) — the batch continues. *)
    obs : Obs.Ctx.t;  (** observability context; {!Obs.Ctx.disabled}
                          costs the hot loops one bool test *)
    segment_steps : segmenting;
    (** intra-trace sharding policy.  Anything but [`Off] makes
        [jobs > 1] parallelize {e within} each workload's trace
        (segment decode + per-config stitch fan-out), so a single
        workload saturates the pool; [`Off] parallelizes across
        workloads only (and warns once when [jobs] exceeds the
        workload count). *)
  }

  val config :
    ?jobs:int ->
    ?scheduler:Stdx.Pool.scheduler ->
    ?fuel:int ->
    ?step_budget:int ->
    ?mem_words:int ->
    ?options:Codegen.Compile.options ->
    ?stream:bool ->
    ?deadline_ms:int ->
    ?obs:Obs.Ctx.t ->
    ?segment_steps:segmenting ->
    spec list ->
    config
  (** Defaults: sequential ([jobs = 1]),
      {!Stdx.Pool.default_scheduler}, workload fuel, no step budget,
      default VM memory, no compile options, materialized trace, no
      deadline, observability disabled, no segmentation. *)

  (** One workload's outcome: the full result-per-spec list, or that
      workload's typed error.  A failure never aborts the batch. *)
  type item = {
    it_workload : Workloads.Registry.t;
    it_outcome : (Ilp.Analyze.result list, Pipeline_error.t) result;
  }

  val exec :
    config -> Workloads.Registry.t list -> (item list, Pipeline_error.t) result
  (** Run every workload through compile → execute → analyze under the
      config.  [Error] only for an invalid config ([jobs < 1]); every
      per-workload failure is carried in its {!item}.  With [jobs > 1]
      workloads fan out over a domain pool, each task with its own VM
      state, analysis sinks and span buffer; results are merged by
      workload index, so the output — results, {!Counters} totals,
      metric snapshot, span skeleton — is bit-identical to the
      sequential run for any [jobs] and any scheduling.  An exception
      escaping a task surfaces as that workload's [Internal] error,
      upholding the pipeline invariant across domains.

      Spans per workload (when [config.obs] is enabled): a ["workload"]
      root is {e not} recorded — the stages ["compile"], ["execute"]
      and ["analyze"] each record exactly one span, at depth 0, in
      pipeline order. *)

  val on_prepared :
    ?obs:Obs.Ctx.t ->
    ?span_buf:Obs.Span.buffer ->
    ?pool:Stdx.Pool.t ->
    ?segmenting:segmenting ->
    ?jobs:int ->
    ?task_index:int ->
    prepared ->
    spec list ->
    Ilp.Analyze.result list
  (** Fan specs out over a {e single} pass of an already-prepared trace
      (results in spec order, completeness-tagged).  This is the
      materialized analysis half of {!exec}, exposed for drivers that
      cache {!prepared} values across spec sets (the bench store).

      [segmenting] (default [`Off]) shards the trace per DESIGN.md §15;
      [jobs] (default 1) feeds [`Auto] stride resolution, [pool] hosts
      the decode/stitch tasks (absent: every stage runs inline, same
      results), and [task_index] namespaces the per-segment span
      buffers so concurrent workloads never collide. *)
end

(** Request-shaped entry point: one workload, per-request quotas, an
    optional precompiled program, an optional seeded fault — the unit
    of work the [ilp-limits serve] daemon executes per request.
    Always streams (analysis runs inside the observed execution), so
    the wall-clock deadline covers execution {e and} analysis. *)
module Request : sig
  type reply = {
    r_flat : Asm.Program.flat;
    (** the compiled program actually analyzed — callers (the serve
        compiled-program cache) key it by source hash and feed it back
        as [?flat] on the next hit *)
    r_results : Ilp.Analyze.result list;  (** one per spec, spec order *)
    r_steps : int;  (** instructions the analyzed execution retired *)
    r_status : Vm.Exec.status;  (** how that execution ended *)
  }

  val exec :
    ?obs:Obs.Ctx.t ->
    ?span_buf:Obs.Span.buffer ->
    ?flat:Asm.Program.flat ->
    ?fuel:int ->
    ?step_budget:int ->
    ?mem_words:int ->
    ?deadline_ms:int ->
    ?inject:Fault.Injector.kind * int ->
    ?pool:Stdx.Pool.t ->
    ?segment_steps:segmenting ->
    specs:spec list ->
    Workloads.Registry.t ->
    (reply, Pipeline_error.t) result
  (** Execute one request.  Total: every failure mode is a typed
      {!Pipeline_error.t} — compile errors, quota violations
      ([Budget_exceeded]), wall-clock expiry ([Deadline_exceeded],
      armed {e before} compilation so a cache miss pays for its own
      compile), VM faults, and anything unexpected via the
      {!Pipeline_error.guard} barrier.

      [flat] short-circuits compilation (cache hit); determinism
      contract: a cached reply is bit-identical to a fresh one because
      compilation is deterministic and everything downstream depends
      only on [flat].  [step_budget] is inherited by specs that carry
      none, exactly as in {!Run.exec}.

      [inject (kind, seed)] runs the deterministically perturbed
      pipeline instead: single execution, btfn prediction (no training
      pass), the first spec's machine (default [sp_cd_mf]), the
      injector's observe hook chained with the deadline's.

      [segment_steps] (default [`Off]) analyzes via the segmented path
      of DESIGN.md §15, with decode/stitch tasks on [pool] (absent:
      inline; [`Auto] stride resolution uses the pool's width).
      Deadline expiry still lands as [Deadline_exceeded]: the check
      hook runs per segment on every domain and propagates through the
      futures. *)
end

(** Outcome of running the static verifier (and optionally the dynamic
    trace cross-validation) over one workload. *)
type check_result = {
  c_workload : string;
  c_report : Cfg.Verify.report;  (** static diagnostics, historical shape *)
  c_engine : Cfg.Engine.report;
  (** the same diagnostics as the engine produced them: (proc, pc,
      class) order, effective severities, per-pass timings *)
  c_status : Vm.Exec.status option;
  (** how the dynamic execution ended ([None] if static only) *)
  c_dyn_entries : int;  (** trace entries checked dynamically (0 if static only) *)
  c_dyn_total : int;  (** dynamic violations found *)
  c_dyn_violations : Cfg.Verify.Dynamic.violation list;
  (** the kept window of violations, in trace order *)
}

val check :
  ?options:Codegen.Compile.options ->
  ?config:Cfg.Engine.config ->
  ?obs:Obs.Ctx.t ->
  ?fuel:int ->
  ?dynamic:bool ->
  Workloads.Registry.t ->
  check_result
(** Compile a workload and run every {!Cfg.Verify.passes} pass through
    {!Cfg.Engine.run} over it ([config] selects passes, severity
    overrides and strict mode; [obs] records per-pass spans and
    metrics).  With [~dynamic:true] the program is also executed (up
    to [fuel] instructions, default the workload's own budget) with
    {!Cfg.Verify.Dynamic} attached as trace sink and observe hook,
    cross-checking every retired instruction against the static facts. *)

(** Static parallelism estimate for one workload: the
    machine-independent facts plus the per-machine compiled bounds. *)
type estimated = {
  e_workload : string;
  e_est : Cfg.Estimate.t;
  e_info : Ilp.Program_info.t;
  e_bounds : Ilp.Static_bound.t list;  (** one per requested machine *)
}

val estimate :
  ?options:Codegen.Compile.options ->
  ?inline:bool ->
  ?unroll:bool ->
  machines:Ilp.Machine.t list ->
  Workloads.Registry.t ->
  (estimated, Pipeline_error.t) result
(** Compile a workload (no execution) and bound its oracle parallelism
    statically: {!Cfg.Estimate.compute} under the given
    inlining/unrolling assumptions (default both on, matching
    {!spec}), then {!Ilp.Static_bound.compile} per machine. *)

val estimate_flat :
  ?inline:bool ->
  ?unroll:bool ->
  machines:Ilp.Machine.t list ->
  workload:string ->
  Asm.Program.flat ->
  (estimated, Pipeline_error.t) result
(** {!estimate} on an already-compiled program — the admission-control
    path for the serve daemon's compiled-program cache, where a hit
    must not recompile just to be costed. *)

val branch_stats : prepared -> Ilp.Stats.branch_stats
(** Table 2 statistics, derived from the execution-time profile counts
    (no trace scan). *)

(** One deterministically injected fault, run through the full
    pipeline. *)
type injected = {
  i_workload : string;
  i_kind : Fault.Injector.kind;
  i_seed : int;
  i_description : string;
  (** exact perturbation, from {!Fault.Injector.plan} *)
  i_status : Vm.Exec.status;
  i_steps : int;  (** instructions the damaged execution retired *)
  i_result : Ilp.Analyze.result;
  (** analysis of the (possibly truncated) trace, completeness-tagged *)
}

val inject :
  ?fuel:int ->
  ?obs:Obs.Ctx.t ->
  ?machine:Ilp.Machine.t ->
  seed:int ->
  kind:Fault.Injector.kind ->
  Workloads.Registry.t ->
  (injected, Pipeline_error.t) result
(** Compile [w], apply the seeded perturbation, execute, and analyze
    the surviving trace under one configuration (default machine
    [sp_cd_mf]; btfn prediction — chosen because it needs no
    second training execution, keeping injection to a single
    deterministic run).  Total: compile errors and anything a corrupted
    program provokes come back as [Error]; same seed, same report.
    [obs] counts the plan under [fault_planned_total{kind=...}] and
    probes the damaged execution. *)

(** Bulk fault injection asserting the pipeline invariant: {e every}
    input yields either a result or a structured error.  An exception
    reaching the driver frame is an invariant violation — counted and
    reported with full reproduction data, never re-raised. *)
module Fuzz : sig
  type escaped = {
    e_seed : int;
    e_kind : Fault.Injector.kind;
    e_workload : string;
    e_exn : string;
  }

  type report = {
    cases : int;
    complete : int;  (** injected run still halted cleanly *)
    truncated : int;  (** analysis of a truncated trace succeeded *)
    structured_errors : int;  (** typed, non-[Internal] errors *)
    internal_errors : int;
    (** exceptions the {!Pipeline_error.guard} barrier converted *)
    escaped : escaped list;  (** invariant violations; must be [] *)
  }

  val run :
    ?fuel:int ->
    ?workloads:Workloads.Registry.t list ->
    ?jobs:int ->
    ?scheduler:Stdx.Pool.scheduler ->
    ?obs:Obs.Ctx.t ->
    ?random_machines:bool ->
    ?segments:bool ->
    seed:int ->
    cases:int ->
    unit ->
    (report, Pipeline_error.t) result
  (** Run [cases] seeded injections: case [i] uses the splitmix64
      stream output {!Fault.Injector.Rng.derive}[ ~seed ~index:i],
      cycles through all fault kinds, and rotates over [workloads]
      (default: the whole registry).  With [random_machines] (default
      [false]) each case also analyzes under a random machine-lattice
      point ({!Ilp.Machine.random} of the case seed) instead of always
      [sp_cd_mf], fuzzing the compositional model end to end.  With
      [segments] (default [false]) every case additionally runs the
      segmented-vs-sequential differential: the perturbed trace is
      analyzed both ways under a per-case segment stride drawn from
      the same seed stream (1–4096), and any divergence is an
      invariant violation reported through [escaped].  With
      [jobs > 1] the cases run on a domain pool; because each case's
      seed depends only on its index, the report is identical for every
      [jobs] value and scheduling order.  [Error] only for [jobs < 1]
      (same typed message as {!Run.exec}, via {!validate_jobs}). *)
end

module Counters = struct
  (* The pipeline counters are ordinary Obs.Metrics counters in the
     global registry: atomic adds commute, so the parallel path reports
     exactly the totals the sequential path does — and one registry
     snapshot covers these alongside every probe metric. *)
  let n_executions =
    Obs.Metrics.counter Obs.Metrics.global
      ~help:"VM executions run by the pipeline" "pipeline_executions_total"

  let n_passes =
    Obs.Metrics.counter Obs.Metrics.global
      ~help:"trace consumptions by the analyzer" "pipeline_trace_passes_total"

  let n_entries =
    Obs.Metrics.counter Obs.Metrics.global
      ~help:"trace entries scanned, summed over passes"
      "pipeline_trace_entries_total"

  let n_state_entries =
    Obs.Metrics.counter Obs.Metrics.global
      ~help:"trace entries times analysis states advanced"
      "pipeline_state_entries_total"

  let n_profiled_entries =
    Obs.Metrics.counter Obs.Metrics.global
      ~help:"trace entries consumed by sink-trained profile passes"
      "pipeline_profiled_entries_total"

  let n_segments =
    Obs.Metrics.counter Obs.Metrics.global
      ~help:"trace segments decoded by segmented analysis"
      "pipeline_segments_total"

  let executions () = Obs.Metrics.counter_value n_executions
  let passes () = Obs.Metrics.counter_value n_passes
  let entries () = Obs.Metrics.counter_value n_entries
  let state_entries () = Obs.Metrics.counter_value n_state_entries
  let profiled_entries () = Obs.Metrics.counter_value n_profiled_entries
  let segments () = Obs.Metrics.counter_value n_segments

  let record_execution ?(profiled = 0) () =
    Obs.Metrics.incr n_executions;
    Obs.Metrics.add n_profiled_entries profiled

  let record_pass ~entries ~states =
    Obs.Metrics.incr n_passes;
    Obs.Metrics.add n_entries entries;
    Obs.Metrics.add n_state_entries (entries * states)

  let record_segments n = Obs.Metrics.add n_segments n

  (* Total instruction-analysis events: every entry consumed by a
     sink-trained profile plus every (entry, analysis state) pair scanned
     by the trace analyzers.  This is the figure BENCH_results.json
     reports as [instructions_analyzed]. *)
  let analyzed () = profiled_entries () + state_entries ()

  let reset () =
    List.iter Obs.Metrics.reset_counter
      [ n_executions; n_passes; n_entries; n_state_entries;
        n_profiled_entries; n_segments ]
end

let ( let* ) = Result.bind

let validate_jobs j =
  if j < 1 then
    Error
      (Pipeline_error.v Execute
         (Invalid_request (Printf.sprintf "jobs must be at least 1 (got %d)" j)))
  else Ok j

type prepared = {
  workload : Workloads.Registry.t;
  flat : Asm.Program.flat;
  info : Ilp.Program_info.t;
  trace : Vm.Trace.t;
  steps : int;
  status : Vm.Exec.status;
  completeness : Pipeline_error.completeness;
  halted : int option;
  profile : Predict.Predictor.Profile.builder;
  values : Predict.Predictor.Value.builder option;
}

(* Compose two optional VM observe hooks (first, then second). *)
let chain_observe a b =
  match (a, b) with
  | None, o | o, None -> o
  | Some f, Some g ->
    Some
      (fun ~pc ~step ~regs ~fregs ~mem ->
        f ~pc ~step ~regs ~fregs ~mem;
        g ~pc ~step ~regs ~fregs ~mem)

let deadline_observe = function
  | None -> None
  | Some d -> Some (Obs.Deadline.observe d)

(* The deadline barrier: [Obs.Deadline.Expired] raised anywhere inside
   [f] (the observe hook mid-execution, a [check] at a stage boundary)
   degrades to the typed error instead of escaping — sits {e inside}
   the [Pipeline_error.guard], so expiry is never misfiled as
   [Internal]. *)
let deadline_guard ?workload stage f =
  try f () with
  | Obs.Deadline.Expired { budget_ms; elapsed_ms } ->
    Error
      (Pipeline_error.v ?workload stage
         (Deadline_exceeded { budget_ms; elapsed_ms }))

let profile_builder info =
  Predict.Predictor.Profile.builder ~n_static:info.Ilp.Program_info.n
    ~is_cond:(Ilp.Program_info.is_cond_branch info)

let value_builder info =
  Predict.Predictor.Value.builder ~n_static:info.Ilp.Program_info.n
    ~defs:info.Ilp.Program_info.defs

(* A faulting or fuel-capped execution is a first-class outcome: the
   trace prefix is kept and analyzed, and every downstream result
   carries the truncation tag.  Nothing on this path raises. *)
let prepare_flat ?mem_words ?(probe = Obs.Probe.vm_disabled)
    ?(span_buf = Obs.Span.disabled) ?(train_values = false) ?deadline
    ~fuel w flat =
  let name = w.Workloads.Registry.name in
  let info = Ilp.Program_info.analyze_flat flat in
  let profile = profile_builder info in
  (* Value training is opt-in: the observe hook runs per retired
     instruction, so only runs whose specs actually use value
     prediction pay for it. *)
  let values = if train_values then Some (value_builder info) else None in
  let observe =
    chain_observe
      (Option.map Predict.Predictor.Value.observe values)
      (deadline_observe deadline)
  in
  (* The one VM execution: the branch profile accumulates through a sink
     (and the value profile through the observe hook) while the trace is
     recorded, so the trained predictors cost no extra trace pass. *)
  let outcome =
    Obs.Span.with_span span_buf ~workload:name "execute" (fun () ->
        Vm.Exec.run ?mem_words ~fuel ~probe ?observe
          ~sink:(Predict.Predictor.Profile.sink profile) flat)
  in
  Counters.record_execution ~profiled:outcome.steps ();
  let halted =
    match outcome.status with
    | Vm.Exec.Halted v -> Some v
    | Out_of_fuel | Fault _ -> None
  in
  { workload = w; flat; info; trace = outcome.trace;
    steps = outcome.steps; status = outcome.status;
    completeness = Vm.Exec.completeness_of outcome; halted; profile;
    values }

let prepare ?options ?mem_words ?fuel ?(obs = Obs.Ctx.disabled)
    ?(span_buf = Obs.Span.disabled) ?train_values w =
  let name = w.Workloads.Registry.name in
  let fuel =
    match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
  in
  let flat =
    Obs.Span.with_span span_buf ~workload:name "compile" (fun () ->
        Workloads.Registry.compile ?options w)
  in
  prepare_flat ?mem_words ~probe:(Obs.Ctx.vm_probe obs) ~span_buf
    ?train_values ~fuel w flat

let validated_mem_words ~workload = function
  | None -> Ok None
  | Some n ->
    let* n = Vm.Exec.validate_mem_words ~workload n in
    Ok (Some n)

let prepare_result ?options ?mem_words ?fuel ?(obs = Obs.Ctx.disabled)
    ?(span_buf = Obs.Span.disabled) ?train_values ?deadline w =
  let name = w.Workloads.Registry.name in
  let fuel =
    match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
  in
  let* mem_words = validated_mem_words ~workload:name mem_words in
  let* flat =
    Obs.Span.with_span span_buf ~workload:name "compile" (fun () ->
        Workloads.Registry.compile_result ?options w)
  in
  Pipeline_error.guard ~workload:name Execute (fun () ->
      deadline_guard ~workload:name Execute (fun () ->
          Option.iter Obs.Deadline.check deadline;
          Ok
            (prepare_flat ?mem_words ~probe:(Obs.Ctx.vm_probe obs) ~span_buf
               ?train_values ?deadline ~fuel w flat)))

let prepare_source ?(fuel = 10_000_000) ?train_values ~name source =
  let w =
    { Workloads.Registry.name; description = "ad hoc source"; lang = "C";
      numeric = false; source; fuel; expected_result = None }
  in
  prepare ?train_values w

let profile_predictor p = Predict.Predictor.Profile.predictor p.profile

type predictor_kind =
  [ `Profile | `Perfect | `Btfn | `Two_bit
  | `Custom of Predict.Predictor.t ]

type spec = {
  s_machine : Ilp.Machine.t;
  s_inline : bool;
  s_unroll : bool;
  s_segments : bool;
  s_predictor : predictor_kind;
  s_step_budget : int option;
}

let spec ?(inline = true) ?(unroll = true) ?(segments = false)
    ?(predictor = `Profile) ?step_budget machine =
  { s_machine = machine; s_inline = inline; s_unroll = unroll;
    s_segments = segments; s_predictor = predictor;
    s_step_budget = step_budget }

let spec_key s =
  let pred =
    match s.s_predictor with
    | `Profile -> "profile"
    | `Perfect -> "perfect"
    | `Btfn -> "btfn"
    | `Two_bit -> "2bit"
    | `Custom p -> "custom:" ^ p.Predict.Predictor.name
  in
  Printf.sprintf "%s|i%c|u%c|s%c|b%s|%s" s.s_machine.Ilp.Machine.name
    (if s.s_inline then '1' else '0')
    (if s.s_unroll then '1' else '0')
    (if s.s_segments then '1' else '0')
    (match s.s_step_budget with None -> "-" | Some b -> string_of_int b)
    pred

let resolve_predictor ~flat ~info ~profile = function
  | `Profile -> Predict.Predictor.Profile.predictor profile
  | `Perfect -> Predict.Predictor.perfect
  | `Btfn ->
      Predict.Predictor.backward_taken
        ~is_backward:(Ilp.Program_info.branch_backward flat)
  | `Two_bit ->
      (* stateful: a fresh counter table per spec, never shared *)
      Predict.Predictor.two_bit ~n_static:info.Ilp.Program_info.n
  | `Custom p -> p

(* Whether any spec's machine needs value-prediction training.  Used by
   drivers to decide up front if the profiling execution should pay for
   the observe hook. *)
let specs_need_values specs =
  List.exists (fun s -> s.s_machine.Ilp.Machine.value_predict) specs

let config_of_spec ?(obs = Obs.Ctx.disabled) ?value_table ~flat ~info
    ~profile s =
  let predictor = resolve_predictor ~flat ~info ~profile s.s_predictor in
  let value_table =
    if s.s_machine.Ilp.Machine.value_predict then value_table else None
  in
  Ilp.Analyze.config ~inline:s.s_inline ~unroll:s.s_unroll
    ~collect_segments:s.s_segments ~mem_words:Vm.Exec.default_mem_words
    ?step_budget:s.s_step_budget ?value_table
    ~probe:
      (Obs.Ctx.analyzer_probe obs ~machine:s.s_machine.Ilp.Machine.name)
    s.s_machine predictor

(* ------------------------------------------------------------------ *)
(* Intra-trace segmentation (DESIGN.md §15): how a run decides whether
   to shard one workload's trace across domains, and how heterogeneous
   spec lists are partitioned into decode-compatible groups. *)

type segmenting = [ `Off | `Auto | `Steps of int ]

let resolve_segment_steps ~trace_len ~jobs = function
  | `Off -> None
  | `Steps n -> Some (max 1 n)
  | `Auto ->
    (* Auto only engages when there are domains to feed; an explicit
       stride is honored even sequentially (the deterministic
       reference path tests and the fuzzer exercise). *)
    if jobs <= 1 then None
    else Some (Ilp.Segmented.auto_steps ~trace_len ~jobs)

(* Once-per-process stderr warning for the --jobs dead-weight edge:
   more domains than parallelizable tasks, and no segmentation to
   soak up the extras. *)
let jobs_warned = Atomic.make false

let warn_dead_jobs ~jobs ~tasks =
  if not (Atomic.exchange jobs_warned true) then
    Printf.eprintf
      "warning: --jobs %d exceeds the %d parallelizable task(s); extra \
       domains stay idle (use --segment-steps to parallelize within a \
       trace)\n%!"
      jobs tasks

(* One segment decode serves every spec whose masks and predictor
   behavior agree: same inline/unroll and the same (stateless)
   predictor kind.  Stateful kinds (2-bit) land in their own group and
   fall back to the sequential fan-out. *)
let seg_group_key s =
  Printf.sprintf "i%c|u%c|%s"
    (if s.s_inline then '1' else '0')
    (if s.s_unroll then '1' else '0')
    (match s.s_predictor with
    | `Profile -> "profile"
    | `Perfect -> "perfect"
    | `Btfn -> "btfn"
    | `Two_bit -> "2bit"
    | `Custom p -> "custom:" ^ p.Predict.Predictor.name)

(* The segmented analysis fan-out over one stream of trace entries:
   specs are partitioned into decode-compatible groups (positions
   remembered), each group gets a segmented sink — or the plain
   [sink_many] when its configs are not segmentable — and the stream
   is teed into all of them.  [finish] stitches every group and
   scatters results back into spec order, so callers see exactly the
   [run_many] contract.  Works identically over a live VM execution
   (streaming) or a materialized trace ([Vm.Trace.feed]). *)
let segmented_sinks ?pool ?(obs = Obs.Ctx.disabled)
    ?(span_index_base = 0) ?(workload = "") ?check ~segment_steps specs
    configs info =
  let spec_arr = Array.of_list specs in
  let cfg_arr = Array.of_list configs in
  let n = Array.length spec_arr in
  let tbl = Hashtbl.create 7 in
  Array.iteri
    (fun i s ->
      let k = seg_group_key s in
      let prev = try Hashtbl.find tbl k with Not_found -> [] in
      Hashtbl.replace tbl k (i :: prev))
    spec_arr;
  let groups =
    Hashtbl.fold (fun _ ps acc -> List.rev ps :: acc) tbl []
    |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
  in
  (* Per group: result positions, its sink, and a finish yielding
     (results in group order, segments decoded). *)
  let members =
    List.mapi
      (fun g positions ->
        let cfgs = List.map (fun i -> cfg_arr.(i)) positions in
        if Ilp.Segmented.compatible cfgs then
          let sink, finish =
            Ilp.Segmented.sink ?pool ~obs
              ~span_index_base:(span_index_base + (g * 10_000_000))
              ~workload ?check ~segment_steps cfgs info
          in
          ( positions,
            sink,
            fun ?completeness () ->
              let o = finish ?completeness () in
              (o.Ilp.Segmented.results, o.Ilp.Segmented.segments) )
        else
          (* Not decode-sharable (stateful predictor): this group's
             states advance directly on the stream, exactly the
             sequential path. *)
          let sink, finish = Ilp.Analyze.sink_many cfgs info in
          ( positions,
            sink,
            fun ?completeness () -> (finish ?completeness (), 0) ))
      groups
  in
  let sink =
    match members with
    | [ (_, s, _) ] -> s
    | _ ->
      List.fold_left
        (fun acc (_, s, _) -> Vm.Trace.tee acc s)
        Vm.Trace.null_sink members
  in
  let finish ?completeness () =
    let out = Array.make n None in
    let total_segments = ref 0 in
    List.iter
      (fun (positions, _, fin) ->
        let results, segs = fin ?completeness () in
        total_segments := !total_segments + segs;
        List.iter2 (fun i r -> out.(i) <- Some r) positions results)
      members;
    Counters.record_segments !total_segments;
    Array.to_list (Array.map Option.get out)
  in
  (sink, finish)

module Run = struct
  type config = {
    specs : spec list;
    jobs : int;
    scheduler : Stdx.Pool.scheduler;
    fuel : int option;
    step_budget : int option;
    mem_words : int option;
    options : Codegen.Compile.options option;
    stream : bool;
    deadline_ms : int option;
    obs : Obs.Ctx.t;
    segment_steps : segmenting;
  }

  let config ?(jobs = 1) ?(scheduler = Stdx.Pool.default_scheduler) ?fuel
      ?step_budget ?mem_words ?options ?(stream = false) ?deadline_ms
      ?(obs = Obs.Ctx.disabled) ?(segment_steps = `Off) specs =
    { specs; jobs; scheduler; fuel; step_budget; mem_words; options; stream;
      deadline_ms; obs; segment_steps }

  type item = {
    it_workload : Workloads.Registry.t;
    it_outcome : (Ilp.Analyze.result list, Pipeline_error.t) result;
  }

  let on_prepared ?(obs = Obs.Ctx.disabled) ?(span_buf = Obs.Span.disabled)
      ?pool ?(segmenting = `Off) ?(jobs = 1) ?(task_index = 0) p specs =
    let name = p.workload.Workloads.Registry.name in
    Obs.Span.with_span span_buf ~workload:name "analyze" (fun () ->
        (* One table shared by every vp spec; None when the preparation
           ran without [train_values] (vp then degrades to a no-op). *)
        let value_table =
          if specs_need_values specs then
            Option.map Predict.Predictor.Value.table p.values
          else None
        in
        let configs =
          List.map
            (config_of_spec ~obs ?value_table ~flat:p.flat ~info:p.info
               ~profile:p.profile)
            specs
        in
        Counters.record_pass ~entries:(Vm.Trace.length p.trace)
          ~states:(List.length specs);
        match
          resolve_segment_steps ~trace_len:(Vm.Trace.length p.trace) ~jobs
            segmenting
        with
        | None ->
          Ilp.Analyze.run_many ~completeness:p.completeness configs p.info
            p.trace
        | Some segment_steps ->
          let sink, finish =
            segmented_sinks ?pool ~obs
              ~span_index_base:((task_index + 1) * 100_000_000)
              ~workload:name ~segment_steps specs configs p.info
          in
          Vm.Trace.feed p.trace sink;
          finish ~completeness:p.completeness ())

  (* Returns the per-spec results plus how the analyzed execution
     ended — the serve reply needs steps and status, the table paths
     only the results. *)
  let stream_flat_full ?mem_words ?deadline ?pool ?(segmenting = `Off)
      ?(jobs = 1) ?(task_index = 0) ~obs ~span_buf ~fuel w flat specs =
    let name = w.Workloads.Registry.name in
    let info = Ilp.Program_info.analyze_flat flat in
    let profile = profile_builder info in
    let values =
      if specs_need_values specs then Some (value_builder info) else None
    in
    let observe =
      chain_observe
        (Option.map Predict.Predictor.Value.observe values)
        (deadline_observe deadline)
    in
    let probe = Obs.Ctx.vm_probe obs in
    (* Execution 1 trains the profile (and, for vp specs, value)
       predictor; execution 2 streams into every analysis state.
       Nothing is materialized in between.  A deadline rides the
       observe hook of both executions — and because analysis happens
       {e inside} execution 2's retirement path, the wall-clock guard
       covers the analyzer too, which a materialized scan would not. *)
    let o1 =
      Obs.Span.with_span span_buf ~workload:name "execute" (fun () ->
          Vm.Exec.run ?mem_words ~fuel ~record:false ~probe ?observe
            ~sink:(Predict.Predictor.Profile.sink profile) flat)
    in
    Counters.record_execution ~profiled:o1.steps ();
    Option.iter Obs.Deadline.check deadline;
    Obs.Span.with_span span_buf ~workload:name "analyze" (fun () ->
        let value_table =
          Option.map Predict.Predictor.Value.table values
        in
        let configs =
          List.map (config_of_spec ~obs ?value_table ~flat ~info ~profile)
            specs
        in
        (* The profiling execution retired exactly the entries the
           analysis execution will (same program, fuel, memory), so
           [o1.steps] is the exact trace length for auto-sizing. *)
        let sink, finish =
          match
            resolve_segment_steps ~trace_len:o1.steps ~jobs segmenting
          with
          | None ->
            let sink, fin = Ilp.Analyze.sink_many configs info in
            (sink, fun ?completeness () -> fin ?completeness ())
          | Some segment_steps ->
            let check () = Option.iter Obs.Deadline.check deadline in
            segmented_sinks ?pool ~obs
              ~span_index_base:((task_index + 1) * 100_000_000)
              ~workload:name ~check ~segment_steps specs configs info
        in
        let o2 =
          Vm.Exec.run ?mem_words ~fuel ~record:false ~probe
            ?observe:(deadline_observe deadline) ~sink flat
        in
        Counters.record_execution ();
        Counters.record_pass ~entries:o2.steps ~states:(List.length specs);
        ( finish ~completeness:(Vm.Exec.completeness_of o2) (),
          o2.steps, o2.status ))

  let stream_flat ?mem_words ?deadline ?pool ?segmenting ?jobs ?task_index
      ~obs ~span_buf ~fuel w flat specs =
    let results, _, _ =
      stream_flat_full ?mem_words ?deadline ?pool ?segmenting ?jobs
        ?task_index ~obs ~span_buf ~fuel w flat specs
    in
    results

  let stream_result ?options ?mem_words ?fuel ?deadline ?pool ?segmenting
      ?jobs ?task_index ~obs ~span_buf w specs =
    let name = w.Workloads.Registry.name in
    let fuel =
      match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
    in
    let* mem_words = validated_mem_words ~workload:name mem_words in
    let* flat =
      Obs.Span.with_span span_buf ~workload:name "compile" (fun () ->
          Workloads.Registry.compile_result ?options w)
    in
    Pipeline_error.guard ~workload:name Execute (fun () ->
        deadline_guard ~workload:name Execute (fun () ->
            Option.iter Obs.Deadline.check deadline;
            Ok
              (stream_flat ?mem_words ?deadline ?pool ?segmenting ?jobs
                 ?task_index ~obs ~span_buf ~fuel w flat specs)))

  (* Parallel fan-out: each workload's whole pipeline — compile,
     execute, analyze every spec — is one pool task with its own VM
     state and span buffer; nothing is shared between tasks but the
     atomic metrics.  Results come back in workload order and span
     buffers merge by task index, so the output — results, counter
     totals, span skeleton — is bit-identical to the sequential run,
     whatever the scheduling.  The guard wrapper upholds the pipeline
     invariant across the domain boundary: an exception a task leaks
     becomes that workload's typed [Internal] error instead of escaping
     the pool. *)
  let exec cfg ws =
    let* jobs = validate_jobs cfg.jobs in
    let specs =
      (* a spec without its own budget inherits the run's *)
      List.map
        (fun s ->
          match (s.s_step_budget, cfg.step_budget) with
          | None, (Some _ as b) -> { s with s_step_budget = b }
          | _ -> s)
        cfg.specs
    in
    let task ?pool (i, w) =
      let name = w.Workloads.Registry.name in
      let buf = Obs.Ctx.task_buffer cfg.obs ~index:i ~label:name in
      (* Each workload gets the full wall-clock budget, armed when its
         own pipeline starts.  A deadline forces the streaming path:
         analysis then happens inside the observed execution, so the
         guard covers it — a materialized scan would run unclocked. *)
      let deadline =
        Option.map (fun budget_ms -> Obs.Deadline.start ~budget_ms)
          cfg.deadline_ms
      in
      let outcome =
        Pipeline_error.guard ~workload:name Execute (fun () ->
            if cfg.stream || deadline <> None then
              stream_result ?options:cfg.options ?mem_words:cfg.mem_words
                ?fuel:cfg.fuel ?deadline ?pool
                ~segmenting:cfg.segment_steps ~jobs ~task_index:i
                ~obs:cfg.obs ~span_buf:buf w specs
            else
              let* p =
                prepare_result ?options:cfg.options
                  ?mem_words:cfg.mem_words ?fuel:cfg.fuel ~obs:cfg.obs
                  ~span_buf:buf
                  ~train_values:(specs_need_values specs) w
              in
              Ok
                (on_prepared ~obs:cfg.obs ~span_buf:buf ?pool
                   ~segmenting:cfg.segment_steps ~jobs ~task_index:i p
                   specs))
      in
      { it_workload = w; it_outcome = outcome }
    in
    let indexed = List.mapi (fun i w -> (i, w)) ws in
    let seg_on = cfg.segment_steps <> `Off in
    let n_tasks = List.length indexed in
    if (not seg_on) && n_tasks > 0 && jobs > n_tasks then
      warn_dead_jobs ~jobs ~tasks:n_tasks;
    match indexed with
    | [] -> Ok []
    | _ when jobs = 1 || ((not seg_on) && n_tasks = 1) ->
      Ok (List.map (fun iw -> task iw) indexed)
    | _ when not seg_on ->
      Ok
        (Stdx.Pool.with_pool ~scheduler:cfg.scheduler ~jobs (fun pool ->
             Stdx.Pool.map_list pool (fun iw -> task iw) indexed))
    | _ ->
      (* Segmentation wants the pool inside every task (decode +
         stitch fan-out), including the single-workload case — the
         whole point of intra-trace sharding.  Nested submissions are
         safe: the pool's submitters and awaiters help drain the
         queue. *)
      Ok
        (Stdx.Pool.with_pool ~scheduler:cfg.scheduler ~jobs (fun pool ->
             Stdx.Pool.map_list pool (fun iw -> task ~pool iw) indexed))
end

(* ------------------------------------------------------------------ *)
(* Request-shaped entry point: one workload, per-request quotas, an
   optional precompiled program (cache hit) and an optional seeded
   fault — the unit of work the serve daemon executes.  Always streams,
   so a wall-clock deadline covers execution {e and} analysis. *)

module Request = struct
  type reply = {
    r_flat : Asm.Program.flat;
    r_results : Ilp.Analyze.result list;
    r_steps : int;
    r_status : Vm.Exec.status;
  }

  (* The seeded-fault variant of the request body: single execution,
     btfn prediction (no training pass), analysis streamed through the
     injector's wrapped sink, deadline chained onto the injector's own
     observe hook. *)
  let exec_injected ~obs ~deadline ~mem_words ~fuel ~machine ~seed ~kind
      flat =
    let metrics =
      if Obs.Ctx.enabled obs then Some (Obs.Ctx.metrics obs) else None
    in
    let app = Fault.Injector.plan ?metrics ~seed ~fuel kind flat in
    let dflat = app.Fault.Injector.flat in
    let info = Ilp.Program_info.analyze_flat dflat in
    let predictor =
      Predict.Predictor.backward_taken
        ~is_backward:(Ilp.Program_info.branch_backward dflat)
    in
    let cfg =
      Ilp.Analyze.config
        ~mem_words:
          (Option.value mem_words ~default:Vm.Exec.default_mem_words)
        machine predictor
    in
    let sink, finish = Ilp.Analyze.sink_many [ cfg ] info in
    let sink = app.Fault.Injector.wrap_sink sink in
    let observe =
      chain_observe app.Fault.Injector.observe (deadline_observe deadline)
    in
    let outcome =
      Vm.Exec.run ?mem_words ~fuel:app.Fault.Injector.fuel ~record:false
        ~sink ~probe:(Obs.Ctx.vm_probe obs) ?observe dflat
    in
    Counters.record_execution ();
    let analyzed_entries =
      match !(app.Fault.Injector.cut) with
      | Some f -> f.Pipeline_error.f_step
      | None -> outcome.steps
    in
    Counters.record_pass ~entries:analyzed_entries ~states:1;
    let completeness =
      match !(app.Fault.Injector.cut) with
      | Some f -> Pipeline_error.Truncated f
      | None -> Vm.Exec.completeness_of outcome
    in
    { r_flat = flat;
      r_results = finish ~completeness ();
      r_steps = outcome.steps;
      r_status = outcome.status }

  let exec ?(obs = Obs.Ctx.disabled) ?(span_buf = Obs.Span.disabled) ?flat
      ?fuel ?step_budget ?mem_words ?deadline_ms ?inject ?pool
      ?(segment_steps = `Off) ~specs w =
    let jobs =
      match pool with Some p -> Stdx.Pool.jobs p | None -> 1
    in
    let name = w.Workloads.Registry.name in
    let fuel =
      match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
    in
    let specs =
      (* a spec without its own budget inherits the request's *)
      List.map
        (fun s ->
          match (s.s_step_budget, step_budget) with
          | None, (Some _ as b) -> { s with s_step_budget = b }
          | _ -> s)
        specs
    in
    let* mem_words = validated_mem_words ~workload:name mem_words in
    (* The clock starts before compilation: a cache miss spends budget
       compiling, a hit keeps it all for execution. *)
    let deadline =
      Option.map (fun budget_ms -> Obs.Deadline.start ~budget_ms)
        deadline_ms
    in
    let* flat =
      match flat with
      | Some f -> Ok f
      | None ->
        Obs.Span.with_span span_buf ~workload:name "compile" (fun () ->
            Workloads.Registry.compile_result w)
    in
    Pipeline_error.guard ~workload:name Execute (fun () ->
        deadline_guard ~workload:name Execute (fun () ->
            Option.iter Obs.Deadline.check deadline;
            match inject with
            | Some (kind, seed) ->
              let machine =
                match specs with
                | s :: _ -> s.s_machine
                | [] -> Ilp.Machine.sp_cd_mf
              in
              Ok
                (exec_injected ~obs ~deadline ~mem_words ~fuel ~machine
                   ~seed ~kind flat)
            | None ->
              let r_results, r_steps, r_status =
                Run.stream_flat_full ?mem_words ?deadline ?pool
                  ~segmenting:segment_steps ~jobs ~obs ~span_buf ~fuel w
                  flat specs
              in
              Ok { r_flat = flat; r_results; r_steps; r_status }))
end

type check_result = {
  c_workload : string;
  c_report : Cfg.Verify.report;
  c_engine : Cfg.Engine.report;
  c_status : Vm.Exec.status option;
  c_dyn_entries : int;
  c_dyn_total : int;
  c_dyn_violations : Cfg.Verify.Dynamic.violation list;
}

let check ?options ?config ?(obs = Obs.Ctx.disabled) ?fuel
    ?(dynamic = false) w =
  let flat = Workloads.Registry.compile ?options w in
  let a = Cfg.Analysis.analyze flat in
  let engine =
    Cfg.Engine.run ~obs ?config ~workload:w.Workloads.Registry.name
      Cfg.Verify.passes a
  in
  let report = Cfg.Verify.of_engine engine in
  if dynamic then begin
    let fuel =
      match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
    in
    let d = Cfg.Verify.Dynamic.create a in
    let outcome =
      Vm.Exec.run ~fuel ~record:false
        ~sink:(Cfg.Verify.Dynamic.sink d)
        ~observe:(Cfg.Verify.Dynamic.observe d) flat
    in
    Counters.record_execution ();
    { c_workload = w.Workloads.Registry.name;
      c_report = report;
      c_engine = engine;
      c_status = Some outcome.status;
      c_dyn_entries = Cfg.Verify.Dynamic.entries d;
      c_dyn_total = Cfg.Verify.Dynamic.n_violations d;
      c_dyn_violations = Cfg.Verify.Dynamic.violations d }
  end
  else
    { c_workload = w.Workloads.Registry.name;
      c_report = report;
      c_engine = engine;
      c_status = None;
      c_dyn_entries = 0;
      c_dyn_total = 0;
      c_dyn_violations = [] }

type estimated = {
  e_workload : string;
  e_est : Cfg.Estimate.t;
  e_info : Ilp.Program_info.t;
  e_bounds : Ilp.Static_bound.t list;
}

let estimate_flat ?inline ?unroll ~machines ~workload flat =
  Pipeline_error.guard ~workload Analyze (fun () ->
      let a = Cfg.Analysis.analyze flat in
      let info = Ilp.Program_info.of_flat flat a in
      let est = Cfg.Estimate.compute ?inline ?unroll a in
      Ok
        { e_workload = workload;
          e_est = est;
          e_info = info;
          e_bounds =
            List.map (fun m -> Ilp.Static_bound.compile est info m) machines })

let estimate ?options ?inline ?unroll ~machines w =
  let name = w.Workloads.Registry.name in
  let* flat = Workloads.Registry.compile_result ?options w in
  estimate_flat ?inline ?unroll ~machines ~workload:name flat

let branch_stats p =
  let dyn = Predict.Predictor.Profile.dyn_branches p.profile in
  let correct = Predict.Predictor.Profile.correct p.profile in
  let len = p.steps in
  { Ilp.Stats.dyn_branches = dyn;
    trace_len = len;
    rate =
      (if dyn = 0 then 100.
       else 100. *. float_of_int correct /. float_of_int dyn);
    instrs_between =
      (if dyn = 0 then float_of_int len
       else float_of_int len /. float_of_int dyn) }

(* ------------------------------------------------------------------ *)
(* Fault injection: run one deterministically perturbed pipeline. *)

type injected = {
  i_workload : string;
  i_kind : Fault.Injector.kind;
  i_seed : int;
  i_description : string;
  i_status : Vm.Exec.status;
  i_steps : int;
  i_result : Ilp.Analyze.result;
}

let inject ?fuel ?(obs = Obs.Ctx.disabled)
    ?(machine = Ilp.Machine.sp_cd_mf) ~seed ~kind w =
  let fuel =
    match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
  in
  match Workloads.Registry.compile_result w with
  | Error e -> Error e
  | Ok flat ->
    let metrics =
      if Obs.Ctx.enabled obs then Some (Obs.Ctx.metrics obs) else None
    in
    let app = Fault.Injector.plan ?metrics ~seed ~fuel kind flat in
    (* The fault barrier: a corrupted program may break static analysis
       in ways no enumerated error covers; anything escaping becomes a
       typed Internal error rather than an exception. *)
    Pipeline_error.guard ~workload:w.Workloads.Registry.name Analyze
      (fun () ->
        let flat = app.Fault.Injector.flat in
        let info = Ilp.Program_info.analyze_flat flat in
        (* btfn needs no training execution, keeping injection to a
           single deterministic run *)
        let predictor =
          Predict.Predictor.backward_taken
            ~is_backward:(Ilp.Program_info.branch_backward flat)
        in
        let cfg =
          Ilp.Analyze.config ~mem_words:Vm.Exec.default_mem_words machine
            predictor
        in
        let sink, finish = Ilp.Analyze.sink_many [ cfg ] info in
        let sink = app.Fault.Injector.wrap_sink sink in
        let outcome =
          Vm.Exec.run ~fuel:app.Fault.Injector.fuel ~record:false ~sink
            ~probe:(Obs.Ctx.vm_probe obs)
            ?observe:app.Fault.Injector.observe flat
        in
        Counters.record_execution ();
        let analyzed_entries =
          match !(app.Fault.Injector.cut) with
          | Some f -> f.Pipeline_error.f_step
          | None -> outcome.steps
        in
        Counters.record_pass ~entries:analyzed_entries ~states:1;
        let completeness =
          match !(app.Fault.Injector.cut) with
          | Some f -> Pipeline_error.Truncated f
          | None -> Vm.Exec.completeness_of outcome
        in
        match finish ~completeness () with
        | [ r ] ->
          Ok
            { i_workload = w.Workloads.Registry.name;
              i_kind = kind;
              i_seed = seed;
              i_description = app.Fault.Injector.description;
              i_status = outcome.status;
              i_steps = outcome.steps;
              i_result = r }
        | _ -> assert false)

(* The segmented-vs-sequential differential on a perturbed pipeline:
   run the injected execution once, materializing exactly the stream
   the analyzer would have seen (the injector's sink wrapper applies
   its cut to the buffer), then analyze that buffer both ways and
   compare results structurally.  Returns the sequential result (for
   the usual completeness tally) plus the verdict. *)
let inject_compare ?fuel ?(obs = Obs.Ctx.disabled)
    ?(machine = Ilp.Machine.sp_cd_mf) ~seed ~kind ~segment_steps w =
  let fuel =
    match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
  in
  match Workloads.Registry.compile_result w with
  | Error e -> Error e
  | Ok flat ->
    let metrics =
      if Obs.Ctx.enabled obs then Some (Obs.Ctx.metrics obs) else None
    in
    let app = Fault.Injector.plan ?metrics ~seed ~fuel kind flat in
    Pipeline_error.guard ~workload:w.Workloads.Registry.name Analyze
      (fun () ->
        let flat = app.Fault.Injector.flat in
        let info = Ilp.Program_info.analyze_flat flat in
        let predictor =
          Predict.Predictor.backward_taken
            ~is_backward:(Ilp.Program_info.branch_backward flat)
        in
        let cfg =
          Ilp.Analyze.config ~mem_words:Vm.Exec.default_mem_words machine
            predictor
        in
        let buf = Vm.Trace.create () in
        let sink = app.Fault.Injector.wrap_sink (Vm.Trace.buffer_sink buf) in
        let outcome =
          Vm.Exec.run ~fuel:app.Fault.Injector.fuel ~record:false ~sink
            ~probe:(Obs.Ctx.vm_probe obs)
            ?observe:app.Fault.Injector.observe flat
        in
        Counters.record_execution ();
        let completeness =
          match !(app.Fault.Injector.cut) with
          | Some f -> Pipeline_error.Truncated f
          | None -> Vm.Exec.completeness_of outcome
        in
        Counters.record_pass ~entries:(Vm.Trace.length buf) ~states:1;
        let seq =
          Ilp.Analyze.run_many ~completeness [ cfg ] info buf
        in
        Counters.record_pass ~entries:(Vm.Trace.length buf) ~states:1;
        let seg =
          Ilp.Segmented.run ~completeness ~segment_steps [ cfg ] info buf
        in
        Counters.record_segments seg.Ilp.Segmented.segments;
        match (seq, seg.Ilp.Segmented.results) with
        | [ r ], [ r' ] ->
          Ok
            ( { i_workload = w.Workloads.Registry.name;
                i_kind = kind;
                i_seed = seed;
                i_description = app.Fault.Injector.description;
                i_status = outcome.status;
                i_steps = outcome.steps;
                i_result = r },
              r = r' )
        | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Fuzz driver: the pipeline invariant, checked in bulk.  Every seeded
   case must yield either a result or a structured error; an exception
   reaching this frame is an invariant violation, reported (never
   re-raised) so CI can fail on it with full reproduction data. *)

module Fuzz = struct
  type escaped = {
    e_seed : int;
    e_kind : Fault.Injector.kind;
    e_workload : string;
    e_exn : string;
  }

  type report = {
    cases : int;
    complete : int;
    truncated : int;
    structured_errors : int;
    internal_errors : int;
    escaped : escaped list;
  }

  (* What one seeded case did; folded into the report in index order so
     the counts and the escaped list never depend on scheduling. *)
  type outcome =
    | O_complete
    | O_truncated
    | O_structured
    | O_internal
    | O_escaped of escaped

  let run ?fuel ?(workloads = Workloads.Registry.all) ?(jobs = 1)
      ?(scheduler = Stdx.Pool.default_scheduler)
      ?(obs = Obs.Ctx.disabled) ?(random_machines = false)
      ?(segments = false) ~seed ~cases () =
    let* jobs = validate_jobs jobs in
    let wl = Array.of_list workloads in
    let kinds = Array.of_list Fault.Injector.all_kinds in
    let n_kinds = Array.length kinds in
    (* Case [i]'s seed is a pure function of (seed, i) — a splitmix64
       stream output — so a parallel sweep reproduces the sequential
       one case for case. *)
    let case i =
      let kind = kinds.(i mod n_kinds) in
      let w = wl.(i / n_kinds mod Array.length wl) in
      let case_seed = Fault.Injector.Rng.derive ~seed ~index:i in
      (* With [random_machines], each case also draws a random lattice
         point, so corrupted programs meet arbitrary machine specs —
         the compositional model fuzzed end to end. *)
      let machine =
        if random_machines then Some (Ilp.Machine.random case_seed)
        else None
      in
      if segments then begin
        (* Differential mode: segmented analysis must reproduce the
           sequential result bit for bit on the perturbed pipeline.
           The segment stride is itself fuzzed, drawn from the same
           seed stream as the case (a second derive index keeps it
           independent of the fault plan). *)
        let segment_steps =
          1 + (Fault.Injector.Rng.derive ~seed:case_seed ~index:997 land 0xFFF)
        in
        match
          inject_compare ?fuel ~obs ?machine ~seed:case_seed ~kind
            ~segment_steps w
        with
        | Ok (inj, identical) ->
          if not identical then
            O_escaped
              { e_seed = case_seed; e_kind = kind;
                e_workload = w.Workloads.Registry.name;
                e_exn =
                  Printf.sprintf
                    "segmented analysis diverged from sequential \
                     (segment_steps=%d)"
                    segment_steps }
          else (
            match inj.i_result.Ilp.Analyze.completeness with
            | Pipeline_error.Complete -> O_complete
            | Pipeline_error.Truncated _ -> O_truncated)
        | Error { Pipeline_error.cause = Internal _; _ } -> O_internal
        | Error _ -> O_structured
        | exception e ->
          O_escaped
            { e_seed = case_seed; e_kind = kind;
              e_workload = w.Workloads.Registry.name;
              e_exn = Printexc.to_string e }
      end
      else
        match inject ?fuel ~obs ?machine ~seed:case_seed ~kind w with
        | Ok inj -> (
          match inj.i_result.Ilp.Analyze.completeness with
          | Pipeline_error.Complete -> O_complete
          | Pipeline_error.Truncated _ -> O_truncated)
        | Error { Pipeline_error.cause = Internal _; _ } -> O_internal
        | Error _ -> O_structured
        | exception e ->
          O_escaped
            { e_seed = case_seed; e_kind = kind;
              e_workload = w.Workloads.Registry.name;
              e_exn = Printexc.to_string e }
    in
    let outcomes =
      if jobs > 1 && cases > 1 then
        Stdx.Pool.with_pool ~scheduler ~jobs (fun pool ->
            Stdx.Pool.map_array pool case (Array.init cases Fun.id))
      else Array.init cases case
    in
    let complete = ref 0
    and truncated = ref 0
    and structured = ref 0
    and internal = ref 0
    and escaped = ref [] in
    Array.iter
      (function
        | O_complete -> incr complete
        | O_truncated -> incr truncated
        | O_structured -> incr structured
        | O_internal -> incr internal
        | O_escaped e -> escaped := e :: !escaped)
      outcomes;
    Ok
      { cases; complete = !complete; truncated = !truncated;
        structured_errors = !structured; internal_errors = !internal;
        escaped = List.rev !escaped }
end

module Counters = struct
  (* Atomics, not refs: pipelines running on pool domains bump these
     concurrently, and atomic adds commute — the parallel path reports
     exactly the totals the sequential path does. *)
  let n_executions = Atomic.make 0
  let n_passes = Atomic.make 0
  let n_entries = Atomic.make 0
  let n_state_entries = Atomic.make 0
  let n_profiled_entries = Atomic.make 0

  let executions () = Atomic.get n_executions
  let passes () = Atomic.get n_passes
  let entries () = Atomic.get n_entries
  let state_entries () = Atomic.get n_state_entries
  let profiled_entries () = Atomic.get n_profiled_entries

  let add c n = ignore (Atomic.fetch_and_add c n)

  let record_execution ?(profiled = 0) () =
    Atomic.incr n_executions;
    add n_profiled_entries profiled

  let record_pass ~entries ~states =
    Atomic.incr n_passes;
    add n_entries entries;
    add n_state_entries (entries * states)

  (* Total instruction-analysis events: every entry consumed by a
     sink-trained profile plus every (entry, analysis state) pair scanned
     by the trace analyzers.  This is the figure BENCH_results.json
     reports as [instructions_analyzed]. *)
  let analyzed () = profiled_entries () + state_entries ()

  let reset () =
    Atomic.set n_executions 0;
    Atomic.set n_passes 0;
    Atomic.set n_entries 0;
    Atomic.set n_state_entries 0;
    Atomic.set n_profiled_entries 0
end

type prepared = {
  workload : Workloads.Registry.t;
  flat : Asm.Program.flat;
  info : Ilp.Program_info.t;
  trace : Vm.Trace.t;
  steps : int;
  status : Vm.Exec.status;
  completeness : Pipeline_error.completeness;
  halted : int option;
  profile : Predict.Predictor.Profile.builder;
}

let profile_builder info =
  Predict.Predictor.Profile.builder ~n_static:info.Ilp.Program_info.n
    ~is_cond:(Ilp.Program_info.is_cond_branch info)

(* A faulting or fuel-capped execution is a first-class outcome: the
   trace prefix is kept and analyzed, and every downstream result
   carries the truncation tag.  Nothing on this path raises. *)
let prepare_flat ?mem_words ~fuel w flat =
  let info = Ilp.Program_info.analyze_flat flat in
  let profile = profile_builder info in
  (* The one VM execution: the branch profile accumulates through a sink
     while the trace is recorded, so the profile predictor costs no
     extra trace pass. *)
  let outcome =
    Vm.Exec.run ?mem_words ~fuel
      ~sink:(Predict.Predictor.Profile.sink profile) flat
  in
  Counters.record_execution ~profiled:outcome.steps ();
  let halted =
    match outcome.status with
    | Vm.Exec.Halted v -> Some v
    | Out_of_fuel | Fault _ -> None
  in
  { workload = w; flat; info; trace = outcome.trace;
    steps = outcome.steps; status = outcome.status;
    completeness = Vm.Exec.completeness_of outcome; halted; profile }

let prepare ?options ?mem_words ?fuel w =
  let fuel =
    match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
  in
  prepare_flat ?mem_words ~fuel w (Workloads.Registry.compile ?options w)

let ( let* ) = Result.bind

let validated_mem_words ~workload = function
  | None -> Ok None
  | Some n ->
    let* n = Vm.Exec.validate_mem_words ~workload n in
    Ok (Some n)

let prepare_result ?options ?mem_words ?fuel w =
  let name = w.Workloads.Registry.name in
  let fuel =
    match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
  in
  let* mem_words = validated_mem_words ~workload:name mem_words in
  let* flat = Workloads.Registry.compile_result ?options w in
  Pipeline_error.guard ~workload:name Execute (fun () ->
      Ok (prepare_flat ?mem_words ~fuel w flat))

let prepare_source ?(fuel = 10_000_000) ~name source =
  let w =
    { Workloads.Registry.name; description = "ad hoc source"; lang = "C";
      numeric = false; source; fuel; expected_result = None }
  in
  prepare w

let profile_predictor p = Predict.Predictor.Profile.predictor p.profile

type predictor_kind =
  [ `Profile | `Perfect | `Btfn | `Two_bit
  | `Custom of Predict.Predictor.t ]

type spec = {
  s_machine : Ilp.Machine.t;
  s_inline : bool;
  s_unroll : bool;
  s_segments : bool;
  s_predictor : predictor_kind;
  s_step_budget : int option;
}

let spec ?(inline = true) ?(unroll = true) ?(segments = false)
    ?(predictor = `Profile) ?step_budget machine =
  { s_machine = machine; s_inline = inline; s_unroll = unroll;
    s_segments = segments; s_predictor = predictor;
    s_step_budget = step_budget }

let spec_key s =
  let pred =
    match s.s_predictor with
    | `Profile -> "profile"
    | `Perfect -> "perfect"
    | `Btfn -> "btfn"
    | `Two_bit -> "2bit"
    | `Custom p -> "custom:" ^ p.Predict.Predictor.name
  in
  Printf.sprintf "%s|i%c|u%c|s%c|b%s|%s" s.s_machine.Ilp.Machine.name
    (if s.s_inline then '1' else '0')
    (if s.s_unroll then '1' else '0')
    (if s.s_segments then '1' else '0')
    (match s.s_step_budget with None -> "-" | Some b -> string_of_int b)
    pred

let resolve_predictor ~flat ~info ~profile = function
  | `Profile -> Predict.Predictor.Profile.predictor profile
  | `Perfect -> Predict.Predictor.perfect
  | `Btfn ->
      Predict.Predictor.backward_taken
        ~is_backward:(Ilp.Program_info.branch_backward flat)
  | `Two_bit ->
      (* stateful: a fresh counter table per spec, never shared *)
      Predict.Predictor.two_bit ~n_static:info.Ilp.Program_info.n
  | `Custom p -> p

let config_of_spec ~flat ~info ~profile s =
  let predictor = resolve_predictor ~flat ~info ~profile s.s_predictor in
  Ilp.Analyze.config ~inline:s.s_inline ~unroll:s.s_unroll
    ~collect_segments:s.s_segments ~mem_words:Vm.Exec.default_mem_words
    ?step_budget:s.s_step_budget s.s_machine predictor

let analyze_specs p specs =
  let configs =
    List.map (config_of_spec ~flat:p.flat ~info:p.info ~profile:p.profile)
      specs
  in
  Counters.record_pass ~entries:(Vm.Trace.length p.trace)
    ~states:(List.length specs);
  Ilp.Analyze.run_many ~completeness:p.completeness configs p.info p.trace

let analyze ?(inline = true) ?(unroll = true) ?(segments = false) ?predictor
    p machine =
  let predictor =
    match predictor with Some pr -> `Custom pr | None -> `Profile
  in
  match
    analyze_specs p
      [ { s_machine = machine; s_inline = inline; s_unroll = unroll;
          s_segments = segments; s_predictor = predictor;
          s_step_budget = None } ]
  with
  | [ r ] -> r
  | _ -> assert false

let analyze_all ?inline ?unroll p machines =
  analyze_specs p (List.map (fun m -> spec ?inline ?unroll m) machines)

let run_streaming_flat ?mem_words ~fuel w flat specs =
  let info = Ilp.Program_info.analyze_flat flat in
  let profile = profile_builder info in
  (* Execution 1 trains the profile predictor; execution 2 streams into
     every analysis state.  Nothing is materialized in between. *)
  let o1 =
    Vm.Exec.run ?mem_words ~fuel ~record:false
      ~sink:(Predict.Predictor.Profile.sink profile) flat
  in
  Counters.record_execution ~profiled:o1.steps ();
  ignore w;
  let configs = List.map (config_of_spec ~flat ~info ~profile) specs in
  let sink, finish = Ilp.Analyze.sink_many configs info in
  let o2 = Vm.Exec.run ?mem_words ~fuel ~record:false ~sink flat in
  Counters.record_execution ();
  Counters.record_pass ~entries:o2.steps ~states:(List.length specs);
  finish ~completeness:(Vm.Exec.completeness_of o2) ()

let run_streaming ?options ?mem_words ?fuel w specs =
  let fuel =
    match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
  in
  run_streaming_flat ?mem_words ~fuel w
    (Workloads.Registry.compile ?options w)
    specs

let run_streaming_result ?options ?mem_words ?fuel w specs =
  let name = w.Workloads.Registry.name in
  let fuel =
    match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
  in
  let* mem_words = validated_mem_words ~workload:name mem_words in
  let* flat = Workloads.Registry.compile_result ?options w in
  Pipeline_error.guard ~workload:name Execute (fun () ->
      Ok (run_streaming_flat ?mem_words ~fuel w flat specs))

(* Parallel fan-out: each workload's whole pipeline — compile, the two
   executions, the streaming analysis of every spec — is one pool task
   with its own sink and VM state; nothing is shared between tasks but
   the atomic counters.  Results come back in workload order, so the
   output is bit-identical to mapping [run_streaming_result]
   sequentially, whatever the scheduling.  The guard wrapper upholds
   the pipeline invariant across the domain boundary: an exception a
   task leaks becomes that workload's typed [Internal] error instead of
   escaping the pool. *)
let run_streaming_all ?options ?mem_words ?fuel ?jobs ws specs =
  let task w =
    Pipeline_error.guard ~workload:w.Workloads.Registry.name Execute
      (fun () -> run_streaming_result ?options ?mem_words ?fuel w specs)
  in
  match ws with
  | [] -> []
  | [ w ] -> [ task w ]
  | ws -> Stdx.Pool.with_pool ?jobs (fun pool -> Stdx.Pool.map_list pool task ws)

type check_result = {
  c_workload : string;
  c_report : Cfg.Verify.report;
  c_status : Vm.Exec.status option;
  c_dyn_entries : int;
  c_dyn_total : int;
  c_dyn_violations : Cfg.Verify.Dynamic.violation list;
}

let check ?options ?fuel ?(dynamic = false) w =
  let flat = Workloads.Registry.compile ?options w in
  let a = Cfg.Analysis.analyze flat in
  let report = Cfg.Verify.check a in
  if dynamic then begin
    let fuel =
      match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
    in
    let d = Cfg.Verify.Dynamic.create a in
    let outcome =
      Vm.Exec.run ~fuel ~record:false
        ~sink:(Cfg.Verify.Dynamic.sink d)
        ~observe:(Cfg.Verify.Dynamic.observe d) flat
    in
    Counters.record_execution ();
    { c_workload = w.Workloads.Registry.name;
      c_report = report;
      c_status = Some outcome.status;
      c_dyn_entries = Cfg.Verify.Dynamic.entries d;
      c_dyn_total = Cfg.Verify.Dynamic.n_violations d;
      c_dyn_violations = Cfg.Verify.Dynamic.violations d }
  end
  else
    { c_workload = w.Workloads.Registry.name;
      c_report = report;
      c_status = None;
      c_dyn_entries = 0;
      c_dyn_total = 0;
      c_dyn_violations = [] }

let branch_stats p =
  let dyn = Predict.Predictor.Profile.dyn_branches p.profile in
  let correct = Predict.Predictor.Profile.correct p.profile in
  let len = p.steps in
  { Ilp.Stats.dyn_branches = dyn;
    trace_len = len;
    rate =
      (if dyn = 0 then 100.
       else 100. *. float_of_int correct /. float_of_int dyn);
    instrs_between =
      (if dyn = 0 then float_of_int len
       else float_of_int len /. float_of_int dyn) }

(* ------------------------------------------------------------------ *)
(* Fault injection: run one deterministically perturbed pipeline. *)

type injected = {
  i_workload : string;
  i_kind : Fault.Injector.kind;
  i_seed : int;
  i_description : string;
  i_status : Vm.Exec.status;
  i_steps : int;
  i_result : Ilp.Analyze.result;
}

let inject ?fuel ~seed ~kind w =
  let fuel =
    match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
  in
  match Workloads.Registry.compile_result w with
  | Error e -> Error e
  | Ok flat ->
    let app = Fault.Injector.plan ~seed ~fuel kind flat in
    (* The fault barrier: a corrupted program may break static analysis
       in ways no enumerated error covers; anything escaping becomes a
       typed Internal error rather than an exception. *)
    Pipeline_error.guard ~workload:w.Workloads.Registry.name Analyze
      (fun () ->
        let flat = app.Fault.Injector.flat in
        let info = Ilp.Program_info.analyze_flat flat in
        (* btfn needs no training execution, keeping injection to a
           single deterministic run *)
        let predictor =
          Predict.Predictor.backward_taken
            ~is_backward:(Ilp.Program_info.branch_backward flat)
        in
        let cfg =
          Ilp.Analyze.config ~mem_words:Vm.Exec.default_mem_words
            Ilp.Machine.sp_cd_mf predictor
        in
        let sink, finish = Ilp.Analyze.sink_many [ cfg ] info in
        let sink = app.Fault.Injector.wrap_sink sink in
        let outcome =
          Vm.Exec.run ~fuel:app.Fault.Injector.fuel ~record:false ~sink
            ?observe:app.Fault.Injector.observe flat
        in
        Counters.record_execution ();
        let analyzed_entries =
          match !(app.Fault.Injector.cut) with
          | Some f -> f.Pipeline_error.f_step
          | None -> outcome.steps
        in
        Counters.record_pass ~entries:analyzed_entries ~states:1;
        let completeness =
          match !(app.Fault.Injector.cut) with
          | Some f -> Pipeline_error.Truncated f
          | None -> Vm.Exec.completeness_of outcome
        in
        match finish ~completeness () with
        | [ r ] ->
          Ok
            { i_workload = w.Workloads.Registry.name;
              i_kind = kind;
              i_seed = seed;
              i_description = app.Fault.Injector.description;
              i_status = outcome.status;
              i_steps = outcome.steps;
              i_result = r }
        | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Fuzz driver: the pipeline invariant, checked in bulk.  Every seeded
   case must yield either a result or a structured error; an exception
   reaching this frame is an invariant violation, reported (never
   re-raised) so CI can fail on it with full reproduction data. *)

module Fuzz = struct
  type escaped = {
    e_seed : int;
    e_kind : Fault.Injector.kind;
    e_workload : string;
    e_exn : string;
  }

  type report = {
    cases : int;
    complete : int;
    truncated : int;
    structured_errors : int;
    internal_errors : int;
    escaped : escaped list;
  }

  (* What one seeded case did; folded into the report in index order so
     the counts and the escaped list never depend on scheduling. *)
  type outcome =
    | O_complete
    | O_truncated
    | O_structured
    | O_internal
    | O_escaped of escaped

  let run ?fuel ?(workloads = Workloads.Registry.all) ?jobs ~seed ~cases ()
      =
    let wl = Array.of_list workloads in
    let kinds = Array.of_list Fault.Injector.all_kinds in
    let n_kinds = Array.length kinds in
    (* Case [i]'s seed is a pure function of (seed, i) — a splitmix64
       stream output — so a parallel sweep reproduces the sequential
       one case for case. *)
    let case i =
      let kind = kinds.(i mod n_kinds) in
      let w = wl.(i / n_kinds mod Array.length wl) in
      let case_seed = Fault.Injector.Rng.derive ~seed ~index:i in
      match inject ?fuel ~seed:case_seed ~kind w with
      | Ok inj -> (
        match inj.i_result.Ilp.Analyze.completeness with
        | Pipeline_error.Complete -> O_complete
        | Pipeline_error.Truncated _ -> O_truncated)
      | Error { Pipeline_error.cause = Internal _; _ } -> O_internal
      | Error _ -> O_structured
      | exception e ->
        O_escaped
          { e_seed = case_seed; e_kind = kind;
            e_workload = w.Workloads.Registry.name;
            e_exn = Printexc.to_string e }
    in
    let outcomes =
      match jobs with
      | Some j when j > 1 && cases > 1 ->
        Stdx.Pool.with_pool ~jobs:j (fun pool ->
            Stdx.Pool.map_array pool case (Array.init cases Fun.id))
      | _ -> Array.init cases case
    in
    let complete = ref 0
    and truncated = ref 0
    and structured = ref 0
    and internal = ref 0
    and escaped = ref [] in
    Array.iter
      (function
        | O_complete -> incr complete
        | O_truncated -> incr truncated
        | O_structured -> incr structured
        | O_internal -> incr internal
        | O_escaped e -> escaped := e :: !escaped)
      outcomes;
    { cases; complete = !complete; truncated = !truncated;
      structured_errors = !structured; internal_errors = !internal;
      escaped = List.rev !escaped }
end

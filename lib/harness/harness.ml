module Counters = struct
  let n_executions = ref 0
  let n_passes = ref 0
  let n_entries = ref 0
  let n_state_entries = ref 0
  let n_profiled_entries = ref 0

  let executions () = !n_executions
  let passes () = !n_passes
  let entries () = !n_entries
  let state_entries () = !n_state_entries
  let profiled_entries () = !n_profiled_entries

  let record_execution ?(profiled = 0) () =
    incr n_executions;
    n_profiled_entries := !n_profiled_entries + profiled

  let record_pass ~entries ~states =
    incr n_passes;
    n_entries := !n_entries + entries;
    n_state_entries := !n_state_entries + (entries * states)

  (* Total instruction-analysis events: every entry consumed by a
     sink-trained profile plus every (entry, analysis state) pair scanned
     by the trace analyzers.  This is the figure BENCH_results.json
     reports as [instructions_analyzed]. *)
  let analyzed () = !n_profiled_entries + !n_state_entries

  let reset () =
    n_executions := 0;
    n_passes := 0;
    n_entries := 0;
    n_state_entries := 0;
    n_profiled_entries := 0
end

type prepared = {
  workload : Workloads.Registry.t;
  flat : Asm.Program.flat;
  info : Ilp.Program_info.t;
  trace : Vm.Trace.t;
  steps : int;
  halted : int option;
  profile : Predict.Predictor.Profile.builder;
}

let profile_builder info =
  Predict.Predictor.Profile.builder ~n_static:info.Ilp.Program_info.n
    ~is_cond:(Ilp.Program_info.is_cond_branch info)

let check_fault name (outcome : Vm.Exec.outcome) =
  match outcome.status with
  | Vm.Exec.Fault msg -> failwith (Printf.sprintf "%s: VM fault: %s" name msg)
  | Halted _ | Out_of_fuel -> ()

let prepare ?options ?fuel w =
  let fuel =
    match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
  in
  let flat = Workloads.Registry.compile ?options w in
  let info = Ilp.Program_info.analyze_flat flat in
  let profile = profile_builder info in
  (* The one VM execution: the branch profile accumulates through a sink
     while the trace is recorded, so the profile predictor costs no
     extra trace pass. *)
  let outcome =
    Vm.Exec.run ~fuel ~sink:(Predict.Predictor.Profile.sink profile) flat
  in
  Counters.record_execution ~profiled:outcome.steps ();
  check_fault w.name outcome;
  let halted =
    match outcome.status with
    | Vm.Exec.Halted v -> Some v
    | Out_of_fuel | Fault _ -> None
  in
  { workload = w; flat; info; trace = outcome.trace;
    steps = outcome.steps; halted; profile }

let prepare_source ?(fuel = 10_000_000) ~name source =
  let w =
    { Workloads.Registry.name; description = "ad hoc source"; lang = "C";
      numeric = false; source; fuel; expected_result = None }
  in
  prepare w

let profile_predictor p = Predict.Predictor.Profile.predictor p.profile

type predictor_kind =
  [ `Profile | `Perfect | `Btfn | `Two_bit
  | `Custom of Predict.Predictor.t ]

type spec = {
  s_machine : Ilp.Machine.t;
  s_inline : bool;
  s_unroll : bool;
  s_segments : bool;
  s_predictor : predictor_kind;
}

let spec ?(inline = true) ?(unroll = true) ?(segments = false)
    ?(predictor = `Profile) machine =
  { s_machine = machine; s_inline = inline; s_unroll = unroll;
    s_segments = segments; s_predictor = predictor }

let spec_key s =
  let pred =
    match s.s_predictor with
    | `Profile -> "profile"
    | `Perfect -> "perfect"
    | `Btfn -> "btfn"
    | `Two_bit -> "2bit"
    | `Custom p -> "custom:" ^ p.Predict.Predictor.name
  in
  Printf.sprintf "%s|i%c|u%c|s%c|%s" s.s_machine.Ilp.Machine.name
    (if s.s_inline then '1' else '0')
    (if s.s_unroll then '1' else '0')
    (if s.s_segments then '1' else '0')
    pred

let resolve_predictor ~flat ~info ~profile = function
  | `Profile -> Predict.Predictor.Profile.predictor profile
  | `Perfect -> Predict.Predictor.perfect
  | `Btfn ->
      Predict.Predictor.backward_taken
        ~is_backward:(Ilp.Program_info.branch_backward flat)
  | `Two_bit ->
      (* stateful: a fresh counter table per spec, never shared *)
      Predict.Predictor.two_bit ~n_static:info.Ilp.Program_info.n
  | `Custom p -> p

let config_of_spec ~flat ~info ~profile s =
  let predictor = resolve_predictor ~flat ~info ~profile s.s_predictor in
  Ilp.Analyze.config ~inline:s.s_inline ~unroll:s.s_unroll
    ~collect_segments:s.s_segments ~mem_words:Vm.Exec.default_mem_words
    s.s_machine predictor

let analyze_specs p specs =
  let configs =
    List.map (config_of_spec ~flat:p.flat ~info:p.info ~profile:p.profile)
      specs
  in
  Counters.record_pass ~entries:(Vm.Trace.length p.trace)
    ~states:(List.length specs);
  Ilp.Analyze.run_many configs p.info p.trace

let analyze ?(inline = true) ?(unroll = true) ?(segments = false) ?predictor
    p machine =
  let predictor =
    match predictor with Some pr -> `Custom pr | None -> `Profile
  in
  match
    analyze_specs p
      [ { s_machine = machine; s_inline = inline; s_unroll = unroll;
          s_segments = segments; s_predictor = predictor } ]
  with
  | [ r ] -> r
  | _ -> assert false

let analyze_all ?inline ?unroll p machines =
  analyze_specs p (List.map (fun m -> spec ?inline ?unroll m) machines)

let run_streaming ?options ?fuel w specs =
  let fuel =
    match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
  in
  let flat = Workloads.Registry.compile ?options w in
  let info = Ilp.Program_info.analyze_flat flat in
  let profile = profile_builder info in
  (* Execution 1 trains the profile predictor; execution 2 streams into
     every analysis state.  Nothing is materialized in between. *)
  let o1 =
    Vm.Exec.run ~fuel ~record:false
      ~sink:(Predict.Predictor.Profile.sink profile) flat
  in
  Counters.record_execution ~profiled:o1.steps ();
  check_fault w.name o1;
  let configs = List.map (config_of_spec ~flat ~info ~profile) specs in
  let sink, finish = Ilp.Analyze.sink_many configs info in
  let o2 = Vm.Exec.run ~fuel ~record:false ~sink flat in
  Counters.record_execution ();
  check_fault w.name o2;
  Counters.record_pass ~entries:o2.steps ~states:(List.length specs);
  finish ()

type check_result = {
  c_workload : string;
  c_report : Cfg.Verify.report;
  c_dyn_entries : int;
  c_dyn_total : int;
  c_dyn_violations : Cfg.Verify.Dynamic.violation list;
}

let check ?options ?fuel ?(dynamic = false) w =
  let flat = Workloads.Registry.compile ?options w in
  let a = Cfg.Analysis.analyze flat in
  let report = Cfg.Verify.check a in
  if dynamic then begin
    let fuel =
      match fuel with Some f -> f | None -> w.Workloads.Registry.fuel
    in
    let d = Cfg.Verify.Dynamic.create a in
    let outcome =
      Vm.Exec.run ~fuel ~record:false
        ~sink:(Cfg.Verify.Dynamic.sink d)
        ~observe:(Cfg.Verify.Dynamic.observe d) flat
    in
    Counters.record_execution ();
    check_fault w.Workloads.Registry.name outcome;
    { c_workload = w.Workloads.Registry.name;
      c_report = report;
      c_dyn_entries = Cfg.Verify.Dynamic.entries d;
      c_dyn_total = Cfg.Verify.Dynamic.n_violations d;
      c_dyn_violations = Cfg.Verify.Dynamic.violations d }
  end
  else
    { c_workload = w.Workloads.Registry.name;
      c_report = report;
      c_dyn_entries = 0;
      c_dyn_total = 0;
      c_dyn_violations = [] }

let branch_stats p =
  let dyn = Predict.Predictor.Profile.dyn_branches p.profile in
  let correct = Predict.Predictor.Profile.correct p.profile in
  let len = p.steps in
  { Ilp.Stats.dyn_branches = dyn;
    trace_len = len;
    rate =
      (if dyn = 0 then 100.
       else 100. *. float_of_int correct /. float_of_int dyn);
    instrs_between =
      (if dyn = 0 then float_of_int len
       else float_of_int len /. float_of_int dyn) }

module Rng = struct
  (* splitmix64: tiny, stateless-per-draw, and stable across OCaml
     versions (unlike Stdlib.Random), which the same-seed-same-report
     guarantee depends on. *)
  type t = { mutable s : int64 }

  let gamma = 0x9E3779B97F4A7C15L

  let create seed = { s = Int64.of_int seed }

  let mix z =
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let next t =
    t.s <- Int64.add t.s gamma;
    mix t.s

  let int t n =
    if n <= 0 then invalid_arg "Injector.Rng.int";
    Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int)
                    (Int64.of_int n))

  (* [derive ~seed ~index] is output [index] of the splitmix64 stream
     rooted at [seed] — a decorrelated per-task seed that depends only
     on (seed, index), never on which domain draws it or when, so
     parallel fuzzing stays bit-reproducible under any scheduling. *)
  let derive ~seed ~index =
    let z =
      Int64.add (Int64.of_int seed)
        (Int64.mul (Int64.of_int (index + 1)) gamma)
    in
    Int64.to_int (Int64.logand (mix z) Int64.max_int)
end

type kind =
  | Bit_flip
  | Mem_corrupt
  | Trace_cut
  | Fuel_cut

let all_kinds = [ Bit_flip; Mem_corrupt; Trace_cut; Fuel_cut ]

let kind_name = function
  | Bit_flip -> "bit-flip"
  | Mem_corrupt -> "mem-corrupt"
  | Trace_cut -> "trace-cut"
  | Fuel_cut -> "fuel-cut"

let kind_names = List.map kind_name all_kinds

let kind_of_string s =
  let canon =
    String.map (function '_' -> '-' | c -> c) (String.lowercase_ascii s)
  in
  List.find_opt (fun k -> kind_name k = canon) all_kinds

type applied = {
  kind : kind;
  seed : int;
  description : string;
  flat : Asm.Program.flat;
  fuel : int;
  observe :
    (pc:int -> step:int -> regs:int array -> fregs:float array ->
     mem:int array -> unit)
      option;
  wrap_sink : Vm.Trace.sink -> Vm.Trace.sink;
  cut : Pipeline_error.fault_info option ref;
}

(* ------------------------------------------------------------------ *)
(* Structured instruction corruption. *)

let alu_ops =
  Risc.Insn.[| Add; Sub; Mul; Div; Rem; And; Or; Xor; Sll; Srl; Sra; Slt;
               Sle; Seq; Sne |]

let conds = Risc.Insn.[| Eq; Ne; Lt; Le; Gt; Ge |]

(* Flip one of the low five bits: register indices stay inside the
   register file, so the damage surfaces as pipeline faults (wild
   values, addresses, targets), not host array bounds errors. *)
let flip_reg rng r = r lxor (1 lsl Rng.int rng 5)

let flip_imm rng imm = imm lxor (1 lsl Rng.int rng 16)

(* Branch/jump targets stay inside the code segment; a wild-but-valid
   target stresses the CFG checks and the analyzers far deeper than an
   immediate out-of-range fault would. *)
let flip_target rng n_code t =
  if n_code <= 1 then t else (t lxor (1 lsl Rng.int rng 16)) mod n_code

let mutate_insn rng n_code insn =
  let open Risc.Insn in
  let pick arr cur =
    let i = Rng.int rng (Array.length arr) in
    if arr.(i) = cur then arr.((i + 1) mod Array.length arr) else arr.(i)
  in
  match insn with
  | Alu (op, rd, rs, rt) -> (
    match Rng.int rng 4 with
    | 0 -> Alu (pick alu_ops op, rd, rs, rt)
    | 1 -> Alu (op, flip_reg rng rd, rs, rt)
    | 2 -> Alu (op, rd, flip_reg rng rs, rt)
    | _ -> Alu (op, rd, rs, flip_reg rng rt))
  | Alui (op, rd, rs, imm) -> (
    match Rng.int rng 4 with
    | 0 -> Alui (pick alu_ops op, rd, rs, imm)
    | 1 -> Alui (op, flip_reg rng rd, rs, imm)
    | 2 -> Alui (op, rd, flip_reg rng rs, imm)
    | _ -> Alui (op, rd, rs, flip_imm rng imm))
  | Li (rd, imm) ->
    if Rng.int rng 2 = 0 then Li (flip_reg rng rd, imm)
    else Li (rd, flip_imm rng imm)
  | Fli (fd, x) ->
    if Rng.int rng 2 = 0 then Fli (flip_reg rng fd, x)
    else Fli (fd, x *. -2.0)
  | Lw (rd, base, off) -> (
    match Rng.int rng 3 with
    | 0 -> Lw (flip_reg rng rd, base, off)
    | 1 -> Lw (rd, flip_reg rng base, off)
    | _ -> Lw (rd, base, flip_imm rng off))
  | Sw (rsrc, base, off) -> (
    match Rng.int rng 3 with
    | 0 -> Sw (flip_reg rng rsrc, base, off)
    | 1 -> Sw (rsrc, flip_reg rng base, off)
    | _ -> Sw (rsrc, base, flip_imm rng off))
  | Flw (fd, base, off) -> (
    match Rng.int rng 3 with
    | 0 -> Flw (flip_reg rng fd, base, off)
    | 1 -> Flw (fd, flip_reg rng base, off)
    | _ -> Flw (fd, base, flip_imm rng off))
  | Fsw (fsrc, base, off) -> (
    match Rng.int rng 3 with
    | 0 -> Fsw (flip_reg rng fsrc, base, off)
    | 1 -> Fsw (fsrc, flip_reg rng base, off)
    | _ -> Fsw (fsrc, base, flip_imm rng off))
  | Falu (op, fd, fs, ft) -> (
    match Rng.int rng 3 with
    | 0 -> Falu (op, flip_reg rng fd, fs, ft)
    | 1 -> Falu (op, fd, flip_reg rng fs, ft)
    | _ -> Falu (op, fd, fs, flip_reg rng ft))
  | Fcmp (op, rd, fs, ft) -> (
    match Rng.int rng 3 with
    | 0 -> Fcmp (op, flip_reg rng rd, fs, ft)
    | 1 -> Fcmp (op, rd, flip_reg rng fs, ft)
    | _ -> Fcmp (op, rd, fs, flip_reg rng ft))
  | Movn (rd, rs, rg) -> (
    match Rng.int rng 3 with
    | 0 -> Movn (flip_reg rng rd, rs, rg)
    | 1 -> Movn (rd, flip_reg rng rs, rg)
    | _ -> Movn (rd, rs, flip_reg rng rg))
  | Fmov (fd, fs) ->
    if Rng.int rng 2 = 0 then Fmov (flip_reg rng fd, fs)
    else Fmov (fd, flip_reg rng fs)
  | I2f (fd, rs) ->
    if Rng.int rng 2 = 0 then I2f (flip_reg rng fd, rs)
    else I2f (fd, flip_reg rng rs)
  | F2i (rd, fs) ->
    if Rng.int rng 2 = 0 then F2i (flip_reg rng rd, fs)
    else F2i (rd, flip_reg rng fs)
  | B (c, rs, rt, target) -> (
    match Rng.int rng 4 with
    | 0 -> B (pick conds c, rs, rt, target)
    | 1 -> B (c, flip_reg rng rs, rt, target)
    | 2 -> B (c, rs, flip_reg rng rt, target)
    | _ -> B (c, rs, rt, flip_target rng n_code target))
  | Bi (c, rs, imm, target) -> (
    match Rng.int rng 4 with
    | 0 -> Bi (pick conds c, rs, imm, target)
    | 1 -> Bi (c, flip_reg rng rs, imm, target)
    | 2 -> Bi (c, rs, flip_imm rng imm, target)
    | _ -> Bi (c, rs, imm, flip_target rng n_code target))
  | J target -> J (flip_target rng n_code target)
  | Jal target -> Jal (flip_target rng n_code target)
  | Jr rs -> Jr (flip_reg rng rs)
  | Jtab (rs, table) ->
    if Array.length table > 0 && Rng.int rng 2 = 0 then begin
      let table = Array.copy table in
      let i = Rng.int rng (Array.length table) in
      table.(i) <- flip_target rng n_code table.(i);
      Jtab (rs, table)
    end
    else Jtab (flip_reg rng rs, table)
  | Halt ->
    (* dropping a Halt sends execution running off into other code *)
    J (Rng.int rng n_code)

let identity_wrap sink = sink

let plan ?metrics ~seed ~fuel kind (flat : Asm.Program.flat) =
  (match metrics with
  | Some m ->
    Obs.Metrics.incr
      (Obs.Metrics.counter m
         ~help:"fault injections planned, by kind"
         (Printf.sprintf "fault_planned_total{kind=%S}" (kind_name kind)))
  | None -> ());
  let rng = Rng.create seed in
  let base =
    { kind; seed; description = ""; flat; fuel; observe = None;
      wrap_sink = identity_wrap; cut = ref None }
  in
  match kind with
  | Bit_flip ->
    let n_code = Array.length flat.code in
    let pc = Rng.int rng (max 1 n_code) in
    let before = flat.code.(pc) in
    let after = mutate_insn rng n_code before in
    let code = Array.copy flat.code in
    code.(pc) <- after;
    let description =
      Format.asprintf "bit-flip at pc %d: %a -> %a" pc
        Risc.Insn.pp_resolved before Risc.Insn.pp_resolved after
    in
    { base with flat = { flat with code }; description }
  | Mem_corrupt ->
    let step = Rng.int rng (max 1 (min fuel 100_000)) in
    let addr = Rng.int rng Vm.Exec.default_mem_words in
    let value = Rng.int rng (1 lsl 30) - (1 lsl 29) in
    let armed = ref true in
    let observe ~pc:_ ~step:s ~regs:_ ~fregs:_ ~mem =
      if !armed && s = step then begin
        armed := false;
        mem.(addr mod Array.length mem) <- value
      end
    in
    { base with
      observe = Some observe;
      description =
        Printf.sprintf "mem-corrupt at step %d: mem[%d] <- %d" step addr
          value }
  | Trace_cut ->
    let keep = 1 + Rng.int rng (max 1 (min fuel 50_000)) in
    let cut = ref None in
    let wrap_sink (inner : Vm.Trace.sink) =
      let seen = ref 0 in
      { Vm.Trace.on_entry =
          (fun ~pc ~aux ->
            if !seen < keep then begin
              incr seen;
              inner.Vm.Trace.on_entry ~pc ~aux
            end
            else if !cut = None then
              cut :=
                Some
                  (Pipeline_error.fault ~pc ~step:keep
                     ~detail:
                       (Printf.sprintf "trace delivery cut after %d entries"
                          keep)
                     Pipeline_error.Trace_cut));
        on_close = (fun () -> inner.Vm.Trace.on_close ()) }
    in
    { base with
      wrap_sink;
      cut;
      description = Printf.sprintf "trace-cut after %d entries" keep }
  | Fuel_cut ->
    let fuel' = 1 + Rng.int rng (max 1 (min fuel 50_000)) in
    { base with
      fuel = fuel';
      description = Printf.sprintf "fuel-cut to %d instructions" fuel' }

(** Deterministic fault injection for the trace pipeline.

    A seeded injector perturbs a compiled program or its execution in
    one of four ways and hands back everything the harness needs to run
    the damaged pipeline:

    - {e bit-flip}: one instruction of the code array is structurally
      corrupted (a register index, immediate, ALU/condition opcode or
      branch target has a bit flipped; a [Halt] is retargeted into a
      wild jump).  Register indices stay in [0,32) and targets stay
      inside the code segment, so corruption exercises the {e pipeline's}
      fault handling, not the host language's bounds checks.
    - {e mem-corrupt}: at a chosen retirement step, one memory word is
      overwritten through {!Vm.Exec.run}'s [observe] hook.
    - {e trace-cut}: the sink wrapper stops forwarding entries after a
      chosen count, so the analyzer sees a truncated trace while the
      execution runs on.
    - {e fuel-cut}: the instruction budget is slashed, forcing an
      [Out_of_fuel] truncation.

    Everything is derived from the seed by a splitmix64 generator —
    same seed, same perturbation, same report — which is what makes
    fuzz failures replayable with [ilp_limits inject --seed N]. *)

type kind =
  | Bit_flip
  | Mem_corrupt
  | Trace_cut
  | Fuel_cut

val all_kinds : kind list

val kind_name : kind -> string
(** Canonical CLI spelling: "bit-flip", "mem-corrupt", "trace-cut",
    "fuel-cut". *)

val kind_names : string list

val kind_of_string : string -> kind option
(** Accepts the canonical spelling, with ["-"] or ["_"]. *)

(** A planned injection: the (possibly mutated) program plus the VM-run
    parameters that realize the fault. *)
type applied = {
  kind : kind;
  seed : int;
  description : string;
  (** deterministic, human-readable account of the exact perturbation *)
  flat : Asm.Program.flat;
  (** the program to run; a fresh copy when the code was mutated *)
  fuel : int;  (** possibly reduced instruction budget *)
  observe :
    (pc:int -> step:int -> regs:int array -> fregs:float array ->
     mem:int array -> unit)
      option;  (** pass to {!Vm.Exec.run} (mem-corrupt) *)
  wrap_sink : Vm.Trace.sink -> Vm.Trace.sink;
  (** wrap the analysis sink (trace-cut); identity otherwise *)
  cut : Pipeline_error.fault_info option ref;
  (** set by the wrapper when entries were actually dropped *)
}

val plan :
  ?metrics:Obs.Metrics.t ->
  seed:int -> fuel:int -> kind -> Asm.Program.flat -> applied
(** Derive one deterministic perturbation of [flat].  The input program
    is never mutated in place.  [metrics], when given, counts the plan
    under [fault_planned_total{kind=...}]. *)

(** The seeded generator (splitmix64), exposed so drivers can derive
    per-case seeds reproducibly. *)
module Rng : sig
  type t

  val create : int -> t

  val int : t -> int -> int
  (** [int t n] is uniform-ish in [\[0, n)]; [n > 0]. *)

  val derive : seed:int -> index:int -> int
  (** [derive ~seed ~index] is the [index]-th output of the splitmix64
      stream rooted at [seed]: a decorrelated per-task seed that is a
      pure function of [(seed, index)].  Parallel drivers hand task
      [i] the seed [derive ~seed ~index:i], so a fuzz sweep is
      reproducible independent of scheduling order and [--jobs]. *)
end

type t = {
  name : string;
  predict : pc:int -> taken:bool -> bool;
}

let perfect = { name = "perfect"; predict = (fun ~pc:_ ~taken -> taken) }

let always_taken =
  { name = "always-taken"; predict = (fun ~pc:_ ~taken:_ -> true) }

let backward_taken ~is_backward =
  { name = "btfn"; predict = (fun ~pc ~taken:_ -> is_backward pc) }

(* Streaming profile accumulation: per-static-branch direction counts,
   fed one trace entry at a time (e.g. straight from the VM through a
   trace sink), finalized into the paper's majority predictor.  Because
   the predictor is trained and measured on the same trace, its
   accuracy is also available in closed form from the counts alone. *)
module Profile = struct
  type builder = {
    taken_count : int array;
    total_count : int array;
    is_cond : int -> bool;
  }

  let builder ~n_static ~is_cond =
    { taken_count = Array.make n_static 0;
      total_count = Array.make n_static 0;
      is_cond }

  let feed b ~pc ~aux =
    if b.is_cond pc then begin
      b.total_count.(pc) <- b.total_count.(pc) + 1;
      if aux = 1 then b.taken_count.(pc) <- b.taken_count.(pc) + 1
    end

  let sink b = Vm.Trace.sink (feed b)

  let predictor b =
    let predicted_taken =
      Array.init (Array.length b.total_count) (fun pc ->
          2 * b.taken_count.(pc) > b.total_count.(pc))
    in
    { name = "profile";
      predict = (fun ~pc ~taken:_ -> predicted_taken.(pc)) }

  let dyn_branches b = Array.fold_left ( + ) 0 b.total_count

  (* The majority predictor measured on its own profiling trace gets
     every instance of the majority direction right: per branch,
     max(taken, total - taken), with the not-taken tie-break matching
     [predictor]. *)
  let correct b =
    let acc = ref 0 in
    Array.iteri
      (fun pc total ->
        let taken = b.taken_count.(pc) in
        acc := !acc + max taken (total - taken))
      b.total_count;
    !acc
end

let profile ~n_static ~is_cond trace =
  let b = Profile.builder ~n_static ~is_cond in
  Vm.Trace.iter (Profile.feed b) trace;
  Profile.predictor b

let two_bit ~n_static =
  (* 0,1 predict not taken; 2,3 predict taken.  Initialized to 1. *)
  let counters = Array.make n_static 1 in
  let predict ~pc ~taken =
    let prediction = counters.(pc) >= 2 in
    if taken then counters.(pc) <- min 3 (counters.(pc) + 1)
    else counters.(pc) <- max 0 (counters.(pc) - 1);
    prediction
  in
  { name = "2-bit"; predict }

type stats = {
  branches : int;
  correct : int;
  rate : float;
}

let measure p ~is_cond trace =
  let branches = ref 0 and correct = ref 0 in
  let entry ~pc ~aux =
    if is_cond pc then begin
      incr branches;
      let taken = aux = 1 in
      if p.predict ~pc ~taken = taken then incr correct
    end
  in
  Vm.Trace.iter entry trace;
  let rate =
    if !branches = 0 then 100.
    else 100. *. float_of_int !correct /. float_of_int !branches
  in
  { branches = !branches; correct = !correct; rate }

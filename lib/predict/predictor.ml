type t = {
  name : string;
  predict : pc:int -> taken:bool -> bool;
  stateful : bool;
}

let perfect =
  { name = "perfect"; predict = (fun ~pc:_ ~taken -> taken);
    stateful = false }

let always_taken =
  { name = "always-taken"; predict = (fun ~pc:_ ~taken:_ -> true);
    stateful = false }

let backward_taken ~is_backward =
  { name = "btfn"; predict = (fun ~pc ~taken:_ -> is_backward pc);
    stateful = false }

(* Streaming profile accumulation: per-static-branch direction counts,
   fed one trace entry at a time (e.g. straight from the VM through a
   trace sink), finalized into the paper's majority predictor.  Because
   the predictor is trained and measured on the same trace, its
   accuracy is also available in closed form from the counts alone. *)
module Profile = struct
  type builder = {
    taken_count : int array;
    total_count : int array;
    is_cond : int -> bool;
  }

  let builder ~n_static ~is_cond =
    { taken_count = Array.make n_static 0;
      total_count = Array.make n_static 0;
      is_cond }

  let feed b ~pc ~aux =
    if b.is_cond pc then begin
      b.total_count.(pc) <- b.total_count.(pc) + 1;
      if aux = 1 then b.taken_count.(pc) <- b.taken_count.(pc) + 1
    end

  let sink b = Vm.Trace.sink (feed b)

  let predictor b =
    let predicted_taken =
      Array.init (Array.length b.total_count) (fun pc ->
          2 * b.taken_count.(pc) > b.total_count.(pc))
    in
    { name = "profile";
      predict = (fun ~pc ~taken:_ -> predicted_taken.(pc));
      stateful = false }

  let dyn_branches b = Array.fold_left ( + ) 0 b.total_count

  (* The majority predictor measured on its own profiling trace gets
     every instance of the majority direction right: per branch,
     max(taken, total - taken), with the not-taken tie-break matching
     [predictor]. *)
  let correct b =
    let acc = ref 0 in
    Array.iteri
      (fun pc total ->
        let taken = b.taken_count.(pc) in
        acc := !acc + max taken (total - taken))
      b.total_count;
    !acc
end

(* Last-value predictability, the value-prediction analogue of
   [Profile]: per static instruction, does the (first) destination
   register keep its previous value?  Trained through the VM [observe]
   hook — trace entries carry only pc + aux, so computed values are
   visible nowhere else — during the same profiling execution that
   feeds the branch profile.  The analyzer then breaks true data
   dependences on instructions the majority vote marks predictable. *)
module Value = struct
  type builder = {
    def_of : int array;  (* first destination uid per pc, -1 if none *)
    last : int array;  (* last observed value bits per pc *)
    vhits : int array;  (* repeats of the previous value *)
    vtotal : int array;  (* dynamic observations per pc *)
  }

  let builder ~n_static ~defs =
    let def_of =
      Array.init n_static (fun pc ->
          let d = defs.(pc) in
          if Array.length d = 0 then -1 else d.(0))
    in
    { def_of;
      last = Array.make n_static 0;
      vhits = Array.make n_static 0;
      vtotal = Array.make n_static 0 }

  let observe b ~pc ~step:_ ~regs ~fregs ~mem:_ =
    let uid = b.def_of.(pc) in
    if uid >= 0 then begin
      let v =
        if uid < 32 then regs.(uid)
        else Int64.to_int (Int64.bits_of_float fregs.(uid - 32))
      in
      if b.vtotal.(pc) > 0 && b.last.(pc) = v then
        b.vhits.(pc) <- b.vhits.(pc) + 1;
      b.vtotal.(pc) <- b.vtotal.(pc) + 1;
      b.last.(pc) <- v
    end

  (* Majority vote over the total - 1 predictions a last-value
     predictor actually makes (the first instance predicts nothing),
     mirroring [Profile.predictor]'s majority rule. *)
  let table b =
    Array.init (Array.length b.vtotal) (fun pc ->
        let t = b.vtotal.(pc) in
        t > 1 && 2 * b.vhits.(pc) > t - 1)

  let dyn_defs b = Array.fold_left ( + ) 0 b.vtotal

  let repeats b = Array.fold_left ( + ) 0 b.vhits

  let predictable_static b =
    Array.fold_left (fun n p -> if p then n + 1 else n) 0 (table b)
end

let profile ~n_static ~is_cond trace =
  let b = Profile.builder ~n_static ~is_cond in
  Vm.Trace.iter (Profile.feed b) trace;
  Profile.predictor b

let two_bit ~n_static =
  (* 0,1 predict not taken; 2,3 predict taken.  Initialized to 1. *)
  let counters = Array.make n_static 1 in
  let predict ~pc ~taken =
    let prediction = counters.(pc) >= 2 in
    if taken then counters.(pc) <- min 3 (counters.(pc) + 1)
    else counters.(pc) <- max 0 (counters.(pc) - 1);
    prediction
  in
  { name = "2-bit"; predict; stateful = true }

type stats = {
  branches : int;
  correct : int;
  rate : float;
}

let measure p ~is_cond trace =
  let branches = ref 0 and correct = ref 0 in
  let entry ~pc ~aux =
    if is_cond pc then begin
      incr branches;
      let taken = aux = 1 in
      if p.predict ~pc ~taken = taken then incr correct
    end
  in
  Vm.Trace.iter entry trace;
  let rate =
    if !branches = 0 then 100.
    else 100. *. float_of_int !correct /. float_of_int !branches
  in
  { branches = !branches; correct = !correct; rate }

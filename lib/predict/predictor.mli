(** Branch predictors.

    The paper uses static prediction from profile information gathered on
    the same input (§4.4.2), an upper bound for static prediction.  The
    analyzer consults the predictor on every dynamic conditional branch
    through [predict], which returns the predicted direction and may
    update internal state (allowing dynamic predictors as an extension).

    Computed jumps are never predicted; the analyzer treats them as
    always mispredicted, as in the paper. *)

type t = {
  name : string;
  predict : pc:int -> taken:bool -> bool;
  (** [predict ~pc ~taken] is the predicted direction for this dynamic
      instance; [taken] is the actual outcome, provided so that dynamic
      predictors can train themselves after predicting. *)
  stateful : bool;
  (** [true] when [predict] mutates internal state (its answers depend
      on call order, e.g. {!two_bit}).  Stateless predictors are pure
      in [pc]/[taken], so their predictions may be computed out of
      order — the property segmented analysis needs to pre-decode
      trace segments concurrently. *)
}

val perfect : t
(** Always right — the ORACLE machine's predictor. *)

val always_taken : t

val backward_taken : is_backward:(int -> bool) -> t
(** Static BTFN heuristic: backward branches predicted taken, forward
    branches predicted not taken. *)

val profile : n_static:int -> is_cond:(int -> bool) -> Vm.Trace.t -> t
(** Majority direction per static branch, measured on the given trace —
    the paper's predictor.  Branches never seen in the profiling trace
    are predicted not taken. *)

(** Streaming construction of the profile predictor: feed trace entries
    as the VM retires them (no materialized trace needed), then
    finalize.  Since the paper trains and evaluates the predictor on
    the same input, the prediction-accuracy statistics of Table 2 are
    available from the accumulated counts without another trace pass. *)
module Profile : sig
  type builder

  val builder : n_static:int -> is_cond:(int -> bool) -> builder

  val feed : builder -> pc:int -> aux:int -> unit

  val sink : builder -> Vm.Trace.sink
  (** [feed] as a trace sink. *)

  val predictor : builder -> t
  (** The majority predictor for the counts accumulated so far. *)

  val dyn_branches : builder -> int
  (** Dynamic conditional branches fed so far. *)

  val correct : builder -> int
  (** Correct predictions the finalized predictor would score on the
      profiling trace itself. *)
end

(** Last-value predictability trainer, the value-prediction analogue of
    {!Profile} (machines with the [vp] constraint break true data
    dependences on instructions it marks predictable).  Values are not
    visible in trace entries, so training hangs off the VM's [observe]
    hook — post-retirement register files — during the same profiling
    execution that feeds the branch profile. *)
module Value : sig
  type builder

  val builder : n_static:int -> defs:int array array -> builder
  (** [defs.(pc)] lists the destination register uids of static
      instruction [pc] (unified numbering: int [r] is [r], float [f] is
      [32 + f]); the trainer tracks the first destination. *)

  val observe :
    builder ->
    pc:int -> step:int -> regs:int array -> fregs:float array ->
    mem:int array -> unit
  (** Shaped to plug directly into {!Vm.Exec.run}'s [observe]. *)

  val table : builder -> bool array
  (** Per static instruction: would a last-value predictor get the
      majority of its predictions right?  (The first dynamic instance
      predicts nothing; instructions observed at most once are never
      predictable.) *)

  val dyn_defs : builder -> int
  (** Dynamic register-writing instructions observed. *)

  val repeats : builder -> int
  (** Dynamic instances that reproduced their previous value. *)

  val predictable_static : builder -> int
  (** Static instructions {!table} marks predictable. *)
end

val two_bit : n_static:int -> t
(** Classic saturating 2-bit counter per static branch, initialized to
    weakly not-taken.  Stateful: create a fresh one per simulation. *)

type stats = {
  branches : int;
  correct : int;
  rate : float;  (** percent correct *)
}

val measure : t -> is_cond:(int -> bool) -> Vm.Trace.t -> stats
(** Runs the predictor over all conditional branches of a trace. *)

(** Generic worklist dataflow solver over per-procedure CFG views, with
    the concrete bit-vector analyses used by [Loops] and [Verify]:
    reaching definitions, liveness and maybe/definitely-uninitialized
    registers.

    All analyses run on the {e unified} register id space of
    {!Risc.Reg} and treat a call ([Jal]) as an opaque operation that
    obeys the calling convention: it clobbers every caller-saved
    register, produces [rv]/[frv]/[ra], reads its argument registers and
    the stack pointer, and preserves the callee-saved banks. *)

module Bits : sig
  (** Flat bitsets over a fixed-width universe, the lattice elements of
      every analysis here. *)

  type t

  val create : int -> t
  (** [create width] is the empty set over universe [0..width-1]. *)

  val full : int -> t
  val copy : t -> t
  val set : t -> int -> unit
  val unset : t -> int -> unit
  val mem : t -> int -> bool

  val union_into : src:t -> dst:t -> bool
  (** [dst <- dst ∪ src]; returns whether [dst] changed. *)

  val inter_into : src:t -> dst:t -> unit
  val diff_into : src:t -> dst:t -> unit
  (** [dst <- dst \ src]. *)

  val equal : t -> t -> bool
  val iter : (int -> unit) -> t -> unit
  val to_list : t -> int list
end

type direction = Forward | Backward
type meet = Union | Inter

val solve :
  direction:direction ->
  ?meet:meet ->
  n:int ->
  width:int ->
  succs:int array array ->
  preds:int array array ->
  gen:Bits.t array ->
  kill:Bits.t array ->
  boundary:Bits.t array ->
  unit ->
  Bits.t array * Bits.t array
(** Iterate [after b = gen.(b) ∪ (before b \ kill.(b))] to a fixpoint
    with [before b] the meet over flow predecessors' [after], joined with
    [boundary.(b)] (for a node with no flow predecessors, exactly
    [boundary.(b)]).  Returns [(before, after)] in {e flow} orientation:
    block entry/exit facts for [Forward], block exit/entry facts for
    [Backward].  [meet] defaults to [Union] (a "may" analysis); [Inter]
    starts interior nodes from the full set (a "must" analysis). *)

val def_regs : int Risc.Insn.t -> int list
(** Analysis-level definitions: [Insn.defs], except that a call defines
    (clobbers) every caller-saved register. *)

module Reaching : sig
  (** Reaching definitions, per procedure.  Each definition {e site} is
      one (instruction, register) pair; the solver computes which sites
      reach each block entry. *)

  type t

  val compute : View.t -> t

  val at : t -> pc:int -> reg:int -> int list
  (** Instruction indices of the definitions of [reg] that reach the use
      point at [pc] (the state just before [pc] executes), in ascending
      order. *)

  val at_block_entry : t -> l:int -> reg:int -> int list
  (** Definitions of [reg] reaching the entry of local block [l]. *)
end

module Liveness : sig
  (** Backward liveness over the 64-register unified space.  A return is
      treated as using the return values and the callee-saved banks; a
      call as using the argument registers and [sp]. *)

  type t

  val compute : View.t -> t

  val use_regs : int Risc.Insn.t -> int list
  (** Analysis-level uses, including the call/return conventions above. *)

  val live_after : t -> pc:int -> Bits.t
  (** Registers live just after [pc] retires. *)

  val live_out : t -> l:int -> Bits.t
  (** Registers live at the exit of local block [l]. *)
end

module Uninit : sig
  (** Forward may/must "uninitialized" analysis: which registers may
      (resp. must) still hold no program-written value at each point.
      [assumed] lists unified ids treated as initialized at the procedure
      entry (e.g. [sp] and the argument registers); [r0] is always
      initialized. *)

  type t

  val compute : View.t -> assumed:int list -> t

  val iter_block :
    t ->
    l:int ->
    (int -> int Risc.Insn.t -> may:Bits.t -> must:Bits.t -> unit) ->
    unit
  (** Walk local block [l] in program order, presenting the may/must
      uninitialized sets in force just before each instruction. *)
end

type t = {
  graph : Graph.t;
  views : View.t array;
  reaching : Dataflow.Reaching.t array;
  loops : Loops.t;
  rdf : int array array;
}

(* Reverse dominance frontier of one procedure.  The reverse CFG gets a
   virtual exit node (local index [n_local]) as entry; its successors in
   the reverse graph are the procedure's exit blocks.

   A procedure need not have an exit block (an infinite loop), and even
   when it does, regions that never reach it are invisible to the
   postdominator computation.  To give every block a deterministic RDF we
   repeatedly connect the lowest-numbered block not yet reverse-reachable
   from the virtual exit as a pseudo-exit until the whole procedure is
   covered. *)
let proc_rdf (v : View.t) rdf =
  let n_local = View.n v in
  if n_local > 0 then begin
    let exit = n_local in
    let is_exit = Array.make n_local false in
    for l = 0 to n_local - 1 do
      is_exit.(l) <- Array.length v.succs.(l) = 0
    done;
    let covered () =
      (* Reverse reachability from the virtual exit. *)
      let seen = Array.make n_local false in
      let stack = ref [] in
      for l = n_local - 1 downto 0 do
        if is_exit.(l) then stack := l :: !stack
      done;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | l :: rest ->
          stack := rest;
          if not seen.(l) then begin
            seen.(l) <- true;
            Array.iter (fun p -> stack := p :: !stack) v.preds.(l)
          end
      done;
      let missing = ref (-1) in
      for l = n_local - 1 downto 0 do
        if not seen.(l) then missing := l
      done;
      !missing
    in
    let rec close () =
      let missing = covered () in
      if missing >= 0 then begin
        is_exit.(missing) <- true;
        close ()
      end
    in
    close ();
    let exits = ref [] in
    for l = n_local - 1 downto 0 do
      if is_exit.(l) then exits := l :: !exits
    done;
    let cfg_succs l = Array.to_list v.succs.(l) in
    let cfg_preds l = Array.to_list v.preds.(l) in
    (* Reverse graph: edges flipped, virtual exit as entry. *)
    let rev_succs node = if node = exit then !exits else cfg_preds node in
    let rev_preds node =
      if node = exit then []
      else begin
        let ss = cfg_succs node in
        if is_exit.(node) then exit :: ss else ss
      end
    in
    let pdom =
      Dom.compute ~n:(n_local + 1) ~entry:exit ~succs:rev_succs
        ~preds:rev_preds
    in
    let df = Dom.frontier pdom ~n:(n_local + 1) ~preds:rev_preds in
    for l = 0 to n_local - 1 do
      let gids =
        List.filter_map
          (fun d -> if d = exit then None else Some (View.global v d))
          df.(l)
      in
      rdf.(View.global v l) <- Array.of_list gids
    done
  end

let analyze flat =
  let graph = Graph.build flat in
  let n_procs = Array.length graph.proc_blocks in
  let views = Array.init n_procs (View.make graph) in
  let reaching = Array.map Dataflow.Reaching.compute views in
  let loops = Loops.analyze graph ~views ~reaching in
  let rdf = Array.make (Array.length graph.blocks) [||] in
  Array.iter (fun v -> proc_rdf v rdf) views;
  { graph; views; reaching; loops; rdf }

let rdf_of_pc t pc = t.rdf.(t.graph.block_of.(pc))

type t = {
  graph : Graph.t;
  proc : int;
  blocks : int array;
  local_of : (int, int) Hashtbl.t;
  succs : int array array;
  preds : int array array;
  dom : Dom.t;
}

let make (g : Graph.t) proc =
  let blocks = g.proc_blocks.(proc) in
  let n = Array.length blocks in
  let local_of = Hashtbl.create (max 16 (2 * n)) in
  Array.iteri (fun l gid -> Hashtbl.replace local_of gid l) blocks;
  let filter ids =
    Array.of_list (List.filter_map (Hashtbl.find_opt local_of) ids)
  in
  let succs = Array.init n (fun l -> filter g.blocks.(blocks.(l)).succs) in
  let preds = Array.init n (fun l -> filter g.blocks.(blocks.(l)).preds) in
  let dom =
    if n = 0 then { Dom.idom = [||]; rpo = [||] }
    else
      Dom.compute ~n ~entry:0
        ~succs:(fun l -> Array.to_list succs.(l))
        ~preds:(fun l -> Array.to_list preds.(l))
  in
  { graph = g; proc; blocks; local_of; succs; preds; dom }

let n t = Array.length t.blocks
let global t l = t.blocks.(l)
let local t gid = Hashtbl.find_opt t.local_of gid
let mem t gid = Hashtbl.mem t.local_of gid
let block t l = t.graph.blocks.(t.blocks.(l))
let reachable t l = t.dom.rpo.(l) >= 0

let iter_insns t l f =
  let b = block t l in
  for pc = b.start to b.stop - 1 do
    f pc t.graph.flat.code.(pc)
  done

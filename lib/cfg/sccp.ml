type value = Top | Const of int | Bot

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Const a, Const b when a = b -> Const a
  | Bot, _ | _, Bot | Const _, Const _ -> Bot

let pp_value ppf = function
  | Top -> Format.pp_print_string ppf "T"
  | Const c -> Format.fprintf ppf "%d" c
  | Bot -> Format.pp_print_string ppf "_"

type t = {
  view : View.t;
  entry : value array array;  (* local block -> state at entry *)
  exit_ : value array array;  (* local block -> state after terminator *)
  exec : bool array;  (* local block executable *)
  edges : (int * int, unit) Hashtbl.t;  (* (src local, dst local) *)
  decided : (int, bool option) Hashtbl.t;  (* branch term pc -> taken *)
  jtabs : (int, int option) Hashtbl.t;  (* jtab term pc -> index *)
}

let get state r = if r = 0 then Const 0 else state.(r)

let set state r v = if r <> 0 then state.(r) <- v

(* One instruction's effect on the register state.  Mirrors the VM via
   [eval_alu]; anything the lattice does not model degrades to [Bot]. *)
let transfer (insn : int Risc.Insn.t) state =
  let setf f v = state.(Risc.Reg.uid_of_float f) <- v in
  let fold op a b =
    match (a, b) with
    | Const a, Const b -> (
      try Const (Risc.Insn.eval_alu op a b)
      with Division_by_zero -> Bot)
    | Top, _ | _, Top -> Top
    | _ -> Bot
  in
  match insn with
  | Risc.Insn.Alu (op, rd, rs, rt) ->
    set state rd (fold op (get state rs) (get state rt))
  | Alui (op, rd, rs, imm) ->
    set state rd (fold op (get state rs) (Const imm))
  | Li (rd, v) -> set state rd (Const v)
  | Lw (rd, _, _) | F2i (rd, _) | Fcmp (_, rd, _, _) -> set state rd Bot
  | Fli (fd, _) | Flw (fd, _, _) | Falu (_, fd, _, _) | Fmov (fd, _)
  | I2f (fd, _) ->
    setf fd Bot
  | Movn (rd, rs, rg) -> (
    (* rd <- rs when the guard is nonzero, else rd keeps its value; an
       unknown guard merges both outcomes. *)
    match get state rg with
    | Const 0 -> ()
    | Const _ -> set state rd (get state rs)
    | Top | Bot -> set state rd (meet (get state rd) (get state rs)))
  | Jal _ ->
    List.iter
      (fun uid -> if uid <> 0 then state.(uid) <- Bot)
      (Dataflow.def_regs insn)
  | Sw _ | Fsw _ | B _ | Bi _ | J _ | Jr _ | Jtab _ | Halt -> ()

(* Executable out-edges of a block, given the state just before its
   terminator.  Records branch decisions as a side effect; edges are
   global block ids. *)
let out_edges t state (blk : Graph.block) =
  let g = t.view.graph in
  let code = g.flat.code in
  let n_code = Array.length code in
  let term_pc = blk.stop - 1 in
  let fall () =
    if blk.stop < n_code && g.blocks.(g.block_of.(blk.stop)).proc = blk.proc
    then [ g.block_of.(blk.stop) ]
    else []
  in
  if blk.stop <= blk.start then []
  else
    match code.(term_pc) with
    | B (cond, rs, rt, tgt) -> (
      match (get state rs, get state rt) with
      | Const a, Const b ->
        let taken = Risc.Insn.eval_cond cond a b in
        Hashtbl.replace t.decided term_pc (Some taken);
        if taken then [ g.block_of.(tgt) ] else fall ()
      | _ ->
        Hashtbl.replace t.decided term_pc None;
        g.block_of.(tgt) :: fall ())
    | Bi (cond, rs, imm, tgt) -> (
      match get state rs with
      | Const a ->
        let taken = Risc.Insn.eval_cond cond a imm in
        Hashtbl.replace t.decided term_pc (Some taken);
        if taken then [ g.block_of.(tgt) ] else fall ()
      | _ ->
        Hashtbl.replace t.decided term_pc None;
        g.block_of.(tgt) :: fall ())
    | J tgt -> [ g.block_of.(tgt) ]
    | Jtab (rs, table) -> (
      match get state rs with
      | Const i when i >= 0 && i < Array.length table ->
        Hashtbl.replace t.jtabs term_pc (Some i);
        [ g.block_of.(table.(i)) ]
      | Const _ ->
        (* constant out-of-range selector: the VM faults here, so no
           successor ever executes along this edge *)
        Hashtbl.replace t.jtabs term_pc None;
        []
      | Top | Bot ->
        Hashtbl.replace t.jtabs term_pc None;
        Array.to_list table
        |> List.map (fun tgt -> g.block_of.(tgt))
        |> List.sort_uniq compare)
    | Jal _ -> fall ()
    | Jr _ | Halt -> []
    | Alu _ | Alui _ | Li _ | Fli _ | Lw _ | Sw _ | Flw _ | Fsw _ | Falu _
    | Fcmp _ | Movn _ | Fmov _ | I2f _ | F2i _ ->
      fall ()

let initial_state ~entry_zeroed =
  let state = Array.make Risc.Reg.n_unified Bot in
  if entry_zeroed then begin
    (* the VM zeroes the register file before jumping to the entry;
       only sp is runtime-sized *)
    for r = 0 to 31 do
      state.(r) <- Const 0
    done;
    state.(Risc.Reg.sp) <- Bot
  end;
  state.(0) <- Const 0;
  state

let analyze (view : View.t) ~entry_zeroed =
  let n = View.n view in
  let t =
    { view;
      entry = Array.init n (fun _ -> Array.make Risc.Reg.n_unified Top);
      exit_ = Array.init n (fun _ -> Array.make Risc.Reg.n_unified Top);
      exec = Array.make n false;
      edges = Hashtbl.create 64;
      decided = Hashtbl.create 16;
      jtabs = Hashtbl.create 4 }
  in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let enqueue l =
    if not queued.(l) then begin
      queued.(l) <- true;
      Queue.add l queue
    end
  in
  Array.blit (initial_state ~entry_zeroed) 0 t.entry.(0) 0
    Risc.Reg.n_unified;
  t.exec.(0) <- true;
  enqueue 0;
  while not (Queue.is_empty queue) do
    let l = Queue.pop queue in
    queued.(l) <- false;
    let blk = View.block view l in
    let state = Array.copy t.entry.(l) in
    (* run the block body, capturing the state at the terminator for
       the edge decision (the terminator's own defs — a call's clobber
       — apply to the exit state, not to its condition) *)
    let term_pc = blk.stop - 1 in
    let at_term = ref state in
    for pc = blk.start to blk.stop - 1 do
      if pc = term_pc then at_term := Array.copy state;
      transfer view.graph.flat.code.(pc) state
    done;
    Array.blit state 0 t.exit_.(l) 0 Risc.Reg.n_unified;
    let succs = out_edges t !at_term blk in
    List.iter
      (fun gdst ->
        match View.local view gdst with
        | None -> ()
        | Some dst ->
          Hashtbl.replace t.edges (l, dst) ();
          let dentry = t.entry.(dst) in
          let changed = ref false in
          for r = 0 to Risc.Reg.n_unified - 1 do
            let v = meet dentry.(r) state.(r) in
            if v <> dentry.(r) then begin
              dentry.(r) <- v;
              changed := true
            end
          done;
          if not t.exec.(dst) then begin
            t.exec.(dst) <- true;
            enqueue dst
          end
          else if !changed then enqueue dst)
      succs
  done;
  t

let run (a : Analysis.t) =
  let flat = a.graph.flat in
  let entry_proc = flat.proc_of.(flat.entry_pc) in
  (* the zero-init entry state is only valid if nothing calls back into
     the entry procedure *)
  let entry_called =
    Array.exists
      (function
        | Risc.Insn.Jal tgt -> flat.proc_of.(tgt) = entry_proc
        | _ -> false)
      flat.code
  in
  Array.mapi
    (fun p view ->
      analyze view ~entry_zeroed:(p = entry_proc && not entry_called))
    a.views

let executable t l = t.exec.(l)

let edge_executable t ~src ~dst = Hashtbl.mem t.edges (src, dst)

let entry_state t l = t.entry.(l)

let exit_state t l = t.exit_.(l)

let value_at t ~l ~pc ~reg =
  if not t.exec.(l) then Bot
  else begin
    let blk = View.block t.view l in
    if pc < blk.start || pc >= blk.stop then
      invalid_arg "Sccp.value_at: pc outside block";
    let state = Array.copy t.entry.(l) in
    for p = blk.start to pc - 1 do
      transfer t.view.graph.flat.code.(p) state
    done;
    get state reg
  end

let decided_branch t ~pc =
  match Hashtbl.find_opt t.decided pc with
  | Some (Some taken) -> Some taken
  | _ -> None

let decided_jtab t ~pc =
  match Hashtbl.find_opt t.jtabs pc with
  | Some (Some i) -> Some i
  | _ -> None

let n_decided t =
  Hashtbl.fold
    (fun _ v acc -> match v with Some _ -> acc + 1 | None -> acc)
    t.decided 0

(** Pluggable static-diagnostics engine.

    A {!pass} is a named analysis over an {!Analysis.t} that emits
    diagnostics at program points; the engine runs a list of passes
    under a {!config} (per-pass enable and severity overrides, strict
    mode), in the order given, and returns one deterministic
    {!report}: diagnostics sorted by (procedure, pc, pass name), with
    per-pass wall-clock timings.

    Passes share expensive analyses through the {!ctx} they receive:
    SCCP results, uninitialized-read facts and liveness are computed
    lazily, at most once per engine run, however many passes consume
    them.

    Observability: every run wraps each pass in an {!Obs.Span} (into
    the caller's {!Obs.Ctx.t} when one is supplied) and accumulates
    two metric families in the metrics registry —
    [verify_diagnostics_total{class="<pass>"}] counting emitted
    diagnostics and [static_pass_ns{pass="<pass>"}] summing pass
    wall-clock nanoseconds.  Without an explicit context the counters
    land in {!Obs.Metrics.global}, like the pipeline counters. *)

type severity = Error | Warning

type diag = {
  d_proc : int;  (** procedure index; [-1] if the pc is out of range *)
  d_proc_name : string;
  d_pc : int;
  d_block : int;  (** global block id; [-1] if out of range *)
  d_severity : severity;  (** effective severity, after config/strict *)
  d_pass : string;
  d_message : string;
  d_disasm : string;
}

type ctx = {
  analysis : Analysis.t;
  sccp : Sccp.t array Lazy.t;  (** per procedure, {!Sccp.run} *)
  uninit : Dataflow.Uninit.t array Lazy.t;
      (** per procedure, with the calling-convention entry assumptions:
          [sp] is always defined; non-entry procedures additionally
          assume [ra], the argument registers and the float argument
          registers. *)
  liveness : Dataflow.Liveness.t array Lazy.t;
}

val create_ctx : Analysis.t -> ctx

type pass = {
  p_name : string;  (** stable kebab-case class name *)
  p_help : string;
  p_severity : severity;  (** default severity of its diagnostics *)
  p_run : ctx -> emit:(pc:int -> string -> unit) -> unit;
}

type config = {
  disabled : string list;  (** pass names to skip *)
  severities : (string * severity) list;  (** per-pass overrides *)
  strict : bool;  (** promote warnings to errors (after overrides) *)
}

val default_config : config
(** Everything enabled, default severities, not strict. *)

type timing = {
  t_pass : string;
  t_ns : int64;
  t_diags : int;  (** diagnostics emitted by this pass *)
}

type report = {
  diags : diag list;  (** sorted by (procedure, pc, pass name) *)
  n_errors : int;
  n_warnings : int;
  timings : timing list;  (** executed passes, in execution order *)
}

val run :
  ?obs:Obs.Ctx.t ->
  ?config:config ->
  ?workload:string ->
  pass list ->
  Analysis.t ->
  report
(** [run passes a] executes the enabled passes in list order.
    [workload] labels the recorded spans. *)

val max_severity : report -> severity option
(** [None] on a clean report. *)

val pp_diag : Format.formatter -> diag -> unit
(** One line:
    [error: main: pc 3 (block 0) [uninit-read]: message | disasm]. *)

val render_text : Format.formatter -> report -> unit
(** Every diagnostic, one per line, plus a summary line. *)

val render_json : Buffer.t -> report -> unit
(** The report as a JSON object:
    [{"diagnostics":[...],"errors":n,"warnings":n,"passes":[...]}]. *)

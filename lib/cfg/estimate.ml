type bound = Finite of int | Unbounded

(* Saturation guard: trip-count products can explode; anything past
   this is as good as unbounded (and saying "unbounded" is always
   sound for an upper bound). *)
let sat = 1 lsl 42

let b_add a b =
  match (a, b) with
  | Finite a, Finite b when a + b <= sat -> Finite (a + b)
  | _ -> Unbounded

let b_mul a b =
  match (a, b) with
  | Finite 0, _ | _, Finite 0 -> Finite 0
  | Finite a, Finite b when a <= sat / b -> Finite (a * b)
  | _ -> Unbounded

let b_max a b =
  match (a, b) with
  | Finite a, Finite b -> Finite (max a b)
  | _ -> Unbounded

let bound_to_string = function
  | Finite n -> string_of_int n
  | Unbounded -> "unbounded"

let bound_to_float = function
  | Finite n -> float_of_int n
  | Unbounded -> infinity

type block_facts = { bf_counted : int; bf_height : int }

type loop_facts = {
  lf_header : int;
  lf_blocks : int;
  lf_counted : int;
  lf_trip : int option;
  lf_induction : int list;
}

type proc_facts = {
  pf_proc : int;
  pf_name : string;
  pf_counted : int;
  pf_height : int;
  pf_head : bound;
  pf_thru : bound option;
  pf_tail : bound;
  pf_runs : bound;
}

type t = {
  inline : bool;
  unroll : bool;
  analysis : Analysis.t;
  sccp : Sccp.t array;
  classes : Classify.t;
  blocks : block_facts array;
  loops : loop_facts list;
  procs : proc_facts array;
  max_run : bound;
}

(* Counted = survives the analyzer's removal rules (Analyze.removed_mask
   mirrored on the instruction stream). *)
let counted_pc (code : int Risc.Insn.t array) overhead ~inline ~unroll pc =
  let insn = code.(pc) in
  match Risc.Insn.kind insn with
  | Stop -> false
  | Call | Ret -> not inline
  | Plain | Cond_branch | Jump | Computed_jump ->
    (not (inline && Risc.Insn.writes_sp insn))
    && not (unroll && overhead.(pc))

(* Breakers serialize blocking/control-dependent machines: counted
   conditional branches, computed jumps, and returns when not inlined
   (Analyze's is_cbr/is_cjump). *)
let breaker_pc code overhead ~inline ~unroll pc =
  counted_pc code overhead ~inline ~unroll pc
  &&
  match Risc.Insn.kind code.(pc) with
  | Cond_branch | Computed_jump -> true
  | Ret -> not inline
  | Plain | Jump | Call | Stop -> false

(* ------------------------------------------------------------------ *)
(* Tarjan SCC.  Output is in topological order of the condensation
   (sources first). *)

let strongly_connected ~n ~succs =
  let index = Array.make n (-1) and low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] and counter = ref 0 and out = ref [] in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      (succs v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := pop [] :: !out
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  !out

(* ------------------------------------------------------------------ *)
(* Per-procedure run summaries. *)

type summ = { s_head : bound; s_thru : bound option; s_tail : bound;
              s_runs : bound }

let summ_zero =
  { s_head = Finite 0; s_thru = None; s_tail = Finite 0;
    s_runs = Finite 0 }

let summ_unbounded =
  { s_head = Unbounded; s_thru = Some Unbounded; s_tail = Unbounded;
    s_runs = Unbounded }

(* One procedure's run summary, given summaries for its callees.

   The run graph R keeps only executable blocks and edges, drops
   out-edges of breaker blocks (a run ends at its breaker) and of call
   blocks whose callee always breaks.  Any walk in R is a potential
   run; cyclic SCCs are bounded by the trip counts of the natural
   loops whose back edges lie inside the SCC (residual cycles after
   removing those back edges mean the walk length is unbounded). *)
let summarize (a : Analysis.t) ~proc ~(sc : Sccp.t) ~weight ~brk ~call_of
    ~ret_block ~trips ~get_summ =
  let view = a.views.(proc) in
  let n = View.n view in
  let exec l = Sccp.executable sc l in
  let thru_of c = (get_summ c).s_thru in
  let run_out l =
    if (not (exec l)) || brk.(l) then []
    else
      match call_of.(l) with
      | Some c when thru_of c = None -> []
      | _ ->
        Array.to_list view.succs.(l)
        |> List.filter (fun d ->
               exec d && Sccp.edge_executable sc ~src:l ~dst:d)
  in
  let sccs = strongly_connected ~n ~succs:run_out in
  let n_sccs = List.length sccs in
  let scc_of = Array.make n (-1) in
  List.iteri (fun i ns -> List.iter (fun v -> scc_of.(v) <- i) ns) sccs;
  let sccs = Array.of_list sccs in
  (* loops of this procedure, in local ids *)
  let proc_loops =
    List.filter_map
      (fun (loop : Loops.loop) ->
        if a.graph.blocks.(loop.header).proc <> proc then None
        else
          match View.local view loop.header with
          | None -> None
          | Some hl ->
            let body =
              List.filter_map (View.local view) loop.body
            in
            let latches =
              List.filter_map (View.local view) loop.latches
            in
            Some
              (hl, latches, body,
               Hashtbl.find_opt trips loop.header))
      a.loops.loops
  in
  (* per-SCC weight *)
  let w_scc = Array.make n_sccs (Finite 0) in
  let die_extra = Array.make n_sccs (Finite 0) in
  let has_die = Array.make n_sccs false in
  Array.iteri
    (fun i members ->
      let in_scc v = scc_of.(v) = i in
      let cyclic =
        match members with
        | [ v ] -> List.exists (( = ) v) (run_out v)
        | _ -> true
      in
      let block_weight v =
        let base = Finite weight.(v) in
        match call_of.(v) with
        | Some c when List.exists in_scc (run_out v) -> (
          (* the call's fall edge stays in the SCC: the callee's
             through-weight is collected on every traversal *)
          match thru_of c with
          | Some w -> b_add base w
          | None -> base)
        | _ -> base
      in
      (if not cyclic then
         w_scc.(i) <- block_weight (List.hd members)
       else begin
         (* back edges of trip-bounded loops inside this SCC *)
         let s_loops =
           List.filter
             (fun (hl, latches, _, _) ->
               in_scc hl
               && List.exists
                    (fun latch ->
                      in_scc latch
                      && List.exists (( = ) hl) (run_out latch))
                    latches)
             proc_loops
         in
         let removable =
           List.filter (fun (_, _, _, trip) -> trip <> None) s_loops
         in
         let removed u v =
           List.exists
             (fun (hl, latches, _, _) ->
               v = hl && List.mem u latches)
             removable
         in
         (* residual cycle check: colors 0 white / 1 grey / 2 black *)
         let color = Array.make n 0 in
         let cyclic_residual = ref false in
         let rec dfs v =
           color.(v) <- 1;
           List.iter
             (fun w ->
               if in_scc w && not (removed v w) then
                 if color.(w) = 1 then cyclic_residual := true
                 else if color.(w) = 0 then dfs w)
             (run_out v);
           color.(v) <- 2
         in
         List.iter (fun v -> if color.(v) = 0 then dfs v) members;
         if !cyclic_residual then w_scc.(i) <- Unbounded
         else
           w_scc.(i) <-
             List.fold_left
               (fun acc v ->
                 let mult =
                   List.fold_left
                     (fun m (_, _, body, trip) ->
                       if List.mem v body then
                         b_mul m (Finite (Option.get trip))
                       else m)
                     (Finite 1) removable
                 in
                 b_add acc (b_mul mult (block_weight v)))
               (Finite 0) members
       end);
      (* a run can end by entering a callee and breaking inside it *)
      List.iter
        (fun v ->
          match call_of.(v) with
          | Some c ->
            has_die.(i) <- true;
            die_extra.(i) <- b_max die_extra.(i) (get_summ c).s_head
          | None -> ())
        members)
    sccs;
  (* condensation edges, with callee-through weights and tail-resume
     starting prefixes on call edges *)
  let cond_edges = ref [] in
  for v = 0 to n - 1 do
    List.iter
      (fun w ->
        if scc_of.(v) <> scc_of.(w) then begin
          let ew, tail_start =
            match call_of.(v) with
            | Some c -> (
              let ts = (get_summ c).s_tail in
              match thru_of c with
              | Some tw -> (tw, ts)
              | None -> (Finite 0, ts))
            | None -> (Finite 0, Finite 0)
          in
          cond_edges :=
            (scc_of.(v), scc_of.(w), ew, tail_start) :: !cond_edges
        end)
      (run_out v)
  done;
  let cond_edges = !cond_edges in
  let out_edges = Array.make n_sccs [] in
  List.iter
    (fun (s, d, ew, ts) -> out_edges.(s) <- (d, ew, ts) :: out_edges.(s))
    cond_edges;
  (* best run weight ending in each SCC, free start anywhere *)
  let best_end = Array.make n_sccs (Finite 0) in
  let in_acc = Array.make n_sccs (Finite 0) in
  for s = 0 to n_sccs - 1 do
    (* topological order: sources first *)
    best_end.(s) <- b_add w_scc.(s) in_acc.(s);
    List.iter
      (fun (d, ew, ts) ->
        in_acc.(d) <- b_max in_acc.(d) (b_add best_end.(s) ew);
        in_acc.(d) <- b_max in_acc.(d) ts)
      out_edges.(s)
  done;
  (* entry-anchored run weight (head / through) *)
  let entry_scc = scc_of.(0) in
  let from_entry = Array.make n_sccs None in
  from_entry.(entry_scc) <- Some (Finite 0);
  let f_val = Array.make n_sccs None in
  for s = 0 to n_sccs - 1 do
    (match from_entry.(s) with
    | Some acc -> f_val.(s) <- Some (b_add w_scc.(s) acc)
    | None -> ());
    match f_val.(s) with
    | None -> ()
    | Some fv ->
      List.iter
        (fun (d, ew, _) ->
          let cand = b_add fv ew in
          from_entry.(d) <-
            (match from_entry.(d) with
            | None -> Some cand
            | Some old -> Some (b_max old cand)))
        out_edges.(s)
  done;
  (* fold into the summary *)
  let head = ref (Finite 0) and runs = ref (Finite 0) in
  let thru = ref None and tail = ref (Finite 0) in
  for s = 0 to n_sccs - 1 do
    let ends = best_end.(s) in
    runs := b_max !runs ends;
    if has_die.(s) then runs := b_max !runs (b_add ends die_extra.(s));
    match f_val.(s) with
    | None -> ()
    | Some fv ->
      head := b_max !head fv;
      if has_die.(s) then head := b_max !head (b_add fv die_extra.(s))
  done;
  for v = 0 to n - 1 do
    (* returns a caller's run survives: executable, non-breaking *)
    if ret_block.(v) && exec v && not brk.(v) then begin
      let s = scc_of.(v) in
      tail := b_max !tail best_end.(s);
      match f_val.(s) with
      | Some fv ->
        thru :=
          (match !thru with
          | None -> Some fv
          | Some old -> Some (b_max old fv))
      | None -> ()
    end
  done;
  { s_head = !head; s_thru = !thru; s_tail = !tail; s_runs = !runs }

(* ------------------------------------------------------------------ *)

let block_height (g : Graph.t) is_counted b =
  let blk = g.blocks.(b) in
  let h = Array.make Risc.Reg.n_unified 0 in
  let hmax = ref 0 in
  for pc = blk.start to blk.stop - 1 do
    if is_counted pc then begin
      let insn = g.flat.code.(pc) in
      let hh =
        1
        + List.fold_left
            (fun acc u -> max acc h.(u))
            0 (Risc.Insn.uses insn)
      in
      List.iter (fun d -> h.(d) <- hh) (Dataflow.def_regs insn);
      if hh > !hmax then hmax := hh
    end
  done;
  !hmax

let compute ?(inline = true) ?(unroll = true) (a : Analysis.t) =
  let g = a.graph in
  let code = g.flat.code in
  let overhead = a.loops.overhead in
  let sccp = Sccp.run a in
  let classes = Classify.classify a ~sccp in
  let is_counted = counted_pc code overhead ~inline ~unroll in
  let is_breaker = breaker_pc code overhead ~inline ~unroll in
  let n_procs = Array.length a.views in
  (* per-proc, per-local-block: counted weight, breaker, call target,
     ret terminator *)
  let weight = Array.map (fun v -> Array.make (View.n v) 0) a.views in
  let brk = Array.map (fun v -> Array.make (View.n v) false) a.views in
  let call_of = Array.map (fun v -> Array.make (View.n v) None) a.views in
  let ret_block = Array.map (fun v -> Array.make (View.n v) false) a.views in
  Array.iteri
    (fun p view ->
      for l = 0 to View.n view - 1 do
        let blk = View.block view l in
        let w = ref 0 in
        for pc = blk.start to blk.stop - 1 do
          if is_counted pc then incr w
        done;
        weight.(p).(l) <- !w;
        if blk.stop > blk.start then begin
          let term = blk.stop - 1 in
          brk.(p).(l) <- is_breaker term;
          (match code.(term) with
          | Risc.Insn.Jal tgt -> call_of.(p).(l) <- Some g.flat.proc_of.(tgt)
          | _ -> ());
          match Risc.Insn.kind code.(term) with
          | Ret -> ret_block.(p).(l) <- true
          | _ -> ()
        end
      done)
    a.views;
  (* call graph over executable call blocks *)
  let callees = Array.make n_procs [] in
  Array.iteri
    (fun p view ->
      for l = 0 to View.n view - 1 do
        match call_of.(p).(l) with
        | Some c when Sccp.executable sccp.(p) l ->
          if not (List.mem c callees.(p)) then callees.(p) <- c :: callees.(p)
        | _ -> ()
      done)
    a.views;
  let summs = Array.make n_procs summ_zero in
  let summarize_proc p =
    summarize a ~proc:p ~sc:sccp.(p) ~weight:weight.(p) ~brk:brk.(p)
      ~call_of:call_of.(p) ~ret_block:ret_block.(p) ~trips:classes.trips
      ~get_summ:(fun c -> summs.(c))
  in
  (* bottom-up over the call graph; recursive SCCs get a bounded
     fixpoint iteration from the zero summary, degrading to unbounded
     if they fail to stabilize *)
  let proc_sccs =
    strongly_connected ~n:n_procs ~succs:(fun p -> callees.(p))
  in
  List.iter
    (fun members ->
      match members with
      | [ p ] when not (List.mem p callees.(p)) ->
        summs.(p) <- summarize_proc p
      | _ ->
        let size = List.length members in
        let rec iterate k =
          if k > (2 * size) + 2 then
            List.iter (fun p -> summs.(p) <- summ_unbounded) members
          else begin
            let changed = ref false in
            List.iter
              (fun p ->
                let s = summarize_proc p in
                if s <> summs.(p) then begin
                  summs.(p) <- s;
                  changed := true
                end)
              members;
            if !changed then iterate (k + 1)
          end
        in
        iterate 0)
    (List.rev proc_sccs);
  (* procedures actually reachable from the entry along executable
     call edges *)
  let entry_proc = g.flat.proc_of.(g.flat.entry_pc) in
  let reachable = Array.make n_procs false in
  let rec reach p =
    if not reachable.(p) then begin
      reachable.(p) <- true;
      List.iter reach callees.(p)
    end
  in
  reach entry_proc;
  let max_run =
    let m = ref (Finite 0) in
    for p = 0 to n_procs - 1 do
      if reachable.(p) then m := b_max !m summs.(p).s_runs
    done;
    !m
  in
  (* informational facts *)
  let blocks =
    Array.init
      (Array.length g.blocks)
      (fun b ->
        let blk = g.blocks.(b) in
        let c = ref 0 in
        for pc = blk.start to blk.stop - 1 do
          if is_counted pc then incr c
        done;
        { bf_counted = !c; bf_height = block_height g is_counted b })
  in
  let loops =
    List.map
      (fun (loop : Loops.loop) ->
        let c =
          List.fold_left
            (fun acc b -> acc + blocks.(b).bf_counted)
            0 loop.body
        in
        { lf_header = loop.header;
          lf_blocks = List.length loop.body;
          lf_counted = c;
          lf_trip = Hashtbl.find_opt classes.trips loop.header;
          lf_induction = loop.induction })
      a.loops.loops
  in
  let procs =
    Array.init n_procs (fun p ->
        let view = a.views.(p) in
        let counted =
          Array.fold_left
            (fun acc b -> acc + blocks.(b).bf_counted)
            0 view.blocks
        in
        (* blocks on every complete activation: they dominate every
           executable exit (return or halt) *)
        let exits = ref [] in
        for l = 0 to View.n view - 1 do
          if Sccp.executable sccp.(p) l then begin
            let blk = View.block view l in
            if blk.stop > blk.start then
              match Risc.Insn.kind code.(blk.stop - 1) with
              | Ret | Stop -> exits := l :: !exits
              | _ -> ()
          end
        done;
        let mandatory l =
          Sccp.executable sccp.(p) l
          &&
          match !exits with
          | [] -> l = 0
          | es -> List.for_all (fun e -> Dom.dominates view.dom l e) es
        in
        let height = ref 0 in
        for l = 0 to View.n view - 1 do
          if mandatory l then
            height :=
              max !height blocks.(View.global view l).bf_height
        done;
        { pf_proc = p;
          pf_name = g.flat.proc_names.(p);
          pf_counted = counted;
          pf_height = !height;
          pf_head = summs.(p).s_head;
          pf_thru = summs.(p).s_thru;
          pf_tail = summs.(p).s_tail;
          pf_runs = summs.(p).s_runs })
  in
  { inline; unroll; analysis = a; sccp; classes; blocks; loops; procs;
    max_run }

let counted t ~pc =
  counted_pc t.analysis.graph.flat.code t.analysis.loops.overhead
    ~inline:t.inline ~unroll:t.unroll pc

let breaker t ~pc =
  breaker_pc t.analysis.graph.flat.code t.analysis.loops.overhead
    ~inline:t.inline ~unroll:t.unroll pc

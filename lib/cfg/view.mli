(** Per-procedure view of the global CFG.

    Blocks of one procedure are renumbered into a dense {e local} id
    space with the procedure entry as local 0, with local successor and
    predecessor arrays (interprocedural edges filtered out) and the
    dominator tree rooted at the entry.  This is the graph shape every
    per-procedure analysis ([Loops], [Dataflow], the RDF computation,
    [Verify]) works on. *)

type t = {
  graph : Graph.t;
  proc : int;  (** procedure index *)
  blocks : int array;  (** local id -> global block id; entry first *)
  local_of : (int, int) Hashtbl.t;  (** global block id -> local id *)
  succs : int array array;  (** local successors per local id *)
  preds : int array array;
  dom : Dom.t;  (** dominators, entry = local 0 *)
}

val make : Graph.t -> int -> t

val n : t -> int
(** Number of blocks in the procedure. *)

val global : t -> int -> int
(** Global block id of a local id. *)

val local : t -> int -> int option
(** Local id of a global block id, when it belongs to this procedure. *)

val mem : t -> int -> bool
(** Does this global block id belong to the procedure? *)

val block : t -> int -> Graph.block
(** The block record of a local id. *)

val reachable : t -> int -> bool
(** Is the local block reachable from the procedure entry? *)

val iter_insns : t -> int -> (int -> int Risc.Insn.t -> unit) -> unit
(** [iter_insns t l f] applies [f pc insn] to each instruction of local
    block [l] in program order. *)

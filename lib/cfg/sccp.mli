(** Sparse conditional constant propagation over a procedure view.

    The classic optimistic interleaving of constant propagation and
    reachability (Wegman-Zadeck), instantiated directly on the unified
    register file instead of SSA: each local block carries one lattice
    state per unified register id, block entry states are the meet over
    {e executable} in-edges only, and a branch whose condition folds to
    a constant marks a single out-edge executable.  The two analyses
    feed each other — pruning an edge can keep a register constant,
    which can prune further edges.

    Lattice per register: [Top] (no value seen yet — only transient
    during iteration, or on never-executed paths), [Const c], [Bot]
    (more than one value, or statically unknown).  Folding reuses the
    VM's own ALU semantics ({!Risc.Insn.eval_alu} / [eval_cond]), so a
    decided branch is decided exactly as the VM would take it.
    Division by zero during folding degrades to [Bot] (the VM faults;
    the analysis must not).  Floats are not tracked ([Bot]).  Loads are
    [Bot] (no memory lattice).  A call clobbers the caller-saved bank
    ({!Dataflow.def_regs}); [r0] is [Const 0] everywhere.

    Entry assumptions: the program's entry procedure starts from the
    VM's actual initial state — every integer register zero except
    [sp] (runtime-sized) — provided no instruction calls back into the
    entry procedure.  Every other procedure starts all-[Bot]: callers
    may pass anything. *)

type value = Top | Const of int | Bot

val meet : value -> value -> value

val pp_value : Format.formatter -> value -> unit

type t

val analyze : View.t -> entry_zeroed:bool -> t
(** [analyze view ~entry_zeroed] runs the propagation to fixpoint.
    [entry_zeroed] grants the VM zero-init assumption to the entry
    block (use [run] to have it derived safely). *)

val run : Analysis.t -> t array
(** One result per procedure, in procedure order.  The entry procedure
    is granted the zero-init entry state unless some instruction calls
    back into it. *)

val executable : t -> int -> bool
(** Is the local block reachable along executable edges? *)

val edge_executable : t -> src:int -> dst:int -> bool
(** Executability of the local CFG edge [src -> dst].  [false] for
    edges that exist in the view but were pruned (or never reached). *)

val entry_state : t -> int -> value array
(** Register state at block entry (meet over executable in-edges).
    Indexed by unified register id; do not mutate. *)

val exit_state : t -> int -> value array

val value_at : t -> l:int -> pc:int -> reg:int -> value
(** State of [reg] immediately {e before} executing [pc] (which must
    lie in local block [l]).  [Bot] when the block is not executable. *)

val decided_branch : t -> pc:int -> bool option
(** For a conditional-branch terminator at [pc] in an executable
    block: [Some taken] when the condition folds to a constant. *)

val decided_jtab : t -> pc:int -> int option
(** For a computed-jump terminator: the constant, in-range table index
    when the selector folds. *)

val n_decided : t -> int
(** Number of decided conditional branches (diagnostic count). *)

module Bits = struct
  type t = { words : int array; width : int }

  let word_bits = Sys.int_size
  let n_words width = (width + word_bits - 1) / word_bits
  let create width = { words = Array.make (n_words width) 0; width }

  let full width =
    let b = { words = Array.make (n_words width) 0; width } in
    for i = 0 to width - 1 do
      b.words.(i / word_bits) <-
        b.words.(i / word_bits) lor (1 lsl (i mod word_bits))
    done;
    b

  let copy b = { b with words = Array.copy b.words }

  let set b i =
    b.words.(i / word_bits) <-
      b.words.(i / word_bits) lor (1 lsl (i mod word_bits))

  let unset b i =
    b.words.(i / word_bits) <-
      b.words.(i / word_bits) land lnot (1 lsl (i mod word_bits))

  let mem b i = b.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

  let union_into ~src ~dst =
    let changed = ref false in
    for w = 0 to Array.length dst.words - 1 do
      let v = dst.words.(w) lor src.words.(w) in
      if v <> dst.words.(w) then begin
        dst.words.(w) <- v;
        changed := true
      end
    done;
    !changed

  let inter_into ~src ~dst =
    for w = 0 to Array.length dst.words - 1 do
      dst.words.(w) <- dst.words.(w) land src.words.(w)
    done

  let diff_into ~src ~dst =
    for w = 0 to Array.length dst.words - 1 do
      dst.words.(w) <- dst.words.(w) land lnot src.words.(w)
    done

  let equal a b = a.words = b.words

  let iter f b =
    for i = 0 to b.width - 1 do
      if mem b i then f i
    done

  let to_list b =
    let acc = ref [] in
    iter (fun i -> acc := i :: !acc) b;
    List.rev !acc
end

type direction = Forward | Backward
type meet = Union | Inter

(* Worklist iteration to the (least or greatest) fixpoint of a gen/kill
   problem.  Facts are kept in {e flow} orientation: [before.(b)] is the
   input of [b]'s transfer function and [after.(b)] its output — block
   entry/exit for [Forward], block exit/entry for [Backward].

   [before b = meet over flow-predecessors p of after.(p), joined with
   boundary.(b)]; [after b = gen.(b) ∪ (before b \ kill.(b))].  With
   [Union] the fixpoint starts from bottom (empty); with [Inter] from top
   (full), except at nodes with no flow predecessors, whose input is
   exactly their boundary set. *)
let solve ~direction ?(meet = Union) ~n ~width ~(succs : int array array)
    ~(preds : int array array) ~(gen : Bits.t array) ~(kill : Bits.t array)
    ~(boundary : Bits.t array) () =
  let flow_preds, flow_succs =
    match direction with Forward -> (preds, succs) | Backward -> (succs, preds)
  in
  let before =
    Array.init n (fun b ->
        match meet with
        | Union | Inter when Array.length flow_preds.(b) = 0 ->
          Bits.copy boundary.(b)
        | Union -> Bits.copy boundary.(b)
        | Inter -> Bits.full width)
  in
  let after =
    Array.init n (fun b ->
        let a = Bits.copy before.(b) in
        Bits.diff_into ~src:kill.(b) ~dst:a;
        ignore (Bits.union_into ~src:gen.(b) ~dst:a);
        a)
  in
  let in_queue = Array.make n true in
  let queue = Queue.create () in
  (match direction with
  | Forward -> for b = 0 to n - 1 do Queue.add b queue done
  | Backward -> for b = n - 1 downto 0 do Queue.add b queue done);
  while not (Queue.is_empty queue) do
    let b = Queue.pop queue in
    in_queue.(b) <- false;
    let input =
      let ps = flow_preds.(b) in
      if Array.length ps = 0 then Bits.copy boundary.(b)
      else begin
        let acc = Bits.copy after.(ps.(0)) in
        for i = 1 to Array.length ps - 1 do
          match meet with
          | Union -> ignore (Bits.union_into ~src:after.(ps.(i)) ~dst:acc)
          | Inter -> Bits.inter_into ~src:after.(ps.(i)) ~dst:acc
        done;
        ignore (Bits.union_into ~src:boundary.(b) ~dst:acc);
        acc
      end
    in
    before.(b) <- input;
    let output = Bits.copy input in
    Bits.diff_into ~src:kill.(b) ~dst:output;
    ignore (Bits.union_into ~src:gen.(b) ~dst:output);
    if not (Bits.equal output after.(b)) then begin
      after.(b) <- output;
      Array.iter
        (fun s ->
          if not in_queue.(s) then begin
            in_queue.(s) <- true;
            Queue.add s queue
          end)
        flow_succs.(b)
    end
  done;
  (before, after)

(* Analysis-level defs: a call clobbers every caller-saved register, not
   just [ra]. *)
let def_regs (insn : int Risc.Insn.t) =
  match Risc.Insn.kind insn with
  | Call -> Risc.Reg.caller_saved
  | Plain | Cond_branch | Jump | Computed_jump | Ret | Stop ->
    Risc.Insn.defs insn

module Reaching = struct
  type t = {
    view : View.t;
    site_pc : int array;
    site_reg : int array;
    sites_of_reg : int list array;
    in_ : Bits.t array;
  }

  let compute (v : View.t) =
    let nb = View.n v in
    let sites = ref [] and n_sites = ref 0 in
    for l = 0 to nb - 1 do
      View.iter_insns v l (fun pc insn ->
          List.iter
            (fun r ->
              sites := (pc, r) :: !sites;
              incr n_sites)
            (def_regs insn))
    done;
    let n_sites = !n_sites in
    let site_pc = Array.make n_sites 0 and site_reg = Array.make n_sites 0 in
    List.iteri
      (fun i (pc, r) ->
        let s = n_sites - 1 - i in
        site_pc.(s) <- pc;
        site_reg.(s) <- r)
      !sites;
    let sites_of_reg = Array.make Risc.Reg.n_unified [] in
    for s = n_sites - 1 downto 0 do
      sites_of_reg.(site_reg.(s)) <- s :: sites_of_reg.(site_reg.(s))
    done;
    let site_at = Hashtbl.create (max 16 (2 * n_sites)) in
    for s = 0 to n_sites - 1 do
      Hashtbl.replace site_at (site_pc.(s), site_reg.(s)) s
    done;
    let gen = Array.init nb (fun _ -> Bits.create n_sites) in
    let kill = Array.init nb (fun _ -> Bits.create n_sites) in
    let boundary = Array.init nb (fun _ -> Bits.create n_sites) in
    for l = 0 to nb - 1 do
      let last = Hashtbl.create 8 in
      View.iter_insns v l (fun pc insn ->
          List.iter
            (fun r -> Hashtbl.replace last r (Hashtbl.find site_at (pc, r)))
            (def_regs insn));
      Hashtbl.iter
        (fun r s ->
          Bits.set gen.(l) s;
          List.iter (fun s' -> Bits.set kill.(l) s') sites_of_reg.(r))
        last
    done;
    let in_, _out =
      solve ~direction:Forward ~n:nb ~width:n_sites ~succs:v.succs
        ~preds:v.preds ~gen ~kill ~boundary ()
    in
    { view = v; site_pc; site_reg; sites_of_reg; in_ }

  let at_block_entry t ~l ~reg =
    List.filter_map
      (fun s -> if Bits.mem t.in_.(l) s then Some t.site_pc.(s) else None)
      t.sites_of_reg.(reg)

  let at t ~pc ~reg =
    let v = t.view in
    let gid = v.graph.block_of.(pc) in
    match View.local v gid with
    | None -> []
    | Some l ->
      let b = View.block v l in
      let in_block = ref None in
      for q = b.start to pc - 1 do
        if List.mem reg (def_regs v.graph.flat.code.(q)) then
          in_block := Some q
      done;
      (match !in_block with
      | Some d -> [ d ]
      | None -> at_block_entry t ~l ~reg)
end

module Liveness = struct
  type t = {
    view : View.t;
    live_in : Bits.t array;
    live_out : Bits.t array;
  }

  (* Analysis-level uses: a call reads its (statically unknown) arguments
     and the stack pointer; a return hands the callee-saved registers and
     the return values back to the caller; [Halt] reports [rv]. *)
  let use_regs (insn : int Risc.Insn.t) =
    let open Risc in
    match Insn.kind insn with
    | Call ->
      List.concat
        [ List.init Reg.n_arg_regs Reg.arg;
          List.init 4 (fun i -> Reg.uid_of_float (Reg.farg i));
          [ Reg.sp ] ]
    | Ret ->
      Insn.uses insn
      @ (Reg.rv :: Reg.uid_of_float Reg.frv :: Reg.callee_saved)
    | Stop -> [ Reg.rv ]
    | Plain | Cond_branch | Jump | Computed_jump -> Insn.uses insn

  let compute (v : View.t) =
    let nb = View.n v in
    let width = Risc.Reg.n_unified in
    let gen = Array.init nb (fun _ -> Bits.create width) in
    let kill = Array.init nb (fun _ -> Bits.create width) in
    let boundary = Array.init nb (fun _ -> Bits.create width) in
    for l = 0 to nb - 1 do
      let b = View.block v l in
      for pc = b.stop - 1 downto b.start do
        let insn = v.graph.flat.code.(pc) in
        List.iter
          (fun r ->
            Bits.unset gen.(l) r;
            Bits.set kill.(l) r)
          (def_regs insn);
        List.iter
          (fun r ->
            Bits.set gen.(l) r;
            Bits.unset kill.(l) r)
          (use_regs insn)
      done
    done;
    let live_out, live_in =
      solve ~direction:Backward ~n:nb ~width ~succs:v.succs ~preds:v.preds
        ~gen ~kill ~boundary ()
    in
    { view = v; live_in; live_out }

  let live_out t ~l = t.live_out.(l)

  let live_after t ~pc =
    let v = t.view in
    let gid = v.graph.block_of.(pc) in
    match View.local v gid with
    | None -> Bits.create Risc.Reg.n_unified
    | Some l ->
      let b = View.block v l in
      let live = Bits.copy t.live_out.(l) in
      for q = b.stop - 1 downto pc + 1 do
        let insn = v.graph.flat.code.(q) in
        List.iter (fun r -> Bits.unset live r) (def_regs insn);
        List.iter (fun r -> Bits.set live r) (use_regs insn)
      done;
      live
end

module Uninit = struct
  type t = {
    view : View.t;
    may_in : Bits.t array;
    must_in : Bits.t array;
  }

  (* Registers a call leaves in an undefined state: caller-saved minus
     the values it produces ([rv], [frv], [ra]). *)
  let call_poison =
    let open Risc in
    List.filter
      (fun r -> r <> Reg.rv && r <> Reg.uid_of_float Reg.frv && r <> Reg.ra)
      Reg.caller_saved

  let poison_regs (insn : int Risc.Insn.t) =
    match Risc.Insn.kind insn with
    | Call -> call_poison
    | Plain | Cond_branch | Jump | Computed_jump | Ret | Stop -> []

  let init_regs (insn : int Risc.Insn.t) =
    match Risc.Insn.kind insn with
    | Call -> [ Risc.Reg.rv; Risc.Reg.uid_of_float Risc.Reg.frv; Risc.Reg.ra ]
    | Plain | Cond_branch | Jump | Computed_jump | Ret | Stop ->
      Risc.Insn.defs insn

  let compute (v : View.t) ~assumed =
    let nb = View.n v in
    let width = Risc.Reg.n_unified in
    let gen = Array.init nb (fun _ -> Bits.create width) in
    let kill = Array.init nb (fun _ -> Bits.create width) in
    let boundary = Array.init nb (fun _ -> Bits.create width) in
    for l = 0 to nb - 1 do
      View.iter_insns v l (fun _ insn ->
          List.iter
            (fun r ->
              Bits.set gen.(l) r;
              Bits.unset kill.(l) r)
            (poison_regs insn);
          List.iter
            (fun r ->
              Bits.unset gen.(l) r;
              Bits.set kill.(l) r)
            (init_regs insn))
    done;
    if nb > 0 then begin
      let entry = boundary.(0) in
      for r = 0 to width - 1 do
        Bits.set entry r
      done;
      Bits.unset entry Risc.Reg.zero;
      List.iter (Bits.unset entry) assumed
    end;
    let may_in, _ =
      solve ~direction:Forward ~meet:Union ~n:nb ~width ~succs:v.succs
        ~preds:v.preds ~gen ~kill ~boundary ()
    in
    let must_in, _ =
      solve ~direction:Forward ~meet:Inter ~n:nb ~width ~succs:v.succs
        ~preds:v.preds ~gen ~kill ~boundary ()
    in
    { view = v; may_in; must_in }

  let iter_block t ~l f =
    let may = Bits.copy t.may_in.(l) and must = Bits.copy t.must_in.(l) in
    View.iter_insns t.view l (fun pc insn ->
        f pc insn ~may ~must;
        List.iter
          (fun r ->
            Bits.set may r;
            Bits.set must r)
          (poison_regs insn);
        List.iter
          (fun r ->
            Bits.unset may r;
            Bits.unset must r)
          (init_regs insn))
end

type loop = {
  header : int;
  body : int list;
  latches : int list;
  induction : int list;
}

type t = {
  loops : loop list;
  overhead : bool array;
}

module Int_set = Set.Make (Int)

(* Natural loop of back edge [latch -> header]: header, latch, and every
   node that reaches the latch without passing through the header. *)
let natural_loop (g : Graph.t) ~header ~latch =
  let body = ref (Int_set.singleton header) in
  let stack = ref [ latch ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | node :: rest ->
      stack := rest;
      if not (Int_set.mem node !body) then begin
        body := Int_set.add node !body;
        List.iter (fun p -> stack := p :: !stack) g.blocks.(node).preds
      end
  done;
  !body

let analyze (g : Graph.t) ~(views : View.t array)
    ~(reaching : Dataflow.Reaching.t array) =
  let n_insns = Array.length g.flat.code in
  let overhead = Array.make n_insns false in
  let all_loops = ref [] in
  let analyze_proc proc =
    let v = views.(proc) in
    let rd = reaching.(proc) in
    let n_local = View.n v in
    if n_local > 0 then begin
      (* Back edges: latch -> header with header dominating latch. *)
      let headers = Hashtbl.create 8 in
      for l = 0 to n_local - 1 do
        Array.iter
          (fun s ->
            if Dom.dominates v.dom s l then begin
              let latches =
                match Hashtbl.find_opt headers s with
                | Some ls -> ls
                | None -> []
              in
              Hashtbl.replace headers s (l :: latches)
            end)
          v.succs.(l)
      done;
      let handle_loop header latches =
        let body =
          List.fold_left
            (fun acc latch ->
              Int_set.union acc
                (natural_loop g ~header:(View.global v header)
                   ~latch:(View.global v latch)))
            Int_set.empty latches
        in
        let in_loop_pc pc = Int_set.mem g.block_of.(pc) body in
        let iter_insns f =
          Int_set.iter
            (fun gid ->
              let b = g.blocks.(gid) in
              for pc = b.start to b.stop - 1 do
                f pc g.flat.code.(pc)
              done)
            body
        in
        (* A register use is loop-invariant when no definition inside the
           loop reaches it. *)
        let invariant_at ~pc r =
          r = Risc.Reg.zero
          || not
               (List.exists in_loop_pc (Dataflow.Reaching.at rd ~pc ~reg:r))
        in
        let dominates_latches gid =
          match View.local v gid with
          | None -> false
          | Some l -> List.for_all (Dom.dominates v.dom l) latches
        in
        (* Induction variables: [r <- r +/- const] in a block executing
           every iteration, where the update is the only in-loop
           definition of [r] that reaches its own operand and the only
           one that reaches the loop header — i.e. the value carried
           around the back edge comes solely from this constant step. *)
        let induction = ref [] in
        let update_pcs = ref [] in
        iter_insns (fun pc insn ->
            match (insn : int Risc.Insn.t) with
            | Alui ((Add | Sub), rd_, rs, _)
              when rd_ = rs && rd_ <> Risc.Reg.zero
                   && dominates_latches g.block_of.(pc) ->
              let only_self pcs =
                List.for_all (fun d -> d = pc) (List.filter in_loop_pc pcs)
              in
              if
                only_self (Dataflow.Reaching.at rd ~pc ~reg:rd_)
                && only_self
                     (Dataflow.Reaching.at_block_entry rd ~l:header ~reg:rd_)
              then begin
                if not (List.mem rd_ !induction) then
                  induction := rd_ :: !induction;
                update_pcs := pc :: !update_pcs
              end
            | _ -> ());
        let induction = !induction in
        let is_ind r = List.mem r induction in
        (* Comparisons of an induction register against loop-invariant
           operands, and the branches they feed.  A branch is overhead
           when every definition reaching its condition register is such
           a marked comparison. *)
        let marked_cmp = Hashtbl.create 8 in
        iter_insns (fun pc insn ->
            match (insn : int Risc.Insn.t) with
            | Alu ((Slt | Sle | Seq | Sne), _, rs, rt)
              when (is_ind rs && invariant_at ~pc rt)
                   || (is_ind rt && invariant_at ~pc rs) ->
              overhead.(pc) <- true;
              Hashtbl.replace marked_cmp pc ()
            | Alui ((Slt | Sle | Seq | Sne), _, rs, _) when is_ind rs ->
              overhead.(pc) <- true;
              Hashtbl.replace marked_cmp pc ()
            | _ -> ());
        let fed_by_marked_cmps ~pc r =
          match Dataflow.Reaching.at rd ~pc ~reg:r with
          | [] -> false
          | ds -> List.for_all (Hashtbl.mem marked_cmp) ds
        in
        iter_insns (fun pc insn ->
            match (insn : int Risc.Insn.t) with
            | B (_, rs, rt, _)
              when (is_ind rs && invariant_at ~pc rt)
                   || (is_ind rt && invariant_at ~pc rs) ->
              overhead.(pc) <- true
            | B (_, rs, rt, _)
              when rt = Risc.Reg.zero && fed_by_marked_cmps ~pc rs ->
              overhead.(pc) <- true
            | B (_, rs, rt, _)
              when rs = Risc.Reg.zero && fed_by_marked_cmps ~pc rt ->
              overhead.(pc) <- true
            | Bi (_, rs, _, _) when is_ind rs -> overhead.(pc) <- true
            | Bi (_, rs, _, _) when fed_by_marked_cmps ~pc rs ->
              overhead.(pc) <- true
            | _ -> ());
        List.iter (fun pc -> overhead.(pc) <- true) !update_pcs;
        all_loops :=
          { header = View.global v header;
            body = Int_set.elements body;
            latches = List.map (View.global v) latches;
            induction }
          :: !all_loops
      in
      Hashtbl.iter handle_loop headers
    end
  in
  for proc = 0 to Array.length g.proc_blocks - 1 do
    analyze_proc proc
  done;
  { loops = !all_loops; overhead }

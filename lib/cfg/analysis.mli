(** Complete static analysis of a resolved program.

    Combines basic blocks, postdominators, reverse dominance frontiers
    (immediate control dependences, computed per procedure exactly as in
    the paper's §4.4.1), and the loop-overhead marking of §4.2. *)

type t = {
  graph : Graph.t;
  views : View.t array;  (** per-procedure CFG views *)
  reaching : Dataflow.Reaching.t array;  (** reaching defs, per procedure *)
  loops : Loops.t;
  rdf : int array array;
  (** per global block: global ids of the branch blocks it is
      immediately control dependent on.  Blocks that cannot reach a
      procedure exit (infinite loops) are handled by connecting
      deterministic pseudo-exits, so every block has a defined RDF. *)
}

val analyze : Asm.Program.flat -> t

val rdf_of_pc : t -> int -> int array
(** Immediate control-dependence branch blocks of the block containing an
    instruction. *)

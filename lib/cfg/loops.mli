(** Natural loops and loop-overhead discovery for simulated perfect
    unrolling.

    Following the paper (§4.2), for each natural loop we find registers
    that are stepped by a constant once per iteration (loop index and
    induction variables), then mark

    - the increment instructions themselves,
    - comparisons of an induction register against loop-invariant values,
    - conditional branches consuming such comparisons (directly, or
      because every definition reaching the branch condition is such a
      comparison).

    Induction and invariance are decided with reaching definitions
    ({!Dataflow.Reaching}): a register is induction when its constant
    step, placed in a block executing every iteration, is the only
    in-loop definition reaching both its own operand and the loop
    header; an operand is invariant at a use when no in-loop definition
    reaches that use.

    The trace analyzer deletes marked instructions from the timed trace,
    which removes both the iteration-carried data dependence and the loop
    branch's control dependence — the effect of perfect unrolling. *)

type loop = {
  header : int;  (** global block id *)
  body : int list;  (** global block ids, including the header *)
  latches : int list;  (** back-edge sources *)
  induction : int list;  (** unified register ids of induction variables *)
}

type t = {
  loops : loop list;
  overhead : bool array;  (** per instruction: part of loop overhead *)
}

val analyze :
  Graph.t -> views:View.t array -> reaching:Dataflow.Reaching.t array -> t
(** [analyze g ~views ~reaching] expects one view and one
    reaching-definitions result per procedure, as built by
    {!Analysis.analyze}. *)

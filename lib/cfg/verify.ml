type severity = Engine.severity = Error | Warning

type kind =
  | Bad_branch_target
  | Bad_jtab_target
  | Bad_call_target
  | Fallthrough_off_end
  | Ret_discipline
  | Sp_discipline
  | Sp_imbalance
  | Uninit_read
  | Maybe_uninit_read
  | Unreachable_block
  | Sccp_unreachable
  | Dead_store

let kind_name = function
  | Bad_branch_target -> "bad-branch-target"
  | Bad_jtab_target -> "bad-jtab-target"
  | Bad_call_target -> "bad-call-target"
  | Fallthrough_off_end -> "fallthrough-off-end"
  | Ret_discipline -> "ret-discipline"
  | Sp_discipline -> "sp-discipline"
  | Sp_imbalance -> "sp-imbalance"
  | Uninit_read -> "uninit-read"
  | Maybe_uninit_read -> "maybe-uninit-read"
  | Unreachable_block -> "unreachable-block"
  | Sccp_unreachable -> "sccp-unreachable"
  | Dead_store -> "dead-store"

let all_kinds =
  [ Bad_branch_target; Bad_jtab_target; Bad_call_target;
    Fallthrough_off_end; Ret_discipline; Sp_discipline; Sp_imbalance;
    Uninit_read; Maybe_uninit_read; Unreachable_block; Sccp_unreachable;
    Dead_store ]

let kind_of_name n =
  List.find_opt (fun k -> kind_name k = n) all_kinds

type diag = {
  pc : int;
  block : int;
  severity : severity;
  kind : kind;
  message : string;
  disasm : string;
}

type report = {
  diags : diag list;
  n_errors : int;
  n_warnings : int;
}

let severity_of = function
  | Bad_branch_target | Bad_jtab_target | Bad_call_target
  | Fallthrough_off_end | Ret_discipline | Sp_discipline | Sp_imbalance
  | Uninit_read ->
    Error
  | Maybe_uninit_read | Unreachable_block | Sccp_unreachable | Dead_store ->
    Warning

let pp_diag ppf d =
  Format.fprintf ppf "%s: pc %d (block %d) [%s]: %s | %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.pc d.block (kind_name d.kind) d.message d.disasm

let pp_uid = Risc.Reg.pp_uid

(* Reads of a register that are part of the register-save protocol: a
   store of [r] to a stack slot may legitimately save a dead or
   never-written callee-saved register in the prologue (and a dead
   caller-saved one around a call), so it is exempt from the
   uninitialized-read checks. *)
let save_protocol_read (insn : int Risc.Insn.t) r =
  match insn with
  | Sw (rsrc, base, _) -> base = Risc.Reg.sp && r = rsrc
  | Fsw (fsrc, base, _) ->
    base = Risc.Reg.sp && r = Risc.Reg.uid_of_float fsrc
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The passes.  Each diagnostic class is one registered {!Engine.pass};
   expensive shared analyses come memoized from the engine context. *)

let each_proc (ctx : Engine.ctx) f =
  let a = ctx.Engine.analysis in
  let flat = a.graph.flat in
  Array.iteri
    (fun proc (start, stop) -> f a flat proc a.views.(proc) start stop)
    flat.proc_bounds

let pass name kind help run =
  { Engine.p_name = name;
    p_help = help;
    p_severity = severity_of kind;
    p_run = run }

let branch_target_pass =
  pass "bad-branch-target" Bad_branch_target
    "branch or jump targets must stay inside their procedure"
    (fun ctx ~emit ->
      each_proc ctx
        (fun (a : Analysis.t) flat proc _v start stop ->
          ignore a;
          for pc = start to stop - 1 do
            match (flat.code.(pc) : int Risc.Insn.t) with
            | B (_, _, _, t) | Bi (_, _, _, t) | J t ->
              if not (t >= start && t < stop) then
                emit ~pc
                  (Printf.sprintf "target %d outside procedure %s [%d,%d)" t
                     flat.proc_names.(proc) start stop)
            | _ -> ()
          done))

let jtab_target_pass =
  pass "bad-jtab-target" Bad_jtab_target
    "jump-table entries must stay inside their procedure"
    (fun ctx ~emit ->
      each_proc ctx
        (fun _a flat proc _v start stop ->
          for pc = start to stop - 1 do
            match (flat.code.(pc) : int Risc.Insn.t) with
            | Jtab (_, table) ->
              Array.iteri
                (fun i t ->
                  if not (t >= start && t < stop) then
                    emit ~pc
                      (Printf.sprintf
                         "table entry %d: target %d outside procedure %s \
                          [%d,%d)"
                         i t flat.proc_names.(proc) start stop))
                table
            | _ -> ()
          done))

let call_target_pass =
  pass "bad-call-target" Bad_call_target
    "calls must target a procedure entry"
    (fun ctx ~emit ->
      let flat = ctx.Engine.analysis.graph.flat in
      let proc_starts = Hashtbl.create 16 in
      Array.iteri
        (fun p (start, _) -> Hashtbl.replace proc_starts start p)
        flat.proc_bounds;
      Array.iteri
        (fun pc insn ->
          match (insn : int Risc.Insn.t) with
          | Jal t ->
            if not (Hashtbl.mem proc_starts t) then
              emit ~pc
                (Printf.sprintf "call target %d is not a procedure entry" t)
          | _ -> ())
        flat.code)

let ret_discipline_pass =
  pass "ret-discipline" Ret_discipline "returns must go through ra"
    (fun ctx ~emit ->
      Array.iteri
        (fun pc insn ->
          match (insn : int Risc.Insn.t) with
          | Jr r when r <> Risc.Reg.ra ->
            emit ~pc
              (Format.asprintf "return through %a instead of %a" pp_uid r
                 pp_uid Risc.Reg.ra)
          | _ -> ())
        ctx.Engine.analysis.graph.flat.code)

(* The shape sp-imbalance can track: every sp write is a constant
   adjustment.  sp-discipline reports the violations; sp-imbalance
   skips procedures that have any. *)
let sp_clean code start stop =
  let clean = ref true in
  for pc = start to stop - 1 do
    if Risc.Insn.writes_sp code.(pc) then
      match (code.(pc) : int Risc.Insn.t) with
      | Alui ((Add | Sub), rd, rs, _)
        when rd = Risc.Reg.sp && rs = Risc.Reg.sp ->
        ()
      | _ -> clean := false
  done;
  !clean

let sp_discipline_pass =
  pass "sp-discipline" Sp_discipline
    "the stack pointer moves only by constant adjustments"
    (fun ctx ~emit ->
      Array.iteri
        (fun pc insn ->
          if Risc.Insn.writes_sp insn then
            match (insn : int Risc.Insn.t) with
            | Alui ((Add | Sub), rd, rs, _)
              when rd = Risc.Reg.sp && rs = Risc.Reg.sp ->
              ()
            | _ ->
              emit ~pc
                "stack pointer written by something other than a constant \
                 adjustment")
        ctx.Engine.analysis.graph.flat.code)

let fallthrough_pass =
  pass "fallthrough-off-end" Fallthrough_off_end
    "procedures must not fall through their last instruction"
    (fun ctx ~emit ->
      each_proc ctx
        (fun _a flat proc _v start stop ->
          if stop > start then
            let pc = stop - 1 in
            match Risc.Insn.kind flat.code.(pc) with
            | Plain | Cond_branch | Call ->
              emit ~pc
                (Printf.sprintf
                   "procedure %s can fall through its last instruction"
                   flat.proc_names.(proc))
            | Jump | Computed_jump | Ret | Stop -> ()))

let sp_imbalance_pass =
  pass "sp-imbalance" Sp_imbalance
    "constant frame offsets agree at joins and return to zero at exits"
    (fun ctx ~emit ->
      each_proc ctx
        (fun (a : Analysis.t) flat _proc v start stop ->
          let code = flat.code in
          if sp_clean code start stop && View.n v > 0 then begin
            let n_local = View.n v in
            let delta = Array.make n_local 0 in
            for l = 0 to n_local - 1 do
              View.iter_insns v l (fun _ insn ->
                  match (insn : int Risc.Insn.t) with
                  | Alui (Add, rd, rs, c)
                    when rd = Risc.Reg.sp && rs = Risc.Reg.sp ->
                    delta.(l) <- delta.(l) + c
                  | Alui (Sub, rd, rs, c)
                    when rd = Risc.Reg.sp && rs = Risc.Reg.sp ->
                    delta.(l) <- delta.(l) - c
                  | _ -> ())
            done;
            let offset = Array.make n_local min_int in
            let reported = Array.make n_local false in
            offset.(0) <- 0;
            let stack = ref [ 0 ] in
            while !stack <> [] do
              match !stack with
              | [] -> ()
              | l :: rest ->
                stack := rest;
                let out = offset.(l) + delta.(l) in
                let b = View.block v l in
                (match Graph.terminator a.graph (View.global v l) with
                | Some insn when Risc.Insn.kind insn = Ret && out <> 0 ->
                  emit ~pc:(b.stop - 1)
                    (Printf.sprintf "returns with stack offset %d" out)
                | _ -> ());
                Array.iter
                  (fun s ->
                    if offset.(s) = min_int then begin
                      offset.(s) <- out;
                      stack := s :: !stack
                    end
                    else if offset.(s) <> out && not reported.(s) then begin
                      reported.(s) <- true;
                      emit ~pc:(View.block v s).start
                        (Printf.sprintf
                           "stack offset %d from one path, %d from another"
                           offset.(s) out)
                    end)
                  v.succs.(l)
            done
          end))

let unreachable_pass =
  pass "unreachable-block" Unreachable_block
    "blocks unreachable from the procedure entry"
    (fun ctx ~emit ->
      each_proc ctx
        (fun _a flat proc v _start _stop ->
          for l = 0 to View.n v - 1 do
            if not (View.reachable v l) then
              emit ~pc:(View.block v l).start
                (Printf.sprintf "block %d is unreachable from the %s entry"
                   (View.global v l) flat.proc_names.(proc))
          done))

let sccp_unreachable_pass =
  pass "sccp-unreachable" Sccp_unreachable
    "blocks CFG-reachable but pruned by conditional constant propagation"
    (fun ctx ~emit ->
      let sccp = Lazy.force ctx.Engine.sccp in
      each_proc ctx
        (fun _a flat proc v _start _stop ->
          for l = 0 to View.n v - 1 do
            if View.reachable v l && not (Sccp.executable sccp.(proc) l)
            then
              emit ~pc:(View.block v l).start
                (Printf.sprintf
                   "block %d of %s is CFG-reachable but constant conditions \
                    prune every path to it"
                   (View.global v l) flat.proc_names.(proc))
          done))

(* The uninitialized-read facts are shared by the must (error) and may
   (warning) passes through the memoized context. *)
let iter_uninit_reads ctx proc v ~f =
  let uninit = (Lazy.force ctx.Engine.uninit).(proc) in
  for l = 0 to View.n v - 1 do
    if View.reachable v l then
      Dataflow.Uninit.iter_block uninit ~l (fun pc insn ~may ~must ->
          List.iter
            (fun r ->
              if not (save_protocol_read insn r) then f pc r ~may ~must)
            (Risc.Insn.uses insn))
  done

let uninit_pass =
  pass "uninit-read" Uninit_read
    "registers read but never written on any path"
    (fun ctx ~emit ->
      each_proc ctx
        (fun _a _flat proc v _start _stop ->
          iter_uninit_reads ctx proc v ~f:(fun pc r ~may:_ ~must ->
              if Dataflow.Bits.mem must r then
                emit ~pc
                  (Format.asprintf
                     "%a is read but never written on any path here" pp_uid r))))

let maybe_uninit_pass =
  pass "maybe-uninit-read" Maybe_uninit_read
    "registers uninitialized on some path"
    (fun ctx ~emit ->
      each_proc ctx
        (fun _a _flat proc v _start _stop ->
          iter_uninit_reads ctx proc v ~f:(fun pc r ~may ~must ->
              if Dataflow.Bits.mem may r && not (Dataflow.Bits.mem must r)
              then
                emit ~pc
                  (Format.asprintf "%a may be uninitialized here" pp_uid r))))

let dead_store_pass =
  pass "dead-store" Dead_store "registers written but never read"
    (fun ctx ~emit ->
      each_proc ctx
        (fun _a flat proc v _start _stop ->
          let code = flat.code in
          let live = (Lazy.force ctx.Engine.liveness).(proc) in
          for l = 0 to View.n v - 1 do
            if View.reachable v l then begin
              let b = View.block v l in
              let cur =
                Dataflow.Bits.copy (Dataflow.Liveness.live_out live ~l)
              in
              for pc = b.stop - 1 downto b.start do
                let insn = code.(pc) in
                (match Risc.Insn.kind insn with
                | Plain ->
                  List.iter
                    (fun r ->
                      if not (Dataflow.Bits.mem cur r) then
                        emit ~pc
                          (Format.asprintf "%a is written but never read"
                             pp_uid r))
                    (Risc.Insn.defs insn)
                | _ -> ());
                List.iter (Dataflow.Bits.unset cur) (Dataflow.def_regs insn);
                List.iter (Dataflow.Bits.set cur)
                  (Dataflow.Liveness.use_regs insn)
              done
            end
          done))

let passes =
  [ branch_target_pass; jtab_target_pass; call_target_pass;
    fallthrough_pass; ret_discipline_pass; sp_discipline_pass;
    sp_imbalance_pass; uninit_pass; maybe_uninit_pass; unreachable_pass;
    sccp_unreachable_pass; dead_store_pass ]

(* Compatibility shim: an engine report over these passes, re-sorted
   into the original (pc, kind) order and retyped. *)
let of_engine (er : Engine.report) =
  let diags =
    List.map
      (fun (d : Engine.diag) ->
        let kind =
          match kind_of_name d.d_pass with
          | Some k -> k
          | None -> invalid_arg ("Verify.check: unknown pass " ^ d.d_pass)
        in
        { pc = d.d_pc;
          block = d.d_block;
          severity = d.d_severity;
          kind;
          message = d.d_message;
          disasm = d.d_disasm })
      er.Engine.diags
  in
  let diags =
    List.stable_sort
      (fun a b -> compare (a.pc, a.kind) (b.pc, b.kind))
      diags
  in
  { diags;
    n_errors = er.Engine.n_errors;
    n_warnings = er.Engine.n_warnings }

let check (a : Analysis.t) = of_engine (Engine.run passes a)

let errors r = List.filter (fun d -> d.severity = Error) r.diags
let warnings r = List.filter (fun d -> d.severity = Warning) r.diags

(* ------------------------------------------------------------------ *)
(* Dynamic cross-validation: replay a trace against the static facts.  *)

module Dynamic = struct
  type violation = { index : int; pc : int; message : string }

  type loop_state = {
    body : bool array;  (* per global block *)
    updates : (int, int * int) Hashtbl.t;  (* update pc -> reg, step *)
    watches : (int, int list) Hashtbl.t;  (* overhead pc -> invariant regs *)
    last_update : (int, int) Hashtbl.t;  (* update pc -> last value *)
    inv_value : (int * int, int) Hashtbl.t;  (* (pc, reg) -> pinned value *)
    mutable inside : bool;
  }

  type t = {
    a : Analysis.t;
    code : int Risc.Insn.t array;
    n_code : int;
    reachable_pc : bool array;
    init : bool array;
    loops : loop_state array;
    reported : (int * string, unit) Hashtbl.t;
    mutable prev : (int * int) option;
    mutable n_entries : int;
    mutable n_violations : int;
    mutable violations_rev : violation list;
    mutable closed : bool;
  }

  let max_kept = 50

  let create (a : Analysis.t) =
    let g = a.graph in
    let code = g.flat.code in
    let n_code = Array.length code in
    let reachable_pc = Array.make n_code false in
    Array.iter
      (fun (v : View.t) ->
        for l = 0 to View.n v - 1 do
          if View.reachable v l then begin
            let b = View.block v l in
            for pc = b.start to b.stop - 1 do
              reachable_pc.(pc) <- true
            done
          end
        done)
      a.views;
    let init = Array.make Risc.Reg.n_unified false in
    init.(Risc.Reg.zero) <- true;
    init.(Risc.Reg.sp) <- true;
    let n_blocks = Array.length g.blocks in
    let mk_loop (lp : Loops.loop) =
      let body = Array.make n_blocks false in
      List.iter (fun b -> body.(b) <- true) lp.body;
      let updates = Hashtbl.create 4 and watches = Hashtbl.create 4 in
      let is_ind r = List.mem r lp.induction in
      let in_loop_pc pc = body.(g.block_of.(pc)) in
      (* Registers with any definition inside the loop body.  An
         invariance watch is only sound for registers the loop never
         writes: a pc can be marked overhead by a *different* (nested)
         loop whose induction variable is a free operand here, and that
         register is not invariant with respect to this loop. *)
      let defined_in_body = Array.make Risc.Reg.n_unified false in
      List.iter
        (fun gid ->
          let b = g.blocks.(gid) in
          for pc = b.start to b.stop - 1 do
            List.iter
              (fun r -> defined_in_body.(r) <- true)
              (Dataflow.def_regs code.(pc))
          done)
        lp.body;
      List.iter
        (fun gid ->
          let b = g.blocks.(gid) in
          for pc = b.start to b.stop - 1 do
            if a.loops.overhead.(pc) then begin
              match (code.(pc) : int Risc.Insn.t) with
              | Alui ((Add | Sub) as op, rd, rs, imm)
                when rd = rs && is_ind rd && in_loop_pc pc ->
                let step = match op with Add -> imm | _ -> -imm in
                Hashtbl.replace updates pc (rd, step)
              | Alu ((Slt | Sle | Seq | Sne), _, rs, rt)
              | B (_, rs, rt, _) ->
                let watch r other =
                  if
                    is_ind other && (not (is_ind r)) && r <> Risc.Reg.zero
                    && r < 32
                    && not defined_in_body.(r)
                  then
                    Hashtbl.replace watches pc
                      (r
                      :: (match Hashtbl.find_opt watches pc with
                         | Some rs -> rs
                         | None -> []))
                in
                watch rs rt;
                watch rt rs
              | _ -> ()
            end
          done)
        lp.body;
      { body; updates; watches; last_update = Hashtbl.create 4;
        inv_value = Hashtbl.create 4; inside = false }
    in
    { a;
      code;
      n_code;
      reachable_pc;
      init;
      loops = Array.of_list (List.map mk_loop a.loops.Loops.loops);
      reported = Hashtbl.create 16;
      prev = None;
      n_entries = 0;
      n_violations = 0;
      violations_rev = [];
      closed = false }

  let violate t ~pc fmt =
    Format.kasprintf
      (fun message ->
        t.n_violations <- t.n_violations + 1;
        if t.n_violations <= max_kept then
          t.violations_rev <-
            { index = t.n_entries; pc; message } :: t.violations_rev)
      fmt

  (* Report a violation at most once per (pc, topic): a bad static fact
     would otherwise repeat on every loop iteration. *)
  let violate_once t ~pc ~topic fmt =
    if Hashtbl.mem t.reported (pc, topic) then
      Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
    else begin
      Hashtbl.replace t.reported (pc, topic) ();
      violate t ~pc fmt
    end

  let check_transition t ~prev ~paux ~pc =
    match (t.code.(prev) : int Risc.Insn.t) with
    | B (_, _, _, target) | Bi (_, _, _, target) ->
      let expected = if paux = 1 then target else prev + 1 in
      if pc <> expected then
        violate_once t ~pc:prev ~topic:"succ"
          "branch at pc %d went to %d, expected %d (aux %d)" prev pc expected
          paux;
      let g = t.a.graph in
      if
        pc >= 0 && pc < t.n_code
        && not (List.mem g.block_of.(pc) g.blocks.(g.block_of.(prev)).succs)
      then
        violate_once t ~pc:prev ~topic:"succ-edge"
          "dynamic successor block %d of branch block %d is not a static \
           CFG successor"
          g.block_of.(pc) g.block_of.(prev)
    | J target | Jal target ->
      if pc <> target then
        violate_once t ~pc:prev ~topic:"succ"
          "jump at pc %d went to %d, expected %d" prev pc target
    | Jtab (_, table) ->
      if not (Array.exists (fun x -> x = pc) table) then
        violate_once t ~pc:prev ~topic:"succ"
          "computed jump at pc %d went to %d, not a table target" prev pc
    | Jr _ ->
      if
        pc <= 0 || pc > t.n_code
        || Risc.Insn.kind t.code.(pc - 1) <> Risc.Insn.Call
      then
        violate_once t ~pc:prev ~topic:"succ"
          "return at pc %d went to %d, which is not a call return point"
          prev pc
    | Halt ->
      violate_once t ~pc:prev ~topic:"succ"
        "instruction retired after a halt"
    | _ ->
      if pc <> prev + 1 then
        violate_once t ~pc:prev ~topic:"succ"
          "plain instruction at pc %d followed by %d, expected %d" prev pc
          (prev + 1)

  let on_entry t ~pc ~aux =
    (match t.prev with
    | Some (prev, paux) -> check_transition t ~prev ~paux ~pc
    | None ->
      if pc <> t.a.graph.flat.entry_pc then
        violate t ~pc "trace starts at pc %d, not the entry point" pc);
    if pc < 0 || pc >= t.n_code then begin
      violate t ~pc "retired pc %d outside the code" pc;
      t.prev <- None
    end
    else begin
      if not t.reachable_pc.(pc) then
        violate_once t ~pc ~topic:"reach"
          "executed pc %d is statically unreachable" pc;
      let insn = t.code.(pc) in
      List.iter
        (fun r ->
          if (not t.init.(r)) && not (save_protocol_read insn r) then begin
            t.init.(r) <- true;
            violate_once t ~pc ~topic:(Format.asprintf "init-%a" pp_uid r)
              "%a is read before any write" pp_uid r
          end)
        (Risc.Insn.uses insn);
      List.iter (fun r -> t.init.(r) <- true) (Risc.Insn.defs insn);
      (* Loop activations: entering a loop body from outside resets the
         per-activation induction and invariance state. *)
      let blk = t.a.graph.block_of.(pc) in
      Array.iter
        (fun ls ->
          let now = ls.body.(blk) in
          if now && not ls.inside then begin
            Hashtbl.reset ls.last_update;
            Hashtbl.reset ls.inv_value
          end;
          ls.inside <- now)
        t.loops;
      t.prev <- Some (pc, aux)
    end;
    t.n_entries <- t.n_entries + 1

  let on_close t = t.closed <- true

  let sink t =
    { Vm.Trace.on_entry = (fun ~pc ~aux -> on_entry t ~pc ~aux);
      on_close = (fun () -> on_close t) }

  (* Value-level checks, fed by the interpreter's observe hook with the
     register file as of just after the instruction at [pc] retired. *)
  let observe t ~pc ~step:_ ~regs ~fregs:_ ~mem:_ =
    Array.iter
      (fun ls ->
        if ls.inside then begin
          (match Hashtbl.find_opt ls.updates pc with
          | Some (r, step) when r < 32 ->
            let v = regs.(r) in
            (match Hashtbl.find_opt ls.last_update pc with
            | Some last when v - last <> step ->
              violate_once t ~pc ~topic:"step"
                "overhead-marked update of %a stepped by %d, expected %d"
                pp_uid r (v - last) step
            | _ -> ());
            Hashtbl.replace ls.last_update pc v
          | _ -> ());
          match Hashtbl.find_opt ls.watches pc with
          | Some rs ->
            List.iter
              (fun r ->
                let v = regs.(r) in
                match Hashtbl.find_opt ls.inv_value (pc, r) with
                | Some pinned when pinned <> v ->
                  violate_once t ~pc
                    ~topic:(Format.asprintf "inv-%a" pp_uid r)
                    "loop-invariant operand %a changed from %d to %d within \
                     one activation"
                    pp_uid r pinned v
                | Some _ -> ()
                | None -> Hashtbl.replace ls.inv_value (pc, r) v)
              rs
          | None -> ()
        end)
      t.loops

  let entries t = t.n_entries
  let n_violations t = t.n_violations
  let violations t = List.rev t.violations_rev
end

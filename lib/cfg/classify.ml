type klass =
  | Decided of bool
  | Loop_exit of int
  | Data_dependent
  | Unreachable

let klass_name = function
  | Decided _ -> "decided"
  | Loop_exit _ -> "loop-exit"
  | Data_dependent -> "data"
  | Unreachable -> "unreachable"

type branch = { b_pc : int; b_proc : int; b_class : klass }

type t = {
  branches : branch array;
  trips : (int, int) Hashtbl.t;
}

(* Replay the induction recurrence x, x+c, x+2c, ... with the VM's own
   arithmetic until the continue predicate fails; the result is the
   0-based iteration index of the exit.  Capped: a loop that spins a
   million iterations is as good as unbounded for run-length bounding. *)
let first_fail ~continue_of ~x0 ~step =
  let cap = 1_000_000 in
  let rec go j x =
    if j > cap then None
    else if not (continue_of x) then Some j
    else go (j + 1) (x + step)
  in
  go 0 x0

(* Max header visits per activation from one exit branch: the branch
   compares induction value [x] (register side) against constant [k],
   [reg_left] telling which operand the register is; [exit_taken]
   whether the taken direction leaves the loop.  [init] is the SCCP
   value on loop entry, [step] the per-iteration increment.  The branch
   may observe either [init + j*step] or [init + (j+1)*step] on
   iteration [j] depending on update/branch order, so both phases are
   replayed and a +2 margin covers the visit that exits. *)
let trip_bound ~cond ~k ~reg_left ~exit_taken ~init ~step =
  if step = 0 then None
  else begin
    let continue_of x =
      let a, b = if reg_left then (x, k) else (k, x) in
      let t = Risc.Insn.eval_cond cond a b in
      if exit_taken then not t else t
    in
    match
      (first_fail ~continue_of ~x0:init ~step,
       first_fail ~continue_of ~x0:(init + step) ~step)
    with
    | Some a, Some b -> Some (max a b + 2)
    | _ -> None
  end

(* The unique in-loop step instruction of induction register [r]:
   [Alui (Add|Sub, r, r, c)] with no other in-loop definition of [r]
   (a second write, or a call clobbering it, voids the recurrence). *)
let induction_step (g : Graph.t) (loop : Loops.loop) r =
  let step = ref None and clobbered = ref false in
  List.iter
    (fun b ->
      let blk = g.blocks.(b) in
      for pc = blk.start to blk.stop - 1 do
        let insn = g.flat.code.(pc) in
        let is_step =
          match insn with
          | Risc.Insn.Alui (Add, rd, rs, c) when rd = rs && rd = r ->
            Some c
          | Risc.Insn.Alui (Sub, rd, rs, c) when rd = rs && rd = r ->
            Some (-c)
          | _ -> None
        in
        match is_step with
        | Some c -> (
          match !step with
          | None -> step := Some c
          | Some c' when c' = c -> ()
          | Some _ -> clobbered := true)
        | None ->
          if List.mem r (Dataflow.def_regs insn) then clobbered := true
      done)
    loop.body;
  if !clobbered then None else !step

(* SCCP value of [r] on entry to the loop: meet over executable
   header in-edges that come from outside the body. *)
let entry_value (view : View.t) sccp (loop : Loops.loop) in_body r =
  match View.local view loop.header with
  | None -> Sccp.Bot
  | Some hl ->
    Array.fold_left
      (fun acc pl ->
        let pg = View.global view pl in
        if in_body pg then acc
        else if not (Sccp.edge_executable sccp ~src:pl ~dst:hl) then acc
        else Sccp.meet acc (Sccp.exit_state sccp pl).(r))
      Sccp.Top view.preds.(hl)

let classify (a : Analysis.t) ~(sccp : Sccp.t array) =
  let g = a.graph in
  let code = g.flat.code in
  let n_code = Array.length code in
  let trips : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (* per conditional-branch pc: the loop it exits + trip bound *)
  let loop_exit : (int, int option * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (loop : Loops.loop) ->
      let body = Hashtbl.create 16 in
      List.iter (fun b -> Hashtbl.replace body b ()) loop.body;
      let in_body b = Hashtbl.mem body b in
      let proc = g.blocks.(loop.header).proc in
      let view = a.views.(proc) and sc = sccp.(proc) in
      let header_l = View.local view loop.header in
      let dominates_latches bl =
        match (View.local view bl, header_l) with
        | Some l, Some _ ->
          List.for_all
            (fun latch ->
              match View.local view latch with
              | Some ll -> Dom.dominates view.dom l ll
              | None -> false)
            loop.latches
        | _ -> false
      in
      List.iter
        (fun b ->
          let blk = g.blocks.(b) in
          let term_pc = blk.stop - 1 in
          if blk.stop > blk.start then begin
            let fall_out =
              blk.stop >= n_code
              || g.blocks.(g.block_of.(blk.stop)).proc <> blk.proc
              || not (in_body g.block_of.(blk.stop))
            in
            let record tgt cond reg_side k reg_left =
              let taken_out = not (in_body g.block_of.(tgt)) in
              if taken_out || fall_out then begin
                (* an exit branch of this loop; bound the trip when the
                   register side is an induction with known entry and
                   the other side is a known constant *)
                let bound =
                  if taken_out && fall_out then Some 2
                  else if not (dominates_latches b) then None
                  else if not (List.mem reg_side loop.induction) then None
                  else
                    match (k, induction_step g loop reg_side) with
                    | Some k, Some step -> (
                      match entry_value view sc loop in_body reg_side with
                      | Sccp.Const init ->
                        trip_bound ~cond ~k ~reg_left ~exit_taken:taken_out
                          ~init ~step
                      | _ -> None)
                    | _ -> None
                in
                let better =
                  match (Hashtbl.find_opt loop_exit term_pc, bound) with
                  | None, _ -> true
                  | Some (None, _), Some _ -> true
                  | Some (None, _), None -> false
                  | Some (Some p, _), Some b' -> b' < p
                  | Some (Some _, _), None -> false
                in
                if better then
                  Hashtbl.replace loop_exit term_pc (bound, loop.header);
                match bound with
                | Some t ->
                  let cur = Hashtbl.find_opt trips loop.header in
                  if cur = None || Option.get cur > t then
                    Hashtbl.replace trips loop.header t
                | None -> ()
              end
            in
            match code.(term_pc) with
            | Risc.Insn.B (cond, rs, rt, tgt) -> (
              (* figure out which operand is the register under test;
                 the other side must be an SCCP constant *)
              match View.local view b with
              | None -> ()
              | Some bl -> (
                let v r = Sccp.value_at sc ~l:bl ~pc:term_pc ~reg:r in
                match (v rs, v rt) with
                | _, Sccp.Const k -> record tgt cond rs (Some k) true
                | Sccp.Const k, _ -> record tgt cond rt (Some k) false
                | _ -> record tgt cond rs None true (* exit marking only *)))
            | Bi (cond, rs, k, tgt) -> record tgt cond rs (Some k) true
            | _ -> ()
          end)
        loop.body)
    a.loops.loops;
  (* walk every conditional branch and assign its class *)
  let branches = ref [] in
  for pc = n_code - 1 downto 0 do
    match Risc.Insn.kind code.(pc) with
    | Cond_branch ->
      let proc = g.flat.proc_of.(pc) in
      let view = a.views.(proc) and sc = sccp.(proc) in
      let bl = View.local view g.block_of.(pc) in
      let executable =
        match bl with Some l -> Sccp.executable sc l | None -> false
      in
      let b_class =
        if not executable then Unreachable
        else
          match Sccp.decided_branch sc ~pc with
          | Some taken -> Decided taken
          | None -> (
            match Hashtbl.find_opt loop_exit pc with
            | Some (Some t, _) -> Loop_exit t
            | Some (None, _) | None -> Data_dependent)
      in
      branches := { b_pc = pc; b_proc = proc; b_class } :: !branches
    | _ -> ()
  done;
  { branches = Array.of_list !branches; trips }

let find t ~pc =
  let n = Array.length t.branches in
  let rec bsearch lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let b = t.branches.(mid) in
      if b.b_pc = pc then Some b
      else if b.b_pc < pc then bsearch (mid + 1) hi
      else bsearch lo mid
    end
  in
  bsearch 0 n

let counts t =
  Array.fold_left
    (fun (d, l, dd, u) b ->
      match b.b_class with
      | Decided _ -> (d + 1, l, dd, u)
      | Loop_exit _ -> (d, l + 1, dd, u)
      | Data_dependent -> (d, l, dd + 1, u)
      | Unreachable -> (d, l, dd, u + 1))
    (0, 0, 0, 0) t.branches

(** Static branch classification.

    Every conditional branch in the program falls into one of three
    classes, mirroring the static/dynamic split of the
    variable-fetch-rate literature:

    - {e statically decided}: {!Sccp} folds the condition to a
      constant — the branch always goes one way, and contributes no
      control-dependence penalty on any machine;
    - {e loop exit with known trip count}: the branch tests a loop
      induction register ({!Loops}) against a constant bound whose
      initial value {!Sccp} knows, so the number of header visits per
      loop activation is statically bounded;
    - {e data dependent}: everything else — the class whose penalty
      the paper measures.

    Trip counts are {e upper bounds on header executions per loop
    activation}, derived by replaying the induction recurrence with
    the VM's own arithmetic ([eval_alu]/[eval_cond]) from the
    SCCP-known initial value, with a two-iteration safety margin that
    absorbs the update/branch ordering within the body. *)

type klass =
  | Decided of bool
    (** always taken / always not taken (SCCP constant condition) *)
  | Loop_exit of int
    (** exits a natural loop whose max header visits per activation is
        the payload *)
  | Data_dependent
  | Unreachable
    (** the branch's block is never executed (SCCP-pruned) *)

val klass_name : klass -> string
(** Stable short tag: ["decided"], ["loop-exit"], ["data"],
    ["unreachable"]. *)

type branch = { b_pc : int; b_proc : int; b_class : klass }

type t = {
  branches : branch array;  (** all conditional branches, pc ascending *)
  trips : (int, int) Hashtbl.t;
  (** loop header (global block id) -> max header visits per
      activation, for loops where some exit branch bounds it *)
}

val classify : Analysis.t -> sccp:Sccp.t array -> t

val find : t -> pc:int -> branch option

val counts : t -> int * int * int * int
(** [(decided, loop_exit, data_dependent, unreachable)] totals. *)

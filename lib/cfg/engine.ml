type severity = Error | Warning

type diag = {
  d_proc : int;
  d_proc_name : string;
  d_pc : int;
  d_block : int;
  d_severity : severity;
  d_pass : string;
  d_message : string;
  d_disasm : string;
}

type ctx = {
  analysis : Analysis.t;
  sccp : Sccp.t array Lazy.t;
  uninit : Dataflow.Uninit.t array Lazy.t;
  liveness : Dataflow.Liveness.t array Lazy.t;
}

(* Registers a procedure may read before writing without that being a
   bug: the ABI guarantees sp everywhere, and ra/args/fargs on entry to
   every procedure that can be called (the program entry gets only
   sp — nothing has set up arguments for it). *)
let assumed_regs ~is_entry =
  let open Risc in
  if is_entry then [ Reg.sp ]
  else
    Reg.sp :: Reg.ra
    :: (List.init Reg.n_arg_regs Reg.arg
       @ List.init 4 (fun i -> Reg.uid_of_float (Reg.farg i)))

let create_ctx (a : Analysis.t) =
  let flat = a.graph.flat in
  let entry_proc = flat.proc_of.(flat.entry_pc) in
  { analysis = a;
    sccp = lazy (Sccp.run a);
    uninit =
      lazy
        (Array.mapi
           (fun p v ->
             Dataflow.Uninit.compute v
               ~assumed:(assumed_regs ~is_entry:(p = entry_proc)))
           a.views);
    liveness = lazy (Array.map Dataflow.Liveness.compute a.views) }

type pass = {
  p_name : string;
  p_help : string;
  p_severity : severity;
  p_run : ctx -> emit:(pc:int -> string -> unit) -> unit;
}

type config = {
  disabled : string list;
  severities : (string * severity) list;
  strict : bool;
}

let default_config = { disabled = []; severities = []; strict = false }

type timing = { t_pass : string; t_ns : int64; t_diags : int }

type report = {
  diags : diag list;
  n_errors : int;
  n_warnings : int;
  timings : timing list;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let run ?(obs = Obs.Ctx.disabled) ?(config = default_config)
    ?(workload = "") passes (a : Analysis.t) =
  let flat = a.graph.flat in
  let code = flat.code in
  let n_code = Array.length code in
  let ctx = create_ctx a in
  let enabled =
    List.filter (fun p -> not (List.mem p.p_name config.disabled)) passes
  in
  (* Spans go to the caller's context when it records; timings are
     read back from a private buffer so they exist either way. *)
  let obs_buf =
    if Obs.Ctx.enabled obs then
      Obs.Ctx.task_buffer obs ~index:0 ~label:"static-passes"
    else Obs.Span.disabled
  in
  let tbuf = Obs.Span.buffer ~label:"static-passes" () in
  let registry =
    if Obs.Ctx.enabled obs then Obs.Ctx.metrics obs else Obs.Metrics.global
  in
  let diags = ref [] in
  let n_total = ref 0 in
  let run_pass p =
    let eff =
      match List.assoc_opt p.p_name config.severities with
      | Some s -> s
      | None -> p.p_severity
    in
    let eff = if config.strict && eff = Warning then Error else eff in
    let before = !n_total in
    let emit ~pc message =
      let in_range = pc >= 0 && pc < n_code in
      let d =
        { d_proc = (if in_range then flat.proc_of.(pc) else -1);
          d_proc_name =
            (if in_range then flat.proc_names.(flat.proc_of.(pc))
             else "<none>");
          d_pc = pc;
          d_block = (if in_range then a.graph.block_of.(pc) else -1);
          d_severity = eff;
          d_pass = p.p_name;
          d_message = message;
          d_disasm =
            (if in_range then
               Format.asprintf "%a" Risc.Insn.pp_resolved code.(pc)
             else "<no instruction>") }
      in
      incr n_total;
      diags := d :: !diags
    in
    Obs.Span.with_span obs_buf ~workload p.p_name (fun () ->
        Obs.Span.with_span tbuf ~workload p.p_name (fun () ->
            p.p_run ctx ~emit));
    !n_total - before
  in
  let counts = List.map (fun p -> (p, run_pass p)) enabled in
  let spans = Obs.Span.spans tbuf in
  let timings =
    List.mapi
      (fun i (p, n) ->
        let ns =
          if i < Array.length spans then Obs.Span.dur_ns spans.(i) else 0L
        in
        Obs.Metrics.add
          (Obs.Metrics.counter registry
             ~help:"diagnostics emitted by static passes"
             (Printf.sprintf "verify_diagnostics_total{class=%S}" p.p_name))
          n;
        Obs.Metrics.add
          (Obs.Metrics.counter registry
             ~help:"wall-clock nanoseconds spent in static passes"
             (Printf.sprintf "static_pass_ns{pass=%S}" p.p_name))
          (Int64.to_int ns);
        { t_pass = p.p_name; t_ns = ns; t_diags = n })
      counts
  in
  let diags =
    List.stable_sort
      (fun a b ->
        compare (a.d_proc, a.d_pc, a.d_pass) (b.d_proc, b.d_pc, b.d_pass))
      (List.rev !diags)
  in
  let n_errors =
    List.length (List.filter (fun d -> d.d_severity = Error) diags)
  in
  { diags;
    n_errors;
    n_warnings = List.length diags - n_errors;
    timings }

let max_severity r =
  if r.n_errors > 0 then Some Error
  else if r.n_warnings > 0 then Some Warning
  else None

let pp_diag ppf d =
  Format.fprintf ppf "%s: %s: pc %d (block %d) [%s]: %s | %s"
    (severity_name d.d_severity)
    d.d_proc_name d.d_pc d.d_block d.d_pass d.d_message d.d_disasm

let render_text ppf r =
  List.iter (fun d -> Format.fprintf ppf "%a@." pp_diag d) r.diags;
  Format.fprintf ppf "%d error%s, %d warning%s@." r.n_errors
    (if r.n_errors = 1 then "" else "s")
    r.n_warnings
    (if r.n_warnings = 1 then "" else "s")

(* Minimal JSON string escaping: quotes, backslashes, control chars. *)
let json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let render_json buf r =
  let field name write =
    json_string buf name;
    Buffer.add_char buf ':';
    write ()
  in
  Buffer.add_string buf "{";
  field "diagnostics" (fun () ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i d ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf "{";
          field "severity" (fun () ->
              json_string buf (severity_name d.d_severity));
          Buffer.add_char buf ',';
          field "class" (fun () -> json_string buf d.d_pass);
          Buffer.add_char buf ',';
          field "proc" (fun () ->
              Buffer.add_string buf (string_of_int d.d_proc));
          Buffer.add_char buf ',';
          field "proc_name" (fun () -> json_string buf d.d_proc_name);
          Buffer.add_char buf ',';
          field "pc" (fun () -> Buffer.add_string buf (string_of_int d.d_pc));
          Buffer.add_char buf ',';
          field "block" (fun () ->
              Buffer.add_string buf (string_of_int d.d_block));
          Buffer.add_char buf ',';
          field "message" (fun () -> json_string buf d.d_message);
          Buffer.add_char buf ',';
          field "disasm" (fun () -> json_string buf d.d_disasm);
          Buffer.add_string buf "}")
        r.diags;
      Buffer.add_char buf ']');
  Buffer.add_char buf ',';
  field "errors" (fun () -> Buffer.add_string buf (string_of_int r.n_errors));
  Buffer.add_char buf ',';
  field "warnings" (fun () ->
      Buffer.add_string buf (string_of_int r.n_warnings));
  Buffer.add_char buf ',';
  field "passes" (fun () ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i t ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf "{";
          field "pass" (fun () -> json_string buf t.t_pass);
          Buffer.add_char buf ',';
          field "ns" (fun () ->
              Buffer.add_string buf (Int64.to_string t.t_ns));
          Buffer.add_char buf ',';
          field "diagnostics" (fun () ->
              Buffer.add_string buf (string_of_int t.t_diags));
          Buffer.add_string buf "}")
        r.timings;
      Buffer.add_char buf ']');
  Buffer.add_string buf "}"

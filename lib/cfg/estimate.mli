(** Machine-independent static parallelism facts.

    The dynamic analyzer measures parallelism as [seq_cycles /
    max_time]; the quantities that let a machine spec be bounded
    without executing are computed here, on the SCCP-pruned CFG:

    - {e counted weights}: how many instructions of each block survive
      the removal rules the analyzer applies (halt always; calls,
      returns and sp adjustments under perfect inlining; loop overhead
      under perfect unrolling) — the same rules, recomputed from the
      instruction stream and {!Loops.t.overhead};
    - {e breakers}: counted instructions that serialize blocking /
      control-dependent machines — conditional branches, computed
      jumps, and returns when not inlining;
    - {e M, the maximum breaker-free run}: the largest number of
      counted instructions any execution can retire between two
      consecutive breakers.  Computed interprocedurally: per-procedure
      head/through/tail run summaries composed bottom-up over the call
      graph (bounded fixpoint iteration inside recursive SCCs), with
      breaker-free CFG cycles admitted only when {!Classify} bounds
      their trip count — anything else makes the run unbounded;
    - per-block dataflow heights and per-loop/per-procedure critical
      path floors (informational lower bounds, not used in the upper
      bound).

    [Ilp.Static_bound] compiles these facts against an [Ilp.Machine]
    lattice point. *)

type bound = Finite of int | Unbounded

val bound_to_string : bound -> string
(** ["123"] or ["unbounded"]. *)

val bound_to_float : bound -> float
(** [infinity] for {!Unbounded}. *)

type block_facts = {
  bf_counted : int;  (** counted instructions in the block *)
  bf_height : int;
  (** longest register-dependence chain among the counted
      instructions, unit latency — a critical-path floor for the block
      on machines without value prediction *)
}

type loop_facts = {
  lf_header : int;  (** global block id *)
  lf_blocks : int;
  lf_counted : int;
  lf_trip : int option;  (** max header visits per activation, if bounded *)
  lf_induction : int list;
}

type proc_facts = {
  pf_proc : int;
  pf_name : string;
  pf_counted : int;  (** counted instructions in the procedure *)
  pf_height : int;
  (** max height over blocks executing on every complete activation *)
  pf_head : bound;
  (** longest breaker-free run from procedure entry (including runs
      that die inside callees) *)
  pf_thru : bound option;
  (** breaker-free entry-to-return traversal weight; [None] when every
      such path meets a breaker, i.e. a caller's run never survives a
      call to this procedure *)
  pf_tail : bound;
  (** longest breaker-free run ending at a return *)
  pf_runs : bound;  (** max breaker-free run anywhere inside *)
}

type t = {
  inline : bool;
  unroll : bool;
  analysis : Analysis.t;
  sccp : Sccp.t array;
  classes : Classify.t;
  blocks : block_facts array;  (** per global block id *)
  loops : loop_facts list;
  procs : proc_facts array;  (** per procedure *)
  max_run : bound;
  (** M: max counted breaker-free run over every execution reachable
      from the entry procedure *)
}

val compute : ?inline:bool -> ?unroll:bool -> Analysis.t -> t
(** Defaults [inline = true], [unroll = true], matching
    [Ilp.Analyze.config]. *)

val counted : t -> pc:int -> bool
(** Does this instruction survive the removal rules? *)

val breaker : t -> pc:int -> bool
(** Counted and serializes blocking/control-dependent machines. *)

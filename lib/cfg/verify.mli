(** Static verifier for compiled programs, with dynamic cross-validation
    of the static facts against an execution trace.

    The static checker walks every procedure and reports structured
    diagnostics.  {e Errors} are shapes the code generator must never
    produce: control transfers leaving their procedure (direct, through
    a jump table, or by falling off the procedure end), calls that do
    not target a procedure entry, returns through a register other than
    [ra], stack-pointer writes that are not constant adjustments,
    inconsistent or unrestored frame offsets, and reads of registers
    that are uninitialized on {e every} path.  {e Warnings} flag merely
    suspicious code: reads that are uninitialized on some path,
    unreachable blocks, and dead stores.

    {!Dynamic} replays a trace (as a {!Vm.Trace.sink}) against the same
    facts: every retired pc must be statically reachable, every control
    transfer must follow a static CFG edge, every register read must see
    a prior write, and the loop-overhead classification of §4.2 must
    hold dynamically — overhead-marked induction updates step by their
    loop constant and operands classified invariant keep one value per
    loop activation (the value checks need the interpreter's [observe]
    hook). *)

type severity = Engine.severity = Error | Warning

type kind =
  | Bad_branch_target  (** branch or jump target outside its procedure *)
  | Bad_jtab_target  (** jump-table entry outside its procedure *)
  | Bad_call_target  (** call target is not a procedure entry *)
  | Fallthrough_off_end  (** last instruction of a procedure can fall through *)
  | Ret_discipline  (** return through a register other than [ra] *)
  | Sp_discipline  (** [sp] written by a non-constant adjustment *)
  | Sp_imbalance  (** frame offset inconsistent at a join or nonzero at return *)
  | Uninit_read  (** register read but never written on any path *)
  | Maybe_uninit_read  (** register uninitialized on some path (warning) *)
  | Unreachable_block  (** block unreachable from the procedure entry (warning) *)
  | Sccp_unreachable
    (** block CFG-reachable but pruned by conditional constant
        propagation (warning) *)
  | Dead_store  (** register written but never read (warning) *)

type diag = {
  pc : int;
  block : int;  (** global block id, [-1] when the pc has none *)
  severity : severity;
  kind : kind;
  message : string;
  disasm : string;  (** disassembly of the offending instruction *)
}

type report = {
  diags : diag list;  (** sorted by pc *)
  n_errors : int;
  n_warnings : int;
}

val passes : Engine.pass list
(** Every diagnostic class as a registered engine pass (one per
    {!kind}, same kebab-case names), for callers that want per-pass
    configuration, JSON output or observability via {!Engine.run}. *)

val check : Analysis.t -> report
(** Runs every pass of {!passes} under {!Engine.default_config} and
    presents the result in the historical shape, sorted by (pc, kind). *)

val of_engine : Engine.report -> report
(** Retype an engine report over {!passes} into the historical shape
    (for callers that ran the engine themselves, e.g. with a custom
    configuration). *)

val errors : report -> diag list
val warnings : report -> diag list
val kind_name : kind -> string

val kind_of_name : string -> kind option
(** Inverse of {!kind_name} (pass names are kind names). *)

val severity_of : kind -> severity
val pp_diag : Format.formatter -> diag -> unit

val save_protocol_read : int Risc.Insn.t -> int -> bool
(** Is a read of unified register [r] by this instruction part of the
    register-save protocol (a store of [r] to a stack slot)?  Such reads
    may legitimately see a never-written callee-saved register and are
    exempt from the uninitialized-read checks. *)

module Dynamic : sig
  type violation = {
    index : int;  (** trace entry index *)
    pc : int;
    message : string;
  }

  type t

  val create : Analysis.t -> t

  val sink : t -> Vm.Trace.sink
  (** The pc-level checks, driven once per retired instruction. *)

  val observe :
    t -> pc:int -> step:int -> regs:int array -> fregs:float array ->
    mem:int array -> unit
  (** The value-level checks (induction steps, invariant pinning), to be
      called from {!Vm.Exec.run}'s [observe] hook right after each
      retirement, with the same pc the sink just saw.  [step] and [mem]
      are part of the hook's signature (the fault injector uses them)
      but unused here. *)

  val entries : t -> int
  (** Trace entries seen so far. *)

  val n_violations : t -> int
  (** Total violations, including ones beyond the kept window. *)

  val violations : t -> violation list
  (** The first violations (at most 50), in trace order. *)
end

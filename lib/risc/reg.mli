(** Register names and conventions for the MIPS-like target ISA.

    The machine has 32 integer registers and 32 floating-point registers.
    Dependence analysis uses a single {e unified} register id space:
    integer register [r] has id [r] (0..31) and float register [f] has id
    [32 + f] (32..63).  Register [r0] is hard-wired to zero: writes to it
    are discarded and reads never create dependences. *)

type t = int
(** An integer register number, 0..31. *)

type f = int
(** A floating-point register number, 0..31. *)

val zero : t (** hard-wired zero, r0 *)

val rv : t (** integer return value, r2 *)

val arg : int -> t
(** [arg i] is the i-th integer argument register (0..3), r4..r7.
    @raise Invalid_argument outside that range. *)

val n_arg_regs : int

val tmp : int -> t
(** [tmp i] is the i-th caller-saved expression temporary (0..7), r8..r15. *)

val n_tmp_regs : int

val sav : int -> t
(** [sav i] is the i-th callee-saved local register (0..7), r16..r23. *)

val n_sav_regs : int

val scratch0 : t (** codegen scratch, r24 *)

val scratch1 : t (** codegen scratch, r25 *)

val sp : t (** stack pointer, r29 *)

val ra : t (** return address, r31 *)

val frv : f (** float return value, f0 *)

val farg : int -> f
(** [farg i] is the i-th float argument register (0..3), f12..f15. *)

val ftmp : int -> f
(** [ftmp i] is the i-th caller-saved float temporary (0..7), f2..f9. *)

val n_ftmp_regs : int

val fsav : int -> f
(** [fsav i] is the i-th callee-saved float local register (0..7), f20..f27. *)

val n_fsav_regs : int

val fscratch : f (** codegen scratch, f30 *)

val fscratch1 : f (** codegen scratch, f31 *)

val uid_of_int : t -> int
(** Unified id of an integer register (identity). *)

val uid_of_float : f -> int
(** Unified id of a float register ([32 + f]). *)

val n_unified : int
(** Size of the unified id space (64). *)

val caller_saved : int list
(** Unified ids a call may clobber: return values, argument and temporary
    banks, scratch registers and [ra]. *)

val callee_saved : int list
(** Unified ids preserved across calls: the [sav]/[fsav] banks and [sp]. *)

val pp : Format.formatter -> t -> unit
(** Prints [r4] style names. *)

val pp_f : Format.formatter -> f -> unit
(** Prints [f12] style names. *)

val pp_uid : Format.formatter -> int -> unit
(** Prints a unified id as [r..] or [f..]. *)

type t = int
type f = int

let zero = 0
let rv = 2
let n_arg_regs = 4

let arg i =
  if i < 0 || i >= n_arg_regs then invalid_arg "Reg.arg";
  4 + i

let n_tmp_regs = 8

let tmp i =
  if i < 0 || i >= n_tmp_regs then invalid_arg "Reg.tmp";
  8 + i

let n_sav_regs = 8

let sav i =
  if i < 0 || i >= n_sav_regs then invalid_arg "Reg.sav";
  16 + i

let scratch0 = 24
let scratch1 = 25
let sp = 29
let ra = 31

let frv = 0

let farg i =
  if i < 0 || i >= 4 then invalid_arg "Reg.farg";
  12 + i

let n_ftmp_regs = 8

let ftmp i =
  if i < 0 || i >= n_ftmp_regs then invalid_arg "Reg.ftmp";
  2 + i

let n_fsav_regs = 8

let fsav i =
  if i < 0 || i >= n_fsav_regs then invalid_arg "Reg.fsav";
  20 + i

let fscratch = 30
let fscratch1 = 31

let uid_of_int r = r
let uid_of_float f = 32 + f
let n_unified = 64

(* Calling convention over unified ids.  Caller-saved registers are the
   ones a call may clobber: return values, arguments, temporaries,
   scratch and [ra]; callee-saved registers survive calls: the [sav]
   banks and the stack pointer. *)
let caller_saved =
  List.concat
    [ [ rv ];
      List.init n_arg_regs arg;
      List.init n_tmp_regs tmp;
      [ scratch0; scratch1; ra ];
      [ uid_of_float frv ];
      List.init 4 (fun i -> uid_of_float (farg i));
      List.init n_ftmp_regs (fun i -> uid_of_float (ftmp i));
      [ uid_of_float fscratch; uid_of_float fscratch1 ] ]

let callee_saved =
  List.concat
    [ List.init n_sav_regs sav;
      [ sp ];
      List.init n_fsav_regs (fun i -> uid_of_float (fsav i)) ]

let pp ppf r = Format.fprintf ppf "r%d" r
let pp_f ppf f = Format.fprintf ppf "f%d" f

let pp_uid ppf u =
  if u < 32 then Format.fprintf ppf "r%d" u
  else Format.fprintf ppf "f%d" (u - 32)

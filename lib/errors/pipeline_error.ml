type fault_kind =
  | Div_by_zero
  | Mem_out_of_range
  | Pc_out_of_range
  | Jtab_out_of_range
  | Out_of_fuel
  | Step_budget
  | Trace_cut
  | Injected

let fault_kind_name = function
  | Div_by_zero -> "div_by_zero"
  | Mem_out_of_range -> "mem_out_of_range"
  | Pc_out_of_range -> "pc_out_of_range"
  | Jtab_out_of_range -> "jtab_out_of_range"
  | Out_of_fuel -> "out_of_fuel"
  | Step_budget -> "step_budget"
  | Trace_cut -> "trace_cut"
  | Injected -> "injected"

type fault_info = {
  f_kind : fault_kind;
  f_pc : int;
  f_step : int;
  f_detail : string;
}

let fault ?(pc = -1) ?(detail = "") ~step kind =
  { f_kind = kind; f_pc = pc; f_step = step; f_detail = detail }

let pp_fault ppf f =
  Format.fprintf ppf "%s" (fault_kind_name f.f_kind);
  if f.f_pc >= 0 then Format.fprintf ppf " at pc %d" f.f_pc;
  Format.fprintf ppf " after %d steps" f.f_step;
  if f.f_detail <> "" then Format.fprintf ppf " (%s)" f.f_detail

type completeness =
  | Complete
  | Truncated of fault_info

let pp_completeness ppf = function
  | Complete -> Format.fprintf ppf "complete"
  | Truncated f -> Format.fprintf ppf "truncated: %a" pp_fault f

let completeness_tag = function
  | Complete -> "complete"
  | Truncated f -> fault_kind_name f.f_kind

type stage =
  | Lookup
  | Compile
  | Execute
  | Analyze
  | Report

let stage_name = function
  | Lookup -> "lookup"
  | Compile -> "compile"
  | Execute -> "execute"
  | Analyze -> "analyze"
  | Report -> "report"

type cause =
  | Unknown_workload of { name : string; hint : string option }
  | Unknown_machine of { name : string; hint : string option }
  | Invalid_machine_spec of { spec : string; msg : string }
  | Unknown_fault of { name : string; hint : string option }
  | Compile_error of string
  | Vm_fault of fault_info
  | Budget_exceeded of { what : string; limit : int; requested : int }
  | Invalid_request of string
  | Failed of string
  | Internal of string

type t = {
  stage : stage;
  workload : string option;
  cause : cause;
}

let v ?workload stage cause = { stage; workload; cause }

let pp_hint ppf = function
  | Some h -> Format.fprintf ppf " (did you mean %S?)" h
  | None -> ()

let pp_cause ppf = function
  | Unknown_workload { name; hint } ->
    Format.fprintf ppf "unknown workload %S%a; try the 'list' command" name
      pp_hint hint
  | Unknown_machine { name; hint } ->
    Format.fprintf ppf "unknown machine %S%a" name pp_hint hint
  | Invalid_machine_spec { spec; msg } ->
    Format.fprintf ppf "invalid machine spec %S: %s" spec msg
  | Unknown_fault { name; hint } ->
    Format.fprintf ppf "unknown fault kind %S%a" name pp_hint hint
  | Compile_error msg -> Format.fprintf ppf "compile error: %s" msg
  | Vm_fault f -> Format.fprintf ppf "VM fault: %a" pp_fault f
  | Budget_exceeded { what; limit; requested } ->
    Format.fprintf ppf "%s budget exceeded: requested %d, cap %d" what
      requested limit
  | Invalid_request msg -> Format.fprintf ppf "invalid request: %s" msg
  | Failed msg -> Format.fprintf ppf "%s" msg
  | Internal msg ->
    Format.fprintf ppf "internal error (escaped exception): %s" msg

let pp ppf t =
  Format.fprintf ppf "[%s" (stage_name t.stage);
  (match t.workload with
  | Some w -> Format.fprintf ppf "/%s" w
  | None -> ());
  Format.fprintf ppf "] %a" pp_cause t.cause

let to_string t = Format.asprintf "%a" pp t

let exit_code t =
  match t.cause with
  | Failed _ | Internal _ -> 1
  | Unknown_workload _ | Unknown_machine _ | Invalid_machine_spec _
  | Unknown_fault _ | Invalid_request _ -> 2
  | Compile_error _ -> 3
  | Vm_fault _ -> 4
  | Budget_exceeded _ -> 5

(* Damerau-Levenshtein distance (transposition counts as one edit, so
   "akw" suggests "awk"); small strings only. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let d = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do d.(i).(0) <- i done;
  for j = 0 to lb do d.(0).(j) <- j done;
  for i = 1 to la do
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      let best =
        min (min (d.(i).(j - 1) + 1) (d.(i - 1).(j) + 1))
          (d.(i - 1).(j - 1) + cost)
      in
      let best =
        if i > 1 && j > 1 && a.[i - 1] = b.[j - 2] && a.[i - 2] = b.[j - 1]
        then min best (d.(i - 2).(j - 2) + 1)
        else best
      in
      d.(i).(j) <- best
    done
  done;
  d.(la).(lb)

let suggest name candidates =
  let name = String.lowercase_ascii name in
  let scored =
    List.filter_map
      (fun c ->
        let d = edit_distance name (String.lowercase_ascii c) in
        (* close enough to be a typo: at most 1 edit for short names,
           about a third of the length for longer ones *)
        let threshold = max 1 (String.length c / 3) in
        if d <= threshold then Some (d, c) else None)
      candidates
  in
  match List.sort compare scored with
  | (_, best) :: _ -> Some best
  | [] -> None

let guard ?workload stage f =
  try f () with
  | e ->
    let msg = Printexc.to_string e in
    Error (v ?workload stage (Internal msg))

type fault_kind =
  | Div_by_zero
  | Mem_out_of_range
  | Pc_out_of_range
  | Jtab_out_of_range
  | Out_of_fuel
  | Step_budget
  | Trace_cut
  | Injected

let fault_kind_name = function
  | Div_by_zero -> "div_by_zero"
  | Mem_out_of_range -> "mem_out_of_range"
  | Pc_out_of_range -> "pc_out_of_range"
  | Jtab_out_of_range -> "jtab_out_of_range"
  | Out_of_fuel -> "out_of_fuel"
  | Step_budget -> "step_budget"
  | Trace_cut -> "trace_cut"
  | Injected -> "injected"

type fault_info = {
  f_kind : fault_kind;
  f_pc : int;
  f_step : int;
  f_detail : string;
}

let fault ?(pc = -1) ?(detail = "") ~step kind =
  { f_kind = kind; f_pc = pc; f_step = step; f_detail = detail }

let pp_fault ppf f =
  Format.fprintf ppf "%s" (fault_kind_name f.f_kind);
  if f.f_pc >= 0 then Format.fprintf ppf " at pc %d" f.f_pc;
  Format.fprintf ppf " after %d steps" f.f_step;
  if f.f_detail <> "" then Format.fprintf ppf " (%s)" f.f_detail

type completeness =
  | Complete
  | Truncated of fault_info

let pp_completeness ppf = function
  | Complete -> Format.fprintf ppf "complete"
  | Truncated f -> Format.fprintf ppf "truncated: %a" pp_fault f

let completeness_tag = function
  | Complete -> "complete"
  | Truncated f -> fault_kind_name f.f_kind

type stage =
  | Lookup
  | Compile
  | Execute
  | Analyze
  | Report

let stage_name = function
  | Lookup -> "lookup"
  | Compile -> "compile"
  | Execute -> "execute"
  | Analyze -> "analyze"
  | Report -> "report"

type cause =
  | Unknown_workload of { name : string; hint : string option }
  | Unknown_machine of { name : string; hint : string option }
  | Invalid_machine_spec of { spec : string; msg : string }
  | Unknown_fault of { name : string; hint : string option }
  | Compile_error of string
  | Vm_fault of fault_info
  | Budget_exceeded of { what : string; limit : int; requested : int }
  | Invalid_request of string
  | Deadline_exceeded of { budget_ms : int; elapsed_ms : int }
  | Overloaded of { depth : int; limit : int; retry_after_ms : int }
  | Rejected_by_estimate of { spec : string; estimate : float; ceiling : float }
  | Failed of string
  | Internal of string

type t = {
  stage : stage;
  workload : string option;
  cause : cause;
}

let v ?workload stage cause = { stage; workload; cause }

let pp_hint ppf = function
  | Some h -> Format.fprintf ppf " (did you mean %S?)" h
  | None -> ()

let pp_cause ppf = function
  | Unknown_workload { name; hint } ->
    Format.fprintf ppf "unknown workload %S%a; try the 'list' command" name
      pp_hint hint
  | Unknown_machine { name; hint } ->
    Format.fprintf ppf "unknown machine %S%a" name pp_hint hint
  | Invalid_machine_spec { spec; msg } ->
    Format.fprintf ppf "invalid machine spec %S: %s" spec msg
  | Unknown_fault { name; hint } ->
    Format.fprintf ppf "unknown fault kind %S%a" name pp_hint hint
  | Compile_error msg -> Format.fprintf ppf "compile error: %s" msg
  | Vm_fault f -> Format.fprintf ppf "VM fault: %a" pp_fault f
  | Budget_exceeded { what; limit; requested } ->
    Format.fprintf ppf "%s budget exceeded: requested %d, cap %d" what
      requested limit
  | Invalid_request msg -> Format.fprintf ppf "invalid request: %s" msg
  | Deadline_exceeded { budget_ms; elapsed_ms } ->
    Format.fprintf ppf
      "deadline exceeded: %d ms budget, %d ms elapsed" budget_ms elapsed_ms
  | Overloaded { depth; limit; retry_after_ms } ->
    Format.fprintf ppf
      "overloaded: request queue full (%d/%d); retry after %d ms" depth
      limit retry_after_ms
  | Rejected_by_estimate { spec; estimate; ceiling } ->
    Format.fprintf ppf
      "rejected by static estimate: %s estimated work %s exceeds \
       ceiling %.0f"
      spec
      (if estimate = infinity then "unbounded"
       else Printf.sprintf "%.0f" estimate)
      ceiling
  | Failed msg -> Format.fprintf ppf "%s" msg
  | Internal msg ->
    Format.fprintf ppf "internal error (escaped exception): %s" msg

let pp ppf t =
  Format.fprintf ppf "[%s" (stage_name t.stage);
  (match t.workload with
  | Some w -> Format.fprintf ppf "/%s" w
  | None -> ());
  Format.fprintf ppf "] %a" pp_cause t.cause

let to_string t = Format.asprintf "%a" pp t

let exit_code t =
  match t.cause with
  | Failed _ | Internal _ -> 1
  | Unknown_workload _ | Unknown_machine _ | Invalid_machine_spec _
  | Unknown_fault _ | Invalid_request _ -> 2
  | Compile_error _ -> 3
  | Vm_fault _ -> 4
  | Budget_exceeded _ -> 5
  | Deadline_exceeded _ -> 6
  | Overloaded _ -> 7
  | Rejected_by_estimate _ -> 8

let cause_name t =
  match t.cause with
  | Unknown_workload _ -> "unknown_workload"
  | Unknown_machine _ -> "unknown_machine"
  | Invalid_machine_spec _ -> "invalid_machine_spec"
  | Unknown_fault _ -> "unknown_fault"
  | Compile_error _ -> "compile_error"
  | Vm_fault _ -> "vm_fault"
  | Budget_exceeded _ -> "budget_exceeded"
  | Invalid_request _ -> "invalid_request"
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Overloaded _ -> "overloaded"
  | Rejected_by_estimate _ -> "rejected_by_estimate"
  | Failed _ -> "failed"
  | Internal _ -> "internal"

(* JSON rendering: the wire shape every server error response carries.
   Kept here so the one place that defines causes also defines their
   serialization — a new cause fails to compile until it renders. *)
let json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_json buf t =
  let field name value =
    json_string buf name;
    Buffer.add_char buf ':';
    value ()
  in
  let str name s = field name (fun () -> json_string buf s) in
  let int name i = field name (fun () -> Buffer.add_string buf (string_of_int i)) in
  let sep () = Buffer.add_char buf ',' in
  Buffer.add_char buf '{';
  str "cause" (cause_name t);
  sep ();
  int "code" (exit_code t);
  sep ();
  str "stage" (stage_name t.stage);
  (match t.workload with
  | Some w ->
    sep ();
    str "workload" w
  | None -> ());
  sep ();
  str "message" (to_string t);
  (* cause-specific structured payload, so clients never parse the
     human message *)
  (match t.cause with
  | Deadline_exceeded { budget_ms; elapsed_ms } ->
    sep ();
    int "budget_ms" budget_ms;
    sep ();
    int "elapsed_ms" elapsed_ms
  | Overloaded { depth; limit; retry_after_ms } ->
    sep ();
    int "depth" depth;
    sep ();
    int "limit" limit;
    sep ();
    int "retry_after_ms" retry_after_ms
  | Rejected_by_estimate { spec; estimate; ceiling } ->
    sep ();
    str "spec" spec;
    sep ();
    field "estimate" (fun () ->
        Buffer.add_string buf
          (if estimate = infinity then "null"
           else Printf.sprintf "%.0f" estimate));
    sep ();
    field "ceiling" (fun () ->
        Buffer.add_string buf (Printf.sprintf "%.0f" ceiling))
  | Budget_exceeded { what; limit; requested } ->
    sep ();
    str "what" what;
    sep ();
    int "limit" limit;
    sep ();
    int "requested" requested
  | Vm_fault f ->
    sep ();
    str "fault_kind" (fault_kind_name f.f_kind);
    sep ();
    int "pc" f.f_pc;
    sep ();
    int "step" f.f_step
  | _ -> ());
  Buffer.add_char buf '}'

(* Damerau-Levenshtein distance (transposition counts as one edit, so
   "akw" suggests "awk"); small strings only. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let d = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do d.(i).(0) <- i done;
  for j = 0 to lb do d.(0).(j) <- j done;
  for i = 1 to la do
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      let best =
        min (min (d.(i).(j - 1) + 1) (d.(i - 1).(j) + 1))
          (d.(i - 1).(j - 1) + cost)
      in
      let best =
        if i > 1 && j > 1 && a.[i - 1] = b.[j - 2] && a.[i - 2] = b.[j - 1]
        then min best (d.(i - 2).(j - 2) + 1)
        else best
      in
      d.(i).(j) <- best
    done
  done;
  d.(la).(lb)

let suggest name candidates =
  let name = String.lowercase_ascii name in
  let scored =
    List.filter_map
      (fun c ->
        let d = edit_distance name (String.lowercase_ascii c) in
        (* close enough to be a typo: at most 1 edit for short names,
           about a third of the length for longer ones *)
        let threshold = max 1 (String.length c / 3) in
        if d <= threshold then Some (d, c) else None)
      candidates
  in
  match List.sort compare scored with
  | (_, best) :: _ -> Some best
  | [] -> None

let guard ?workload stage f =
  try f () with
  | e ->
    let msg = Printexc.to_string e in
    Error (v ?workload stage (Internal msg))

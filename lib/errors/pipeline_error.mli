(** Structured errors for the whole trace pipeline.

    Every stage — compile, execute, trace, analyze, report — expresses
    failure as a value of {!t} instead of an exception, so one bad
    workload degrades one result rather than aborting a bench sweep.
    The type lives below every other library in the dependency order:
    [Vm], [Ilp], [Workloads] and [Harness] all share the same
    vocabulary, and [bin/ilp_limits] maps it onto distinct process exit
    codes.

    Truncated-but-usable executions are not errors.  A trace that ends
    early (fuel, VM fault, analysis budget, injected cut) still yields a
    result; the {!completeness} tag carries the {!fault_info} describing
    where and why the trace ended, and propagates into tables and
    [BENCH_results.json]. *)

(** Why an execution or analysis stopped before a clean [Halt]. *)
type fault_kind =
  | Div_by_zero  (** integer division or remainder by zero *)
  | Mem_out_of_range  (** load or store address outside memory *)
  | Pc_out_of_range  (** control transfer outside the code segment *)
  | Jtab_out_of_range  (** computed-jump index outside its table *)
  | Out_of_fuel  (** instruction budget exhausted (paper-style cap) *)
  | Step_budget  (** analysis step budget reached; suffix dropped *)
  | Trace_cut  (** trace delivery cut (fault injection) *)
  | Injected  (** an injected corruption tripped the VM *)

val fault_kind_name : fault_kind -> string
(** Stable lower-snake name ("div_by_zero", "out_of_fuel", ...). *)

(** Where the pipeline stopped: the faulting pc ([-1] when the stop is
    not tied to one instruction), how many instructions had retired (or
    entries had been analyzed), and a human-readable detail. *)
type fault_info = {
  f_kind : fault_kind;
  f_pc : int;
  f_step : int;
  f_detail : string;
}

val fault : ?pc:int -> ?detail:string -> step:int -> fault_kind -> fault_info

val pp_fault : Format.formatter -> fault_info -> unit

(** Provenance of an analysis result: did it see the whole execution? *)
type completeness =
  | Complete
  | Truncated of fault_info

val pp_completeness : Format.formatter -> completeness -> unit

val completeness_tag : completeness -> string
(** Short table/JSON tag: ["complete"], or the fault-kind name. *)

(** Pipeline stage an error is attributed to. *)
type stage =
  | Lookup  (** resolving workload / machine / fault-kind names *)
  | Compile
  | Execute
  | Analyze
  | Report

val stage_name : stage -> string

type cause =
  | Unknown_workload of { name : string; hint : string option }
  | Unknown_machine of { name : string; hint : string option }
  | Invalid_machine_spec of { spec : string; msg : string }
    (** a composed machine-spec string that failed to parse; [msg] names
        the offending item (and a "did you mean" hint when close) *)
  | Unknown_fault of { name : string; hint : string option }
  | Compile_error of string  (** lexing, parsing, sema, codegen or link *)
  | Vm_fault of fault_info
    (** a fault the caller asked to be fatal (default: faults degrade
        to [Truncated] results instead) *)
  | Budget_exceeded of { what : string; limit : int; requested : int }
    (** a resource guard refused the request up front *)
  | Invalid_request of string  (** malformed arguments *)
  | Deadline_exceeded of { budget_ms : int; elapsed_ms : int }
    (** the request's wall-clock deadline expired (enforced through the
        VM observe hook and at stage boundaries); the work done so far
        is discarded but the process, domain and connection survive *)
  | Overloaded of { depth : int; limit : int; retry_after_ms : int }
    (** load shed: the bounded request queue was full; [retry_after_ms]
        is the server's backoff hint *)
  | Rejected_by_estimate of { spec : string; estimate : float; ceiling : float }
    (** admission control: the static parallelism estimator priced the
        request above the configured ceiling before any execution
        ([estimate] is [infinity] when the bound is unbounded) *)
  | Failed of string  (** a command-level failure (verification, fuzz) *)
  | Internal of string
    (** the last-resort barrier: an exception caught at the pipeline
        boundary; always a bug, never silently dropped *)

type t = {
  stage : stage;
  workload : string option;
  cause : cause;
}

val v : ?workload:string -> stage -> cause -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val exit_code : t -> int
(** Distinct process exit codes per cause class:
    1 = generic failure / internal barrier,
    2 = unknown name or invalid request,
    3 = compile error,
    4 = VM fault,
    5 = resource budget exceeded,
    6 = wall-clock deadline exceeded,
    7 = overloaded (load shed),
    8 = rejected by the static estimate (admission control). *)

val cause_name : t -> string
(** Stable lower-snake tag of the cause class ("deadline_exceeded",
    "overloaded", ...) — the wire protocol's error discriminator. *)

val to_json : Buffer.t -> t -> unit
(** Append the error as one JSON object: [cause], [code], [stage],
    optional [workload], human [message], plus cause-specific structured
    fields (e.g. [retry_after_ms] for [Overloaded]) so clients never
    parse the message text. *)

val json_string : Buffer.t -> string -> unit
(** Append [s] JSON-quoted (shared by the serve protocol renderers). *)

val suggest : string -> string list -> string option
(** [suggest name candidates] is the nearest candidate by edit distance
    when it is close enough to be a plausible typo ("did you mean"). *)

val guard : ?workload:string -> stage -> (unit -> ('a, t) result)
  -> ('a, t) result
(** [guard stage f] runs [f ()], converting any escaped exception into
    an [Internal] error attributed to [stage] — the fault barrier that
    upholds the pipeline invariant {e every input yields either a result
    or a structured error}. *)

let err cause = Error (Pipeline_error.v Execute cause)

let resolve_jobs = function
  | Some j -> j
  | None -> Stdx.Pool.recommended_jobs ()

let validate_jobs = Harness.validate_jobs

let segmenting_of_flag = function
  | None -> Ok `Off
  | Some "auto" -> Ok `Auto
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok (`Steps n)
      | _ ->
          err
            (Invalid_request
               (Printf.sprintf
                  "segment-steps must be a positive integer or \"auto\" \
                   (got %S)"
                  s)))

let scheduler_of_flag = function
  | None -> Ok Stdx.Pool.default_scheduler
  | Some s -> (
      match Stdx.Pool.scheduler_of_string s with
      | Some sched -> Ok sched
      | None ->
          err
            (Invalid_request
               (Printf.sprintf "scheduler must be one of %s (got %S)"
                  (String.concat ", "
                     (List.map fst Stdx.Pool.schedulers))
                  s)))

open Cmdliner

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel fan-out (default: the \
           runtime's recommended domain count; 1 keeps everything on \
           the calling domain).  Output is bit-identical for every \
           value of N.")

let scheduler_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "scheduler" ] ~docv:"NAME"
        ~doc:
          "Domain-pool scheduler: $(b,steal) (per-worker lock-free \
           deques, idle domains steal queued tasks — the default) or \
           $(b,locked) (one central locked queue).  Scheduling only: \
           results are bit-identical under either.")

let default_segment_doc =
  "Shard each workload's trace into $(docv)-instruction segments \
   analyzed in parallel across the $(b,--jobs) domains (decode \
   concurrently, stitch deterministically), so even a single workload \
   saturates the pool.  $(b,auto) derives the stride from trace \
   length and jobs.  Results are bit-identical to the un-segmented \
   run."

let segment_steps_arg ?(doc = default_segment_doc) () =
  Arg.(
    value
    & opt (some string) None
    & info [ "segment-steps" ] ~docv:"N|auto" ~doc)

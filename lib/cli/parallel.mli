(** The one definition of the parallelism command-line surface.

    [run], [serve], [fuzz] and the bench all take the same three
    knobs — [--jobs], [--segment-steps], [--scheduler] — and before
    this module each hand-rolled its own copy of the flags and their
    validation.  Now the flags are declared once (the Cmdliner terms
    below; the bench, which parses argv by hand, reuses the pure
    parsers), and every malformed value takes the same typed error
    path: an [Invalid_request] {!Pipeline_error.t}, exit code 2.

    None of these parsers can affect analysis results: jobs, stride
    and scheduler are scheduling-only by the pool's determinism
    contract. *)

val resolve_jobs : int option -> int
(** An absent [--jobs] means {!Stdx.Pool.recommended_jobs}. *)

val validate_jobs : int -> (int, Pipeline_error.t) result
(** Re-exported {!Harness.validate_jobs}: positive, or the typed
    [Invalid_request] (exit 2). *)

val segmenting_of_flag :
  string option -> (Harness.segmenting, Pipeline_error.t) result
(** [--segment-steps N|auto] → the harness segmenting policy.  [None]
    is [`Off]; anything not a positive integer or ["auto"] is the
    typed [Invalid_request]. *)

val scheduler_of_flag :
  string option -> (Stdx.Pool.scheduler, Pipeline_error.t) result
(** [--scheduler locked|steal] → the pool scheduler.  [None] is
    {!Stdx.Pool.default_scheduler}; an unknown name is the typed
    [Invalid_request] listing the valid ones. *)

(** {2 Cmdliner terms}

    Shared flag declarations, so names, docv and docs cannot drift
    between subcommands.  [segment_steps_arg] takes an optional [doc]
    override because run (per workload) and serve (per request) shard
    different units of work. *)

val jobs_arg : int option Cmdliner.Term.t
val scheduler_arg : string option Cmdliner.Term.t
val segment_steps_arg : ?doc:string -> unit -> string option Cmdliner.Term.t

(** Intra-trace parallel analysis: decode fixed-stride trace segments
    concurrently, replay them sequentially (DESIGN.md §15).

    The per-entry transition of {!Analyze} splits into a state-free
    classification ({!Analyze.decoder} — static flags plus the
    predicted branch direction, pure in [(pc, aux)] for stateless
    predictors) and the state-carrying apply
    ({!Analyze.State.step_bits}).  This module decodes segments of the
    trace on {!Stdx.Pool} domains — concurrently with each other and,
    in streaming mode, with VM retirement — then {e stitches}: per
    machine config, the decoded entries are applied in strict trace
    order, segment by segment in index order.  The apply sequence is
    the sequential run's sequence verbatim, so every result is
    bit-identical to {!Analyze.run_many}, for every machine in the
    lattice, including step-budget cuts and truncated traces.  Multi-
    config calls additionally fan the per-config stitchers out across
    the pool — the dominant speedup for the standard seven-machine
    sweep over a single workload.

    Memory: decoded segments are retained until every stitcher has
    consumed them — roughly 24 bytes per trace entry (pc, aux, bits).
    The default harness traces (1–2M entries) cost tens of MB; feeding
    paper-scale traces through this path should bound the backlog
    (ROADMAP item 5's off-heap encoding). *)

type outcome = {
  results : Analyze.result list;  (** in config order *)
  segments : int;  (** segments decoded *)
  steps : int;  (** segment stride used *)
}

val compatible : Analyze.config list -> bool
(** Can one decode serve all these configs?  Requires a non-empty
    list sharing [inline]/[unroll] and stateless predictors of equal
    name (callers must ensure same-named predictors are behaviorally
    identical — true for harness-built configs, which derive them
    from the same profile).  Stateful predictors (the 2-bit counter)
    train on call order and are never segmentable. *)

val auto_steps : trace_len:int -> jobs:int -> int
(** Static granularity choice for [--segment-steps auto]:
    [trace_len / (4 * jobs)] clamped to [16384, 262144] — a few
    segments per domain per stitch round, floored high enough to
    amortize per-segment task overhead.  The
    [analyze_segment_stitch_wait_ns] histogram is the measurement
    instrument for retuning. *)

val run :
  ?pool:Stdx.Pool.t ->
  ?obs:Obs.Ctx.t ->
  ?span_index_base:int ->
  ?workload:string ->
  ?check:(unit -> unit) ->
  ?completeness:Pipeline_error.completeness ->
  segment_steps:int ->
  Analyze.config list ->
  Program_info.t ->
  Vm.Trace.t ->
  outcome
(** Segmented analysis of a materialized trace.  Without a [pool]
    every stage runs inline on the caller (same results, no
    concurrency — the deterministic reference the fuzzer compares).
    [check] is called per segment on every domain touching one — the
    deadline hook; an exception it raises propagates to the caller.
    [obs] (default disabled) records per-segment decode spans and
    per-config stitch spans into buffers indexed
    [span_index_base + segment]/[span_index_base + segments + config]
    — merged by index, so jobs=N telemetry structure equals
    sequential — plus the [analyze_segments_total] counter and the
    stitch-wait histogram.  Raises [Invalid_argument] if
    [segment_steps < 1] or the configs are not {!compatible}. *)

val sink :
  ?pool:Stdx.Pool.t ->
  ?obs:Obs.Ctx.t ->
  ?span_index_base:int ->
  ?workload:string ->
  ?check:(unit -> unit) ->
  segment_steps:int ->
  Analyze.config list ->
  Program_info.t ->
  Vm.Trace.sink
  * (?completeness:Pipeline_error.completeness -> unit -> outcome)
(** Streaming form, the segmented analogue of {!Analyze.sink_many}:
    feed the sink from a live VM execution — filled segments are
    handed to pool domains for decoding without blocking retirement —
    then call finish, which stitches (and tags results with the
    execution's completeness).  Semantics otherwise as {!run}. *)

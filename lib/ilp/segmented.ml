(* Intra-trace parallel analysis: decode fixed-stride trace segments
   concurrently, replay them sequentially.

   The analyzer's per-entry transition splits into a state-free
   classification (Analyze.decoder: static flags + predicted branch
   direction, pure in (pc, aux) for stateless predictors) and a
   state-carrying apply (Analyze.State.step_bits).  Segmented mode
   decodes whole segments on pool domains and then, per machine
   config, applies the decoded entries in strict trace order — the
   apply sequence is literally the sequential run's sequence, so
   bit-identity with the sequential pass holds by construction, for
   every constraint in the machine lattice (window, flows, fetch,
   value prediction), every budget cut, and every truncated trace.

   Parallelism comes from two places: segment decodes run concurrently
   with each other (and, in streaming mode, with VM retirement), and
   the per-config stitchers fan out across domains — the dominant win
   for the standard multi-machine sweeps, where seven states replay
   the same decoded stream. *)

type outcome = {
  results : Analyze.result list;
  segments : int;  (** segments decoded *)
  steps : int;  (** segment stride used *)
}

let compatible configs =
  match configs with
  | [] -> false
  | (c0 : Analyze.config) :: rest ->
    (* One decode serves every config, so all configs must classify
       entries identically: same inline/unroll masks and a stateless
       predictor with the same behavior.  Predictor behavior is
       compared by name — callers (the harness groups specs by
       predictor kind) must ensure same-named predictors in one call
       are behaviorally identical, which holds because they are built
       from the same program info and profile. *)
    let p0 = c0.predictor in
    (not p0.Predict.Predictor.stateful)
    && List.for_all
         (fun (c : Analyze.config) ->
           c.inline = c0.inline && c.unroll = c0.unroll
           && (not c.predictor.Predict.Predictor.stateful)
           && String.equal c.predictor.Predict.Predictor.name
                p0.Predict.Predictor.name)
         rest

(* Oracle-guided granularity, the cheap static form: segments sized so
   each domain sees a few per stitch round (amortizing task overhead)
   but floored high enough that the per-segment bits array and queue
   traffic stay negligible against the decode itself.  The stitch-wait
   histogram (analyze_segment_stitch_wait_ns) is the measurement
   instrument for tuning these constants. *)
let auto_steps ~trace_len ~jobs =
  let jobs = max 1 jobs in
  let target = trace_len / (4 * jobs) in
  max 1 (min 262_144 (max 16_384 target))

type decoded = {
  d_seg : Vm.Trace.seg;
  d_bits : int array;
}

(* A segment either decoded inline (no pool) or pending on a pool
   domain. *)
type slot =
  | Now of decoded
  | Later of decoded Stdx.Pool.future

type t = {
  configs : Analyze.config array;
  info : Program_info.t;
  pool : Stdx.Pool.t option;
  decode : pc:int -> aux:int -> int;
  obs : Obs.Ctx.t;
  span_base : int;
  workload : string;
  check : unit -> unit;
  steps : int;
  mutable slots : slot list;  (* newest first *)
  mutable n_segments : int;
  (* Metrics, registered only on an enabled context. *)
  m_segments : Obs.Metrics.counter option;
  m_wait : Obs.Metrics.histogram option;
}

let wait_buckets =
  [| 1_000; 10_000; 100_000; 1_000_000; 10_000_000; 100_000_000;
     1_000_000_000 |]

let create ?pool ?(obs = Obs.Ctx.disabled) ?(span_index_base = 0)
    ?(workload = "") ?(check = fun () -> ()) ~segment_steps configs info =
  if segment_steps < 1 then
    invalid_arg "Segmented.create: segment_steps must be >= 1";
  if not (compatible configs) then
    invalid_arg
      "Segmented.create: configs must share inline/unroll and a \
       stateless predictor";
  let enabled = Obs.Ctx.enabled obs in
  let reg = Obs.Ctx.metrics obs in
  { configs = Array.of_list configs;
    info;
    pool;
    decode = Analyze.decoder (List.hd configs) info;
    obs;
    span_base = span_index_base;
    workload;
    check;
    steps = segment_steps;
    slots = [];
    n_segments = 0;
    m_segments =
      (if enabled then
         Some
           (Obs.Metrics.counter reg
              ~help:"trace segments decoded for segmented analysis"
              "analyze_segments_total")
       else None);
    m_wait =
      (if enabled then
         Some
           (Obs.Metrics.histogram reg
              ~help:"stitcher wait for a segment's decode to finish"
              ~buckets:wait_buckets "analyze_segment_stitch_wait_ns")
       else None) }

let decode_seg t (seg : Vm.Trace.seg) =
  t.check ();
  let buf =
    Obs.Ctx.task_buffer t.obs
      ~index:(t.span_base + seg.Vm.Trace.seg_index)
      ~label:
        (Printf.sprintf "%s/segment-%d" t.workload seg.Vm.Trace.seg_index)
  in
  Obs.Span.with_span buf ~workload:t.workload "segment-decode" (fun () ->
      let len = seg.Vm.Trace.seg_len in
      let pcs = seg.Vm.Trace.seg_pcs in
      let auxs = seg.Vm.Trace.seg_auxs in
      let bits = Array.make (max len 1) 0 in
      let decode = t.decode in
      for i = 0 to len - 1 do
        Array.unsafe_set bits i
          (decode ~pc:(Array.unsafe_get pcs i)
             ~aux:(Array.unsafe_get auxs i))
      done;
      { d_seg = seg; d_bits = bits })

(* Feed one segment in: decode it on the pool (concurrently with the
   producer and with other segments) or inline when there is none. *)
let push t seg =
  let slot =
    match t.pool with
    | Some pool -> Later (Stdx.Pool.async pool (fun () -> decode_seg t seg))
    | None -> Now (decode_seg t seg)
  in
  t.slots <- slot :: t.slots;
  t.n_segments <- t.n_segments + 1;
  match t.m_segments with None -> () | Some c -> Obs.Metrics.incr c

let sink_of t = Vm.Trace.segmenting_sink ~steps:t.steps ~emit:(push t)

(* Replay every decoded segment, in index order, through one config's
   state.  This is the sequential analysis loop verbatim — only the
   classification was precomputed. *)
let stitch_one t slots ?completeness ci =
  t.check ();
  let cfg = t.configs.(ci) in
  let st = Analyze.State.create cfg t.info in
  let buf =
    Obs.Ctx.task_buffer t.obs
      ~index:(t.span_base + t.n_segments + ci)
      ~label:(Printf.sprintf "%s/stitch-%d" t.workload ci)
  in
  Obs.Span.with_span buf ~workload:t.workload
    ~machine:cfg.Analyze.machine.Machine.name "segment-stitch" (fun () ->
      Array.iter
        (fun slot ->
          t.check ();
          let d =
            match slot with
            | Now d -> d
            | Later fut -> (
              match t.pool with
              | None -> assert false
              | Some pool -> (
                match t.m_wait with
                | None -> Stdx.Pool.await pool fut
                | Some h ->
                  let t0 = Obs.Span.now_ns () in
                  let d = Stdx.Pool.await pool fut in
                  Obs.Metrics.observe h
                    (Int64.to_int (Int64.sub (Obs.Span.now_ns ()) t0));
                  d))
          in
          let seg = d.d_seg in
          let len = seg.Vm.Trace.seg_len in
          let pcs = seg.Vm.Trace.seg_pcs in
          let auxs = seg.Vm.Trace.seg_auxs in
          let bits = d.d_bits in
          for i = 0 to len - 1 do
            Analyze.State.step_bits st
              ~pc:(Array.unsafe_get pcs i)
              ~aux:(Array.unsafe_get auxs i)
              ~bits:(Array.unsafe_get bits i)
          done)
        slots;
      Analyze.State.finish ?completeness st)

let finish t ?completeness () =
  let slots = Array.of_list (List.rev t.slots) in
  let n = Array.length t.configs in
  let indices = Array.init n Fun.id in
  let results =
    match t.pool with
    | Some pool when n > 1 ->
      (* Per-config stitchers fan out across domains; each awaits the
         shared decode futures as it reaches them (helping with queued
         decodes while it waits, so narrow pools cannot deadlock). *)
      Stdx.Pool.map_array pool (stitch_one t slots ?completeness) indices
    | _ -> Array.map (stitch_one t slots ?completeness) indices
  in
  { results = Array.to_list results;
    segments = t.n_segments;
    steps = t.steps }

let sink ?pool ?obs ?span_index_base ?workload ?check ~segment_steps
    configs info =
  let t =
    create ?pool ?obs ?span_index_base ?workload ?check ~segment_steps
      configs info
  in
  (sink_of t, fun ?completeness () -> finish t ?completeness ())

let run ?pool ?obs ?span_index_base ?workload ?check ?completeness
    ~segment_steps configs info trace =
  let t =
    create ?pool ?obs ?span_index_base ?workload ?check ~segment_steps
      configs info
  in
  Array.iter (push t) (Vm.Trace.segments ~steps:t.steps trace);
  finish t ?completeness ()

type control = Blocking | Control_dep | Speculative | Spec_cd | Oracle

type latency_model =
  | Unit_lat
  | Realistic
  | Custom of (Program_info.lat_class -> int)

type constr =
  | Control of control
  | Flows of int option
  | Window of int option
  | Fetch of int option
  | Latency of latency_model
  | Value_predict of bool

type t = {
  name : string;
  control : control;
  flows : int option;
  window : int option;
  fetch : int option;
  latency : latency_model;
  value_predict : bool;
}

let realistic_latencies = function
  | Program_info.Lat_int -> 1
  | Lat_mul -> 4
  | Lat_div -> 16
  | Lat_mem -> 2
  | Lat_fadd -> 3
  | Lat_fmul -> 5
  | Lat_fdiv -> 19

let latency_fn m =
  match m.latency with
  | Unit_lat -> None
  | Realistic -> Some realistic_latencies
  | Custom f -> Some f

(* The fully-constrained seed every spec folds over: blocking control,
   one flow of control, everything else at the paper's ideal. *)
let seed =
  { name = ""; control = Blocking; flows = Some 1; window = None;
    fetch = None; latency = Unit_lat; value_predict = false }

let control_token = function
  | Blocking -> "base"
  | Control_dep -> "cd"
  | Speculative -> "sp"
  | Spec_cd -> "sp-cd"
  | Oracle -> "oracle"

(* Canonical printing: the (control, flows) pair collapses to a paper
   alias when one exists, then the remaining items follow in a fixed
   order so structurally equal machines always print identically. *)
let to_spec m =
  let buf = Buffer.create 24 in
  let add s =
    if Buffer.length buf > 0 then Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  (match (m.control, m.flows) with
  | Oracle, _ -> add "oracle"
  | Control_dep, None -> add "cd-mf"
  | Spec_cd, None -> add "sp-cd-mf"
  | c, Some 1 -> add (control_token c)
  | c, None ->
    add (control_token c);
    add "mf"
  | c, Some k ->
    add (control_token c);
    add (Printf.sprintf "flows=%d" k));
  if m.value_predict then add "vp";
  (match m.window with
  | Some w -> add (Printf.sprintf "window=%d" w)
  | None -> ());
  (match m.fetch with
  | Some f -> add (Printf.sprintf "fetch=%d" f)
  | None -> ());
  (match m.latency with
  | Unit_lat -> ()
  | Realistic -> add "lat=real"
  | Custom _ -> add "lat=custom");
  Buffer.contents buf

let is_alias_spec s = not (String.contains s ',' || String.contains s '=')

(* Paper machines display uppercase ("SP-CD-MF"); everything else is
   named by its canonical spec, which doubles as the harness cache key,
   so distinct machines get distinct names. *)
let rename m =
  let spec = to_spec m in
  let name =
    if is_alias_spec spec then String.uppercase_ascii spec else spec
  in
  { m with name }

(* Flows bound only serializing branches and the oracle serializes
   none, so normalize the dead bound away: "oracle,flows=2" and
   "oracle" are the same machine and must compare and print equal. *)
let norm m =
  let m = if m.control = Oracle then { m with flows = None } else m in
  rename m

let apply m = function
  | Control c -> { m with control = c }
  | Flows f -> { m with flows = f }
  | Window w -> { m with window = w }
  | Fetch f -> { m with fetch = f }
  | Latency l -> { m with latency = l }
  | Value_predict b -> { m with value_predict = b }

let of_constraints cs = norm (List.fold_left apply seed cs)

let constraints m =
  [ Control m.control; Flows m.flows; Window m.window; Fetch m.fetch;
    Latency m.latency; Value_predict m.value_predict ]

let base = of_constraints [ Control Blocking ]
let cd = of_constraints [ Control Control_dep ]
let cd_mf = of_constraints [ Control Control_dep; Flows None ]
let sp = of_constraints [ Control Speculative ]
let sp_cd = of_constraints [ Control Spec_cd ]
let sp_cd_mf = of_constraints [ Control Spec_cd; Flows None ]
let oracle = of_constraints [ Control Oracle ]

let all_paper = [ base; cd; cd_mf; sp; sp_cd; sp_cd_mf; oracle ]
let paper_names = List.map (fun m -> m.name) all_paper

let with_window w m = norm { m with window = Some w }
let with_flows flows m = norm { m with flows }
let with_fetch fetch m = norm { m with fetch }
let with_value_predict value_predict m = norm { m with value_predict }
let with_latency latency m = norm { m with latency }
let with_latencies f m = with_latency (Custom f) m

(* --- spec parsing ------------------------------------------------- *)

let alias_items =
  [ ("base", [ Control Blocking; Flows (Some 1) ]);
    ("cd", [ Control Control_dep; Flows (Some 1) ]);
    ("cd-mf", [ Control Control_dep; Flows None ]);
    ("sp", [ Control Speculative; Flows (Some 1) ]);
    ("sp-cd", [ Control Spec_cd; Flows (Some 1) ]);
    ("sp-cd-mf", [ Control Spec_cd; Flows None ]);
    ("oracle", [ Control Oracle; Flows None ]) ]

let bare_tokens = List.map fst alias_items @ [ "mf"; "vp" ]
let keys = [ "flows"; "window"; "fetch"; "lat" ]

let grammar =
  "A machine is a comma-separated list of constraint items, applied\n\
   left to right over the fully-constrained seed (blocking control,\n\
   one flow, unlimited window/fetch, unit latencies, no value\n\
   prediction):\n\n\
  \  spec  ::= item (\",\" item)*\n\
  \  item  ::= base | cd | cd-mf | sp | sp-cd | sp-cd-mf | oracle\n\
  \          | mf | vp\n\
  \          | flows=<n> | flows=mf\n\
  \          | window=<n> | window=inf\n\
  \          | fetch=<n> | fetch=inf\n\
  \          | lat=unit | lat=real\n\n\
   Aliases set control discipline and flows; 'mf' lifts the flows\n\
   bound; 'vp' enables last-value prediction (breaks true data\n\
   dependences on predictable instructions).  Example:\n\
  \  sp-cd-mf,vp,window=256,fetch=4"

let parse_nat ~what v =
  match int_of_string_opt v with
  | Some n when n >= 1 -> Ok (Some n)
  | Some n -> Error (Printf.sprintf "%s must be >= 1, got %d" what n)
  | None -> Error (Printf.sprintf "%s expects a number, got %S" what v)

let parse_item tok =
  match String.index_opt tok '=' with
  | None -> (
    match List.assoc_opt tok alias_items with
    | Some items -> Ok items
    | None -> (
      match tok with
      | "mf" -> Ok [ Flows None ]
      | "vp" -> Ok [ Value_predict true ]
      | _ ->
        let hint =
          match Pipeline_error.suggest tok bare_tokens with
          | Some h -> Printf.sprintf " (did you mean %S?)" h
          | None -> ""
        in
        Error (Printf.sprintf "unknown item %S%s" tok hint)))
  | Some i -> (
    let key = String.sub tok 0 i in
    let v = String.sub tok (i + 1) (String.length tok - i - 1) in
    match key with
    | "flows" ->
      if v = "mf" || v = "inf" then Ok [ Flows None ]
      else
        Result.map (fun n -> [ Flows n ]) (parse_nat ~what:"flows" v)
    | "window" ->
      if v = "inf" then Ok [ Window None ]
      else
        Result.map (fun n -> [ Window n ]) (parse_nat ~what:"window" v)
    | "fetch" ->
      if v = "inf" then Ok [ Fetch None ]
      else Result.map (fun n -> [ Fetch n ]) (parse_nat ~what:"fetch" v)
    | "lat" -> (
      match v with
      | "unit" -> Ok [ Latency Unit_lat ]
      | "real" | "realistic" -> Ok [ Latency Realistic ]
      | _ -> Error (Printf.sprintf "lat expects unit|real, got %S" v))
    | _ ->
      let hint =
        match Pipeline_error.suggest key keys with
        | Some h -> Printf.sprintf " (did you mean %S?)" h
        | None -> ""
      in
      Error (Printf.sprintf "unknown key %S%s" key hint))

let of_spec s =
  let canon = String.lowercase_ascii (String.trim s) in
  let fail msg =
    (* A plain name that is not an alias reads as a typo'd machine
       name; anything with commas or '=' is a malformed spec. *)
    if is_alias_spec canon then
      let hint = Pipeline_error.suggest canon bare_tokens in
      Error
        (Pipeline_error.v Pipeline_error.Lookup
           (Pipeline_error.Unknown_machine { name = s; hint }))
    else
      Error
        (Pipeline_error.v Pipeline_error.Lookup
           (Pipeline_error.Invalid_machine_spec { spec = s; msg }))
  in
  if canon = "" then fail "empty spec"
  else
    let items = String.split_on_char ',' canon in
    let rec go acc = function
      | [] -> Ok (of_constraints (List.rev acc))
      | tok :: rest -> (
        match parse_item (String.trim tok) with
        | Ok cs -> go (List.rev_append cs acc) rest
        | Error msg -> fail msg)
    in
    go [] items

let of_specs = function
  | [] -> Ok all_paper
  | names ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
        match of_spec n with
        | Ok m -> go (m :: acc) rest
        | Error _ as e -> e)
    in
    go [] names

(* --- lattice ------------------------------------------------------ *)

let control_leq a b =
  match (a, b) with
  | x, y when x = y -> true
  | Blocking, _ -> true
  | _, Oracle -> true
  | Control_dep, Spec_cd | Speculative, Spec_cd -> true
  | _ -> false

(* None = unbounded; a smaller bound is more constrained. *)
let bound_leq a b =
  match (a, b) with
  | _, None -> true
  | None, Some _ -> false
  | Some x, Some y -> x <= y

let latency_leq a b =
  match (a, b) with
  | Unit_lat, Unit_lat | Realistic, Realistic -> true
  | Custom f, Custom g -> f == g
  | _ -> false

let leq a b =
  control_leq a.control b.control
  && bound_leq a.flows b.flows
  && bound_leq a.window b.window
  && bound_leq a.fetch b.fetch
  && latency_leq a.latency b.latency
  && (b.value_predict || not a.value_predict)

(* --- fuzz --------------------------------------------------------- *)

let random bits =
  let bit k = (bits lsr k) land 1 = 1 in
  let control =
    match (bits lsr 1) land 7 with
    | 0 | 5 -> Blocking
    | 1 -> Control_dep
    | 2 -> Speculative
    | 3 | 6 -> Spec_cd
    | _ -> Oracle
  in
  let flows =
    match (bits lsr 4) land 3 with
    | 0 -> Some 1
    | 1 -> Some (1 + ((bits lsr 6) land 7))
    | _ -> None
  in
  let window =
    if bit 9 then Some (1 lsl (3 + ((bits lsr 10) land 7))) else None
  in
  let fetch = if bit 13 then Some (1 + ((bits lsr 14) land 15)) else None in
  let latency = if bit 18 then Realistic else Unit_lat in
  let value_predict = bit 19 in
  norm { seed with control; flows; window; fetch; latency; value_predict }

let describe m =
  let opt = function Some n -> string_of_int n | None -> "unbounded" in
  Printf.sprintf
    "control=%s flows=%s window=%s fetch=%s lat=%s vp=%s"
    (match m.control with
    | Blocking -> "blocking"
    | Control_dep -> "cd"
    | Speculative -> "sp"
    | Spec_cd -> "sp+cd"
    | Oracle -> "oracle")
    (opt m.flows) (opt m.window) (opt m.fetch)
    (match m.latency with
    | Unit_lat -> "unit"
    | Realistic -> "real"
    | Custom _ -> "custom")
    (if m.value_predict then "on" else "off")

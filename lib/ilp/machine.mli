(** Compositional abstract machine models (paper §3, extended).

    The paper studies seven machines; here a machine is the meet of a
    list of {e constraint combinators}, and the seven are just named
    points in a much larger lattice.  A constraint only ever removes
    scheduling freedom, so composing more of them can never increase
    the measured parallelism (see {!leq}).

    The dimensions:

    - {e control discipline} — how branch outcomes constrain issue:
      blocking (every branch serializes), control-dependence, speculative
      execution, both combined, or the oracle (no control constraints);
    - {e flows} — how many flows of control advance per cycle.  [Some 1]
      is a von Neumann uniprocessor; [None] is the MF limit;
    - {e window} — finite scheduling window (paper §7 ablation);
    - {e fetch} — instructions fetched per cycle: instruction [i] of the
      trace cannot issue before cycle [i/f + 1] (Ramachandran & Johnson's
      variable-fetch-rate axis);
    - {e latency} — unit (the paper's idealization) or a realistic set;
    - {e value prediction} — a trained last-value predictor breaks true
      data dependences on instructions whose results are predictable
      (Mitrevski & Gušev's axis); see {!Predict.Value}.

    Machines are written and parsed as comma-separated spec strings,
    e.g. ["sp-cd-mf,vp,window=256,fetch=4"]; the paper machines are the
    aliases [base], [cd], [cd-mf], [sp], [sp-cd], [sp-cd-mf], [oracle]. *)

(** Control discipline, from most to least constrained (except that
    [Control_dep] and [Speculative] are incomparable). *)
type control =
  | Blocking  (** every conditional branch blocks everything after it *)
  | Control_dep  (** wait only for branches we are control dependent on *)
  | Speculative  (** only mispredicted branches constrain execution *)
  | Spec_cd  (** speculation + control dependence combined *)
  | Oracle  (** perfect knowledge: no control constraints at all *)

type latency_model =
  | Unit_lat  (** every instruction takes one cycle (the paper) *)
  | Realistic  (** {!realistic_latencies} *)
  | Custom of (Program_info.lat_class -> int)
      (** arbitrary table; prints as [lat=custom] and is not parseable *)

(** One constraint combinator.  A machine is a fold of these over the
    fully-constrained seed (blocking control, one flow, everything else
    idealized); later combinators override earlier ones per dimension. *)
type constr =
  | Control of control
  | Flows of int option  (** [None] = unbounded (the MF limit) *)
  | Window of int option  (** [None] = unlimited scheduling window *)
  | Fetch of int option  (** [None] = unlimited fetch rate *)
  | Latency of latency_model
  | Value_predict of bool

type t = private {
  name : string;  (** display name: paper alias or canonical spec *)
  control : control;
  flows : int option;
  window : int option;
  fetch : int option;
  latency : latency_model;
  value_predict : bool;
}

val of_constraints : constr list -> t
(** Fold the combinators over the seed machine.  The result is
    normalized (an oracle machine has no flows bound — flows only
    constrain serializing branches, of which the oracle has none) and
    carries its canonical name. *)

val constraints : t -> constr list
(** Decompose back into combinators such that
    [of_constraints (constraints m) = m]. *)

(** {2 The seven paper machines} *)

val base : t
val cd : t
val cd_mf : t
val sp : t
val sp_cd : t
val sp_cd_mf : t
val oracle : t

val all_paper : t list
(** The seven machines, in the paper's Table 3 column order. *)

val paper_names : string list
(** Display names of {!all_paper}, in order. *)

(** {2 Spec strings} *)

val to_spec : t -> string
(** Canonical spec string.  Aliases print as themselves ([to_spec sp_cd
    = "sp-cd"]); composed machines print their items in a fixed order so
    equal machines always print equally.  [Custom] latency prints as the
    non-parseable [lat=custom]. *)

val of_spec : string -> (t, Pipeline_error.t) result
(** Parse a machine name or spec string (case-insensitive).  A bare
    paper alias resolves to the named machine; otherwise the string is
    parsed as comma-separated constraint items:

    {v
    spec  ::= item ("," item)*
    item  ::= base | cd | cd-mf | sp | sp-cd | sp-cd-mf | oracle
            | mf | vp
            | flows=<n>|mf  | window=<n>|inf
            | fetch=<n>|inf | lat=unit|real
    v}

    Round-trip: [of_spec (to_spec m) = Ok m] for any [m] without
    [Custom] latencies.  Failures are typed: an unknown bare name is
    [Unknown_machine] (with a did-you-mean hint), a malformed composed
    spec is [Invalid_machine_spec]. *)

val of_specs : string list -> (t list, Pipeline_error.t) result
(** Resolve a list of names/specs; the empty list means {!all_paper}.
    The shared implementation behind the CLI, harness and bench. *)

val grammar : string
(** Human-readable description of the spec grammar (for [--help] and
    the [machines] subcommand). *)

val describe : t -> string
(** One-line expansion of every dimension, e.g.
    ["control=spec+cd flows=unbounded window=256 fetch=4 lat=unit vp=on"]. *)

(** {2 Lattice order} *)

val leq : t -> t -> bool
(** [leq a b]: [a] is at least as constrained as [b] in every dimension
    (a partial order).  Guarantees [cycles a >= cycles b] — and, since
    latencies must agree for comparability, [parallelism a <=
    parallelism b] — on every trace. *)

(** {2 Derived helpers} *)

val with_window : int -> t -> t
val with_flows : int option -> t -> t
val with_fetch : int option -> t -> t
val with_value_predict : bool -> t -> t
val with_latency : latency_model -> t -> t

val with_latencies : (Program_info.lat_class -> int) -> t -> t
(** [with_latency (Custom f)]. *)

val latency_fn : t -> (Program_info.lat_class -> int) option
(** The latency table to evaluate under, [None] for unit latencies. *)

val realistic_latencies : Program_info.lat_class -> int
(** A representative early-90s latency set: int 1, load/store 2, mul 4,
    div 16, FP add 3, FP mul 5, FP div 19. *)

val random : int -> t
(** Deterministic machine from a seed's bits — the fuzz harness draws
    random lattice points through this.  Never produces [Custom]
    latencies, so the result always round-trips through {!to_spec}. *)

(** Static program information consumed by the limit analyzer.

    Built once per program by {!make} (or {!of_flat}); every per-pc fact
    the analyzer's inner loop needs — instruction kind, block boundary,
    inline/unroll removal eligibility, memory behaviour — is packed into
    a single [flags] word per instruction so that a streaming pass over
    the trace re-derives nothing.  Unit tests construct small synthetic
    programs through {!make} directly. *)

(** Latency class, used only by the non-unit-latency ablation. *)
type lat_class =
  | Lat_int  (** simple integer ALU, branches, moves *)
  | Lat_mul
  | Lat_div
  | Lat_mem  (** loads and stores *)
  | Lat_fadd  (** FP add/sub/compare/convert *)
  | Lat_fmul
  | Lat_fdiv

type mem_kind = No_mem | Mem_load | Mem_store

(** Bits of the packed per-pc [flags] word. *)
val f_cond_branch : int
val f_computed_jump : int
val f_call : int
val f_ret : int
val f_stop : int
val f_block_start : int
(** first instruction of its basic block *)

val f_sp_adjust : int
(** writes the stack pointer: removed by inlining *)

val f_loop_overhead : int
(** loop overhead: removed by unrolling *)

val f_mem_load : int
val f_mem_store : int

type t = private {
  n : int;  (** number of static instructions *)
  kind : Risc.Insn.kind array;
  uses : int array array;  (** unified register ids read *)
  defs : int array array;  (** unified register ids written *)
  mem : mem_kind array;
  sp_adjust : bool array;
  (** writes the stack pointer: removed by perfect inlining *)
  loop_overhead : bool array;
  (** loop index/induction overhead: removed by perfect unrolling *)
  lat : lat_class array;
  block_of : int array;  (** instruction -> global block id *)
  block_start : int array;  (** per block: first instruction *)
  n_blocks : int;
  rdf : int array array;
  (** per block: blocks whose terminating branches it is immediately
      control dependent on *)
  flags : int array;
  (** packed per-pc static facts; an OR of the [f_*] bits above,
      derived once from the fields before it *)
}

val make :
  kind:Risc.Insn.kind array ->
  uses:int array array ->
  defs:int array array ->
  mem:mem_kind array ->
  sp_adjust:bool array ->
  loop_overhead:bool array ->
  lat:lat_class array ->
  block_of:int array ->
  block_start:int array ->
  n_blocks:int ->
  rdf:int array array ->
  t
(** Assemble a program description and compute the packed [flags]
    side-table.  All arrays indexed by pc must have the length of
    [kind]. *)

val of_flat : Asm.Program.flat -> Cfg.Analysis.t -> t

val analyze_flat : Asm.Program.flat -> t
(** [of_flat] composed with {!Cfg.Analysis.analyze}. *)

val is_cond_branch : t -> int -> bool

val flags_string : t -> int -> string
(** Fixed-width rendering of the packed flags of one pc, for annotated
    listings: [B] block start; one of [c]/[j]/[C]/[R]/[H] for
    conditional branch, computed jump, call, return, halt; [O] loop
    overhead; [S] sp adjustment; [l]/[s] memory load/store.  Unset
    positions print as [.] — e.g. ["Bc.O."] is a block-leading
    loop-overhead conditional branch. *)

val branch_backward : Asm.Program.flat -> int -> bool
(** Is the conditional branch at this pc backward (target <= pc)?  Used
    by the BTFN predictor. *)

(** The trace-driven limit analyzer (paper §4.4).

    One pass over a dynamic trace assigns each counted instruction an
    execution cycle [t = 1 + max(constraints)], where the constraints
    are:

    - true data dependences: the completion times of the last writers of
      the registers read and, for loads, of the last store to the same
      address (perfect disambiguation via trace addresses; anti- and
      output dependences are ignored — a store only {e sets} the
      address's time);
    - the machine's control-flow constraint (see {!Machine});
    - for serializing branches on a machine with [k] flows of control,
      availability of a flow (one serializing branch per flow per
      cycle);
    - optionally, a finite scheduling window;
    - optionally, a finite fetch rate: the [i]-th counted instruction
      cannot issue before cycle [i/f + 1] on an [f]-wide machine.

    A machine with the value-prediction constraint additionally breaks
    true register data dependences on instructions a trained last-value
    predictor marks predictable (see {!Predict.Value}): their results
    count as available immediately, while the producer itself still
    occupies its cycles (it must execute to validate the prediction).

    Simulated transformations:

    - {e perfect inlining} removes calls, returns and stack-pointer
      adjustments from the timed trace; callee instructions inherit the
      call site's control dependence through an interprocedural stack,
      with the paper's recursion cutoff (control dependence dropped when
      an RDF instance stems from a newer procedure activation);
    - {e perfect unrolling} removes loop-overhead instructions; a
      removed loop branch passes its own control-dependence constraint
      through to its dependents, so unrolling an inner loop leaves the
      body control dependent on the enclosing loop's branch.

    Parallelism is (sequential cycles) / (parallel cycles); with unit
    latencies the sequential cycles equal the number of counted
    instructions, exactly as in the paper.

    The analysis is incremental: a {!State.t} consumes one trace entry
    at a time, so any number of machine models advance together over a
    single trace pass ({!run_many}) or directly over a live VM
    execution ({!sink_many}) without the trace ever being materialized. *)

type config = {
  machine : Machine.t;
  inline : bool;
  unroll : bool;
  predictor : Predict.Predictor.t;
  collect_segments : bool;
  (** record inter-misprediction segments (Figures 6 and 7) *)
  mem_words : int;  (** sizing hint for the memory last-write table *)
  step_budget : int option;
  (** resource guard: analyze at most this many counted instructions,
      then drop the rest of the trace and tag the result
      [Truncated Step_budget] instead of running unboundedly *)
  value_table : bool array option;
  (** per static pc: last-value predictable (from
      {!Predict.Value.table}).  Consulted only when the machine has the
      [vp] constraint; a missing or undersized table (no training ran)
      disables value prediction rather than failing. *)
  probe : Obs.Probe.analyzer;
  (** profiling hooks: entries/counted/flushed tallies, predictor
      hits/misses, frame-stack depth high-water and a sampled depth
      histogram, published to the probe's registry when the state
      finishes.  Disabled (the default) it costs the per-entry hot
      path one hoisted bool test, and results are byte-identical
      either way. *)
}

val config :
  ?inline:bool ->
  ?unroll:bool ->
  ?collect_segments:bool ->
  ?mem_words:int ->
  ?step_budget:int ->
  ?value_table:bool array ->
  ?probe:Obs.Probe.analyzer ->
  Machine.t ->
  Predict.Predictor.t ->
  config
(** Defaults: [inline = true], [unroll = true],
    [collect_segments = false], no step budget, no value table, probe
    disabled. *)

val decoder : config -> Program_info.t -> pc:int -> aux:int -> int
(** State-free per-entry classification: the returned word packs the
    static instruction's {!Program_info} flags plus a
    mispredicted-branch marker (from the config's predictor) and an
    invalid-pc marker.  Classification depends only on the config's
    [inline]/[unroll] masks and its predictor — for a {e stateless}
    predictor it is pure in [(pc, aux)], so entries may be classified
    in any order (concurrently, per segment) and replayed through
    {!State.step_bits} in trace order.  An out-of-range pc does not
    raise here: the marker defers the [Invalid_argument] to the apply
    step, preserving sequential semantics when a step budget cuts the
    trace first. *)

(** A run of counted instructions between two consecutive mispredicted
    branches (the closing branch included).  [length] is the paper's
    misprediction distance; [length/cycles] its degree of parallelism. *)
type segment = {
  length : int;
  cycles : int;
}

type result = {
  machine : string;
  counted : int;  (** counted (timed) trace instructions *)
  seq_cycles : int;  (** sequential time; [counted] under unit latency *)
  cycles : int;  (** parallel execution time *)
  parallelism : float;
  dyn_branches : int;  (** dynamic conditional branches counted *)
  mispredicts : int;  (** mispredicted dynamic branches (incl. computed jumps) *)
  segments : segment array;  (** empty unless [collect_segments] *)
  completeness : Pipeline_error.completeness;
  (** provenance: [Complete] when the analyzed trace covers a halted
      execution; [Truncated] (with the fault descriptor) when the trace
      ended early — fuel, VM fault, injected cut, or this config's own
      step budget.  Numbers from a truncated trace are still exact for
      the prefix they cover. *)
}

(** Incremental per-machine analysis state.  Stateful predictors (e.g.
    the 2-bit counter) must not be shared between simultaneously
    advancing states: give each config its own instance. *)
module State : sig
  type t

  val create : config -> Program_info.t -> t

  val step : t -> pc:int -> aux:int -> unit
  (** Consume one trace entry.  Entries must arrive in trace order.
      Entries past the config's [step_budget] are dropped. *)

  val step_bits : t -> pc:int -> aux:int -> bits:int -> unit
  (** [step] with the entry's classification precomputed by the
      {!decoder} of a config with the same [inline]/[unroll] settings
      and a predictor with identical behavior.  The per-entry
      transition is the same code path as [step] — feeding every entry
      of a trace through [step_bits] in order yields results
      bit-identical to [step].  This is the replay half of segmented
      analysis: decode segments concurrently, then apply here in trace
      order. *)

  val finish : ?completeness:Pipeline_error.completeness -> t -> result
  (** Close the analysis (flushing a trailing inter-misprediction
      segment) and report.  Call once, after the last [step].
      [completeness] (default [Complete]) describes how the {e
      execution} that produced the trace ended; a step-budget cut
      recorded by this state takes precedence over it. *)
end

val run :
  ?completeness:Pipeline_error.completeness ->
  config -> Program_info.t -> Vm.Trace.t -> result

val run_many :
  ?completeness:Pipeline_error.completeness ->
  config list -> Program_info.t -> Vm.Trace.t -> result list
(** Advance one state per config over a {e single} pass of the trace;
    results are in config order.  Numerically identical to mapping
    {!run} over the configs, but reads the trace once.  [completeness]
    tags every result with how the traced execution ended. *)

val sink_many :
  config list -> Program_info.t ->
  Vm.Trace.sink
  * (?completeness:Pipeline_error.completeness -> unit -> result list)
(** [sink_many configs info] is [(sink, finish)]: feed trace entries to
    [sink] (e.g. pass it to [Vm.Exec.run ~sink]) and call [finish]
    afterwards (passing the execution's completeness, if it was not a
    clean halt).  This is {!run_many} without a materialized trace:
    memory stays O(program + touched addresses + scheduling window)
    regardless of trace length. *)

type component = { c_name : string; c_value : float }

type t = {
  spec : string;
  bound : float;
  limiting : string option;
  components : component list;
}

let max_latency (info : Program_info.t) (m : Machine.t) =
  match Machine.latency_fn m with
  | None -> 1
  | Some f ->
    let lmax = ref 1 in
    Array.iter (fun cls -> lmax := max !lmax (f cls)) info.lat;
    !lmax

let compile (est : Cfg.Estimate.t) (info : Program_info.t)
    (m : Machine.t) =
  let lmax = float_of_int (max_latency info m) in
  let mrun = Cfg.Estimate.bound_to_float est.max_run in
  let fetch =
    match m.fetch with
    | Some f -> float_of_int f *. lmax
    | None -> infinity
  in
  let control =
    match (m.control, m.flows) with
    | Machine.Blocking, _ -> mrun *. lmax
    | Control_dep, Some k -> float_of_int (k + 1) *. mrun *. lmax
    | Control_dep, None | Speculative, _ | Spec_cd, _ | Oracle, _ ->
      infinity
  in
  (* the analyzer's window never forces progress (it bounds issue
     times against issue times), so it cannot bound parallelism *)
  let window = infinity in
  let components =
    [ { c_name = "fetch"; c_value = fetch };
      { c_name = "control"; c_value = control };
      { c_name = "window"; c_value = window } ]
  in
  let bound, limiting =
    List.fold_left
      (fun (b, l) c ->
        if c.c_value < b then (c.c_value, Some c.c_name) else (b, l))
      (infinity, None) components
  in
  { spec = Machine.to_spec m; bound; limiting; components }

let value_to_string v =
  if v = infinity then "unbounded"
  else if Float.is_integer v then string_of_int (int_of_float v)
  else Printf.sprintf "%.1f" v

let pp ppf t =
  Format.fprintf ppf "%s: bound %s" t.spec (value_to_string t.bound);
  match t.limiting with
  | Some l -> Format.fprintf ppf " (%s-limited)" l
  | None -> ()

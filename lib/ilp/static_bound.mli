(** Static oracle-parallelism upper bounds per machine lattice point.

    Compiles the machine-independent facts of {!Cfg.Estimate} against
    an {!Machine} spec into a sound upper bound on the parallelism the
    dynamic analyzer ({!Analyze}) can ever measure for that machine,
    on any trace of the program.  Parallelism is [seq_cycles /
    max_time] with [seq_cycles <= N * Lmax] ([N] counted instructions,
    [Lmax] the machine's largest latency over classes present in the
    code), so each constraint that forces [max_time] up yields a
    component bound:

    - {e fetch = f}: the i-th counted instruction issues no earlier
      than cycle [i/f + 1], so [max_time >= N/f] and parallelism
      [<= f * Lmax];
    - {e blocking control}: every instruction waits for the completion
      of the last breaker, breaker completions strictly increase, and
      no run between breakers exceeds [M] counted instructions
      ({!Cfg.Estimate.t.max_run}), giving [<= M * Lmax];
    - {e control dependence with k flows}: per-flow breaker
      completions strictly increase, the analyzer picks the best of
      [k] flows, and [B] breakers force [max_time >= ceil(B/k)];
      maximizing [(B+1) * M / ceil(B/k)] over [B] gives
      [<= (k+1) * M * Lmax];
    - {e speculation / oracle}: only mispredicted (resp. no) branches
      serialize; a program may run with zero mispredictions, so no
      static control bound exists;
    - {e window = w}: contributes {e no} static bound in this
      analyzer: the window tracks {e issue} times ([t_i >=
      t_(i-w)], without forcing progress), so w-independent
      instructions can all issue in cycle 1.  Folding [w] in would be
      unsound, and the property tests would catch it.

    The machine bound is the minimum over component bounds; machines
    whose constraints all sit at the ideal (e.g. the oracle with
    unlimited fetch) are statically unbounded, exactly as the paper's
    oracle is meant to be. *)

type component = {
  c_name : string;  (** "fetch", "control", "window" *)
  c_value : float;  (** [infinity] when the constraint does not bound *)
}

type t = {
  spec : string;  (** canonical machine spec *)
  bound : float;  (** min over components; [infinity] if none binds *)
  limiting : string option;  (** name of the binding component *)
  components : component list;
}

val max_latency : Program_info.t -> Machine.t -> int
(** Largest latency the machine assigns to any latency class present
    in the program (1 under unit latency). *)

val compile : Cfg.Estimate.t -> Program_info.t -> Machine.t -> t

val pp : Format.formatter -> t -> unit

val value_to_string : float -> string
(** ["unbounded"] for [infinity], else the number (integral floats
    print bare). *)

type lat_class =
  | Lat_int
  | Lat_mul
  | Lat_div
  | Lat_mem
  | Lat_fadd
  | Lat_fmul
  | Lat_fdiv

type mem_kind = No_mem | Mem_load | Mem_store

let f_cond_branch = 1
let f_computed_jump = 2
let f_call = 4
let f_ret = 8
let f_stop = 16
let f_block_start = 32
let f_sp_adjust = 64
let f_loop_overhead = 128
let f_mem_load = 256
let f_mem_store = 512

type t = {
  n : int;
  kind : Risc.Insn.kind array;
  uses : int array array;
  defs : int array array;
  mem : mem_kind array;
  sp_adjust : bool array;
  loop_overhead : bool array;
  lat : lat_class array;
  block_of : int array;
  block_start : int array;
  n_blocks : int;
  rdf : int array array;
  flags : int array;
}

let pack_flags ~kind ~mem ~sp_adjust ~loop_overhead ~block_of ~block_start =
  Array.init (Array.length kind) (fun pc ->
      let k =
        match kind.(pc) with
        | Risc.Insn.Cond_branch -> f_cond_branch
        | Computed_jump -> f_computed_jump
        | Call -> f_call
        | Ret -> f_ret
        | Stop -> f_stop
        | Plain | Jump -> 0
      in
      let m =
        match mem.(pc) with
        | No_mem -> 0
        | Mem_load -> f_mem_load
        | Mem_store -> f_mem_store
      in
      k lor m
      lor (if pc = block_start.(block_of.(pc)) then f_block_start else 0)
      lor (if sp_adjust.(pc) then f_sp_adjust else 0)
      lor if loop_overhead.(pc) then f_loop_overhead else 0)

let make ~kind ~uses ~defs ~mem ~sp_adjust ~loop_overhead ~lat ~block_of
    ~block_start ~n_blocks ~rdf =
  let n = Array.length kind in
  let check name a =
    if Array.length a <> n then
      invalid_arg (Printf.sprintf "Program_info.make: |%s| <> |kind|" name)
  in
  check "uses" uses;
  check "defs" defs;
  check "mem" mem;
  check "sp_adjust" sp_adjust;
  check "loop_overhead" loop_overhead;
  check "lat" lat;
  check "block_of" block_of;
  { n; kind; uses; defs; mem; sp_adjust; loop_overhead; lat; block_of;
    block_start; n_blocks; rdf;
    flags =
      pack_flags ~kind ~mem ~sp_adjust ~loop_overhead ~block_of ~block_start }

let lat_class_of (insn : int Risc.Insn.t) =
  match insn with
  | Alu (Mul, _, _, _) | Alui (Mul, _, _, _) -> Lat_mul
  | Alu ((Div | Rem), _, _, _) | Alui ((Div | Rem), _, _, _) -> Lat_div
  | Lw _ | Sw _ | Flw _ | Fsw _ -> Lat_mem
  | Falu (Fmul, _, _, _) -> Lat_fmul
  | Falu (Fdiv, _, _, _) -> Lat_fdiv
  | Falu ((Fadd | Fsub), _, _, _) | Fcmp _ | Fmov _ | I2f _ | F2i _
  | Fli _ ->
    Lat_fadd
  | Alu _ | Alui _ | Li _ | Movn _ | B _ | Bi _ | J _ | Jal _ | Jr _
  | Jtab _ | Halt ->
    Lat_int

let of_flat (flat : Asm.Program.flat) (cfg : Cfg.Analysis.t) =
  let g = cfg.graph in
  let n_blocks = Array.length g.blocks in
  make
    ~kind:(Array.map Risc.Insn.kind flat.code)
    ~uses:(Array.map (fun i -> Array.of_list (Risc.Insn.uses i)) flat.code)
    ~defs:(Array.map (fun i -> Array.of_list (Risc.Insn.defs i)) flat.code)
    ~mem:
      (Array.map
         (fun i ->
           if Risc.Insn.is_load i then Mem_load
           else if Risc.Insn.is_store i then Mem_store
           else No_mem)
         flat.code)
    ~sp_adjust:(Array.map Risc.Insn.writes_sp flat.code)
    ~loop_overhead:cfg.loops.overhead
    ~lat:(Array.map lat_class_of flat.code)
    ~block_of:g.block_of
    ~block_start:(Array.map (fun b -> b.Cfg.Graph.start) g.blocks)
    ~n_blocks ~rdf:cfg.rdf

let analyze_flat flat = of_flat flat (Cfg.Analysis.analyze flat)

let is_cond_branch info pc = info.kind.(pc) = Risc.Insn.Cond_branch

let flags_string info pc =
  let f = info.flags.(pc) in
  let has bit = f land bit <> 0 in
  let b = Bytes.make 5 '.' in
  if has f_block_start then Bytes.set b 0 'B';
  Bytes.set b 1
    (if has f_cond_branch then 'c'
     else if has f_computed_jump then 'j'
     else if has f_call then 'C'
     else if has f_ret then 'R'
     else if has f_stop then 'H'
     else '.');
  if has f_loop_overhead then Bytes.set b 2 'O';
  if has f_sp_adjust then Bytes.set b 3 'S';
  if has f_mem_load then Bytes.set b 4 'l';
  if has f_mem_store then Bytes.set b 4 's';
  Bytes.to_string b

let branch_backward (flat : Asm.Program.flat) pc =
  match flat.code.(pc) with
  | Risc.Insn.B (_, _, _, target) | Risc.Insn.Bi (_, _, _, target) ->
    target <= pc
  | _ -> false

type config = {
  machine : Machine.t;
  inline : bool;
  unroll : bool;
  predictor : Predict.Predictor.t;
  collect_segments : bool;
  mem_words : int;
  step_budget : int option;
  value_table : bool array option;
  probe : Obs.Probe.analyzer;
}

let config ?(inline = true) ?(unroll = true) ?(collect_segments = false)
    ?(mem_words = 1024) ?step_budget ?value_table
    ?(probe = Obs.Probe.analyzer_disabled) machine predictor =
  { machine; inline; unroll; predictor; collect_segments; mem_words;
    step_budget; value_table; probe }

(* Per-config masks over the packed Program_info flags.  Shared between
   the sequential state and the segment decoder so both classify
   entries with exactly the same tests. *)
let removed_mask_of (cfg : config) =
  Program_info.f_stop
  lor (if cfg.inline then
         Program_info.f_call lor Program_info.f_ret
         lor Program_info.f_sp_adjust
       else 0)
  lor if cfg.unroll then Program_info.f_loop_overhead else 0

let cjump_mask_of (cfg : config) =
  Program_info.f_computed_jump
  lor if cfg.inline then 0 else Program_info.f_ret

(* Decoded-entry bits: the static instruction's Program_info flags
   (bits 0..9) plus two markers the state-free classification adds.
   [b_mispred] — this dynamic conditional branch is mispredicted by the
   config's predictor.  [b_invalid] — the pc lies outside the code
   segment; classification must not raise (a step budget may cut the
   trace before the bad entry is ever consumed), so the error is
   recorded and re-raised only when the entry is applied. *)
let b_mispred = 1024
let b_invalid = 2048

let classify ~n_code ~flags ~removed_mask ~predict ~pc ~aux =
  if pc < 0 || pc >= n_code then b_invalid
  else begin
    let f = Array.unsafe_get flags pc in
    if f land removed_mask <> 0 then f
    else if f land Program_info.f_cond_branch <> 0 then begin
      let taken = aux = 1 in
      if predict ~pc ~taken <> taken then f lor b_mispred else f
    end
    else f
  end

let decoder (cfg : config) (info : Program_info.t) =
  let n_code = info.Program_info.n in
  let flags = info.Program_info.flags in
  let removed_mask = removed_mask_of cfg in
  let predict = cfg.predictor.Predict.Predictor.predict in
  fun ~pc ~aux -> classify ~n_code ~flags ~removed_mask ~predict ~pc ~aux

type segment = {
  length : int;
  cycles : int;
}

type result = {
  machine : string;
  counted : int;
  seq_cycles : int;
  cycles : int;
  parallelism : float;
  dyn_branches : int;
  mispredicts : int;
  segments : segment array;
  completeness : Pipeline_error.completeness;
}

(* Last-write table for memory.  Paged so the footprint is proportional
   to the addresses actually touched: the VM's address space is 2M
   words, but a workload touches only its data segment (low addresses)
   and stack (top of memory).  A flat 16MB array per machine model made
   the fan-out driver's N simultaneous states pathologically expensive
   (large transient allocations against a large live heap); pages cost
   O(touched) instead. *)
module Mem_table = struct
  let page_bits = 12
  let page_words = 1 lsl page_bits
  let page_mask = page_words - 1

  type t = { mutable pages : int array array }

  let empty_page : int array = [||]

  let create words =
    let n_pages = max 1 ((max words 1 + page_words - 1) lsr page_bits) in
    { pages = Array.make n_pages empty_page }

  let rec grow t page =
    let n = Array.length t.pages in
    if page >= n then begin
      let bigger = Array.make (2 * n) empty_page in
      Array.blit t.pages 0 bigger 0 n;
      t.pages <- bigger;
      grow t page
    end

  (* The unsafe accesses are behind proven bounds: [page] is checked
     against the page directory right here, and [addr land page_mask]
     is below [page_words] — the length of every non-empty page — by
     construction.  This is the hottest pair of functions in the whole
     analyzer (every load and store of every trace entry of every
     machine state lands here). *)
  let get t addr =
    let page = addr lsr page_bits in
    if page >= Array.length t.pages then 0
    else
      let p = Array.unsafe_get t.pages page in
      if p == empty_page then 0
      else Array.unsafe_get p (addr land page_mask)

  let set t addr time =
    let page = addr lsr page_bits in
    if page >= Array.length t.pages then grow t page;
    let p = Array.unsafe_get t.pages page in
    let p =
      if p == empty_page then begin
        let fresh = Array.make page_words 0 in
        Array.unsafe_set t.pages page fresh;
        fresh
      end
      else p
    in
    Array.unsafe_set p (addr land page_mask) time
end

(* Incremental per-machine analysis: all the state one machine model
   needs to consume a trace one entry at a time.  [step] is the body of
   what used to be the per-entry loop; a fan-out driver advances many
   states over a single pass (or a single VM execution, via {!sink_many}).

   The layout is tuned for that per-entry loop: machine knobs are
   hoisted into flat [k_*] bools, the predictor closure and the static
   tables sit one field away, the interprocedural activation stack is a
   packed int array instead of a list of records, and the loop itself
   allocates nothing. *)
module State = struct
  (* Packed activation frames: frame [i] occupies the four ints at
     [4*i] — entry sequence number, then the call site's resolved
     control dependence (seq, time, mchain) (paper §4.4.1). *)
  let frame_words = 4

  type t = {
    cfg : config;
    info : Program_info.t;
    (* Per-config masks over the packed Program_info flags, so [step]
       re-derives nothing per entry. *)
    removed_mask : int;  (* any bit set => not in the timed trace *)
    cjump_mask : int;  (* any bit set => treated as computed jump *)
    (* Machine knobs and static tables, hoisted flat so the per-entry
       path never chases [cfg.machine] or [info]. *)
    k_control_dep : bool;
    k_oracle : bool;
    k_speculate : bool;
    k_segments : bool;
    k_fetch : int;  (* instructions fetched per cycle; 0 = unlimited *)
    k_vp : bool;  (* value prediction on, with a usable table *)
    vp_table : bool array;  (* per-pc predictability, [k_vp] only *)
    predict : pc:int -> taken:bool -> bool;
    latencies : (Program_info.lat_class -> int) option;
    budget : int;  (* step budget, [max_int] when unbounded *)
    n_code : int;
    flags : int array;
    block_of : int array;
    uses : int array array;
    defs : int array array;
    lat : Program_info.lat_class array;
    rdf : int array array;
    reg_time : int array;
    mem : Mem_table.t;
    (* Per static block: data of the most recently *executed* branch
       instance terminating it.  [cand_seq] is that instance's block
       sequence number; 0 = no instance yet. *)
    cand_seq : int array;
    b_time : int array;
    b_mchain : int array;
    b_proc : int array;
    mutable seq_counter : int;
    mutable cur_block_seq : int;
    (* Current activation; saved frames below it, packed. *)
    mutable stack : int array;
    mutable stack_len : int;  (* frames, not words *)
    mutable cur_entry : int;
    mutable ctx_seq : int;
    mutable ctx_time : int;
    mutable ctx_mchain : int;
    mutable last_branch_time : int;
    mutable last_mispred_time : int;
    flow_time : int array;
    window : int array;
    mutable win_pos : int;
    mutable counted : int;
    mutable seq_cycles : int;
    mutable max_time : int;
    mutable dyn_branches : int;
    mutable mispredicts : int;
    mutable seg_len : int;
    mutable seg_base : int;
    mutable seg_max : int;
    segments : segment Stdx.Vec.t;
    (* Control-dependence resolution results, kept as fields so the hot
       path stays allocation-free. *)
    mutable r_seq : int;
    mutable r_time : int;
    mutable r_mchain : int;
    (* Resource guard: once the step budget is hit, remaining entries
       are dropped and the result is tagged Truncated. *)
    mutable budget_hit : Pipeline_error.fault_info option;
    (* Probe fields.  [prof_on] is the one test the per-entry hot path
       pays when observability is off; the plain-int tallies below are
       published to the probe's registry once, in [finish], and feed
       nothing in the analysis itself — results are byte-identical with
       the probe on or off. *)
    probe : Obs.Probe.analyzer;
    prof_on : bool;
    mutable prof_left : int;  (* entries until the next depth sample *)
    mutable p_entries : int;  (* entries consumed (when prof_on) *)
    mutable p_flushed : int;  (* entries dropped past the step budget *)
    mutable p_cbr_mispred : int;  (* mispredicted conditional branches *)
    mutable p_frame_hw : int;  (* frame-stack depth high-water *)
  }

  let create (cfg : config) (info : Program_info.t) =
    let m = cfg.machine in
    (* The compositional machine compiles down to the same flat knobs
       the hot loop always branched on, so the seven paper machines take
       exactly the code path they did before the lattice existed. *)
    let k_oracle = m.Machine.control = Machine.Oracle in
    let k_control_dep =
      match m.Machine.control with
      | Machine.Control_dep | Machine.Spec_cd -> true
      | _ -> false
    in
    let k_speculate =
      match m.Machine.control with
      | Machine.Speculative | Machine.Spec_cd -> true
      | _ -> false
    in
    (* An undersized table (no training ran) turns value prediction
       off; a full-sized one lets [do_step] read it unsafely behind the
       pc bounds check. *)
    let vp_table =
      match cfg.value_table with
      | Some t when m.Machine.value_predict && Array.length t >= info.n ->
        t
      | _ -> [||]
    in
    { cfg;
      info;
      removed_mask = removed_mask_of cfg;
      cjump_mask = cjump_mask_of cfg;
      k_control_dep;
      k_oracle;
      k_speculate;
      k_segments = cfg.collect_segments;
      k_fetch = (match m.Machine.fetch with Some f -> f | None -> 0);
      k_vp = Array.length vp_table > 0;
      vp_table;
      predict = cfg.predictor.Predict.Predictor.predict;
      latencies = Machine.latency_fn m;
      budget =
        (match cfg.step_budget with None -> max_int | Some b -> b);
      n_code = info.n;
      flags = info.flags;
      block_of = info.block_of;
      uses = info.uses;
      defs = info.defs;
      lat = info.lat;
      rdf = info.rdf;
      reg_time = Array.make Risc.Reg.n_unified 0;
      mem = Mem_table.create cfg.mem_words;
      cand_seq = Array.make (max info.n_blocks 1) 0;
      b_time = Array.make (max info.n_blocks 1) 0;
      b_mchain = Array.make (max info.n_blocks 1) 0;
      b_proc = Array.make (max info.n_blocks 1) 0;
      seq_counter = 0;
      cur_block_seq = 0;
      stack = Array.make (16 * frame_words) 0;
      stack_len = 0;
      cur_entry = 1;
      ctx_seq = 0;
      ctx_time = 0;
      ctx_mchain = 0;
      last_branch_time = 0;
      last_mispred_time = 0;
      flow_time =
        (match m.flows with Some k -> Array.make (max k 1) 0 | None -> [||]);
      window =
        (match m.window with Some w -> Array.make (max w 1) 0 | None -> [||]);
      win_pos = 0;
      counted = 0;
      seq_cycles = 0;
      max_time = 0;
      dyn_branches = 0;
      mispredicts = 0;
      seg_len = 0;
      seg_base = 0;
      seg_max = 0;
      segments = Stdx.Vec.create ~dummy:{ length = 0; cycles = 0 } ();
      r_seq = 0;
      r_time = 0;
      r_mchain = 0;
      budget_hit = None;
      probe = cfg.probe;
      prof_on = cfg.probe.Obs.Probe.a_enabled;
      prof_left = cfg.probe.Obs.Probe.a_sample_every;
      p_entries = 0;
      p_flushed = 0;
      p_cbr_mispred = 0;
      p_frame_hw = 0 }

  (* Control-dependence resolution: the call-site context or the most
     recent valid RDF branch instance, whichever is newer; dropped
     entirely when an instance from a newer activation (recursion) is
     seen.  The best candidate travels in accumulator arguments (not a
     heap ref), and an instance from a newer activation short-circuits
     — the original scanned on, but only into updates the final zeroing
     discarded anyway.  Indices are proven: [blk] and the RDF entries
     are block ids below [n_blocks], the length of every per-block
     table. *)
  let resolve st blk =
    let rdf = Array.unsafe_get st.rdf blk in
    let n = Array.length rdf in
    let cur_entry = st.cur_entry in
    let rec go k seq time mchain =
      if k >= n then begin
        st.r_seq <- seq;
        st.r_time <- time;
        st.r_mchain <- mchain
      end
      else
        let c = Array.unsafe_get rdf k in
        let cand = Array.unsafe_get st.cand_seq c in
        if cand > 0 then begin
          let proc = Array.unsafe_get st.b_proc c in
          if proc > cur_entry then begin
            st.r_seq <- 0;
            st.r_time <- 0;
            st.r_mchain <- 0
          end
          else if proc = cur_entry && cand > seq then
            go (k + 1) cand
              (Array.unsafe_get st.b_time c)
              (Array.unsafe_get st.b_mchain c)
          else go (k + 1) seq time mchain
        end
        else go (k + 1) seq time mchain
    in
    go 0 st.ctx_seq st.ctx_time st.ctx_mchain

  (* The per-entry transition, split from classification: [bits] is
     the entry's decoded word — the static flags plus the
     [b_mispred]/[b_invalid] markers — computed by {!classify} against
     this config's masks and predictor.  The sequential [step]
     classifies and applies in one call; segmented analysis classifies
     whole segments concurrently and replays [do_step] here in trace
     order, so both paths execute the identical transition sequence.
     [classify]'s bounds check on the trace-supplied [pc] (surfacing
     as [b_invalid]) proves every per-instruction table access below,
     so the rest of the step reads unsafely. *)
  let do_step st ~pc ~aux ~bits =
    if bits land b_invalid <> 0 then
      invalid_arg "Analyze.step: pc outside the code segment";
    if st.prof_on then begin
      st.p_entries <- st.p_entries + 1;
      st.prof_left <- st.prof_left - 1;
      if st.prof_left <= 0 then begin
        st.prof_left <- st.probe.Obs.Probe.a_sample_every;
        Obs.Metrics.observe st.probe.Obs.Probe.a_frame_depth st.stack_len
      end
    end;
    let flags = bits in
    let blk = Array.unsafe_get st.block_of pc in
    if flags land Program_info.f_block_start <> 0 then begin
      st.seq_counter <- st.seq_counter + 1;
      st.cur_block_seq <- st.seq_counter
    end;
    (* Interprocedural stack maintenance happens whether or not the call
       and return instructions themselves are timed. *)
    if flags land Program_info.f_call <> 0 then begin
      if st.k_control_dep then resolve st blk
      else begin
        st.r_seq <- 0;
        st.r_time <- 0;
        st.r_mchain <- 0
      end;
      let base = frame_words * st.stack_len in
      if base >= Array.length st.stack then begin
        let old = st.stack in
        let bigger = Array.make (2 * Array.length old) 0 in
        Array.blit old 0 bigger 0 (Array.length old);
        st.stack <- bigger
      end;
      let s = st.stack in
      Array.unsafe_set s base st.cur_entry;
      Array.unsafe_set s (base + 1) st.ctx_seq;
      Array.unsafe_set s (base + 2) st.ctx_time;
      Array.unsafe_set s (base + 3) st.ctx_mchain;
      st.stack_len <- st.stack_len + 1;
      if st.stack_len > st.p_frame_hw then st.p_frame_hw <- st.stack_len;
      st.cur_entry <- st.seq_counter + 1;
      st.ctx_seq <- st.r_seq;
      st.ctx_time <- st.r_time;
      st.ctx_mchain <- st.r_mchain
    end
    else if flags land Program_info.f_ret <> 0 then begin
      if st.stack_len > 0 then begin
        st.stack_len <- st.stack_len - 1;
        let base = frame_words * st.stack_len in
        let s = st.stack in
        st.cur_entry <- Array.unsafe_get s base;
        st.ctx_seq <- Array.unsafe_get s (base + 1);
        st.ctx_time <- Array.unsafe_get s (base + 2);
        st.ctx_mchain <- Array.unsafe_get s (base + 3)
      end
      else begin
        st.cur_entry <- 1;
        st.ctx_seq <- 0;
        st.ctx_time <- 0;
        st.ctx_mchain <- 0
      end
    end;
    if flags land st.removed_mask <> 0 then begin
      (* A removed loop branch passes its own control dependence through
         to its dependents (unrolling an inner loop leaves its body
         dependent on the enclosing branch). *)
      if flags land Program_info.f_cond_branch <> 0 && st.k_control_dep
      then begin
        resolve st blk;
        Array.unsafe_set st.cand_seq blk st.cur_block_seq;
        Array.unsafe_set st.b_proc blk st.cur_entry;
        Array.unsafe_set st.b_time blk st.r_time;
        Array.unsafe_set st.b_mchain blk st.r_mchain
      end
    end
    else begin
      let is_cbr = flags land Program_info.f_cond_branch <> 0 in
      let is_cjump = flags land st.cjump_mask <> 0 in
      if st.k_control_dep then resolve st blk;
      let ctrl =
        if st.k_oracle then 0
        else if st.k_speculate && st.k_control_dep then st.r_mchain
        else if st.k_speculate then st.last_mispred_time
        else if st.k_control_dep then st.r_time
        else st.last_branch_time
      in
      (* True data dependences: max over register uses (accumulator
         recursion, not a heap ref) and the last write of a loaded
         address. *)
      let uses = Array.unsafe_get st.uses pc in
      let n_uses = Array.length uses in
      let reg_time = st.reg_time in
      let rec max_use k acc =
        if k >= n_uses then acc
        else
          let time =
            Array.unsafe_get reg_time (Array.unsafe_get uses k)
          in
          max_use (k + 1) (if time > acc then time else acc)
      in
      let data = max_use 0 0 in
      let data =
        if flags land Program_info.f_mem_load <> 0 then begin
          let time = Mem_table.get st.mem aux in
          if time > data then time else data
        end
        else data
      in
      let t = 1 + (if ctrl > data then ctrl else data) in
      (* Branch prediction. *)
      let mispred =
        if is_cbr then begin
          st.dyn_branches <- st.dyn_branches + 1;
          let m = bits land b_mispred <> 0 in
          if m then st.p_cbr_mispred <- st.p_cbr_mispred + 1;
          m
        end
        else is_cjump
      in
      (* Serializing branches compete for the machine's flows of
         control: one such branch per flow per cycle. *)
      let serializing =
        (is_cbr || is_cjump)
        && (not st.k_oracle)
        && ((not st.k_speculate) || mispred)
      in
      let flow_time = st.flow_time in
      let n_flows = Array.length flow_time in
      let flow_idx =
        if serializing && n_flows > 0 then begin
          let rec best k b =
            if k >= n_flows then b
            else
              best (k + 1)
                (if Array.unsafe_get flow_time k
                    < Array.unsafe_get flow_time b
                 then k
                 else b)
          in
          best 1 0
        end
        else -1
      in
      let t =
        if flow_idx >= 0 then begin
          let avail = Array.unsafe_get flow_time flow_idx + 1 in
          if avail > t then avail else t
        end
        else t
      in
      (* Finite fetch rate: the [i]-th counted instruction cannot issue
         before cycle [i/f + 1] — the front end delivers [f]
         instructions per cycle.  Before the window constraint so the
         window records true issue times. *)
      let t =
        if st.k_fetch > 0 then begin
          let fmin = (st.counted / st.k_fetch) + 1 in
          if fmin > t then fmin else t
        end
        else t
      in
      (* Finite scheduling window: an instruction cannot issue before
         the one [w] earlier has issued. *)
      let window = st.window in
      let n_window = Array.length window in
      let t =
        if n_window > 0 then begin
          let wp = st.win_pos in
          let prev = Array.unsafe_get window wp in
          let t = if prev > t then prev else t in
          Array.unsafe_set window wp t;
          let wp = wp + 1 in
          st.win_pos <- (if wp = n_window then 0 else wp);
          t
        end
        else t
      in
      let lat =
        match st.latencies with
        | None -> 1
        | Some f -> f (Array.unsafe_get st.lat pc)
      in
      let completion = t + lat - 1 in
      (* Record results.  Under value prediction, a predictable
         instruction's results count as available immediately (the
         consumer uses the predicted value); the producer itself still
         occupies its cycles to validate the prediction, so max_time,
         stores and branch bookkeeping keep the real completion. *)
      let defs = Array.unsafe_get st.defs pc in
      let def_time =
        if st.k_vp && Array.unsafe_get st.vp_table pc then 0
        else completion
      in
      for k = 0 to Array.length defs - 1 do
        Array.unsafe_set reg_time (Array.unsafe_get defs k) def_time
      done;
      if flags land Program_info.f_mem_store <> 0 then
        Mem_table.set st.mem aux completion;
      st.counted <- st.counted + 1;
      st.seq_cycles <- st.seq_cycles + lat;
      if completion > st.max_time then st.max_time <- completion;
      if st.k_segments then begin
        st.seg_len <- st.seg_len + 1;
        if completion > st.seg_max then st.seg_max <- completion
      end;
      if is_cbr || is_cjump then begin
        Array.unsafe_set st.cand_seq blk st.cur_block_seq;
        Array.unsafe_set st.b_proc blk st.cur_entry;
        Array.unsafe_set st.b_time blk completion;
        Array.unsafe_set st.b_mchain blk
          (if mispred then completion else st.r_mchain);
        st.last_branch_time <- completion;
        if flow_idx >= 0 then
          Array.unsafe_set st.flow_time flow_idx completion;
        if mispred then begin
          st.mispredicts <- st.mispredicts + 1;
          st.last_mispred_time <- completion;
          if st.k_segments then begin
            Stdx.Vec.push st.segments
              { length = st.seg_len;
                cycles = max 1 (st.seg_max - st.seg_base) };
            st.seg_len <- 0;
            st.seg_base <- completion;
            st.seg_max <- completion
          end
        end
      end
    end

  (* The budget guard wraps the real per-entry transition: once the
     configured number of counted instructions has been analyzed, the
     remaining trace is dropped (graceful degradation, not an abort) and
     the result will carry a [Step_budget] truncation tag.  [budget] is
     [max_int] when unconfigured, so the common case is one compare. *)
  let step st ~pc ~aux =
    match st.budget_hit with
    | Some _ -> st.p_flushed <- st.p_flushed + 1  (* cold: post-budget *)
    | None ->
      if st.counted >= st.budget then
        st.budget_hit <-
          Some
            (Pipeline_error.fault ~pc ~step:st.counted
               ~detail:(Printf.sprintf "analysis step budget %d" st.budget)
               Pipeline_error.Step_budget)
      else
        do_step st ~pc ~aux
          ~bits:
            (classify ~n_code:st.n_code ~flags:st.flags
               ~removed_mask:st.removed_mask ~predict:st.predict ~pc ~aux)

  (* Same budget guard, pre-classified entry.  The segment stitcher
     replays decoded entries through this in trace order; because the
     budget is checked before [bits] is consulted, entries decoded
     past a budget cut (including invalid-pc markers) are dropped
     exactly as the sequential path drops them unclassified. *)
  let step_bits st ~pc ~aux ~bits =
    match st.budget_hit with
    | Some _ -> st.p_flushed <- st.p_flushed + 1
    | None ->
      if st.counted >= st.budget then
        st.budget_hit <-
          Some
            (Pipeline_error.fault ~pc ~step:st.counted
               ~detail:(Printf.sprintf "analysis step budget %d" st.budget)
               Pipeline_error.Step_budget)
      else do_step st ~pc ~aux ~bits

  let finish ?(completeness = Pipeline_error.Complete) st =
    if st.prof_on then begin
      let p = st.probe in
      Obs.Metrics.add p.Obs.Probe.a_entries st.p_entries;
      Obs.Metrics.add p.Obs.Probe.a_counted st.counted;
      Obs.Metrics.add p.Obs.Probe.a_flushed st.p_flushed;
      Obs.Metrics.add p.Obs.Probe.a_pred_misses st.p_cbr_mispred;
      Obs.Metrics.add p.Obs.Probe.a_pred_hits
        (st.dyn_branches - st.p_cbr_mispred);
      Obs.Metrics.add p.Obs.Probe.a_mispredict_flushes st.mispredicts;
      Obs.Metrics.set_max p.Obs.Probe.a_frame_hw st.p_frame_hw
    end;
    if st.cfg.collect_segments && st.seg_len > 0 then begin
      Stdx.Vec.push st.segments
        { length = st.seg_len; cycles = max 1 (st.seg_max - st.seg_base) };
      st.seg_len <- 0
    end;
    let parallelism =
      if st.max_time = 0 then 1.
      else float_of_int st.seq_cycles /. float_of_int st.max_time
    in
    let completeness =
      (* A budget cut happens strictly before the execution's own end,
         so it wins over an execution-level truncation tag. *)
      match st.budget_hit with
      | Some f -> Pipeline_error.Truncated f
      | None -> completeness
    in
    { machine = st.cfg.machine.name;
      counted = st.counted;
      seq_cycles = st.seq_cycles;
      cycles = st.max_time;
      parallelism;
      dyn_branches = st.dyn_branches;
      mispredicts = st.mispredicts;
      segments = Stdx.Vec.to_array st.segments;
      completeness }
end

let sink_states (states : State.t array) =
  match states with
  | [| st |] ->
    Vm.Trace.sink (fun ~pc ~aux -> State.step st ~pc ~aux)
  | _ ->
    Vm.Trace.sink (fun ~pc ~aux ->
        for i = 0 to Array.length states - 1 do
          State.step states.(i) ~pc ~aux
        done)

let sink_many configs info =
  let states =
    Array.of_list (List.map (fun c -> State.create c info) configs)
  in
  ( sink_states states,
    fun ?completeness () ->
      List.map (State.finish ?completeness) (Array.to_list states) )

let run_many ?completeness configs info trace =
  let sink, finish = sink_many configs info in
  Vm.Trace.feed trace sink;
  finish ?completeness ()

let run ?completeness (cfg : config) (info : Program_info.t) trace =
  match run_many ?completeness [ cfg ] info trace with
  | [ r ] -> r
  | _ -> assert false

type config = {
  machine : Machine.t;
  inline : bool;
  unroll : bool;
  predictor : Predict.Predictor.t;
  collect_segments : bool;
  mem_words : int;
  step_budget : int option;
}

let config ?(inline = true) ?(unroll = true) ?(collect_segments = false)
    ?(mem_words = 1024) ?step_budget machine predictor =
  { machine; inline; unroll; predictor; collect_segments; mem_words;
    step_budget }

type segment = {
  length : int;
  cycles : int;
}

type result = {
  machine : string;
  counted : int;
  seq_cycles : int;
  cycles : int;
  parallelism : float;
  dyn_branches : int;
  mispredicts : int;
  segments : segment array;
  completeness : Pipeline_error.completeness;
}

(* Last-write table for memory.  Paged so the footprint is proportional
   to the addresses actually touched: the VM's address space is 2M
   words, but a workload touches only its data segment (low addresses)
   and stack (top of memory).  A flat 16MB array per machine model made
   the fan-out driver's N simultaneous states pathologically expensive
   (large transient allocations against a large live heap); pages cost
   O(touched) instead. *)
module Mem_table = struct
  let page_bits = 12
  let page_words = 1 lsl page_bits
  let page_mask = page_words - 1

  type t = { mutable pages : int array array }

  let empty_page : int array = [||]

  let create words =
    let n_pages = max 1 ((max words 1 + page_words - 1) lsr page_bits) in
    { pages = Array.make n_pages empty_page }

  let rec grow t page =
    let n = Array.length t.pages in
    if page >= n then begin
      let bigger = Array.make (2 * n) empty_page in
      Array.blit t.pages 0 bigger 0 n;
      t.pages <- bigger;
      grow t page
    end

  let get t addr =
    let page = addr lsr page_bits in
    if page >= Array.length t.pages then 0
    else
      let p = t.pages.(page) in
      if p == empty_page then 0 else p.(addr land page_mask)

  let set t addr time =
    let page = addr lsr page_bits in
    if page >= Array.length t.pages then grow t page;
    let p = t.pages.(page) in
    let p =
      if p == empty_page then begin
        let fresh = Array.make page_words 0 in
        t.pages.(page) <- fresh;
        fresh
      end
      else p
    in
    p.(addr land page_mask) <- time
end

(* One procedure activation of the interprocedural control-dependence
   stack (paper §4.4.1). *)
type frame = {
  f_entry : int;  (* sequence number of the activation's first block *)
  f_ctx_seq : int;  (* call site's resolved control dependence *)
  f_ctx_time : int;
  f_ctx_mchain : int;
}

(* Incremental per-machine analysis: all the state one machine model
   needs to consume a trace one entry at a time.  [step] is the body of
   what used to be the per-entry loop; a fan-out driver advances many
   states over a single pass (or a single VM execution, via {!sink_many}). *)
module State = struct
  type t = {
    cfg : config;
    info : Program_info.t;
    (* Per-config masks over the packed Program_info flags, so [step]
       re-derives nothing per entry. *)
    removed_mask : int;  (* any bit set => not in the timed trace *)
    cjump_mask : int;  (* any bit set => treated as computed jump *)
    reg_time : int array;
    mem : Mem_table.t;
    (* Per static block: data of the most recently *executed* branch
       instance terminating it.  [cand_seq] is that instance's block
       sequence number; 0 = no instance yet. *)
    cand_seq : int array;
    b_time : int array;
    b_mchain : int array;
    b_proc : int array;
    mutable seq_counter : int;
    mutable cur_block_seq : int;
    (* Current activation; saved frames below it. *)
    mutable stack : frame list;
    mutable cur_entry : int;
    mutable ctx_seq : int;
    mutable ctx_time : int;
    mutable ctx_mchain : int;
    mutable last_branch_time : int;
    mutable last_mispred_time : int;
    flow_time : int array;
    window : int array;
    mutable win_pos : int;
    mutable counted : int;
    mutable seq_cycles : int;
    mutable max_time : int;
    mutable dyn_branches : int;
    mutable mispredicts : int;
    mutable seg_len : int;
    mutable seg_base : int;
    mutable seg_max : int;
    segments : segment Stdx.Vec.t;
    (* Control-dependence resolution results, kept as fields so the hot
       path stays allocation-free. *)
    mutable r_seq : int;
    mutable r_time : int;
    mutable r_mchain : int;
    (* Resource guard: once the step budget is hit, remaining entries
       are dropped and the result is tagged Truncated. *)
    mutable budget_hit : Pipeline_error.fault_info option;
  }

  let create (cfg : config) (info : Program_info.t) =
    let m = cfg.machine in
    { cfg;
      info;
      removed_mask =
        (Program_info.f_stop
        lor (if cfg.inline then
               Program_info.f_call lor Program_info.f_ret
               lor Program_info.f_sp_adjust
             else 0)
        lor if cfg.unroll then Program_info.f_loop_overhead else 0);
      cjump_mask =
        (Program_info.f_computed_jump
        lor if cfg.inline then 0 else Program_info.f_ret);
      reg_time = Array.make Risc.Reg.n_unified 0;
      mem = Mem_table.create cfg.mem_words;
      cand_seq = Array.make (max info.n_blocks 1) 0;
      b_time = Array.make (max info.n_blocks 1) 0;
      b_mchain = Array.make (max info.n_blocks 1) 0;
      b_proc = Array.make (max info.n_blocks 1) 0;
      seq_counter = 0;
      cur_block_seq = 0;
      stack = [];
      cur_entry = 1;
      ctx_seq = 0;
      ctx_time = 0;
      ctx_mchain = 0;
      last_branch_time = 0;
      last_mispred_time = 0;
      flow_time =
        (match m.flows with Some k -> Array.make (max k 1) 0 | None -> [||]);
      window =
        (match m.window with Some w -> Array.make (max w 1) 0 | None -> [||]);
      win_pos = 0;
      counted = 0;
      seq_cycles = 0;
      max_time = 0;
      dyn_branches = 0;
      mispredicts = 0;
      seg_len = 0;
      seg_base = 0;
      seg_max = 0;
      segments = Stdx.Vec.create ~dummy:{ length = 0; cycles = 0 } ();
      r_seq = 0;
      r_time = 0;
      r_mchain = 0;
      budget_hit = None }

  (* Control-dependence resolution: the call-site context or the most
     recent valid RDF branch instance, whichever is newer; dropped
     entirely when an instance from a newer activation (recursion) is
     seen. *)
  let resolve st blk =
    st.r_seq <- st.ctx_seq;
    st.r_time <- st.ctx_time;
    st.r_mchain <- st.ctx_mchain;
    let recursion = ref false in
    let rdf = st.info.rdf.(blk) in
    for k = 0 to Array.length rdf - 1 do
      let c = rdf.(k) in
      if st.cand_seq.(c) > 0 then begin
        if st.b_proc.(c) > st.cur_entry then recursion := true
        else if st.b_proc.(c) = st.cur_entry && st.cand_seq.(c) > st.r_seq
        then begin
          st.r_seq <- st.cand_seq.(c);
          st.r_time <- st.b_time.(c);
          st.r_mchain <- st.b_mchain.(c)
        end
      end
    done;
    if !recursion then begin
      st.r_seq <- 0;
      st.r_time <- 0;
      st.r_mchain <- 0
    end

  let do_step st ~pc ~aux =
    let info = st.info in
    let m = st.cfg.machine in
    let flags = info.flags.(pc) in
    let blk = info.block_of.(pc) in
    if flags land Program_info.f_block_start <> 0 then begin
      st.seq_counter <- st.seq_counter + 1;
      st.cur_block_seq <- st.seq_counter
    end;
    (* Interprocedural stack maintenance happens whether or not the call
       and return instructions themselves are timed. *)
    if flags land Program_info.f_call <> 0 then begin
      if m.control_dep then resolve st blk
      else begin
        st.r_seq <- 0;
        st.r_time <- 0;
        st.r_mchain <- 0
      end;
      st.stack <-
        { f_entry = st.cur_entry; f_ctx_seq = st.ctx_seq;
          f_ctx_time = st.ctx_time; f_ctx_mchain = st.ctx_mchain }
        :: st.stack;
      st.cur_entry <- st.seq_counter + 1;
      st.ctx_seq <- st.r_seq;
      st.ctx_time <- st.r_time;
      st.ctx_mchain <- st.r_mchain
    end
    else if flags land Program_info.f_ret <> 0 then
      match st.stack with
      | f :: rest ->
        st.stack <- rest;
        st.cur_entry <- f.f_entry;
        st.ctx_seq <- f.f_ctx_seq;
        st.ctx_time <- f.f_ctx_time;
        st.ctx_mchain <- f.f_ctx_mchain
      | [] ->
        st.cur_entry <- 1;
        st.ctx_seq <- 0;
        st.ctx_time <- 0;
        st.ctx_mchain <- 0
    else ();
    if flags land st.removed_mask <> 0 then begin
      (* A removed loop branch passes its own control dependence through
         to its dependents (unrolling an inner loop leaves its body
         dependent on the enclosing branch). *)
      if flags land Program_info.f_cond_branch <> 0 && m.control_dep
      then begin
        resolve st blk;
        st.cand_seq.(blk) <- st.cur_block_seq;
        st.b_proc.(blk) <- st.cur_entry;
        st.b_time.(blk) <- st.r_time;
        st.b_mchain.(blk) <- st.r_mchain
      end
    end
    else begin
      let is_cbr = flags land Program_info.f_cond_branch <> 0 in
      let is_cjump = flags land st.cjump_mask <> 0 in
      if m.control_dep then resolve st blk;
      let ctrl =
        if m.oracle then 0
        else if m.speculate && m.control_dep then st.r_mchain
        else if m.speculate then st.last_mispred_time
        else if m.control_dep then st.r_time
        else st.last_branch_time
      in
      (* True data dependences. *)
      let data = ref 0 in
      let uses = info.uses.(pc) in
      for k = 0 to Array.length uses - 1 do
        let time = st.reg_time.(uses.(k)) in
        if time > !data then data := time
      done;
      if flags land Program_info.f_mem_load <> 0 then begin
        let time = Mem_table.get st.mem aux in
        if time > !data then data := time
      end;
      let t = ref (1 + max ctrl !data) in
      (* Branch prediction. *)
      let mispred = ref false in
      if is_cbr then begin
        st.dyn_branches <- st.dyn_branches + 1;
        let taken = aux = 1 in
        let predicted = st.cfg.predictor.predict ~pc ~taken in
        mispred := predicted <> taken
      end
      else if is_cjump then mispred := true;
      (* Serializing branches compete for the machine's flows of
         control: one such branch per flow per cycle. *)
      let serializing =
        (is_cbr || is_cjump)
        && (not m.oracle)
        && ((not m.speculate) || !mispred)
      in
      let flow_idx = ref (-1) in
      if serializing && Array.length st.flow_time > 0 then begin
        let flow_time = st.flow_time in
        let best = ref 0 in
        for k = 1 to Array.length flow_time - 1 do
          if flow_time.(k) < flow_time.(!best) then best := k
        done;
        flow_idx := !best;
        if flow_time.(!best) + 1 > !t then t := flow_time.(!best) + 1
      end;
      (* Finite scheduling window: an instruction cannot issue before
         the one [w] earlier has issued. *)
      if Array.length st.window > 0 then begin
        if st.window.(st.win_pos) > !t then t := st.window.(st.win_pos);
        st.window.(st.win_pos) <- !t;
        st.win_pos <- (st.win_pos + 1) mod Array.length st.window
      end;
      let lat =
        match m.latencies with None -> 1 | Some f -> f info.lat.(pc)
      in
      let completion = !t + lat - 1 in
      (* Record results. *)
      let defs = info.defs.(pc) in
      for k = 0 to Array.length defs - 1 do
        st.reg_time.(defs.(k)) <- completion
      done;
      if flags land Program_info.f_mem_store <> 0 then
        Mem_table.set st.mem aux completion;
      st.counted <- st.counted + 1;
      st.seq_cycles <- st.seq_cycles + lat;
      if completion > st.max_time then st.max_time <- completion;
      if st.cfg.collect_segments then begin
        st.seg_len <- st.seg_len + 1;
        if completion > st.seg_max then st.seg_max <- completion
      end;
      if is_cbr || is_cjump then begin
        st.cand_seq.(blk) <- st.cur_block_seq;
        st.b_proc.(blk) <- st.cur_entry;
        st.b_time.(blk) <- completion;
        st.b_mchain.(blk) <-
          (if !mispred then completion else st.r_mchain);
        st.last_branch_time <- completion;
        if serializing && !flow_idx >= 0 then
          st.flow_time.(!flow_idx) <- completion;
        if !mispred then begin
          st.mispredicts <- st.mispredicts + 1;
          st.last_mispred_time <- completion;
          if st.cfg.collect_segments then begin
            Stdx.Vec.push st.segments
              { length = st.seg_len;
                cycles = max 1 (st.seg_max - st.seg_base) };
            st.seg_len <- 0;
            st.seg_base <- completion;
            st.seg_max <- completion
          end
        end
      end
    end

  (* The budget guard wraps the real per-entry transition: once the
     configured number of counted instructions has been analyzed, the
     remaining trace is dropped (graceful degradation, not an abort) and
     the result will carry a [Step_budget] truncation tag. *)
  let step st ~pc ~aux =
    match st.budget_hit with
    | Some _ -> ()
    | None -> (
      match st.cfg.step_budget with
      | Some b when st.counted >= b ->
        st.budget_hit <-
          Some
            (Pipeline_error.fault ~pc ~step:st.counted
               ~detail:(Printf.sprintf "analysis step budget %d" b)
               Pipeline_error.Step_budget)
      | _ -> do_step st ~pc ~aux)

  let finish ?(completeness = Pipeline_error.Complete) st =
    if st.cfg.collect_segments && st.seg_len > 0 then begin
      Stdx.Vec.push st.segments
        { length = st.seg_len; cycles = max 1 (st.seg_max - st.seg_base) };
      st.seg_len <- 0
    end;
    let parallelism =
      if st.max_time = 0 then 1.
      else float_of_int st.seq_cycles /. float_of_int st.max_time
    in
    let completeness =
      (* A budget cut happens strictly before the execution's own end,
         so it wins over an execution-level truncation tag. *)
      match st.budget_hit with
      | Some f -> Pipeline_error.Truncated f
      | None -> completeness
    in
    { machine = st.cfg.machine.name;
      counted = st.counted;
      seq_cycles = st.seq_cycles;
      cycles = st.max_time;
      parallelism;
      dyn_branches = st.dyn_branches;
      mispredicts = st.mispredicts;
      segments = Stdx.Vec.to_array st.segments;
      completeness }
end

let sink_states (states : State.t array) =
  match states with
  | [| st |] ->
    Vm.Trace.sink (fun ~pc ~aux -> State.step st ~pc ~aux)
  | _ ->
    Vm.Trace.sink (fun ~pc ~aux ->
        for i = 0 to Array.length states - 1 do
          State.step states.(i) ~pc ~aux
        done)

let sink_many configs info =
  let states =
    Array.of_list (List.map (fun c -> State.create c info) configs)
  in
  ( sink_states states,
    fun ?completeness () ->
      List.map (State.finish ?completeness) (Array.to_list states) )

let run_many ?completeness configs info trace =
  let sink, finish = sink_many configs info in
  Vm.Trace.feed trace sink;
  finish ?completeness ()

let run ?completeness (cfg : config) (info : Program_info.t) trace =
  match run_many ?completeness [ cfg ] info trace with
  | [ r ] -> r
  | _ -> assert false

let () =
  Alcotest.run "ilplimits"
    [ ("stdx", Test_stdx.suite);
      ("pool", Test_pool.suite);
      ("risc", Test_risc.suite);
      ("asm", Test_asm.suite);
      ("vm", Test_vm.suite);
      ("minic", Test_minic.suite);
      ("codegen", Test_codegen.suite);
      ("cfg", Test_cfg.suite);
      ("dataflow", Test_dataflow.suite);
      ("verify", Test_verify.suite);
      ("sccp", Test_sccp.suite);
      ("engine", Test_engine.suite);
      ("predict", Test_predict.suite);
      ("analyze", Test_analyze.suite);
      ("machine", Test_machine.suite);
      ("pipeline", Test_pipeline.suite);
      ("segmented", Test_segmented.suite);
      ("properties", Test_props.suite);
      ("estimate", Test_estimate.suite);
      ("workloads", Test_workloads.suite);
      ("fault", Test_fault.suite);
      ("obs", Test_obs.suite);
      ("report", Test_report.suite);
      ("serve", Test_serve.suite) ]

(* The benchmark suite itself: every workload compiles, runs to
   completion deterministically, and produces paper-shaped statistics. *)

let analyze ?segments p m =
  List.hd (Harness.Run.on_prepared p [ Harness.spec ?segments m ])

let test_registry () =
  Alcotest.(check int) "ten workloads" 10
    (List.length Workloads.Registry.all);
  Alcotest.(check int) "seven non-numeric" 7
    (List.length Workloads.Registry.non_numeric);
  Alcotest.(check int) "three numeric" 3
    (List.length Workloads.Registry.numeric);
  let names =
    List.map (fun w -> w.Workloads.Registry.name) Workloads.Registry.all
  in
  Alcotest.(check (list string)) "paper order"
    [ "awk"; "ccom"; "eqntott"; "espresso"; "gcc"; "irsim"; "latex";
      "matrix300"; "spice2g6"; "tomcatv" ]
    names;
  (match Workloads.Registry.find "gcc" with
  | w -> Alcotest.(check string) "find" "gcc" w.name);
  Alcotest.check_raises "find unknown" Not_found (fun () ->
      ignore (Workloads.Registry.find "nope"))

let test_compiles w () =
  let flat = Workloads.Registry.compile w in
  Alcotest.(check bool) "has code" true (Array.length flat.code > 100);
  (* Static analysis must succeed and find loops in every workload. *)
  let cfg = Cfg.Analysis.analyze flat in
  Alcotest.(check bool) "has loops" true (List.length cfg.loops.loops > 0);
  let marked = Array.exists Fun.id cfg.loops.overhead in
  Alcotest.(check bool) "has loop overhead" true marked

let test_runs w () =
  let _, outcome = Workloads.Registry.run w in
  (match (outcome.status, w.Workloads.Registry.expected_result) with
  | Vm.Exec.Halted v, Some expected ->
    Alcotest.(check int) (w.name ^ " result") expected v
  | Vm.Exec.Halted _, None -> ()
  | Vm.Exec.Out_of_fuel, _ -> Alcotest.fail "out of fuel"
  | Vm.Exec.Fault f, _ ->
    Alcotest.fail
      (Format.asprintf "fault: %a" Pipeline_error.pp_fault f));
  Alcotest.(check bool) "substantial trace" true (outcome.steps > 100_000)

let test_branch_shape w () =
  let p = Harness.prepare ~fuel:120_000 w in
  let bs = Harness.branch_stats p in
  Alcotest.(check bool) "prediction rate sane" true
    (bs.rate >= 50. && bs.rate <= 100.);
  Alcotest.(check bool) "branch density sane" true
    (bs.instrs_between >= 2. && bs.instrs_between <= 100.);
  (* Numeric codes predict better and branch less often than the
     non-numeric midpoint, as in the paper's Table 2. *)
  if w.Workloads.Registry.numeric then
    Alcotest.(check bool) "numeric predicts well" true (bs.rate > 90.)

let test_shape_claims () =
  (* The paper's headline orderings on the full suite at reduced fuel:
     SP roughly triples BASE; SP-CD beats SP; the numeric codes dwarf
     the non-numeric ones on CD-MF. *)
  let ps =
    List.map (fun w -> (w, Harness.prepare ~fuel:150_000 w))
      Workloads.Registry.all
  in
  let hmean machine filter =
    Stdx.Stats.harmonic_mean
      (List.filter_map
         (fun (w, p) ->
           if filter w then
             Some (analyze p machine).Ilp.Analyze.parallelism
           else None)
         ps)
  in
  let non_numeric w = not w.Workloads.Registry.numeric in
  let base = hmean Ilp.Machine.base non_numeric in
  let cd = hmean Ilp.Machine.cd non_numeric in
  let cd_mf = hmean Ilp.Machine.cd_mf non_numeric in
  let sp = hmean Ilp.Machine.sp non_numeric in
  let sp_cd = hmean Ilp.Machine.sp_cd non_numeric in
  let sp_cd_mf = hmean Ilp.Machine.sp_cd_mf non_numeric in
  Alcotest.(check bool) "BASE around 2" true (base > 1.3 && base < 4.);
  Alcotest.(check bool) "CD slightly above BASE" true
    (cd > base && cd < 2. *. base);
  Alcotest.(check bool) "CD-MF well above CD" true (cd_mf > 2. *. cd);
  Alcotest.(check bool) "SP well above BASE" true (sp > 2. *. base);
  Alcotest.(check bool) "SP-CD above SP" true (sp_cd > 1.5 *. sp);
  Alcotest.(check bool) "SP-CD-MF above SP-CD" true (sp_cd_mf > sp_cd);
  let numeric_cdmf =
    hmean Ilp.Machine.cd_mf (fun w -> w.Workloads.Registry.numeric)
  in
  Alcotest.(check bool) "numeric dwarfs non-numeric on CD-MF" true
    (numeric_cdmf > 5. *. cd_mf)

let test_mispredict_distances_short () =
  (* Figure 6's claim: most mispredictions are close together. *)
  let segs =
    List.concat_map
      (fun w ->
        let p = Harness.prepare ~fuel:150_000 w in
        Array.to_list
          (analyze ~segments:true p Ilp.Machine.sp).segments)
      Workloads.Registry.non_numeric
  in
  let total = List.length segs in
  let close =
    List.length
      (List.filter (fun (s : Ilp.Analyze.segment) -> s.length <= 100) segs)
  in
  Alcotest.(check bool) "have segments" true (total > 100);
  Alcotest.(check bool) ">80% within 100 instructions" true
    (float_of_int close /. float_of_int total > 0.8)

let test_segment_parallelism_grows () =
  (* Figure 7's claim: short segments have less parallelism than long
     ones (comparing the shortest and longest populated buckets). *)
  let p = Harness.prepare ~fuel:200_000 (Workloads.Registry.find "gcc") in
  let segments =
    (analyze ~segments:true p Ilp.Machine.sp).segments
  in
  let buckets = Ilp.Stats.parallelism_by_distance segments in
  let populated =
    List.filter (fun (b : Ilp.Stats.bucket) -> b.count >= 10) buckets
  in
  match populated with
  | first :: (_ :: _ as rest) ->
    let last = List.nth rest (List.length rest - 1) in
    Alcotest.(check bool) "longer segments more parallel" true
      (last.mean_parallelism > first.mean_parallelism)
  | _ -> Alcotest.fail "too few buckets"

let suite =
  [ Alcotest.test_case "registry" `Quick test_registry ]
  @ List.map
      (fun w ->
        Alcotest.test_case
          ("compiles: " ^ w.Workloads.Registry.name)
          `Quick (test_compiles w))
      Workloads.Registry.all
  @ List.map
      (fun w ->
        Alcotest.test_case
          ("runs: " ^ w.Workloads.Registry.name)
          `Slow (test_runs w))
      Workloads.Registry.all
  @ List.map
      (fun w ->
        Alcotest.test_case
          ("branch shape: " ^ w.Workloads.Registry.name)
          `Quick (test_branch_shape w))
      Workloads.Registry.all
  @ [ Alcotest.test_case "paper shape claims" `Slow test_shape_claims;
      Alcotest.test_case "misprediction distances" `Slow
        test_mispredict_distances_short;
      Alcotest.test_case "segment parallelism" `Quick
        test_segment_parallelism_grows ]

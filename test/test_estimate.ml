(* Static parallelism estimator: soundness of the machine bounds
   (static >= measured, for every workload x paper machine and for
   qcheck-random lattice points), run-length facts and component
   goldens on hand-built programs, and the dynamic cross-checks of the
   branch classification — statically-decided branches never change
   direction at run time, unreachable code never executes, and loop
   trip bounds hold per activation. *)

module I = Risc.Insn
module P = Asm.Program
module R = Risc.Reg

let check ty = Alcotest.check ty
let bool = Alcotest.bool
let int = Alcotest.int

let prepare w = Harness.prepare w

let estimate_of flat = Cfg.Estimate.compute (Cfg.Analysis.analyze flat)

let main_halt body = { P.name = "main"; body = body @ [ P.Ins I.Halt ] }

let prog ?(procs = []) main_body =
  { P.procs = main_halt main_body :: procs; data = []; entry = "main" }

(* --- soundness: bound >= measured parallelism ---------------------- *)

(* One prepared execution per workload (truncated for speed), analyzed
   for every paper machine; the static bound compiled from the same
   flat program must dominate each measured parallelism. *)
let soundness_workloads () =
  let fuel = 40_000 in
  List.iter
    (fun (w : Workloads.Registry.t) ->
      let specs =
        List.map (fun m -> Harness.spec m) Ilp.Machine.all_paper
      in
      match
        Harness.Run.exec
          (Harness.Run.config ~fuel ~stream:true specs)
          [ w ]
      with
      | Error e ->
        Alcotest.failf "%s: %a" w.name Pipeline_error.pp e
      | Ok [ { it_outcome = Error e; _ } ] ->
        Alcotest.failf "%s: %a" w.name Pipeline_error.pp e
      | Ok [ { it_outcome = Ok results; _ } ] ->
        let p = prepare w in
        let est = estimate_of p.flat in
        List.iter2
          (fun (m : Ilp.Machine.t) (r : Ilp.Analyze.result) ->
            let b = Ilp.Static_bound.compile est p.info m in
            if r.parallelism > b.bound +. 1e-9 then
              Alcotest.failf "%s/%s: measured %.2f > static bound %s"
                w.name r.machine r.parallelism
                (Ilp.Static_bound.value_to_string b.bound))
          Ilp.Machine.all_paper results
      | Ok _ -> Alcotest.fail "one workload in, one item out")
    Workloads.Registry.all

(* The same property at qcheck-random machine lattice points, over
   small compiled programs: whatever combination of control model,
   flows, window, fetch and latencies the generator picks, the static
   bound must dominate the measured parallelism. *)
let small_sources =
  [ ( "branchy",
      {|int main(void) { int i; int s = 0;
         for (i = 0; i < 120; i = i + 1) {
           if (i % 3 == 0) s = s + i;
           else if (i % 5 == 0) s = s - 1;
         }
         return s; }|} );
    ( "recursive",
      {|int fib(int n) {
         if (n < 2) return n;
         return fib(n - 1) + fib(n - 2);
       }
       int main(void) { return fib(12); }|} );
    ( "memory",
      {|int a[32];
        int main(void) { int i; int s = 0;
         for (i = 0; i < 32; i = i + 1) a[i] = i * i;
         for (i = 1; i < 32; i = i + 1) s = s + a[i] - a[i - 1];
         return s; }|} ) ]

let prepared_small =
  lazy
    (List.map
       (fun (name, src) ->
         let p = Harness.prepare_source ~name src in
         (name, p, estimate_of p.flat))
       small_sources)

let test_random_machines_sound =
  QCheck.Test.make ~name:"random machines: static bound >= measured"
    ~count:60
    QCheck.(make Gen.(int_bound 1_000_000) ~print:string_of_int)
    (fun seed ->
      let m = Ilp.Machine.random seed in
      let progs = Lazy.force prepared_small in
      let name, p, est = List.nth progs (seed mod List.length progs) in
      let b = Ilp.Static_bound.compile est p.info m in
      match Harness.Run.on_prepared p [ Harness.spec m ] with
      | [ r ] ->
        if r.parallelism > b.bound +. 1e-9 then
          QCheck.Test.fail_reportf
            "%s on %s: measured %.3f > static bound %s" name
            (Ilp.Machine.to_spec m) r.parallelism
            (Ilp.Static_bound.value_to_string b.bound);
        true
      | _ -> QCheck.Test.fail_report "one spec in, one result out")

(* --- run-length and component goldens ------------------------------ *)

(* Straight-line code: every non-halt instruction is counted, none is
   a breaker, so M is the whole program. *)
let test_straightline_m () =
  let est =
    estimate_of
      (P.resolve
         (prog
            [ P.Ins (I.Li (8, 1));
              P.Ins (I.Li (9, 2));
              P.Ins (I.Alu (I.Add, 10, 8, 9));
              P.Ins (I.Alu (I.Mul, 11, 10, 10));
              P.Ins (I.Alu (I.Sub, 12, 11, 8));
              P.Ins (I.Alui (I.Add, R.rv, 12, 0)) ]))
  in
  (match est.max_run with
  | Cfg.Estimate.Finite m -> check int "M = counted straightline" 6 m
  | Cfg.Estimate.Unbounded -> Alcotest.fail "straightline M unbounded");
  check bool "halt is not counted" false
    (Cfg.Estimate.counted est ~pc:6);
  check bool "alu is not a breaker" false
    (Cfg.Estimate.breaker est ~pc:2)

(* A data-dependent branch is a breaker and caps M on each side. *)
let test_branch_breaks_runs () =
  let flat =
    P.resolve
      (prog
         [ P.Ins (I.Lw (8, R.sp, 0));
           P.Ins (I.Li (9, 1));
           P.Ins (I.Bi (I.Eq, 8, 0, "yes"));
           P.Ins (I.Li (10, 111));
           P.Label "yes";
           P.Ins (I.Li (11, 222)) ])
  in
  let est = estimate_of flat in
  check bool "branch is a breaker" true (Cfg.Estimate.breaker est ~pc:2);
  match est.max_run with
  | Cfg.Estimate.Finite m ->
    (* longest run: the 3 counted instructions up to and including the
       branch *)
    check bool "runs are capped by the breaker" true (m <= 3)
  | Cfg.Estimate.Unbounded -> Alcotest.fail "bounded program, unbounded M"

(* Fetch golden: an oracle machine with fetch 2 and unit latencies is
   bounded by exactly 2, with "fetch" the limiting component, and the
   measured parallelism respects it. *)
let test_fetch_bound_golden () =
  let _, p, est =
    match Lazy.force prepared_small with x :: _ -> x | [] -> assert false
  in
  let m =
    Ilp.Machine.of_constraints
      [ Ilp.Machine.Control Ilp.Machine.Oracle;
        Ilp.Machine.Fetch (Some 2) ]
  in
  let b = Ilp.Static_bound.compile est p.info m in
  check (Alcotest.float 1e-9) "fetch-2 oracle bound" 2.0 b.bound;
  check (Alcotest.option Alcotest.string) "limiting component"
    (Some "fetch") b.limiting;
  match Harness.Run.on_prepared p [ Harness.spec m ] with
  | [ r ] ->
    check bool "measured <= 2" true (r.parallelism <= 2.0 +. 1e-9)
  | _ -> Alcotest.fail "one spec in, one result out"

(* A machine with every constraint at the ideal has no static bound. *)
let test_oracle_unbounded () =
  let _, p, est =
    match Lazy.force prepared_small with x :: _ -> x | [] -> assert false
  in
  let b = Ilp.Static_bound.compile est p.info Ilp.Machine.oracle in
  check bool "oracle is statically unbounded" true (b.bound = infinity);
  check (Alcotest.option Alcotest.string) "nothing limits" None b.limiting

(* --- dynamic cross-checks of the classification (S3) --------------- *)

(* Replay a prepared trace against the static classification:
   - a Decided branch must take its predicted direction on every
     dynamic execution;
   - an Unreachable branch (SCCP-pruned block) must never appear;
   - no instruction of an unexecutable block may retire;
   - a Loop_exit trip bound caps header visits per loop activation
     (activation = entry into the loop body from outside). *)
let cross_check_prepared name (p : Harness.prepared) =
  let a = Cfg.Analysis.analyze p.flat in
  let sccp = Cfg.Sccp.run a in
  let classes = Cfg.Classify.classify a ~sccp in
  let g = a.graph in
  (* branch pc -> class *)
  let klass = Hashtbl.create 64 in
  Array.iter
    (fun (b : Cfg.Classify.branch) ->
      Hashtbl.replace klass b.b_pc b.b_class)
    classes.Cfg.Classify.branches;
  (* global block id -> executable? *)
  let executable =
    Array.map
      (fun (b : Cfg.Graph.block) ->
        let v = a.views.(b.proc) in
        match Cfg.View.local v b.id with
        | Some l -> Cfg.Sccp.executable sccp.(b.proc) l
        | None -> true)
      g.blocks
  in
  (* loops with a static trip bound *)
  let bounded_loops =
    List.filter_map
      (fun (l : Cfg.Loops.loop) ->
        match Hashtbl.find_opt classes.Cfg.Classify.trips l.header with
        | Some k ->
          let body = Hashtbl.create 8 in
          List.iter (fun b -> Hashtbl.replace body b ()) l.body;
          Some (l.header, g.blocks.(l.header).start, body, k, ref 0)
        | None -> None)
      a.loops.Cfg.Loops.loops
  in
  let checked = ref 0 in
  Vm.Trace.iter
    (fun ~pc ~aux ->
      (match Hashtbl.find_opt klass pc with
      | Some (Cfg.Classify.Decided d) ->
        incr checked;
        if aux = 1 <> d then
          Alcotest.failf
            "%s: decided branch at pc %d went %s, predicted %s" name pc
            (if aux = 1 then "taken" else "fallthrough")
            (if d then "taken" else "fallthrough")
      | Some Cfg.Classify.Unreachable ->
        Alcotest.failf "%s: SCCP-unreachable branch at pc %d executed"
          name pc
      | Some _ | None -> ());
      let blk = g.block_of.(pc) in
      if not executable.(blk) then
        Alcotest.failf "%s: pc %d retired in unexecutable block %d" name
          pc blk;
      List.iter
        (fun (header, header_pc, body, k, count) ->
          if Hashtbl.mem body blk then begin
            if pc = header_pc then begin
              incr count;
              if !count > k then
                Alcotest.failf
                  "%s: loop at block %d ran %d headers in one \
                   activation, static trip bound %d"
                  name header !count k
            end
          end
          else count := 0)
        bounded_loops)
    p.trace;
  !checked

let test_workload_classification_dynamic () =
  List.iter
    (fun (w : Workloads.Registry.t) ->
      ignore (cross_check_prepared w.name (Harness.prepare ~fuel:60_000 w)))
    Workloads.Registry.all

(* Synthetic decided branches: SCCP folds with the VM's own eval_cond,
   so on any generated constant pair the static direction must equal
   the dynamic one. *)
let gen_decided =
  QCheck.Gen.(
    let cond = oneofl [ I.Eq; I.Ne; I.Lt; I.Le; I.Gt; I.Ge ] in
    triple cond (int_range (-5) 5) (int_range (-5) 5))

let print_decided (c, a, b) =
  Printf.sprintf "(%s, %d, %d)"
    (match c with
    | I.Eq -> "Eq" | I.Ne -> "Ne" | I.Lt -> "Lt"
    | I.Le -> "Le" | I.Gt -> "Gt" | I.Ge -> "Ge")
    a b

let test_synthetic_decided =
  QCheck.Test.make ~name:"synthetic decided branches match the VM"
    ~count:100
    (QCheck.make gen_decided ~print:print_decided)
    (fun (cond, c1, c2) ->
      let flat =
        P.resolve
          (prog
             [ P.Ins (I.Li (8, c1));
               P.Ins (I.Li (9, c2));
               P.Ins (I.B (cond, 8, 9, "yes"));
               P.Ins (I.Alui (I.Add, 10, 10, 1));
               P.Label "yes";
               P.Ins (I.Alui (I.Add, 11, 11, 1)) ])
      in
      let a = Cfg.Analysis.analyze flat in
      let sccp = Cfg.Sccp.run a in
      let expected = I.eval_cond cond c1 c2 in
      (match Cfg.Sccp.decided_branch sccp.(0) ~pc:2 with
      | Some d when d = expected -> ()
      | Some d ->
        QCheck.Test.fail_reportf "folded %b, eval_cond says %b" d expected
      | None -> QCheck.Test.fail_report "constant branch not decided");
      let outcome = Vm.Exec.run ~fuel:100 flat in
      (match outcome.status with
      | Vm.Exec.Halted _ -> ()
      | s ->
        QCheck.Test.fail_reportf "vm: %s" (Vm.Exec.status_string s));
      let agreed = ref false in
      Vm.Trace.iter
        (fun ~pc ~aux ->
          if pc = 2 then begin
            agreed := true;
            if aux = 1 <> expected then
              QCheck.Test.fail_reportf
                "dynamic direction %b, static %b" (aux = 1) expected
          end)
        outcome.trace;
      !agreed)

let suite =
  [ Alcotest.test_case "soundness: all workloads x paper machines" `Slow
      soundness_workloads;
    QCheck_alcotest.to_alcotest test_random_machines_sound;
    Alcotest.test_case "straightline M" `Quick test_straightline_m;
    Alcotest.test_case "branches break runs" `Quick
      test_branch_breaks_runs;
    Alcotest.test_case "fetch-2 oracle golden" `Quick
      test_fetch_bound_golden;
    Alcotest.test_case "oracle statically unbounded" `Quick
      test_oracle_unbounded;
    Alcotest.test_case "classification holds dynamically (all \
                        workloads)" `Slow
      test_workload_classification_dynamic;
    QCheck_alcotest.to_alcotest test_synthetic_decided ]

(* Sparse conditional constant propagation and branch classification:
   the lattice, decided branches, executability pruning, clobbering,
   and loop trip bounds on hand-built programs. *)

module I = Risc.Insn
module P = Asm.Program
module R = Risc.Reg

let check ty = Alcotest.check ty
let bool = Alcotest.bool
let int = Alcotest.int

let analysis_of (prog : P.t) = Cfg.Analysis.analyze (P.resolve prog)

let main_halt body = { P.name = "main"; body = body @ [ P.Ins I.Halt ] }

let prog ?(procs = []) main_body =
  { P.procs = main_halt main_body :: procs; data = []; entry = "main" }

(* pc of the first conditional branch in the flat code *)
let first_branch (a : Cfg.Analysis.t) =
  let code = a.graph.flat.code in
  let rec go pc =
    if pc >= Array.length code then Alcotest.fail "no branch in program"
    else
      match I.kind code.(pc) with
      | I.Cond_branch -> pc
      | _ -> go (pc + 1)
  in
  go 0

let test_meet () =
  let open Cfg.Sccp in
  check bool "top/c" true (meet Top (Const 3) = Const 3);
  check bool "c/c same" true (meet (Const 3) (Const 3) = Const 3);
  check bool "c/c diff" true (meet (Const 3) (Const 4) = Bot);
  check bool "bot absorbs" true (meet Bot (Const 3) = Bot);
  check bool "top neutral" true (meet Top Top = Top)

(* A branch whose operands are VM-computable constants folds, and the
   untaken side becomes unexecutable. *)
let test_decided_branch () =
  let a =
    analysis_of
      (prog
         [ P.Ins (I.Li (8, 4));
           P.Ins (I.Li (9, 4));
           P.Ins (I.Bi (I.Eq, 8, 4, "yes"));
           P.Ins (I.Li (10, 111));  (* fallthrough: dead *)
           P.Label "yes";
           P.Ins (I.Li (10, 222)) ])
  in
  let sccp = Cfg.Sccp.run a in
  let pc = first_branch a in
  check bool "decided taken" true
    (Cfg.Sccp.decided_branch sccp.(0) ~pc = Some true);
  check int "one decided branch" 1 (Cfg.Sccp.n_decided sccp.(0));
  (* the fallthrough block is in the view but not executable *)
  let v = a.views.(0) in
  let dead = ref 0 in
  for l = 0 to Cfg.View.n v - 1 do
    if Cfg.View.reachable v l && not (Cfg.Sccp.executable sccp.(0) l) then
      incr dead
  done;
  check bool "some reachable block pruned" true (!dead > 0);
  (* classification agrees *)
  let classes = Cfg.Classify.classify a ~sccp in
  match Cfg.Classify.find classes ~pc with
  | Some { b_class = Cfg.Classify.Decided true; _ } -> ()
  | _ -> Alcotest.fail "branch not classified Decided true"

(* The entry procedure starts from the VM's zero-initialized register
   file, so a test against an unwritten register folds. *)
let test_entry_zeroed () =
  let a =
    analysis_of
      (prog
         [ P.Ins (I.Bi (I.Eq, 8, 0, "zero"));  (* r8 = 0 at entry *)
           P.Ins (I.Li (9, 1));
           P.Label "zero";
           P.Ins (I.Li (9, 2)) ])
  in
  let sccp = Cfg.Sccp.run a in
  check bool "entry-zero decided" true
    (Cfg.Sccp.decided_branch sccp.(0) ~pc:(first_branch a) = Some true)

(* A call clobbers the caller-saved bank: a constant in a caller-saved
   register does not survive, so the branch stays undecided. *)
let test_call_clobbers () =
  let a =
    analysis_of
      (prog
         ~procs:
           [ { P.name = "f";
               body = [ P.Ins (I.Li (8, 7)); P.Ins (I.Jr R.ra) ] } ]
         [ P.Ins (I.Li (8, 4));
           P.Ins (I.Jal "f");
           P.Ins (I.Bi (I.Eq, 8, 4, "yes"));
           P.Ins (I.Li (10, 111));
           P.Label "yes";
           P.Ins (I.Li (10, 222)) ])
  in
  let sccp = Cfg.Sccp.run a in
  check bool "clobbered branch undecided" true
    (Cfg.Sccp.decided_branch sccp.(0) ~pc:(first_branch a) = None)

(* Loads have no memory lattice: a condition on a loaded value is Bot,
   hence data-dependent. *)
let test_load_is_bot () =
  let a =
    analysis_of
      (prog
         [ P.Ins (I.Lw (8, R.sp, 0));
           P.Ins (I.Bi (I.Eq, 8, 0, "yes"));
           P.Ins (I.Li (10, 111));
           P.Label "yes";
           P.Ins (I.Li (10, 222)) ])
  in
  let sccp = Cfg.Sccp.run a in
  let pc = first_branch a in
  check bool "loaded condition undecided" true
    (Cfg.Sccp.decided_branch sccp.(0) ~pc = None);
  let classes = Cfg.Classify.classify a ~sccp in
  match Cfg.Classify.find classes ~pc with
  | Some { b_class = Cfg.Classify.Data_dependent; _ } -> ()
  | _ -> Alcotest.fail "branch not classified Data_dependent"

(* A counted loop: i = 0; do { ...; i++ } while (i < 10).  The exit
   branch tests the induction register against a constant with a
   SCCP-known initial value, so it gets a trip bound of 10 plus the
   two-iteration safety margin. *)
let counted_loop_prog n =
  prog
    [ P.Ins (I.Li (8, 0));
      P.Label "loop";
      P.Ins (I.Alu (I.Add, 9, 9, 8));
      P.Ins (I.Alui (I.Add, 8, 8, 1));
      P.Ins (I.Bi (I.Lt, 8, n, "loop")) ]

let test_loop_trip () =
  let a = analysis_of (counted_loop_prog 10) in
  let sccp = Cfg.Sccp.run a in
  let classes = Cfg.Classify.classify a ~sccp in
  match Cfg.Classify.find classes ~pc:(first_branch a) with
  | Some { b_class = Cfg.Classify.Loop_exit k; _ } ->
    check bool "trip bound covers the 10 iterations" true (k >= 10);
    check bool "trip bound is tight-ish (margin <= 2)" true (k <= 12)
  | Some _ -> Alcotest.fail "loop branch not classified Loop_exit"
  | None -> Alcotest.fail "loop branch not found"

(* The dynamic truth for the same loop: the VM executes the header
   exactly 10 times, within the static bound. *)
let test_loop_trip_dynamic () =
  let a = analysis_of (counted_loop_prog 10) in
  let sccp = Cfg.Sccp.run a in
  let classes = Cfg.Classify.classify a ~sccp in
  let flat = a.graph.flat in
  let outcome = Vm.Exec.run ~fuel:1000 flat in
  (* count executions of the branch pc *)
  let pc_b = first_branch a in
  let visits = ref 0 in
  for i = 0 to Vm.Trace.length outcome.trace - 1 do
    if Vm.Trace.pc outcome.trace i = pc_b then incr visits
  done;
  check int "vm runs the loop 10 times" 10 !visits;
  match Cfg.Classify.find classes ~pc:pc_b with
  | Some { b_class = Cfg.Classify.Loop_exit k; _ } ->
    check bool "dynamic visits within static trip bound" true (!visits <= k)
  | _ -> Alcotest.fail "loop branch not classified Loop_exit"

(* Registry workloads: every procedure analyzes without raising, and
   executable implies reachable (pruning only shrinks the CFG). *)
let test_workloads_consistent () =
  List.iter
    (fun (w : Workloads.Registry.t) ->
      let flat = Workloads.Registry.compile w in
      let a = Cfg.Analysis.analyze flat in
      let sccp = Cfg.Sccp.run a in
      Array.iteri
        (fun p t ->
          let v = a.views.(p) in
          for l = 0 to Cfg.View.n v - 1 do
            if Cfg.Sccp.executable t l then
              check bool
                (Printf.sprintf "%s proc %d block %d: executable => \
                                 reachable" w.name p l)
                true (Cfg.View.reachable v l)
          done)
        sccp;
      (* classification totals add up to the number of branches *)
      let classes = Cfg.Classify.classify a ~sccp in
      let d, l, x, u = Cfg.Classify.counts classes in
      check int
        (w.name ^ ": class totals cover all branches")
        (Array.length classes.Cfg.Classify.branches)
        (d + l + x + u))
    Workloads.Registry.all

let suite =
  [ Alcotest.test_case "lattice meet" `Quick test_meet;
    Alcotest.test_case "constant branch is decided" `Quick
      test_decided_branch;
    Alcotest.test_case "entry registers are zeroed" `Quick
      test_entry_zeroed;
    Alcotest.test_case "calls clobber caller-saved" `Quick
      test_call_clobbers;
    Alcotest.test_case "loads are unknown" `Quick test_load_is_bot;
    Alcotest.test_case "counted loop trip bound" `Quick test_loop_trip;
    Alcotest.test_case "trip bound holds dynamically" `Quick
      test_loop_trip_dynamic;
    Alcotest.test_case "workloads: pruning and class totals" `Slow
      test_workloads_consistent ]

(* Golden tests of the limit analyzer on synthetic programs whose
   schedules are computed by hand for every machine model. *)

module K = Risc.Insn

(* Build a synthetic Program_info directly; every instruction is its
   own basic block unless [block_of] says otherwise. *)
let mk_info ?(uses = [||]) ?(defs = [||]) ?(mem = [||]) ?(sp_adjust = [||])
    ?(overhead = [||]) ?(block_of = [||]) ?(rdf = [||]) kinds =
  let n = Array.length kinds in
  let default a v = if Array.length a = n then a else Array.make n v in
  let block_of =
    if Array.length block_of = n then block_of else Array.init n (fun i -> i)
  in
  let n_blocks = Array.fold_left max 0 block_of + 1 in
  let block_start = Array.make n_blocks max_int in
  Array.iteri
    (fun pc b -> if pc < block_start.(b) then block_start.(b) <- pc)
    block_of;
  let rdf = if Array.length rdf = n_blocks then rdf else Array.make n_blocks [||] in
  Ilp.Program_info.make ~kind:kinds ~uses:(default uses [||])
    ~defs:(default defs [||])
    ~mem:(default mem Ilp.Program_info.No_mem)
    ~sp_adjust:(default sp_adjust false)
    ~loop_overhead:(default overhead false)
    ~lat:(Array.make n Ilp.Program_info.Lat_int)
    ~block_of ~block_start ~n_blocks ~rdf

let mk_trace entries =
  let t = Vm.Trace.create () in
  List.iter (fun (pc, aux) -> Vm.Trace.push t ~pc ~aux) entries;
  t

(* A predictor scripted per static pc: [wrong] lists pcs always
   mispredicted. *)
let scripted_predictor wrong =
  { Predict.Predictor.name = "scripted";
    predict =
      (fun ~pc ~taken -> if List.mem pc wrong then not taken else taken);
    stateful = false }

let run ?(machine = Ilp.Machine.oracle) ?(wrong = []) ?(unroll = true)
    ?(inline = true) info trace =
  let cfg =
    Ilp.Analyze.config ~inline ~unroll ~collect_segments:true ~mem_words:64
      machine (scripted_predictor wrong)
  in
  Ilp.Analyze.run cfg info trace

let check_cycles name expected result =
  Alcotest.(check int) name expected result.Ilp.Analyze.cycles

(* --- pure data dependence --- *)

let test_serial_chain () =
  (* r1 <- ...; r2 <- f(r1); r3 <- f(r2): three cycles everywhere. *)
  let info =
    mk_info
      ~uses:[| [||]; [| 1 |]; [| 2 |] |]
      ~defs:[| [| 1 |]; [| 2 |]; [| 3 |] |]
      [| K.Plain; K.Plain; K.Plain |]
  in
  let trace = mk_trace [ (0, -1); (1, -1); (2, -1) ] in
  List.iter
    (fun m ->
      let r = run ~machine:m info trace in
      check_cycles ("chain " ^ m.Ilp.Machine.name) 3 r;
      Alcotest.(check int) "counted" 3 r.counted)
    Ilp.Machine.all_paper

let test_independent () =
  let info =
    mk_info
      ~defs:[| [| 1 |]; [| 2 |]; [| 3 |] |]
      [| K.Plain; K.Plain; K.Plain |]
  in
  let trace = mk_trace [ (0, -1); (1, -1); (2, -1) ] in
  List.iter
    (fun m -> check_cycles ("indep " ^ m.Ilp.Machine.name) 1
        (run ~machine:m info trace))
    Ilp.Machine.all_paper

let test_memory_dependence () =
  (* store to 7; load from 7; load from 8 (independent). *)
  let info =
    mk_info
      ~defs:[| [||]; [| 1 |]; [| 2 |] |]
      ~mem:[| Ilp.Program_info.Mem_store; Mem_load; Mem_load |]
      [| K.Plain; K.Plain; K.Plain |]
  in
  let trace = mk_trace [ (0, 7); (1, 7); (2, 8) ] in
  let r = run info trace in
  check_cycles "load waits for store" 2 r

let test_store_does_not_wait () =
  (* Anti/output dependence ignored: load-then-store to one address. *)
  let info =
    mk_info
      ~uses:[| [||]; [||]; [| 1 |] |]
      ~defs:[| [| 1 |]; [||]; [||] |]
      ~mem:[| Ilp.Program_info.Mem_load; Mem_store; Mem_store |]
      [| K.Plain; K.Plain; K.Plain |]
  in
  (* i0 loads addr 3; i1 stores addr 3 (no wait: anti-dep ignored);
     i2 stores addr 3 but uses r1 (defined by the load). *)
  let trace = mk_trace [ (0, 3); (1, 3); (2, 3) ] in
  let r = run info trace in
  check_cycles "stores unordered" 2 r

(* --- control: the six-instruction straight trace used below ---

   pc0 B1  (block 0, rdf [])
   pc1 P1  (block 1, rdf [])
   pc2 B2  (block 2, rdf [])
   pc3 P2  (block 3, rdf [])
   pc4 B3  (block 4, rdf [])
   pc5 P3  (block 5, rdf [])
   No data dependences, all control independent (RDF empty). *)

let branches_info () =
  mk_info
    [| K.Cond_branch; K.Plain; K.Cond_branch; K.Plain; K.Cond_branch;
       K.Plain |]

let branches_trace () =
  mk_trace [ (0, 1); (1, -1); (2, 1); (3, -1); (4, 1); (5, -1) ]

let test_base_serializes () =
  (* BASE: B1 t1; P1 waits B1: t2; B2 waits B1 (+flow): t2; P2 t3;
     B3 t3; P3 t4. *)
  let r = run ~machine:Ilp.Machine.base (branches_info ()) (branches_trace ()) in
  check_cycles "BASE" 4 r

let test_cd_orders_branches () =
  (* CD: plains are control independent (t1); branches execute in
     order: t1, t2, t3. *)
  let r = run ~machine:Ilp.Machine.cd (branches_info ()) (branches_trace ()) in
  check_cycles "CD" 3 r

let test_cd_mf_unordered () =
  let r =
    run ~machine:Ilp.Machine.cd_mf (branches_info ()) (branches_trace ())
  in
  check_cycles "CD-MF" 1 r

let test_sp_correct_prediction () =
  (* All predicted: nothing serializes. *)
  let r = run ~machine:Ilp.Machine.sp (branches_info ()) (branches_trace ()) in
  check_cycles "SP all predicted" 1 r;
  Alcotest.(check int) "no mispredicts" 0 r.mispredicts

let test_sp_misprediction_barrier () =
  (* B2 mispredicted: everything after waits for it. *)
  let r =
    run ~machine:Ilp.Machine.sp ~wrong:[ 2 ] (branches_info ())
      (branches_trace ())
  in
  (* B1 t1; P1 t1; B2 t1 (first misprediction, flow free); P2,B3,P3
     wait for t1 -> t2. *)
  check_cycles "SP one mispredict" 2 r;
  Alcotest.(check int) "one mispredict" 1 r.mispredicts

let test_sp_two_mispredicts_serialize () =
  let r =
    run ~machine:Ilp.Machine.sp ~wrong:[ 0; 2 ] (branches_info ())
      (branches_trace ())
  in
  (* B1 mispred t1; P1 t2; B2 mispred: waits both ctrl(1)+flow -> t2;
     P2, B3, P3 wait for t2 -> t3. *)
  check_cycles "SP two mispredicts" 3 r;
  Alcotest.(check int) "segments" 3 (Array.length r.segments)

let test_sp_cd_ignores_unrelated_mispredict () =
  (* With empty RDF nothing is control dependent on the mispredicted
     branch, so SP-CD runs at full speed. *)
  let r =
    run ~machine:Ilp.Machine.sp_cd ~wrong:[ 0; 2; 4 ] (branches_info ())
      (branches_trace ())
  in
  (* Plains: ctrl 0 -> t1.  Mispredicted branches serialize on the
     single flow: t1, t2, t3. *)
  check_cycles "SP-CD" 3 r

let test_sp_cd_mf_parallel_mispredicts () =
  let r =
    run ~machine:Ilp.Machine.sp_cd_mf ~wrong:[ 0; 2; 4 ] (branches_info ())
      (branches_trace ())
  in
  check_cycles "SP-CD-MF" 1 r

(* --- control dependence through RDF --- *)

(* pc0 branch (block 0); pc1 plain in block 1 with rdf [0];
   pc2 plain in block 2 with rdf [] (control independent). *)
let cd_info () =
  mk_info
    ~rdf:[| [||]; [| 0 |]; [||] |]
    [| K.Cond_branch; K.Plain; K.Plain |]

let test_cd_rdf_constraint () =
  let trace = mk_trace [ (0, 1); (1, -1); (2, -1) ] in
  let r = run ~machine:Ilp.Machine.cd (cd_info ()) trace in
  (* branch t1; dependent plain t2; independent plain t1. *)
  check_cycles "CD rdf" 2 r;
  let r = run ~machine:Ilp.Machine.oracle (cd_info ()) trace in
  check_cycles "oracle ignores control" 1 r

let test_sp_cd_mispredicted_ancestor () =
  let trace = mk_trace [ (0, 1); (1, -1); (2, -1) ] in
  (* Branch mispredicted: its dependent must wait under SP-CD; the
     control-independent instruction must not. *)
  let r = run ~machine:Ilp.Machine.sp_cd ~wrong:[ 0 ] (cd_info ()) trace in
  check_cycles "SP-CD rdf" 2 r;
  (* Correctly predicted: even the dependent goes at t1. *)
  let r = run ~machine:Ilp.Machine.sp_cd (cd_info ()) trace in
  check_cycles "SP-CD predicted" 1 r

(* --- most recent instance wins --- *)

let test_latest_instance () =
  (* Loop-shaped: branch block 0 executes twice; dependent block 1
     must wait for the most recent instance.  Trace:
       B(t1) P B(t?) P
     with a data chain forcing the second B to t2. *)
  let info =
    mk_info
      ~uses:[| [| 1 |]; [||]; [||] |]
      ~defs:[| [||]; [| 1 |]; [||] |]
      ~rdf:[| [||]; [||]; [| 0 |] |]
      ~block_of:[| 0; 1; 2 |]
      [| K.Cond_branch; K.Plain; K.Plain |]
  in
  (* trace: P(defs r1, t1), B(uses r1, t2), dependent P: waits the
     branch instance -> t3; then B again (r1 unchanged: still t2?  r1
     written once at t1, so second B = max(1+1, ...) -> t2), dependent
     P waits most recent instance -> t3. *)
  let trace =
    mk_trace [ (1, -1); (0, 1); (2, -1); (0, 1); (2, -1) ]
  in
  let r = run ~machine:Ilp.Machine.cd_mf info trace in
  check_cycles "latest instance" 3 r

(* --- interprocedural control dependence --- *)

let test_interproc_inheritance () =
  (* pc0: branch (block 0, rdf []); pc1: call (block 1, rdf [0]);
     pc2: callee plain (block 2, rdf []); pc3: ret (block 3).
     The callee instruction inherits the call site's control
     dependence on the branch. *)
  let info =
    mk_info
      ~rdf:[| [||]; [| 0 |]; [||]; [||] |]
      [| K.Cond_branch; K.Call; K.Plain; K.Ret |]
  in
  let trace = mk_trace [ (0, 1); (1, -1); (2, -1); (3, -1) ] in
  let r = run ~machine:Ilp.Machine.cd_mf info trace in
  (* branch t1; call removed; callee plain inherits ctrl 1 -> t2. *)
  check_cycles "inherited CD" 2 r;
  Alcotest.(check int) "call/ret not counted" 2 r.counted;
  (* Without the rdf on the call block there is no inheritance. *)
  let info2 =
    mk_info
      ~rdf:[| [||]; [||]; [||]; [||] |]
      [| K.Cond_branch; K.Call; K.Plain; K.Ret |]
  in
  let r2 = run ~machine:Ilp.Machine.cd_mf info2 trace in
  check_cycles "no inheritance" 1 r2

let test_inline_removes_sp_adjust () =
  let info =
    mk_info
      ~sp_adjust:[| true; false |]
      ~defs:[| [| 29 |]; [||] |]
      ~uses:[| [| 29 |]; [| 29 |] |]
      [| K.Plain; K.Plain |]
  in
  let trace = mk_trace [ (0, -1); (1, -1) ] in
  let r = run info trace in
  Alcotest.(check int) "sp adjust removed" 1 r.counted;
  check_cycles "consumer unaffected" 1 r;
  let r2 = run ~inline:false info trace in
  Alcotest.(check int) "kept without inlining" 2 r2.counted;
  check_cycles "dependence restored" 2 r2

(* --- perfect unrolling --- *)

let test_unroll_removes_overhead () =
  (* induction update chain: i0: r1 <- r1+1 (overhead); i1: uses r1. *)
  let info =
    mk_info
      ~uses:[| [| 1 |]; [| 1 |] |]
      ~defs:[| [| 1 |]; [||] |]
      ~overhead:[| true; false |]
      [| K.Plain; K.Plain |]
  in
  let trace = mk_trace [ (0, -1); (1, -1); (0, -1); (1, -1) ] in
  let r = run info trace in
  Alcotest.(check int) "updates removed" 2 r.counted;
  check_cycles "iterations decoupled" 1 r;
  let r2 = run ~unroll:false info trace in
  Alcotest.(check int) "kept" 4 r2.counted;
  check_cycles "chained" 3 r2

let test_unroll_branch_passthrough () =
  (* outer branch OB (block 0); removed loop branch LB (block 1,
     rdf [0]); body plain (block 2, rdf [1]).  The body must inherit
     the dependence on OB through the removed LB. *)
  let info =
    mk_info
      ~overhead:[| false; true; false |]
      ~rdf:[| [||]; [| 0 |]; [| 1 |] |]
      [| K.Cond_branch; K.Cond_branch; K.Plain |]
  in
  let trace = mk_trace [ (0, 1); (1, 1); (2, -1) ] in
  let r = run ~machine:Ilp.Machine.cd_mf info trace in
  (* OB t1; LB removed (passes through t1); body waits t1 -> t2. *)
  check_cycles "pass-through" 2 r;
  Alcotest.(check int) "LB not counted" 2 r.counted

(* --- computed jumps --- *)

let test_computed_jump_always_mispredicted () =
  let info =
    mk_info [| K.Computed_jump; K.Plain |]
  in
  let trace = mk_trace [ (0, -1); (1, -1) ] in
  let r = run ~machine:Ilp.Machine.sp info trace in
  check_cycles "jtab barriers SP" 2 r;
  Alcotest.(check int) "counts as mispredict" 1 r.mispredicts;
  let r = run ~machine:Ilp.Machine.oracle info trace in
  check_cycles "oracle unaffected" 1 r

(* --- extension knobs --- *)

let test_window () =
  (* chain of 4 (r1->r2->r3->r4), then r5 <- const, r6 <- f(r5).
     window 1: the const issues no earlier than the chain's end (its
     window predecessor), pushing its consumer past the chain. *)
  let info =
    mk_info
      ~uses:[| [||]; [| 1 |]; [| 2 |]; [| 3 |]; [||]; [| 5 |] |]
      ~defs:[| [| 1 |]; [| 2 |]; [| 3 |]; [| 4 |]; [| 5 |]; [| 6 |] |]
      [| K.Plain; K.Plain; K.Plain; K.Plain; K.Plain; K.Plain |]
  in
  let trace = mk_trace (List.init 6 (fun i -> (i, -1))) in
  let unlimited = run info trace in
  check_cycles "unlimited window" 4 unlimited;
  let windowed =
    run ~machine:(Ilp.Machine.with_window 1 Ilp.Machine.oracle) info trace
  in
  check_cycles "window 1" 5 windowed

let test_flows_k () =
  let info = branches_info () in
  let trace = branches_trace () in
  let with_flows k =
    run ~machine:(Ilp.Machine.with_flows (Some k) Ilp.Machine.cd) info trace
  in
  check_cycles "k=1" 3 (with_flows 1);
  check_cycles "k=2" 2 (with_flows 2);
  check_cycles "k=3" 1 (with_flows 3)

let test_latency () =
  let info =
    mk_info
      ~uses:[| [||]; [| 1 |] |]
      ~defs:[| [| 1 |]; [| 2 |] |]
      [| K.Plain; K.Plain |]
  in
  let trace = mk_trace [ (0, -1); (1, -1) ] in
  let m =
    Ilp.Machine.with_latencies (fun _ -> 3) Ilp.Machine.oracle
  in
  let r = run ~machine:m info trace in
  (* t0 = 1 completes 3; t1 = 4 completes 6. *)
  check_cycles "latency chain" 6 r;
  Alcotest.(check int) "seq cycles sum latencies" 6 r.seq_cycles;
  Alcotest.(check (float 1e-9)) "parallelism 1" 1. r.parallelism

(* --- segment statistics --- *)

let test_segments () =
  let r =
    run ~machine:Ilp.Machine.sp ~wrong:[ 2 ] (branches_info ())
      (branches_trace ())
  in
  (* One misprediction at the third counted instruction: first segment
     length 3 (P-B-B up to and including the mispredicted B2), final
     partial segment length 3. *)
  Alcotest.(check int) "two segments" 2 (Array.length r.segments);
  Alcotest.(check int) "first segment length" 3 r.segments.(0).length;
  Alcotest.(check int) "second segment length" 3 r.segments.(1).length

let test_distance_histogram () =
  let segments =
    [| { Ilp.Analyze.length = 3; cycles = 1 };
       { length = 3; cycles = 2 };
       { length = 7; cycles = 7 } |]
  in
  Alcotest.(check (list (pair int int)))
    "histogram" [ (3, 2); (7, 1) ]
    (Ilp.Stats.distance_histogram segments);
  let buckets = Ilp.Stats.parallelism_by_distance segments in
  Alcotest.(check int) "two buckets" 2 (List.length buckets);
  let b34 = List.find (fun (b : Ilp.Stats.bucket) -> b.lo = 3) buckets in
  Alcotest.(check int) "bucket count" 2 b34.count

let suite =
  [ Alcotest.test_case "serial chain" `Quick test_serial_chain;
    Alcotest.test_case "independent" `Quick test_independent;
    Alcotest.test_case "memory dependence" `Quick test_memory_dependence;
    Alcotest.test_case "stores unordered" `Quick test_store_does_not_wait;
    Alcotest.test_case "BASE serializes" `Quick test_base_serializes;
    Alcotest.test_case "CD orders branches" `Quick test_cd_orders_branches;
    Alcotest.test_case "CD-MF unordered" `Quick test_cd_mf_unordered;
    Alcotest.test_case "SP predicted" `Quick test_sp_correct_prediction;
    Alcotest.test_case "SP mispredict barrier" `Quick
      test_sp_misprediction_barrier;
    Alcotest.test_case "SP serial mispredicts" `Quick
      test_sp_two_mispredicts_serialize;
    Alcotest.test_case "SP-CD unrelated mispredict" `Quick
      test_sp_cd_ignores_unrelated_mispredict;
    Alcotest.test_case "SP-CD-MF parallel mispredicts" `Quick
      test_sp_cd_mf_parallel_mispredicts;
    Alcotest.test_case "CD rdf constraint" `Quick test_cd_rdf_constraint;
    Alcotest.test_case "SP-CD mispredicted ancestor" `Quick
      test_sp_cd_mispredicted_ancestor;
    Alcotest.test_case "latest instance" `Quick test_latest_instance;
    Alcotest.test_case "interproc inheritance" `Quick
      test_interproc_inheritance;
    Alcotest.test_case "inline removes sp adjust" `Quick
      test_inline_removes_sp_adjust;
    Alcotest.test_case "unroll removes overhead" `Quick
      test_unroll_removes_overhead;
    Alcotest.test_case "unroll branch pass-through" `Quick
      test_unroll_branch_passthrough;
    Alcotest.test_case "computed jumps" `Quick
      test_computed_jump_always_mispredicted;
    Alcotest.test_case "finite window" `Quick test_window;
    Alcotest.test_case "k flows" `Quick test_flows_k;
    Alcotest.test_case "latency" `Quick test_latency;
    Alcotest.test_case "segments" `Quick test_segments;
    Alcotest.test_case "distance histogram" `Quick test_distance_histogram ]

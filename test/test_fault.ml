(* Robustness layer: typed VM faults, truncated-trace analysis,
   resource guards, deterministic fault injection, and the pipeline
   invariant (no exception ever escapes — fuzzed). *)

module I = Risc.Insn
module P = Asm.Program
module E = Pipeline_error

let run_insns ?fuel insns =
  let items = List.map (fun i -> P.Ins i) insns in
  let prog =
    { P.procs = [ { P.name = "main"; body = items } ]; data = []; entry = "main" }
  in
  Vm.Exec.run ?fuel ~mem_words:4096 (P.resolve prog)

let fault_kind_of outcome =
  match outcome.Vm.Exec.status with
  | Vm.Exec.Fault f -> Some f.E.f_kind
  | Halted _ | Out_of_fuel -> None

let kind = Alcotest.testable (Fmt.of_to_string E.fault_kind_name) ( = )

(* One workload record per VM fault class, driven through the same
   Harness entry points the real registry uses. *)
let faulty_workload name source =
  { Workloads.Registry.name; description = "fault-class test"; lang = "C";
    numeric = false; source; fuel = 100_000; expected_result = None }

let div_workload =
  faulty_workload "divzero"
    "int main(void) { int i; int s = 1; for (i = 3; i + 3; i = i - 1) s = s \
     + 100 / i; return s; }"

let mem_workload =
  faulty_workload "memoob"
    "int a[4]; int main(void) { int i; int s = 0; for (i = 0; i < \
     100000000; i = i * 8 + 1) s = s + a[i]; return s; }"

(* --- VM fault classes ---------------------------------------------- *)

let test_vm_fault_classes () =
  let check name expected insns =
    let o = run_insns insns in
    Alcotest.(check (option kind)) name (Some expected) (fault_kind_of o);
    (* the typed fault also tags completeness for the analyzer *)
    match Vm.Exec.completeness_of o with
    | E.Truncated f ->
      Alcotest.(check kind) (name ^ " completeness") expected f.E.f_kind;
      Alcotest.(check int) (name ^ " step") o.steps f.E.f_step
    | E.Complete -> Alcotest.fail (name ^ ": expected Truncated")
  in
  check "div by zero" E.Div_by_zero
    [ I.Li (8, 3); I.Li (9, 0); I.Alu (I.Div, 2, 8, 9); I.Halt ];
  check "rem by zero" E.Div_by_zero
    [ I.Li (8, 3); I.Li (9, 0); I.Alu (I.Rem, 2, 8, 9); I.Halt ];
  check "load out of range" E.Mem_out_of_range
    [ I.Li (8, 1_000_000); I.Lw (9, 8, 0); I.Halt ];
  check "store out of range" E.Mem_out_of_range
    [ I.Li (8, -3); I.Sw (8, 8, 0); I.Halt ];
  check "pc out of range" E.Pc_out_of_range
    [ I.Li (8, 999_999); I.Jr 8 ]

let test_jtab_fault () =
  let prog =
    { P.procs =
        [ { P.name = "main";
            body =
              [ P.Ins (I.Li (8, 7));
                P.Ins (I.Jtab (8, [| "l0"; "l1" |]));
                P.Label "l0"; P.Ins I.Halt;
                P.Label "l1"; P.Ins I.Halt ] } ];
      data = []; entry = "main" }
  in
  let o = Vm.Exec.run ~mem_words:4096 (P.resolve prog) in
  Alcotest.(check (option kind)) "jtab" (Some E.Jtab_out_of_range)
    (fault_kind_of o)

(* --- faulting workloads through prepare / streaming Run.exec ------- *)

let spec1 = [ Harness.spec Ilp.Machine.sp_cd_mf ]

(* One workload through the streaming pipeline, as a result. *)
let stream_result ?fuel ?mem_words w specs =
  match
    Harness.Run.exec
      (Harness.Run.config ?fuel ?mem_words ~stream:true specs)
      [ w ]
  with
  | Ok [ it ] -> it.Harness.Run.it_outcome
  | Ok _ -> Alcotest.fail "one workload, one item"
  | Error e -> Error e

let stream ?fuel w specs =
  match stream_result ?fuel w specs with
  | Ok rs -> rs
  | Error e -> Alcotest.fail (E.to_string e)

let completeness_kind = function
  | E.Complete -> None
  | E.Truncated f -> Some f.E.f_kind

let test_prepare_faulting () =
  List.iter
    (fun (w, expected) ->
      let p = Harness.prepare w in
      Alcotest.(check (option kind)) (w.Workloads.Registry.name ^ " status")
        (Some expected) (fault_kind_of
          { Vm.Exec.status = p.Harness.status; trace = p.trace;
            steps = p.steps });
      let results = Harness.Run.on_prepared p spec1 in
      List.iter
        (fun (r : Ilp.Analyze.result) ->
          Alcotest.(check (option kind))
            (w.Workloads.Registry.name ^ " analysis tag") (Some expected)
            (completeness_kind r.completeness);
          Alcotest.(check bool)
            (w.Workloads.Registry.name ^ " analyzed a prefix") true
            (r.counted > 0))
        results)
    [ (div_workload, E.Div_by_zero); (mem_workload, E.Mem_out_of_range) ]

let test_streaming_faulting () =
  List.iter
    (fun (w, expected) ->
      match stream_result w spec1 with
      | Error e -> Alcotest.fail (E.to_string e)
      | Ok [ r ] ->
        Alcotest.(check (option kind)) (w.Workloads.Registry.name ^ " tag")
          (Some expected)
          (completeness_kind r.Ilp.Analyze.completeness)
      | Ok _ -> Alcotest.fail "one spec, one result")
    [ (div_workload, E.Div_by_zero); (mem_workload, E.Mem_out_of_range) ]

(* Acceptance: a fuel-truncated run of every registry workload analyzes
   to Truncated (out_of_fuel) instead of raising. *)
let test_fuel_truncation_all () =
  List.iter
    (fun w ->
      match stream ~fuel:2_000 w spec1 with
      | [ r ] ->
        Alcotest.(check (option kind)) (w.Workloads.Registry.name ^ " fuel")
          (Some E.Out_of_fuel)
          (completeness_kind r.Ilp.Analyze.completeness)
      | _ -> Alcotest.fail "one spec, one result")
    Workloads.Registry.all

(* streaming and materialized paths must agree on the tag too *)
let test_truncated_equivalence () =
  let w = Workloads.Registry.find "eqntott" in
  let p = Harness.prepare ~fuel:3_000 w in
  let a = Harness.Run.on_prepared p spec1 in
  let b = stream ~fuel:3_000 w spec1 in
  List.iter2
    (fun (x : Ilp.Analyze.result) (y : Ilp.Analyze.result) ->
      Alcotest.(check (float 1e-9)) "parallelism" x.parallelism y.parallelism;
      Alcotest.(check (option kind)) "tag"
        (completeness_kind x.completeness)
        (completeness_kind y.completeness))
    a b

(* --- resource guards ----------------------------------------------- *)

let test_step_budget () =
  let w = Workloads.Registry.find "awk" in
  let budget = 500 in
  match
    stream ~fuel:20_000 w
      [ Harness.spec ~step_budget:budget Ilp.Machine.sp_cd_mf ]
  with
  | [ r ] ->
    Alcotest.(check (option kind)) "budget tag" (Some E.Step_budget)
      (completeness_kind r.Ilp.Analyze.completeness);
    Alcotest.(check bool) "counted within budget" true
      (r.counted <= budget);
    Alcotest.(check bool) "still produced a number" true
      (r.parallelism > 0.)
  | _ -> Alcotest.fail "one spec, one result"

let test_mem_words_guard () =
  let w = Workloads.Registry.find "awk" in
  (match Harness.prepare_result ~mem_words:(Vm.Exec.max_mem_words + 1) w with
  | Error e ->
    (match e.E.cause with
    | E.Budget_exceeded { limit; requested; _ } ->
      Alcotest.(check int) "limit" Vm.Exec.max_mem_words limit;
      Alcotest.(check int) "requested" (Vm.Exec.max_mem_words + 1) requested
    | _ -> Alcotest.fail ("wrong cause: " ^ E.to_string e));
    Alcotest.(check int) "exit code" 5 (E.exit_code e)
  | Ok _ -> Alcotest.fail "cap not enforced");
  match stream_result ~mem_words:0 w spec1 with
  | Error { E.cause = E.Invalid_request _; _ } -> ()
  | Error e -> Alcotest.fail ("wrong cause: " ^ E.to_string e)
  | Ok _ -> Alcotest.fail "zero memory accepted"

(* --- typed lookups and compile errors ------------------------------ *)

let test_unknown_names () =
  (match Workloads.Registry.find_result "akw" with
  | Error { E.cause = E.Unknown_workload { hint = Some h; _ }; _ } ->
    Alcotest.(check string) "did you mean" "awk" h
  | Error e -> Alcotest.fail ("no hint: " ^ E.to_string e)
  | Ok _ -> Alcotest.fail "akw resolved");
  (match Workloads.Registry.find_result "zzz" with
  | Error e -> Alcotest.(check int) "exit code" 2 (E.exit_code e)
  | Ok _ -> Alcotest.fail "zzz resolved");
  Alcotest.(check bool) "fault kind spelling" true
    (Fault.Injector.kind_of_string "bit_flip" = Some Fault.Injector.Bit_flip);
  Alcotest.(check bool) "fault kind unknown" true
    (Fault.Injector.kind_of_string "rowhammer" = None)

let test_compile_error_typed () =
  let bad = faulty_workload "bad" "int main(void) { return 1 +; }" in
  (match Workloads.Registry.compile_result bad with
  | Error e ->
    (match e.E.cause with
    | E.Compile_error _ -> ()
    | _ -> Alcotest.fail ("wrong cause: " ^ E.to_string e));
    Alcotest.(check int) "exit code" 3 (E.exit_code e)
  | Ok _ -> Alcotest.fail "bad source compiled");
  match Harness.prepare_result bad with
  | Error { E.cause = E.Compile_error _; _ } -> ()
  | Error e -> Alcotest.fail ("wrong cause: " ^ E.to_string e)
  | Ok _ -> Alcotest.fail "bad source prepared"

(* --- fault injection ----------------------------------------------- *)

let small_fuel = 20_000

let test_inject_deterministic () =
  let w = Workloads.Registry.find "eqntott" in
  List.iter
    (fun k ->
      let a = Harness.inject ~fuel:small_fuel ~seed:42 ~kind:k w in
      let b = Harness.inject ~fuel:small_fuel ~seed:42 ~kind:k w in
      match (a, b) with
      | Ok x, Ok y ->
        Alcotest.(check string)
          (Fault.Injector.kind_name k ^ " description")
          x.Harness.i_description y.Harness.i_description;
        Alcotest.(check int) "steps" x.i_steps y.i_steps;
        Alcotest.(check (float 0.))
          (Fault.Injector.kind_name k ^ " parallelism")
          x.i_result.Ilp.Analyze.parallelism
          y.i_result.Ilp.Analyze.parallelism
      | Error x, Error y ->
        Alcotest.(check string) "same error" (E.to_string x) (E.to_string y)
      | _ -> Alcotest.fail "same seed, different shape")
    Fault.Injector.all_kinds

let test_inject_kinds_behave () =
  let w = Workloads.Registry.find "eqntott" in
  (* fuel-cut always lowers the budget below the run's length, so the
     result must be truncated *)
  (match Harness.inject ~fuel:small_fuel ~seed:3 ~kind:Fuel_cut w with
  | Ok inj ->
    Alcotest.(check bool) "fuel-cut truncates" true
      (completeness_kind inj.i_result.Ilp.Analyze.completeness <> None)
  | Error e -> Alcotest.fail (E.to_string e));
  (* trace-cut: the analyzer sees at most the kept prefix while the
     execution runs to its own end *)
  match Harness.inject ~fuel:small_fuel ~seed:5 ~kind:Trace_cut w with
  | Ok inj ->
    Alcotest.(check bool) "analyzer prefix bounded" true
      (inj.i_result.Ilp.Analyze.counted <= inj.i_steps)
  | Error e -> Alcotest.fail (E.to_string e)

let test_fuzz_no_escape () =
  let r =
    match Harness.Fuzz.run ~fuel:small_fuel ~seed:1 ~cases:64 () with
    | Ok r -> r
    | Error e -> Alcotest.fail (E.to_string e)
  in
  Alcotest.(check int) "all cases ran" 64 r.Harness.Fuzz.cases;
  Alcotest.(check int) "categories partition the cases" 64
    (r.complete + r.truncated + r.structured_errors + r.internal_errors
    + List.length r.escaped);
  Alcotest.(check int) "no escaped exceptions" 0 (List.length r.escaped);
  Alcotest.(check int) "no internal errors" 0 r.internal_errors

(* qcheck: for arbitrary seeds and kinds the invariant holds — inject
   returns Ok or a structured Error, never an exception. *)
let prop_no_escape =
  let w = Workloads.Registry.find "awk" in
  QCheck.Test.make ~count:60 ~name:"injected faults never escape"
    (QCheck.pair QCheck.small_nat (QCheck.int_range 0 3))
    (fun (seed, ki) ->
      let kind = List.nth Fault.Injector.all_kinds ki in
      match Harness.inject ~fuel:10_000 ~seed ~kind w with
      | Ok inj ->
        (* and analysis numbers stay well-formed *)
        inj.Harness.i_result.Ilp.Analyze.parallelism >= 0.
        && inj.i_result.counted >= 0
      | Error _ -> true)

let suite =
  [ Alcotest.test_case "vm fault classes" `Quick test_vm_fault_classes;
    Alcotest.test_case "jtab fault" `Quick test_jtab_fault;
    Alcotest.test_case "prepare analyzes faulting run" `Quick
      test_prepare_faulting;
    Alcotest.test_case "streaming analyzes faulting run" `Quick
      test_streaming_faulting;
    Alcotest.test_case "fuel truncation, every workload" `Quick
      test_fuel_truncation_all;
    Alcotest.test_case "truncated paths agree" `Quick
      test_truncated_equivalence;
    Alcotest.test_case "analysis step budget" `Quick test_step_budget;
    Alcotest.test_case "memory words guard" `Quick test_mem_words_guard;
    Alcotest.test_case "unknown names get hints" `Quick test_unknown_names;
    Alcotest.test_case "compile errors are typed" `Quick
      test_compile_error_typed;
    Alcotest.test_case "inject is deterministic" `Quick
      test_inject_deterministic;
    Alcotest.test_case "inject kinds behave" `Quick test_inject_kinds_behave;
    Alcotest.test_case "fuzz: nothing escapes" `Quick test_fuzz_no_escape;
    QCheck_alcotest.to_alcotest prop_no_escape ]

(* Diagnostics-engine framework tests: configuration (disable,
   severity override, strict), deterministic ordering, JSON rendering,
   timings, and observability wiring. *)

module I = Risc.Insn
module P = Asm.Program
module R = Risc.Reg
module E = Cfg.Engine

let main_halt body = { P.name = "main"; body = body @ [ P.Ins I.Halt ] }

let prog ?(procs = []) main_body =
  { P.procs = main_halt main_body :: procs; data = []; entry = "main" }

(* A program carrying two warning classes: a dead store at pc 0 and an
   unreachable block (the instruction jumped over). *)
let warny =
  prog
    [ P.Ins (I.Li (9, 5));
      P.Ins (I.J "skip");
      P.Ins (I.Li (8, 1));
      P.Label "skip";
      P.Ins (I.Li (9, 6));
      P.Ins (I.Alui (I.Add, R.rv, 9, 0)) ]

let run ?obs ?config p =
  E.run ?obs ?config Cfg.Verify.passes (Cfg.Analysis.analyze (P.resolve p))

let passes_hit r =
  List.sort_uniq compare (List.map (fun (d : E.diag) -> d.d_pass) r.E.diags)

let test_baseline () =
  let r = run warny in
  Alcotest.(check int) "no errors" 0 r.n_errors;
  Alcotest.(check bool) "has warnings" true (r.n_warnings > 0);
  Alcotest.(check bool) "dead-store fires" true
    (List.mem "dead-store" (passes_hit r));
  Alcotest.(check bool) "unreachable-block fires" true
    (List.mem "unreachable-block" (passes_hit r));
  Alcotest.(check bool) "max severity is warning" true
    (E.max_severity r = Some E.Warning)

let test_disable () =
  let config = { E.default_config with disabled = [ "dead-store" ] } in
  let r = run ~config warny in
  Alcotest.(check bool) "dead-store silenced" false
    (List.mem "dead-store" (passes_hit r));
  Alcotest.(check bool) "other passes still run" true
    (List.mem "unreachable-block" (passes_hit r));
  Alcotest.(check bool) "disabled pass is not timed" false
    (List.exists (fun (t : E.timing) -> t.t_pass = "dead-store") r.timings)

let test_severity_override () =
  let config =
    { E.default_config with severities = [ ("dead-store", E.Error) ] }
  in
  let r = run ~config warny in
  Alcotest.(check bool) "override produces errors" true (r.n_errors > 0);
  Alcotest.(check bool) "max severity is error" true
    (E.max_severity r = Some E.Error);
  List.iter
    (fun (d : E.diag) ->
      if d.d_pass = "dead-store" then
        Alcotest.(check bool) "dead-store diag is an error" true
          (d.d_severity = E.Error))
    r.diags

let test_strict () =
  let r = run ~config:{ E.default_config with strict = true } warny in
  Alcotest.(check int) "strict leaves no warnings" 0 r.n_warnings;
  Alcotest.(check bool) "strict promotes to errors" true (r.n_errors > 0)

(* Diagnostics in several procedures must come out sorted by
   (procedure, pc, pass name). *)
let test_ordering () =
  let p =
    prog
      ~procs:
        [ { P.name = "f";
            body =
              [ P.Ins (I.Li (9, 5));
                P.Ins (I.Li (9, 6));
                P.Ins (I.Alui (I.Add, R.rv, 9, 0));
                P.Ins (I.Jr R.ra) ] } ]
      [ P.Ins (I.Li (9, 5));
        P.Ins (I.J "skip");
        P.Ins (I.Li (8, 1));
        P.Label "skip";
        P.Ins (I.Li (9, 6));
        P.Ins (I.Alui (I.Add, R.rv, 9, 0));
        P.Ins (I.Jal "f") ]
  in
  let r = run p in
  Alcotest.(check bool) "diags span two procedures" true
    (List.exists (fun (d : E.diag) -> d.d_proc = 1) r.diags);
  let keys =
    List.map (fun (d : E.diag) -> (d.d_proc, d.d_pc, d.d_pass)) r.diags
  in
  Alcotest.(check bool) "sorted by (proc, pc, pass)" true
    (keys = List.sort compare keys)

let test_timings () =
  let r = run warny in
  Alcotest.(check int) "one timing per enabled pass"
    (List.length Cfg.Verify.passes)
    (List.length r.timings);
  let total_timed =
    List.fold_left (fun acc (t : E.timing) -> acc + t.t_diags) 0 r.timings
  in
  Alcotest.(check int) "timed diag counts add up"
    (List.length r.diags) total_timed;
  List.iter
    (fun (t : E.timing) ->
      Alcotest.(check bool) (t.t_pass ^ " has a duration") true
        (Int64.compare t.t_ns 0L >= 0))
    r.timings

let test_render_json () =
  let r = run warny in
  let buf = Buffer.create 256 in
  E.render_json buf r;
  let s = Buffer.contents buf in
  let has sub =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "diagnostics key" true (has "\"diagnostics\"");
  Alcotest.(check bool) "errors key" true (has "\"errors\"");
  Alcotest.(check bool) "warnings key" true (has "\"warnings\"");
  Alcotest.(check bool) "passes key" true (has "\"passes\"");
  Alcotest.(check bool) "dead-store class appears" true
    (has "\"dead-store\"")

let test_metrics_and_spans () =
  let registry = Obs.Metrics.create () in
  let obs = Obs.Ctx.create ~registry () in
  let r = run ~obs warny in
  let dead =
    List.length
      (List.filter (fun (d : E.diag) -> d.d_pass = "dead-store") r.diags)
  in
  Alcotest.(check bool) "a dead store was found" true (dead > 0);
  let c =
    Obs.Metrics.counter registry "verify_diagnostics_total{class=\"dead-store\"}"
  in
  Alcotest.(check int) "diag counter matches report" dead
    (Obs.Metrics.counter_value c);
  let ns =
    Obs.Metrics.counter registry "static_pass_ns{pass=\"dead-store\"}"
  in
  Alcotest.(check bool) "pass time recorded" true
    (Obs.Metrics.counter_value ns >= 0);
  let spans = Obs.Ctx.spans obs in
  Alcotest.(check bool) "per-pass spans recorded" true
    (Array.length spans >= List.length Cfg.Verify.passes)

(* The compatibility shim: Verify.check must agree with a direct
   engine run, diag for diag. *)
let test_verify_compat () =
  let a = Cfg.Analysis.analyze (P.resolve warny) in
  let er = E.run Cfg.Verify.passes a in
  let vr = Cfg.Verify.of_engine er in
  Alcotest.(check int) "same error count" er.n_errors vr.n_errors;
  Alcotest.(check int) "same warning count" er.n_warnings vr.n_warnings;
  Alcotest.(check int) "same diag count"
    (List.length er.diags) (List.length vr.diags)

let suite =
  [ Alcotest.test_case "baseline run" `Quick test_baseline;
    Alcotest.test_case "disable a pass" `Quick test_disable;
    Alcotest.test_case "severity override" `Quick test_severity_override;
    Alcotest.test_case "strict promotion" `Quick test_strict;
    Alcotest.test_case "deterministic ordering" `Quick test_ordering;
    Alcotest.test_case "per-pass timings" `Quick test_timings;
    Alcotest.test_case "json rendering" `Quick test_render_json;
    Alcotest.test_case "metrics and spans" `Quick test_metrics_and_spans;
    Alcotest.test_case "verify compatibility" `Quick test_verify_compat ]

(* The serve daemon, bottom up: the JSON layer is total over arbitrary
   bytes, the bounded queue sheds rather than grows, the LRU cache
   evicts by recency, framing survives torn and oversized frames — and
   end to end, a served reply is byte-identical to the local one-shot
   that would have produced it, typed errors answer every refusal, and
   concurrent faulty requests never perturb healthy ones. *)

module Jsonx = Serve.Jsonx
module Protocol = Serve.Protocol
module Rqueue = Serve.Rqueue
module Cache = Serve.Cache
module Server = Serve.Server
module Client = Serve.Client
module Wire_fuzz = Serve.Wire_fuzz

let check = Alcotest.check
let fail = Alcotest.fail
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Jsonx: total parse, deterministic print. *)

let test_jsonx_roundtrip () =
  let src = {|{"a":1,"b":[true,null,"x\ny"],"c":{"d":2.5},"e":-7}|} in
  match Jsonx.parse src with
  | Error e -> fail e
  | Ok v -> (
    check bool "int member" true (Jsonx.(member "a" v |> Option.get |> to_int) = Some 1);
    check bool "nested float" true
      (Jsonx.(member "c" v |> Option.get |> member "d" |> Option.get |> to_float)
      = Some 2.5);
    (match Jsonx.(member "b" v |> Option.get |> to_list) with
    | Some [ b; n; s ] ->
      check bool "bool" true (Jsonx.to_bool b = Some true);
      check bool "null is not a string" true (Jsonx.to_str n = None);
      check bool "escaped string" true (Jsonx.to_str s = Some "x\ny")
    | _ -> fail "list shape");
    (* print → parse is the identity *)
    match Jsonx.parse (Jsonx.to_string v) with
    | Ok v2 -> check bool "print/parse identity" true (v = v2)
    | Error e -> fail e)

let test_jsonx_rejects () =
  let bad s =
    match Jsonx.parse s with
    | Ok _ -> fail (Printf.sprintf "accepted %S" s)
    | Error _ -> ()
  in
  bad "{\"a\":1} x";              (* trailing bytes *)
  bad "\"\xff\xfe\"";             (* invalid UTF-8 in a string *)
  bad "{\"a\":";                  (* truncated *)
  bad "[1,]";                     (* dangling comma *)
  bad "\"\\ud800\"";              (* lone surrogate *)
  bad (String.make 70 '[');       (* past the nesting limit *)
  (* ... but 40 levels are fine *)
  match Jsonx.parse (String.make 40 '[' ^ String.make 40 ']') with
  | Ok _ -> ()
  | Error e -> fail e

let test_jsonx_nonfinite_floats () =
  check string "nan prints null" "null" (Jsonx.to_string (Jsonx.Float nan));
  check string "inf prints null" "null"
    (Jsonx.to_string (Jsonx.Float infinity));
  check string "finite float survives" "2.5"
    (Jsonx.to_string (Jsonx.Float 2.5))

(* ------------------------------------------------------------------ *)
(* Rqueue: bounded, FIFO, shed-on-full, drain-on-close. *)

let test_rqueue_shed () =
  let q = Rqueue.create ~limit:2 in
  check int "limit" 2 (Rqueue.limit q);
  check bool "first push" true (Rqueue.push q `A = `Ok 1);
  check bool "second push" true (Rqueue.push q `B = `Ok 2);
  check bool "third sheds at depth 2" true (Rqueue.push q `C = `Overloaded 2);
  check bool "FIFO" true (Rqueue.pop_opt q = Some `A);
  check bool "FIFO again" true (Rqueue.pop_opt q = Some `B);
  check bool "shed item was dropped" true (Rqueue.pop_opt q = None)

let test_rqueue_close_drains () =
  let q = Rqueue.create ~limit:4 in
  ignore (Rqueue.push q 1);
  ignore (Rqueue.push q 2);
  Rqueue.close q;
  Rqueue.close q;  (* idempotent *)
  check bool "push after close refused" true (Rqueue.push q 3 = `Closed);
  check bool "queued items still drain" true (Rqueue.pop q = Some 1);
  check bool "drain continues" true (Rqueue.pop q = Some 2);
  check bool "closed and empty" true (Rqueue.pop q = None)

let test_rqueue_limit_clamped () =
  let q = Rqueue.create ~limit:0 in
  check int "limit clamped to 1" 1 (Rqueue.limit q);
  ignore (Rqueue.push q ());
  check bool "full at 1" true (Rqueue.push q () = `Overloaded 1)

(* ------------------------------------------------------------------ *)
(* Cache: LRU with find-refresh, hit/miss accounting. *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "k1" 1;
  Cache.add c "k2" 2;
  check bool "k1 present" true (Cache.find c "k1" = Some 1);
  (* the find refreshed k1, so k2 is now the least recently used *)
  Cache.add c "k3" 3;
  check bool "k2 evicted" true (Cache.find c "k2" = None);
  check bool "k1 survived" true (Cache.find c "k1" = Some 1);
  check bool "k3 present" true (Cache.find c "k3" = Some 3);
  let st = Cache.stats c in
  check int "size" 2 st.Cache.size;
  check int "capacity" 2 st.Cache.capacity;
  check int "hits" 3 st.Cache.hits;
  check int "misses" 1 st.Cache.misses

(* ------------------------------------------------------------------ *)
(* Protocol framing over a real socketpair. *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      (match Protocol.write_frame a {|{"id":1,"op":"ping"}|} with
      | Ok () -> ()
      | Error e -> fail e);
      (match Protocol.read_frame b with
      | Ok s -> check string "payload intact" {|{"id":1,"op":"ping"}|} s
      | Error _ -> fail "read failed");
      (* an empty payload frames too *)
      (match Protocol.write_frame a "" with
      | Ok () -> ()
      | Error e -> fail e);
      match Protocol.read_frame b with
      | Ok s -> check string "empty payload" "" s
      | Error _ -> fail "read failed")

let test_frame_too_large () =
  (match Protocol.write_frame Unix.stdout (String.make (Protocol.max_frame + 1) 'x') with
  | Ok () -> fail "oversized write accepted"
  | Error _ -> ());
  with_socketpair (fun a b ->
      (* hand-craft a header declaring one byte past the cap *)
      let n = Protocol.max_frame + 1 in
      let hdr = Bytes.create 4 in
      Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xff));
      Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xff));
      Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
      Bytes.set hdr 3 (Char.chr (n land 0xff));
      ignore (Unix.write a hdr 0 4);
      match Protocol.read_frame b with
      | Error (Protocol.Too_large m) -> check int "declared length" n m
      | _ -> fail "expected Too_large")

let test_frame_torn () =
  with_socketpair (fun a b ->
      ignore (Unix.write a (Bytes.of_string "\x00\x00") 0 2);
      Unix.close a;
      match Protocol.read_frame b with
      | Error Protocol.Truncated -> ()
      | _ -> fail "expected Truncated");
  with_socketpair (fun a b ->
      Unix.close a;
      match Protocol.read_frame b with
      | Error Protocol.Closed -> ()
      | _ -> fail "expected Closed")

let test_request_decode () =
  let decode s =
    match Jsonx.parse s with
    | Error e -> fail e
    | Ok j -> Protocol.decode_request j
  in
  (match decode (Protocol.ping_request ~id:3) with
  | Ok (Protocol.Ping 3) -> ()
  | _ -> fail "ping round trip");
  (match decode (Protocol.stats_request ~id:4) with
  | Ok (Protocol.Stats 4) -> ()
  | _ -> fail "stats round trip");
  (match
     decode
       (Protocol.analyze_request ~id:5
          (Protocol.analyze ~workload:"awk" ~machines:[ "sp-cd-mf" ]
             ~fuel:1000 ~inject:("bit-flip", 7) ()))
   with
  | Ok (Protocol.Analyze (5, a)) ->
    check bool "workload" true (a.Protocol.a_workload = Some "awk");
    check bool "machines" true (a.Protocol.a_machines = [ "sp-cd-mf" ]);
    check bool "fuel" true (a.Protocol.a_fuel = Some 1000);
    check bool "inject" true (a.Protocol.a_inject = Some ("bit-flip", 7))
  | _ -> fail "analyze round trip");
  (match decode {|{"op":"ping"}|} with
  | Error _ -> ()
  | Ok _ -> fail "missing id accepted");
  (match decode {|{"id":1,"op":"conquer"}|} with
  | Error _ -> ()
  | Ok _ -> fail "unknown op accepted");
  (* the id is recoverable even from a shape-rejected request *)
  match Jsonx.parse {|{"id":9,"op":"conquer"}|} with
  | Ok j -> check bool "request_id" true (Protocol.request_id j = Some 9)
  | Error e -> fail e

let test_response_decode () =
  let err =
    Pipeline_error.v ~workload:"awk" Execute
      (Overloaded { depth = 3; limit = 4; retry_after_ms = 25 })
  in
  match Jsonx.parse (Protocol.error_response ~id:(Some 11) err) with
  | Error e -> fail e
  | Ok j ->
    let r = Protocol.decode_response j in
    check bool "id echoed" true (r.Protocol.r_id = Some 11);
    check bool "not ok" false r.Protocol.r_ok;
    check bool "cause" true (r.Protocol.r_error_cause = Some "overloaded");
    check bool "retry hint" true (r.Protocol.r_retry_after_ms = Some 25)

(* ------------------------------------------------------------------ *)
(* End-to-end server tests: raw connections, so responses can be
   compared byte for byte. *)

let sock_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ilp-test-%d-%s.sock" (Unix.getpid ()) name)

let with_server ?jobs ?queue_limit ?cache_capacity ?admission ?max_fuel
    ?idle_timeout_ms ?(retry_after_ms = 25) name f =
  let path = sock_path name in
  let cfg =
    Server.config ?jobs ?queue_limit ?cache_capacity ?admission ?max_fuel
      ?idle_timeout_ms ~retry_after_ms ~registry:(Obs.Metrics.create ())
      ~socket_path:path ()
  in
  match Server.start cfg with
  | Error e -> fail ("server start: " ^ e)
  | Ok t ->
    Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t path)

let connect_raw path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

(* One exchange on an open raw connection; the response as raw bytes. *)
let roundtrip fd payload =
  (match Protocol.write_frame fd payload with
  | Ok () -> ()
  | Error e -> fail ("write: " ^ e));
  match Protocol.read_frame fd with
  | Ok s -> s
  | Error _ -> fail "no response frame"

(* Fresh connection per request — ids restart at the caller's choice. *)
let oneshot path payload =
  let fd = connect_raw path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> roundtrip fd payload)

let decoded payload =
  match Jsonx.parse payload with
  | Error e -> fail ("response not JSON: " ^ e)
  | Ok j -> Protocol.decode_response j

let error_cause payload = (decoded payload).Protocol.r_error_cause

let error_code payload =
  match Jsonx.parse payload with
  | Error e -> fail e
  | Ok j ->
    Jsonx.(member "error" j |> Option.get |> member "code" |> Option.get |> to_int)
    |> Option.get

(* Replace the first occurrence of [sub] — enough to erase the cached
   flag when comparing fresh and cached replies. *)
let replace ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)

let normalize_cached s = replace ~sub:{|"cached":true|} ~by:{|"cached":false|} s

let analyze_payload ?fuel ?deadline_ms ?inject ~id ~workload machines =
  Protocol.analyze_request ~id
    (Protocol.analyze ~workload ~machines ?fuel ?deadline_ms ?inject ())

(* The local one-shot a served reply must match byte for byte. *)
let local_reply ~id ~fuel ~workload machines =
  let w = Workloads.Registry.find workload in
  let machines =
    match Ilp.Machine.of_specs machines with
    | Ok ms -> ms
    | Error e -> fail (Pipeline_error.to_string e)
  in
  let specs = List.map (fun m -> Harness.spec m) machines in
  match Harness.Request.exec ~fuel ~specs w with
  | Ok reply -> Protocol.ok_analyze ~id ~cached:false reply
  | Error e -> fail (Pipeline_error.to_string e)

let test_serve_ping_and_stats () =
  with_server "ping" (fun _t path ->
      let fd = connect_raw path in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          check string "ping is byte-exact" (Protocol.ok_ping ~id:7)
            (roundtrip fd (Protocol.ping_request ~id:7));
          let stats = roundtrip fd (Protocol.stats_request ~id:8) in
          let j = match Jsonx.parse stats with Ok j -> j | Error e -> fail e in
          check bool "stats ok" true ((decoded stats).Protocol.r_ok);
          check bool "queue_limit reported" true
            (Jsonx.(member "queue_limit" j |> Option.get |> to_int) = Some 64);
          check bool "not draining" true
            (Jsonx.(member "draining" j |> Option.get |> to_bool) = Some false);
          (* duplicate id on one connection is refused *)
          let dup = roundtrip fd (Protocol.ping_request ~id:7) in
          check bool "duplicate id refused" true
            (error_cause dup = Some "invalid_request")))

let test_serve_analyze_matches_oneshot () =
  with_server "analyze" (fun _t path ->
      let machines = [ "sp-cd-mf" ] in
      let fuel = 100_000 in
      let expected = local_reply ~id:1 ~fuel ~workload:"eqntott" machines in
      let got =
        oneshot path
          (analyze_payload ~id:1 ~fuel ~workload:"eqntott" machines)
      in
      check string "served reply == local one-shot" expected got;
      (* second request: compile-cache hit; identical bytes modulo the
         cached flag *)
      let again =
        oneshot path
          (analyze_payload ~id:1 ~fuel ~workload:"eqntott" machines)
      in
      check bool "second reply is flagged cached" true
        (again <> got && normalize_cached again = got))

let test_serve_metrics_scrape () =
  with_server "metrics" (fun _t path ->
      ignore
        (oneshot path
           (analyze_payload ~id:1 ~fuel:50_000 ~workload:"awk"
              [ "sp-cd-mf" ]));
      let resp = oneshot path (Protocol.metrics_request ~id:2) in
      let j = match Jsonx.parse resp with Ok j -> j | Error e -> fail e in
      let body =
        Jsonx.(member "metrics" j |> Option.get |> to_str) |> Option.get
      in
      let has sub =
        let n = String.length body and m = String.length sub in
        let rec go i =
          i + m <= n && (String.sub body i m = sub || go (i + 1))
        in
        go 0
      in
      check bool "requests counter exported" true
        (has "serve_requests_total");
      check bool "pool probe exported" true
        (has "pool_tasks_completed_total"))

let test_serve_typed_errors () =
  with_server ~max_fuel:1_000 "errors" (fun _t path ->
      let expect payload cause code =
        let resp = oneshot path payload in
        check bool (cause ^ " cause") true (error_cause resp = Some cause);
        check int (cause ^ " code") code (error_code resp)
      in
      expect
        (analyze_payload ~id:1 ~workload:"no-such-program" [ "sp-cd-mf" ])
        "unknown_workload" 2;
      expect
        (analyze_payload ~id:1 ~workload:"awk" [ "warp-drive" ])
        "unknown_machine" 2;
      expect
        (analyze_payload ~id:1 ~workload:"awk"
           ~inject:("gamma-ray", 1) [ "sp-cd-mf" ])
        "unknown_fault" 2;
      (* fuel above the server's cap: refused before execution *)
      expect
        (analyze_payload ~id:1 ~fuel:2_000 ~workload:"awk" [ "sp-cd-mf" ])
        "budget_exceeded" 5;
      (* malformed JSON is a typed error, and the connection survives *)
      let fd = connect_raw path in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let bad = roundtrip fd "{\"id\":1,\"op\"" in
          check bool "malformed is typed" true
            (error_cause bad = Some "invalid_request");
          check string "connection survived" (Protocol.ok_ping ~id:2)
            (roundtrip fd (Protocol.ping_request ~id:2))))

let test_serve_deadline () =
  with_server "deadline" (fun _t path ->
      let resp =
        oneshot path
          (analyze_payload ~id:1 ~deadline_ms:1 ~workload:"gcc"
             [ "sp-cd-mf" ])
      in
      check bool "deadline cause" true
        (error_cause resp = Some "deadline_exceeded");
      check int "exit code 6" 6 (error_code resp);
      let j = match Jsonx.parse resp with Ok j -> j | Error e -> fail e in
      check bool "structured budget" true
        (Jsonx.(
           member "error" j |> Option.get |> member "budget_ms" |> Option.get
           |> to_int)
        = Some 1))

let test_serve_admission_reject () =
  (* the work proxy prices awk at 2808 and irsim at ~3.4e7 (matrix300
     is unbounded): a 5000 ceiling splits them *)
  with_server ~admission:(Server.Admit_reject 5000.) "admit"
    (fun _t path ->
      let expect_reject w =
        let resp =
          oneshot path
            (analyze_payload ~id:1 ~fuel:100_000 ~workload:w [ "sp-cd-mf" ])
        in
        check bool (w ^ " rejected by estimate") true
          (error_cause resp = Some "rejected_by_estimate");
        check int (w ^ " exit code 8") 8 (error_code resp)
      in
      expect_reject "irsim";      (* finite estimate above the ceiling *)
      expect_reject "matrix300";  (* unbounded prices as infinity *)
      let ok =
        oneshot path
          (analyze_payload ~id:1 ~fuel:100_000 ~workload:"awk"
             [ "sp-cd-mf" ])
      in
      check bool "cheap workload admitted" true ((decoded ok).Protocol.r_ok))

let test_serve_shed_under_burst () =
  with_server ~jobs:1 ~queue_limit:1 "shed" (fun _t path ->
      let n = 8 in
      let responses = Array.make n "" in
      let worker i =
        responses.(i) <-
          oneshot path
            (analyze_payload ~id:1 ~fuel:400_000 ~workload:"gcc"
               [ "sp-cd-mf" ])
      in
      let threads = Array.init n (fun i -> Thread.create worker i) in
      Array.iter Thread.join threads;
      let ok = ref 0 and shed = ref 0 in
      Array.iter
        (fun resp ->
          let r = decoded resp in
          if r.Protocol.r_ok then incr ok
          else begin
            check bool "only overloaded errors" true
              (r.Protocol.r_error_cause = Some "overloaded");
            check bool "retry hint carried" true
              (r.Protocol.r_retry_after_ms = Some 25);
            incr shed
          end)
        responses;
      check int "every request answered" n (!ok + !shed);
      check bool "the 1-deep queue shed most of the burst" true (!shed >= 1);
      check bool "something still ran" true (!ok >= 1))

let test_serve_drain_delivers_in_flight () =
  with_server ~jobs:1 "drain" (fun t path ->
      let fd = connect_raw path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (match
             Protocol.write_frame fd
               (analyze_payload ~id:1 ~fuel:100_000 ~workload:"awk"
                  [ "sp-cd-mf" ])
           with
          | Ok () -> ()
          | Error e -> fail e);
          (* let the connection thread admit the request before the
             drain, so the reply is genuinely owed *)
          Thread.delay 0.2;
          Server.drain t;
          (* the owed reply lands — executed or typed-shed, never dropped *)
          (match Protocol.read_frame fd with
          | Ok resp ->
            let r = decoded resp in
            check bool "reply is ok or overloaded" true
              (r.Protocol.r_ok || r.Protocol.r_error_cause = Some "overloaded")
          | Error _ -> fail "in-flight reply dropped during drain");
          Server.wait t;
          (* the socket is gone: new connections are refused *)
          match connect_raw path with
          | fd2 ->
            Unix.close fd2;
            fail "connect succeeded after drain"
          | exception Unix.Unix_error _ -> ()))

let test_serve_idle_timeout () =
  with_server ~idle_timeout_ms:50 "idle" (fun t _path ->
      (* no connections: the acceptor notices idleness and self-drains;
         wait returning at all is the assertion *)
      Server.wait t;
      check bool "drained" true (Server.draining t))

let test_client_retry_io_failure () =
  match
    Client.call_retry ~attempts:2 ~base_ms:1 ~seed:1
      (Client.Unix_sock (sock_path "nonexistent"))
      ~make_payload:(fun ~id -> Protocol.ping_request ~id)
  with
  | Ok _ -> fail "call_retry reached a nonexistent socket"
  | Error _ -> ()

let test_wire_fuzz_live () =
  with_server "fuzz" (fun _t path ->
      let r = Wire_fuzz.run ~cases:27 ~seed:5 (Client.Unix_sock path) in
      check int "cases" 27 r.Wire_fuzz.cases;
      check int "no hangs" 0 r.Wire_fuzz.hung;
      check int "no ok replies to garbage" 0 r.Wire_fuzz.unexpected_ok;
      check bool "server alive afterwards" true r.Wire_fuzz.alive;
      check bool "report passes" true (Wire_fuzz.passed r))

(* Concurrent error isolation: healthy requests racing injected faults
   and lookup failures come back byte-identical to their sequential
   one-shots. *)
let test_serve_concurrent_isolation () =
  with_server ~jobs:2 ~queue_limit:64 "isolation" (fun _t path ->
      let machines = [ "sp-cd-mf" ] in
      let fuel = 100_000 in
      let healthy = [| "eqntott"; "awk"; "ccom"; "espresso" |] in
      (* sequential baselines (also warms the compile cache, so the
         concurrent round compares after normalizing the cached flag) *)
      let expected =
        Array.map
          (fun w ->
            normalize_cached
              (oneshot path (analyze_payload ~id:1 ~fuel ~workload:w machines)))
          healthy
      in
      let n = 12 in
      let responses = Array.make n "" in
      let payload i =
        match i mod 3 with
        | 0 ->
          analyze_payload ~id:1 ~fuel
            ~workload:healthy.((i / 3) mod Array.length healthy)
            machines
        | 1 ->
          analyze_payload ~id:1 ~fuel ~workload:"awk"
            ~inject:("bit-flip", i) machines
        | _ -> analyze_payload ~id:1 ~workload:"no-such-program" machines
      in
      let threads =
        Array.init n (fun i ->
            Thread.create (fun () -> responses.(i) <- oneshot path (payload i)) ())
      in
      Array.iter Thread.join threads;
      for i = 0 to n - 1 do
        match i mod 3 with
        | 0 ->
          check string
            (Printf.sprintf "healthy #%d bit-identical under fault load" i)
            expected.((i / 3) mod Array.length healthy)
            (normalize_cached responses.(i))
        | 1 ->
          (* injected runs answer — ok with a truncated trace or a
             typed VM fault, never silence *)
          let r = decoded responses.(i) in
          check bool
            (Printf.sprintf "injected #%d answered" i)
            true
            (r.Protocol.r_ok || r.Protocol.r_error_cause <> None)
        | _ ->
          check bool
            (Printf.sprintf "lookup failure #%d typed" i)
            true
            (error_cause responses.(i) = Some "unknown_workload")
      done)

(* ------------------------------------------------------------------ *)
(* The run-path deadline shares the serve machinery: `run
   --deadline-ms` yields the same typed error and exit code 6. *)

let test_run_deadline () =
  let cfg =
    Harness.Run.config ~deadline_ms:1 [ Harness.spec Ilp.Machine.sp_cd_mf ]
  in
  match Harness.Run.exec cfg [ Workloads.Registry.find "gcc" ] with
  | Error e -> fail (Pipeline_error.to_string e)
  | Ok [ it ] -> (
    match it.Harness.Run.it_outcome with
    | Error ({ cause = Deadline_exceeded { budget_ms; _ }; _ } as e) ->
      check int "budget echoed" 1 budget_ms;
      check int "exit code 6" 6 (Pipeline_error.exit_code e)
    | Ok _ -> fail "gcc finished inside 1ms?"
    | Error e -> fail (Pipeline_error.to_string e))
  | Ok _ -> fail "one workload, one item"

let suite =
  [ Alcotest.test_case "jsonx: parse/print round trip" `Quick
      test_jsonx_roundtrip;
    Alcotest.test_case "jsonx: malformed inputs rejected" `Quick
      test_jsonx_rejects;
    Alcotest.test_case "jsonx: non-finite floats print null" `Quick
      test_jsonx_nonfinite_floats;
    Alcotest.test_case "rqueue: sheds when full, FIFO" `Quick
      test_rqueue_shed;
    Alcotest.test_case "rqueue: close drains, refuses pushes" `Quick
      test_rqueue_close_drains;
    Alcotest.test_case "rqueue: limit clamped to 1" `Quick
      test_rqueue_limit_clamped;
    Alcotest.test_case "cache: LRU eviction with find-refresh" `Quick
      test_cache_lru;
    Alcotest.test_case "protocol: frame round trip" `Quick
      test_frame_roundtrip;
    Alcotest.test_case "protocol: oversized frames refused" `Quick
      test_frame_too_large;
    Alcotest.test_case "protocol: torn frames are typed" `Quick
      test_frame_torn;
    Alcotest.test_case "protocol: request decode shapes" `Quick
      test_request_decode;
    Alcotest.test_case "protocol: response decode carries the hint" `Quick
      test_response_decode;
    Alcotest.test_case "serve: ping/stats, duplicate ids refused" `Quick
      test_serve_ping_and_stats;
    Alcotest.test_case "serve: reply == one-shot, cache flagged" `Slow
      test_serve_analyze_matches_oneshot;
    Alcotest.test_case "serve: metrics scrape exports counters" `Quick
      test_serve_metrics_scrape;
    Alcotest.test_case "serve: typed errors for every refusal" `Quick
      test_serve_typed_errors;
    Alcotest.test_case "serve: deadline is typed, code 6" `Quick
      test_serve_deadline;
    Alcotest.test_case "serve: admission reject, code 8" `Slow
      test_serve_admission_reject;
    Alcotest.test_case "serve: burst sheds, every request answered" `Slow
      test_serve_shed_under_burst;
    Alcotest.test_case "serve: drain delivers in-flight replies" `Quick
      test_serve_drain_delivers_in_flight;
    Alcotest.test_case "serve: idle timeout self-drains" `Quick
      test_serve_idle_timeout;
    Alcotest.test_case "client: retry surfaces I/O failure" `Quick
      test_client_retry_io_failure;
    Alcotest.test_case "serve: wire fuzz against a live server" `Slow
      test_wire_fuzz_live;
    Alcotest.test_case "serve: concurrent faults don't perturb healthy" `Slow
      test_serve_concurrent_isolation;
    Alcotest.test_case "run: --deadline-ms yields the typed error" `Quick
      test_run_deadline ]
